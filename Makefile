# Tier-1 verification is one command: `make check`.

GO ?= go

.PHONY: check fmt vet build test race lint bench bench-bi bench-recovery bench-mem bench-write bench-serve bench-query bench-smoke serve-smoke docs-check

check: fmt vet build test lint

# The whole module under the race detector. The hottest surfaces are the
# incremental view maintenance racing commits, the BI lane's morsel
# workers fanning out over shared views, and the background checkpointer —
# but every package rides along so a new concurrent path is covered the
# day it lands (wired into CI).
race:
	$(GO) test -race ./...
	$(GO) test -race ./internal/bench/ -run xxx -bench 'BenchmarkWrite/sync=commit/writers=2$$' -benchtime 1x

# Static invariant enforcement (docs/ANALYZERS.md): snblint runs the
# internal/lint analyzer suite (view aliasing, lock guards,
# publish-then-freeze, determinism, durability errors) over the whole
# module, and allocbound gates //snb:noalloc functions against the
# compiler's escape analysis.
lint:
	$(GO) run ./cmd/snblint ./...
	$(GO) run ./cmd/allocbound

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Link-and-anchor check over the prose docs (README + docs/*.md) so a
# renamed file or heading fails CI instead of rotting silently.
docs-check:
	$(GO) run ./cmd/docscheck README.md docs/*.md

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# View-vs-txn read-path comparison over every Interactive query
# (allocation counts matter: the view path's adjacency iteration must
# report 0 allocs/op), plus the view-maintenance split: BenchmarkViewRefresh
# (delta refresh after 1 and 16 commits, ring overflow) against
# BenchmarkViewRebuild (full recompaction). The run emits
# BENCH_interactive.json — ns/op and allocs/op per query per read path and
# per maintenance case — so the perf trajectory is tracked across PRs.
# Two steps (not a pipeline) so a benchmark failure fails the target
# instead of being masked by the parser's exit status. The temp file lives
# outside the working tree so a failed run leaves no untracked litter.
BENCH_TMP := $(or $(TMPDIR),/tmp)/ldbcsnb-bench.out
bench:
	$(GO) test ./internal/bench/ -run xxx -bench 'BenchmarkView' -benchmem > $(BENCH_TMP)
	$(GO) run ./cmd/benchjson -out BENCH_interactive.json < $(BENCH_TMP)
	@rm -f $(BENCH_TMP)

# BI serial-vs-parallel sweep: every BI query on the txn, serial-view and
# morsel-parallel (2 and 4 workers) paths, emitted as BENCH_bi.json.
# Parallel ratios are only meaningful on a host with at least as many
# cores as workers.
bench-bi:
	$(GO) test ./internal/bench/ -run xxx -bench 'BenchmarkBISerialVsParallel' -benchmem > $(BENCH_TMP)
	$(GO) run ./cmd/benchjson -out BENCH_bi.json \
		-note "BI1-BI8 ns/op per execution path (txn vs serial view vs morsel-parallel par2/par4); parallel speedup tracks the host core count — parN on fewer than N cores measures scheduling overhead, not speedup; regenerate with \`make bench-bi\`" \
		< $(BENCH_TMP)
	@rm -f $(BENCH_TMP)

# Recovery-path comparison: restart the 250-person environment from the
# newest checkpoint plus the WAL tail (serial and parallel decode) vs full
# replay of the whole log from the first commit, emitted as
# BENCH_recovery.json. The acceptance bar for the persistence subsystem is
# checkpoint+tail >= 3x faster at this scale (the decode-then-apply
# recovery rewrite sped up full replay itself ~2x, narrowing the ratio).
bench-recovery:
	$(GO) test ./internal/bench/ -run xxx -bench 'BenchmarkRecovery' -benchtime 10x > $(BENCH_TMP)
	$(GO) run ./cmd/benchjson -out BENCH_recovery.json \
		-note "restart latency at 250 persons: newest checkpoint + WAL tail replay (last ~2% of commits, serial decode) and its parallel-decode twin (checkpoint+tail-par, GOMAXPROCS workers — equal to serial on a single-core host) vs full WAL replay from the first commit; the 'commits' metric is the recovered commit clock (identical on all paths by construction); regenerate with \`make bench-recovery\`" \
		< $(BENCH_TMP)
	@rm -f $(BENCH_TMP)

# Memory-footprint sweep over the compact frozen representation: bytes per
# node / per adjacency entry of the snapshot view (delta+varint CSR, dense
# property columns, interned strings) against the uncompressed baseline, at
# 250 / 1000 / 2500 persons through the streamed generate+load pipeline.
# ns/op doubles as end-to-end load latency at each scale. Emits
# BENCH_memory.json; the report stamps cpus/gomaxprocs/cpu model so
# cross-machine numbers are never compared blind.
bench-mem:
	$(GO) test ./internal/bench/ -run xxx -bench 'BenchmarkMemory' -benchtime 1x -timeout 30m > $(BENCH_TMP)
	$(GO) run ./cmd/benchjson -out BENCH_memory.json \
		-note "resident footprint of the frozen snapshot view at 250/1000/2500 persons (streamed load): viewbytes/node, adjbytes/edge vs rawadjbytes/edge (16-byte-Edge baseline; adjcompression is their ratio, acceptance bar >= 2.5x at 250p), intern table bytes, process heap; ns/op is the full generate+split+load+view-build latency; regenerate with \`make bench-mem\`" \
		< $(BENCH_TMP)
	@rm -f $(BENCH_TMP)

# Durable commit throughput through the group-commit pipeline: 1/2/4/8
# concurrent writers x WAL sync mode (none/flush/commit), plus lane
# striping at the hottest cell, emitted as BENCH_write.json. The
# fsyncs/commit metric is the batcher's amortisation; the acceptance bar
# (< 0.3 at sync=commit/8 writers) assumes a multi-core host — single-core
# runs record the standing caveat.
bench-write:
	$(GO) test ./internal/bench/ -run xxx -bench 'BenchmarkWrite' -benchtime 500x > $(BENCH_TMP)
	$(GO) run ./cmd/benchjson -out BENCH_write.json \
		-note "durable commit throughput: N concurrent writers of minimal insert transactions per WAL sync mode; commits/s is throughput, fsyncs/commit the group-commit amortisation (acceptance bar < 0.3 at sync=commit/writers=8 on a multi-core host; single-core containers schedule writers and flushers on one CPU, so batching and the bar are understated there), recs/batch the mean batch size; lanes=N stripes the WAL over independent flusher lanes; regenerate with \`make bench-write\`" \
		< $(BENCH_TMP)
	@rm -f $(BENCH_TMP)

# The serving layer end to end: an in-process server and an open-loop
# Poisson client at a steady rate, at 2x rate against small gates
# (overload), and through deliberate frame drop/garbage faults, emitted
# as BENCH_serve.json. Percentiles are client-observed complex-read
# latency; shed/timeout/retry counts record the degradation behavior.
bench-serve:
	$(GO) test ./internal/bench/ -run xxx -bench 'BenchmarkServe' -benchtime 2000x > $(BENCH_TMP)
	$(GO) run ./cmd/benchjson -out BENCH_serve.json \
		-note "serving layer end to end: open-loop Poisson client against an in-process server, ~2000 arrivals per variant; steady runs inside capacity with default gates, overload doubles the rate against small admission gates (100ms deadlines), faulty drops every 31st frame mid-write and garbles every 47th; p50/p99/p999-us are client-observed complex-read latencies, ok/shed/timeouts/dropped/retries the outcome counts (single-core hosts serialize handlers in the scheduler, so overload sheds are understated there — the shed contract is pinned by internal/server wire tests); regenerate with \`make bench-serve\`" \
		< $(BENCH_TMP)
	@rm -f $(BENCH_TMP)

# The serving layer's leak-and-fault gate under the race detector: an
# open-loop run through drop/garbage/stall faults plus a clean drain,
# asserting the goroutine count returns to baseline (wired into CI).
serve-smoke:
	$(GO) test -race ./internal/server/... -run 'TestServeSmokeGoroutineLeak' -count=1

# Declarative-vs-hand-written comparison for the pattern-query layer
# (docs/QUERY.md): registry specs Q1/Q2/Q8 run through the generic
# plan interpreter against the specialised workload implementations they
# mirror, both on the warm snapshot-view path, emitted as
# BENCH_query.json. The acceptance bar is decl <= 2x hand per query;
# compute the ratio within one run — the absolute numbers drift with the
# host.
bench-query:
	$(GO) test ./internal/bench/ -run xxx -bench 'BenchmarkQueryDeclVsHand' -benchtime 500ms -benchmem > $(BENCH_TMP)
	$(GO) run ./cmd/benchjson -out BENCH_query.json \
		-note "declarative pattern-query layer vs the hand-written Q1/Q2/Q8 it mirrors, both on the warm snapshot-view path; the bar is decl <= 2x hand per query within one run (Q1 decl is faster because the hand path also computes org enrichment the declarative form omits); regenerate with \`make bench-query\`" \
		< $(BENCH_TMP)
	@rm -f $(BENCH_TMP)

# One short iteration of every query benchmark on every path (Interactive
# txn/view plus the BI serial/parallel sweep, the recovery comparison,
# the memory-footprint sweep at its first two scales and the
# declarative-vs-hand query-layer comparison): dispatch-layer
# regressions (a query losing a path, a signature drift) fail fast here
# without paying for a full measurement run. SNB_SMOKE_FULL additionally
# runs the 1000-person recovered-store workload-equivalence sweep, proving
# the compact checkpoint format at a scale where the dictionary and varint
# sections carry real weight.
bench-smoke:
	$(GO) test ./internal/bench/ -run xxx -bench 'BenchmarkViewVsTxn|BenchmarkBISerialVsParallel|BenchmarkRecovery|BenchmarkMemory/sf=(250|1000)p|BenchmarkWrite/sync=commit/writers=2$$|BenchmarkQueryDeclVsHand' -benchtime 1x -benchmem
	SNB_SMOKE_FULL=1 $(GO) test ./internal/bench/ -run 'TestRecoveredStoreServesWorkload' -count=1
