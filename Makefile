# Tier-1 verification is one command: `make check`.

GO ?= go

.PHONY: check fmt vet build test race bench bench-smoke

check: fmt vet build test

# Incremental view maintenance runs concurrently with commits; the store
# and driver suites under -race cover that surface (wired into CI).
race:
	$(GO) test -race ./internal/store/... ./internal/driver/...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# View-vs-txn read-path comparison over every Interactive query
# (allocation counts matter: the view path's adjacency iteration must
# report 0 allocs/op), plus the view-maintenance split: BenchmarkViewRefresh
# (delta refresh after 1 and 16 commits, ring overflow) against
# BenchmarkViewRebuild (full recompaction). The run emits
# BENCH_interactive.json — ns/op and allocs/op per query per read path and
# per maintenance case — so the perf trajectory is tracked across PRs.
# Two steps (not a pipeline) so a benchmark failure fails the target
# instead of being masked by the parser's exit status. The temp file lives
# outside the working tree so a failed run leaves no untracked litter.
BENCH_TMP := $(or $(TMPDIR),/tmp)/ldbcsnb-bench.out
bench:
	$(GO) test ./internal/bench/ -run xxx -bench 'BenchmarkView' -benchmem > $(BENCH_TMP)
	$(GO) run ./cmd/benchjson -out BENCH_interactive.json < $(BENCH_TMP)
	@rm -f $(BENCH_TMP)

# One short iteration of every query benchmark on both read paths:
# dispatch-layer regressions (a query losing a path, a signature drift)
# fail fast here without paying for a full measurement run.
bench-smoke:
	$(GO) test ./internal/bench/ -run xxx -bench 'BenchmarkViewVsTxn' -benchtime 1x -benchmem
