# Tier-1 verification is one command: `make check`.

GO ?= go

.PHONY: check fmt vet build test bench

check: fmt vet build test

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# View-vs-txn read-path comparison (allocation counts matter: the view
# path's adjacency iteration must report 0 allocs/op).
bench:
	$(GO) test ./internal/bench/ -run xxx -bench 'BenchmarkView' -benchmem
