// benchjson converts `go test -bench -benchmem` output into a
// machine-readable JSON file tracking the read-path performance trajectory
// across PRs. It reads the benchmark output on stdin, echoes it unchanged
// to stdout (so the console run stays readable), and writes the parsed
// records to -out.
//
// Usage:
//
//	go test ./internal/bench/ -run xxx -bench 'BenchmarkView' -benchmem | benchjson -out BENCH_interactive.json
//
// Benchmark names of the form BenchmarkViewVsTxn<Query>/<path> and
// BenchmarkBISerialVsParallel/<Query>/<path> become {query, path} records
// (e.g. Q9/view, BI4/par4); sub-benchmarks of other families keep the
// family as query and the case as path (e.g. ViewRefresh/1commit vs
// ViewRebuild — the view-maintenance refresh-vs-rebuild split, or
// Recovery/checkpoint+tail vs Recovery/fullreplay — the restart-latency
// comparison of make bench-recovery); other benchmarks keep their raw name
// with an empty path.
//
// Custom metrics reported via testing.B.ReportMetric (the memory
// benchmark's bytes/node, bytes/edge, compression ratio) land in each
// record's "metrics" map keyed by unit. The report header records the host
// shape the numbers were taken on: logical CPU count, the GOMAXPROCS the
// benchmarks ran under (parsed from the -N name suffix) and the "cpu:"
// model line — cross-machine comparisons are meaningless without them.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Record is one parsed benchmark result.
type Record struct {
	Name        string             `json:"name"`
	Query       string             `json:"query"`
	Path        string             `json:"path,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"b_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the BENCH_*.json document.
type Report struct {
	Note       string   `json:"note"`
	CPUs       int      `json:"cpus"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	CPUModel   string   `json:"cpu_model,omitempty"`
	Benchmarks []Record `json:"benchmarks"`
}

// benchLine matches the name and iteration count of one result line of
// `go test -bench` output; the measurement pairs after it are free-form
// (value, unit) tokens handled by parseMeasurements.
var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(?:-(\d+))?\s+(\d+)\s+(.+)$`)

// parseMeasurements consumes the (value, unit) pairs after the iteration
// count: the standard ns/op, B/op, allocs/op land in their typed fields,
// anything else (ReportMetric output) in the metrics map.
func parseMeasurements(rec *Record, rest string) {
	f := strings.Fields(rest)
	for i := 0; i+1 < len(f); i += 2 {
		val, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "ns/op":
			rec.NsPerOp = val
		case "B/op":
			rec.BytesPerOp = int64(val)
		case "allocs/op":
			rec.AllocsPerOp = int64(val)
		default:
			if rec.Metrics == nil {
				rec.Metrics = make(map[string]float64)
			}
			rec.Metrics[f[i+1]] = val
		}
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("out", "BENCH_interactive.json", "output JSON path")
	note := flag.String("note",
		"ns/op + allocs/op per query per read path, plus the view-maintenance refresh-vs-rebuild split (ViewRefresh/*, ViewRebuild); regenerate with `make bench`",
		"note field of the report")
	flag.Parse()

	// A missing -N name suffix means the benchmarks ran at GOMAXPROCS=1;
	// a larger parsed suffix overrides this below.
	rep := Report{Note: *note, CPUs: runtime.NumCPU(), GOMAXPROCS: 1}
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		fmt.Println(line)
		if model, ok := strings.CutPrefix(line, "cpu: "); ok {
			rep.CPUModel = strings.TrimSpace(model)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		rec := Record{Name: m[1]}
		rec.Query = rec.Name
		for _, family := range []string{"ViewVsTxn", "BISerialVsParallel/", "QueryDeclVsHand/"} {
			rec.Query = strings.TrimPrefix(rec.Query, family)
		}
		if q, path, ok := strings.Cut(rec.Query, "/"); ok {
			rec.Query, rec.Path = q, path
		}
		if m[2] != "" {
			if procs, err := strconv.Atoi(m[2]); err == nil && procs > rep.GOMAXPROCS {
				rep.GOMAXPROCS = procs
			}
		}
		rec.Iterations, _ = strconv.ParseInt(m[3], 10, 64)
		parseMeasurements(&rec, m[4])
		rep.Benchmarks = append(rep.Benchmarks, rec)
	}
	if err := scanner.Err(); err != nil {
		log.Fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		log.Fatal("no benchmark lines found on stdin")
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d records to %s", len(rep.Benchmarks), *out)
}
