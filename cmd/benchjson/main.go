// benchjson converts `go test -bench -benchmem` output into a
// machine-readable JSON file tracking the read-path performance trajectory
// across PRs. It reads the benchmark output on stdin, echoes it unchanged
// to stdout (so the console run stays readable), and writes the parsed
// records to -out.
//
// Usage:
//
//	go test ./internal/bench/ -run xxx -bench 'BenchmarkView' -benchmem | benchjson -out BENCH_interactive.json
//
// Benchmark names of the form BenchmarkViewVsTxn<Query>/<path> and
// BenchmarkBISerialVsParallel/<Query>/<path> become {query, path} records
// (e.g. Q9/view, BI4/par4); sub-benchmarks of other families keep the
// family as query and the case as path (e.g. ViewRefresh/1commit vs
// ViewRebuild — the view-maintenance refresh-vs-rebuild split, or
// Recovery/checkpoint+tail vs Recovery/fullreplay — the restart-latency
// comparison of make bench-recovery); other benchmarks keep their raw name
// with an empty path.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Record is one parsed benchmark result.
type Record struct {
	Name        string  `json:"name"`
	Query       string  `json:"query"`
	Path        string  `json:"path,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the BENCH_interactive.json document.
type Report struct {
	Note       string   `json:"note"`
	Benchmarks []Record `json:"benchmarks"`
}

// benchLine matches one result line of `go test -bench -benchmem` output,
// e.g. "BenchmarkViewVsTxnQ9/view-8   85:   57582 ns/op   0 B/op   0 allocs/op".
var benchLine = regexp.MustCompile(
	`^Benchmark(\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("out", "BENCH_interactive.json", "output JSON path")
	note := flag.String("note",
		"ns/op + allocs/op per query per read path, plus the view-maintenance refresh-vs-rebuild split (ViewRefresh/*, ViewRebuild); regenerate with `make bench`",
		"note field of the report")
	flag.Parse()

	var recs []Record
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		fmt.Println(line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		rec := Record{Name: m[1]}
		rec.Query = rec.Name
		for _, family := range []string{"ViewVsTxn", "BISerialVsParallel/"} {
			rec.Query = strings.TrimPrefix(rec.Query, family)
		}
		if q, path, ok := strings.Cut(rec.Query, "/"); ok {
			rec.Query, rec.Path = q, path
		}
		rec.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		rec.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			rec.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
			rec.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		recs = append(recs, rec)
	}
	if err := scanner.Err(); err != nil {
		log.Fatal(err)
	}
	if len(recs) == 0 {
		log.Fatal("no benchmark lines found on stdin")
	}

	rep := Report{
		Note:       *note,
		Benchmarks: recs,
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d records to %s", len(recs), *out)
}
