// snb-serve puts the store behind the fault-tolerant TCP serving layer
// (internal/server): generate (or recover) a dataset, bulk-load the store,
// curate the parameter pools, and serve the length-prefixed binary
// protocol until SIGINT/SIGTERM — at which point the server drains:
// accepting stops, queued and new requests are answered RETRY_AFTER,
// in-flight requests finish (bounded by -drain-timeout), and the
// group-commit WAL lanes are flushed so every acknowledged write is
// durable before the process exits.
//
// Requests name a query class and number; the server binds concrete
// parameters itself from the same curated pools the in-process driver
// uses, dispatches through workload.Complex / bi.Registry onto the
// lock-free snapshot-view path, and enforces per-class admission control
// (bounded slots + a wait queue capped at one queue tick), per-request
// deadlines with cooperative mid-query cancellation, and BI-first overload
// shedding. docs/FORMATS.md specifies the wire format; docs/ARCHITECTURE.md
// the admission/shedding data flow.
//
// Drive it with the open-loop client: snb-run -serve-addr HOST:PORT
// -arrival-rate N (the paper's scheduled-start-time driver model), or
// `make bench-serve` for the recorded overload sweep.
//
// Usage:
//
//	snb-serve -addr :7544 -sf 0.05 [-seed 42] [-data-dir DIR] [-wal-sync none|flush|commit]
//	          [-interactive-slots N] [-interactive-queue N] [-queue-tick MS]
//	          [-bi-slots N] [-write-slots N] [-default-deadline MS]
//	          [-read-timeout DUR] [-max-conns N] [-drain-timeout DUR]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ldbcsnb/internal/bench"
	"ldbcsnb/internal/datagen"
	"ldbcsnb/internal/driver"
	"ldbcsnb/internal/schema"
	"ldbcsnb/internal/server"
	"ldbcsnb/internal/store"
)

func parseWALSync(s string) (store.WALSyncMode, error) {
	switch s {
	case "none", "":
		return store.SyncClose, nil
	case "flush":
		return store.SyncFlush, nil
	case "commit":
		return store.SyncCommit, nil
	}
	return store.SyncClose, fmt.Errorf("invalid -wal-sync %q (want none, flush or commit)", s)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("snb-serve: ")

	addr := flag.String("addr", ":7544", "listen address")
	sf := flag.Float64("sf", 0.05, "scale factor")
	personsFlag := flag.Int("persons", 0, "explicit person count (overrides -sf)")
	seed := flag.Uint64("seed", 42, "generator seed (also the parameter-binding seed)")
	dataDir := flag.String("data-dir", "",
		"durable mode: open or recover a data directory; empty = in-memory")
	walSync := flag.String("wal-sync", "none",
		"with -data-dir: WAL durability mode — none|flush|commit")
	walLanes := flag.Int("wal-lanes", 0, "with -data-dir: WAL lanes (0 = 1)")
	iaSlots := flag.Int("interactive-slots", 4, "interactive class: concurrent execution slots")
	iaQueue := flag.Int("interactive-queue", 8, "interactive class: admission queue capacity")
	queueTick := flag.Duration("queue-tick", 20*time.Millisecond,
		"admission queue tick: max time a request may queue before being shed")
	biSlots := flag.Int("bi-slots", 1, "BI class: concurrent execution slots")
	writeSlots := flag.Int("write-slots", 2, "write class: concurrent execution slots")
	defaultDeadline := flag.Duration("default-deadline", 100*time.Millisecond,
		"deadline applied to requests that carry none")
	readTimeout := flag.Duration("read-timeout", 2*time.Second,
		"whole-frame read deadline once a frame's first byte arrived (slow-loris guard)")
	maxConns := flag.Int("max-conns", 1024, "max concurrent connections")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second,
		"graceful-shutdown budget for in-flight requests")
	flag.Parse()

	syncMode, err := parseWALSync(*walSync)
	if err != nil {
		log.Fatal(err)
	}
	persons := *personsFlag
	if persons == 0 {
		persons = datagen.PersonsForSF(*sf)
	}

	fmt.Printf("building environment: %d persons...\n", persons)
	env := bench.NewEnvData(persons, *seed)

	var persist *store.Persistent
	if *dataDir != "" {
		opts := store.PersistOptions{WALSync: syncMode, WALLanes: *walLanes}
		p, info, err := store.Open(*dataDir, opts, schema.RegisterIndexes)
		if err != nil {
			log.Fatalf("open %s: %v", *dataDir, err)
		}
		persist = p
		if info.Fresh {
			if err := env.LoadInto(p.Store); err != nil {
				log.Fatal(err)
			}
			if err := p.Checkpoint(); err != nil {
				log.Fatalf("post-load checkpoint: %v", err)
			}
			fmt.Printf("data dir %s: fresh; loaded and checkpointed at commit %d\n", *dataDir, p.CheckpointTS())
		} else {
			env.Store = p.Store
			fmt.Printf("data dir %s: recovered to commit %d\n", *dataDir, info.Clock)
		}
	} else {
		st := store.New()
		schema.RegisterIndexes(st)
		if err := env.LoadInto(st); err != nil {
			log.Fatal(err)
		}
	}

	pools := driver.PreparePools(env.Full, *seed, false)
	srv := server.New(server.Config{
		Store:           env.Store,
		Persist:         persist,
		Pools:           pools,
		Seed:            *seed,
		Interactive:     server.GateConfig{Slots: *iaSlots, Queue: *iaQueue, QueueTick: *queueTick},
		BI:              server.GateConfig{Slots: *biSlots, QueueTick: *queueTick},
		Write:           server.GateConfig{Slots: *writeSlots, QueueTick: *queueTick},
		DefaultDeadline: *defaultDeadline,
		ReadTimeout:     *readTimeout,
		MaxConns:        *maxConns,
	})

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe(*addr) }()
	// Give the listener a beat to bind so the banner prints the truth.
	time.Sleep(50 * time.Millisecond)
	if a := srv.Addr(); a != nil {
		fmt.Printf("serving on %s (interactive %d+%d, bi %d, write %d, tick %v)\n",
			a, *iaSlots, *iaQueue, *biSlots, *writeSlots, *queueTick)
	}

	select {
	case err := <-errCh:
		if err != nil {
			log.Fatalf("serve: %v", err)
		}
		return
	case <-sigCtx.Done():
	}

	fmt.Println("signal received; draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	st := srv.Stats()
	fmt.Printf("drained: %d conns accepted (%d rejected), %d requests served — %d shed, %d timed out, %d errored, %d bad frames\n",
		st.Accepted, st.Rejected, st.Served, st.Shed, st.TimedOut, st.Errored, st.BadFrames)
	fmt.Println("clean shutdown: WAL lanes flushed")
}
