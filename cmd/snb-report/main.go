// snb-report regenerates every table and figure of the paper's evaluation
// in one run and prints them as ASCII tables, with the expected-shape
// notes from DESIGN.md attached to each.
//
// Usage:
//
//	snb-report [-persons 400] [-seed 42] [-quick]
package main

import (
	"flag"
	"fmt"
	"log"

	"ldbcsnb/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("snb-report: ")

	persons := flag.Int("persons", bench.DefaultPersons, "environment scale (persons)")
	seed := flag.Uint64("seed", 42, "generator seed")
	quick := flag.Bool("quick", false, "smaller sweeps for a fast smoke run")
	flag.Parse()

	fmt.Printf("building environment: %d persons (seed %d)...\n\n", *persons, *seed)
	env, err := bench.NewEnv(*persons, *seed)
	if err != nil {
		log.Fatal(err)
	}

	scales := []int{100, 200, 400, 800}
	partitions := []int{1, 2, 4, 8}
	figScales := []int{100, 200, 400}
	workers := []int{1, 2, 4}
	perType := 3
	if *quick {
		scales = []int{100, 200}
		partitions = []int{1, 4}
		figScales = []int{100, 200}
		workers = []int{1, 2}
		perType = 1
	}

	fmt.Print(bench.Table2(env).Render())
	fmt.Println()
	fmt.Print(bench.Table3(scales, *seed).Render())
	fmt.Println()
	fmt.Print(bench.Table4(env).Render())
	fmt.Println()
	fmt.Print(bench.Table5(env, partitions).Render())
	fmt.Println()

	rep := bench.RunInteractive(env, perType)
	fmt.Print(bench.Table6(rep).Render())
	fmt.Println()
	fmt.Print(bench.Table7(rep).Render())
	fmt.Println()
	fmt.Print(bench.Table8(env).Render())
	fmt.Println()
	fmt.Print(bench.Table9(rep).Render())
	fmt.Println()

	fmt.Print(bench.Figure2a(200, *seed).Render())
	fmt.Println()
	fmt.Print(bench.Figure2b().Render())
	fmt.Println()
	fmt.Print(bench.Figure3a(env).Render())
	fmt.Println()
	fmt.Print(bench.Figure3b(figScales, workers, *seed).Render())
	fmt.Println()
	fmt.Print(bench.Figure4(env, 3).Render())
	fmt.Println()
	fmt.Print(bench.Figure5a(env).Render())
	fmt.Println()
	fmt.Print(bench.Figure5b(env, 20).Render())
	fmt.Println()
	fmt.Print(bench.AblationWindowed(env, 4).Render())
	fmt.Println()
	fmt.Print(bench.AblationTimeOrderedIDs(env, 5).Render())
	fmt.Println()
	fmt.Print(bench.AblationCuratedMix(env, 15).Render())
	fmt.Println()
	fmt.Printf("interactive run: wall %v, throughput %.0f ops/s, errors %d\n",
		rep.Wall.Round(1000000), rep.Throughput, rep.Errors)
}
