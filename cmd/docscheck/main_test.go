package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func runOn(t *testing.T, files ...string) (int, string, string) {
	t.Helper()
	for i, f := range files {
		files[i] = filepath.Join("testdata", f)
	}
	var stdout, stderr strings.Builder
	code := run(files, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestCleanDoc(t *testing.T) {
	code, stdout, stderr := runOn(t, "clean.md", "target.md")
	if code != 0 {
		t.Fatalf("exit %d, want 0; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "2 file(s) clean") {
		t.Errorf("stdout should report both files clean, got %q", stdout)
	}
}

func TestBrokenLink(t *testing.T) {
	code, _, stderr := runOn(t, "broken-link.md")
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, `broken link "no-such-file.md"`) {
		t.Errorf("missing broken-link report, got:\n%s", stderr)
	}
	if !strings.Contains(stderr, "absolute path link") {
		t.Errorf("missing absolute-path report, got:\n%s", stderr)
	}
	if !strings.Contains(stderr, "2 problem(s)") {
		t.Errorf("should count exactly 2 problems, got:\n%s", stderr)
	}
}

func TestBrokenAnchor(t *testing.T) {
	code, _, stderr := runOn(t, "broken-anchor.md")
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, `anchor "target.md#no-such-heading" not found`) {
		t.Errorf("missing broken-anchor report, got:\n%s", stderr)
	}
}

func TestNoArgsIsUsageError(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
