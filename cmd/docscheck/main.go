// docscheck is the documentation link-and-anchor checker wired into
// `make docs-check` and CI: it walks the markdown files given as
// arguments, extracts every inline link, and verifies that
//
//   - relative link targets exist on disk (relative to the linking file);
//   - fragment links (#section, file.md#section) resolve to a heading in
//     the target file, using GitHub's heading-to-anchor slug rules;
//   - in-repo links do not use absolute filesystem paths.
//
// External schemes (http, https, mailto) are deliberately not fetched —
// CI must not depend on the network — so only their syntax is accepted.
// Exit status is non-zero if any check fails, so stale links fail the
// build instead of rotting silently.
//
// Usage:
//
//	docscheck README.md docs/*.md
package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links [text](target). Images share the
// syntax (![alt](target)) and are checked the same way.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// headingRE matches ATX headings; the capture is the heading text.
var headingRE = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*#*\s*$`)

// fenceRE strips fenced code blocks so example links and #-comments inside
// them are not checked.
var fenceRE = regexp.MustCompile("(?s)```.*?```")

// slug converts a heading to its GitHub anchor: lowercase, markup
// stripped, punctuation dropped, spaces to hyphens.
func slug(h string) string {
	h = strings.NewReplacer("`", "", "*", "", "_", " ").Replace(h)
	h = strings.ToLower(strings.TrimSpace(h))
	var b strings.Builder
	for _, r := range h {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// anchorsOf returns the set of heading anchors of one markdown file,
// applying GitHub's duplicate-suffix rule (-1, -2, ...).
func anchorsOf(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	body := fenceRE.ReplaceAllString(string(data), "")
	anchors := map[string]bool{}
	for _, m := range headingRE.FindAllStringSubmatch(body, -1) {
		a := slug(m[1])
		if !anchors[a] {
			anchors[a] = true
			continue
		}
		for i := 1; ; i++ {
			if d := fmt.Sprintf("%s-%d", a, i); !anchors[d] {
				anchors[d] = true
				break
			}
		}
	}
	return anchors, nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run checks every file and reports problems to stderr; it returns the
// process exit status (0 clean, 1 problems found, 2 usage error).
func run(files []string, stdout, stderr io.Writer) int {
	if len(files) == 0 {
		fmt.Fprintln(stderr, "usage: docscheck FILE.md ...")
		return 2
	}
	anchorCache := map[string]map[string]bool{}
	fails := 0
	fail := func(file, format string, args ...any) {
		fmt.Fprintf(stderr, "%s: %s\n", file, fmt.Sprintf(format, args...))
		fails++
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			fail(file, "%v", err)
			continue
		}
		body := fenceRE.ReplaceAllString(string(data), "")
		for _, m := range linkRE.FindAllStringSubmatch(body, -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue
			case strings.HasPrefix(target, "/"):
				fail(file, "absolute path link %q (use a repo-relative path)", target)
				continue
			}
			path, frag, _ := strings.Cut(target, "#")
			resolved := file
			if path != "" {
				resolved = filepath.Join(filepath.Dir(file), path)
				if _, err := os.Stat(resolved); err != nil {
					fail(file, "broken link %q: %v", target, err)
					continue
				}
			}
			if frag == "" {
				continue
			}
			if !strings.HasSuffix(resolved, ".md") {
				fail(file, "anchor link %q into a non-markdown target", target)
				continue
			}
			anchors, ok := anchorCache[resolved]
			if !ok {
				anchors, err = anchorsOf(resolved)
				if err != nil {
					fail(file, "anchor link %q: %v", target, err)
					continue
				}
				anchorCache[resolved] = anchors
			}
			if !anchors[frag] {
				fail(file, "anchor %q not found in %s", target, resolved)
			}
		}
	}
	if fails > 0 {
		fmt.Fprintf(stderr, "docscheck: %d problem(s)\n", fails)
		return 1
	}
	fmt.Fprintf(stdout, "docscheck: %d file(s) clean\n", len(files))
	return 0
}
