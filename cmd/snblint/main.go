// Command snblint runs the repo's static analysis suite — the
// internal/lint analyzers that enforce the store's concurrency,
// aliasing and determinism invariants — over the packages matching the
// given patterns (default ./...). It prints one line per finding and
// exits 1 if there are any, 2 on a load or usage error.
//
// Usage:
//
//	snblint [-only name,name] [-list] [packages]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ldbcsnb/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("snblint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All
	if *only != "" {
		byName := make(map[string]*lint.Analyzer, len(lint.All))
		for _, a := range lint.All {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "snblint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "snblint: %v\n", err)
		return 2
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "snblint: %v\n", err)
		return 2
	}

	diags := lint.Run(analyzers, pkgs)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "snblint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
