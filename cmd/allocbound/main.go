// Command allocbound gates the `//snb:noalloc` invariant: it scans the
// tree for marked functions, rebuilds the module with the compiler's
// escape analysis enabled (`go build -gcflags=-m`), and fails if any
// heap-allocation diagnostic lands inside a marked function's line
// range. The AST cannot decide what allocates — the escape analyzer
// can, so the gate is the compiler's own verdict. Results replay from
// the build cache, so a warm run is cheap.
//
// Usage:
//
//	allocbound [dirs]   (default: . — the whole module)
//
// Exit status: 0 clean, 1 if a marked function allocates, 2 on
// build/scan failure.
package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"

	"ldbcsnb/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	roots := args
	if len(roots) == 0 {
		roots = []string{"."}
	}
	marked, err := lint.ScanNoalloc(roots...)
	if err != nil {
		fmt.Fprintf(stderr, "allocbound: scanning for //snb:noalloc: %v\n", err)
		return 2
	}
	if len(marked) == 0 {
		fmt.Fprintln(stdout, "allocbound: no //snb:noalloc functions found")
		return 0
	}

	cmd := exec.Command("go", "build", "-gcflags=-m", "./...")
	var diag bytes.Buffer
	cmd.Stderr = &diag
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(stderr, "allocbound: go build -gcflags=-m: %v\n%s", err, diag.Bytes())
		return 2
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "allocbound: %v\n", err)
		return 2
	}
	escapes, err := lint.MatchEscapes(&diag, cwd, marked)
	if err != nil {
		fmt.Fprintf(stderr, "allocbound: parsing escape diagnostics: %v\n", err)
		return 2
	}
	for _, e := range escapes {
		fmt.Fprintln(stdout, e)
	}
	if len(escapes) > 0 {
		fmt.Fprintf(stderr, "allocbound: %d heap allocation(s) in //snb:noalloc functions\n", len(escapes))
		return 1
	}
	fmt.Fprintf(stdout, "allocbound: %d //snb:noalloc function(s) clean\n", len(marked))
	return 0
}
