// snb-datagen generates an SNB social network: the bulk-load CSV dataset,
// the update-stream summary, and curated query parameters — the Go
// counterpart of the paper's Hadoop DATAGEN (§2).
//
// Usage:
//
//	snb-datagen -sf 0.1 -out ./data [-seed 42] [-workers 4] [-events]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"ldbcsnb/internal/datagen"
	"ldbcsnb/internal/params"
	"ldbcsnb/internal/schema"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("snb-datagen: ")

	sf := flag.Float64("sf", 0.05, "scale factor (1.0 = 6000 persons ≈ 1 GB CSV at full fidelity)")
	personsFlag := flag.Int("persons", 0, "explicit person count (overrides -sf)")
	out := flag.String("out", "snb-data", "output directory")
	seed := flag.Uint64("seed", 42, "generator seed (same seed, same dataset)")
	workers := flag.Int("workers", 2, "parallel generation workers (output is identical for any value)")
	events := flag.Bool("events", true, "enable event-driven spiking trends (Figure 2a)")
	curateK := flag.Int("curate", 50, "curated parameter bindings per query template")
	flag.Parse()

	persons := *personsFlag
	if persons == 0 {
		persons = datagen.PersonsForSF(*sf)
	}
	if persons < 2 {
		log.Fatal("need at least 2 persons")
	}

	fmt.Printf("generating %d persons (seed %d, %d workers, events %v)...\n",
		persons, *seed, *workers, *events)
	o := datagen.Generate(datagen.Config{
		Seed: *seed, Persons: persons, Workers: *workers, Events: *events,
	})
	c := o.Data.Counts()
	fmt.Printf("generated: %d persons, %d friendships, %d forums, %d posts, %d comments, %d likes\n",
		c.Persons, c.Friendships, c.Forums, c.Posts, c.Comments, c.Likes)

	bulk, updates := datagen.Split(o.Data, datagen.UpdateCut)
	fmt.Printf("split at 32 months: %d bulk entities, %d update operations\n",
		bulk.Counts().Persons+bulk.Counts().Messages(), len(updates))

	bulkDir := filepath.Join(*out, "bulk")
	n, err := schema.WriteCSVDir(bulk, bulkDir)
	if err != nil {
		log.Fatalf("write bulk CSV: %v", err)
	}
	fmt.Printf("bulk CSV: %s (%.2f MB)\n", bulkDir, float64(n)/(1<<20))

	fullDir := filepath.Join(*out, "full")
	if _, err := schema.WriteCSVDir(o.Data, fullDir); err != nil {
		log.Fatalf("write full CSV: %v", err)
	}
	fmt.Printf("full CSV: %s\n", fullDir)

	// Curated parameters (§4.1), written as one CSV per query template.
	if err := writeParams(*out, o.Data, *curateK); err != nil {
		log.Fatalf("parameter curation: %v", err)
	}
	fmt.Printf("curated parameters: %s\n", filepath.Join(*out, "params"))
}

func writeParams(out string, d *schema.Dataset, k int) error {
	dir := filepath.Join(out, "params")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, tab := range map[string]*params.Table{
		"q2": params.BuildQ2Table(d),
		"q5": params.BuildQ5Table(d),
		"q9": params.BuildQ9Table(d),
	} {
		f, err := os.Create(filepath.Join(dir, name+"_persons.csv"))
		if err != nil {
			return err
		}
		w := csv.NewWriter(f)
		if err := w.Write([]string{"personId"}); err != nil {
			f.Close()
			return err
		}
		for _, p := range tab.Curate(k) {
			if err := w.Write([]string{strconv.FormatUint(p, 10)}); err != nil {
				f.Close()
				return err
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
