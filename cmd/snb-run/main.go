// snb-run executes the SNB Interactive benchmark end to end: generate (or
// reload) a dataset, bulk-load the store, replay the update stream with
// dependency tracking while running the read mix, and report the
// per-query latency tables and throughput — the §5 evaluation flow.
//
// Every read-only query (Q1-Q14, S1-S7) executes through the single
// generic Reader implementation; -readpath selects whether the run drives
// the frozen snapshot views (the lock-free hot path, default) or MVCC read
// transactions, and the report prints the per-query latency/count tables
// for whichever path ran.
//
// On the view path the report also breaks view acquisition into
// refresh-vs-rebuild latency and prints the store's view-maintenance
// counters (delta refreshes, rebuilds, era bumps, ring overflows), so the
// residual rebuild tax is observable from the CLI;
// -view-compact-threshold tunes how much copy-on-write overlay a refreshed
// view chain may accumulate before recompacting.
//
// The optional BI analyst lane (-bi) runs the eight graph-wide BI queries
// (bi.Registry) alongside the Interactive mix with their own latency
// table: on the view path each execution is morsel-parallel across
// -bi-workers workers over the frozen snapshot's dense node ranges
// (-bi-workers 1 selects the serial view scan, the txn read path always
// runs serially).
//
// # Durable mode
//
// -data-dir makes the run durable: the store opens (or recovers) a data
// directory holding a segmented WAL plus checkpoints (docs/FORMATS.md).
// On a fresh directory the bulk load is logged, a post-load checkpoint is
// taken, the mixed run's updates append to the WAL (with a background
// checkpointer bounding the replay tail), and shutdown is clean: final
// checkpoint, WAL fsync, close. On a directory that already holds data
// the store recovers — newest valid checkpoint plus WAL tail replay — the
// recovery timings are printed, and the run serves the read-only mix over
// the recovered state (the update stream was already applied in the run
// that wrote the directory; re-applying it would double-create entities).
// -wal-sync selects the durability mode (none|flush|commit); commits go
// through the group-commit batcher, so fsync-on-commit amortises one fsync
// over every commit in a batch. -wal-lanes stripes the WAL over per-shard
// lanes with independent flushers, and -wal-batch caps records per batch.
// See store.PersistOptions for the exact guarantee of each mode.
//
// -write-clients adds a dedicated write lane to the mixed run: concurrent
// clients issuing small insert transactions back to back, reported as an
// end-to-end commit-latency bucket (the group-commit pipeline's metric).
//
// SIGINT/SIGTERM interrupt a run gracefully: read, write and BI lanes
// stop at their next operation boundary, started update transactions
// finish (so dependency holds release), and durable mode still runs the
// clean-shutdown path — final checkpoint, group-commit lanes flushed, WAL
// synced — so everything Commit acknowledged before the signal survives
// recovery.
//
// # Serve mode
//
// -serve-addr turns snb-run into the open-loop network driver for a
// snb-serve instance: no local dataset or store is built; requests are
// issued over the wire on a Poisson schedule at -arrival-rate requests/s
// for -serve-duration (the paper's scheduled-start-time driver model),
// with retry/backoff honoring the server's RETRY_AFTER hints, and the
// report prints per-class p50/p99/p999 plus shed/timeout/retry counts.
//
// Usage:
//
//	snb-run -sf 0.05 [-streams 4] [-readclients 2] [-pertype 3] [-uniform] [-readpath txn|view]
//	        [-view-compact-threshold N] [-bi] [-bi-workers N] [-bi-clients N] [-bi-rounds N]
//	        [-data-dir DIR] [-wal-sync none|flush|commit] [-wal-lanes N] [-wal-batch N]
//	        [-wal-segment-bytes N] [-checkpoint-bytes N] [-checkpoint-commits N]
//	        [-write-clients N] [-write-ops N]
//	snb-run -serve-addr HOST:PORT -arrival-rate N [-serve-duration DUR]
//	        [-serve-deadline MS] [-serve-retries N] [-serve-inflight N]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"ldbcsnb/internal/bench"
	"ldbcsnb/internal/datagen"
	"ldbcsnb/internal/driver"
	"ldbcsnb/internal/query"
	"ldbcsnb/internal/schema"
	"ldbcsnb/internal/server/client"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/xrand"
)

// runConfig is the dataset-generation fingerprint snb-run stores next to a
// durable data directory: the recovered store only matches the read mix's
// parameter pools if the dataset is regenerated with the same scale and
// seed, so a mismatch on reopen is an operator error surfaced up front
// rather than a run full of silently empty queries.
type runConfig struct {
	Persons int    `json:"persons"`
	Seed    uint64 `json:"seed"`
}

const runConfigName = "snb-run.json"

func writeRunConfig(dir string, cfg runConfig) error {
	data, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, runConfigName), append(data, '\n'), 0o644)
}

// parseWALSync maps the -wal-sync flag to a store.WALSyncMode.
func parseWALSync(s string) (store.WALSyncMode, error) {
	switch s {
	case "none", "":
		return store.SyncClose, nil
	case "flush":
		return store.SyncFlush, nil
	case "commit":
		return store.SyncCommit, nil
	}
	return store.SyncClose, fmt.Errorf("invalid -wal-sync %q (want none, flush or commit)", s)
}

func checkRunConfig(dir string, cfg runConfig) {
	data, err := os.ReadFile(filepath.Join(dir, runConfigName))
	if err != nil {
		log.Printf("warning: %s missing (%v); cannot verify the data dir matches -persons/-seed", runConfigName, err)
		return
	}
	var got runConfig
	if err := json.Unmarshal(data, &got); err != nil {
		log.Fatalf("%s: %v", runConfigName, err)
	}
	if got != cfg {
		log.Fatalf("data dir %s was written with -persons %d -seed %d; this run regenerated the dataset with -persons %d -seed %d — "+
			"query parameters would not match the recovered store (rerun with the original flags, or point -data-dir elsewhere)",
			dir, got.Persons, got.Seed, cfg.Persons, cfg.Seed)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("snb-run: ")

	sf := flag.Float64("sf", 0.05, "scale factor")
	personsFlag := flag.Int("persons", 0, "explicit person count (overrides -sf)")
	seed := flag.Uint64("seed", 42, "generator seed")
	streams := flag.Int("streams", 4, "update stream partitions")
	readClients := flag.Int("readclients", 2, "concurrent read clients")
	perType := flag.Int("pertype", 3, "complex query executions per type (base)")
	uniform := flag.Bool("uniform", false, "use uniform instead of curated Q5 parameters (Figure 5b ablation)")
	readPath := flag.String("readpath", driver.ReadPathView,
		"read path for all queries and short reads: 'view' (frozen snapshots) or 'txn' (MVCC transactions)")
	biLane := flag.Bool("bi", false,
		"run the BI analyst lane alongside the Interactive mix (eight graph-wide BI queries per round)")
	biWorkers := flag.Int("bi-workers", 0,
		"morsel fan-out per BI query on the view path: 0 = GOMAXPROCS, 1 = serial view scan")
	biClients := flag.Int("bi-clients", 1, "concurrent BI analyst clients when -bi is set")
	biRounds := flag.Int("bi-rounds", 1, "passes each BI client makes over the eight templates")
	compactThreshold := flag.Int("view-compact-threshold", -1,
		"view-maintenance compaction threshold: max copy-on-write overlay entries a refreshed view chain "+
			"may accumulate before the next advance recompacts (0 = recompact on every advance, "+
			"-1 = store default)")
	dataDir := flag.String("data-dir", "",
		"durable mode: open or recover a data directory (segmented WAL + checkpoints); empty = in-memory run")
	walSync := flag.String("wal-sync", "none",
		"with -data-dir: WAL durability mode — 'none' (flush on close), 'flush' (flush each batch), "+
			"'commit' (fsync each group-commit batch; Commit returns only once durable)")
	walLanes := flag.Int("wal-lanes", 0,
		"with -data-dir: number of WAL lanes with independent group-commit flushers (0 = 1 lane)")
	walBatch := flag.Int("wal-batch", 0,
		"with -data-dir: max records per group-commit batch (0 = unbounded)")
	segmentBytes := flag.Int64("wal-segment-bytes", 0,
		"with -data-dir: WAL segment rotation threshold in bytes (0 = default 4 MiB)")
	ckptBytes := flag.Int64("checkpoint-bytes", 0,
		"with -data-dir: background checkpoint after this many WAL bytes (0 = default 32 MiB, negative = disable)")
	ckptCommits := flag.Int64("checkpoint-commits", 0,
		"with -data-dir: background checkpoint after this many commits (0 = disabled)")
	writeClients := flag.Int("write-clients", 0,
		"dedicated write-lane clients issuing small insert transactions (0 = lane disabled)")
	writeOps := flag.Int("write-ops", 0,
		"commits per write-lane client (0 = 100)")
	serveAddr := flag.String("serve-addr", "",
		"serve mode: drive a snb-serve instance at HOST:PORT with the open-loop client instead of running locally")
	arrivalRate := flag.Float64("arrival-rate", 0,
		"serve mode: target Poisson arrival rate in requests/second (required with -serve-addr)")
	serveDuration := flag.Duration("serve-duration", 10*time.Second,
		"serve mode: issuing window")
	serveDeadline := flag.Uint("serve-deadline", 0,
		"serve mode: per-request deadline in ms sent on the wire (0 = server default)")
	serveRetries := flag.Int("serve-retries", 3,
		"serve mode: max retries per request after shed or transport failure")
	serveInflight := flag.Int("serve-inflight", 0,
		"serve mode: max outstanding requests; arrivals beyond it are dropped (0 = 256)")
	queryText := flag.String("query", "",
		"query mode: compile and run one declarative pattern query (docs/QUERY.md) against the "+
			"loaded dataset, print the plan and result rows, and exit; $-parameters are bound "+
			"from the curated pools using -seed, and -readpath picks the execution path")
	flag.Parse()

	if *serveAddr != "" {
		runServeMode(*serveAddr, *arrivalRate, *serveDuration, uint32(*serveDeadline),
			*serveRetries, *serveInflight, *seed)
		return
	}
	if *readPath != driver.ReadPathView && *readPath != driver.ReadPathTxn {
		log.Fatalf("invalid -readpath %q (want %q or %q)", *readPath, driver.ReadPathView, driver.ReadPathTxn)
	}
	syncMode, err := parseWALSync(*walSync)
	if err != nil {
		log.Fatal(err)
	}

	persons := *personsFlag
	if persons == 0 {
		persons = datagen.PersonsForSF(*sf)
	}

	fmt.Printf("building environment: %d persons...\n", persons)
	env := bench.NewEnvData(persons, *seed)

	// Durable mode: open-or-recover; otherwise a fresh in-memory store.
	var persist *store.Persistent
	recovered := false
	if *dataDir != "" {
		opts := store.PersistOptions{
			SegmentBytes:       *segmentBytes,
			WALSync:            syncMode,
			WALLanes:           *walLanes,
			GroupCommitRecords: *walBatch,
			CheckpointBytes:    *ckptBytes,
			CheckpointCommits:  *ckptCommits,
		}
		p, info, err := store.Open(*dataDir, opts, schema.RegisterIndexes)
		if err != nil {
			log.Fatalf("open %s: %v", *dataDir, err)
		}
		persist = p
		if info.Fresh {
			fmt.Printf("data dir %s: fresh; bulk load will be logged\n", *dataDir)
			if err := writeRunConfig(*dataDir, runConfig{Persons: persons, Seed: *seed}); err != nil {
				log.Fatal(err)
			}
			if err := env.LoadInto(p.Store); err != nil {
				log.Fatal(err)
			}
			if err := p.Checkpoint(); err != nil {
				log.Fatalf("post-load checkpoint: %v", err)
			}
			fmt.Printf("post-load checkpoint at commit %d\n", p.CheckpointTS())
		} else {
			checkRunConfig(*dataDir, runConfig{Persons: persons, Seed: *seed})
			recovered = true
			env.Store = p.Store
			fmt.Printf("data dir %s: recovered to commit %d (checkpoint %d + %d WAL records replayed, %d skipped; %d/%d segments scanned/skipped",
				*dataDir, info.Clock, info.CheckpointTS, info.Replayed, info.Skipped,
				info.SegmentsScanned, info.SegmentsSkipped)
			if info.TornBytes > 0 {
				fmt.Printf("; %dB torn tail discarded", info.TornBytes)
			}
			fmt.Println(")")
			for _, bad := range info.BadCheckpoints {
				fmt.Printf("  skipped invalid checkpoint %s\n", bad)
			}
			fmt.Println("update stream already applied by the writing run; serving the read-only mix")
		}
	} else {
		st := store.New()
		schema.RegisterIndexes(st)
		if err := env.LoadInto(st); err != nil {
			log.Fatal(err)
		}
	}

	c := env.Bulk.Counts()
	if recovered {
		fmt.Printf("dataset: %d persons, %d messages, %d forums (bulk split; all %d updates already durable)\n",
			c.Persons, c.Messages(), c.Forums, len(env.Updates))
	} else {
		fmt.Printf("bulk-loaded %d persons, %d messages, %d forums; %d updates pending\n",
			c.Persons, c.Messages(), c.Forums, len(env.Updates))
	}
	fmt.Printf("read path: %s\n", *readPath)
	if *compactThreshold >= 0 {
		env.Store.SetViewCompactThreshold(*compactThreshold)
		fmt.Printf("view compaction threshold: %d overlay entries\n", *compactThreshold)
	}

	if *queryText != "" {
		code := runQueryMode(env, *queryText, *readPath, *seed, *uniform)
		if persist != nil {
			if err := persist.Close(); err != nil {
				log.Fatalf("close: %v", err)
			}
		}
		os.Exit(code)
	}

	// Graceful shutdown: SIGINT/SIGTERM cancel the run's context; the
	// driver lanes stop at their next operation boundary and control falls
	// through to the clean-shutdown path below (checkpoint, flush, close),
	// so an interrupted durable run keeps every acknowledged commit.
	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	updates := env.Updates
	if recovered {
		updates = nil
	}
	mixed := driver.MixedConfig{
		Ctx:            sigCtx,
		Store:          env.Store,
		Dataset:        env.Full,
		Updates:        updates,
		Streams:        *streams,
		ReadClients:    *readClients,
		ComplexPerType: *perType,
		Seed:           *seed,
		UniformParams:  *uniform,
		ReadPath:       *readPath,
		Persist:        persist,
	}
	if *biLane {
		mixed.BIClients = *biClients
		mixed.BIWorkers = *biWorkers
		mixed.BIRounds = *biRounds
		fmt.Printf("BI lane: %d client(s), %d round(s), workers=%d (0 = GOMAXPROCS)\n",
			*biClients, *biRounds, *biWorkers)
	}
	if *writeClients > 0 {
		mixed.WriteClients = *writeClients
		mixed.WriteOps = *writeOps
		fmt.Printf("write lane: %d client(s), wal-sync=%s, lanes=%d\n",
			*writeClients, syncMode, *walLanes)
	}
	rep := driver.RunMixed(mixed)
	// Stop relaying signals: a second ^C during shutdown kills the process
	// the default way instead of being swallowed.
	stopSignals()
	if rep.Interrupted {
		fmt.Println("\ninterrupted by signal: lanes stopped at operation boundaries; partial results follow")
	}

	fmt.Println()
	fmt.Print(bench.Table6(rep).Render())
	fmt.Println()
	fmt.Print(bench.Table7(rep).Render())
	fmt.Println()
	fmt.Print(bench.Table9(rep).Render())
	fmt.Println()
	if *biLane {
		fmt.Print(bench.TableBI(rep).Render())
		fmt.Println()
	}
	fmt.Printf("wall time: %v   throughput: %.0f ops/s   errors: %d\n",
		rep.Wall.Round(1000000), rep.Throughput, rep.Errors)
	if rep.ViewAcquire.Count > 0 {
		fmt.Printf("view acquire: mean %v over %d acquisitions\n",
			rep.ViewAcquire.Mean(), rep.ViewAcquire.Count)
		fmt.Printf("  refresh/hit: mean %v over %d   rebuild: mean %v over %d\n",
			rep.ViewRefresh.Mean(), rep.ViewRefresh.Count,
			rep.ViewRebuild.Mean(), rep.ViewRebuild.Count)
		vs := env.Store.ViewStats()
		fmt.Printf("view maintenance: %d delta refreshes, %d rebuilds, %d era bumps, %d ring overflows\n",
			vs.Refreshes, vs.Rebuilds, vs.EraBumps, vs.Overflows)
	}
	if rep.Commit.Count > 0 {
		fmt.Printf("write lane: %d commits, latency mean %v p95 %v max %v\n",
			rep.Commit.Count, rep.Commit.Mean(), rep.Commit.Percentile(95), rep.Commit.Max)
	}
	if rep.Persist != nil {
		fmt.Printf("durability: %d WAL bytes appended, %d rotations, %d checkpoints (last at commit %d), %d segments truncated, final sync %v\n",
			rep.Persist.WALBytes, rep.Persist.WALRotations, rep.Persist.Checkpoints,
			rep.Persist.LastCheckpointTS, rep.Persist.SegmentsRemoved, rep.FinalSync.Round(1000))
		if rep.Persist.Batches > 0 {
			fmt.Printf("group commit: %d batches, %d records (%.1f recs/batch), %d fsyncs\n",
				rep.Persist.Batches, rep.Persist.BatchedRecords,
				float64(rep.Persist.BatchedRecords)/float64(rep.Persist.Batches),
				rep.Persist.Fsyncs)
		}
		if rep.FinalSyncErr != nil {
			log.Printf("final WAL sync FAILED: %v (commits since the last successful sync may not be durable)", rep.FinalSyncErr)
		}
	}

	// Clean shutdown of the durable store: final checkpoint (so the next
	// open skips tail replay), then sync and close the WAL.
	if persist != nil {
		if err := persist.Err(); err != nil {
			log.Printf("background checkpoint error: %v", err)
		}
		if err := persist.Checkpoint(); err != nil {
			log.Fatalf("shutdown checkpoint: %v", err)
		}
		if err := persist.Close(); err != nil {
			log.Fatalf("close: %v", err)
		}
		fmt.Printf("clean shutdown: checkpoint at commit %d, WAL synced\n", persist.CheckpointTS())
	}
	if rep.Errors > 0 {
		os.Exit(1)
	}
}

// runQueryMode compiles one declarative pattern query with cardinality
// hints from the current snapshot view, runs it on the selected read path,
// and prints the plan, the result rows and the execution timing. Returns
// the process exit code.
func runQueryMode(env *bench.Env, text, readPath string, seed uint64, uniform bool) int {
	q, err := query.Parse(text)
	if err != nil {
		log.Printf("parse: %v", err)
		return 1
	}
	v := env.Store.CurrentView()
	plan, err := query.CompileOpts(q, query.Opts{Card: v.NumOfKind})
	if err != nil {
		log.Printf("plan: %v", err)
		return 1
	}
	fmt.Printf("\nquery: %s\nplan:\n%s\n", q, plan)

	pools := driver.PreparePools(env.Full, seed, uniform)
	params := query.StandardParams(pools, xrand.New(seed, 0x9e3779b9))
	sc := query.NewScratch()
	var res *query.Result
	start := time.Now()
	if readPath == driver.ReadPathTxn {
		env.Store.View(func(tx *store.Txn) {
			res, err = query.Run(tx, sc, plan, params)
		})
	} else {
		res, err = query.Run(v, sc, plan, params)
	}
	elapsed := time.Since(start)
	if err != nil {
		log.Printf("execute: %v", err)
		return 1
	}
	fmt.Print(res)
	fmt.Printf("\n%d row(s) in %v (%s path)\n", len(res.Rows), elapsed.Round(time.Microsecond), readPath)
	return 0
}

// runServeMode drives a remote snb-serve instance with the open-loop
// Poisson generator and prints the per-class latency/outcome report.
func runServeMode(addr string, rate float64, duration time.Duration, deadlineMs uint32,
	retries, inflight int, seed uint64) {
	if rate <= 0 {
		log.Fatal("serve mode needs -arrival-rate > 0")
	}
	fmt.Printf("open-loop driver: %s at %.0f req/s for %v (deadline %dms, retries %d)\n",
		addr, rate, duration, deadlineMs, retries)
	rep, err := client.RunOpenLoop(client.LoadConfig{
		Client: client.Options{
			Addr:     addr,
			RetryMax: retries,
			Seed:     seed,
		},
		Rate:        rate,
		Duration:    duration,
		MaxInFlight: inflight,
		DeadlineMs:  deadlineMs,
		Seed:        seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Printf("%-8s %8s %8s %8s %8s %8s %10s %10s %10s\n",
		"class", "issued", "ok", "shed", "timeout", "failed", "p50", "p99", "p999")
	for i := range rep.Classes {
		cs := &rep.Classes[i]
		if cs.Issued == 0 {
			continue
		}
		fmt.Printf("%-8s %8d %8d %8d %8d %8d %10v %10v %10v\n",
			cs.Name, cs.Issued, cs.OK, cs.Shed, cs.Timeout, cs.Failed+cs.Errors,
			cs.Latency.Percentile(50).Round(time.Microsecond),
			cs.Latency.Percentile(99).Round(time.Microsecond),
			cs.Latency.Percentile(99.9).Round(time.Microsecond))
	}
	fmt.Println()
	fmt.Printf("achieved %.0f req/s over %v (target %.0f); %d dropped at the generator\n",
		rep.Rate, rep.Elapsed.Round(time.Millisecond), rep.Target, rep.Dropped)
	c := rep.Client
	fmt.Printf("transport: %d retries, %d failed attempts, %d gave up, %d faults injected\n",
		c.Retries, c.Transport, c.GaveUp, c.FaultsInjected)
}
