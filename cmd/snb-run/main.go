// snb-run executes the SNB Interactive benchmark end to end: generate (or
// reload) a dataset, bulk-load the store, replay the update stream with
// dependency tracking while running the read mix, and report the
// per-query latency tables and throughput — the §5 evaluation flow.
//
// Every read-only query (Q1-Q14, S1-S7) executes through the single
// generic Reader implementation; -readpath selects whether the run drives
// the frozen snapshot views (the lock-free hot path, default) or MVCC read
// transactions, and the report prints the per-query latency/count tables
// for whichever path ran.
//
// On the view path the report also breaks view acquisition into
// refresh-vs-rebuild latency and prints the store's view-maintenance
// counters (delta refreshes, rebuilds, era bumps, ring overflows), so the
// residual rebuild tax is observable from the CLI;
// -view-compact-threshold tunes how much copy-on-write overlay a refreshed
// view chain may accumulate before recompacting.
//
// The optional BI analyst lane (-bi) runs the eight graph-wide BI queries
// (bi.Registry) alongside the Interactive mix with their own latency
// table: on the view path each execution is morsel-parallel across
// -bi-workers workers over the frozen snapshot's dense node ranges
// (-bi-workers 1 selects the serial view scan, the txn read path always
// runs serially).
//
// Usage:
//
//	snb-run -sf 0.05 [-streams 4] [-readclients 2] [-pertype 3] [-uniform] [-readpath txn|view]
//	        [-view-compact-threshold N] [-bi] [-bi-workers N] [-bi-clients N] [-bi-rounds N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ldbcsnb/internal/bench"
	"ldbcsnb/internal/datagen"
	"ldbcsnb/internal/driver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("snb-run: ")

	sf := flag.Float64("sf", 0.05, "scale factor")
	personsFlag := flag.Int("persons", 0, "explicit person count (overrides -sf)")
	seed := flag.Uint64("seed", 42, "generator seed")
	streams := flag.Int("streams", 4, "update stream partitions")
	readClients := flag.Int("readclients", 2, "concurrent read clients")
	perType := flag.Int("pertype", 3, "complex query executions per type (base)")
	uniform := flag.Bool("uniform", false, "use uniform instead of curated Q5 parameters (Figure 5b ablation)")
	readPath := flag.String("readpath", driver.ReadPathView,
		"read path for all queries and short reads: 'view' (frozen snapshots) or 'txn' (MVCC transactions)")
	biLane := flag.Bool("bi", false,
		"run the BI analyst lane alongside the Interactive mix (eight graph-wide BI queries per round)")
	biWorkers := flag.Int("bi-workers", 0,
		"morsel fan-out per BI query on the view path: 0 = GOMAXPROCS, 1 = serial view scan")
	biClients := flag.Int("bi-clients", 1, "concurrent BI analyst clients when -bi is set")
	biRounds := flag.Int("bi-rounds", 1, "passes each BI client makes over the eight templates")
	compactThreshold := flag.Int("view-compact-threshold", -1,
		"view-maintenance compaction threshold: max copy-on-write overlay entries a refreshed view chain "+
			"may accumulate before the next advance recompacts (0 = recompact on every advance, "+
			"-1 = store default)")
	flag.Parse()

	if *readPath != driver.ReadPathView && *readPath != driver.ReadPathTxn {
		log.Fatalf("invalid -readpath %q (want %q or %q)", *readPath, driver.ReadPathView, driver.ReadPathTxn)
	}

	persons := *personsFlag
	if persons == 0 {
		persons = datagen.PersonsForSF(*sf)
	}

	fmt.Printf("building environment: %d persons...\n", persons)
	env, err := bench.NewEnv(persons, *seed)
	if err != nil {
		log.Fatal(err)
	}
	c := env.Bulk.Counts()
	fmt.Printf("bulk-loaded %d persons, %d messages, %d forums; %d updates pending\n",
		c.Persons, c.Messages(), c.Forums, len(env.Updates))
	fmt.Printf("read path: %s\n", *readPath)
	if *compactThreshold >= 0 {
		env.Store.SetViewCompactThreshold(*compactThreshold)
		fmt.Printf("view compaction threshold: %d overlay entries\n", *compactThreshold)
	}

	mixed := driver.MixedConfig{
		Store:          env.Store,
		Dataset:        env.Full,
		Updates:        env.Updates,
		Streams:        *streams,
		ReadClients:    *readClients,
		ComplexPerType: *perType,
		Seed:           *seed,
		UniformParams:  *uniform,
		ReadPath:       *readPath,
	}
	if *biLane {
		mixed.BIClients = *biClients
		mixed.BIWorkers = *biWorkers
		mixed.BIRounds = *biRounds
		fmt.Printf("BI lane: %d client(s), %d round(s), workers=%d (0 = GOMAXPROCS)\n",
			*biClients, *biRounds, *biWorkers)
	}
	rep := driver.RunMixed(mixed)

	fmt.Println()
	fmt.Print(bench.Table6(rep).Render())
	fmt.Println()
	fmt.Print(bench.Table7(rep).Render())
	fmt.Println()
	fmt.Print(bench.Table9(rep).Render())
	fmt.Println()
	if *biLane {
		fmt.Print(bench.TableBI(rep).Render())
		fmt.Println()
	}
	fmt.Printf("wall time: %v   throughput: %.0f ops/s   errors: %d\n",
		rep.Wall.Round(1000000), rep.Throughput, rep.Errors)
	if rep.ViewAcquire.Count > 0 {
		fmt.Printf("view acquire: mean %v over %d acquisitions\n",
			rep.ViewAcquire.Mean(), rep.ViewAcquire.Count)
		fmt.Printf("  refresh/hit: mean %v over %d   rebuild: mean %v over %d\n",
			rep.ViewRefresh.Mean(), rep.ViewRefresh.Count,
			rep.ViewRebuild.Mean(), rep.ViewRebuild.Count)
		vs := env.Store.ViewStats()
		fmt.Printf("view maintenance: %d delta refreshes, %d rebuilds, %d era bumps, %d ring overflows\n",
			vs.Refreshes, vs.Rebuilds, vs.EraBumps, vs.Overflows)
	}
	if rep.Errors > 0 {
		os.Exit(1)
	}
}
