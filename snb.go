// Package snb is a from-scratch Go reproduction of "The LDBC Social
// Network Benchmark: Interactive Workload" (SIGMOD 2015): the correlated
// social-network data generator, a transactional property-graph store, the
// full Interactive query workload, the dependency-tracking workload
// driver, the parameter-curation pipeline, and a harness regenerating
// every table and figure of the paper's evaluation.
//
// See README.md for a tour and DESIGN.md for the system inventory; the
// runnable entry points are under cmd/ and examples/.
package snb

// Version identifies the reproduction release.
const Version = "1.0.0"
