module ldbcsnb

go 1.24
