package btree

import (
	"sort"
	"testing"
	"testing/quick"

	"ldbcsnb/internal/xrand"
)

func TestEmptyTree(t *testing.T) {
	var tr Tree
	if tr.Len() != 0 {
		t.Fatal("empty tree length")
	}
	if _, ok := tr.Get(1, 1); ok {
		t.Fatal("Get on empty tree")
	}
	if _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree")
	}
	if tr.Delete(1, 1) {
		t.Fatal("Delete on empty tree")
	}
	tr.Ascend(0, 0, func(Entry) bool { t.Fatal("unexpected entry"); return false })
}

func TestInsertGet(t *testing.T) {
	var tr Tree
	for i := int64(0); i < 1000; i++ {
		tr.Insert(i*3, uint64(i), uint64(i*10))
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := int64(0); i < 1000; i++ {
		v, ok := tr.Get(i*3, uint64(i))
		if !ok || v != uint64(i*10) {
			t.Fatalf("Get(%d) = %d,%v", i*3, v, ok)
		}
	}
	if _, ok := tr.Get(1, 0); ok {
		t.Fatal("phantom key")
	}
}

func TestInsertOverwrite(t *testing.T) {
	var tr Tree
	tr.Insert(5, 1, 100)
	tr.Insert(5, 1, 200)
	if tr.Len() != 1 {
		t.Fatalf("overwrite changed Len: %d", tr.Len())
	}
	v, _ := tr.Get(5, 1)
	if v != 200 {
		t.Fatalf("overwrite lost: %d", v)
	}
}

func TestAscendOrder(t *testing.T) {
	var tr Tree
	r := xrand.New(3)
	const n = 5000
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = r.Int63() % 100000
		tr.Insert(keys[i], uint64(i), uint64(i))
	}
	var got []int64
	tr.Ascend(-1<<62, 0, func(e Entry) bool {
		got = append(got, e.Key)
		return true
	})
	if len(got) != n {
		t.Fatalf("Ascend visited %d of %d", len(got), n)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("Ascend out of order")
	}
}

func TestAscendFrom(t *testing.T) {
	var tr Tree
	for i := int64(0); i < 100; i++ {
		tr.Insert(i, 0, uint64(i))
	}
	var got []int64
	tr.Ascend(42, 0, func(e Entry) bool {
		got = append(got, e.Key)
		return len(got) < 5
	})
	want := []int64{42, 43, 44, 45, 46}
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestAscendRange(t *testing.T) {
	var tr Tree
	for i := int64(0); i < 100; i++ {
		tr.Insert(i, 0, uint64(i))
	}
	count := 0
	tr.AscendRange(10, 20, func(e Entry) bool {
		if e.Key < 10 || e.Key >= 20 {
			t.Fatalf("key %d outside [10,20)", e.Key)
		}
		count++
		return true
	})
	if count != 10 {
		t.Fatalf("range count %d", count)
	}
}

func TestDelete(t *testing.T) {
	var tr Tree
	for i := int64(0); i < 2000; i++ {
		tr.Insert(i, 0, uint64(i))
	}
	for i := int64(0); i < 2000; i += 2 {
		if !tr.Delete(i, 0) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len after deletes = %d", tr.Len())
	}
	for i := int64(0); i < 2000; i++ {
		_, ok := tr.Get(i, 0)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) = %v, want %v", i, ok, want)
		}
	}
	if tr.Delete(0, 0) {
		t.Fatal("double delete succeeded")
	}
}

func TestMin(t *testing.T) {
	var tr Tree
	tr.Insert(50, 0, 1)
	tr.Insert(10, 0, 2)
	tr.Insert(99, 0, 3)
	e, ok := tr.Min()
	if !ok || e.Key != 10 {
		t.Fatalf("Min = %v,%v", e, ok)
	}
}

func TestDuplicateKeysDistinctSubs(t *testing.T) {
	var tr Tree
	for s := uint64(0); s < 500; s++ {
		tr.Insert(7, s, s)
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	count := 0
	tr.Ascend(7, 0, func(e Entry) bool {
		if e.Key != 7 {
			return false
		}
		if e.Sub != uint64(count) {
			t.Fatalf("sub order broken at %d: %d", count, e.Sub)
		}
		count++
		return true
	})
	if count != 500 {
		t.Fatalf("visited %d", count)
	}
}

// TestQuickAgainstMap is the model-based property test: the tree must agree
// with a reference map under arbitrary insert/delete workloads.
func TestQuickAgainstMap(t *testing.T) {
	type op struct {
		Key    int8 // small domains to force collisions and overwrites
		Sub    uint8
		Val    uint16
		Delete bool
	}
	err := quick.Check(func(ops []op) bool {
		var tr Tree
		ref := map[[2]int64]uint64{}
		for _, o := range ops {
			k, s := int64(o.Key), uint64(o.Sub)
			if o.Delete {
				want := false
				if _, ok := ref[[2]int64{k, int64(s)}]; ok {
					want = true
					delete(ref, [2]int64{k, int64(s)})
				}
				if tr.Delete(k, s) != want {
					return false
				}
			} else {
				tr.Insert(k, s, uint64(o.Val))
				ref[[2]int64{k, int64(s)}] = uint64(o.Val)
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		for ks, v := range ref {
			got, ok := tr.Get(ks[0], uint64(ks[1]))
			if !ok || got != v {
				return false
			}
		}
		// Full scan must be sorted and complete.
		n := 0
		var pk int64 = -1 << 62
		var ps uint64
		ok := true
		tr.Ascend(-1<<62, 0, func(e Entry) bool {
			if e.Key < pk || (e.Key == pk && e.Sub <= ps && n > 0) {
				ok = false
				return false
			}
			pk, ps = e.Key, e.Sub
			n++
			return true
		})
		return ok && n == len(ref)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	var tr Tree
	r := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(r.Int63()%1000000, uint64(i), uint64(i))
	}
}

func BenchmarkGet(b *testing.B) {
	var tr Tree
	for i := int64(0); i < 100000; i++ {
		tr.Insert(i, 0, uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(int64(i%100000), 0)
	}
}
