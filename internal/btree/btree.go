// Package btree implements an in-memory B+tree keyed by (int64, uint64)
// composite keys, used by the store for ordered secondary indexes such as
// the creationDate indexes the paper's choke-point analysis calls out
// ("handling scattered index access patterns", §3; the l_creationdate /
// ps_content indexes of Table 8).
//
// Keys are (Key, Sub) pairs: Key is the ordering attribute (e.g. a
// timestamp, negated for descending scans) and Sub disambiguates entries
// with equal attribute values (e.g. the entity ID). Values are uint64
// payloads (entity IDs).
package btree

import "sort"

const (
	// degree is the maximum number of keys per leaf/branch node. 32 keeps
	// nodes within a couple of cache lines while bounding depth.
	degree = 32
	minLen = degree / 2
)

// Entry is one index entry.
type Entry struct {
	Key int64
	Sub uint64
	Val uint64
}

// less orders entries by (Key, Sub).
func less(aK int64, aS uint64, bK int64, bS uint64) bool {
	if aK != bK {
		return aK < bK
	}
	return aS < bS
}

type node struct {
	// leaf nodes: entries holds data, next links the leaf chain.
	// branch nodes: children holds degree+1 subtrees, keys[i] is the
	// smallest entry key in children[i+1].
	leaf     bool
	entries  []Entry
	keys     []Entry // branch separators (Val unused)
	children []*node
	next     *node
}

// Tree is a B+tree. The zero value is an empty tree ready for use.
type Tree struct {
	root *node
	size int
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// Insert adds an entry. Duplicate (Key, Sub) pairs overwrite the value.
func (t *Tree) Insert(key int64, sub, val uint64) {
	if t.root == nil {
		t.root = &node{leaf: true}
	}
	replaced := t.root.insert(Entry{key, sub, val})
	if !replaced {
		t.size++
	}
	if t.overflowed(t.root) {
		left := t.root
		mid, right := t.split(left)
		t.root = &node{
			keys:     []Entry{mid},
			children: []*node{left, right},
		}
	}
}

func (t *Tree) overflowed(n *node) bool {
	if n.leaf {
		return len(n.entries) > degree
	}
	return len(n.children) > degree+1
}

// split divides an overflowed node, returning the separator and new right
// sibling.
func (t *Tree) split(n *node) (Entry, *node) {
	if n.leaf {
		mid := len(n.entries) / 2
		right := &node{leaf: true, entries: append([]Entry(nil), n.entries[mid:]...), next: n.next}
		n.entries = n.entries[:mid]
		n.next = right
		return Entry{right.entries[0].Key, right.entries[0].Sub, 0}, right
	}
	midIdx := len(n.keys) / 2
	sep := n.keys[midIdx]
	right := &node{
		keys:     append([]Entry(nil), n.keys[midIdx+1:]...),
		children: append([]*node(nil), n.children[midIdx+1:]...),
	}
	n.keys = n.keys[:midIdx]
	n.children = n.children[:midIdx+1]
	return sep, right
}

// insert descends to the leaf; reports whether an existing entry was
// replaced. Children that overflow are split on the way back up.
func (n *node) insert(e Entry) bool {
	if n.leaf {
		i := sort.Search(len(n.entries), func(i int) bool {
			return !less(n.entries[i].Key, n.entries[i].Sub, e.Key, e.Sub)
		})
		if i < len(n.entries) && n.entries[i].Key == e.Key && n.entries[i].Sub == e.Sub {
			n.entries[i].Val = e.Val
			return true
		}
		n.entries = append(n.entries, Entry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = e
		return false
	}
	ci := sort.Search(len(n.keys), func(i int) bool {
		return less(e.Key, e.Sub, n.keys[i].Key, n.keys[i].Sub)
	})
	child := n.children[ci]
	replaced := child.insert(e)
	if (child.leaf && len(child.entries) > degree) || (!child.leaf && len(child.children) > degree+1) {
		var tr Tree
		sep, right := tr.split(child)
		n.keys = append(n.keys, Entry{})
		copy(n.keys[ci+1:], n.keys[ci:])
		n.keys[ci] = sep
		n.children = append(n.children, nil)
		copy(n.children[ci+2:], n.children[ci+1:])
		n.children[ci+1] = right
		return replaced
	}
	return replaced
}

// Delete removes the entry with the given (key, sub), reporting whether it
// existed. Underflowed nodes are left in place (lazy deletion); for the
// workload's insert-heavy update stream this keeps Delete O(log n) without
// rebalancing complexity, at a bounded space cost.
func (t *Tree) Delete(key int64, sub uint64) bool {
	n := t.root
	if n == nil {
		return false
	}
	for !n.leaf {
		ci := sort.Search(len(n.keys), func(i int) bool {
			return less(key, sub, n.keys[i].Key, n.keys[i].Sub)
		})
		n = n.children[ci]
	}
	i := sort.Search(len(n.entries), func(i int) bool {
		return !less(n.entries[i].Key, n.entries[i].Sub, key, sub)
	})
	if i < len(n.entries) && n.entries[i].Key == key && n.entries[i].Sub == sub {
		n.entries = append(n.entries[:i], n.entries[i+1:]...)
		t.size--
		return true
	}
	return false
}

// Get returns the value for (key, sub).
func (t *Tree) Get(key int64, sub uint64) (uint64, bool) {
	n := t.root
	if n == nil {
		return 0, false
	}
	for !n.leaf {
		ci := sort.Search(len(n.keys), func(i int) bool {
			return less(key, sub, n.keys[i].Key, n.keys[i].Sub)
		})
		n = n.children[ci]
	}
	i := sort.Search(len(n.entries), func(i int) bool {
		return !less(n.entries[i].Key, n.entries[i].Sub, key, sub)
	})
	if i < len(n.entries) && n.entries[i].Key == key && n.entries[i].Sub == sub {
		return n.entries[i].Val, true
	}
	return 0, false
}

// Ascend calls fn for every entry with key >= fromKey in ascending order,
// stopping when fn returns false.
func (t *Tree) Ascend(fromKey int64, fromSub uint64, fn func(Entry) bool) {
	n := t.root
	if n == nil {
		return
	}
	for !n.leaf {
		ci := sort.Search(len(n.keys), func(i int) bool {
			return less(fromKey, fromSub, n.keys[i].Key, n.keys[i].Sub)
		})
		n = n.children[ci]
	}
	i := sort.Search(len(n.entries), func(i int) bool {
		return !less(n.entries[i].Key, n.entries[i].Sub, fromKey, fromSub)
	})
	for n != nil {
		for ; i < len(n.entries); i++ {
			if !fn(n.entries[i]) {
				return
			}
		}
		n = n.next
		i = 0
	}
}

// AscendRange calls fn for entries with fromKey <= key < toKey.
func (t *Tree) AscendRange(fromKey, toKey int64, fn func(Entry) bool) {
	t.Ascend(fromKey, 0, func(e Entry) bool {
		if e.Key >= toKey {
			return false
		}
		return fn(e)
	})
}

// Min returns the smallest entry, if any.
func (t *Tree) Min() (Entry, bool) {
	n := t.root
	if n == nil {
		return Entry{}, false
	}
	for !n.leaf {
		n = n.children[0]
	}
	for n != nil {
		if len(n.entries) > 0 {
			return n.entries[0], true
		}
		n = n.next
	}
	return Entry{}, false
}
