package acid

import "testing"

// The store provides snapshot isolation: every anomaly must be prevented
// except write skew, which SI permits by design (the paper: "systems
// providing snapshot isolation behave identically to serializable" for
// this update workload).
func TestBattery(t *testing.T) {
	for _, o := range RunAll() {
		switch o.Name {
		case "write skew (SI permits; expected under this engine)":
			if o.Prevented {
				t.Logf("note: write skew unexpectedly prevented (stricter than SI): %s", o.Detail)
			}
		default:
			if !o.Prevented {
				t.Errorf("%s NOT prevented: %s", o.Name, o.Detail)
			}
		}
	}
}

func TestDirtyWriteDeterministicLoser(t *testing.T) {
	// First committer wins every time.
	for i := 0; i < 20; i++ {
		o := DirtyWrite()
		if !o.Prevented {
			t.Fatalf("dirty write slipped through: %s", o.Detail)
		}
	}
}

func TestLostUpdateRepeated(t *testing.T) {
	for i := 0; i < 5; i++ {
		o := LostUpdate()
		if !o.Prevented {
			t.Fatalf("lost update: %s", o.Detail)
		}
	}
}

func TestWriteSkewIsObservable(t *testing.T) {
	// Documented engine behaviour: SI admits write skew. If this starts
	// failing the engine got stricter — update the docs, not the engine.
	seen := false
	for i := 0; i < 10; i++ {
		if o := WriteSkew(); !o.Prevented {
			seen = true
			break
		}
	}
	if !seen {
		t.Log("write skew never materialised in 10 attempts; engine may be effectively serializable")
	}
}
