// Package acid is a self-contained transaction-anomaly test battery for
// the store, in the spirit of the LDBC ACID test suite. §4 of the paper:
// "We require that all transactions have ACID guarantees, with
// serializability as a consistency requirement. Note that given the nature
// of the update workload, systems providing snapshot isolation behave
// identically to serializable."
//
// Each check constructs the canonical anomaly and reports whether the
// store prevents it. Under snapshot isolation every check here must pass
// except WriteSkew, which SI famously permits — the paper's quoted remark
// is precisely why that is acceptable for this workload (the update stream
// contains no disjoint-write constraints).
package acid

import (
	"errors"
	"fmt"
	"sync"

	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/store"
)

// Outcome is the result of one anomaly check.
type Outcome struct {
	Name      string
	Prevented bool
	Detail    string
}

// RunAll executes the full battery against a fresh store per check.
func RunAll() []Outcome {
	return []Outcome{
		DirtyWrite(),
		DirtyRead(),
		NonRepeatableRead(),
		LostUpdate(),
		PhantomInsert(),
		WriteSkew(),
		Atomicity(),
	}
}

func freshCounter() (*store.Store, ids.ID) {
	st := store.New()
	id := ids.Compose(ids.KindPerson, 1, 0)
	tx := st.Begin()
	_ = tx.CreateNode(id, store.Props{{Key: store.PropLength, Val: store.Int64(0)}})
	if err := tx.Commit(); err != nil {
		panic(err)
	}
	return st, id
}

// DirtyWrite (G0): two concurrent transactions overwrite the same item;
// one must abort or the writes must serialise — interleaved versions from
// both must never both survive.
func DirtyWrite() Outcome {
	st, id := freshCounter()
	t1, t2 := st.Begin(), st.Begin()
	_ = t1.SetProp(id, store.PropLength, store.Int64(1))
	_ = t2.SetProp(id, store.PropLength, store.Int64(2))
	err1 := t1.Commit()
	err2 := t2.Commit()
	oneAborted := (err1 == nil) != (err2 == nil)
	return Outcome{
		Name:      "G0 dirty write",
		Prevented: oneAborted && errors.Is(firstErr(err1, err2), store.ErrConflict),
		Detail:    fmt.Sprintf("err1=%v err2=%v", err1, err2),
	}
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// DirtyRead (G1a): a reader must never observe uncommitted (and later
// aborted) state.
func DirtyRead() Outcome {
	st, id := freshCounter()
	w := st.Begin()
	_ = w.SetProp(id, store.PropLength, store.Int64(99))
	var seen int64
	st.View(func(tx *store.Txn) {
		seen = tx.Prop(id, store.PropLength).Int()
	})
	w.Abort()
	var after int64
	st.View(func(tx *store.Txn) {
		after = tx.Prop(id, store.PropLength).Int()
	})
	return Outcome{
		Name:      "G1a dirty read / aborted read",
		Prevented: seen == 0 && after == 0,
		Detail:    fmt.Sprintf("during=%d after-abort=%d", seen, after),
	}
}

// NonRepeatableRead (fuzzy read): within one transaction, reading the same
// item twice must give the same answer even if another transaction commits
// an update in between.
func NonRepeatableRead() Outcome {
	st, id := freshCounter()
	reader := st.Begin()
	first := reader.Prop(id, store.PropLength).Int()
	w := st.Begin()
	_ = w.SetProp(id, store.PropLength, store.Int64(7))
	if err := w.Commit(); err != nil {
		return Outcome{Name: "fuzzy read", Detail: err.Error()}
	}
	second := reader.Prop(id, store.PropLength).Int()
	return Outcome{
		Name:      "fuzzy (non-repeatable) read",
		Prevented: first == second,
		Detail:    fmt.Sprintf("first=%d second=%d", first, second),
	}
}

// LostUpdate: two read-modify-write increments racing; the total must not
// regress (one conflicts and retries, or they serialise).
func LostUpdate() Outcome {
	st, id := freshCounter()
	increment := func() error {
		for attempt := 0; attempt < 32; attempt++ {
			tx := st.Begin()
			v := tx.Prop(id, store.PropLength).Int()
			_ = tx.SetProp(id, store.PropLength, store.Int64(v+1))
			err := tx.Commit()
			if err == nil {
				return nil
			}
			if !errors.Is(err, store.ErrConflict) {
				return err
			}
		}
		return errors.New("starved")
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = increment()
		}(i)
	}
	wg.Wait()
	var final int64
	st.View(func(tx *store.Txn) {
		final = tx.Prop(id, store.PropLength).Int()
	})
	ok := final == 8
	for _, e := range errs {
		if e != nil {
			ok = false
		}
	}
	return Outcome{
		Name:      "lost update (8 racing increments)",
		Prevented: ok,
		Detail:    fmt.Sprintf("final=%d errs=%v", final, errs),
	}
}

// PhantomInsert: a snapshot scan repeated inside one transaction must not
// grow when another transaction inserts a matching row.
func PhantomInsert() Outcome {
	st, _ := freshCounter()
	reader := st.Begin()
	before := len(reader.NodesOfKind(ids.KindPerson))
	w := st.Begin()
	_ = w.CreateNode(ids.Compose(ids.KindPerson, 2, 0), nil)
	if err := w.Commit(); err != nil {
		return Outcome{Name: "phantom", Detail: err.Error()}
	}
	after := len(reader.NodesOfKind(ids.KindPerson))
	return Outcome{
		Name:      "phantom insert under repeated scan",
		Prevented: before == after,
		Detail:    fmt.Sprintf("before=%d after=%d", before, after),
	}
}

// WriteSkew: the classic SI anomaly — two transactions each read both
// items and write the *other* one. Snapshot isolation permits this
// (Prevented=false is the expected result and is not an ACID failure for
// this workload; see the package comment).
func WriteSkew() Outcome {
	st := store.New()
	a := ids.Compose(ids.KindPerson, 1, 0)
	b := ids.Compose(ids.KindPerson, 1, 1)
	tx := st.Begin()
	_ = tx.CreateNode(a, store.Props{{Key: store.PropLength, Val: store.Int64(1)}})
	_ = tx.CreateNode(b, store.Props{{Key: store.PropLength, Val: store.Int64(1)}})
	if err := tx.Commit(); err != nil {
		return Outcome{Name: "write skew", Detail: err.Error()}
	}
	// Invariant attempt: at least one of a, b stays 1.
	t1, t2 := st.Begin(), st.Begin()
	if t1.Prop(a, store.PropLength).Int()+t1.Prop(b, store.PropLength).Int() >= 2 {
		_ = t1.SetProp(a, store.PropLength, store.Int64(0))
	}
	if t2.Prop(a, store.PropLength).Int()+t2.Prop(b, store.PropLength).Int() >= 2 {
		_ = t2.SetProp(b, store.PropLength, store.Int64(0))
	}
	err1, err2 := t1.Commit(), t2.Commit()
	var va, vb int64
	st.View(func(tx *store.Txn) {
		va = tx.Prop(a, store.PropLength).Int()
		vb = tx.Prop(b, store.PropLength).Int()
	})
	violated := va == 0 && vb == 0 && err1 == nil && err2 == nil
	return Outcome{
		Name:      "write skew (SI permits; expected under this engine)",
		Prevented: !violated,
		Detail:    fmt.Sprintf("a=%d b=%d err1=%v err2=%v", va, vb, err1, err2),
	}
}

// Atomicity: a transaction writing several entities must be all-or-nothing
// from any reader's point of view, including after an abort.
func Atomicity() Outcome {
	st := store.New()
	p := ids.Compose(ids.KindPerson, 3, 0)
	m := ids.Compose(ids.KindPost, 3, 0)
	// Committed multi-write.
	tx := st.Begin()
	_ = tx.CreateNode(p, nil)
	_ = tx.CreateNode(m, nil)
	_ = tx.AddEdge(m, store.EdgeHasCreator, p, 1)
	if err := tx.Commit(); err != nil {
		return Outcome{Name: "atomicity", Detail: err.Error()}
	}
	var allOrNothing bool
	st.View(func(tx *store.Txn) {
		allOrNothing = tx.Exists(p) && tx.Exists(m) && tx.OutDegree(m, store.EdgeHasCreator) == 1
	})
	// Aborted multi-write leaves nothing.
	tx2 := st.Begin()
	p2 := ids.Compose(ids.KindPerson, 4, 0)
	_ = tx2.CreateNode(p2, nil)
	_ = tx2.AddEdge(p2, store.EdgeKnows, p, 2)
	tx2.Abort()
	st.View(func(tx *store.Txn) {
		if tx.Exists(p2) || tx.OutDegree(p, store.EdgeKnows) != 0 {
			allOrNothing = false
		}
	})
	return Outcome{
		Name:      "atomicity (multi-entity commit and abort)",
		Prevented: allOrNothing,
		Detail:    "",
	}
}
