// Package exec is the morsel-driven intra-query parallel scheduler of the
// BI read path. The SNB Business Intelligence workload (§1 of the paper)
// is graph-wide aggregation: full fact-table scans grouped by time,
// geography and tag dimensions, which stress scan and join throughput
// rather than point-lookup latency. A frozen store.SnapshotView is the
// ideal substrate for parallelising those scans — its CSR slabs, dense
// property table and per-kind node lists are immutable, so workers can
// read disjoint ordinal ranges with zero synchronisation on the data.
//
// The scheduler follows the morsel-driven model: the dense scan range
// [0, n) is cut into fixed-size morsels which workers claim dynamically
// from a shared atomic cursor. Dynamic claiming (rather than static
// striping) keeps all workers busy when per-row cost is skewed — one
// worker stuck on a hub node's adjacency doesn't leave the others idle
// with pre-assigned ranges they already finished.
//
// Aggregation state is owned per worker: the body callback receives the
// claiming worker's index, and callers keep one partial aggregate (map,
// top-k heap, histogram, scratch) per worker, merging the partials in a
// final serial reduce once Scan returns. No locks, no channels, no false
// sharing on the hot path.
package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultMorselSize is the per-claim scan range when Config.MorselSize is
// unset. Big enough that the atomic claim is noise against the per-row
// work, small enough that skewed rows don't unbalance the tail of a scan.
const DefaultMorselSize = 1024

// Config parameterises morsel execution. The zero value is a sensible
// default: GOMAXPROCS workers, DefaultMorselSize rows per claim.
type Config struct {
	// Workers is the fan-out; 0 or negative means GOMAXPROCS. Workers=1
	// runs every body call inline on the caller's goroutine.
	Workers int
	// MorselSize is the rows-per-claim granularity of Scan; 0 or negative
	// means DefaultMorselSize.
	MorselSize int
}

// NumWorkers resolves the configured fan-out. Callers size their
// per-worker partial-aggregate slices with it; body callbacks receive
// worker indices in [0, NumWorkers()).
func (c Config) NumWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) morselSize() int {
	if c.MorselSize > 0 {
		return c.MorselSize
	}
	return DefaultMorselSize
}

// Scan executes body over the dense range [0, n), cut into fixed-size
// morsels claimed dynamically by the configured workers. Each call
// receives the claiming worker's index and one half-open morsel [lo, hi);
// every index in [0, n) is covered exactly once. Scan returns when the
// whole range is processed.
//
// body runs concurrently on up to NumWorkers goroutines: it must only
// write state owned by its worker index. Ranges that fit in a single
// morsel (and Workers=1 configs) run inline on the caller's goroutine.
func (c Config) Scan(n int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers, morsel := c.NumWorkers(), c.morselSize()
	if workers == 1 || n <= morsel {
		body(0, 0, n)
		return
	}
	// Never park more workers than there are morsels to claim.
	if morsels := (n + morsel - 1) / morsel; workers > morsels {
		workers = morsels
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				hi := int(next.Add(int64(morsel)))
				lo := hi - morsel
				if lo >= n {
					return
				}
				if hi > n {
					hi = n
				}
				body(worker, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}

// Each fans n independent tasks out one at a time — morsel size 1 — for
// short task lists of uneven cost, like the per-forum reach jobs of BI7
// where one hub forum can outweigh the rest combined. Every task index in
// [0, n) runs exactly once; body must only write state owned by its
// worker index or its task index.
func (c Config) Each(n int, body func(worker, task int)) {
	if n <= 0 {
		return
	}
	workers := c.NumWorkers()
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			body(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				task := int(next.Add(1)) - 1
				if task >= n {
					return
				}
				body(worker, task)
			}
		}(w)
	}
	wg.Wait()
}
