package exec

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestScanCoversExactlyOnce fans a range out to many workers with a small
// morsel size and checks every index is visited exactly once, by a worker
// whose index is inside the configured fan-out.
func TestScanCoversExactlyOnce(t *testing.T) {
	const n = 10_000
	cfg := Config{Workers: 8, MorselSize: 64}
	visits := make([]int32, n)
	var badWorker atomic.Int32
	cfg.Scan(n, func(worker, lo, hi int) {
		if worker < 0 || worker >= cfg.NumWorkers() {
			badWorker.Store(int32(worker) + 1)
		}
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad morsel [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&visits[i], 1)
		}
	})
	if w := badWorker.Load(); w != 0 {
		t.Fatalf("worker index %d out of range", w-1)
	}
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

// TestScanMorselBounds checks that no claimed morsel exceeds the
// configured size and that partial tail morsels are clipped to n.
func TestScanMorselBounds(t *testing.T) {
	cfg := Config{Workers: 4, MorselSize: 100}
	var covered atomic.Int64
	cfg.Scan(1050, func(worker, lo, hi int) {
		if hi-lo > 100 {
			t.Errorf("morsel [%d,%d) exceeds size 100", lo, hi)
		}
		covered.Add(int64(hi - lo))
	})
	if covered.Load() != 1050 {
		t.Fatalf("covered %d of 1050", covered.Load())
	}
}

// TestScanSerialInline pins the serial shortcuts: Workers=1 and
// single-morsel ranges run as exactly one inline body call.
func TestScanSerialInline(t *testing.T) {
	for _, cfg := range []Config{
		{Workers: 1, MorselSize: 10},
		{Workers: 8, MorselSize: 1024}, // n below one morsel
	} {
		calls := 0
		cfg.Scan(500, func(worker, lo, hi int) {
			calls++
			if worker != 0 || lo != 0 || hi != 500 {
				t.Fatalf("inline call got (%d, %d, %d)", worker, lo, hi)
			}
		})
		if calls != 1 {
			t.Fatalf("%+v: %d calls, want 1 inline", cfg, calls)
		}
	}
}

// TestScanEmpty checks n<=0 performs no calls.
func TestScanEmpty(t *testing.T) {
	cfg := Config{Workers: 4}
	cfg.Scan(0, func(worker, lo, hi int) { t.Fatal("body called for empty range") })
	cfg.Scan(-3, func(worker, lo, hi int) { t.Fatal("body called for negative range") })
	cfg.Each(0, func(worker, task int) { t.Fatal("body called for empty task list") })
}

// TestEachRunsEveryTaskOnce covers the morsel-size-1 fan-out.
func TestEachRunsEveryTaskOnce(t *testing.T) {
	const n = 137
	cfg := Config{Workers: 5}
	visits := make([]int32, n)
	cfg.Each(n, func(worker, task int) {
		if worker < 0 || worker >= 5 {
			t.Errorf("worker %d out of range", worker)
		}
		atomic.AddInt32(&visits[task], 1)
	})
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("task %d ran %d times", i, v)
		}
	}
}

// TestNumWorkersDefault pins the zero-value fan-out to GOMAXPROCS and the
// morsel default.
func TestNumWorkersDefault(t *testing.T) {
	var cfg Config
	if got, want := cfg.NumWorkers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("NumWorkers = %d, want GOMAXPROCS %d", got, want)
	}
	if got := (Config{Workers: -2}).NumWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("negative Workers resolved to %d", got)
	}
	if cfg.morselSize() != DefaultMorselSize {
		t.Fatalf("morselSize = %d", cfg.morselSize())
	}
}

// TestScanWorkerPartials exercises the intended aggregation pattern:
// per-worker partial sums merged after the barrier equal the serial sum.
func TestScanWorkerPartials(t *testing.T) {
	const n = 4096
	cfg := Config{Workers: 3, MorselSize: 128}
	parts := make([]int64, cfg.NumWorkers())
	cfg.Scan(n, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			parts[worker] += int64(i)
		}
	})
	var total int64
	for _, p := range parts {
		total += p
	}
	if want := int64(n) * (n - 1) / 2; total != want {
		t.Fatalf("merged partials %d, want %d", total, want)
	}
}
