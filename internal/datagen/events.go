package datagen

import (
	"sort"

	"ldbcsnb/internal/dict"
	"ldbcsnb/internal/xrand"
)

// Event-driven post generation (§2.2, Figure 2a): real-world events make
// the volume of posts about the event's topic spike, especially among
// persons interested in that topic. Events have different levels of
// importance; the activity volume around an event follows the rise-decay
// shape proposed by the meme-tracking work the paper cites [7] —
// approximated here by a sharp ramp-up and exponential decay.

// Event is one simulated real-world event.
type Event struct {
	Time      int64   // peak time
	Tag       int     // topic that trends
	Magnitude float64 // importance in [1, ~20]; scales the spike volume
	Decay     float64 // mean of the post-time decay, millis
}

// generateEvents draws the event timeline for a run. The count scales
// gently with network size so small datasets still show visible spikes.
func generateEvents(cfg Config) []Event {
	n := 6 + cfg.Persons/400
	if n > 60 {
		n = 60
	}
	r := xrand.New(cfg.Seed, xrand.PurposeEvent)
	events := make([]Event, n)
	for i := range events {
		// Magnitudes are Zipf-like: a few huge events, many small ones.
		mag := 1.0 + 19.0/float64(1+r.Zipf(20, 1.4))
		events[i] = Event{
			Time:      r.UniformTime(cfg.Start+30*24*3600*1000, cfg.End-30*24*3600*1000),
			Tag:       r.Zipf(dict.NumTags, 1.3),
			Magnitude: mag,
			Decay:     float64(2+r.Intn(5)) * 24 * 3600 * 1000, // 2-6 days
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Time < events[j].Time })
	return events
}

// eventIndex supports fast "events about one of these tags" lookups.
type eventIndex struct {
	events []Event
	byTag  map[int][]int
	// totalMag is the cumulative magnitude, for weighted sampling.
	cumMag []float64
}

func newEventIndex(events []Event) *eventIndex {
	idx := &eventIndex{events: events, byTag: make(map[int][]int)}
	acc := 0.0
	for i, e := range events {
		idx.byTag[e.Tag] = append(idx.byTag[e.Tag], i)
		acc += e.Magnitude
		idx.cumMag = append(idx.cumMag, acc)
	}
	return idx
}

// pick samples an event weighted by magnitude, preferring events about one
// of the given interest tags when any exist (interested persons spike
// hardest, §2.2). Returns nil when there are no events.
func (idx *eventIndex) pick(r *xrand.Rand, interests []int) *Event {
	if len(idx.events) == 0 {
		return nil
	}
	var matching []int
	for _, tag := range interests {
		matching = append(matching, idx.byTag[tag]...)
	}
	if len(matching) > 0 && r.Bool(0.75) {
		return &idx.events[matching[r.Intn(len(matching))]]
	}
	u := r.Float64() * idx.cumMag[len(idx.cumMag)-1]
	i := sort.SearchFloat64s(idx.cumMag, u)
	if i >= len(idx.events) {
		i = len(idx.events) - 1
	}
	return &idx.events[i]
}

// postTime draws the creation time of a post around the event: a short
// anticipation ramp before the peak and an exponential decay after it.
func (e *Event) postTime(r *xrand.Rand) int64 {
	if r.Bool(0.2) {
		// Build-up before the event peak.
		return e.Time - int64(r.Exp(e.Decay/4))
	}
	return e.Time + int64(r.Exp(e.Decay))
}
