// Package datagen implements the SNB data generator (DATAGEN, §2 of the
// paper): correlated person attributes, the three-stage sliding-window
// friendship generator, per-forum activity generation with discussion
// trees, event-driven spiking trends, and the bulk/update-stream split.
//
// Like the paper's Hadoop implementation, generation is deterministic with
// respect to the degree of parallelism: every random decision derives from
// (seed, entity, purpose) via splitmix64 streams, and workers only
// partition loops whose outputs are order-independent or re-sorted.
package datagen

import (
	"math"
	"time"
)

// Simulation window constants. The paper: "a standard scale factor covers
// three years. Of this 32 months are bulkloaded at benchmark start, whereas
// the data from the last 4 months is added using individual DML
// statements." Figure 2(a) shows Feb'10 - Feb'13.
var (
	// SimStart is the start of the simulated three-year window.
	SimStart = time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC).UnixMilli()
	// SimEnd is the end of the window.
	SimEnd = time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC).UnixMilli()
	// UpdateCut is the bulk/update split: 32 months after SimStart.
	UpdateCut = time.Date(2012, 9, 1, 0, 0, 0, 0, time.UTC).UnixMilli()
)

// SafeTime (T_SAFE, §4.2) is the minimum simulation-time gap DATAGEN
// guarantees between an operation and anything depending on it (person
// creation → first friendship/post; message creation → first reply/like).
// Windowed execution relies on this bound.
const SafeTime = 10 * 60 * 1000 // 10 simulation minutes in millis

// personsPerSF calibrates scale factors: the paper's Table 3 has 0.18M
// persons at SF30, i.e. 6000 persons per unit of scale factor (1 GB CSV).
const personsPerSF = 6000

// Config parameterises one generation run.
type Config struct {
	// Seed makes runs reproducible; equal seeds give identical datasets.
	Seed uint64
	// Persons is the network size. Use PersonsForSF for paper-aligned
	// scale factors.
	Persons int
	// Workers bounds generation parallelism. Output is identical for any
	// value >= 1 (the §2.4 determinism guarantee).
	Workers int
	// Events enables event-driven post generation (spiking trends, §2.2).
	// When false, post times are uniform — the "uniform" series of Fig 2a.
	Events bool
	// Start/End/Cut override the simulation window when non-zero (tests).
	Start, End, Cut int64
}

// PersonsForSF returns the person count for a scale factor (SF1 = 1 GB).
func PersonsForSF(sf float64) int {
	return int(math.Round(sf * personsPerSF))
}

// withDefaults fills in unset fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Start == 0 {
		c.Start = SimStart
	}
	if c.End == 0 {
		c.End = SimEnd
	}
	if c.Cut == 0 {
		c.Cut = UpdateCut
	}
	return c
}

// Generation tuning constants, chosen to reproduce the Table 3 entity
// ratios at scale: at SF30 the paper reports per person ≈ 79 friendship
// edge-endpoints (14.2M/0.18M... counted per row: 14.2M friendship rows for
// 0.18M persons ≈ 79 rows/person), ≈ 541 messages and ≈ 10 forums per
// 1000 persons... (1.8M forums / 0.18M persons = 10 forums/person).
const (
	// wallForumsPerPerson: every person moderates their wall; additional
	// interest-group forums bring the average to ~10 per person at scale
	// (Table 3: forums/persons ≈ 10).
	groupForumsPerPerson = 9.0
	// groupForumProb is the probability a person creates a group forum on
	// one of their interests.
	baseMessagesPerFriend = 7.0 // messages scale with friendships (§2)
	commentsPerPost       = 1.8
	likesPerMessage       = 0.5
	photoFraction         = 0.12
	memberSampleOfFriends = 0.7
)
