package datagen

import (
	"sort"

	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/schema"
)

// Bulk/update split (§4): "DATAGEN can divide its output in two parts,
// splitting all data at one particular timestamp: all data before this
// point is output in the requested bulk-load format, the data with a
// timestamp after the split is formatted as input files for the query
// driver", becoming the transactional update stream.

// Split partitions a generated dataset at the cut timestamp. Entities
// created before cut form the bulk-load dataset; the rest become update
// operations ordered by due time, each annotated with T_DEP (§4.2) — the
// creation time of the latest *person* it depends on. Dependencies on
// other forum content (a comment's parent message, a membership's forum)
// are deliberately not encoded: they stay inside one forum, and the driver
// guarantees them by executing each forum's stream sequentially in due
// order; encoding them here would create the false global dependencies
// §4.2 warns about.
func Split(d *schema.Dataset, cut int64) (*schema.Dataset, []schema.Update) {
	// Creation-time lookup for dependency computation.
	personCreated := make(map[ids.ID]int64, len(d.Persons))
	for i := range d.Persons {
		personCreated[d.Persons[i].ID] = d.Persons[i].CreationDate
	}
	return SplitWith(d, cut, personCreated)
}

// SplitWith is Split with an explicit person-creation lookup. It exists for
// the streaming pipeline: activity chunks (Stream) do not carry the person
// table, so the caller builds the lookup from the first chunk and reuses it
// for every later one. Splitting each chunk and concatenating the results
// in delivery order reproduces Split of the whole dataset exactly (chunks
// are class-major slices in order, and the final per-caller DueTime sort is
// stable).
func SplitWith(d *schema.Dataset, cut int64, personCreated map[ids.ID]int64) (*schema.Dataset, []schema.Update) {
	bulk := &schema.Dataset{}
	var updates []schema.Update

	for i := range d.Persons {
		p := &d.Persons[i]
		if p.CreationDate < cut {
			bulk.Persons = append(bulk.Persons, *p)
		} else {
			updates = append(updates, schema.Update{
				Type: schema.UpdateAddPerson, DueTime: p.CreationDate, Person: p,
			})
		}
	}
	for i := range d.Knows {
		k := &d.Knows[i]
		if k.CreationDate < cut {
			bulk.Knows = append(bulk.Knows, *k)
		} else {
			dep := personCreated[k.A]
			if personCreated[k.B] > dep {
				dep = personCreated[k.B]
			}
			updates = append(updates, schema.Update{
				Type: schema.UpdateAddFriendship, DueTime: k.CreationDate,
				DepTime: dep, Friendship: k,
			})
		}
	}
	for i := range d.Forums {
		f := &d.Forums[i]
		if f.CreationDate < cut {
			bulk.Forums = append(bulk.Forums, *f)
		} else {
			updates = append(updates, schema.Update{
				Type: schema.UpdateAddForum, DueTime: f.CreationDate,
				DepTime: personCreated[f.Moderator], Forum: f,
			})
		}
	}
	for i := range d.Memberships {
		m := &d.Memberships[i]
		if m.JoinDate < cut {
			bulk.Memberships = append(bulk.Memberships, *m)
		} else {
			updates = append(updates, schema.Update{
				Type: schema.UpdateAddMembership, DueTime: m.JoinDate,
				DepTime: personCreated[m.Person], Membership: m,
			})
		}
	}
	for i := range d.Posts {
		p := &d.Posts[i]
		if p.CreationDate < cut {
			bulk.Posts = append(bulk.Posts, *p)
		} else {
			updates = append(updates, schema.Update{
				Type: schema.UpdateAddPost, DueTime: p.CreationDate,
				DepTime: personCreated[p.Creator], Post: p,
			})
		}
	}
	for i := range d.Comments {
		c := &d.Comments[i]
		if c.CreationDate < cut {
			bulk.Comments = append(bulk.Comments, *c)
		} else {
			updates = append(updates, schema.Update{
				Type: schema.UpdateAddComment, DueTime: c.CreationDate,
				DepTime: personCreated[c.Creator], Comment: c,
			})
		}
	}
	for i := range d.Likes {
		l := &d.Likes[i]
		if l.CreationDate < cut {
			bulk.Likes = append(bulk.Likes, *l)
		} else {
			t := schema.UpdateAddLikeComment
			if l.IsPost {
				t = schema.UpdateAddLikePost
			}
			updates = append(updates, schema.Update{
				Type: t, DueTime: l.CreationDate,
				DepTime: personCreated[l.Person], Like: l,
			})
		}
	}

	sort.SliceStable(updates, func(i, j int) bool {
		return updates[i].DueTime < updates[j].DueTime
	})
	return bulk, updates
}
