package datagen

import (
	"sort"

	"ldbcsnb/internal/distr"
	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/schema"
	"ldbcsnb/internal/xrand"
)

// Friendship generation (§2.3): a multi-stage edge-generation process over
// correlation dimensions. In each stage persons are re-sorted by one
// dimension — (1) studied location, (2) interests, (3) random — and each
// person picks friends from a sliding window behind its sort position with
// geometrically decaying probability, spending 45%/45%/10% of its target
// degree in the three stages.
//
// Workers process disjoint ranges of the sorted order; every pick derives
// from the initiating person's own stream, so output is independent of the
// partitioning (the paper's Hadoop determinism).

// windowSize is the sliding-window width in persons. The connection
// probability is zero outside the window ("the generator is not even
// capable of generating a friendship to data dropped from its window").
const windowSize = 100

// geoP is the geometric decay of the in-window pick distribution; mean
// offset = (1-p)/p ≈ 19 positions.
const geoP = 0.05

// friendshipStage enumerates the three correlation dimensions.
type friendshipStage int

const (
	stageStudy friendshipStage = iota
	stageInterest
	stageRandom
	numStages
)

// stageBudget returns how many friendships person d initiates in a stage.
// Each initiated edge raises the degree of both endpoints, so initiating
// half the dimension share keeps the realised mean near the target.
func stageBudget(d *personDraft, s friendshipStage) int {
	study, interest, random := distr.SplitDegree(d.targetDegree)
	var share int
	switch s {
	case stageStudy:
		share = study
	case stageInterest:
		share = interest
	default:
		share = random
	}
	return (share + 1) / 2
}

// sortForStage returns the person order of one stage: indices into drafts
// sorted by the stage's correlation key, with person ID as deterministic
// tie-break.
func sortForStage(drafts []personDraft, s friendshipStage) []int {
	order := make([]int, len(drafts))
	for i := range order {
		order[i] = i
	}
	key := func(i int) uint64 {
		d := &drafts[i]
		switch s {
		case stageStudy:
			return uint64(d.studyKey)
		case stageInterest:
			return uint64(d.interestKey)
		default:
			return d.randomKey
		}
	}
	sort.Slice(order, func(a, b int) bool {
		ka, kb := key(order[a]), key(order[b])
		if ka != kb {
			return ka < kb
		}
		return drafts[order[a]].person.ID < drafts[order[b]].person.ID
	})
	return order
}

// edgeKey canonicalises an undirected friendship.
type edgeKey struct{ a, b ids.ID }

func makeEdgeKey(a, b ids.ID) edgeKey {
	if a > b {
		a, b = b, a
	}
	return edgeKey{a, b}
}

// generateFriendships runs the three stages and returns deduplicated,
// deterministically ordered friendship edges.
func generateFriendships(cfg Config, drafts []personDraft) []schema.Knows {
	type cand struct {
		key   edgeKey
		stamp int64
	}
	workerOut := make([][]cand, cfg.Workers)

	for s := friendshipStage(0); s < numStages; s++ {
		order := sortForStage(drafts, s)
		n := len(order)
		parallelChunks(cfg.Workers, n, func(w, lo, hi int) {
			out := workerOut[w]
			for pos := lo; pos < hi; pos++ {
				me := &drafts[order[pos]]
				budget := stageBudget(me, s)
				if budget == 0 {
					continue
				}
				r := xrand.New(cfg.Seed, xrand.PurposeFriendPick, uint64(me.person.ID), uint64(s))
				attempts := budget * 4
				made := 0
				seen := map[int]bool{} // window offsets already taken this stage
				for t := 0; t < attempts && made < budget; t++ {
					off := 1 + r.Geometric(geoP)
					if off > windowSize {
						continue // zero probability outside the window
					}
					j := pos + off
					if j >= n {
						continue
					}
					if seen[j] {
						continue
					}
					seen[j] = true
					other := &drafts[order[j]]
					// Friendship begins after both joined (Table 1 time
					// correlation), at least SafeTime after the later one.
					base := me.person.CreationDate
					if other.person.CreationDate > base {
						base = other.person.CreationDate
					}
					stamp := base + SafeTime + int64(r.Exp(30*24*3600*1000))
					if stamp > cfg.End-2*SafeTime {
						continue // no room left for dependent activity
					}
					out = append(out, cand{makeEdgeKey(me.person.ID, other.person.ID), stamp})
					made++
				}
			}
			workerOut[w] = out
		})
	}

	// Merge + dedupe deterministically: earliest stamp wins; order by
	// (a, b).
	best := make(map[edgeKey]int64)
	for _, out := range workerOut {
		for _, c := range out {
			if prev, ok := best[c.key]; !ok || c.stamp < prev {
				best[c.key] = c.stamp
			}
		}
	}
	edges := make([]schema.Knows, 0, len(best))
	for k, stamp := range best {
		edges = append(edges, schema.Knows{A: k.a, B: k.b, CreationDate: stamp})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].A != edges[j].A {
			return edges[i].A < edges[j].A
		}
		return edges[i].B < edges[j].B
	})
	return edges
}

// parallelChunks splits [0, n) into w contiguous chunks, invoking fn with
// the worker index so each worker can own an output slice.
func parallelChunks(w, n int, fn func(worker, lo, hi int)) {
	if w <= 1 {
		fn(0, 0, n)
		return
	}
	chunk := (n + w - 1) / w
	done := make(chan struct{}, w)
	launched := 0
	for i := 0; i < w; i++ {
		lo := i * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		launched++
		go func(i, lo, hi int) {
			fn(i, lo, hi)
			done <- struct{}{}
		}(i, lo, hi)
	}
	for i := 0; i < launched; i++ {
		<-done
	}
}
