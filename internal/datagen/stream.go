package datagen

import (
	"sort"

	"ldbcsnb/internal/distr"
	"ldbcsnb/internal/schema"
)

// Streamed generation. Generate materialises the whole dataset before the
// caller sees any of it; at thousand-person scale factors that means the
// loader sits idle through the most expensive phase (activity generation)
// and the process briefly holds generator drafts plus the full dataset plus
// the store. Stream instead delivers the dataset as a sequence of bounded
// chunks in load order — persons+knows as soon as steps 1-2 finish, then
// each activity class in slices — on a channel fed by a generator
// goroutine, so loading the early chunks overlaps with generating the late
// ones and delivered chunks become garbage as soon as they are loaded.
//
// Chunks partition the dataset: concatenating them in delivery order yields
// exactly Generate(cfg).Data, slice by slice (the §2.4 determinism
// guarantee extends to streaming — see TestStreamMatchesGenerate). Chunk
// boundaries are class-major (persons+knows, then forums, memberships,
// posts, comments, likes), which is also the referential load order the
// schema loader wants.

// StreamChunkEntities bounds the entity count of one streamed activity
// chunk: small enough that a chunk is a rounding error next to the store,
// large enough to amortise per-chunk loading overhead.
const StreamChunkEntities = 1 << 15

// Stream launches generation on a goroutine and returns the chunk channel
// plus a wait function. The caller must drain the channel, then call wait
// for the event timeline (Generate's Output.Events). Content is a
// deterministic function of cfg.Seed and cfg.Persons, identical to
// Generate's.
func Stream(cfg Config) (<-chan *schema.Dataset, func() []Event) {
	out := make(chan *schema.Dataset, 2)
	var events []Event
	done := make(chan struct{})
	go func() {
		defer close(out)
		defer close(done)
		events = generateStream(cfg, func(c *schema.Dataset) { out <- c })
	}()
	return out, func() []Event { <-done; return events }
}

// generateStream is the synchronous core of Stream: it runs the pipeline
// and hands each chunk to emit in load order.
func generateStream(cfg Config, emit func(*schema.Dataset)) []Event {
	cfg = cfg.withDefaults()
	model := distr.NewDegreeModel(cfg.Persons)

	drafts := generatePersons(cfg, model)
	knows := generateFriendships(cfg, drafts)
	persons := make([]schema.Person, len(drafts))
	for i := range drafts {
		persons[i] = drafts[i].person
	}
	sort.Slice(persons, func(i, j int) bool { return persons[i].ID < persons[j].ID })
	// First chunk: the social graph. Emitting before step 3 is what buys
	// the overlap — activity generation dominates the pipeline.
	emit(&schema.Dataset{Persons: persons, Knows: knows})

	var events []Event
	if cfg.Events {
		events = generateEvents(cfg)
	}
	forums, memberships, posts, comments, likes := generateActivity(cfg, drafts, knows, events)

	for lo := 0; lo < len(forums); lo += StreamChunkEntities {
		hi := min(lo+StreamChunkEntities, len(forums))
		emit(&schema.Dataset{Forums: forums[lo:hi]})
	}
	for lo := 0; lo < len(memberships); lo += StreamChunkEntities {
		hi := min(lo+StreamChunkEntities, len(memberships))
		emit(&schema.Dataset{Memberships: memberships[lo:hi]})
	}
	for lo := 0; lo < len(posts); lo += StreamChunkEntities {
		hi := min(lo+StreamChunkEntities, len(posts))
		emit(&schema.Dataset{Posts: posts[lo:hi]})
	}
	for lo := 0; lo < len(comments); lo += StreamChunkEntities {
		hi := min(lo+StreamChunkEntities, len(comments))
		emit(&schema.Dataset{Comments: comments[lo:hi]})
	}
	for lo := 0; lo < len(likes); lo += StreamChunkEntities {
		hi := min(lo+StreamChunkEntities, len(likes))
		emit(&schema.Dataset{Likes: likes[lo:hi]})
	}
	return events
}
