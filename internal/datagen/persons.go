package datagen

import (
	"sort"
	"time"

	"ldbcsnb/internal/dict"
	"ldbcsnb/internal/distr"
	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/schema"
	"ldbcsnb/internal/xrand"
)

// personDraft is a person before ID assignment, carrying generator-internal
// attributes (target degree, correlation keys).
type personDraft struct {
	idx          int // person index in [0, Persons)
	person       schema.Person
	targetDegree int
	studyKey     ids.StudyKey
	interestKey  uint32
	randomKey    uint64
}

var birthdayLo = time.Date(1955, 1, 1, 0, 0, 0, 0, time.UTC).UnixMilli()
var birthdayHi = time.Date(1995, 1, 1, 0, 0, 0, 0, time.UTC).UnixMilli()

// pickCountry samples a country by population weight using one uniform
// draw over the cumulative weights.
func pickCountry(r *xrand.Rand) int {
	total := 0.0
	for i := range dict.Countries {
		total += dict.Countries[i].Weight
	}
	u := r.Float64() * total
	acc := 0.0
	for i := range dict.Countries {
		acc += dict.Countries[i].Weight
		if u < acc {
			return i
		}
	}
	return len(dict.Countries) - 1
}

// generatePersons runs step 1 of DATAGEN ("person generation", §2.4): each
// worker generates a disjoint index range; every attribute derives from the
// person's own streams so the output is partition-independent. Persons are
// then sorted by creation date and assigned time-ordered IDs.
func generatePersons(cfg Config, model *distr.DegreeModel) []personDraft {
	drafts := make([]personDraft, cfg.Persons)
	parallelRange(cfg.Workers, cfg.Persons, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			drafts[i] = generatePerson(cfg, model, i)
		}
	})

	// Assign time-ordered IDs (§2.4 footnote: IDs follow the time
	// dimension). Sort by (creationDate, idx) — idx breaks ties
	// deterministically — then allocate sequential IDs.
	sort.Slice(drafts, func(i, j int) bool {
		if drafts[i].person.CreationDate != drafts[j].person.CreationDate {
			return drafts[i].person.CreationDate < drafts[j].person.CreationDate
		}
		return drafts[i].idx < drafts[j].idx
	})
	alloc := ids.NewAllocator(ids.KindPerson)
	for i := range drafts {
		drafts[i].person.ID = alloc.Alloc(drafts[i].person.CreationDate - cfg.Start)
	}
	return drafts
}

// generatePerson draws every attribute of person i from its own streams.
// The correlation chain of Table 1 is explicit: country drives names,
// university, company, languages and interests; interests drive the
// interest correlation key; city+university+classYear form the study key.
func generatePerson(cfg Config, model *distr.DegreeModel, i int) personDraft {
	ui := uint64(i)
	rp := xrand.New(cfg.Seed, xrand.PurposePerson, ui)

	var p schema.Person
	country := pickCountry(rp)
	c := &dict.Countries[country]
	p.Country = country
	p.Gender = rp.Intn(2)
	p.Birthday = rp.UniformTime(birthdayLo, birthdayHi)
	// Join date: uniform over the window, leaving room for activity before
	// the end (people who join in the last days produce almost nothing).
	p.CreationDate = rp.UniformTime(cfg.Start, cfg.End-4*SafeTime)

	p.FirstName = dict.FirstName(xrand.New(cfg.Seed, xrand.PurposeFirstName, ui), country, p.Gender)
	p.LastName = dict.LastName(xrand.New(cfg.Seed, xrand.PurposeLastName, ui), country)
	p.City = c.CityStart + rp.Intn(c.CityCount)
	p.LocationIP = dict.IP(xrand.New(cfg.Seed, xrand.PurposeIP, ui), country)
	p.Browser = dict.Browser(xrand.New(cfg.Seed, xrand.PurposeBrowser, ui))
	p.Languages = append([]string(nil), c.Languages...)
	if p.Languages[0] != "en" && rp.Bool(0.4) {
		p.Languages = append(p.Languages, "en") // lingua franca of the net
	}

	// Interests: count skewed 3..24, correlated with country (Table 1).
	ri := xrand.New(cfg.Seed, xrand.PurposeInterests, ui)
	nInterests := 3 + ri.SkewedIndex(22, 0.3)
	p.Interests = dict.Interests(ri, country, nInterests)

	// University (nearby, i.e. in-country): 70% of persons studied.
	ru := xrand.New(cfg.Seed, xrand.PurposeUniversity, ui)
	p.University = -1
	if ru.Bool(0.7) {
		p.University = c.UniStart + ru.Intn(c.UniCount)
		age18 := p.Birthday + 18*365*24*3600*1000
		year := time.UnixMilli(age18).UTC().Year() + ru.Intn(4)
		p.ClassYear = year
	}
	// Company (in country): 60% of persons work.
	rw := xrand.New(cfg.Seed, xrand.PurposeCompany, ui)
	p.Company = -1
	if rw.Bool(0.6) {
		p.Company = c.CompStart + rw.Intn(c.CompCount)
		p.WorkFrom = 2000 + rw.Intn(12)
	}
	// Emails at employer/university domain (Table 1), else a generic one.
	org := "mail"
	if p.Company >= 0 {
		org = dict.Companies[p.Company].Name
	} else if p.University >= 0 {
		org = dict.Universities[p.University].Name
	}
	p.Emails = []string{dict.Email(p.FirstName, p.LastName, org)}

	// Correlation keys for the three friendship stages (§2.3).
	d := personDraft{idx: i, person: p}
	d.targetDegree = model.TargetDegree(xrand.New(cfg.Seed, xrand.PurposeDegree, ui))

	cityForKey := p.City
	uniForKey := 0xFFF // "no university" sorts to the top end
	yearForKey := 0
	if p.University >= 0 {
		cityForKey = dict.Universities[p.University].City
		uniForKey = p.University
		yearForKey = p.ClassYear
	}
	city := &dict.Cities[cityForKey]
	z := ids.ZOrder8(city.GridX, city.GridY)
	d.studyKey = ids.MakeStudyKey(z, uint16(uniForKey), uint16(yearForKey-1950))
	// Interest key: the main (first-drawn, most-preferred) interest,
	// refined by the second one to cluster like-minded people.
	second := 0
	if len(p.Interests) > 1 {
		second = p.Interests[1]
	}
	d.interestKey = uint32(p.Interests[0])<<16 | uint32(second)
	d.randomKey = xrand.Mix(cfg.Seed, xrand.PurposeFriendPick, ui)
	return d
}

// parallelRange splits [0, n) over w goroutines. Each chunk's work must be
// independent; results land in pre-sized slices so no ordering is imposed.
func parallelRange(w, n int, fn func(lo, hi int)) {
	if w <= 1 || n < 256 {
		fn(0, n)
		return
	}
	chunk := (n + w - 1) / w
	done := make(chan struct{}, w)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		go func(lo, hi int) {
			fn(lo, hi)
			done <- struct{}{}
		}(lo, hi)
	}
	for lo := 0; lo < n; lo += chunk {
		<-done
	}
}
