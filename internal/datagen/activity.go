package datagen

import (
	"sort"
	"strconv"

	"ldbcsnb/internal/dict"
	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/schema"
	"ldbcsnb/internal/xrand"
)

// Person-activity generation (§2.4, step 3): filling the forums with posts,
// comments and likes. The data is tree-structured and parallelised by the
// person who owns the forum; each worker needs the owner's attributes
// (interests influence post topics) and the friend list with friendship
// creation timestamps (only friends post comments and likes, and only
// after the friendship was created). Workers operate independently.

// forumDraft, postDraft, commentDraft and likeDraft are pre-ID entities;
// references are pointers, resolved to time-ordered IDs after a global
// sort.
type forumDraft struct {
	id        ids.ID
	title     string
	moderator ids.ID
	created   int64
	tags      []int
	uniq      uint64
	// members with join dates; index-aligned pair of slices.
	members []ids.ID
	joins   []int64
}

type postDraft struct {
	id      ids.ID
	forum   *forumDraft
	creator ids.ID
	country int
	ip      string
	browser string
	created int64
	topic   int
	tags    []int
	content string
	image   string
	lang    string
	length  int
	uniq    uint64
}

type commentDraft struct {
	id            ids.ID
	post          *postDraft
	parentComment *commentDraft // nil = replies directly to the post
	creator       ids.ID
	country       int
	ip            string
	browser       string
	created       int64
	content       string
	length        int
	tags          []int
	uniq          uint64
}

type likeDraft struct {
	person  ids.ID
	post    *postDraft
	comment *commentDraft // nil for post likes
	created int64
}

// activitySet collects one worker's drafts.
type activitySet struct {
	forums   []*forumDraft
	posts    []*postDraft
	comments []*commentDraft
	likes    []*likeDraft
}

// friendEdge is one adjacency entry with its creation date.
type friendEdge struct {
	other ids.ID
	date  int64
}

// buildAdjacency indexes friendships per person.
func buildAdjacency(knows []schema.Knows) map[ids.ID][]friendEdge {
	adj := make(map[ids.ID][]friendEdge)
	for _, k := range knows {
		adj[k.A] = append(adj[k.A], friendEdge{k.B, k.CreationDate})
		adj[k.B] = append(adj[k.B], friendEdge{k.A, k.CreationDate})
	}
	return adj
}

// generateActivity runs step 3 for all persons and resolves IDs.
func generateActivity(cfg Config, drafts []personDraft, knows []schema.Knows, events []Event) (
	[]schema.Forum, []schema.Membership, []schema.Post, []schema.Comment, []schema.Like) {

	adj := buildAdjacency(knows)
	var evIdx *eventIndex
	if cfg.Events {
		evIdx = newEventIndex(events)
	}

	sets := make([]activitySet, cfg.Workers)
	parallelChunks(cfg.Workers, len(drafts), func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			generatePersonActivity(cfg, &drafts[i], adj[drafts[i].person.ID], evIdx, &sets[w])
		}
	})

	// Merge worker outputs.
	var all activitySet
	for i := range sets {
		all.forums = append(all.forums, sets[i].forums...)
		all.posts = append(all.posts, sets[i].posts...)
		all.comments = append(all.comments, sets[i].comments...)
		all.likes = append(all.likes, sets[i].likes...)
	}

	// Time-ordered ID assignment (§2.4 footnote 3): sort each entity kind
	// by creation time (uniq stream value breaks ties deterministically)
	// and allocate IDs in that order.
	sort.Slice(all.forums, func(i, j int) bool {
		if all.forums[i].created != all.forums[j].created {
			return all.forums[i].created < all.forums[j].created
		}
		return all.forums[i].uniq < all.forums[j].uniq
	})
	fAlloc := ids.NewAllocator(ids.KindForum)
	for _, f := range all.forums {
		f.id = fAlloc.Alloc(f.created - cfg.Start)
	}
	sort.Slice(all.posts, func(i, j int) bool {
		if all.posts[i].created != all.posts[j].created {
			return all.posts[i].created < all.posts[j].created
		}
		return all.posts[i].uniq < all.posts[j].uniq
	})
	pAlloc := ids.NewAllocator(ids.KindPost)
	for _, p := range all.posts {
		p.id = pAlloc.Alloc(p.created - cfg.Start)
	}
	sort.Slice(all.comments, func(i, j int) bool {
		if all.comments[i].created != all.comments[j].created {
			return all.comments[i].created < all.comments[j].created
		}
		return all.comments[i].uniq < all.comments[j].uniq
	})
	cAlloc := ids.NewAllocator(ids.KindComment)
	for _, c := range all.comments {
		c.id = cAlloc.Alloc(c.created - cfg.Start)
	}

	// Materialise schema entities.
	forums := make([]schema.Forum, 0, len(all.forums))
	var memberships []schema.Membership
	for _, f := range all.forums {
		forums = append(forums, schema.Forum{
			ID: f.id, Title: f.title, Moderator: f.moderator,
			CreationDate: f.created, Tags: f.tags,
		})
		for i, m := range f.members {
			memberships = append(memberships, schema.Membership{
				Forum: f.id, Person: m, JoinDate: f.joins[i],
			})
		}
	}
	posts := make([]schema.Post, 0, len(all.posts))
	for _, p := range all.posts {
		posts = append(posts, schema.Post{
			ID: p.id, Creator: p.creator, Forum: p.forum.id,
			CreationDate: p.created, Content: p.content, ImageFile: p.image,
			Length: p.length, Language: p.lang, Tags: p.tags, Topic: p.topic,
			Country: p.country, LocationIP: p.ip, Browser: p.browser,
		})
	}
	comments := make([]schema.Comment, 0, len(all.comments))
	for _, c := range all.comments {
		parent := c.post.id
		if c.parentComment != nil {
			parent = c.parentComment.id
		}
		comments = append(comments, schema.Comment{
			ID: c.id, Creator: c.creator, ReplyOf: parent, Root: c.post.id,
			Forum: c.post.forum.id, CreationDate: c.created, Content: c.content,
			Length: c.length, Tags: c.tags, Topic: c.post.topic,
			Country: c.country, LocationIP: c.ip, Browser: c.browser,
		})
	}
	likes := make([]schema.Like, 0, len(all.likes))
	for _, l := range all.likes {
		msg := l.post.id
		forum := l.post.forum.id
		isPost := true
		if l.comment != nil {
			msg = l.comment.id
			isPost = false
		}
		likes = append(likes, schema.Like{
			Person: l.person, Message: msg, Forum: forum,
			CreationDate: l.created, IsPost: isPost,
		})
	}
	// Likes carry no IDs; order them deterministically by (time, person).
	sort.Slice(likes, func(i, j int) bool {
		if likes[i].CreationDate != likes[j].CreationDate {
			return likes[i].CreationDate < likes[j].CreationDate
		}
		if likes[i].Person != likes[j].Person {
			return likes[i].Person < likes[j].Person
		}
		return likes[i].Message < likes[j].Message
	})
	sort.Slice(memberships, func(i, j int) bool {
		if memberships[i].JoinDate != memberships[j].JoinDate {
			return memberships[i].JoinDate < memberships[j].JoinDate
		}
		if memberships[i].Forum != memberships[j].Forum {
			return memberships[i].Forum < memberships[j].Forum
		}
		return memberships[i].Person < memberships[j].Person
	})
	return forums, memberships, posts, comments, likes
}

const (
	day  = 24 * 3600 * 1000
	hour = 3600 * 1000
)

// generatePersonActivity creates the forums owned by one person and their
// discussion trees.
func generatePersonActivity(cfg Config, owner *personDraft, friends []friendEdge, evIdx *eventIndex, out *activitySet) {
	p := &owner.person
	r := xrand.New(cfg.Seed, xrand.PurposeForum, uint64(p.ID))

	// Wall forum.
	var forums []*forumDraft
	wallCreated := p.CreationDate + SafeTime + int64(r.Exp(2*day))
	if wallCreated < cfg.End-2*SafeTime {
		wall := &forumDraft{
			title:     "Wall of " + p.FirstName + " " + p.LastName,
			moderator: p.ID,
			created:   wallCreated,
			tags:      headTags(p.Interests, 3),
			uniq:      r.Uint64(),
		}
		addMembers(cfg, r, wall, friends, 1.0)
		forums = append(forums, wall)
	}

	// Interest-group forums (brings the forum/person ratio toward the
	// Table 3 value of ~10).
	nGroups := int(r.Exp(groupForumsPerPerson))
	if nGroups > 30 {
		nGroups = 30
	}
	for g := 0; g < nGroups; g++ {
		created := r.UniformTime(p.CreationDate+SafeTime, cfg.End-2*SafeTime)
		if created >= cfg.End-2*SafeTime {
			continue
		}
		topic := p.Interests[r.Intn(len(p.Interests))]
		f := &forumDraft{
			title:     "Group for " + dict.Tags[topic].Name + " by " + p.FirstName,
			moderator: p.ID,
			created:   created,
			tags:      []int{topic},
			uniq:      r.Uint64(),
		}
		addMembers(cfg, r, f, friends, memberSampleOfFriends)
		forums = append(forums, f)
	}
	if len(forums) == 0 {
		return
	}
	out.forums = append(out.forums, forums...)

	// Message budget scales with the friendship degree (§2: "people having
	// more friends are likely more active and post more messages").
	degree := len(friends)
	if degree == 0 {
		degree = 1 // isolated people still talk to themselves occasionally
	}
	postsPerFriend := baseMessagesPerFriend / (1 + commentsPerPost)
	nPosts := int(postsPerFriend * float64(degree) * (0.25 + r.Exp(0.75)))
	if nPosts < 1 {
		nPosts = 1
	}

	rp := xrand.New(cfg.Seed, xrand.PurposePost, uint64(p.ID))
	for i := 0; i < nPosts; i++ {
		f := forums[0]
		if len(forums) > 1 && rp.Bool(0.5) {
			f = forums[1+rp.Intn(len(forums)-1)]
		}
		post := generatePost(cfg, rp, owner, f, evIdx)
		if post == nil {
			continue
		}
		out.posts = append(out.posts, post)
		generateThread(cfg, rp, post, out)
	}
}

// headTags returns up to n leading interests.
func headTags(interests []int, n int) []int {
	if len(interests) < n {
		n = len(interests)
	}
	return append([]int(nil), interests[:n]...)
}

// addMembers fills a forum with (a sample of) the owner's friends. Members
// join after both the forum creation and the friendship creation
// (Table 1's time-correlation rules), leaving SafeTime headroom.
func addMembers(cfg Config, r *xrand.Rand, f *forumDraft, friends []friendEdge, fraction float64) {
	for _, fr := range friends {
		if fraction < 1.0 && !r.Bool(fraction) {
			continue
		}
		base := f.created
		if fr.date > base {
			base = fr.date
		}
		join := base + SafeTime + int64(r.Exp(2*day))
		if join >= cfg.End-2*SafeTime {
			continue
		}
		f.members = append(f.members, fr.other)
		f.joins = append(f.joins, join)
	}
}

// pickAuthor returns a forum participant (member or moderator) who had
// joined by time t, together with the earliest time they may write.
func pickAuthor(r *xrand.Rand, f *forumDraft, moderatorJoin int64) (ids.ID, int64) {
	if len(f.members) == 0 || r.Bool(0.3) {
		return f.moderator, moderatorJoin
	}
	i := r.Intn(len(f.members))
	return f.members[i], f.joins[i]
}

// generatePost creates one post draft, or nil if no legal time slot exists.
func generatePost(cfg Config, r *xrand.Rand, owner *personDraft, f *forumDraft, evIdx *eventIndex) *postDraft {
	creator, joined := pickAuthor(r, f, f.created)
	lo := joined + SafeTime
	hi := cfg.End - 2*SafeTime
	if lo >= hi {
		return nil
	}
	var created int64
	topic := owner.person.Interests[r.Intn(len(owner.person.Interests))]
	if evIdx != nil {
		// Event-driven: posts cluster around trending events (§2.2).
		ev := evIdx.pick(r, owner.person.Interests)
		if ev != nil {
			created = ev.postTime(r)
			if created >= lo && created < hi {
				topic = ev.Tag
			} else {
				created = r.UniformTime(lo, hi)
			}
		} else {
			created = r.UniformTime(lo, hi)
		}
	} else {
		created = r.UniformTime(lo, hi)
	}

	post := &postDraft{
		forum:   f,
		creator: creator,
		country: owner.person.Country,
		ip:      owner.person.LocationIP,
		browser: owner.person.Browser,
		created: created,
		topic:   topic,
		tags:    []int{topic},
		uniq:    r.Uint64(),
	}
	// Extra tags co-occur with the topic.
	for _, t := range owner.person.Interests {
		if t != topic && r.Bool(0.15) && len(post.tags) < 4 {
			post.tags = append(post.tags, t)
		}
	}
	if r.Bool(photoFraction) {
		post.image = "photo" + strconv.FormatUint(post.uniq%1000000, 10) + ".jpg"
	} else {
		post.length = 20 + r.SkewedIndex(480, 0.2)
		post.content = dict.MessageText(r, topic, post.length)
		post.lang = owner.person.Languages[r.Intn(len(owner.person.Languages))]
	}
	return post
}

// generateThread grows the reply tree and likes of one post. Comments form
// large discussion trees: each reply attaches to the root or to an earlier
// comment; replies and likes come from forum participants only.
func generateThread(cfg Config, r *xrand.Rand, post *postDraft, out *activitySet) {
	nComments := int(r.Exp(commentsPerPost))
	if nComments > 40 {
		nComments = 40
	}
	thread := make([]*commentDraft, 0, nComments)
	for i := 0; i < nComments; i++ {
		// Parent: the root post, or an earlier comment (deeper trees the
		// longer the thread runs).
		var parent *commentDraft
		parentTime := post.created
		if len(thread) > 0 && r.Bool(0.55) {
			parent = thread[r.Intn(len(thread))]
			parentTime = parent.created
		}
		created := parentTime + SafeTime + int64(r.Exp(6*hour))
		if created >= cfg.End-SafeTime {
			continue
		}
		creator, joined := pickAuthor(r, post.forum, post.forum.created)
		if joined+SafeTime > created {
			continue // this participant hadn't joined yet
		}
		length := 10 + r.SkewedIndex(180, 0.2)
		c := &commentDraft{
			post:          post,
			parentComment: parent,
			creator:       creator,
			country:       post.country,
			ip:            post.ip,
			browser:       post.browser,
			created:       created,
			content:       dict.MessageText(r, post.topic, length),
			length:        length,
			tags:          headTags(post.tags, 2),
			uniq:          r.Uint64(),
		}
		thread = append(thread, c)
		out.comments = append(out.comments, c)
	}

	// Likes on the post and its comments.
	like := func(p *postDraft, c *commentDraft, msgTime int64) {
		n := int(r.Exp(likesPerMessage))
		if n > 12 {
			n = 12
		}
		for i := 0; i < n; i++ {
			liker, joined := pickAuthor(r, post.forum, post.forum.created)
			created := msgTime + SafeTime + int64(r.Exp(1*day))
			if created >= cfg.End || joined+SafeTime > created {
				continue
			}
			out.likes = append(out.likes, &likeDraft{person: liker, post: p, comment: c, created: created})
		}
	}
	like(post, nil, post.created)
	for _, c := range thread {
		like(post, c, c.created)
	}
}
