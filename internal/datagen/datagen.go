package datagen

import (
	"sort"

	"ldbcsnb/internal/distr"
	"ldbcsnb/internal/schema"
)

// Output is the result of one generation run.
type Output struct {
	Data   *schema.Dataset
	Events []Event // the simulated event timeline (empty if cfg.Events off)
}

// Generate runs the full three-step DATAGEN pipeline (§2.4): person
// generation, three-stage friendship generation, and person-activity
// generation. The output is a deterministic function of cfg.Seed and
// cfg.Persons only — Workers changes wall-clock time, never content.
func Generate(cfg Config) *Output {
	cfg = cfg.withDefaults()
	model := distr.NewDegreeModel(cfg.Persons)

	// Step 1: persons.
	drafts := generatePersons(cfg, model)

	// Step 2: friendships over three correlation dimensions.
	knows := generateFriendships(cfg, drafts)

	// Step 3: forums, posts, comments, likes.
	var events []Event
	if cfg.Events {
		events = generateEvents(cfg)
	}
	forums, memberships, posts, comments, likes := generateActivity(cfg, drafts, knows, events)

	persons := make([]schema.Person, len(drafts))
	for i := range drafts {
		persons[i] = drafts[i].person
	}
	sort.Slice(persons, func(i, j int) bool { return persons[i].ID < persons[j].ID })

	return &Output{
		Data: &schema.Dataset{
			Persons:     persons,
			Knows:       knows,
			Forums:      forums,
			Memberships: memberships,
			Posts:       posts,
			Comments:    comments,
			Likes:       likes,
		},
		Events: events,
	}
}
