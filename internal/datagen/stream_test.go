package datagen

import (
	"reflect"
	"sort"
	"testing"

	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/schema"
)

// TestStreamMatchesGenerate pins the streaming determinism contract stated
// on Stream: concatenating the chunks in delivery order reproduces
// Generate's dataset exactly, slice by slice, and the event timeline from
// wait() is Generate's too. It also checks the chunk shape the loader
// depends on: chunk 1 carries the whole social graph, every later chunk
// carries exactly one activity class, bounded by StreamChunkEntities.
func TestStreamMatchesGenerate(t *testing.T) {
	cfg := Config{Seed: 7, Persons: 300, Events: true}
	full := Generate(cfg)

	ch, wait := Stream(cfg)
	var got schema.Dataset
	first := true
	for c := range ch {
		if first {
			if len(c.Persons) == 0 || len(c.Knows) == 0 {
				t.Fatalf("first chunk must carry the social graph, got %d persons %d knows",
					len(c.Persons), len(c.Knows))
			}
			first = false
		} else {
			if len(c.Persons) != 0 || len(c.Knows) != 0 {
				t.Fatal("persons/knows leaked into an activity chunk")
			}
			classes := 0
			for _, n := range []int{len(c.Forums), len(c.Memberships), len(c.Posts), len(c.Comments), len(c.Likes)} {
				if n > 0 {
					classes++
				}
				if n > StreamChunkEntities {
					t.Fatalf("chunk exceeds StreamChunkEntities: %d > %d", n, StreamChunkEntities)
				}
			}
			if classes != 1 {
				t.Fatalf("activity chunk spans %d classes, want exactly 1", classes)
			}
		}
		got.Persons = append(got.Persons, c.Persons...)
		got.Knows = append(got.Knows, c.Knows...)
		got.Forums = append(got.Forums, c.Forums...)
		got.Memberships = append(got.Memberships, c.Memberships...)
		got.Posts = append(got.Posts, c.Posts...)
		got.Comments = append(got.Comments, c.Comments...)
		got.Likes = append(got.Likes, c.Likes...)
	}
	events := wait()

	want := full.Data
	if !reflect.DeepEqual(got.Persons, want.Persons) {
		t.Error("persons diverge from Generate")
	}
	if !reflect.DeepEqual(got.Knows, want.Knows) {
		t.Error("knows diverge from Generate")
	}
	if !reflect.DeepEqual(got.Forums, want.Forums) {
		t.Error("forums diverge from Generate")
	}
	if !reflect.DeepEqual(got.Memberships, want.Memberships) {
		t.Error("memberships diverge from Generate")
	}
	if !reflect.DeepEqual(got.Posts, want.Posts) {
		t.Error("posts diverge from Generate")
	}
	if !reflect.DeepEqual(got.Comments, want.Comments) {
		t.Error("comments diverge from Generate")
	}
	if !reflect.DeepEqual(got.Likes, want.Likes) {
		t.Error("likes diverge from Generate")
	}
	if !reflect.DeepEqual(events, full.Events) {
		t.Error("event timeline diverges from Generate")
	}
}

// TestStreamSplitMatchesSplit pins the per-chunk split contract on
// SplitWith: splitting every chunk with the person-creation lookup built
// from chunk 1, concatenating the bulk parts in delivery order, and
// stable-sorting the concatenated updates by due time yields exactly
// Split(Generate(cfg).Data, cut).
func TestStreamSplitMatchesSplit(t *testing.T) {
	cfg := Config{Seed: 11, Persons: 250, Events: true}
	cut := cfg.withDefaults().Cut
	wantBulk, wantUpdates := Split(Generate(cfg).Data, cut)

	ch, wait := Stream(cfg)
	var bulk schema.Dataset
	var updates []schema.Update
	var personCreated map[ids.ID]int64
	for c := range ch {
		if personCreated == nil {
			personCreated = make(map[ids.ID]int64, len(c.Persons))
			for i := range c.Persons {
				personCreated[c.Persons[i].ID] = c.Persons[i].CreationDate
			}
		}
		cb, cu := SplitWith(c, cut, personCreated)
		bulk.Persons = append(bulk.Persons, cb.Persons...)
		bulk.Knows = append(bulk.Knows, cb.Knows...)
		bulk.Forums = append(bulk.Forums, cb.Forums...)
		bulk.Memberships = append(bulk.Memberships, cb.Memberships...)
		bulk.Posts = append(bulk.Posts, cb.Posts...)
		bulk.Comments = append(bulk.Comments, cb.Comments...)
		bulk.Likes = append(bulk.Likes, cb.Likes...)
		updates = append(updates, cu...)
	}
	wait()
	// Per-chunk updates are each due-time sorted; a stable global sort over
	// the concatenation keeps the class-major tie order Split produces.
	sort.SliceStable(updates, func(i, j int) bool {
		return updates[i].DueTime < updates[j].DueTime
	})

	if !reflect.DeepEqual(bulk.Persons, wantBulk.Persons) ||
		!reflect.DeepEqual(bulk.Knows, wantBulk.Knows) ||
		!reflect.DeepEqual(bulk.Forums, wantBulk.Forums) ||
		!reflect.DeepEqual(bulk.Memberships, wantBulk.Memberships) ||
		!reflect.DeepEqual(bulk.Posts, wantBulk.Posts) ||
		!reflect.DeepEqual(bulk.Comments, wantBulk.Comments) ||
		!reflect.DeepEqual(bulk.Likes, wantBulk.Likes) {
		t.Fatal("concatenated per-chunk bulk diverges from Split of the full dataset")
	}
	if len(updates) != len(wantUpdates) {
		t.Fatalf("update counts diverge: %d vs %d", len(updates), len(wantUpdates))
	}
	for i := range updates {
		if !reflect.DeepEqual(updates[i], wantUpdates[i]) {
			t.Fatalf("update %d diverges:\nstream %+v\nfull   %+v", i, updates[i], wantUpdates[i])
		}
	}
}
