package datagen

import (
	"math"
	"reflect"
	"testing"

	"ldbcsnb/internal/dict"
	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/schema"
)

// testCfg generates a small but structurally complete network.
func testCfg() Config {
	return Config{Seed: 42, Persons: 300, Workers: 1}
}

var cachedOut *Output

func genOnce(t *testing.T) *Output {
	t.Helper()
	if cachedOut == nil {
		cachedOut = Generate(testCfg())
	}
	return cachedOut
}

func TestPersonsForSF(t *testing.T) {
	if PersonsForSF(1) != 6000 {
		t.Fatalf("SF1 = %d persons", PersonsForSF(1))
	}
	if PersonsForSF(30) != 180000 { // Table 3: 0.18M persons at SF30
		t.Fatalf("SF30 = %d persons", PersonsForSF(30))
	}
	if PersonsForSF(0.05) != 300 {
		t.Fatalf("SF0.05 = %d persons", PersonsForSF(0.05))
	}
}

func TestGenerateBasicShape(t *testing.T) {
	out := genOnce(t)
	d := out.Data
	if len(d.Persons) != 300 {
		t.Fatalf("persons = %d", len(d.Persons))
	}
	if len(d.Knows) == 0 || len(d.Forums) == 0 || len(d.Posts) == 0 ||
		len(d.Comments) == 0 || len(d.Likes) == 0 || len(d.Memberships) == 0 {
		t.Fatalf("empty entity class: %+v", d.Counts())
	}
	// Messages scale with friendships (§2): several messages per
	// friendship edge endpoint.
	c := d.Counts()
	perFriend := float64(c.Messages()) / float64(2*c.Friendships)
	if perFriend < 1 || perFriend > 20 {
		t.Fatalf("messages per friendship endpoint = %v", perFriend)
	}
}

func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	// The §2.4 guarantee: identical output regardless of parallelism.
	cfg := Config{Seed: 7, Persons: 120}
	cfg.Workers = 1
	a := Generate(cfg)
	cfg.Workers = 4
	b := Generate(cfg)
	if !reflect.DeepEqual(a.Data, b.Data) {
		t.Fatal("dataset differs between 1 and 4 workers")
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	a := Generate(Config{Seed: 9, Persons: 80, Workers: 2})
	b := Generate(Config{Seed: 9, Persons: 80, Workers: 2})
	if !reflect.DeepEqual(a.Data, b.Data) {
		t.Fatal("same seed, different data")
	}
	c := Generate(Config{Seed: 10, Persons: 80, Workers: 2})
	if reflect.DeepEqual(a.Data.Knows, c.Data.Knows) {
		t.Fatal("different seeds produced identical friendships")
	}
}

func TestPersonIDsTimeOrdered(t *testing.T) {
	d := genOnce(t).Data
	for i := 1; i < len(d.Persons); i++ {
		if d.Persons[i].ID <= d.Persons[i-1].ID {
			t.Fatal("person IDs not strictly increasing")
		}
		if d.Persons[i].CreationDate < d.Persons[i-1].CreationDate {
			t.Fatal("person ID order violates creation-time order")
		}
	}
}

func TestMessageIDsTimeOrdered(t *testing.T) {
	d := genOnce(t).Data
	for i := 1; i < len(d.Posts); i++ {
		if d.Posts[i].ID <= d.Posts[i-1].ID || d.Posts[i].CreationDate < d.Posts[i-1].CreationDate {
			t.Fatal("post IDs not time-ordered")
		}
	}
	for i := 1; i < len(d.Comments); i++ {
		if d.Comments[i].ID <= d.Comments[i-1].ID || d.Comments[i].CreationDate < d.Comments[i-1].CreationDate {
			t.Fatal("comment IDs not time-ordered")
		}
	}
}

// TestTimeCorrelationRules verifies the temporal correlations of Table 1:
// events in the network follow a logical order, with SafeTime slack.
func TestTimeCorrelationRules(t *testing.T) {
	d := genOnce(t).Data
	pc := map[ids.ID]int64{}
	for i := range d.Persons {
		p := &d.Persons[i]
		pc[p.ID] = p.CreationDate
		if p.CreationDate <= p.Birthday {
			t.Fatal("person joined before being born")
		}
	}
	for _, k := range d.Knows {
		if k.CreationDate < pc[k.A]+SafeTime || k.CreationDate < pc[k.B]+SafeTime {
			t.Fatal("friendship precedes person creation + SafeTime")
		}
	}
	fc := map[ids.ID]int64{}
	for i := range d.Forums {
		f := &d.Forums[i]
		fc[f.ID] = f.CreationDate
		if f.CreationDate < pc[f.Moderator]+SafeTime {
			t.Fatal("forum precedes moderator + SafeTime")
		}
	}
	joins := map[ids.ID]map[ids.ID]int64{}
	for _, m := range d.Memberships {
		if m.JoinDate < fc[m.Forum]+SafeTime || m.JoinDate < pc[m.Person]+SafeTime {
			t.Fatal("membership precedes forum or person + SafeTime")
		}
		if joins[m.Forum] == nil {
			joins[m.Forum] = map[ids.ID]int64{}
		}
		joins[m.Forum][m.Person] = m.JoinDate
	}
	mc := map[ids.ID]int64{}
	mForum := map[ids.ID]ids.ID{}
	for i := range d.Posts {
		p := &d.Posts[i]
		mc[p.ID] = p.CreationDate
		mForum[p.ID] = p.Forum
		if p.CreationDate < fc[p.Forum]+SafeTime {
			t.Fatal("post precedes forum + SafeTime")
		}
		if p.CreationDate < pc[p.Creator]+SafeTime {
			t.Fatal("post precedes creator + SafeTime")
		}
		// Non-moderator creators must have joined before posting.
		if j, ok := joins[p.Forum][p.Creator]; ok {
			if p.CreationDate < j+SafeTime {
				t.Fatal("post precedes author's join + SafeTime")
			}
		}
	}
	for i := range d.Comments {
		c := &d.Comments[i]
		mc[c.ID] = c.CreationDate
		if c.CreationDate < mc[c.ReplyOf]+SafeTime {
			t.Fatal("comment precedes its parent + SafeTime")
		}
		if mc[c.Root] == 0 {
			t.Fatal("comment root is not a known post")
		}
	}
	for _, l := range d.Likes {
		if l.CreationDate < mc[l.Message]+SafeTime {
			t.Fatal("like precedes message + SafeTime")
		}
		if l.Forum != mForum[l.Message] && !l.IsPost {
			// comment likes: forum of the root post
			continue
		}
	}
}

func TestFriendshipDegreeDistribution(t *testing.T) {
	// Figure 3(a): heavy-tailed degree distribution with the right mean.
	d := genOnce(t).Data
	deg := map[ids.ID]int{}
	for _, k := range d.Knows {
		deg[k.A]++
		deg[k.B]++
	}
	sum, maxD := 0, 0
	for _, v := range deg {
		sum += v
		if v > maxD {
			maxD = v
		}
	}
	mean := float64(sum) / float64(len(d.Persons))
	// distr.AvgDegree(300) ≈ 300^(0.512-0.028*2.477) ≈ 12.4; allow generous
	// slack for dedupe losses and window effects.
	if mean < 4 || mean > 25 {
		t.Fatalf("mean degree %v out of range", mean)
	}
	if float64(maxD) < 2.5*mean {
		t.Fatalf("degree tail too light: max %d, mean %v", maxD, mean)
	}
}

// TestHomophily verifies the structure correlation of §2.3: persons sharing
// a university or an interest are friends far more often than random pairs.
func TestHomophily(t *testing.T) {
	d := genOnce(t).Data
	persons := map[ids.ID]*schema.Person{}
	for i := range d.Persons {
		persons[d.Persons[i].ID] = &d.Persons[i]
	}
	sameUni, sameInterest := 0, 0
	for _, k := range d.Knows {
		a, b := persons[k.A], persons[k.B]
		if a.University >= 0 && a.University == b.University {
			sameUni++
		}
		ints := map[int]bool{}
		for _, t := range a.Interests {
			ints[t] = true
		}
		for _, t := range b.Interests {
			if ints[t] {
				sameInterest++
				break
			}
		}
	}
	fracUni := float64(sameUni) / float64(len(d.Knows))
	fracInt := float64(sameInterest) / float64(len(d.Knows))
	// Baseline probability of sharing a university across ~70 universities
	// and 25 countries is a few percent; with homophily it must be much
	// higher.
	if fracUni < 0.10 {
		t.Fatalf("same-university friend fraction %v too low for homophily", fracUni)
	}
	if fracInt < 0.30 {
		t.Fatalf("shared-interest friend fraction %v too low", fracInt)
	}
}

func TestNameCountryCorrelationInDataset(t *testing.T) {
	// The Table 2 effect visible in generated persons: Chinese top names
	// dominate among persons located in China.
	big := Generate(Config{Seed: 1, Persons: 2000, Workers: 2})
	cn := dict.CountryByName("China")
	counts := map[string]int{}
	total := 0
	for i := range big.Data.Persons {
		p := &big.Data.Persons[i]
		if p.Country == cn && p.Gender == dict.GenderMale {
			counts[p.FirstName]++
			total++
		}
	}
	if total < 100 {
		t.Fatalf("too few Chinese men to test: %d", total)
	}
	head := counts["Yang"] + counts["Chen"] + counts["Wei"] + counts["Lei"] + counts["Jun"]
	if float64(head) < 0.25*float64(total) {
		t.Fatalf("typical-name mass too low: %d of %d", head, total)
	}
}

func TestEventDrivenSpikes(t *testing.T) {
	// Figure 2(a): with events on, the post-time density has spikes; with
	// events off it is near-uniform. Compare max/mean weekly bucket counts.
	base := Config{Seed: 5, Persons: 250, Workers: 2}
	uniform := Generate(base)
	withEv := base
	withEv.Events = true
	spiky := Generate(withEv)
	if len(spiky.Events) == 0 {
		t.Fatal("no events generated")
	}

	// A post "belongs to a spike" when its topic matches an event tag and
	// its time falls within the event's activity window. With event-driven
	// generation that fraction must be far higher than the coincidental
	// rate of the uniform run.
	spikeFraction := func(posts []schema.Post, events []Event) float64 {
		hits := 0
		for i := range posts {
			p := &posts[i]
			for j := range events {
				e := &events[j]
				if p.Topic == e.Tag &&
					p.CreationDate > e.Time-int64(e.Decay) &&
					p.CreationDate < e.Time+3*int64(e.Decay) {
					hits++
					break
				}
			}
		}
		return float64(hits) / float64(len(posts))
	}
	fu := spikeFraction(uniform.Data.Posts, spiky.Events)
	fs := spikeFraction(spiky.Data.Posts, spiky.Events)
	if fs < 3*fu || fs < 0.05 {
		t.Fatalf("event clustering too weak: spiky %v vs uniform %v", fs, fu)
	}
}

func TestSplit(t *testing.T) {
	out := genOnce(t)
	bulk, updates := Split(out.Data, UpdateCut)
	c, bc := out.Data.Counts(), bulk.Counts()
	if bc.Persons+countType(updates, schema.UpdateAddPerson) != c.Persons {
		t.Fatal("person split loses entities")
	}
	if bc.Posts+countType(updates, schema.UpdateAddPost) != c.Posts {
		t.Fatal("post split loses entities")
	}
	if bc.Comments+countType(updates, schema.UpdateAddComment) != c.Comments {
		t.Fatal("comment split loses entities")
	}
	likes := countType(updates, schema.UpdateAddLikePost) + countType(updates, schema.UpdateAddLikeComment)
	if bc.Likes+likes != c.Likes {
		t.Fatal("like split loses entities")
	}
	if len(updates) == 0 {
		t.Fatal("no updates generated; cut too late")
	}
	// 4 months of 36 → updates should be a visible but minor share.
	frac := float64(len(updates)) / float64(c.Persons+c.Friendships+c.Forums+c.Messages()+c.Likes+c.Memberships)
	if frac < 0.02 || frac > 0.5 {
		t.Fatalf("update fraction %v implausible", frac)
	}
	// Ordering and dependency sanity.
	var prev int64
	for i := range updates {
		u := &updates[i]
		if u.DueTime < prev {
			t.Fatal("updates not ordered by due time")
		}
		prev = u.DueTime
		if u.DueTime < UpdateCut {
			t.Fatal("update before the cut")
		}
		if u.IsDependent() && u.DueTime < u.DepTime+SafeTime {
			t.Fatalf("update %v violates SafeTime: due %d dep %d", u.Type, u.DueTime, u.DepTime)
		}
	}
}

func countType(us []schema.Update, t schema.UpdateType) int {
	n := 0
	for i := range us {
		if us[i].Type == t {
			n++
		}
	}
	return n
}

func TestTwoHopDistribution(t *testing.T) {
	// Figure 5(a): the 2-hop environment size has high variance (multimodal
	// from the power-law degree distribution).
	d := genOnce(t).Data
	adj := buildAdjacency(d.Knows)
	var sizes []float64
	for id := range adj {
		seen := map[ids.ID]bool{}
		for _, f := range adj[id] {
			if f.other != id {
				seen[f.other] = true
			}
		}
		for _, f := range adj[id] {
			for _, ff := range adj[f.other] {
				if ff.other != id {
					seen[ff.other] = true
				}
			}
		}
		sizes = append(sizes, float64(len(seen)))
	}
	mean, sd := meanStd(sizes)
	if sd/mean < 0.2 {
		t.Fatalf("2-hop sizes too uniform: mean %v sd %v", mean, sd)
	}
}

func meanStd(xs []float64) (float64, float64) {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	m := sum / float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return m, math.Sqrt(v / float64(len(xs)))
}

func TestParallelRangeHelpers(t *testing.T) {
	// Coverage for chunking edge cases.
	var hits []int
	parallelChunks(1, 5, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			hits = append(hits, i)
		}
	})
	if len(hits) != 5 {
		t.Fatal("parallelChunks single worker")
	}
	n := 0
	parallelChunks(8, 0, func(w, lo, hi int) { n++ })
	if n != 0 {
		t.Fatal("zero-length chunks should not launch work")
	}
}
