package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package loading. The module deliberately has no external dependencies,
// so the x/tools go/packages loader is not available; instead the suite
// drives `go list -export -deps -json`, which yields, fully offline,
// (a) the file sets of the packages under analysis and (b) compiled
// export data — via the build cache — for every dependency, standard
// library included. Target packages are parsed and type-checked from
// source (the analyzers need syntax plus full types.Info); their
// dependencies are imported from export data through the stock gc
// importer, which is exactly how a vet tool sees the world.

// ListPackage is the subset of `go list -json` the loader consumes.
type ListPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
}

// goList runs `go list -export -deps -json` for patterns in dir and
// decodes the package stream.
func goList(dir string, patterns ...string) ([]ListPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,Standard,DepOnly,GoFiles",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var pkgs []ListPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p ListPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -json decode: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Package is one type-checked target package ready for analysis.
type Package struct {
	Path   string
	Fset   *token.FileSet
	Syntax []*ast.File
	Types  *types.Package
	Info   *types.Info
}

// newInfo allocates the types.Info maps the analyzers rely on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// exportImporter returns a types.Importer that resolves import paths
// through the export-data files in exports (ImportPath -> file).
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// Load type-checks the non-test Go files of every package matching
// patterns (resolved by the go tool relative to dir) and returns them in
// `go list` order. It is the loader behind cmd/snblint.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)

	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
		out = append(out, &Package{
			Path:   p.ImportPath,
			Fset:   fset,
			Syntax: files,
			Types:  tpkg,
			Info:   info,
		})
	}
	return out, nil
}
