package lint

// Fixture harness in the style of x/tools analysistest: each analyzer
// has a directory under testdata/src/<analyzer>/ holding one or more
// small packages; source lines that must produce a diagnostic carry a
// trailing  // want `regex`  comment, and the test fails on any
// unexpected diagnostic, any unmatched want, or any want whose regex
// does not match the message. Fixture packages may import each other by
// bare path (a directory under the analyzer's root) and the standard
// library (resolved through build-cache export data, like real loads).

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"testing"
)

// stdExports memoises export-data locations for the std packages the
// fixtures import (plus transitive dependencies), resolved once per
// test process via `go list -export -deps`.
var (
	stdExportsOnce sync.Once
	stdExports     map[string]string
	stdExportsErr  error
)

func stdExportMap(t *testing.T) map[string]string {
	t.Helper()
	stdExportsOnce.Do(func() {
		pkgs, err := goList(".",
			"errors", "fmt", "io", "math/rand", "net", "os", "runtime",
			"sort", "strings", "sync", "sync/atomic", "time")
		if err != nil {
			stdExportsErr = err
			return
		}
		stdExports = make(map[string]string, len(pkgs))
		for _, p := range pkgs {
			if p.Export != "" {
				stdExports[p.ImportPath] = p.Export
			}
		}
	})
	if stdExportsErr != nil {
		t.Fatalf("resolving std export data: %v", stdExportsErr)
	}
	return stdExports
}

// fixtureLoader type-checks fixture packages from source, resolving
// imports first against sibling fixture directories, then against the
// standard library's export data.
type fixtureLoader struct {
	fset *token.FileSet
	root string
	std  types.Importer
	pkgs map[string]*Package
}

func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.root, path); isDir(dir) {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

func isDir(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}

func (l *fixtureLoader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &Package{Path: path, Fset: l.fset, Syntax: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// wantRE extracts the expectation regex from a `// want `...“ comment.
var wantRE = regexp.MustCompile("// want `(.*)`\\s*$")

type wantExpect struct {
	re      *regexp.Regexp
	matched bool
}

// runFixture loads the named fixture packages under
// testdata/src/<dir>/, runs the analyzer over them, and checks the
// diagnostics against the fixtures' want comments.
func runFixture(t *testing.T, a *Analyzer, dir string, paths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	l := &fixtureLoader{
		fset: fset,
		root: filepath.Join("testdata", "src", dir),
		std:  exportImporter(fset, stdExportMap(t)),
		pkgs: make(map[string]*Package),
	}
	var pkgs []*Package
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			t.Fatalf("loading fixture %s/%s: %v", dir, p, err)
		}
		pkgs = append(pkgs, pkg)
	}

	type lineKey struct {
		file string
		line int
	}
	wants := make(map[lineKey][]*wantExpect)
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want regex %q: %v", fset.Position(c.Pos()), m[1], err)
					}
					k := lineKey{fset.Position(c.Pos()).Filename, fset.Position(c.Pos()).Line}
					wants[k] = append(wants[k], &wantExpect{re: re})
				}
			}
		}
	}

	for _, d := range Run([]*Analyzer{a}, pkgs) {
		k := lineKey{d.Pos.Filename, d.Pos.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matched want `%s`", k.file, k.line, w.re)
			}
		}
	}
}

func TestViewAlias(t *testing.T)     { runFixture(t, ViewAlias, "viewalias", "a") }
func TestLockGuard(t *testing.T)     { runFixture(t, LockGuard, "lockguard", "a") }
func TestPubFreeze(t *testing.T)     { runFixture(t, PubFreeze, "pubfreeze", "a") }
func TestDeterministic(t *testing.T) { runFixture(t, Deterministic, "deterministic", "a") }
func TestSyncErr(t *testing.T)       { runFixture(t, SyncErr, "syncerr", "store", "server") }
