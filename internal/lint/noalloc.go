package lint

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// The noalloc invariant: a function marked `//snb:noalloc` sits on a
// hot path (CSR row decode, snapshot-read fast path, WAL commit append)
// where a heap allocation per call would dominate the operation it
// performs. The AST cannot see allocations — whether a composite
// literal or closure heap-allocates is the escape analyzer's verdict —
// so the invariant is enforced against the compiler itself:
// cmd/allocbound runs `go build -gcflags=-m` and fails if any
// escape-analysis diagnostic ("escapes to heap", "moved to heap")
// lands inside a marked function's line range. This file holds the
// shared machinery: the marker scanner and the -m output matcher.

// NoallocFunc is one `//snb:noalloc`-marked function: its file, name,
// and the line range its body spans.
type NoallocFunc struct {
	File      string // absolute path
	Name      string
	StartLine int
	EndLine   int
}

// contains reports whether file:line falls inside the function.
func (f NoallocFunc) contains(file string, line int) bool {
	return file == f.File && line >= f.StartLine && line <= f.EndLine
}

// ScanNoalloc parses every non-test .go file under each root directory
// (recursively, skipping testdata and hidden directories) and returns
// the marked functions, sorted by file and line. Only syntax is needed,
// so no type-checking or export data is involved.
func ScanNoalloc(roots ...string) ([]NoallocFunc, error) {
	fset := token.NewFileSet()
	var out []NoallocFunc
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return err
			}
			abs, err := filepath.Abs(path)
			if err != nil {
				return err
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if _, marked := funcDirective(fd, "noalloc"); !marked {
					continue
				}
				out = append(out, NoallocFunc{
					File:      abs,
					Name:      funcDisplayName(fd),
					StartLine: fset.Position(fd.Pos()).Line,
					EndLine:   fset.Position(fd.Body.Rbrace).Line,
				})
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].StartLine < out[j].StartLine
	})
	return out, nil
}

// funcDisplayName renders "(*T).Method" / "T.Method" / "Func".
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if se, ok := t.(*ast.StarExpr); ok {
		if base := recvTypeName(se.X); base != "" {
			return "(*" + base + ")." + fd.Name.Name
		}
	}
	if base := recvTypeName(t); base != "" {
		return base + "." + fd.Name.Name
	}
	return fd.Name.Name
}

func recvTypeName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.IndexExpr: // generic receiver T[P]
		return recvTypeName(x.X)
	case *ast.IndexListExpr:
		return recvTypeName(x.X)
	}
	return ""
}

// escapeRE matches the compiler's escape-analysis diagnostics that
// indicate a heap allocation attributed to a source position:
//
//	./codec.go:101:12: make([]Edge, n) escapes to heap
//	./wal.go:57:6: moved to heap: buf
//
// "does not escape" lines are the compiler confirming stack placement
// and must not match.
var escapeRE = regexp.MustCompile(`^(.+\.go):(\d+):\d+: (.*(?:escapes to heap|moved to heap).*)$`)

// Escape is one heap-allocation diagnostic attributed to a marked
// function.
type Escape struct {
	Func    NoallocFunc
	File    string
	Line    int
	Message string
}

func (e Escape) String() string {
	return fmt.Sprintf("%s:%d: %s in //snb:noalloc %s", e.File, e.Line, e.Message, e.Func.Name)
}

// MatchEscapes reads `go build -gcflags=-m` diagnostics from r (the
// compiler writes them to stderr), resolving relative paths against
// dir, and returns every heap allocation that lands inside one of the
// marked functions.
func MatchEscapes(r io.Reader, dir string, marked []NoallocFunc) ([]Escape, error) {
	var out []Escape
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := escapeRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		if strings.Contains(m[3], "does not escape") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(dir, file)
		}
		abs, err := filepath.Abs(file)
		if err != nil {
			return nil, err
		}
		var line int
		fmt.Sscanf(m[2], "%d", &line)
		for _, fn := range marked {
			if fn.contains(abs, line) {
				out = append(out, Escape{Func: fn, File: abs, Line: line, Message: m[3]})
				break
			}
		}
	}
	return out, sc.Err()
}
