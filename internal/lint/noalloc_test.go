package lint

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

func scanNoallocFixture(t *testing.T) (string, map[string]NoallocFunc) {
	t.Helper()
	root := filepath.Join("testdata", "src", "noalloc")
	fns, err := ScanNoalloc(root)
	if err != nil {
		t.Fatalf("ScanNoalloc: %v", err)
	}
	byName := make(map[string]NoallocFunc, len(fns))
	for _, f := range fns {
		byName[f.Name] = f
	}
	return root, byName
}

func TestScanNoalloc(t *testing.T) {
	_, byName := scanNoallocFixture(t)
	if len(byName) != 2 {
		t.Fatalf("got %d marked functions, want 2 (Sum, (*Ring).Append): %v", len(byName), byName)
	}
	for _, name := range []string{"Sum", "(*Ring).Append"} {
		fn, ok := byName[name]
		if !ok {
			t.Fatalf("marked function %s not found", name)
		}
		if fn.StartLine <= 0 || fn.EndLine < fn.StartLine {
			t.Errorf("%s: bad line range %d..%d", name, fn.StartLine, fn.EndLine)
		}
	}
	// Grow carries no marker and must not be scanned.
	if _, ok := byName["Grow"]; ok {
		t.Error("unmarked function Grow was scanned as //snb:noalloc")
	}
}

func TestMatchEscapes(t *testing.T) {
	root, byName := scanNoallocFixture(t)
	sum, app := byName["Sum"], byName["(*Ring).Append"]
	fns := []NoallocFunc{sum, app}

	var b strings.Builder
	// Inside Sum: flagged.
	fmt.Fprintf(&b, "%s:%d:2: t escapes to heap\n", sum.File, sum.StartLine+2)
	// Between the marked ranges (Grow): allowed.
	fmt.Fprintf(&b, "%s:%d:9: append escapes to heap\n", sum.File, sum.EndLine+2)
	// Stack-placement confirmation: never a finding.
	fmt.Fprintf(&b, "%s:%d:10: xs does not escape\n", sum.File, sum.StartLine)
	// Inside Append: flagged.
	fmt.Fprintf(&b, "%s:%d:6: moved to heap: b\n", app.File, app.StartLine+1)
	// Noise the compiler also prints on -m.
	fmt.Fprintf(&b, "# ldbcsnb/internal/lint/testdata\n")

	escapes, err := MatchEscapes(strings.NewReader(b.String()), root, fns)
	if err != nil {
		t.Fatalf("MatchEscapes: %v", err)
	}
	if len(escapes) != 2 {
		t.Fatalf("got %d escapes, want 2: %v", len(escapes), escapes)
	}
	if escapes[0].Func.Name != "Sum" || !strings.Contains(escapes[0].Message, "escapes to heap") {
		t.Errorf("first escape should land in Sum: %v", escapes[0])
	}
	if escapes[1].Func.Name != "(*Ring).Append" || !strings.Contains(escapes[1].Message, "moved to heap") {
		t.Errorf("second escape should land in (*Ring).Append: %v", escapes[1])
	}
}
