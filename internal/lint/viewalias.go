package lint

import (
	"go/ast"
	"go/types"
)

// ViewAlias enforces the Reader scratch-aliasing contract: slices
// returned by Out, In and Props on the store's reader surface alias
// view-owned shared memory — the per-row decode cache, the CSR overlay
// rows, the dense property slab — so a caller-side write corrupts every
// concurrent reader of the same view. NodesOfKind and KindRange rows
// share the same contract.
//
// Within each function the pass taints values returned by those methods
// (propagating through plain copies and re-slices) and flags:
//
//   - element writes:     row[i] = e, row[i].Stamp = 0, row[i]++
//   - growth:             append(row, ...) with the tainted slice as base
//   - in-place sorting:   sort.Slice/SliceStable/Sort/Stable(row, ...)
//   - escape to storage:  x.field = row, pkgVar = row, ch <- row
//
// Copy-out (`append(dst, row...)`, `copy(dst, row)`, ranging) is the
// sanctioned idiom and is not flagged.
var ViewAlias = &Analyzer{
	Name: "viewalias",
	Doc:  "flag mutation or escape of slices returned by Reader.Out/In/Props (shared view memory)",
	Run:  runViewAlias,
}

// readerAliasMethods are the Reader-surface methods whose results alias
// shared view memory, keyed by method name. The receiver must resolve to
// a method declared in a package named "store" (the concrete
// SnapshotView/Txn methods and the Reader interface methods both do;
// generic code calling through a type parameter constrained by
// store.Reader resolves to the interface methods).
var readerAliasMethods = map[string]bool{
	"Out":         true,
	"In":          true,
	"Props":       true,
	"NodesOfKind": true,
	"KindRange":   true,
}

// isAliasCall reports whether call returns view-aliased memory.
func isAliasCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "store" {
		return false
	}
	return readerAliasMethods[fn.Name()] && fn.Type().(*types.Signature).Recv() != nil
}

func runViewAlias(pass *Pass) {
	eachFunc(pass, func(_ *ast.File, decl *ast.FuncDecl) {
		viewAliasFunc(pass, decl)
	})
}

func viewAliasFunc(pass *Pass, decl *ast.FuncDecl) {
	// Pass 1 (to fixpoint): the set of objects holding tainted slices.
	// x := r.Out(...) taints x; y := x and y := x[1:] propagate; any
	// other assignment to the object clears it conservatively? No —
	// flow-insensitive: once tainted in this function, always suspect.
	tainted := make(map[types.Object]bool)
	taintOf := func(e ast.Expr) bool {
		if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
			return isAliasCall(pass.Info, call)
		}
		if id, _ := rootIdent(e); id != nil {
			if obj := pass.Info.Uses[id]; obj != nil && tainted[obj] {
				// Plain copies and re-slices alias; struct-field reads of
				// a tainted root do not make the field value a view row.
				switch ast.Unparen(e).(type) {
				case *ast.Ident, *ast.SliceExpr, *ast.ParenExpr:
					return true
				}
			}
		}
		return false
	}
	obj := func(id *ast.Ident) types.Object {
		if o := pass.Info.Defs[id]; o != nil {
			return o
		}
		return pass.Info.Uses[id]
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			// Multi-value call assigns (ps, ok := r.Props(id)) taint LHS[0];
			// one-to-one assigns taint positionally.
			if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
				if call, isCall := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); isCall && isAliasCall(pass.Info, call) {
					if id, isID := as.Lhs[0].(*ast.Ident); isID {
						if o := obj(id); o != nil && !tainted[o] {
							tainted[o] = true
							changed = true
						}
					}
				}
				return true
			}
			for i, lhs := range as.Lhs {
				if i >= len(as.Rhs) {
					break
				}
				id, isID := lhs.(*ast.Ident)
				if !isID || !taintOf(as.Rhs[i]) {
					continue
				}
				if o := obj(id); o != nil && !tainted[o] {
					tainted[o] = true
					changed = true
				}
			}
			return true
		})
	}
	// Also taint range value vars? Ranging a tainted slice yields element
	// copies, which are safe. Nothing to do.

	taintedExpr := func(e ast.Expr) (types.Object, bool) {
		e = ast.Unparen(e)
		id, _ := rootIdent(e)
		if id == nil {
			return nil, false
		}
		o := pass.Info.Uses[id]
		if o == nil || !tainted[o] {
			return nil, false
		}
		// Only the slice itself (or a re-slice of it), not fields read
		// off its elements.
		switch e.(type) {
		case *ast.Ident, *ast.SliceExpr:
			return o, true
		}
		return nil, false
	}

	// Pass 2: flag violations.
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				// Element write: root of LHS is tainted and the path
				// indexes into it (row[i] = ..., row[i].Stamp = ...).
				if id, via := rootIdent(lhs); id != nil && via {
					if o := pass.Info.Uses[id]; o != nil && tainted[o] {
						pass.Reportf(lhs.Pos(), "write into %s, which aliases shared view memory returned by Reader.%s", id.Name, "Out/In/Props")
						continue
					}
				}
				// Escape: tainted slice stored into a struct field,
				// package-level variable, or map/slice element.
				if i < len(st.Rhs) {
					if _, ok := taintedExpr(st.Rhs[i]); !ok {
						continue
					}
					switch l := lhs.(type) {
					case *ast.SelectorExpr:
						pass.Reportf(st.Rhs[i].Pos(), "view-aliased slice stored into field %s; it outlives the read and is shared with concurrent readers — copy it", l.Sel.Name)
					case *ast.IndexExpr:
						pass.Reportf(st.Rhs[i].Pos(), "view-aliased slice stored into a container element; copy it first")
					case *ast.Ident:
						if o := pass.Info.Uses[l]; isPkgLevel(o) {
							pass.Reportf(st.Rhs[i].Pos(), "view-aliased slice stored into package variable %s; copy it first", l.Name)
						}
					}
				}
			}
		case *ast.IncDecStmt:
			if id, via := rootIdent(st.X); id != nil && via {
				if o := pass.Info.Uses[id]; o != nil && tainted[o] {
					pass.Reportf(st.X.Pos(), "write into %s, which aliases shared view memory", id.Name)
				}
			}
		case *ast.SendStmt:
			if _, ok := taintedExpr(st.Value); ok {
				pass.Reportf(st.Value.Pos(), "view-aliased slice sent on a channel; the receiver would share view memory — copy it first")
			}
		case *ast.CallExpr:
			viewAliasCall(pass, st, taintedExpr)
		}
		return true
	})
}

// viewAliasCall flags append-with-tainted-base and in-place sorts.
func viewAliasCall(pass *Pass, call *ast.CallExpr, taintedExpr func(ast.Expr) (types.Object, bool)) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isB := pass.Info.Uses[id].(*types.Builtin); isB && b.Name() == "append" && len(call.Args) > 0 {
			// append(row, ...) may write into row's spare capacity — the
			// decode cache row every other reader shares. Spreading a
			// tainted slice as the *source* (append(dst, row...)) is the
			// sanctioned copy-out and only the base argument is checked.
			if obj, tainted := taintedExpr(call.Args[0]); tainted {
				pass.Reportf(call.Args[0].Pos(), "append to %s, which aliases shared view memory; copy into caller-owned scratch instead", obj.Name())
			}
		}
		return
	}
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sort" {
		return
	}
	switch fn.Name() {
	case "Slice", "SliceStable", "Sort", "Stable":
		if len(call.Args) > 0 {
			if obj, tainted := taintedExpr(call.Args[0]); tainted {
				pass.Reportf(call.Args[0].Pos(), "in-place sort of %s, which aliases shared view memory; sort a copy", obj.Name())
			}
		}
	}
}
