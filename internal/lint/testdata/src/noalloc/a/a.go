// Package a is a fixture for the noalloc marker scanner and the
// escape-analysis output matcher.
package a

// Sum is a hot-path reduction.
//
//snb:noalloc
func Sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// Grow may allocate; it carries no marker.
func Grow(xs []int) []int {
	return append(xs, 1)
}

// Ring is a marked method's receiver.
type Ring struct{ buf []byte }

// Append extends the ring buffer in place.
//
//snb:noalloc
func (r *Ring) Append(b byte) {
	r.buf = append(r.buf, b)
}
