// Package store is a fixture stand-in for ldbcsnb/internal/store: the
// viewalias analyzer keys on methods named Out/In/Props/NodesOfKind/
// KindRange declared in a package named "store".
package store

// NodeID is a node identifier.
type NodeID uint64

// Edge is one adjacency entry.
type Edge struct {
	Dst   NodeID
	Stamp int64
}

// SnapshotView mimics the real read surface.
type SnapshotView struct{}

// Out returns the outgoing adjacency of id. The slice aliases shared
// view memory and must not be mutated.
func (v *SnapshotView) Out(id NodeID) []Edge { return nil }

// In returns the incoming adjacency of id.
func (v *SnapshotView) In(id NodeID) []Edge { return nil }

// Props returns the property row of id.
func (v *SnapshotView) Props(id NodeID) ([]string, bool) { return nil, false }

// NodesOfKind returns the ids of one node kind.
func (v *SnapshotView) NodesOfKind(kind int) []NodeID { return nil }
