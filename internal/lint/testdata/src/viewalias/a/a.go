package a

import (
	"sort"

	"store"
)

var global []store.Edge

type holder struct {
	rows []store.Edge
}

func bad(v *store.SnapshotView, h *holder, ch chan []store.Edge) {
	out := v.Out(1)
	out[0] = store.Edge{}                                                   // want `write into out`
	out[0].Stamp = 7                                                        // want `write into out`
	out[0].Stamp++                                                          // want `write into out`
	h.rows = out                                                            // want `stored into field rows`
	global = out                                                            // want `package variable global`
	ch <- out                                                               // want `sent on a channel`
	out = append(out, store.Edge{})                                         // want `append to out`
	sort.Slice(out, func(i, j int) bool { return out[i].Dst < out[j].Dst }) // want `in-place sort of out`

	alias := out
	alias[1] = store.Edge{} // want `write into alias`

	sub := out[1:]
	sub[0] = store.Edge{} // want `write into sub`

	kinds := v.NodesOfKind(3)
	kinds[0] = 9 // want `write into kinds`
}

func good(v *store.SnapshotView) []store.Edge {
	out := v.Out(1)

	// Copy-out is the sanctioned idiom: make+copy, or append into a
	// caller-owned destination with the tainted slice as the source.
	cp := make([]store.Edge, len(out))
	copy(cp, out)
	cp[0] = store.Edge{}

	dst := append([]store.Edge(nil), out...)
	sort.Slice(dst, func(i, j int) bool { return dst[i].Dst < dst[j].Dst })

	// Ranging yields element copies; reading fields is fine.
	var sum int64
	for _, e := range out {
		sum += int64(e.Dst)
	}
	_ = sum

	// Multi-value form: the slice result is tainted, reads stay legal.
	ps, ok := v.Props(1)
	if ok && len(ps) > 0 {
		_ = ps[0]
	}
	return cp
}
