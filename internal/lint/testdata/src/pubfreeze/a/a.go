package a

import "sync/atomic"

type view struct {
	rows []int
	n    int
}

type holder struct {
	cur atomic.Pointer[view]
}

// good builds fully, then publishes: the write-before-Store pattern.
func good(h *holder) {
	v := &view{n: 1}
	v.rows = append(v.rows, 1)
	h.cur.Store(v)
}

func bad(h *holder) {
	v := &view{}
	h.cur.Store(v)
	v.n = 2                    // want `write through v after it was published`
	v.rows = append(v.rows, 1) // want `write through v after it was published`
	finish(v)                  // want `escapes to finish`
}

func badAddr(h *holder) {
	var v view
	h.cur.Store(&v)
	v.n = 3 // want `write through v after it was published`
}

func finish(v *view) {
	v.n = 99
}

func inspect(v *view) int { return v.n }

// goodPass hands the published value to a read-only callee.
func goodPass(h *holder) int {
	v := &view{}
	h.cur.Store(v)
	return inspect(v)
}
