package a

import (
	"math/rand"
	"runtime"
	"sort"
	"time"
)

//snb:deterministic
func bad(counts map[string]int) (total int) {
	for _, v := range counts { // want `map iteration in //snb:deterministic function bad`
		total += v
	}
	if time.Now().Unix()%2 == 0 { // want `call to time.Now`
		total += rand.Int() // want `call to math/rand.Int`
	}
	if runtime.GOMAXPROCS(0) > 4 { // want `call to runtime.GOMAXPROCS`
		total++
	}
	return total
}

// good sorts the keys before iterating in order, and suppresses the
// collect loop whose order is discarded.
//
//snb:deterministic
func good(counts map[string]int) []string {
	keys := make([]string, 0, len(counts))
	//snb:mapiter-ok collect-then-sort: order is discarded below
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// unmarked functions may do anything.
func unmarked(counts map[string]int) int {
	n := 0
	for range counts {
		n++
	}
	if time.Now().IsZero() {
		n += rand.Int()
	}
	return n
}

// slices are ordered; ranging them is always fine.
//
//snb:deterministic
func goodSlice(xs []int) (total int) {
	for _, x := range xs {
		total += x
	}
	return total
}
