// Package server is a fixture for the syncerr analyzer's serving-layer
// allowlist: connection closes and I/O deadlines carry the
// backpressure contract, so their errors must be consumed or
// annotated.
package server

import (
	"net"
	"time"
)

func bad(c net.Conn, frame []byte) {
	c.SetDeadline(time.Now().Add(time.Second))      // want `SetDeadline error discarded`
	c.SetReadDeadline(time.Now().Add(time.Second))  // want `SetReadDeadline error discarded`
	c.SetWriteDeadline(time.Now().Add(time.Second)) // want `SetWriteDeadline error discarded`
	c.Write(frame)                                  // want `Write error discarded`
	defer c.Close()                                 // want `Close error discarded`
	_ = c.Close()                                   // want `Close error assigned to _`
}

// good propagates the deadline and write errors and annotates the
// teardown close, where the response write has already reported.
func good(c net.Conn, frame []byte) error {
	defer c.Close() //snb:errok response writes reported their own errors; nothing left to flush
	if err := c.SetWriteDeadline(time.Now().Add(time.Second)); err != nil {
		return err
	}
	_, err := c.Write(frame)
	return err
}
