// Package store is a fixture for the syncerr analyzer, which is gated
// on the package name.
package store

import (
	"errors"
	"os"
)

func bad(path string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	f.Write([]byte("x"))         // want `Write error discarded`
	f.Sync()                     // want `Sync error discarded`
	defer f.Sync()               // want `Sync error discarded`
	_ = f.Close()                // want `Close error assigned to _`
	os.Rename(path, path+".new") // want `Rename error discarded`
}

// good propagates every durability-relevant error, including the
// deferred close via the named-return join.
func good(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		err = errors.Join(err, f.Close())
	}()
	if _, err := f.Write([]byte("x")); err != nil {
		return err
	}
	return f.Sync()
}

// goodRead closes a read-only handle; nothing durable is at stake, so
// the suppression applies.
func goodRead(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close() //snb:errok read-only handle, no durability at stake
	var buf [8]byte
	_, err = f.Read(buf[:])
	return err
}
