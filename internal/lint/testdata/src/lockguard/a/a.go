package a

import "sync"

type S struct {
	mu sync.Mutex
	// guarded by mu
	count int

	vmu  sync.RWMutex
	data []int // guarded by vmu

	free int // unannotated: never flagged
}

func (s *S) good() {
	s.mu.Lock()
	s.count++
	s.mu.Unlock()
}

func (s *S) goodRead() int {
	s.vmu.RLock()
	defer s.vmu.RUnlock()
	return len(s.data)
}

// newS constructs through a composite literal; construction is not a
// guarded field access.
func newS() *S {
	return &S{count: 1, free: 2}
}

// goodLocked documents the caller-holds contract.
//
//snb:locked mu
func (s *S) goodLocked() {
	s.count = 0
}

func (s *S) goodFree() int {
	s.free = 3
	return s.free
}

// goodHandoff is the group-commit double-buffer idiom: the guarded slice
// is swapped to a local under the lock, and the detached batch is then
// used (and handed to another goroutine) after Unlock — the local alias is
// exclusively owned once swapped out, so the post-unlock reads are clean.
func (s *S) goodHandoff(out chan<- []int) {
	s.vmu.Lock()
	batch := s.data
	s.data = nil
	s.vmu.Unlock()
	for i := range batch {
		batch[i]++
	}
	out <- batch
}

func (s *S) badWrite() {
	s.count = 1 // want `write to count without holding mu`
}

func (s *S) badRead() int {
	return s.count // want `read of count without holding mu`
}

func (s *S) badRLockWrite() {
	s.vmu.RLock()
	defer s.vmu.RUnlock()
	s.data = append(s.data, 1) // want `write to data \(guarded by vmu\) under RLock only`
}

func (s *S) badElemWrite(i int) {
	s.data[i] = 0 // want `write to data without holding vmu`
}
