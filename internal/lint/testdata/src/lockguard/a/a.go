package a

import "sync"

type S struct {
	mu sync.Mutex
	// guarded by mu
	count int

	vmu  sync.RWMutex
	data []int // guarded by vmu

	free int // unannotated: never flagged
}

func (s *S) good() {
	s.mu.Lock()
	s.count++
	s.mu.Unlock()
}

func (s *S) goodRead() int {
	s.vmu.RLock()
	defer s.vmu.RUnlock()
	return len(s.data)
}

// newS constructs through a composite literal; construction is not a
// guarded field access.
func newS() *S {
	return &S{count: 1, free: 2}
}

// goodLocked documents the caller-holds contract.
//
//snb:locked mu
func (s *S) goodLocked() {
	s.count = 0
}

func (s *S) goodFree() int {
	s.free = 3
	return s.free
}

func (s *S) badWrite() {
	s.count = 1 // want `write to count without holding mu`
}

func (s *S) badRead() int {
	return s.count // want `read of count without holding mu`
}

func (s *S) badRLockWrite() {
	s.vmu.RLock()
	defer s.vmu.RUnlock()
	s.data = append(s.data, 1) // want `write to data \(guarded by vmu\) under RLock only`
}

func (s *S) badElemWrite(i int) {
	s.data[i] = 0 // want `write to data without holding vmu`
}
