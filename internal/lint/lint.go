// Package lint is snblint's analysis suite: a set of small static
// analysis passes that mechanically enforce the store's documented
// concurrency, aliasing and hot-path invariants — the contracts that
// go vet and the race detector cannot check (the race job only sees the
// interleavings the tests happen to hit; these passes see every call
// site on every build).
//
// The suite is a from-scratch, stdlib-only miniature of the
// golang.org/x/tools go/analysis vocabulary (Analyzer, Pass, Diagnostic,
// `// want` fixture tests): the module carries no external dependencies,
// so the framework is built directly on go/ast and go/types, with
// package loading driven by `go list -export` (see load.go).
//
// # Analyzers
//
//   - viewalias: slices returned by Reader.Out/In/Props alias shared
//     view-owned memory (decode cache, CSR slabs, property slab) and
//     must not be mutated, appended to, or stored into longer-lived
//     locations.
//   - lockguard: fields annotated `guarded by <mu>` may only be touched
//     by functions that lock <mu> or are annotated `//snb:locked <mu>`.
//   - pubfreeze: a value passed to atomic.Pointer.Store is published and
//     immutable; later writes through it (or passing it to a mutating
//     callee) in the same function are flagged.
//   - deterministic: functions marked `//snb:deterministic` must not
//     iterate maps (unless `//snb:mapiter-ok`), read the clock, draw
//     random numbers, or branch on GOMAXPROCS/NumCPU.
//   - syncerr: in the store's persistence code and the serving layer
//     (server, client), errors from Sync/Close/Write/Rename and the
//     net.Conn deadline setters must not be discarded (a dropped fsync
//     error voids the durability guarantee; a dropped SetDeadline
//     leaves a connection unguarded) unless `//snb:errok`.
//   - noalloc: functions marked `//snb:noalloc` are gated against new
//     heap allocations by cmd/allocbound, which parses the compiler's
//     -m escape-analysis output (noalloc.go holds the marker scanner).
//
// docs/ANALYZERS.md documents each invariant and the annotation grammar.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one static analysis pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics and -only filters.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run analyzes one package and reports findings through the pass.
	Run func(*Pass)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one analyzer run over one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All is the suite, in reporting order. The noalloc invariant has no
// entry here: it is enforced by cmd/allocbound against the compiler's
// escape analysis, not by an AST pass (see noalloc.go).
var All = []*Analyzer{
	ViewAlias,
	LockGuard,
	PubFreeze,
	Deterministic,
	SyncErr,
}

// Run executes the given analyzers over pkgs and returns every finding,
// sorted by position.
func Run(analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Syntax,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// ---- annotation grammar helpers ----

// directiveRE matches `//snb:<name> <args>` machine directives. The
// directive must start its comment (after the marker, like //go:build).
var directiveRE = regexp.MustCompile(`^//snb:([a-z-]+)(?:[ \t]+(.*))?$`)

// funcDirective reports whether fn's doc comment carries //snb:<name>,
// returning the directive's argument text.
func funcDirective(fn *ast.FuncDecl, name string) (string, bool) {
	if fn.Doc == nil {
		return "", false
	}
	for _, c := range fn.Doc.List {
		if m := directiveRE.FindStringSubmatch(c.Text); m != nil && m[1] == name {
			return strings.TrimSpace(m[2]), true
		}
	}
	return "", false
}

// directiveLines collects, per file of the pass, the set of source lines
// suppressed by //snb:<name>: the directive's own line and the line
// after it, so both trailing (same-line) and preceding (own-line)
// placements work:
//
//	f.Close() //snb:errok reason
//	//snb:errok reason
//	f.Close()
func directiveLines(pass *Pass, name string) map[*ast.File]map[int]bool {
	out := make(map[*ast.File]map[int]bool)
	for _, f := range pass.Files {
		lines := make(map[int]bool)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if m := directiveRE.FindStringSubmatch(c.Text); m != nil && m[1] == name {
					l := pass.Fset.Position(c.Pos()).Line
					lines[l] = true
					lines[l+1] = true
				}
			}
		}
		out[f] = lines
	}
	return out
}

// eachFunc calls fn for every function declaration with a body in the
// pass's files.
func eachFunc(pass *Pass, fn func(file *ast.File, decl *ast.FuncDecl)) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(f, fd)
			}
		}
	}
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (method or package function), or nil for builtins, conversions and
// calls of function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		return calleeFunc(info, &ast.CallExpr{Fun: fun.X})
	case *ast.IndexListExpr:
		return calleeFunc(info, &ast.CallExpr{Fun: fun.X})
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// rootIdent walks selector/index/slice/paren/star chains down to the
// identifier they hang off, returning nil for anything else. via
// reports whether the chain passed through an index or slice step
// (i.e. the expression reaches *into* the root's elements).
func rootIdent(e ast.Expr) (id *ast.Ident, viaIndex bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, viaIndex
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
			viaIndex = true
		case *ast.SliceExpr:
			e = x.X
			viaIndex = true
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, viaIndex
		}
	}
}

// isPkgLevel reports whether obj is declared at package scope.
func isPkgLevel(obj types.Object) bool {
	return obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}
