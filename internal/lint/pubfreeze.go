package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PubFreeze enforces immutable-after-publication around atomic.Pointer
// installs (the snapshot-view install, the decode-cache publish, the
// interner snapshot publish): once a value has been passed to
// atomic.Pointer.Store it is visible to concurrent readers without any
// happens-before edge for later writes, so
//
//   - writing through the stored value after the Store call in the same
//     function is flagged, and
//   - passing the stored value to a same-package callee that writes
//     through the corresponding parameter is flagged (one level deep —
//     the common "publish then let a helper finish initialising" bug).
//
// Writes *before* the Store are the normal build-then-publish pattern
// and are fine, so the pass is position-sensitive within the function.
var PubFreeze = &Analyzer{
	Name: "pubfreeze",
	Doc:  "flag writes through a value after it was published via atomic.Pointer.Store",
	Run:  runPubFreeze,
}

// isAtomicPointerStore reports whether call is atomic.Pointer[T].Store
// (or atomic.Value.Store, which shares the publication semantics).
func isAtomicPointerStore(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != "Store" || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	return recv != nil
}

// storedObj extracts the published object from a Store argument: the
// identifier itself (p.Store(v)) or the target of an address-of
// (p.Store(&v)).
func storedObj(info *types.Info, arg ast.Expr) types.Object {
	arg = ast.Unparen(arg)
	if ue, ok := arg.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		arg = ast.Unparen(ue.X)
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	return obj
}

// mutatedParams summarises, for every function declared in the pass's
// package, which parameters (by index) the body writes through
// (param.field = x, param[i] = x, *param = x).
func mutatedParams(pass *Pass) map[*types.Func]map[int]bool {
	out := make(map[*types.Func]map[int]bool)
	eachFunc(pass, func(_ *ast.File, decl *ast.FuncDecl) {
		fn, _ := pass.Info.Defs[decl.Name].(*types.Func)
		if fn == nil {
			return
		}
		paramIndex := make(map[types.Object]int)
		i := 0
		for _, field := range decl.Type.Params.List {
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					paramIndex[obj] = i
				}
				i++
			}
			if len(field.Names) == 0 {
				i++
			}
		}
		record := func(e ast.Expr) {
			id, via := rootIdent(e)
			if id == nil {
				return
			}
			// A bare `param = x` rebinds the local, it does not mutate
			// the caller's value; only writes *through* the parameter
			// (selector, index, or explicit deref) count.
			if !via {
				if _, sel := e.(*ast.SelectorExpr); !sel {
					if _, star := e.(*ast.StarExpr); !star {
						return
					}
				}
			}
			obj := pass.Info.Uses[id]
			if obj == nil {
				return
			}
			if idx, ok := paramIndex[obj]; ok {
				m := out[fn]
				if m == nil {
					m = make(map[int]bool)
					out[fn] = m
				}
				m[idx] = true
			}
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					record(lhs)
				}
			case *ast.IncDecStmt:
				record(st.X)
			}
			return true
		})
	})
	return out
}

func runPubFreeze(pass *Pass) {
	mutators := mutatedParams(pass)
	eachFunc(pass, func(_ *ast.File, decl *ast.FuncDecl) {
		// published maps each stored object to the position of its
		// earliest Store call in this function.
		published := make(map[types.Object]token.Pos)
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicPointerStore(pass.Info, call) || len(call.Args) != 1 {
				return true
			}
			if obj := storedObj(pass.Info, call.Args[0]); obj != nil {
				if prev, seen := published[obj]; !seen || call.Pos() < prev {
					published[obj] = call.Pos()
				}
			}
			return true
		})
		if len(published) == 0 {
			return
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					id, via := rootIdent(lhs)
					if id == nil {
						continue
					}
					_, isSel := lhs.(*ast.SelectorExpr)
					_, isStar := lhs.(*ast.StarExpr)
					if !via && !isSel && !isStar {
						continue
					}
					obj := pass.Info.Uses[id]
					if obj == nil {
						continue
					}
					if pos, ok := published[obj]; ok && lhs.Pos() > pos {
						pass.Reportf(lhs.Pos(), "write through %s after it was published via atomic.Pointer.Store; concurrent readers already see it — mutate before the Store, or copy-on-write", id.Name)
					}
				}
			case *ast.IncDecStmt:
				if id, via := rootIdent(st.X); id != nil && via {
					if obj := pass.Info.Uses[id]; obj != nil {
						if pos, ok := published[obj]; ok && st.X.Pos() > pos {
							pass.Reportf(st.X.Pos(), "write through %s after it was published via atomic.Pointer.Store", id.Name)
						}
					}
				}
			case *ast.CallExpr:
				fn := calleeFunc(pass.Info, st)
				muts := mutators[fn]
				if muts == nil {
					return true
				}
				for i, arg := range st.Args {
					obj := storedObj(pass.Info, arg)
					if obj == nil {
						continue
					}
					if pos, ok := published[obj]; ok && arg.Pos() > pos && muts[i] {
						pass.Reportf(arg.Pos(), "%s escapes to %s, which writes through parameter %d, after being published via atomic.Pointer.Store", obj.Name(), fn.Name(), i)
					}
				}
			}
			return true
		})
	})
}
