package lint

import (
	"go/ast"
	"go/types"
)

// Deterministic enforces the `//snb:deterministic` contract on the BI
// kernels and the result-merge paths: those functions must produce
// byte-identical output regardless of worker count, wall clock, or map
// seed (the exec engine asserts cross-worker-count determinism in its
// tests; this pass makes the property auditable at every call site).
// Inside a marked function the pass forbids:
//
//   - ranging over a map — iteration order is randomised per run. A loop
//     whose effect is order-insensitive (a commutative merge into
//     another map, a collect-then-sort) is suppressed with
//     `//snb:mapiter-ok <reason>` on or above the range line.
//   - reading the clock: time.Now, time.Since, time.Until.
//   - drawing randomness: anything in math/rand or math/rand/v2.
//   - branching on machine shape: runtime.GOMAXPROCS, runtime.NumCPU.
//
// The check covers the marked function's own body only; callees carry
// their own markers. That keeps the contract local and reviewable.
var Deterministic = &Analyzer{
	Name: "deterministic",
	Doc:  "flag map iteration, clock reads, randomness, and GOMAXPROCS in //snb:deterministic functions",
	Run:  runDeterministic,
}

// nondetCalls maps package path -> function names whose results vary
// across runs. An empty name set means the whole package.
var nondetCalls = map[string]map[string]bool{
	"time":         {"Now": true, "Since": true, "Until": true},
	"math/rand":    nil,
	"math/rand/v2": nil,
	"runtime":      {"GOMAXPROCS": true, "NumCPU": true},
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func runDeterministic(pass *Pass) {
	mapOK := directiveLines(pass, "mapiter-ok")
	eachFunc(pass, func(file *ast.File, decl *ast.FuncDecl) {
		if _, ok := funcDirective(decl, "deterministic"); !ok {
			return
		}
		ok := mapOK[file]
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.RangeStmt:
				tv, found := pass.Info.Types[st.X]
				if !found || !isMapType(tv.Type) {
					return true
				}
				if ok[pass.Fset.Position(st.Range).Line] {
					return true
				}
				pass.Reportf(st.Range, "map iteration in //snb:deterministic function %s; order is randomised per run — sort the keys, or annotate //snb:mapiter-ok with why order cannot matter", decl.Name.Name)
			case *ast.CallExpr:
				fn := calleeFunc(pass.Info, st)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				names, bad := nondetCalls[fn.Pkg().Path()]
				if !bad || (names != nil && !names[fn.Name()]) {
					return true
				}
				pass.Reportf(st.Pos(), "call to %s.%s in //snb:deterministic function %s; its result varies across runs", fn.Pkg().Path(), fn.Name(), decl.Name.Name)
			}
			return true
		})
	})
}
