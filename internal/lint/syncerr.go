package lint

import (
	"go/ast"
	"go/types"
)

// SyncErr guards the durability contract of the store's persistence
// layer (WAL segments, checkpoints, directory fsyncs) and the serving
// layer's connection hygiene: an error from Sync, Close, Write or
// Rename that is silently dropped can turn an acknowledged commit into
// a lost one — the kernel is allowed to report a writeback failure
// exactly once, at fsync or close, and a discarded return is that
// report thrown away. On the wire, a dropped SetDeadline error leaves a
// connection with no I/O bound at all: the slow-loris guard silently
// stops guarding.
//
// The pass runs over the packages on the syncErrPkgs allowlist (store
// for persistence, server and client for the wire layer) and flags:
//
//   - a call statement whose result set includes an error and whose
//     callee is named Sync/Close/Write/WriteString/Rename/Flush or
//     SetDeadline/SetReadDeadline/SetWriteDeadline: `f.Close()` as a
//     statement, or `defer f.Sync()`
//   - an explicit blank-discard: `_ = f.Sync()`
//
// Read-side closes, where nothing durable is at stake, are suppressed
// with `//snb:errok <reason>` on or above the call line. A defer that
// wants to honour the contract uses the named-error-return pattern
// (`defer func() { err = errors.Join(err, f.Close()) }()`).
var SyncErr = &Analyzer{
	Name: "syncerr",
	Doc:  "flag discarded errors from Sync/Close/Write/Rename/SetDeadline in persistence and serving code",
	Run:  runSyncErr,
}

// syncErrPkgs are the packages the pass runs over: the persistence
// code, and the serving layer where connection deadlines and closes
// carry the backpressure contract.
var syncErrPkgs = map[string]bool{
	"store":  true,
	"server": true,
	"client": true,
}

// syncErrFuncs are the callee names whose error results must be
// consumed.
var syncErrFuncs = map[string]bool{
	"Sync":             true,
	"Close":            true,
	"Write":            true,
	"WriteString":      true,
	"Rename":           true,
	"Flush":            true,
	"SetDeadline":      true,
	"SetReadDeadline":  true,
	"SetWriteDeadline": true,
}

// returnsError reports whether fn's last result is error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// syncErrCall resolves call to a flaggable callee, or nil.
func syncErrCall(info *types.Info, call *ast.CallExpr) *types.Func {
	fn := calleeFunc(info, call)
	if fn == nil || !syncErrFuncs[fn.Name()] || !returnsError(fn) {
		return nil
	}
	return fn
}

func runSyncErr(pass *Pass) {
	if !syncErrPkgs[pass.Pkg.Name()] {
		return
	}
	errok := directiveLines(pass, "errok")
	eachFunc(pass, func(file *ast.File, decl *ast.FuncDecl) {
		ok := errok[file]
		report := func(call *ast.CallExpr, how string) {
			fn := syncErrCall(pass.Info, call)
			if fn == nil || ok[pass.Fset.Position(call.Pos()).Line] {
				return
			}
			pass.Reportf(call.Pos(), "%s error %s; a dropped %s error can silently void durability — propagate it, or annotate //snb:errok with why it cannot matter here", fn.Name(), how, fn.Name())
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, isCall := st.X.(*ast.CallExpr); isCall {
					report(call, "discarded (call used as a statement)")
				}
			case *ast.DeferStmt:
				report(st.Call, "discarded (deferred without capturing the result)")
			case *ast.GoStmt:
				report(st.Call, "discarded (go statement drops the result)")
			case *ast.AssignStmt:
				// `_ = f.Sync()` and `n, _ := f.Write(b)` with the error
				// position blanked.
				for i, rhs := range st.Rhs {
					call, isCall := ast.Unparen(rhs).(*ast.CallExpr)
					if !isCall {
						continue
					}
					fn := syncErrCall(pass.Info, call)
					if fn == nil {
						continue
					}
					// The error is the last result; with a single RHS call
					// it lands in the last LHS slot, else pairwise.
					var target ast.Expr
					if len(st.Rhs) == 1 {
						target = st.Lhs[len(st.Lhs)-1]
					} else if i < len(st.Lhs) {
						target = st.Lhs[i]
					}
					if id, isID := target.(*ast.Ident); isID && id.Name == "_" {
						report(call, "assigned to _")
					}
				}
			}
			return true
		})
	})
}
