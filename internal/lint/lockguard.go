package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// LockGuard enforces `guarded by <mu>` field annotations: a struct field
// whose doc or line comment names its guarding mutex may only be read or
// written inside functions that either lock that mutex themselves
// (<expr>.<mu>.Lock() / RLock() anywhere in the function body) or are
// annotated `//snb:locked <mu>` — the caller-holds-the-lock (or
// object-not-yet-published) contract. Writes additionally require the
// exclusive Lock; a function that only RLocks and still writes the field
// is flagged.
//
// The check is deliberately flow-insensitive (a Lock anywhere in the
// function clears the whole function): it catches the dangerous class —
// a new call site touching a guarded field with no locking discipline at
// all — without a false-positive tax on the lock/unlock dance around
// early returns. Struct construction through composite literals is not a
// field access and needs no clearance.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc:  "flag access to `guarded by <mu>` fields in functions that neither lock <mu> nor declare //snb:locked <mu>",
	Run:  runLockGuard,
}

// guardedRE extracts the mutex name from a field comment. The guard must
// be a sibling field name (e.g. `// guarded by deltaMu`).
var guardedRE = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// guardKey identifies one annotated field.
type guardKey struct {
	typeName string
	field    string
}

// collectGuards scans the pass's struct declarations for guarded-by
// field annotations.
func collectGuards(pass *Pass) map[guardKey]string {
	guards := make(map[guardKey]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				var mu string
				for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
					if cg == nil {
						continue
					}
					if m := guardedRE.FindStringSubmatch(cg.Text()); m != nil {
						mu = m[1]
					}
				}
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					guards[guardKey{ts.Name.Name, name.Name}] = mu
				}
			}
			return true
		})
	}
	return guards
}

// lockCalls returns the set of mutex names whose Lock/RLock is called
// anywhere in body, split by exclusivity: locked[mu] for Lock, rlocked
// [mu] for RLock. The mutex is identified by the final selector name
// (s.deltaMu.Lock() and w.mu.Lock() register "deltaMu" and "mu").
func lockCalls(body *ast.BlockStmt) (locked, rlocked map[string]bool) {
	locked, rlocked = make(map[string]bool), make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		var mu string
		switch x := ast.Unparen(sel.X).(type) {
		case *ast.SelectorExpr:
			mu = x.Sel.Name
		case *ast.Ident:
			mu = x.Name
		default:
			return true
		}
		switch sel.Sel.Name {
		case "Lock":
			locked[mu] = true
		case "RLock":
			rlocked[mu] = true
		}
		return true
	})
	return locked, rlocked
}

func runLockGuard(pass *Pass) {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return
	}
	eachFunc(pass, func(_ *ast.File, decl *ast.FuncDecl) {
		locked, rlocked := lockCalls(decl.Body)
		var held map[string]bool
		if arg, ok := funcDirective(decl, "locked"); ok {
			held = make(map[string]bool)
			for _, mu := range strings.Fields(arg) {
				held[mu] = true
			}
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			mu, ok := guardOf(pass, guards, sel)
			if !ok {
				return true
			}
			write := isWriteTarget(decl.Body, sel)
			switch {
			case held[mu]:
			case write && !locked[mu]:
				if rlocked[mu] {
					pass.Reportf(sel.Pos(), "write to %s (guarded by %s) under RLock only; writes need %s.Lock or //snb:locked %s", sel.Sel.Name, mu, mu, mu)
				} else {
					pass.Reportf(sel.Pos(), "write to %s without holding %s (no %s.Lock in function, no //snb:locked %s)", sel.Sel.Name, mu, mu, mu)
				}
			case !write && !locked[mu] && !rlocked[mu]:
				pass.Reportf(sel.Pos(), "read of %s without holding %s (no %s.Lock/RLock in function, no //snb:locked %s)", sel.Sel.Name, mu, mu, mu)
			}
			return true
		})
	})
}

// guardOf resolves a selector to its guarding mutex, if the selected
// field is annotated on a struct type of this package.
func guardOf(pass *Pass, guards map[guardKey]string, sel *ast.SelectorExpr) (string, bool) {
	tv, ok := pass.Info.Types[sel.X]
	if !ok {
		return "", false
	}
	t := tv.Type
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() != pass.Pkg {
		return "", false
	}
	mu, ok := guards[guardKey{named.Obj().Name(), sel.Sel.Name}]
	return mu, ok
}

// isWriteTarget reports whether sel is (the root of) an assignment or
// inc/dec target within body.
func isWriteTarget(body *ast.BlockStmt, sel *ast.SelectorExpr) bool {
	write := false
	ast.Inspect(body, func(n ast.Node) bool {
		if write {
			return false
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if containsSel(lhs, sel) {
					write = true
				}
			}
		case *ast.IncDecStmt:
			if containsSel(st.X, sel) {
				write = true
			}
		}
		return true
	})
	return write
}

// containsSel reports whether sel appears within e's selector/index
// spine (s.deltas, s.deltas[i], s.byKind[k] are writes to the field).
func containsSel(e ast.Expr, sel *ast.SelectorExpr) bool {
	for {
		if e == sel {
			return true
		}
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}
