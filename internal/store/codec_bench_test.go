package store

import (
	"testing"

	"ldbcsnb/internal/ids"
)

// Microbenchmarks for the adjacency read path: rowAt served hot from the
// decode cache against ranging the raw slice, the cold first decode, and
// the short-row shapes the query kernels lean on. These are the numbers
// behind the "compact view holds query latency" claim — run them when
// touching codec.go.

func benchRow(n int) ([]Edge, csr, []ids.ID) {
	nodes := make([]ids.ID, n*11+1)
	for i := range nodes {
		nodes[i] = ids.Compose(ids.KindPerson, int64(i), 0)
	}
	ord := make(map[ids.ID]int32, len(nodes))
	for i, id := range nodes {
		ord[id] = int32(i)
	}
	row := make([]Edge, n)
	stamp := int64(1_300_000_000_000)
	for i := range row {
		// Mixed deltas: mostly near-neighbour ordinals, stamps minutes to
		// hours apart — the shape bulk-loaded SNB adjacency has.
		o := i * 3
		if i%7 == 0 {
			o = i * 11
		}
		stamp += int64(40_000 + i%5*7_000_000)
		row[i] = Edge{To: nodes[o], Stamp: stamp}
	}
	var c csr
	c.lo = 0
	c.offsets = make([]uint32, 2)
	var ok bool
	c.data, ok = appendAdjRow(nil, row, ord)
	if !ok {
		panic("row refused")
	}
	c.offsets[1] = uint32(len(c.data))
	c.entries = n
	c.dec = &decCache{}
	return row, c, nodes
}

// BenchmarkRowIterHot is the steady-state read: rowAt hitting the decode
// cache, then ranging the returned slice. This is what every query after
// the first pays per row.
func BenchmarkRowIterHot(b *testing.B) {
	_, c, nodes := benchRow(64)
	c.rowAt(0, nodes) // warm the cache
	b.ReportAllocs()
	var sum int64
	for i := 0; i < b.N; i++ {
		for _, e := range c.rowAt(0, nodes) {
			sum += int64(e.To) + e.Stamp
		}
	}
	_ = sum
}

// BenchmarkRowIterShort measures the hot single-entry path: the row shape
// of hasCreator/replyOf/container rows. Reported per row-open plus full
// iteration.
func BenchmarkRowIterShort(b *testing.B) {
	_, c, nodes := benchRow(1)
	c.rowAt(0, nodes)
	b.ReportAllocs()
	var sum int64
	for i := 0; i < b.N; i++ {
		for _, e := range c.rowAt(0, nodes) {
			sum += int64(e.To) + e.Stamp
		}
	}
	_ = sum
}

// BenchmarkRowDecodeCold is the first-touch cost: decoding one 64-entry row
// off the varint slab (no cache, so every iteration decodes).
func BenchmarkRowDecodeCold(b *testing.B) {
	_, c, nodes := benchRow(64)
	c.dec = nil
	b.ReportAllocs()
	var sum int64
	for i := 0; i < b.N; i++ {
		for _, e := range c.rowAt(0, nodes) {
			sum += int64(e.To) + e.Stamp
		}
	}
	_ = sum
}

func BenchmarkRowIterRawSlice(b *testing.B) {
	row, _, _ := benchRow(64)
	b.ReportAllocs()
	var sum int64
	for i := 0; i < b.N; i++ {
		for _, e := range row {
			sum += int64(e.To) + e.Stamp
		}
	}
	_ = sum
}
