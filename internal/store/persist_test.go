package store

import (
	"bufio"
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/xrand"
)

// Durable checkpoint + segmented WAL tests: round trips, the
// checkpoint-plus-tail recovery path, crash injection at every boundary of
// the checkpoint sequence, torn and corrupt segments, fsync-on-commit
// semantics, and the recovered-equals-live equivalence property at every
// epoch of a randomised update stream.

// registerTestIndexes registers the secondary indexes the persistence
// tests exercise, on both the live and the recovering store (indexes are
// part of the checkpoint format).
func registerTestIndexes(s *Store) {
	s.RegisterOrderedIndex(ids.KindPerson, PropCreationDate)
	s.RegisterHashIndex(ids.KindPerson, PropFirstName)
}

// copyDir simulates the surviving disk image at a crash point: a recursive
// file copy of the data directory.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		s, d := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			copyDir(t, s, d)
			continue
		}
		data, err := os.ReadFile(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(d, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// assertStoresEqual compares two stores' full visible state at their
// current clocks: every read primitive over the union population, kind
// lists, and both secondary indexes.
func assertStoresEqual(t *testing.T, live, rec *Store, pop []ids.ID) {
	t.Helper()
	if lc, rc := live.LastCommit(), rec.LastCommit(); lc != rc {
		t.Fatalf("clocks diverge: live %d recovered %d", lc, rc)
	}
	lv, rv := live.CurrentView(), rec.CurrentView()
	assertViewMatchesRebuild(t, rv, lv)
	rec.View(func(tx *Txn) {
		assertViewMatchesTxn(t, rec, lv, tx, pop)
	})
	assertIndexesEqual(t, live, rec)
}

func assertIndexesEqual(t *testing.T, live, rec *Store) {
	t.Helper()
	dumpOrdered := func(s *Store) []int64 {
		var out []int64
		s.View(func(tx *Txn) {
			if err := tx.AscendIndex(ids.KindPerson, PropCreationDate, math.MinInt64, func(key int64, id ids.ID) bool {
				out = append(out, key, int64(id))
				return true
			}); err != nil {
				t.Fatal(err)
			}
		})
		return out
	}
	lo, ro := dumpOrdered(live), dumpOrdered(rec)
	if len(lo) != len(ro) {
		t.Fatalf("ordered index sizes diverge: live %d recovered %d", len(lo)/2, len(ro)/2)
	}
	for i := range lo {
		if lo[i] != ro[i] {
			t.Fatalf("ordered index entry %d diverges: live %d recovered %d", i/2, lo[i], ro[i])
		}
	}
	for _, name := range []string{"ada", "bob", "eve"} {
		var lids, rids []ids.ID
		live.View(func(tx *Txn) {
			lids, _ = tx.LookupHash(ids.KindPerson, PropFirstName, name)
		})
		rec.View(func(tx *Txn) {
			rids, _ = tx.LookupHash(ids.KindPerson, PropFirstName, name)
		})
		if len(lids) != len(rids) {
			t.Fatalf("LookupHash(%q) sizes diverge: live %d recovered %d", name, len(lids), len(rids))
		}
		for i := range lids {
			if lids[i] != rids[i] {
				t.Fatalf("LookupHash(%q)[%d]: live %v recovered %v", name, i, lids[i], rids[i])
			}
		}
	}
}

// growBoth applies one identical random graph step to the live in-memory
// store and the persistent store. Two rngs with the same seed stay in
// lockstep because both stores hold identical state at every step.
func growBoth(t *testing.T, live, dur *Store, rl, rd *xrand.Rand, pop []ids.ID, step int) []ids.ID {
	t.Helper()
	popD := append([]ids.ID(nil), pop...)
	popL := randomGraphStep(t, live, rl, pop, step)
	popD = randomGraphStep(t, dur, rd, popD, step)
	if len(popL) != len(popD) {
		t.Fatalf("step %d: populations diverged (%d vs %d)", step, len(popL), len(popD))
	}
	return popL
}

// reopen recovers a data directory into a fresh store and returns the
// handle plus recovery info, failing the test on error.
func reopen(t *testing.T, dir string, opts PersistOptions) (*Persistent, *RecoveryInfo) {
	t.Helper()
	p, info, err := Open(dir, opts, registerTestIndexes)
	if err != nil {
		t.Fatalf("reopen %s: %v", dir, err)
	}
	t.Cleanup(func() { p.Close() })
	return p, info
}

// manualOpts disables background checkpoints so tests control the
// checkpoint schedule deterministically.
func manualOpts() PersistOptions {
	return PersistOptions{CheckpointBytes: -1}
}

func TestPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p, info, err := Open(dir, manualOpts(), registerTestIndexes)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Fresh {
		t.Fatalf("fresh dir not reported fresh: %+v", info)
	}

	live := New()
	registerTestIndexes(live)
	rl, rd := xrand.New(7), xrand.New(7)
	var pop []ids.ID
	for step := 1; step <= 20; step++ {
		pop = growBoth(t, live, p.Store, rl, rd, pop, step)
		if step == 12 {
			if err := p.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	preClock := p.LastCommit()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	re, info := reopen(t, dir, manualOpts())
	if info.CheckpointTS == 0 {
		t.Fatalf("recovery ignored the checkpoint: %+v", info)
	}
	if info.Clock != preClock {
		t.Fatalf("recovered clock %d, want %d", info.Clock, preClock)
	}
	if info.Replayed == 0 {
		t.Fatalf("expected a WAL tail after the checkpoint: %+v", info)
	}
	assertStoresEqual(t, live, re.Store, pop)

	// The recovered store accepts new durable commits.
	tx := re.Begin()
	if err := tx.CreateNode(personID(9001), Props{{PropFirstName, String("ada")}}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, info := reopen(t, dir, manualOpts())
	if !re2.CurrentView().Exists(personID(9001)) {
		t.Fatalf("post-recovery commit lost: %+v", info)
	}
}

func TestPersistFullReplayFallback(t *testing.T) {
	dir := t.TempDir()
	p, _, err := Open(dir, manualOpts(), registerTestIndexes)
	if err != nil {
		t.Fatal(err)
	}
	live := New()
	registerTestIndexes(live)
	rl, rd := xrand.New(3), xrand.New(3)
	var pop []ids.ID
	for step := 1; step <= 15; step++ {
		pop = growBoth(t, live, p.Store, rl, rd, pop, step)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	re, info := reopen(t, dir, manualOpts())
	if info.CheckpointTS != 0 || info.Replayed != int(live.LastCommit()) {
		t.Fatalf("full replay expected: %+v (live clock %d)", info, live.LastCommit())
	}
	assertStoresEqual(t, live, re.Store, pop)
}

// TestPersistEquivalenceEveryEpoch is the recovery equivalence property:
// at every epoch of a randomised interleaved update stream (creations,
// prop updates, edge inserts and deletes), a crash image synced at that
// epoch recovers to exactly the live store's state at the same clock —
// through checkpoints taken mid-stream, across segment rotations, on both
// the view and MVCC read paths, indexes included.
func TestPersistEquivalenceEveryEpoch(t *testing.T) {
	dir := t.TempDir()
	opts := manualOpts()
	opts.SegmentBytes = 512 // force frequent rotation
	p, _, err := Open(dir, opts, registerTestIndexes)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	live := New()
	registerTestIndexes(live)
	rl, rd := xrand.New(11), xrand.New(11)
	var pop []ids.ID
	for step := 1; step <= 24; step++ {
		pop = growBoth(t, live, p.Store, rl, rd, pop, step)
		if step%9 == 0 {
			if err := p.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.Sync(); err != nil {
			t.Fatal(err)
		}
		crash := filepath.Join(t.TempDir(), "crash")
		copyDir(t, dir, crash)
		re, info := reopen(t, crash, manualOpts())
		if info.Clock != live.LastCommit() {
			t.Fatalf("step %d: recovered clock %d, live %d (%+v)", step, info.Clock, live.LastCommit(), info)
		}
		assertStoresEqual(t, live, re.Store, pop)
		re.Close()
	}
	if st := p.Stats(); st.WALRotations == 0 || st.Checkpoints == 0 {
		t.Fatalf("sweep never rotated or checkpointed: %+v", st)
	}
}

// TestCrashBetweenRotationAndCheckpoint injects a kill on the exact
// boundary the checkpointer is most exposed on: the active segment was
// just sealed and a fresh one opened, but the checkpoint itself never
// became durable. Recovery must fall back to the previous durable state
// and replay across the rotation boundary without losing a commit.
func TestCrashBetweenRotationAndCheckpoint(t *testing.T) {
	for _, withPrior := range []bool{false, true} {
		dir := t.TempDir()
		p, _, err := Open(dir, manualOpts(), registerTestIndexes)
		if err != nil {
			t.Fatal(err)
		}
		live := New()
		registerTestIndexes(live)
		rl, rd := xrand.New(5), xrand.New(5)
		var pop []ids.ID
		for step := 1; step <= 8; step++ {
			pop = growBoth(t, live, p.Store, rl, rd, pop, step)
		}
		if withPrior {
			if err := p.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			for step := 9; step <= 12; step++ {
				pop = growBoth(t, live, p.Store, rl, rd, pop, step)
			}
		}
		crash := filepath.Join(t.TempDir(), "crash")
		p.hookAfterRotate = func() {
			if err := p.Store.FlushWAL(); err != nil { // rotation already fsynced sealed segments
				t.Fatal(err)
			}
			copyDir(t, dir, crash)
		}
		if err := p.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		p.Close()

		re, info := reopen(t, crash, manualOpts())
		if withPrior && info.CheckpointTS == 0 {
			t.Fatalf("prior checkpoint not used: %+v", info)
		}
		if info.Clock != live.LastCommit() {
			t.Fatalf("withPrior=%v: recovered clock %d, live %d (%+v)", withPrior, info.Clock, live.LastCommit(), info)
		}
		assertStoresEqual(t, live, re.Store, pop)
	}
}

// TestCrashBeforeCheckpointRename kills between the checkpoint temp-file
// fsync and the rename: the crash image holds a complete but unpublished
// checkpoint. Recovery must ignore the temp file.
func TestCrashBeforeCheckpointRename(t *testing.T) {
	dir := t.TempDir()
	p, _, err := Open(dir, manualOpts(), registerTestIndexes)
	if err != nil {
		t.Fatal(err)
	}
	live := New()
	registerTestIndexes(live)
	rl, rd := xrand.New(6), xrand.New(6)
	var pop []ids.ID
	for step := 1; step <= 10; step++ {
		pop = growBoth(t, live, p.Store, rl, rd, pop, step)
	}
	crash := filepath.Join(t.TempDir(), "crash")
	p.hookBeforeRename = func() { copyDir(t, dir, crash) }
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	p.Close()

	re, info := reopen(t, crash, manualOpts())
	if info.CheckpointTS != 0 {
		t.Fatalf("unpublished checkpoint was loaded: %+v", info)
	}
	if info.Clock != live.LastCommit() {
		t.Fatalf("recovered clock %d, live %d", info.Clock, live.LastCommit())
	}
	assertStoresEqual(t, live, re.Store, pop)
	// The reopened image must not litter: the stale temp is removed.
	ents, _ := os.ReadDir(crash)
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ckptTmpSuffix) {
			t.Fatalf("stale checkpoint temp survived reopen: %s", e.Name())
		}
	}
}

// lastSegment returns the path of the highest-numbered WAL segment.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := scanSegments(filepath.Join(dir, "wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s: %v", dir, err)
	}
	return segs[len(segs)-1].path
}

// countRecords counts the complete records in one segment file.
func countRecords(t *testing.T, path string) int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Seek(segHeaderSize, 0); err != nil {
		t.Fatal(err)
	}
	n, _, err := scanRecords(bufio.NewReader(f), func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestTornRecordAtSegmentBoundary simulates a crash while appending the
// record whose arrival forced a rotation: the record opens a fresh final
// segment and is torn mid-write. Recovery must apply every record of the
// sealed segments, discard the torn tail cleanly, and keep the store
// appendable.
func TestTornRecordAtSegmentBoundary(t *testing.T) {
	dir := t.TempDir()
	opts := manualOpts()
	opts.SegmentBytes = 256 // every record of this workload forces a rotation
	p, _, err := Open(dir, opts, registerTestIndexes)
	if err != nil {
		t.Fatal(err)
	}
	live := New()
	registerTestIndexes(live)
	rl, rd := xrand.New(9), xrand.New(9)
	var pop []ids.ID
	for step := 1; step <= 6; step++ {
		pop = growBoth(t, live, p.Store, rl, rd, pop, step)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final segment's first record a few bytes in: the record
	// "spans" the rotation boundary in the sense that its arrival sealed
	// the previous segment, and the crash hit before it became complete.
	last := lastSegment(t, dir)
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() <= segHeaderSize {
		t.Fatalf("final segment empty; rotation threshold too large for the workload")
	}
	lost := countRecords(t, last)
	if lost == 0 {
		t.Fatal("final segment holds no records to tear")
	}
	if err := os.Truncate(last, segHeaderSize+5); err != nil {
		t.Fatal(err)
	}

	re, rec := reopen(t, dir, manualOpts())
	if rec.TornBytes == 0 {
		t.Fatalf("torn tail not detected: %+v", rec)
	}
	if rec.Clock != live.LastCommit()-int64(lost) {
		t.Fatalf("recovered clock %d, want %d (the %d commits of the torn segment lost)",
			rec.Clock, live.LastCommit()-int64(lost), lost)
	}
	// The store accepts new commits and the re-appended log replays.
	tx := re.Begin()
	if err := tx.CreateNode(personID(9100), nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	clock := re.LastCommit()
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, rec2 := reopen(t, dir, manualOpts())
	if rec2.Clock != clock || !re2.CurrentView().Exists(personID(9100)) {
		t.Fatalf("re-appended log did not recover: %+v", rec2)
	}
}

// TestGarbageTailInLastSegment: in flush-on-close mode a power loss can
// leave the unsynced tail of the ACTIVE segment zero-filled or garbage
// (filesystem delayed allocation), not just shorter. Recovery must treat
// any undecodable suffix of the last segment like a torn tail — truncate
// at the last valid record and keep the store openable — for both the
// all-zeros shape (which decodes as a len=0 crc=0 record) and random
// garbage (CRC mismatch).
func TestGarbageTailInLastSegment(t *testing.T) {
	for _, shape := range []string{"zeros", "garbage"} {
		dir := t.TempDir()
		p, _, err := Open(dir, manualOpts(), registerTestIndexes)
		if err != nil {
			t.Fatal(err)
		}
		live := New()
		registerTestIndexes(live)
		rl, rd := xrand.New(37), xrand.New(37)
		var pop []ids.ID
		for step := 1; step <= 6; step++ {
			pop = growBoth(t, live, p.Store, rl, rd, pop, step)
		}
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
		tail := make([]byte, 512)
		if shape == "garbage" {
			for i := range tail {
				tail[i] = byte(i*131 + 7)
			}
		}
		last := lastSegment(t, dir)
		f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(tail); err != nil {
			t.Fatal(err)
		}
		f.Close()

		re, info := reopen(t, dir, manualOpts())
		if info.TornBytes != int64(len(tail)) {
			t.Fatalf("%s: torn bytes %d, want %d (%+v)", shape, info.TornBytes, len(tail), info)
		}
		if info.Clock != live.LastCommit() {
			t.Fatalf("%s: recovered clock %d, live %d", shape, info.Clock, live.LastCommit())
		}
		assertStoresEqual(t, live, re.Store, pop)
		// The truncated segment accepts appends and survives another cycle.
		tx := re.Begin()
		if err := tx.CreateNode(personID(9200), nil); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
		re2, info2 := reopen(t, dir, manualOpts())
		if info2.Clock != live.LastCommit()+1 || !re2.CurrentView().Exists(personID(9200)) {
			t.Fatalf("%s: post-truncation commit lost: %+v", shape, info2)
		}
	}
}

// TestCorruptMidChainSegment plants a torn suffix inside a sealed (non
// final) segment — a record that appears to continue into the next segment.
// The writer never spans records across segments, so recovery must refuse
// to replay past the hole and must name the bad segment.
func TestCorruptMidChainSegment(t *testing.T) {
	dir := t.TempDir()
	opts := manualOpts()
	opts.SegmentBytes = 256
	p, _, err := Open(dir, opts, registerTestIndexes)
	if err != nil {
		t.Fatal(err)
	}
	rl := xrand.New(4)
	var pop []ids.ID
	for step := 1; step <= 6; step++ {
		pop = randomGraphStep(t, p.Store, rl, pop, step)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := scanSegments(filepath.Join(dir, "wal"))
	if err != nil || len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %d (%v)", len(segs), err)
	}
	victim := segs[1]
	// Append half a record header: a torn record "spanning" into segment 2.
	f, err := os.OpenFile(victim.path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xAA, 0xBB, 0xCC}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, _, err = Open(dir, manualOpts(), registerTestIndexes)
	if err == nil {
		t.Fatal("recovery replayed past a mid-chain hole")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if !strings.Contains(err.Error(), filepath.Base(victim.path)) {
		t.Fatalf("error does not name the bad segment: %v", err)
	}
}

// TestCheckpointTruncatesSegments: after a checkpoint, sealed segments
// wholly covered by the oldest retained checkpoint are deleted; recovery
// afterwards skips whatever provably holds nothing above the checkpoint.
func TestCheckpointTruncatesSegments(t *testing.T) {
	dir := t.TempDir()
	opts := manualOpts()
	opts.SegmentBytes = 256
	opts.RetainCheckpoints = 1
	p, _, err := Open(dir, opts, registerTestIndexes)
	if err != nil {
		t.Fatal(err)
	}
	rl := xrand.New(8)
	var pop []ids.ID
	for step := 1; step <= 8; step++ {
		pop = randomGraphStep(t, p.Store, rl, pop, step)
	}
	// Drain the group-commit batcher so every record (and its rotations)
	// has reached the directory before counting segments.
	if err := p.Store.FlushWAL(); err != nil {
		t.Fatal(err)
	}
	before, _ := scanSegments(filepath.Join(dir, "wal"))
	if len(before) < 3 {
		t.Fatalf("want >=3 segments before checkpoint, got %d", len(before))
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after, _ := scanSegments(filepath.Join(dir, "wal"))
	if len(after) != 1 {
		t.Fatalf("want only the active segment after truncation, got %d", len(after))
	}
	if st := p.Stats(); st.SegmentsRemoved == 0 {
		t.Fatalf("stats did not count removed segments: %+v", st)
	}
	clock := p.LastCommit()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	_, info := reopen(t, dir, manualOpts())
	if info.Clock != clock || info.Replayed != 0 {
		t.Fatalf("checkpoint-only recovery expected: %+v", info)
	}
}

// TestBadCheckpointFallsBack corrupts the newest checkpoint: recovery must
// skip it (reporting it) and recover through the older retained checkpoint
// plus the longer WAL tail that truncation deliberately kept for it.
func TestBadCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	p, _, err := Open(dir, manualOpts(), registerTestIndexes)
	if err != nil {
		t.Fatal(err)
	}
	live := New()
	registerTestIndexes(live)
	rl, rd := xrand.New(13), xrand.New(13)
	var pop []ids.ID
	for step := 1; step <= 6; step++ {
		pop = growBoth(t, live, p.Store, rl, rd, pop, step)
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for step := 7; step <= 12; step++ {
		pop = growBoth(t, live, p.Store, rl, rd, pop, step)
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for step := 13; step <= 15; step++ {
		pop = growBoth(t, live, p.Store, rl, rd, pop, step)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	cks, err := scanCheckpoints(dir)
	if err != nil || len(cks) != 2 {
		t.Fatalf("want 2 retained checkpoints, got %d (%v)", len(cks), err)
	}
	data, err := os.ReadFile(cks[0].path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(cks[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	re, info := reopen(t, dir, manualOpts())
	if len(info.BadCheckpoints) != 1 || !strings.Contains(info.BadCheckpoints[0], ckptPrefix) {
		t.Fatalf("bad checkpoint not reported: %+v", info)
	}
	if info.CheckpointTS != cks[1].ts {
		t.Fatalf("fallback loaded ts %d, want older checkpoint %d", info.CheckpointTS, cks[1].ts)
	}
	if info.Clock != live.LastCommit() {
		t.Fatalf("recovered clock %d, live %d", info.Clock, live.LastCommit())
	}
	assertStoresEqual(t, live, re.Store, pop)
}

// TestSyncOnCommit pins the fsync-on-commit durability mode: every
// committed record is on disk before Commit returns, with no flush call.
// The buffered mode keeps records in the process until FlushWAL/Sync.
func TestSyncOnCommit(t *testing.T) {
	walSize := func(dir string) int64 {
		var total int64
		segs, _ := scanSegments(filepath.Join(dir, "wal"))
		for _, s := range segs {
			total += s.size - segHeaderSize
		}
		return total
	}
	commitOne := func(p *Persistent, n uint32) {
		tx := p.Begin()
		if err := tx.CreateNode(personID(n), Props{{PropFirstName, String("ada")}}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	dir := t.TempDir()
	opts := manualOpts()
	opts.SyncOnCommit = true
	p, _, err := Open(dir, opts, registerTestIndexes)
	if err != nil {
		t.Fatal(err)
	}
	commitOne(p, 1)
	if walSize(dir) == 0 {
		t.Fatal("fsync-on-commit left the record buffered in the process")
	}
	p.Close()

	dir2 := t.TempDir()
	p2, _, err := Open(dir2, manualOpts(), registerTestIndexes)
	if err != nil {
		t.Fatal(err)
	}
	commitOne(p2, 1)
	if walSize(dir2) != 0 {
		t.Fatal("buffered mode wrote through without a flush")
	}
	if err := p2.Sync(); err != nil {
		t.Fatal(err)
	}
	if walSize(dir2) == 0 {
		t.Fatal("Sync did not push the buffered record to disk")
	}
	p2.Close()
}

// TestBackgroundCheckpointer: the commit-count trigger fires the async
// checkpointer, which truncates the log so a reopen replays only the tail.
func TestBackgroundCheckpointer(t *testing.T) {
	dir := t.TempDir()
	opts := PersistOptions{CheckpointBytes: -1, CheckpointCommits: 10, SegmentBytes: 512}
	p, _, err := Open(dir, opts, registerTestIndexes)
	if err != nil {
		t.Fatal(err)
	}
	rl := xrand.New(17)
	var pop []ids.ID
	for step := 1; step <= 40; step++ {
		pop = randomGraphStep(t, p.Store, rl, pop, step)
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background checkpointer never fired: %+v (err %v)", p.Stats(), p.Err())
		}
		time.Sleep(time.Millisecond)
	}
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	clock := p.LastCommit()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	_, info := reopen(t, dir, manualOpts())
	if info.CheckpointTS == 0 || info.Clock != clock {
		t.Fatalf("background checkpoint not used at recovery: %+v", info)
	}
	if info.Replayed >= int(clock) {
		t.Fatalf("recovery replayed the whole log despite a checkpoint: %+v", info)
	}
}

// TestCheckpointConcurrentWithCommits races manual checkpoints against a
// commit burst (the no-stop-the-world property, exercised under -race via
// make race) and verifies a final recovery sees every commit.
func TestCheckpointConcurrentWithCommits(t *testing.T) {
	dir := t.TempDir()
	p, _, err := Open(dir, manualOpts(), registerTestIndexes)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			if err := p.Checkpoint(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	rl := xrand.New(23)
	var pop []ids.ID
	for step := 1; step <= 60; step++ {
		pop = randomGraphStep(t, p.Store, rl, pop, step)
	}
	<-done
	clock := p.LastCommit()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	re, info := reopen(t, dir, manualOpts())
	if info.Clock != clock {
		t.Fatalf("recovered clock %d, want %d (%+v)", info.Clock, clock, info)
	}
	re.View(func(tx *Txn) {
		for _, id := range pop {
			if !tx.Exists(id) {
				t.Fatalf("node %v lost across concurrent checkpointing", id)
			}
		}
	})
}

// TestCheckpointEmptyAndIdempotent: checkpointing an empty store is a
// no-op, and re-checkpointing without new commits writes nothing new.
func TestCheckpointEmptyAndIdempotent(t *testing.T) {
	dir := t.TempDir()
	p, _, err := Open(dir, manualOpts(), registerTestIndexes)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Checkpoints != 0 {
		t.Fatalf("empty checkpoint was written: %+v", st)
	}
	tx := p.Begin()
	tx.CreateNode(personID(1), nil)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Checkpoints != 1 {
		t.Fatalf("idempotent re-checkpoint wrote again: %+v", st)
	}
}

// TestOpenMissingSegmentPrefix: a checkpoint whose replay tail has been
// manually deleted must fail loudly, not open with silent data loss.
func TestOpenMissingSegmentPrefix(t *testing.T) {
	dir := t.TempDir()
	opts := manualOpts()
	opts.SegmentBytes = 256
	opts.KeepSegments = true
	p, _, err := Open(dir, opts, registerTestIndexes)
	if err != nil {
		t.Fatal(err)
	}
	rl := xrand.New(29)
	var pop []ids.ID
	for step := 1; step <= 4; step++ {
		pop = randomGraphStep(t, p.Store, rl, pop, step)
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for step := 5; step <= 8; step++ {
		pop = randomGraphStep(t, p.Store, rl, pop, step)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := scanSegments(filepath.Join(dir, "wal"))
	if len(segs) < 2 {
		t.Fatalf("want >=2 segments, got %d", len(segs))
	}
	// Delete a segment the checkpoint does NOT cover.
	if err := os.Remove(segs[len(segs)-2].path); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(dir, manualOpts(), registerTestIndexes)
	if err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing tail segment not detected: %v", err)
	}
}

// TestRecoverStreamStillWorks pins that the segmented subsystem did not
// change the plain io.Writer WAL contract (AttachWAL + Recover).
func TestRecoverStreamStillWorks(t *testing.T) {
	logBytes, orig := buildLogged(t)
	re := New()
	re.RegisterOrderedIndex(ids.KindPost, PropCreationDate)
	n, err := re.Recover(bytes.NewReader(logBytes))
	if err != nil {
		t.Fatal(err)
	}
	if int64(n) != orig.Commits() {
		t.Fatalf("replayed %d, want %d", n, orig.Commits())
	}
}
