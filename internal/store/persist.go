package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
)

// Durable store lifecycle: Open ties a Store to a data directory holding a
// segmented WAL (segment.go) and a set of checkpoints (checkpoint.go), and
// returns a Persistent handle that keeps the two coordinated — commits
// append redo records to the active segment, a background checkpointer
// periodically freezes a snapshot view to disk and truncates the covered
// log prefix, and a later Open recovers by loading the newest valid
// checkpoint and replaying only the WAL tail.
//
// Layout of a data directory:
//
//	<dir>/
//	  ckpt-<clock>.ckpt          checkpoints, newest wins (checkpoint.go)
//	  wal/wal-<seq>.seg          lane 0 WAL segments, ascending (segment.go)
//	  wal/wal-<lane>-<seq>.seg   lane >= 1 segments (WALLanes > 1)

// PersistOptions configures Open. The zero value is usable: 4 MiB
// segments, one WAL lane, flush-on-close durability, auto-checkpoint every
// 32 MiB of WAL, two checkpoints retained.
type PersistOptions struct {
	// SegmentBytes is the WAL rotation threshold: the active segment is
	// sealed once appending would push it past this size (default 4 MiB).
	SegmentBytes int64
	// WALLanes is the number of WAL lanes (default 1). Commits distribute
	// round-robin over lanes by commit timestamp, each lane flushed and
	// fsynced by its own goroutine, so durability barriers proceed in
	// parallel. Opening a directory written with more lanes than requested
	// keeps the on-disk count (lanes never vanish under an existing log);
	// single-lane directories are byte-for-byte the v1 layout.
	WALLanes int
	// WALSync selects the per-batch durability barrier (see WALSyncMode).
	WALSync WALSyncMode
	// SyncOnCommit is the pre-lane spelling of WALSync == SyncCommit, kept
	// as a compatibility alias: every commit is acknowledged only after
	// its redo record is fsynced. Without either, the durability contract
	// is flush-on-close — a machine crash may lose the records buffered
	// since the last SyncWAL/Close/checkpoint rotation (process death
	// alone loses at most the in-process buffers, which SyncWAL and Close
	// drain).
	SyncOnCommit bool
	// GroupCommitRecords caps how many records one group-commit batch may
	// coalesce (0 = unbounded: drain everything pending). Mostly a test
	// and ablation knob; the cap trades fsync amortisation for bounded
	// worst-case commit latency.
	GroupCommitRecords int
	// RecoveryWorkers is the segment-decode parallelism at Open: 0 uses
	// GOMAXPROCS, 1 forces serial decode (the apply stage is always a
	// single timestamp-ordered pass).
	RecoveryWorkers int
	// CheckpointBytes triggers a background checkpoint once this many WAL
	// bytes accumulate since the last one (0 = default 32 MiB, negative =
	// never trigger by bytes).
	CheckpointBytes int64
	// CheckpointCommits triggers a background checkpoint once this many
	// commits accumulate since the last one (0 = never trigger by count).
	CheckpointCommits int64
	// RetainCheckpoints is how many checkpoints to keep on disk (default
	// 2: the newest plus one fallback for torn-checkpoint crashes).
	RetainCheckpoints int
	// KeepSegments disables WAL truncation after checkpoints, retaining
	// the full log from the first commit (offline replay, ablations,
	// point-in-time inspection).
	KeepSegments bool
}

const defaultCheckpointBytes = 32 << 20

// RecoveryInfo reports what Open found and did.
type RecoveryInfo struct {
	// Fresh is true when the directory held no usable state (new database).
	Fresh bool
	// CheckpointTS is the commit clock of the checkpoint recovery loaded
	// (0 when recovery fell back to full WAL replay).
	CheckpointTS int64
	// BadCheckpoints lists checkpoint files skipped as invalid (CRC or
	// format failures); recovery fell back to the next older one.
	BadCheckpoints []string
	// SegmentsScanned and SegmentsSkipped count WAL segments replayed vs
	// proven wholly covered by the checkpoint from their headers alone.
	SegmentsScanned, SegmentsSkipped int
	// Replayed and Skipped count WAL records applied vs records below the
	// checkpoint clock inside the boundary segment.
	Replayed, Skipped int
	// TornBytes is the size of the incomplete records discarded from the
	// tails of each lane's last segment (crash mid-append).
	TornBytes int64
	// Discarded counts intact records dropped above a multi-lane crash
	// gap: a crash with lanes unevenly advanced leaves a hole in the
	// merged timestamp sequence, and everything above the hole is
	// un-acknowledged by construction (see recovery.go).
	Discarded int
	// Clock is the store's commit clock after recovery.
	Clock int64
}

// PersistStats is a point-in-time snapshot of a Persistent's durability
// counters.
type PersistStats struct {
	// Checkpoints is the number of checkpoints taken since Open;
	// LastCheckpointTS is the commit clock of the newest durable one
	// (including one recovered from disk).
	Checkpoints      int64
	LastCheckpointTS int64
	// WALBytes counts redo bytes appended since Open; WALRotations counts
	// segment seals; SegmentsRemoved counts segments truncated as covered.
	WALBytes        int64
	WALRotations    int64
	SegmentsRemoved int64
	// Group-commit batcher counters: Fsyncs is durability barriers issued,
	// Batches is flush batches written, BatchedRecords the records they
	// carried — fsyncs/commit and records/batch are the amortisation
	// metrics BenchmarkWrite tracks.
	Fsyncs         int64
	Batches        int64
	BatchedRecords int64
}

// Persistent is a Store bound to a data directory. All Store methods are
// available; the handle adds the durability surface (Checkpoint, Sync,
// Close, Stats). Close must be called to release the WAL cleanly — after
// Close the store stays readable but further commits fail.
type Persistent struct {
	*Store
	dir    string
	walDir string
	opts   PersistOptions

	// ckptMu serialises checkpoints (manual and background).
	ckptMu sync.Mutex

	lastCkptTS   atomic.Int64
	checkpoints  atomic.Int64
	walBytes     atomic.Int64
	bytesSince   atomic.Int64
	commitsSince atomic.Int64
	segsRemoved  atomic.Int64

	kick   chan struct{}
	stop   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	errMu   sync.Mutex
	ckptErr error

	// Crash-injection test hooks; see persist_test.go.
	hookAfterRotate  func()
	hookBeforeRename func()
}

// Open opens (or creates) a durable store in dir. register, when non-nil,
// runs on the fresh Store before any data is loaded — it must register the
// same secondary indexes the directory was written with (indexes are part
// of the checkpoint format; see loadCheckpoint). Recovery loads the newest
// valid checkpoint, falls back through older ones (and ultimately to full
// WAL replay) on validation failures, replays the WAL tail, truncates any
// torn record off the last segment, and reattaches the segmented WAL for
// new commits.
//
// The returned RecoveryInfo is valid even when err != nil is not returned;
// on error the store is unusable and no background work is running.
func Open(dir string, opts PersistOptions, register func(*Store)) (*Persistent, *RecoveryInfo, error) {
	walDir := filepath.Join(dir, "wal")
	if err := os.MkdirAll(walDir, 0o755); err != nil {
		return nil, nil, err
	}
	s := New()
	if register != nil {
		register(s)
	}
	info := &RecoveryInfo{}
	removeStaleTemps(dir)

	// Newest valid checkpoint, falling back through invalid ones. A
	// validation failure taints nothing — loadCheckpoint validates the
	// whole file (CRC) before installing anything.
	cks, err := scanCheckpoints(dir)
	if err != nil {
		return nil, info, err
	}
	for _, ck := range cks {
		clock, err := loadCheckpoint(s, ck.path)
		if err == nil {
			info.CheckpointTS = clock
			break
		}
		// Corruption and format-version mismatches both fall back to the
		// next older checkpoint (ultimately to full WAL replay — the WAL
		// format is version-stable, so v1-era logs replay under v2 builds).
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, errCkptVersion) {
			return nil, info, err // configuration error (indexes)
		}
		info.BadCheckpoints = append(info.BadCheckpoints, filepath.Base(ck.path))
	}

	// Replay the WAL tail above the checkpoint clock (parallel segment
	// decode, serial timestamp-ordered apply; recovery.go). The effective
	// lane count is the larger of the requested count and what the
	// directory already holds, so lanes never vanish under an existing log.
	segs, err := scanSegments(walDir)
	if err != nil {
		return nil, info, err
	}
	lanes := opts.WALLanes
	if lanes < 1 {
		lanes = 1
	}
	for _, sf := range segs {
		if sf.lane+1 > lanes {
			lanes = sf.lane + 1
		}
	}
	validLens, err := s.recoverSegments(segs, info.CheckpointTS, opts.RecoveryWorkers, lanes, info)
	if err != nil {
		return nil, info, err
	}
	info.Clock = s.clock.Load()
	info.Fresh = info.CheckpointTS == 0 && info.Clock == 0

	p := &Persistent{
		Store:  s,
		dir:    dir,
		walDir: walDir,
		opts:   opts,
		kick:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
	}
	if p.opts.CheckpointBytes == 0 {
		p.opts.CheckpointBytes = defaultCheckpointBytes
	}
	if p.opts.RetainCheckpoints <= 0 {
		p.opts.RetainCheckpoints = 2
	}
	p.lastCkptTS.Store(info.CheckpointTS)

	// One active segment per lane, then the group-commit batcher over them.
	laneSegs := make(map[int][]segmentFile)
	for _, sf := range segs {
		laneSegs[sf.lane] = append(laneSegs[sf.lane], sf)
	}
	wsegs := make([]*walSegments, lanes)
	for l := 0; l < lanes; l++ {
		wsegs[l], err = openActiveSegment(walDir, l, opts.SegmentBytes, laneSegs[l], validLens[l], s.clock.Load()+1)
		if err != nil {
			return nil, info, err
		}
	}
	mode := opts.WALSync
	if opts.SyncOnCommit && mode == SyncClose {
		mode = SyncCommit
	}
	s.gwal = newGroupWAL(mode, wsegs, opts.GroupCommitRecords, s.clock.Load(), p.onAppend)

	p.wg.Add(1)
	go p.checkpointLoop()
	return p, info, nil
}

// removeStaleTemps deletes checkpoint temp files left by a crash between
// temp write and rename. Best-effort: a leftover temp is never read by
// recovery (scanCheckpoints ignores it), only disk litter.
func removeStaleTemps(dir string) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ckptPrefix) && strings.HasSuffix(e.Name(), ckptTmpSuffix) {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// onAppend is the WAL append hook: account the record and wake the
// background checkpointer when a trigger threshold is crossed. Runs on the
// lane flusher goroutines — cheap atomics and a non-blocking send only.
func (p *Persistent) onAppend(n int) {
	p.walBytes.Add(int64(n))
	b := p.bytesSince.Add(int64(n))
	c := p.commitsSince.Add(1)
	if (p.opts.CheckpointBytes > 0 && b >= p.opts.CheckpointBytes) ||
		(p.opts.CheckpointCommits > 0 && c >= p.opts.CheckpointCommits) {
		select {
		case p.kick <- struct{}{}:
		default:
		}
	}
}

// checkpointLoop is the background checkpointer: it waits for trigger
// kicks from the append hook and re-checks the thresholds before paying
// for a checkpoint (the kick channel is lossy by design — one pending kick
// is enough, and a checkpoint resets the counters).
func (p *Persistent) checkpointLoop() {
	defer p.wg.Done()
	for {
		select {
		case <-p.stop:
			return
		case <-p.kick:
			if (p.opts.CheckpointBytes > 0 && p.bytesSince.Load() >= p.opts.CheckpointBytes) ||
				(p.opts.CheckpointCommits > 0 && p.commitsSince.Load() >= p.opts.CheckpointCommits) {
				if err := p.Checkpoint(); err != nil {
					p.errMu.Lock()
					p.ckptErr = err
					p.errMu.Unlock()
				}
			}
		}
	}
}

// Checkpoint takes a durable checkpoint now and truncates the covered WAL
// prefix. The sequence — rotate the active segment, freeze the current
// snapshot view, serialise it to a temp file, fsync, rename, then delete
// covered segments and stale checkpoints — is crash-consistent at every
// step: a kill between any two leaves either the new checkpoint or a
// recoverable older state, never a hole (persist_test.go injects crashes
// at each boundary).
//
// The write path never stops: the checkpoint serialises an immutable
// SnapshotView while commits continue appending to the fresh active
// segment. Returns nil without writing when nothing committed since the
// last checkpoint.
func (p *Persistent) Checkpoint() error {
	p.ckptMu.Lock()
	defer p.ckptMu.Unlock()

	// Seal the log so everything at or below the view's clock lives in
	// sealed segments; records landing after this instant go to the new
	// active segment and stay as the replay tail.
	if err := p.Store.rotateWAL(); err != nil {
		return err
	}
	if p.hookAfterRotate != nil {
		p.hookAfterRotate()
	}
	v := p.Store.CurrentView()
	ts := v.Timestamp()
	if ts <= p.lastCkptTS.Load() {
		p.bytesSince.Store(0)
		p.commitsSince.Store(0)
		return nil
	}
	if _, err := writeCheckpoint(p.dir, v, p.Store, p.hookBeforeRename); err != nil {
		return err
	}
	p.lastCkptTS.Store(ts)
	p.checkpoints.Add(1)
	p.bytesSince.Store(0)
	p.commitsSince.Store(0)

	if err := pruneCheckpoints(p.dir, p.opts.RetainCheckpoints); err != nil {
		return err
	}
	if !p.opts.KeepSegments {
		// Truncate to the OLDEST retained checkpoint, not the one just
		// written: if the newest file is later found torn or bit-rotted,
		// recovery falls back to an older checkpoint and still needs every
		// record above THAT one. (With RetainCheckpoints=1 the two
		// coincide; if every retained checkpoint validates bad at recovery,
		// Open reports the missing prefix explicitly rather than silently
		// replaying a hole.)
		cks, err := scanCheckpoints(p.dir)
		if err != nil {
			return err
		}
		truncTS := ts
		if len(cks) > 0 {
			truncTS = cks[len(cks)-1].ts // scanCheckpoints sorts newest-first
		}
		n, err := removeCoveredSegments(p.walDir, truncTS)
		p.segsRemoved.Add(int64(n))
		if err != nil {
			return err
		}
	}
	return nil
}

// CheckpointTS returns the commit clock of the newest durable checkpoint
// (0 when none exists yet). It is also the always-safe GC horizon from the
// durability side: recovery never replays below it, so Store.GC at or
// below this timestamp can never reclaim state a restart still needs. The
// caller must still lower the horizon to cover its own live snapshots
// (Txn.Snapshot, retained ViewAt timestamps) per the GC contract.
func (p *Persistent) CheckpointTS() int64 { return p.lastCkptTS.Load() }

// Sync flushes and fsyncs the WAL: every commit that completed before the
// call is durable when Sync returns.
func (p *Persistent) Sync() error { return p.Store.SyncWAL() }

// Err returns the most recent background checkpoint failure, if any.
func (p *Persistent) Err() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.ckptErr
}

// Stats snapshots the durability counters.
func (p *Persistent) Stats() PersistStats {
	st := PersistStats{
		Checkpoints:      p.checkpoints.Load(),
		LastCheckpointTS: p.lastCkptTS.Load(),
		WALBytes:         p.walBytes.Load(),
		SegmentsRemoved:  p.segsRemoved.Load(),
	}
	if gw := p.Store.gwal; gw != nil {
		st.WALRotations = gw.rotationCount()
		st.Fsyncs = gw.fsyncs.Load()
		st.Batches = gw.batches.Load()
		st.BatchedRecords = gw.batched.Load()
	}
	return st
}

// Close stops the background checkpointer, drains and fsyncs every WAL
// lane and closes the active segments: a clean shutdown, after which Open
// recovers every committed transaction. Close does not checkpoint — call
// Checkpoint first when the next Open should skip tail replay. Idempotent.
func (p *Persistent) Close() error {
	if !p.closed.CompareAndSwap(false, true) {
		return nil
	}
	// Fence the commit path first: MarkClosed waits for in-flight critical
	// sections (their lane deposits land before the drain below) and makes
	// every later Commit fail with ErrStoreClosed instead of racing the
	// closing lanes.
	p.Store.MarkClosed()
	close(p.stop)
	p.wg.Wait()
	if gw := p.Store.gwal; gw != nil {
		return gw.close()
	}
	return nil
}
