package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"

	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/intern"
	"ldbcsnb/internal/xrand"
)

// Checkpoint v2 format tests: the string dictionary (stored once, indexed
// by dense file-local indexes, independent of process symbol assignment)
// and the version-refusal fallback that keeps v1-era directories openable
// through full WAL replay.

// TestCheckpointDictionaryRoundTrip writes a store whose nodes share one
// highly repeated string value plus per-node unique ones, and pins the two
// dictionary properties: the file stores each distinct string exactly once
// (byte-searchable, since dictionary strings are written verbatim), and a
// restore — even after the process interner's symbol assignment has been
// shifted by unrelated interning — resolves every property back to the
// right string.
func TestCheckpointDictionaryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p, _, err := Open(dir, manualOpts(), registerTestIndexes)
	if err != nil {
		t.Fatal(err)
	}
	const shared = "zz-dict-shared-marker-zz"
	const nPersons = 50
	for i := 1; i <= nPersons; i++ {
		tx := p.Begin()
		// Unindexed prop keys only: hash-index keys are serialised verbatim
		// in the index section, which would legitimately repeat the string.
		if err := tx.CreateNode(personID(uint32(i)), Props{
			{PropBrowserUsed, String(shared)},
			{PropLastName, String(fmt.Sprintf("zz-dict-unique-%03d", i))},
			{PropLength, Int64(int64(1000 + i))},
		}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	cks, err := scanCheckpoints(dir)
	if err != nil || len(cks) == 0 {
		t.Fatalf("no checkpoint written: %v", err)
	}
	data, err := os.ReadFile(cks[0].path)
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(data, []byte(shared)); n != 1 {
		t.Fatalf("shared string appears %d times in the checkpoint, want exactly 1 (dictionary)", n)
	}
	for i := 1; i <= nPersons; i++ {
		if n := bytes.Count(data, []byte(fmt.Sprintf("zz-dict-unique-%03d", i))); n != 1 {
			t.Fatalf("unique string %d appears %d times, want 1", i, n)
		}
	}

	// Shift the process interner's symbol space: a restore must map the
	// file's dense dictionary indexes through re-interning, never reuse the
	// writing run's symbols.
	for i := 0; i < 1000; i++ {
		intern.Intern(fmt.Sprintf("zz-dict-filler-%04d", i))
	}

	re, info := reopen(t, dir, manualOpts())
	if info.CheckpointTS == 0 {
		t.Fatalf("recovery did not load the checkpoint: %+v", info)
	}
	v := re.CurrentView()
	for i := 1; i <= nPersons; i++ {
		id := personID(uint32(i))
		if got := v.Prop(id, PropBrowserUsed).Str(); got != shared {
			t.Fatalf("person %d: BrowserUsed = %q, want %q", i, got, shared)
		}
		if got, want := v.Prop(id, PropLastName).Str(), fmt.Sprintf("zz-dict-unique-%03d", i); got != want {
			t.Fatalf("person %d: LastName = %q, want %q", i, got, want)
		}
		if got := v.Prop(id, PropLength).Int(); got != int64(1000+i) {
			t.Fatalf("person %d: Length = %d", i, got)
		}
		// Same process, same string -> the restored Value must compare equal
		// to a freshly built one (symbol identity, the equivalence-suite
		// contract).
		if v.Prop(id, PropBrowserUsed) != String(shared) {
			t.Fatalf("person %d: restored Value not symbol-identical to String(%q)", i, shared)
		}
	}
}

// TestCheckpointV1VersionFallsBack simulates opening a directory whose
// newest checkpoint was written by the previous format version: the loader
// must refuse it as errCkptVersion (not corruption), report it, and recover
// the full state from WAL replay alone — the WAL format is version-stable.
func TestCheckpointV1VersionFallsBack(t *testing.T) {
	dir := t.TempDir()
	opts := manualOpts()
	opts.KeepSegments = true // a v1-era log must stay fully replayable
	p, _, err := Open(dir, opts, registerTestIndexes)
	if err != nil {
		t.Fatal(err)
	}
	live := New()
	registerTestIndexes(live)
	rl, rd := xrand.New(21), xrand.New(21)
	var pop []ids.ID
	for step := 1; step <= 8; step++ {
		pop = growBoth(t, live, p.Store, rl, rd, pop, step)
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for step := 9; step <= 12; step++ {
		pop = growBoth(t, live, p.Store, rl, rd, pop, step)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Rewrite the checkpoint's version field to 1. The CRC is left stale
	// too, but version is validated first and must win the error report.
	cks, err := scanCheckpoints(dir)
	if err != nil || len(cks) != 1 {
		t.Fatalf("want 1 checkpoint, got %d (%v)", len(cks), err)
	}
	data, err := os.ReadFile(cks[0].path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint16(data[4:6], 1)
	if err := os.WriteFile(cks[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s := New()
	registerTestIndexes(s)
	if _, err := loadCheckpoint(s, cks[0].path); !errors.Is(err, errCkptVersion) {
		t.Fatalf("version-1 file: err = %v, want errCkptVersion", err)
	} else if errors.Is(err, ErrCorrupt) {
		t.Fatalf("version refusal reported as corruption: %v", err)
	}

	re, info := reopen(t, dir, opts)
	if len(info.BadCheckpoints) != 1 || !strings.Contains(info.BadCheckpoints[0], ckptPrefix) {
		t.Fatalf("refused checkpoint not reported: %+v", info)
	}
	if info.CheckpointTS != 0 {
		t.Fatalf("recovery claims a checkpoint at %d, want full replay", info.CheckpointTS)
	}
	if info.Replayed != int(live.LastCommit()) {
		t.Fatalf("replayed %d records, live clock %d", info.Replayed, live.LastCommit())
	}
	assertStoresEqual(t, live, re.Store, pop)
}
