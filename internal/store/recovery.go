package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"ldbcsnb/internal/ids"
)

// Parallel WAL recovery. Segment headers carry firstTS, so the tail above
// a checkpoint partitions into independent decode units for free: worker
// goroutines claim segments from an atomic cursor and decode each one into
// a per-worker arena of decodedTxns (CPU-bound: CRC, varint/prop decode,
// string materialisation), then a single serial pass merges the per-lane
// streams by commit timestamp and applies them through the lean replay
// path — the same installs, kind-list and index maintenance as Commit,
// minus validation (the log was validated when written), WAL re-append and
// delta recording (no cached view exists during recovery, so the first
// CurrentView does a full rebuild regardless).
//
// Multi-lane crash semantics. A crash can leave lanes unevenly advanced:
// lane A's batch fsynced, lane B's still buffered. The merged timestamp
// sequence then shows a gap — some ts missing while later ones survive in
// other lanes. Every record above a gap is un-acknowledged in every
// durability mode (the watermark only acknowledges a commit once all
// earlier commits are durable on every lane), so recovery discards the
// records above the first gap and truncates them off their files. A gap
// whose missing timestamp maps to a lane that still holds LATER records is
// different: per-lane timestamps are monotone and torn writes only eat
// suffixes, so the missing record cannot have been lost to the crash —
// that is corruption (a deleted or bit-rotted segment), reported with the
// segment name instead of silently truncated. The single-lane layout makes
// every gap this second kind, preserving v1 strictness.

// errLogGap marks a record whose commit timestamp does not extend the
// recovered sequence where the lane structure proves the hole cannot be a
// crash artifact: a missing segment or out-of-order log.
var errLogGap = errors.New("log sequence gap")

// decodedTxn is one redo record decoded back into the exact shape Commit
// serialised — the input of the lean replay path.
type decodedTxn struct {
	ts      int64
	created []*pendingNode
	sets    []pendingProp
	edges   []pendingEdge
	dels    []pendingDel

	// Provenance for gap classification and discard truncation.
	segPath string
	lane    int
	off     int64 // record's byte offset in its segment file
}

// segDecode is one segment's decode result.
type segDecode struct {
	txns     []*decodedTxn
	skipped  int   // records at or below the checkpoint clock
	cleanLen int64 // header + every valid record (truncation point)
}

// recoverSegments decodes the records of segs (ordered by lane, seq) whose
// commit timestamps exceed ckptTS — in parallel across workers — and
// applies them in merged timestamp order. lanes is the effective lane
// count (for gap classification); workers <= 0 means GOMAXPROCS. It
// returns each lane's valid byte length of its final segment, keyed by
// lane (the truncation point for reopening).
func (s *Store) recoverSegments(segs []segmentFile, ckptTS int64, workers, lanes int, info *RecoveryInfo) (map[int]int64, error) {
	validLens := make(map[int]int64)
	if len(segs) == 0 {
		return validLens, nil
	}

	// Classify each lane's chain: headerless files are rotation crash
	// remnants only as a lane's final segment (openActiveSegment recreates
	// them); sealed segments wholly covered by the checkpoint are provable
	// from the next header alone and skipped without a scan.
	type decodeJob struct {
		sf       segmentFile
		laneLast bool
	}
	var jobs []decodeJob
	for _, run := range segmentLanes(segs) {
		for i, sf := range run {
			last := i == len(run)-1
			if sf.firstTS < 0 {
				if last {
					validLens[sf.lane] = segHeaderSize
					continue
				}
				if _, err := readSegHeader(sf.path); err != nil {
					return nil, err
				}
			}
			if !last && run[i+1].firstTS >= 0 && run[i+1].firstTS <= ckptTS+1 {
				info.SegmentsSkipped++
				continue
			}
			info.SegmentsScanned++
			jobs = append(jobs, decodeJob{sf: sf, laneLast: last})
		}
	}

	// Parallel decode: workers claim segments from an atomic cursor.
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]segDecode, len(jobs))
	errs := make([]error, len(jobs))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				results[i], errs[i] = decodeSegment(jobs[i].sf, ckptTS, jobs[i].laneLast)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	laneLastPath := make(map[string]int) // lane-last segment path -> lane
	var all []*decodedTxn
	for i, res := range results {
		info.Skipped += res.skipped
		all = append(all, res.txns...)
		if jobs[i].laneLast {
			validLens[jobs[i].sf.lane] = res.cleanLen
			laneLastPath[jobs[i].sf.path] = jobs[i].sf.lane
			info.TornBytes += jobs[i].sf.size - res.cleanLen
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ts < all[j].ts })

	// Merge-apply in timestamp order, verifying the sequence extends the
	// checkpoint clock one commit at a time.
	next := ckptTS + 1
	cut := -1
	for i, dtx := range all {
		if dtx.ts < next {
			return nil, fmt.Errorf("%w: %w: segment %s: record carries commit %d, expected %d",
				ErrCorrupt, errLogGap, filepath.Base(dtx.segPath), dtx.ts, next)
		}
		if dtx.ts > next {
			g := laneFor(next, lanes)
			for _, later := range all[i:] {
				if later.lane == g {
					return nil, fmt.Errorf("%w: %w: segment %s: record carries commit %d, expected %d (lane %d lost no suffix, so the hole is not a crash artifact)",
						ErrCorrupt, errLogGap, filepath.Base(later.segPath), later.ts, next, g)
				}
			}
			cut = i
			break
		}
		if err := s.applyDecoded(dtx); err != nil {
			return nil, fmt.Errorf("segment %s: %w", filepath.Base(dtx.segPath), err)
		}
		info.Replayed++
		next++
	}

	// Discard the un-acknowledged suffix above a crash gap: truncate each
	// touched file at its first discarded record. Lane-final segments
	// truncate via the validLen returned to openActiveSegment; sealed ones
	// are cut here, durably.
	if cut >= 0 {
		info.Discarded = len(all) - cut
		cuts := make(map[string]int64)
		for _, d := range all[cut:] {
			if cur, ok := cuts[d.segPath]; !ok || d.off < cur {
				cuts[d.segPath] = d.off
			}
		}
		for path, off := range cuts {
			if lane, ok := laneLastPath[path]; ok {
				if off < validLens[lane] {
					validLens[lane] = off
				}
				continue
			}
			if err := truncateSegment(path, off); err != nil {
				return nil, err
			}
		}
	}
	return validLens, nil
}

// truncateSegment durably cuts a sealed segment at off (discarding
// un-acknowledged records above a multi-lane crash gap).
func truncateSegment(path string, off int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if err := f.Truncate(off); err != nil {
		return errors.Join(err, f.Close())
	}
	if err := f.Sync(); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}

// decodeSegment reads one segment and decodes its records above ckptTS
// into decodedTxns (records at or below it are counted and skipped —
// their timestamp is the payload's first field, so skipping costs no prop
// decode). laneLast marks a lane's final segment, whose tail is allowed to
// be torn: a power loss can leave the unsynced tail short, zero-filled or
// garbage, so any undecodable suffix of the LAST segment ends the scan
// cleanly at the last valid record. Anywhere else an undecodable byte is
// corruption (rotation fsyncs a segment before its successor exists).
func decodeSegment(sf segmentFile, ckptTS int64, laneLast bool) (segDecode, error) {
	res := segDecode{cleanLen: segHeaderSize}
	data, err := os.ReadFile(sf.path)
	if err != nil {
		return res, err
	}
	base := filepath.Base(sf.path)
	midChain := func(n int, err error) error {
		return fmt.Errorf("segment %s: record %d: %w", base, n, err)
	}
	d := &walDecoder{b: data}
	off := int64(segHeaderSize)
	n := 0
	for off < int64(len(data)) {
		if off+8 > int64(len(data)) {
			break // torn header
		}
		length := int64(binary.LittleEndian.Uint32(data[off:]))
		want := binary.LittleEndian.Uint32(data[off+4:])
		if length > 1<<30 {
			if laneLast {
				break
			}
			return res, midChain(n+1, fmt.Errorf("%w: implausible record length %d", ErrCorrupt, length))
		}
		end := off + 8 + length
		if end > int64(len(data)) {
			break // torn payload; mid-chain tears surface below as trailing bytes
		}
		payload := data[off+8 : end]
		if crc32.ChecksumIEEE(payload) != want || length < 8 {
			if laneLast {
				break
			}
			return res, midChain(n+1, ErrCorrupt)
		}
		ts := int64(binary.LittleEndian.Uint64(payload[:8]))
		if ts <= ckptTS {
			res.skipped++
		} else {
			dtx, derr := decodeTxnPayload(d, off+8, end)
			if derr != nil {
				if laneLast {
					break
				}
				return res, midChain(n+1, derr)
			}
			dtx.ts = ts
			dtx.segPath = sf.path
			dtx.lane = sf.lane
			dtx.off = off
			res.txns = append(res.txns, dtx)
		}
		n++
		off = end
		res.cleanLen = off
	}
	if !laneLast && res.cleanLen != int64(len(data)) {
		return res, fmt.Errorf("%w: segment %s: %d undecodable trailing bytes mid-log (records resume in a later segment)",
			ErrCorrupt, base, int64(len(data))-res.cleanLen)
	}
	return res, nil
}

// decodeTxnPayload decodes the ops of one record's payload — d.b[start:end],
// timestamp already consumed by the caller — sharing d's string arena
// across the whole segment.
func decodeTxnPayload(d *walDecoder, start, end int64) (*decodedTxn, error) {
	d.pos = int(start)
	d.err = nil
	dtx := &decodedTxn{}
	_ = d.u64() // commit timestamp (caller read it)
	n := int(d.u32())
	for i := 0; i < n && d.err == nil; i++ {
		switch d.u8() {
		case 1:
			id := ids.ID(d.u64())
			np := int(d.u16())
			props := make(Props, 0, np)
			for j := 0; j < np; j++ {
				props = append(props, d.prop())
			}
			dtx.created = append(dtx.created, &pendingNode{id: id, props: props})
		case 2:
			id := ids.ID(d.u64())
			p := d.prop()
			dtx.sets = append(dtx.sets, pendingProp{id: id, key: p.Key, val: p.Val})
		case 3:
			from := ids.ID(d.u64())
			t := EdgeType(d.u8())
			to := ids.ID(d.u64())
			stamp := int64(d.u64())
			sym := d.u8() == 1
			dtx.edges = append(dtx.edges, pendingEdge{from: from, to: to, t: t, stamp: stamp, sym: sym})
		case 4:
			from := ids.ID(d.u64())
			t := EdgeType(d.u8())
			to := ids.ID(d.u64())
			dtx.dels = append(dtx.dels, pendingDel{from: from, to: to, t: t})
		default:
			return nil, fmt.Errorf("%w: unknown op kind", ErrCorrupt)
		}
	}
	if d.err != nil || d.pos > int(end) {
		return nil, fmt.Errorf("%w: truncated ops", ErrCorrupt)
	}
	return dtx, nil
}

// applyDecoded installs one decoded redo record through the lean replay
// path: the same shard installs, kind-list appends, adjacency writes and
// secondary-index maintenance as Commit's critical section, minus
// validation, WAL append and delta recording. Runs serially in timestamp
// order on a store no reader observes yet.
func (s *Store) applyDecoded(dtx *decodedTxn) error {
	ts := dtx.ts
	// Created nodes were serialised in sorted ID order by Commit, so the
	// per-kind scan lists rebuild identically.
	for _, n := range dtx.created {
		sh := s.shardFor(n.id)
		sh.mu.Lock()
		sh.nodes[n.id] = &nodeRec{id: n.id, versions: []nodeVersion{{commit: ts, props: n.props}}}
		sh.mu.Unlock()
	}
	if len(dtx.created) > 0 {
		s.kindMu.Lock()
		for _, n := range dtx.created {
			s.byKind[n.id.Kind()] = append(s.byKind[n.id.Kind()], n.id)
		}
		s.kindMu.Unlock()
	}
	for _, set := range dtx.sets {
		sh := s.shardFor(set.id)
		sh.mu.Lock()
		rec := sh.nodes[set.id]
		if rec == nil {
			sh.mu.Unlock()
			return fmt.Errorf("%w: set-prop on unknown node %v", ErrCorrupt, set.id)
		}
		last := rec.versions[len(rec.versions)-1]
		next := last.props.with(set.key, set.val)
		rec.versions = append(rec.versions, nodeVersion{commit: ts, props: next})
		sh.mu.Unlock()
	}
	for _, pe := range dtx.edges {
		s.installEdge(nil, pe.from, pe.t, pe.to, pe.stamp, ts, false)
		if pe.sym {
			s.installEdge(nil, pe.to, pe.t, pe.from, pe.stamp, ts, false)
		} else {
			s.installEdge(nil, pe.to, pe.t, pe.from, pe.stamp, ts, true)
		}
	}
	for _, pd := range dtx.dels {
		s.applyDelete(nil, pd, ts)
	}
	s.indexNewNodes(dtx.created)
	s.clock.Store(ts)
	s.commits.Add(1)
	return nil
}
