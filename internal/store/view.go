package store

import (
	"sort"

	"ldbcsnb/internal/ids"
)

// SnapshotView is a frozen, read-optimised image of the store at one commit
// timestamp. Its bulk lives in a per-era viewBase: every shard's visible
// adjacency compacted into varint/delta-coded CSR rows in one shared byte
// slab (codec.go), and the visible node properties packed into one dense
// property slab indexed by compact node ordinals. The compact layout is
// what lets thousand-person scale factors stay resident: a stored
// direction-entry costs a few bytes instead of the 16-byte Edge struct of
// the PR 1 layout, and property lists are fixed-width rows (interned string
// symbols, internal/intern) in a single allocation.
//
// A view is immutable after construction, so every read is lock-free and
// steady-state allocation-free: Out and In return []Edge rows served from
// the per-csr decode cache (decoded out of the slab once, on first read)
// or from a copy-on-write overlay row, and Prop and Props return the
// already-materialised fixed-width data. This is the read path
// the Interactive workload's 2-3-hop knows expansions run on; MVCC
// transactions (Txn) remain the write path and the read path for
// transactional reads that must overlay their own uncommitted writes.
//
// # Incremental maintenance, eras and ordinal stability
//
// Views advance in two ways (see CurrentView):
//
//   - Delta refresh: a new view is derived from the cached one by applying
//     the commit deltas of the intervening transactions (internal/store
//     delta.go). The refreshed view shares the predecessor's viewBase and
//     copy-on-writes only the touched adjacency rows (decoded from the slab
//     into plain []Edge overlay rows on first touch), property entries and
//     kind lists; new nodes receive ordinals appended after the existing
//     ones. Cost is proportional to the delta, not the dataset.
//   - Full rebuild (compaction): the whole visible state is recompacted
//     into a fresh viewBase — node IDs sorted, ordinals reassigned densely,
//     adjacency re-encoded — and the view's era counter is bumped.
//
// Ordinals are dense indices 0..NumNodes()-1. Within one era they are
// stable: a delta refresh never reassigns an existing node's ordinal, it
// only appends new ones, so per-node scratch state keyed by ordinals (see
// internal/bitset and workload.Scratch) stays meaningful across refreshes.
// Across eras ordinals are reassigned (ascending ID order again) and any
// ordinal-keyed state must be discarded; Era() is the caller's signal.
// Ordinals are only comparable between two views of the same era.
//
// Slices returned by view methods alias the view's internal arrays and
// must not be mutated by callers.
//
// Immutability is also what makes a view the checkpointing unit: the
// durable checkpointer (checkpoint.go) serialises a SnapshotView to disk
// while commits, GC and even a compaction era bump proceed concurrently —
// the held view stays frozen no matter what the cached view does, so
// checkpoints never stop the write path.
type SnapshotView struct {
	ts   int64
	era  uint64
	base *viewBase

	// Copy-on-write overlays, all nil/empty on a freshly compacted view.
	// A refreshed view clones its predecessor's overlay maps (cost bounded
	// by the compaction threshold) and rewrites only the touched entries,
	// so predecessor views stay frozen.
	nodesOver []ids.ID           // ordinal len(base.nodes)+i -> appended node ID
	ordOver   map[ids.ID]int32   // appended node ID -> ordinal
	propsOver map[int32]Props    // touched/appended ordinal -> property list
	edgeOver  map[edgeKey][]Edge // touched (ordinal, type, dir) -> replacement row

	// byKind is per-view (not per-era): refreshes clone the map and append
	// to the touched kinds' lists.
	byKind map[ids.Kind][]ids.ID

	// cancel, when non-nil, makes Out/In/Prop poll a request context and
	// unwind past-deadline scans (cancel.go). Only views derived with
	// WithCancel carry one; the shared cached view never does, keeping the
	// common read path at a single nil check.
	cancel *cancelHook
}

// viewBase is the compacted, era-shared bulk of one or more snapshot views:
// the encoded CSR slabs, the dense property slab and the ordinal mapping of
// every node visible when the era was compacted. It is immutable after
// buildView returns; delta refreshes layer overlays on top without touching
// it.
type viewBase struct {
	nodes []ids.ID         // ordinal -> node ID, ascending
	ord   map[ids.ID]int32 // node ID -> ordinal

	// Dense property storage: the property rows of all ordinals packed
	// back to back in one slab. Row of ordinal o is
	// props[propOff[o]:propOff[o+1]] — fixed-width (Key, Value) pairs,
	// strings as interned symbols — replacing the per-node Props slice
	// headers (and their per-node allocations) of the uncompacted store.
	props   []Prop
	propOff []uint32

	slab    []byte // the shared adjacency byte slab every csr.data aliases
	out, in [edgeTypeMax]csr

	// spill holds any row the ordinal codec could not encode (a neighbour
	// without an ordinal — impossible for a consistent view, kept as a
	// correctness backstop rather than a panic on the build path).
	spill map[edgeKey][]Edge
}

// edgeKey identifies one overlay adjacency row: ordinal, edge type and
// direction packed into one map key.
type edgeKey uint64

func makeEdgeKey(ord int32, t EdgeType, in bool) edgeKey {
	k := edgeKey(uint32(ord))<<6 | edgeKey(t)<<1
	if in {
		k |= 1
	}
	return k
}

// Timestamp returns the commit timestamp the view is frozen at.
func (v *SnapshotView) Timestamp() int64 { return v.ts }

// Era identifies the view's compaction lineage. Views of the same era share
// one ordinal assignment (delta refreshes append, never reassign); a full
// rebuild starts a new era and reassigns ordinals, invalidating any
// ordinal-keyed state held by callers.
func (v *SnapshotView) Era() uint64 { return v.era }

// NumNodes returns the number of visible nodes; ordinals range over
// [0, NumNodes()).
func (v *SnapshotView) NumNodes() int { return len(v.base.nodes) + len(v.nodesOver) }

// Ord returns the compact ordinal of a node, or false if the node is not
// visible in the view.
func (v *SnapshotView) Ord(id ids.ID) (int32, bool) {
	if o, ok := v.base.ord[id]; ok {
		return o, true
	}
	if v.ordOver != nil {
		o, ok := v.ordOver[id]
		return o, ok
	}
	return 0, false
}

// IDAt returns the node ID of an ordinal.
func (v *SnapshotView) IDAt(ord int32) ids.ID {
	if n := int32(len(v.base.nodes)); ord >= n {
		return v.nodesOver[ord-n]
	}
	return v.base.nodes[ord]
}

// Exists reports whether a node is visible in the view.
func (v *SnapshotView) Exists(id ids.ID) bool {
	_, ok := v.Ord(id)
	return ok
}

// edgesAt returns one (ordinal, type, direction) row: the overlay row when
// the refresh chain touched it, the decode-cached slab row otherwise.
//
//snb:noalloc
func (v *SnapshotView) edgesAt(ord int32, t EdgeType, in bool) []Edge {
	if v.edgeOver != nil {
		if row, ok := v.edgeOver[makeEdgeKey(ord, t, in)]; ok {
			return row
		}
	}
	b := v.base
	if b.spill != nil {
		if row, ok := b.spill[makeEdgeKey(ord, t, in)]; ok {
			return row
		}
	}
	if in {
		return b.in[t].rowAt(ord, b.nodes)
	}
	return b.out[t].rowAt(ord, b.nodes)
}

// appendEdges appends one (ordinal, type, direction) row onto dst without
// touching the decode cache: the row-materialisation path for full-store
// walks (checkpoint serialisation) that must not inflate the cache.
func (v *SnapshotView) appendEdges(dst []Edge, ord int32, t EdgeType, in bool) []Edge {
	if v.edgeOver != nil {
		if row, ok := v.edgeOver[makeEdgeKey(ord, t, in)]; ok {
			return append(dst, row...)
		}
	}
	b := v.base
	if b.spill != nil {
		if row, ok := b.spill[makeEdgeKey(ord, t, in)]; ok {
			return append(dst, row...)
		}
	}
	if in {
		return b.in[t].appendRow(dst, ord, b.nodes)
	}
	return b.out[t].appendRow(dst, ord, b.nodes)
}

// Out returns the visible outgoing edges of a node for one edge type, in
// insertion order. The slice aliases the view's decode cache (or an
// overlay row): lock-free, allocation-free once the row is hot, and the
// caller must not mutate it.
//
//snb:noalloc
func (v *SnapshotView) Out(id ids.ID, t EdgeType) []Edge {
	if v.cancel != nil {
		v.cancel.tick()
	}
	o, ok := v.Ord(id)
	if !ok {
		return nil
	}
	return v.edgesAt(o, t, false)
}

// In returns the visible incoming edges of a node for one edge type.
//
//snb:noalloc
func (v *SnapshotView) In(id ids.ID, t EdgeType) []Edge {
	if v.cancel != nil {
		v.cancel.tick()
	}
	o, ok := v.Ord(id)
	if !ok {
		return nil
	}
	return v.edgesAt(o, t, true)
}

// degree returns the row's entry count without decoding it (one uvarint
// read for slab rows).
func (v *SnapshotView) degree(id ids.ID, t EdgeType, in bool) int {
	o, ok := v.Ord(id)
	if !ok {
		return 0
	}
	if v.edgeOver != nil {
		if row, ok := v.edgeOver[makeEdgeKey(o, t, in)]; ok {
			return len(row)
		}
	}
	b := v.base
	if b.spill != nil {
		if row, ok := b.spill[makeEdgeKey(o, t, in)]; ok {
			return len(row)
		}
	}
	if in {
		return b.in[t].degreeAt(o)
	}
	return b.out[t].degreeAt(o)
}

// OutDegree returns the number of visible outgoing edges of a node.
func (v *SnapshotView) OutDegree(id ids.ID, t EdgeType) int {
	return v.degree(id, t, false)
}

// InDegree returns the number of visible incoming edges of a node.
func (v *SnapshotView) InDegree(id ids.ID, t EdgeType) int {
	return v.degree(id, t, true)
}

// propsAt returns the property list of a visible ordinal. Every appended
// ordinal has a propsOver entry (written when the refresh created it), so
// the slab fallback only runs for compacted ordinals.
func (v *SnapshotView) propsAt(ord int32) Props {
	if v.propsOver != nil {
		if ps, ok := v.propsOver[ord]; ok {
			return ps
		}
	}
	b := v.base
	row := b.props[b.propOff[ord]:b.propOff[ord+1]]
	if len(row) == 0 {
		return nil
	}
	return Props(row)
}

// Prop returns one property of a node (zero Value if the node or property
// is absent).
//
//snb:noalloc
func (v *SnapshotView) Prop(id ids.ID, key PropKey) Value {
	if v.cancel != nil {
		v.cancel.tick()
	}
	o, ok := v.Ord(id)
	if !ok {
		return Value{}
	}
	return v.propsAt(o).Get(key)
}

// Props returns the visible property list of a node. The slice aliases the
// view's property slab and must not be mutated.
func (v *SnapshotView) Props(id ids.ID) (Props, bool) {
	o, ok := v.Ord(id)
	if !ok {
		return nil, false
	}
	return v.propsAt(o), true
}

// NodesOfKind returns the IDs of all visible nodes of a kind in insertion
// order. The slice is shared by all callers of the view and must not be
// mutated.
//
//snb:noalloc
func (v *SnapshotView) NodesOfKind(kind ids.Kind) []ids.ID {
	return v.byKind[kind]
}

// NumOfKind returns the number of visible nodes of a kind — the dense scan
// range morsel-driven executors (internal/exec) shard across workers.
func (v *SnapshotView) NumOfKind(kind ids.Kind) int { return len(v.byKind[kind]) }

// KindRange returns the half-open [lo, hi) subrange of NodesOfKind(kind).
// It is the shard helper of the parallel BI scans: the per-kind list is
// immutable for the view's lifetime, so workers slicing disjoint ranges
// read it with zero synchronisation. Bounds follow slice rules (0 <= lo <=
// hi <= NumOfKind); the result aliases view-owned memory and must not be
// mutated.
func (v *SnapshotView) KindRange(kind ids.Kind, lo, hi int) []ids.ID {
	return v.byKind[kind][lo:hi]
}

// ViewEvent reports how an AcquireView call obtained its view.
type ViewEvent uint8

const (
	// ViewHit means the cached view already matched the commit watermark
	// (or another reader advanced it first): a pointer load.
	ViewHit ViewEvent = iota
	// ViewRefreshed means the call advanced the cached view by applying
	// pending commit deltas copy-on-write — cost proportional to the delta.
	ViewRefreshed
	// ViewRebuilt means the call paid a full recompaction — the delta ring
	// overflowed, the compaction threshold was crossed, or no view existed
	// yet. Rebuilds that replace a cached view bump the era.
	ViewRebuilt
)

// String names the event for reports.
func (e ViewEvent) String() string {
	switch e {
	case ViewHit:
		return "hit"
	case ViewRefreshed:
		return "refresh"
	case ViewRebuilt:
		return "rebuild"
	}
	return "unknown"
}

// CurrentView returns a frozen snapshot view at the store's current commit
// watermark. Views are cached behind an atomic pointer and invalidated by
// the commit clock (every committed write bumps it, acting as the view
// epoch): concurrent readers at the same epoch share one view with no
// locking on the read path.
//
// The first reader after a commit advances the view incrementally when it
// can: the pending commit deltas are applied copy-on-write onto the cached
// view (cost proportional to the delta — see delta.go), keeping existing
// ordinals stable within the era. A full O(visible nodes + edges) rebuild
// runs only when the accumulated overlay crosses the compaction threshold
// (SetViewCompactThreshold), the delta ring overflowed, or no cached view
// exists; it starts a new era.
func (s *Store) CurrentView() *SnapshotView {
	v, _ := s.AcquireView()
	return v
}

// AcquireView is CurrentView plus the maintenance event the call performed
// (hit, delta refresh or full rebuild), letting callers attribute the
// acquisition latency they just paid. Store-wide totals are available from
// ViewStats.
func (s *Store) AcquireView() (*SnapshotView, ViewEvent) {
	ts := s.clock.Load()
	if v := s.view.Load(); v != nil && v.ts == ts {
		return v, ViewHit
	}
	// Serialise maintenance so a commit burst doesn't build the same view N
	// times; double-check under the lock.
	s.viewMu.Lock()
	defer s.viewMu.Unlock()
	ts = s.clock.Load()
	old := s.view.Load()
	if old != nil && old.ts == ts {
		return old, ViewHit
	}
	if old != nil {
		if nv, ok := s.refreshView(old, ts); ok {
			s.view.Store(nv)
			s.viewRefreshes.Add(1)
			return nv, ViewRefreshed
		}
	}
	nv := s.buildView(ts)
	s.view.Store(nv)
	s.viewRebuilds.Add(1)
	if old != nil {
		s.viewEraBumps.Add(1)
	}
	s.resetDeltas(ts)
	return nv, ViewRebuilt
}

// AcquireViewChecked is AcquireView with a liveness check: once the store
// is closed (MarkClosed / Persistent.Close) it returns ErrStoreClosed
// instead of a view. Serving layers use it so requests racing a shutdown
// get a clean sentinel rather than a snapshot of a store whose durability
// pipeline is already gone. The check is advisory for reads — an already
// acquired view stays valid forever — so a Close landing between the check
// and the query is harmless.
func (s *Store) AcquireViewChecked() (*SnapshotView, ViewEvent, error) {
	if s.closed.Load() {
		return nil, ViewHit, ErrStoreClosed
	}
	v, ev := s.AcquireView()
	return v, ev, nil
}

// ViewAt builds a fresh, uncached view frozen at an explicit timestamp.
// It exists for tests and offline analysis (e.g. comparing a view against
// a Txn at the same snapshot); the serving path is CurrentView. Each call
// compacts from scratch and starts its own era (its ordinals are not
// comparable with any other view's).
//
// After GC, ViewAt at a timestamp below the GC horizon may observe
// reclaimed state; see Store.GC.
func (s *Store) ViewAt(ts int64) *SnapshotView {
	return s.buildView(ts)
}

// buildView compacts the store's state visible at ts into a SnapshotView
// with a fresh viewBase and era. It takes each shard's read lock once per
// pass (never the commit lock), so it can run concurrently with commits;
// the visibility filter commit <= ts makes the result independent of any
// in-flight installs.
//
// Compaction runs in three phases: the two shard-grouped passes of the
// PR 1 layout gather the visible edges into transient uncompressed slabs
// (exact-sized, lock-friendly), and a lock-free encode pass then
// delta/varint-codes each row into the shared byte slab and packs the
// property rows, after which the transient slabs are dropped. The build
// briefly holds both layouts; the resident result is only the compact one.
func (s *Store) buildView(ts int64) *SnapshotView {
	b := &viewBase{}
	v := &SnapshotView{ts: ts, era: s.viewEra.Add(1), base: b}

	// Collect visible node IDs from every shard.
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id, rec := range sh.nodes {
			if _, ok := rec.visibleProps(ts); ok {
				b.nodes = append(b.nodes, id)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(b.nodes, func(i, j int) bool { return b.nodes[i] < b.nodes[j] })

	n := len(b.nodes)
	b.ord = make(map[ids.ID]int32, n)
	for i, id := range b.nodes {
		b.ord[id] = int32(i)
	}

	// Group ordinals by owning shard so each pass locks every shard once
	// instead of paying two lock round-trips per node.
	var ordsByShard [shardCount][]int32
	for i, id := range b.nodes {
		ordsByShard[shardIndex(id)] = append(ordsByShard[shardIndex(id)], int32(i))
	}

	// Transient uncompressed layout, dropped after the encode pass.
	type rawCSR struct {
		offsets []int32
		edges   []Edge
	}
	var rawOut, rawIn [edgeTypeMax]rawCSR
	rawProps := make([]Props, n)

	// Pass 1: per-node visible edge counts into the (future) offset
	// arrays, plus the property rows. Offsets are allocated for every edge
	// type up front and dropped again for types that turn out empty.
	for t := EdgeType(1); t < edgeTypeMax; t++ {
		rawOut[t].offsets = make([]int32, n+1)
		rawIn[t].offsets = make([]int32, n+1)
	}
	for si := range s.shards {
		sh := &s.shards[si]
		sh.mu.RLock()
		for _, ord := range ordsByShard[si] {
			rec := sh.nodes[b.nodes[ord]]
			ps, _ := rec.visibleProps(ts)
			rawProps[ord] = ps
			for t := EdgeType(1); t < edgeTypeMax; t++ {
				rawOut[t].offsets[ord+1] = int32(countVisible(rec.adj.out[t], ts))
				rawIn[t].offsets[ord+1] = int32(countVisible(rec.adj.in[t], ts))
			}
		}
		sh.mu.RUnlock()
	}
	// Prefix-sum the counts into offsets and size the slabs; empty types
	// lose their offset array entirely.
	finishRaw := func(c *rawCSR) {
		for i := 1; i <= n; i++ {
			c.offsets[i] += c.offsets[i-1]
		}
		if total := c.offsets[n]; total > 0 {
			c.edges = make([]Edge, total)
		} else {
			c.offsets = nil
		}
	}
	for t := EdgeType(1); t < edgeTypeMax; t++ {
		finishRaw(&rawOut[t])
		finishRaw(&rawIn[t])
	}

	// Pass 2: fill the transient slabs by offset position — order-
	// independent, so it can also run shard-grouped; within one node each
	// adjacency list keeps its insertion order (the order Txn.Out reports).
	for si := range s.shards {
		sh := &s.shards[si]
		sh.mu.RLock()
		for _, ord := range ordsByShard[si] {
			rec := sh.nodes[b.nodes[ord]]
			for t := EdgeType(1); t < edgeTypeMax; t++ {
				if c := &rawOut[t]; c.offsets != nil {
					fillVisible(c.edges[c.offsets[ord]:c.offsets[ord+1]], rec.adj.out[t], ts)
				}
				if c := &rawIn[t]; c.offsets != nil {
					fillVisible(c.edges[c.offsets[ord]:c.offsets[ord+1]], rec.adj.in[t], ts)
				}
			}
		}
		sh.mu.RUnlock()
	}

	// Encode pass (no locks): delta/varint-code every row into one shared
	// byte slab, trimming each type/direction's offset index to the ordinal
	// range that has edges at all (ID-sorted ordinals group nodes by kind,
	// so a relation touching one kind pays offsets only across that kind's
	// range). csr.data stays nil until the slab stops growing — appends may
	// reallocate it — and is patched to its subslice at the end.
	type slabRange struct{ start, end int }
	var ranges [2][edgeTypeMax]slabRange
	var slab []byte
	encode := func(raw *rawCSR, c *csr, t EdgeType, dir int) {
		if raw.offsets == nil {
			return
		}
		lo, hi := int32(-1), int32(-1) // first/last ordinal with a non-empty row
		for o := 0; o < n; o++ {
			if raw.offsets[o+1] > raw.offsets[o] {
				if lo < 0 {
					lo = int32(o)
				}
				hi = int32(o)
			}
		}
		if lo < 0 {
			return
		}
		c.lo = lo
		c.offsets = make([]uint32, int(hi-lo)+2)
		ranges[dir][t].start = len(slab)
		base := len(slab)
		for o := lo; o <= hi; o++ {
			c.offsets[o-lo] = uint32(len(slab) - base)
			row := raw.edges[raw.offsets[o]:raw.offsets[o+1]]
			if len(row) == 0 {
				continue
			}
			next, ok := appendAdjRow(slab, row, b.ord)
			if !ok {
				// A neighbour without an ordinal: keep the raw row.
				if b.spill == nil {
					b.spill = make(map[edgeKey][]Edge)
				}
				b.spill[makeEdgeKey(o, t, dir == 1)] = append([]Edge(nil), row...)
				continue
			}
			slab = next
			c.entries += len(row)
		}
		c.offsets[hi-lo+1] = uint32(len(slab) - base)
		ranges[dir][t].end = len(slab)
		if c.entries > 0 {
			// Decode-cache header only; the per-row table inside is
			// allocated lazily, on the first long-row read.
			c.dec = &decCache{}
		}
	}
	for t := EdgeType(1); t < edgeTypeMax; t++ {
		encode(&rawOut[t], &b.out[t], t, 0)
		encode(&rawIn[t], &b.in[t], t, 1)
	}
	b.slab = slab
	for t := EdgeType(1); t < edgeTypeMax; t++ {
		if b.out[t].offsets != nil {
			r := ranges[0][t]
			b.out[t].data = slab[r.start:r.end]
		}
		if b.in[t].offsets != nil {
			r := ranges[1][t]
			b.in[t].data = slab[r.start:r.end]
		}
	}

	// Pack the property rows into the dense slab.
	total := 0
	for _, ps := range rawProps {
		total += len(ps)
	}
	b.props = make([]Prop, 0, total)
	b.propOff = make([]uint32, n+1)
	for i, ps := range rawProps {
		b.propOff[i] = uint32(len(b.props))
		b.props = append(b.props, ps...)
	}
	b.propOff[n] = uint32(len(b.props))

	// Per-kind scan lists, matching Txn.NodesOfKind's visible-prefix
	// semantics over the commit-ordered kind lists.
	v.byKind = make(map[ids.Kind][]ids.ID)
	s.kindMu.RLock()
	kinds := make([]ids.Kind, 0, len(s.byKind))
	for k := range s.byKind {
		kinds = append(kinds, k)
	}
	s.kindMu.RUnlock()
	for _, k := range kinds {
		if list := s.nodesOfKind(k, ts); len(list) > 0 {
			v.byKind[k] = list
		}
	}
	return v
}

func countVisible(list []edgeRec, ts int64) int {
	n := 0
	for i := range list {
		if list[i].visibleAt(ts) {
			n++
		}
	}
	return n
}

// fillVisible writes the visible edges of one adjacency list into its
// transient slab slice (whose length pass 1 sized to the exact visible
// count).
func fillVisible(dst []Edge, list []edgeRec, ts int64) {
	j := 0
	for i := range list {
		if e := &list[i]; e.visibleAt(ts) {
			dst[j] = Edge{To: e.peer, Stamp: e.stamp}
			j++
		}
	}
}
