package store

import (
	"sort"

	"ldbcsnb/internal/ids"
)

// SnapshotView is a frozen, read-optimised image of the store at one commit
// timestamp: every shard's visible adjacency compacted into flat CSR arrays
// (one contiguous []Edge slab plus per-node offsets, per edge type and
// direction) and the visible node properties gathered into a dense table
// indexed by compact node ordinals.
//
// A view is immutable after construction, so every read is lock-free and
// allocation-free: Out and In return subslices of the CSR slab, Prop and
// Props return the already-materialised version data. This is the read path
// the Interactive workload's 2-3-hop knows expansions run on; MVCC
// transactions (Txn) remain the write path and the read path for
// transactional reads that must overlay their own uncommitted writes.
//
// Ordinals are dense indices 0..NumNodes()-1 assigned in ascending ID order.
// They are the natural key for visited bitsets and other per-node scratch
// state during traversals (see internal/bitset); they are only meaningful
// for the view that issued them.
//
// Slices returned by view methods alias the view's internal arrays and must
// not be mutated by callers.
type SnapshotView struct {
	ts     int64
	nodes  []ids.ID         // ordinal -> node ID, ascending
	ord    map[ids.ID]int32 // node ID -> ordinal
	props  []Props          // ordinal -> visible property list (shared, immutable)
	out    [edgeTypeMax]csr
	in     [edgeTypeMax]csr
	byKind map[ids.Kind][]ids.ID
}

// csr is one compressed-sparse-row adjacency: the edges of ordinal v are
// edges[offsets[v]:offsets[v+1]]. offsets is nil when no edge of this
// type/direction is visible, saving the per-node offset array entirely.
type csr struct {
	offsets []int32
	edges   []Edge
}

func (c *csr) neighbours(ord int32) []Edge {
	if c.offsets == nil {
		return nil
	}
	return c.edges[c.offsets[ord]:c.offsets[ord+1]]
}

// Timestamp returns the commit timestamp the view is frozen at.
func (v *SnapshotView) Timestamp() int64 { return v.ts }

// NumNodes returns the number of visible nodes; ordinals range over
// [0, NumNodes()).
func (v *SnapshotView) NumNodes() int { return len(v.nodes) }

// Ord returns the compact ordinal of a node, or false if the node is not
// visible in the view.
func (v *SnapshotView) Ord(id ids.ID) (int32, bool) {
	o, ok := v.ord[id]
	return o, ok
}

// IDAt returns the node ID of an ordinal.
func (v *SnapshotView) IDAt(ord int32) ids.ID { return v.nodes[ord] }

// Exists reports whether a node is visible in the view.
func (v *SnapshotView) Exists(id ids.ID) bool {
	_, ok := v.ord[id]
	return ok
}

// Out returns the visible outgoing edges of a node for one edge type, in
// insertion order. The slice aliases the CSR slab: zero allocation, and the
// caller must not mutate it.
func (v *SnapshotView) Out(id ids.ID, t EdgeType) []Edge {
	o, ok := v.ord[id]
	if !ok {
		return nil
	}
	return v.out[t].neighbours(o)
}

// In returns the visible incoming edges of a node for one edge type.
func (v *SnapshotView) In(id ids.ID, t EdgeType) []Edge {
	o, ok := v.ord[id]
	if !ok {
		return nil
	}
	return v.in[t].neighbours(o)
}

// OutDegree returns the number of visible outgoing edges of a node.
func (v *SnapshotView) OutDegree(id ids.ID, t EdgeType) int {
	return len(v.Out(id, t))
}

// Prop returns one property of a node (zero Value if the node or property
// is absent).
func (v *SnapshotView) Prop(id ids.ID, key PropKey) Value {
	o, ok := v.ord[id]
	if !ok {
		return Value{}
	}
	return v.props[o].Get(key)
}

// Props returns the visible property list of a node. The slice aliases the
// stored version and must not be mutated.
func (v *SnapshotView) Props(id ids.ID) (Props, bool) {
	o, ok := v.ord[id]
	if !ok {
		return nil, false
	}
	return v.props[o], true
}

// NodesOfKind returns the IDs of all visible nodes of a kind in insertion
// order. The slice is shared by all callers of the view and must not be
// mutated.
func (v *SnapshotView) NodesOfKind(kind ids.Kind) []ids.ID {
	return v.byKind[kind]
}

// CurrentView returns a frozen snapshot view at the store's current commit
// watermark. Views are cached behind an atomic pointer and invalidated by
// the commit clock (every committed write bumps it, acting as the view
// epoch): the first reader after a commit rebuilds, concurrent readers at
// the same epoch share one view with no locking on the read path.
//
// Rebuilds are full (cost O(visible nodes + edges)); incremental
// maintenance is future work. Under the Interactive mix — bursts of reads
// between sparse update transactions — the rebuild amortises across the
// read burst.
func (s *Store) CurrentView() *SnapshotView {
	ts := s.clock.Load()
	if v := s.view.Load(); v != nil && v.ts == ts {
		return v
	}
	// Serialise rebuilds so a commit burst doesn't build the same view N
	// times; double-check under the lock.
	s.viewMu.Lock()
	defer s.viewMu.Unlock()
	ts = s.clock.Load()
	if v := s.view.Load(); v != nil && v.ts == ts {
		return v
	}
	v := s.buildView(ts)
	s.view.Store(v)
	return v
}

// ViewAt builds a fresh, uncached view frozen at an explicit timestamp.
// It exists for tests and offline analysis (e.g. comparing a view against
// a Txn at the same snapshot); the serving path is CurrentView.
func (s *Store) ViewAt(ts int64) *SnapshotView {
	return s.buildView(ts)
}

// buildView compacts the store's state visible at ts into a SnapshotView.
// It takes each shard's read lock once per pass (never the commit lock),
// so it can run concurrently with commits; the visibility filter
// commit <= ts makes the result independent of any in-flight installs.
func (s *Store) buildView(ts int64) *SnapshotView {
	v := &SnapshotView{ts: ts}

	// Collect visible node IDs from every shard.
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id, rec := range sh.nodes {
			if _, ok := rec.visibleProps(ts); ok {
				v.nodes = append(v.nodes, id)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(v.nodes, func(i, j int) bool { return v.nodes[i] < v.nodes[j] })

	n := len(v.nodes)
	v.ord = make(map[ids.ID]int32, n)
	for i, id := range v.nodes {
		v.ord[id] = int32(i)
	}
	v.props = make([]Props, n)

	// Group ordinals by owning shard so each pass locks every shard once
	// instead of paying two lock round-trips per node.
	var ordsByShard [shardCount][]int32
	for i, id := range v.nodes {
		ordsByShard[shardIndex(id)] = append(ordsByShard[shardIndex(id)], int32(i))
	}

	// Pass 1: per-node visible edge counts into the (future) offset
	// arrays, plus the props table. Offsets are allocated for every edge
	// type up front and dropped again for types that turn out empty.
	for t := EdgeType(1); t < edgeTypeMax; t++ {
		v.out[t].offsets = make([]int32, n+1)
		v.in[t].offsets = make([]int32, n+1)
	}
	for si := range s.shards {
		sh := &s.shards[si]
		sh.mu.RLock()
		for _, ord := range ordsByShard[si] {
			rec := sh.nodes[v.nodes[ord]]
			ps, _ := rec.visibleProps(ts)
			v.props[ord] = ps
			for t := EdgeType(1); t < edgeTypeMax; t++ {
				v.out[t].offsets[ord+1] = int32(countVisible(rec.adj.out[t], ts))
				v.in[t].offsets[ord+1] = int32(countVisible(rec.adj.in[t], ts))
			}
		}
		sh.mu.RUnlock()
	}
	// Prefix-sum the counts into offsets and size the slabs; empty types
	// lose their offset array entirely (csr.neighbours returns nil).
	finishCSR := func(c *csr) {
		for i := 1; i <= n; i++ {
			c.offsets[i] += c.offsets[i-1]
		}
		if total := c.offsets[n]; total > 0 {
			c.edges = make([]Edge, total)
		} else {
			c.offsets = nil
		}
	}
	for t := EdgeType(1); t < edgeTypeMax; t++ {
		finishCSR(&v.out[t])
		finishCSR(&v.in[t])
	}

	// Pass 2: fill the slabs by offset position — order-independent, so
	// it can also run shard-grouped; within one node each adjacency list
	// keeps its insertion order (the order Txn.Out reports).
	for si := range s.shards {
		sh := &s.shards[si]
		sh.mu.RLock()
		for _, ord := range ordsByShard[si] {
			rec := sh.nodes[v.nodes[ord]]
			for t := EdgeType(1); t < edgeTypeMax; t++ {
				if c := &v.out[t]; c.offsets != nil {
					fillVisible(c.edges[c.offsets[ord]:c.offsets[ord+1]], rec.adj.out[t], ts)
				}
				if c := &v.in[t]; c.offsets != nil {
					fillVisible(c.edges[c.offsets[ord]:c.offsets[ord+1]], rec.adj.in[t], ts)
				}
			}
		}
		sh.mu.RUnlock()
	}

	// Per-kind scan lists, matching Txn.NodesOfKind's visible-prefix
	// semantics over the commit-ordered kind lists.
	v.byKind = make(map[ids.Kind][]ids.ID)
	s.kindMu.RLock()
	kinds := make([]ids.Kind, 0, len(s.byKind))
	for k := range s.byKind {
		kinds = append(kinds, k)
	}
	s.kindMu.RUnlock()
	for _, k := range kinds {
		if list := s.nodesOfKind(k, ts); len(list) > 0 {
			v.byKind[k] = list
		}
	}
	return v
}

func countVisible(list []edgeRec, ts int64) int {
	n := 0
	for i := range list {
		if list[i].commit <= ts {
			n++
		}
	}
	return n
}

// fillVisible writes the visible edges of one adjacency list into its CSR
// slab slice (whose length pass 1 sized to the exact visible count).
func fillVisible(dst []Edge, list []edgeRec, ts int64) {
	j := 0
	for i := range list {
		if e := &list[i]; e.commit <= ts {
			dst[j] = Edge{To: e.peer, Stamp: e.stamp}
			j++
		}
	}
}
