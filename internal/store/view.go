package store

import (
	"sort"

	"ldbcsnb/internal/ids"
)

// SnapshotView is a frozen, read-optimised image of the store at one commit
// timestamp. Its bulk lives in a per-era viewBase: every shard's visible
// adjacency compacted into flat CSR arrays (one contiguous []Edge slab plus
// per-node offsets, per edge type and direction) and the visible node
// properties gathered into a dense table indexed by compact node ordinals.
//
// A view is immutable after construction, so every read is lock-free and
// allocation-free: Out and In return subslices of the CSR slab (or of a
// copy-on-write overlay row, see below), Prop and Props return the
// already-materialised version data. This is the read path the Interactive
// workload's 2-3-hop knows expansions run on; MVCC transactions (Txn)
// remain the write path and the read path for transactional reads that must
// overlay their own uncommitted writes.
//
// # Incremental maintenance, eras and ordinal stability
//
// Views advance in two ways (see CurrentView):
//
//   - Delta refresh: a new view is derived from the cached one by applying
//     the commit deltas of the intervening transactions (internal/store
//     delta.go). The refreshed view shares the predecessor's viewBase and
//     copy-on-writes only the touched adjacency rows, property entries and
//     kind lists; new nodes receive ordinals appended after the existing
//     ones. Cost is proportional to the delta, not the dataset.
//   - Full rebuild (compaction): the whole visible state is recompacted
//     into a fresh viewBase — node IDs sorted, ordinals reassigned densely —
//     and the view's era counter is bumped.
//
// Ordinals are dense indices 0..NumNodes()-1. Within one era they are
// stable: a delta refresh never reassigns an existing node's ordinal, it
// only appends new ones, so per-node scratch state keyed by ordinals (see
// internal/bitset and workload.Scratch) stays meaningful across refreshes.
// Across eras ordinals are reassigned (ascending ID order again) and any
// ordinal-keyed state must be discarded; Era() is the caller's signal.
// Ordinals are only comparable between two views of the same era.
//
// Slices returned by view methods alias the view's internal arrays and must
// not be mutated by callers.
//
// Immutability is also what makes a view the checkpointing unit: the
// durable checkpointer (checkpoint.go) serialises a SnapshotView to disk
// while commits, GC and even a compaction era bump proceed concurrently —
// the held view stays frozen no matter what the cached view does, so
// checkpoints never stop the write path.
type SnapshotView struct {
	ts   int64
	era  uint64
	base *viewBase

	// Copy-on-write overlays, all nil/empty on a freshly compacted view.
	// A refreshed view clones its predecessor's overlay maps (cost bounded
	// by the compaction threshold) and rewrites only the touched entries,
	// so predecessor views stay frozen.
	nodesOver []ids.ID           // ordinal len(base.nodes)+i -> appended node ID
	ordOver   map[ids.ID]int32   // appended node ID -> ordinal
	propsOver map[int32]Props    // touched/appended ordinal -> property list
	edgeOver  map[edgeKey][]Edge // touched (ordinal, type, dir) -> replacement row

	// byKind is per-view (not per-era): refreshes clone the map and append
	// to the touched kinds' lists.
	byKind map[ids.Kind][]ids.ID
}

// viewBase is the compacted, era-shared bulk of one or more snapshot views:
// the CSR slabs, the dense property table and the ordinal mapping of every
// node visible when the era was compacted. It is immutable after buildView
// returns; delta refreshes layer overlays on top without touching it.
type viewBase struct {
	nodes []ids.ID         // ordinal -> node ID, ascending
	ord   map[ids.ID]int32 // node ID -> ordinal
	props []Props          // ordinal -> visible property list (shared, immutable)
	out   [edgeTypeMax]csr
	in    [edgeTypeMax]csr
}

// csr is one compressed-sparse-row adjacency: the edges of ordinal v are
// edges[offsets[v]:offsets[v+1]]. offsets is nil when no edge of this
// type/direction is visible, saving the per-node offset array entirely.
type csr struct {
	offsets []int32
	edges   []Edge
}

func (c *csr) neighbours(ord int32) []Edge {
	// Ordinals appended after compaction lie beyond the offset array; their
	// adjacency lives entirely in the view's edge overlay.
	if c.offsets == nil || int(ord)+1 >= len(c.offsets) {
		return nil
	}
	return c.edges[c.offsets[ord]:c.offsets[ord+1]]
}

// edgeKey identifies one overlay adjacency row: ordinal, edge type and
// direction packed into one map key.
type edgeKey uint64

func makeEdgeKey(ord int32, t EdgeType, in bool) edgeKey {
	k := edgeKey(uint32(ord))<<6 | edgeKey(t)<<1
	if in {
		k |= 1
	}
	return k
}

// Timestamp returns the commit timestamp the view is frozen at.
func (v *SnapshotView) Timestamp() int64 { return v.ts }

// Era identifies the view's compaction lineage. Views of the same era share
// one ordinal assignment (delta refreshes append, never reassign); a full
// rebuild starts a new era and reassigns ordinals, invalidating any
// ordinal-keyed state held by callers.
func (v *SnapshotView) Era() uint64 { return v.era }

// NumNodes returns the number of visible nodes; ordinals range over
// [0, NumNodes()).
func (v *SnapshotView) NumNodes() int { return len(v.base.nodes) + len(v.nodesOver) }

// Ord returns the compact ordinal of a node, or false if the node is not
// visible in the view.
func (v *SnapshotView) Ord(id ids.ID) (int32, bool) {
	if o, ok := v.base.ord[id]; ok {
		return o, true
	}
	if v.ordOver != nil {
		o, ok := v.ordOver[id]
		return o, ok
	}
	return 0, false
}

// IDAt returns the node ID of an ordinal.
func (v *SnapshotView) IDAt(ord int32) ids.ID {
	if n := int32(len(v.base.nodes)); ord >= n {
		return v.nodesOver[ord-n]
	}
	return v.base.nodes[ord]
}

// Exists reports whether a node is visible in the view.
func (v *SnapshotView) Exists(id ids.ID) bool {
	_, ok := v.Ord(id)
	return ok
}

// row returns the adjacency row of one (ordinal, type, direction): the
// overlay row when the refresh chain touched it, the CSR slab subslice
// otherwise.
func (v *SnapshotView) row(ord int32, t EdgeType, in bool) []Edge {
	if v.edgeOver != nil {
		if row, ok := v.edgeOver[makeEdgeKey(ord, t, in)]; ok {
			return row
		}
	}
	if in {
		return v.base.in[t].neighbours(ord)
	}
	return v.base.out[t].neighbours(ord)
}

// Out returns the visible outgoing edges of a node for one edge type, in
// insertion order. The slice aliases the CSR slab (or an overlay row): zero
// allocation, and the caller must not mutate it.
func (v *SnapshotView) Out(id ids.ID, t EdgeType) []Edge {
	o, ok := v.Ord(id)
	if !ok {
		return nil
	}
	return v.row(o, t, false)
}

// In returns the visible incoming edges of a node for one edge type.
func (v *SnapshotView) In(id ids.ID, t EdgeType) []Edge {
	o, ok := v.Ord(id)
	if !ok {
		return nil
	}
	return v.row(o, t, true)
}

// OutDegree returns the number of visible outgoing edges of a node.
func (v *SnapshotView) OutDegree(id ids.ID, t EdgeType) int {
	return len(v.Out(id, t))
}

// propsAt returns the property list of a visible ordinal. Every appended
// ordinal has a propsOver entry (written when the refresh created it), so
// the base-table fallback only runs for compacted ordinals.
func (v *SnapshotView) propsAt(ord int32) Props {
	if v.propsOver != nil {
		if ps, ok := v.propsOver[ord]; ok {
			return ps
		}
	}
	return v.base.props[ord]
}

// Prop returns one property of a node (zero Value if the node or property
// is absent).
func (v *SnapshotView) Prop(id ids.ID, key PropKey) Value {
	o, ok := v.Ord(id)
	if !ok {
		return Value{}
	}
	return v.propsAt(o).Get(key)
}

// Props returns the visible property list of a node. The slice aliases the
// stored version and must not be mutated.
func (v *SnapshotView) Props(id ids.ID) (Props, bool) {
	o, ok := v.Ord(id)
	if !ok {
		return nil, false
	}
	return v.propsAt(o), true
}

// NodesOfKind returns the IDs of all visible nodes of a kind in insertion
// order. The slice is shared by all callers of the view and must not be
// mutated.
func (v *SnapshotView) NodesOfKind(kind ids.Kind) []ids.ID {
	return v.byKind[kind]
}

// NumOfKind returns the number of visible nodes of a kind — the dense scan
// range morsel-driven executors (internal/exec) shard across workers.
func (v *SnapshotView) NumOfKind(kind ids.Kind) int { return len(v.byKind[kind]) }

// KindRange returns the half-open [lo, hi) subrange of NodesOfKind(kind).
// It is the shard helper of the parallel BI scans: the per-kind list is
// immutable for the view's lifetime, so workers slicing disjoint ranges
// read it with zero synchronisation. Bounds follow slice rules (0 <= lo <=
// hi <= NumOfKind); the result aliases view-owned memory and must not be
// mutated.
func (v *SnapshotView) KindRange(kind ids.Kind, lo, hi int) []ids.ID {
	return v.byKind[kind][lo:hi]
}

// ViewEvent reports how an AcquireView call obtained its view.
type ViewEvent uint8

const (
	// ViewHit means the cached view already matched the commit watermark
	// (or another reader advanced it first): a pointer load.
	ViewHit ViewEvent = iota
	// ViewRefreshed means the call advanced the cached view by applying
	// pending commit deltas copy-on-write — cost proportional to the delta.
	ViewRefreshed
	// ViewRebuilt means the call paid a full recompaction — the delta ring
	// overflowed, the compaction threshold was crossed, or no view existed
	// yet. Rebuilds that replace a cached view bump the era.
	ViewRebuilt
)

// String names the event for reports.
func (e ViewEvent) String() string {
	switch e {
	case ViewHit:
		return "hit"
	case ViewRefreshed:
		return "refresh"
	case ViewRebuilt:
		return "rebuild"
	}
	return "unknown"
}

// CurrentView returns a frozen snapshot view at the store's current commit
// watermark. Views are cached behind an atomic pointer and invalidated by
// the commit clock (every committed write bumps it, acting as the view
// epoch): concurrent readers at the same epoch share one view with no
// locking on the read path.
//
// The first reader after a commit advances the view incrementally when it
// can: the pending commit deltas are applied copy-on-write onto the cached
// view (cost proportional to the delta — see delta.go), keeping existing
// ordinals stable within the era. A full O(visible nodes + edges) rebuild
// runs only when the accumulated overlay crosses the compaction threshold
// (SetViewCompactThreshold), the delta ring overflowed, or no cached view
// exists; it starts a new era.
func (s *Store) CurrentView() *SnapshotView {
	v, _ := s.AcquireView()
	return v
}

// AcquireView is CurrentView plus the maintenance event the call performed
// (hit, delta refresh or full rebuild), letting callers attribute the
// acquisition latency they just paid. Store-wide totals are available from
// ViewStats.
func (s *Store) AcquireView() (*SnapshotView, ViewEvent) {
	ts := s.clock.Load()
	if v := s.view.Load(); v != nil && v.ts == ts {
		return v, ViewHit
	}
	// Serialise maintenance so a commit burst doesn't build the same view N
	// times; double-check under the lock.
	s.viewMu.Lock()
	defer s.viewMu.Unlock()
	ts = s.clock.Load()
	old := s.view.Load()
	if old != nil && old.ts == ts {
		return old, ViewHit
	}
	if old != nil {
		if nv, ok := s.refreshView(old, ts); ok {
			s.view.Store(nv)
			s.viewRefreshes.Add(1)
			return nv, ViewRefreshed
		}
	}
	nv := s.buildView(ts)
	s.view.Store(nv)
	s.viewRebuilds.Add(1)
	if old != nil {
		s.viewEraBumps.Add(1)
	}
	s.resetDeltas(ts)
	return nv, ViewRebuilt
}

// ViewAt builds a fresh, uncached view frozen at an explicit timestamp.
// It exists for tests and offline analysis (e.g. comparing a view against
// a Txn at the same snapshot); the serving path is CurrentView. Each call
// compacts from scratch and starts its own era (its ordinals are not
// comparable with any other view's).
//
// After GC, ViewAt at a timestamp below the GC horizon may observe
// reclaimed state; see Store.GC.
func (s *Store) ViewAt(ts int64) *SnapshotView {
	return s.buildView(ts)
}

// buildView compacts the store's state visible at ts into a SnapshotView
// with a fresh viewBase and era. It takes each shard's read lock once per
// pass (never the commit lock), so it can run concurrently with commits;
// the visibility filter commit <= ts makes the result independent of any
// in-flight installs.
func (s *Store) buildView(ts int64) *SnapshotView {
	b := &viewBase{}
	v := &SnapshotView{ts: ts, era: s.viewEra.Add(1), base: b}

	// Collect visible node IDs from every shard.
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id, rec := range sh.nodes {
			if _, ok := rec.visibleProps(ts); ok {
				b.nodes = append(b.nodes, id)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(b.nodes, func(i, j int) bool { return b.nodes[i] < b.nodes[j] })

	n := len(b.nodes)
	b.ord = make(map[ids.ID]int32, n)
	for i, id := range b.nodes {
		b.ord[id] = int32(i)
	}
	b.props = make([]Props, n)

	// Group ordinals by owning shard so each pass locks every shard once
	// instead of paying two lock round-trips per node.
	var ordsByShard [shardCount][]int32
	for i, id := range b.nodes {
		ordsByShard[shardIndex(id)] = append(ordsByShard[shardIndex(id)], int32(i))
	}

	// Pass 1: per-node visible edge counts into the (future) offset
	// arrays, plus the props table. Offsets are allocated for every edge
	// type up front and dropped again for types that turn out empty.
	for t := EdgeType(1); t < edgeTypeMax; t++ {
		b.out[t].offsets = make([]int32, n+1)
		b.in[t].offsets = make([]int32, n+1)
	}
	for si := range s.shards {
		sh := &s.shards[si]
		sh.mu.RLock()
		for _, ord := range ordsByShard[si] {
			rec := sh.nodes[b.nodes[ord]]
			ps, _ := rec.visibleProps(ts)
			b.props[ord] = ps
			for t := EdgeType(1); t < edgeTypeMax; t++ {
				b.out[t].offsets[ord+1] = int32(countVisible(rec.adj.out[t], ts))
				b.in[t].offsets[ord+1] = int32(countVisible(rec.adj.in[t], ts))
			}
		}
		sh.mu.RUnlock()
	}
	// Prefix-sum the counts into offsets and size the slabs; empty types
	// lose their offset array entirely (csr.neighbours returns nil).
	finishCSR := func(c *csr) {
		for i := 1; i <= n; i++ {
			c.offsets[i] += c.offsets[i-1]
		}
		if total := c.offsets[n]; total > 0 {
			c.edges = make([]Edge, total)
		} else {
			c.offsets = nil
		}
	}
	for t := EdgeType(1); t < edgeTypeMax; t++ {
		finishCSR(&b.out[t])
		finishCSR(&b.in[t])
	}

	// Pass 2: fill the slabs by offset position — order-independent, so
	// it can also run shard-grouped; within one node each adjacency list
	// keeps its insertion order (the order Txn.Out reports).
	for si := range s.shards {
		sh := &s.shards[si]
		sh.mu.RLock()
		for _, ord := range ordsByShard[si] {
			rec := sh.nodes[b.nodes[ord]]
			for t := EdgeType(1); t < edgeTypeMax; t++ {
				if c := &b.out[t]; c.offsets != nil {
					fillVisible(c.edges[c.offsets[ord]:c.offsets[ord+1]], rec.adj.out[t], ts)
				}
				if c := &b.in[t]; c.offsets != nil {
					fillVisible(c.edges[c.offsets[ord]:c.offsets[ord+1]], rec.adj.in[t], ts)
				}
			}
		}
		sh.mu.RUnlock()
	}

	// Per-kind scan lists, matching Txn.NodesOfKind's visible-prefix
	// semantics over the commit-ordered kind lists.
	v.byKind = make(map[ids.Kind][]ids.ID)
	s.kindMu.RLock()
	kinds := make([]ids.Kind, 0, len(s.byKind))
	for k := range s.byKind {
		kinds = append(kinds, k)
	}
	s.kindMu.RUnlock()
	for _, k := range kinds {
		if list := s.nodesOfKind(k, ts); len(list) > 0 {
			v.byKind[k] = list
		}
	}
	return v
}

func countVisible(list []edgeRec, ts int64) int {
	n := 0
	for i := range list {
		if list[i].visibleAt(ts) {
			n++
		}
	}
	return n
}

// fillVisible writes the visible edges of one adjacency list into its CSR
// slab slice (whose length pass 1 sized to the exact visible count).
func fillVisible(dst []Edge, list []edgeRec, ts int64) {
	j := 0
	for i := range list {
		if e := &list[i]; e.visibleAt(ts) {
			dst[j] = Edge{To: e.peer, Stamp: e.stamp}
			j++
		}
	}
}
