package store

import (
	"sort"

	"ldbcsnb/internal/ids"
)

// TableStat describes the approximate in-memory footprint of one logical
// "table" (node kind or edge type), for the Table 8 experiment.
type TableStat struct {
	Name  string
	Rows  int
	Bytes int64
}

// IndexStat describes one secondary index.
type IndexStat struct {
	Name    string
	Entries int
	Bytes   int64
}

// Stats is a storage-size report.
type Stats struct {
	Nodes   int
	Edges   int
	Tables  []TableStat // sorted by Bytes descending
	Indexes []IndexStat // sorted by Bytes descending
}

const (
	nodeOverheadBytes = 64 // map entry + record header + version header
	edgeBytes         = 32 // edgeRec: peer + stamp + commit + del
	indexEntryBytes   = 24 // btree.Entry
)

// ComputeStats scans the store and reports per-table and per-index sizes.
// It takes shard read locks briefly per shard; sizes are approximate heap
// footprints (the analogue of Virtuoso's allocated database pages in
// Table 8).
func (s *Store) ComputeStats() Stats {
	kindRows := map[ids.Kind]int{}
	kindBytes := map[ids.Kind]int64{}
	edgeRows := map[EdgeType]int{}
	edgeBytesBy := map[EdgeType]int64{}
	totalNodes, totalEdges := 0, 0

	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id, rec := range sh.nodes {
			totalNodes++
			k := id.Kind()
			kindRows[k]++
			b := int64(nodeOverheadBytes)
			for _, v := range rec.versions {
				b += int64(v.props.bytes())
			}
			kindBytes[k] += b
			for t := EdgeType(1); t < edgeTypeMax; t++ {
				n := len(rec.adj.out[t])
				if n > 0 {
					totalEdges += n
					edgeRows[t] += n
					edgeBytesBy[t] += int64(n * edgeBytes)
				}
				// In-edges are the reverse adjacency of the same logical
				// edge; count their space under the same table.
				if m := len(rec.adj.in[t]); m > 0 {
					edgeBytesBy[t] += int64(m * edgeBytes)
				}
			}
		}
		sh.mu.RUnlock()
	}

	var st Stats
	st.Nodes = totalNodes
	st.Edges = totalEdges
	for k, rows := range kindRows {
		st.Tables = append(st.Tables, TableStat{Name: k.String(), Rows: rows, Bytes: kindBytes[k]})
	}
	for t, rows := range edgeRows {
		st.Tables = append(st.Tables, TableStat{Name: t.String(), Rows: rows, Bytes: edgeBytesBy[t]})
	}
	sort.Slice(st.Tables, func(i, j int) bool { return st.Tables[i].Bytes > st.Tables[j].Bytes })

	for _, oi := range s.ordered {
		oi.mu.RLock()
		n := oi.tree.Len()
		oi.mu.RUnlock()
		st.Indexes = append(st.Indexes, IndexStat{
			Name:    oi.kind.String() + "." + oi.prop.String(),
			Entries: n,
			Bytes:   int64(n * indexEntryBytes),
		})
	}
	for _, hi := range s.hashed {
		hi.mu.RLock()
		n, b := 0, int64(0)
		for key, list := range hi.m {
			n += len(list)
			b += int64(len(key)) + int64(len(list)*8) + 48
		}
		hi.mu.RUnlock()
		st.Indexes = append(st.Indexes, IndexStat{
			Name:    hi.kind.String() + "." + hi.prop.String(),
			Entries: n,
			Bytes:   b,
		})
	}
	sort.Slice(st.Indexes, func(i, j int) bool { return st.Indexes[i].Bytes > st.Indexes[j].Bytes })
	return st
}
