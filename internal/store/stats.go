package store

import (
	"sort"
	"unsafe"

	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/intern"
)

// TableStat describes the approximate in-memory footprint of one logical
// "table" (node kind or edge type), for the Table 8 experiment.
type TableStat struct {
	Name  string
	Rows  int
	Bytes int64
}

// IndexStat describes one secondary index.
type IndexStat struct {
	Name    string
	Entries int
	Bytes   int64
}

// Stats is a storage-size report.
type Stats struct {
	Nodes   int
	Edges   int
	Tables  []TableStat // sorted by Bytes descending
	Indexes []IndexStat // sorted by Bytes descending

	// InternBytes is the footprint of the process-wide string intern table
	// (arena payload plus index). String property values everywhere in the
	// store are 4-byte symbols into it, so the payload is accounted once
	// here rather than per occurrence under Tables.
	InternBytes int64

	// View is the footprint of the store's cached snapshot view (zero if no
	// view has been built yet). It is era-aware: overlay rows accumulated by
	// delta refreshes since the era's compaction are counted, not just the
	// frozen base — a store serving a long refresh chain carries both.
	View ViewMem
}

// ViewMem breaks down the resident footprint of one SnapshotView.
// All byte figures are approximate heap footprints, consistent with
// ComputeStats.
type ViewMem struct {
	Era   uint64
	Nodes int // visible nodes, base plus refresh-appended
	Edges int // stored direction-entries (each logical edge counts twice)

	AdjBytes     int64 // encoded adjacency: shared varint slab + per-row offset indexes
	PropBytes    int64 // dense property slab + row offset index
	NodeBytes    int64 // ordinal tables: ordinal->ID slice and ID->ordinal map
	KindBytes    int64 // per-kind scan lists
	OverlayBytes int64 // copy-on-write refresh state: touched rows, props, appended ordinals, spill

	// AdjCacheBytes is the decode cache: rows the read path has actually
	// iterated, decoded once and kept as []Edge (codec.go). It grows with
	// the touched working set — zero for a store that is loaded but not
	// queried, bounded by UncompressedAdjBytes when every row is hot — and
	// is the price of serving hot-row iteration at materialised-slice
	// speed while AdjBytes stays the resident, authoritative form.
	AdjCacheBytes int64

	// UncompressedAdjBytes is what the frozen adjacency would occupy in the
	// pre-compaction layout (16-byte Edge structs in per-type slabs plus the
	// same row offsets) — the baseline AdjBytes is measured against.
	// UncompressedAdjBytes/AdjBytes is the codec's compression ratio.
	UncompressedAdjBytes int64
}

// TotalBytes is the view's whole footprint, decode cache included.
func (m ViewMem) TotalBytes() int64 {
	return m.AdjBytes + m.AdjCacheBytes + m.PropBytes + m.NodeBytes + m.KindBytes + m.OverlayBytes
}

// BytesPerNode is the all-in footprint divided over visible nodes.
func (m ViewMem) BytesPerNode() float64 {
	if m.Nodes == 0 {
		return 0
	}
	return float64(m.TotalBytes()) / float64(m.Nodes)
}

// BytesPerEdge is the adjacency footprint per stored direction-entry.
func (m ViewMem) BytesPerEdge() float64 {
	if m.Edges == 0 {
		return 0
	}
	return float64(m.AdjBytes) / float64(m.Edges)
}

const (
	viewEdgeBytes = 16 // Edge{To, Stamp} — the uncompressed per-entry cost
	mapEntryBytes = 24 // approximate per-entry bucket cost of a small-value map
	sliceHdrBytes = 24
)

// MemStats measures the view's resident footprint. The view is immutable,
// so the walk needs no locks; cost is proportional to the overlay (the
// frozen base is measured from slab lengths, not by iterating rows).
func (v *SnapshotView) MemStats() ViewMem {
	b := v.base
	m := ViewMem{Era: v.era, Nodes: v.NumNodes()}

	propSize := int64(unsafe.Sizeof(Prop{}))
	for t := EdgeType(1); t < edgeTypeMax; t++ {
		for _, c := range [2]*csr{&b.out[t], &b.in[t]} {
			if c.offsets == nil {
				continue
			}
			m.Edges += c.entries
			m.AdjBytes += c.bytes()
			m.AdjCacheBytes += c.cacheBytes()
			m.UncompressedAdjBytes += int64(c.entries)*viewEdgeBytes + int64(len(c.offsets))*4
		}
	}
	m.PropBytes = int64(len(b.props))*propSize + int64(len(b.propOff))*4
	m.NodeBytes = int64(len(b.nodes))*8 + int64(len(b.ord))*mapEntryBytes
	for _, list := range v.byKind {
		m.KindBytes += int64(len(list)) * 8
	}

	// Overlay state: refresh-appended ordinals, touched property rows and
	// decoded adjacency rows, plus any spill rows the encoder kept raw.
	m.OverlayBytes += int64(len(v.nodesOver))*8 + int64(len(v.ordOver))*mapEntryBytes
	for _, ps := range v.propsOver {
		m.OverlayBytes += mapEntryBytes + sliceHdrBytes + int64(len(ps))*propSize
	}
	for _, row := range v.edgeOver {
		m.Edges += len(row)
		m.OverlayBytes += mapEntryBytes + sliceHdrBytes + int64(len(row))*viewEdgeBytes
	}
	for _, row := range b.spill {
		m.Edges += len(row)
		m.OverlayBytes += mapEntryBytes + sliceHdrBytes + int64(len(row))*viewEdgeBytes
	}
	return m
}

const (
	nodeOverheadBytes = 64 // map entry + record header + version header
	edgeBytes         = 32 // edgeRec: peer + stamp + commit + del
	indexEntryBytes   = 24 // btree.Entry
)

// ComputeStats scans the store and reports per-table and per-index sizes.
// It takes shard read locks briefly per shard; sizes are approximate heap
// footprints (the analogue of Virtuoso's allocated database pages in
// Table 8).
func (s *Store) ComputeStats() Stats {
	kindRows := map[ids.Kind]int{}
	kindBytes := map[ids.Kind]int64{}
	edgeRows := map[EdgeType]int{}
	edgeBytesBy := map[EdgeType]int64{}
	totalNodes, totalEdges := 0, 0

	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id, rec := range sh.nodes {
			totalNodes++
			k := id.Kind()
			kindRows[k]++
			b := int64(nodeOverheadBytes)
			for _, v := range rec.versions {
				b += int64(v.props.bytes())
			}
			kindBytes[k] += b
			for t := EdgeType(1); t < edgeTypeMax; t++ {
				n := len(rec.adj.out[t])
				if n > 0 {
					totalEdges += n
					edgeRows[t] += n
					edgeBytesBy[t] += int64(n * edgeBytes)
				}
				// In-edges are the reverse adjacency of the same logical
				// edge; count their space under the same table.
				if m := len(rec.adj.in[t]); m > 0 {
					edgeBytesBy[t] += int64(m * edgeBytes)
				}
			}
		}
		sh.mu.RUnlock()
	}

	var st Stats
	st.Nodes = totalNodes
	st.Edges = totalEdges
	for k, rows := range kindRows {
		st.Tables = append(st.Tables, TableStat{Name: k.String(), Rows: rows, Bytes: kindBytes[k]})
	}
	for t, rows := range edgeRows {
		st.Tables = append(st.Tables, TableStat{Name: t.String(), Rows: rows, Bytes: edgeBytesBy[t]})
	}
	sort.Slice(st.Tables, func(i, j int) bool { return st.Tables[i].Bytes > st.Tables[j].Bytes })

	for _, oi := range s.ordered {
		oi.mu.RLock()
		n := oi.tree.Len()
		oi.mu.RUnlock()
		st.Indexes = append(st.Indexes, IndexStat{
			Name:    oi.kind.String() + "." + oi.prop.String(),
			Entries: n,
			Bytes:   int64(n * indexEntryBytes),
		})
	}
	for _, hi := range s.hashed {
		hi.mu.RLock()
		n, b := 0, int64(0)
		for key, list := range hi.m {
			n += len(list)
			b += int64(len(key)) + int64(len(list)*8) + 48
		}
		hi.mu.RUnlock()
		st.Indexes = append(st.Indexes, IndexStat{
			Name:    hi.kind.String() + "." + hi.prop.String(),
			Entries: n,
			Bytes:   b,
		})
	}
	sort.Slice(st.Indexes, func(i, j int) bool { return st.Indexes[i].Bytes > st.Indexes[j].Bytes })

	st.InternBytes = intern.Default.Bytes()
	// Measure the cached view as it is — era, overlays and all. Loading the
	// pointer rather than calling CurrentView keeps ComputeStats passive: it
	// reports what is resident, it does not trigger a refresh or rebuild
	// (and earlier revisions that re-measured only the frozen base
	// under-reported stores sitting at the end of a long refresh chain).
	if v := s.view.Load(); v != nil {
		st.View = v.MemStats()
	}
	return st
}
