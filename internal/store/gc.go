package store

// MVCC version garbage collection. Property updates append versions
// (SetProp); long benchmark runs against a mostly-insert workload keep
// chains short, but a production engine must be able to reclaim versions
// no active snapshot can see.

// GC prunes node-property versions that are invisible to every snapshot
// taken at or after horizon: for each node, the newest version with
// commit <= horizon is kept (it is what such snapshots read) and all older
// versions are dropped. It returns the number of versions reclaimed.
//
// The caller chooses the horizon; the conservative choice is the snapshot
// of the oldest still-running transaction (transactions record theirs via
// Txn.Snapshot).
func (s *Store) GC(horizon int64) int {
	reclaimed := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, rec := range sh.nodes {
			if len(rec.versions) < 2 {
				continue
			}
			// Find the newest version visible at the horizon.
			keep := 0
			for j := len(rec.versions) - 1; j >= 0; j-- {
				if rec.versions[j].commit <= horizon {
					keep = j
					break
				}
			}
			if keep == 0 {
				continue
			}
			reclaimed += keep
			rec.versions = append(rec.versions[:0:0], rec.versions[keep:]...)
		}
		sh.mu.Unlock()
	}
	return reclaimed
}

// VersionCount reports the total number of stored node versions
// (diagnostic; used by GC tests and capacity planning).
func (s *Store) VersionCount() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, rec := range sh.nodes {
			n += len(rec.versions)
		}
		sh.mu.RUnlock()
	}
	return n
}
