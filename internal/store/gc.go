package store

// MVCC garbage collection. Property updates append node versions (SetProp)
// and edge deletions leave tombstones (DeleteEdge); long runs against a
// mutating workload must be able to reclaim what no active snapshot can
// see.
//
// # The horizon and retained snapshot views
//
// GC's contract is purely timestamp-based: after GC(horizon), any read at a
// snapshot >= horizon is unaffected. The caller chooses the horizon; the
// conservative choice is the minimum over (a) the snapshot of the oldest
// still-running transaction (Txn.Snapshot) and (b) the oldest timestamp it
// will still pass to ViewAt.
//
// Retained SnapshotViews need no accounting: a view is fully materialised
// at construction (CSR slabs, property tables, copy-on-write overlays) and
// never reads the store again, so views frozen below the horizon stay
// correct after GC. The same holds for the delta refresh path — pending
// CommitDeltas carry the committed property lists and edge descriptors
// themselves, not references into version chains — so CurrentView's
// incremental maintenance is GC-safe at any horizon. Only ViewAt (and
// Begin) at a timestamp below the horizon can observe reclaimed state,
// which is why the horizon must cover them.
//
// # The horizon and durability
//
// Checkpoints (checkpoint.go) need no coordination with GC for the same
// reason views do not: the checkpointer serialises an already-materialised
// SnapshotView, never the live version chains, so GC running concurrently
// with a checkpoint cannot tear it. In the other direction, the durable
// side never constrains the horizon upward — recovery replays WAL records
// through the normal commit path against state at least as new as the
// newest checkpoint, so Persistent.CheckpointTS is always a safe component
// of the horizon: GC at or below it can never reclaim anything a restart
// still needs. Restoring a checkpoint is itself equivalent to a GC at the
// checkpoint's clock — history below it is flattened into single-version
// records (see checkpoint.go, "What restoring flattens").

// GC prunes MVCC debris invisible to every snapshot taken at or after
// horizon:
//
//   - node property versions: for each node, the newest version with
//     commit <= horizon is kept (it is what such snapshots read) and all
//     older versions are dropped;
//   - edge tombstones: adjacency entries whose deletion committed at or
//     before the horizon (del <= horizon) are invisible to every snapshot
//     >= horizon and are physically removed, preserving the insertion
//     order of the surviving entries.
//
// It returns the total number of reclaimed versions and edge records.
func (s *Store) GC(horizon int64) int {
	reclaimed := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, rec := range sh.nodes {
			reclaimed += gcVersions(rec, horizon)
			for t := EdgeType(1); t < edgeTypeMax; t++ {
				reclaimed += gcEdges(&rec.adj.out[t], horizon)
				reclaimed += gcEdges(&rec.adj.in[t], horizon)
			}
		}
		sh.mu.Unlock()
	}
	return reclaimed
}

// gcVersions drops property versions superseded at the horizon.
func gcVersions(rec *nodeRec, horizon int64) int {
	if len(rec.versions) < 2 {
		return 0
	}
	// Find the newest version visible at the horizon.
	keep := 0
	for j := len(rec.versions) - 1; j >= 0; j-- {
		if rec.versions[j].commit <= horizon {
			keep = j
			break
		}
	}
	if keep == 0 {
		return 0
	}
	rec.versions = append(rec.versions[:0:0], rec.versions[keep:]...)
	return keep
}

// gcEdges removes tombstoned entries dead at the horizon from one
// adjacency list, in place (the caller holds the shard's write lock; no
// concurrent reader aliases the backing array — views copy at build time).
func gcEdges(list *[]edgeRec, horizon int64) int {
	l := *list
	n := 0
	for i := range l {
		if l[i].del != 0 && l[i].del <= horizon {
			n++
		}
	}
	if n == 0 {
		return 0
	}
	out := l[:0]
	for i := range l {
		if !(l[i].del != 0 && l[i].del <= horizon) {
			out = append(out, l[i])
		}
	}
	*list = out
	return n
}

// VersionCount reports the total number of stored node versions
// (diagnostic; used by GC tests and capacity planning).
func (s *Store) VersionCount() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, rec := range sh.nodes {
			n += len(rec.versions)
		}
		sh.mu.RUnlock()
	}
	return n
}

// TombstoneCount reports the number of tombstoned adjacency entries not
// yet reclaimed (diagnostic for GC tests and capacity planning).
func (s *Store) TombstoneCount() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, rec := range sh.nodes {
			for t := EdgeType(1); t < edgeTypeMax; t++ {
				for j := range rec.adj.out[t] {
					if rec.adj.out[t][j].del != 0 {
						n++
					}
				}
				for j := range rec.adj.in[t] {
					if rec.adj.in[t][j].del != 0 {
						n++
					}
				}
			}
		}
		sh.mu.RUnlock()
	}
	return n
}
