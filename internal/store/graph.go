package store

import (
	"fmt"

	"ldbcsnb/internal/ids"
)

// EdgeType identifies one of the SNB schema's relations.
type EdgeType uint8

// SNB relations. Directions follow the schema: Knows is symmetric and
// stored in both directions; all others are stored as directed edges with
// reverse adjacency maintained automatically.
const (
	EdgeKnows        EdgeType = iota + 1 // Person  -> Person   (creationDate stamp)
	EdgeHasCreator                       // Message -> Person
	EdgeContainerOf                      // Forum   -> Post
	EdgeReplyOf                          // Comment -> Message
	EdgeLikes                            // Person  -> Message  (creationDate stamp)
	EdgeHasMember                        // Forum   -> Person   (joinDate stamp)
	EdgeHasModerator                     // Forum   -> Person
	EdgeHasTag                           // Message/Forum -> Tag
	EdgeHasInterest                      // Person  -> Tag
	EdgeIsLocatedIn                      // Person/Message/Org -> Place
	EdgeIsPartOf                         // Place   -> Place
	EdgeStudyAt                          // Person  -> Organisation (classYear stamp)
	EdgeWorkAt                           // Person  -> Organisation (workFrom stamp)
	EdgeHasType                          // Tag     -> TagClass
	EdgeIsSubclassOf                     // TagClass-> TagClass

	edgeTypeMax
)

var edgeNames = [edgeTypeMax]string{
	EdgeKnows: "knows", EdgeHasCreator: "hasCreator", EdgeContainerOf: "containerOf",
	EdgeReplyOf: "replyOf", EdgeLikes: "likes", EdgeHasMember: "hasMember",
	EdgeHasModerator: "hasModerator", EdgeHasTag: "hasTag", EdgeHasInterest: "hasInterest",
	EdgeIsLocatedIn: "isLocatedIn", EdgeIsPartOf: "isPartOf", EdgeStudyAt: "studyAt",
	EdgeWorkAt: "workAt", EdgeHasType: "hasType", EdgeIsSubclassOf: "isSubclassOf",
}

// String returns the schema name of the edge type.
func (t EdgeType) String() string {
	if int(t) < len(edgeNames) && edgeNames[t] != "" {
		return edgeNames[t]
	}
	return fmt.Sprintf("edge(%d)", uint8(t))
}

// Edge is one adjacency entry as seen by queries: the peer node and the
// edge's timestamp-like attribute (creationDate for knows/likes, joinDate
// for hasMember, classYear for studyAt, workFrom for workAt; 0 otherwise).
type Edge struct {
	To    ids.ID
	Stamp int64
}

// edgeRec is the stored adjacency entry: Edge plus MVCC visibility. A
// deletion does not remove the entry — it stamps del (a tombstone), so
// older snapshots keep seeing the edge; Store.GC reclaims tombstones no
// retained snapshot can see.
type edgeRec struct {
	peer   ids.ID
	stamp  int64
	commit int64 // commit timestamp; math.MaxInt64 while uncommitted
	del    int64 // deletion commit timestamp; 0 while live
}

// visibleAt reports whether the edge is visible to a snapshot at ts:
// inserted at or before ts and not yet deleted at ts.
func (e *edgeRec) visibleAt(ts int64) bool {
	return e.commit <= ts && (e.del == 0 || e.del > ts)
}

// nodeVersion is one MVCC version of a node's property list.
type nodeVersion struct {
	commit int64
	props  Props
}

// adjacency holds the typed in/out edge lists of one node. Lists are
// append-ordered; commit timestamps gate visibility.
type adjacency struct {
	out [edgeTypeMax][]edgeRec
	in  [edgeTypeMax][]edgeRec
}

// nodeRec is one stored node: a version chain (newest last) plus adjacency.
// The owning shard's lock guards all fields.
type nodeRec struct {
	id       ids.ID
	versions []nodeVersion
	adj      adjacency
}

// visibleProps returns the newest version visible at snapshot ts, or nil.
func (n *nodeRec) visibleProps(ts int64) (Props, bool) {
	for i := len(n.versions) - 1; i >= 0; i-- {
		if n.versions[i].commit <= ts {
			return n.versions[i].props, true
		}
	}
	return nil, false
}

// createdAt returns the commit timestamp of the first version.
func (n *nodeRec) createdAt() int64 {
	if len(n.versions) == 0 {
		return 0
	}
	return n.versions[0].commit
}
