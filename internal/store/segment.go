package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Segmented write-ahead log. A durable store (see Open in persist.go) keeps
// its redo log not as one unbounded stream but as a directory of numbered
// segment files: the active segment receives appends, and once it crosses
// the rotation threshold it is sealed (flushed, fsynced, closed) and a new
// segment opened. Sealing between records — a record never spans two
// segments — makes each sealed segment an immutable, independently
// verifiable unit, which is what checkpoint truncation needs: a segment
// whose records are all covered by the newest durable checkpoint can be
// deleted wholesale, bounding recovery work and disk use.
//
// Format (docs/FORMATS.md is the authoritative spec), little-endian:
//
//	segment  := header record*
//	header   := magic:u32 "SWAL" | version:u16 | reserved:u16 | firstTS:u64
//	record   := len:u32 crc:u32 payload          (identical to wal.go)
//
// firstTS is the commit timestamp of the first record appended to the
// segment. Commit timestamps within one lane are strictly increasing, and
// a lane rotates with a firstTS above every record of the segment it
// seals, so every record of lane segment N has a timestamp below
// firstTS(N+1) of the same lane: whether a sealed segment is wholly
// covered by a checkpoint at timestamp C is a pure header computation —
// firstTS(N+1) <= C+1 implies every record of N is <= C — with no record
// scan. (In the single-lane layout timestamps are consecutive integers
// and the rule is exact: lastTS(N) = firstTS(N+1)-1.)
const (
	segMagic      = 0x4C415753 // "SWAL"
	segVersion    = 1
	segHeaderSize = 16
)

// segPrefix/segSuffix name segment files. Lane 0 keeps the original
// single-lane name wal-<seq>.seg (a single-lane directory is byte-for-byte
// a v1 layout); lanes >= 1 are named wal-<lane>-<seq>.seg. seq is a
// per-lane monotone counter, zero-padded so lexical order equals numeric
// order within a lane.
const (
	segPrefix = "wal-"
	segSuffix = ".seg"
)

func segName(lane int, seq uint64) string {
	if lane == 0 {
		return fmt.Sprintf("%s%06d%s", segPrefix, seq, segSuffix)
	}
	return fmt.Sprintf("%s%d-%06d%s", segPrefix, lane, seq, segSuffix)
}

// segmentFile describes one on-disk WAL segment.
type segmentFile struct {
	lane    int
	seq     uint64
	firstTS int64
	path    string
	size    int64
}

// scanSegments lists the WAL directory's segment files ordered by (lane,
// sequence) and parses their headers. Both the single-lane name
// wal-<seq>.seg (read as lane 0) and the lane-qualified wal-<lane>-<seq>.seg
// are accepted; files that match neither are ignored. A file too short to
// hold a header, or holding an invalid one, is reported with firstTS < 0
// and left to the caller's policy (a lane's final segment may legitimately
// be a crash remnant; an earlier one is corruption).
func scanSegments(dir string) ([]segmentFile, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segmentFile
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		stem := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		lane := 0
		if i := strings.IndexByte(stem, '-'); i >= 0 {
			l, err := strconv.Atoi(stem[:i])
			if err != nil || l < 0 {
				continue
			}
			lane, stem = l, stem[i+1:]
		}
		seq, err := strconv.ParseUint(stem, 10, 64)
		if err != nil {
			continue
		}
		sf := segmentFile{lane: lane, seq: seq, firstTS: -1, path: filepath.Join(dir, name)}
		if info, err := e.Info(); err == nil {
			sf.size = info.Size()
		}
		if ts, err := readSegHeader(sf.path); err == nil {
			sf.firstTS = ts
		}
		segs = append(segs, sf)
	}
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].lane != segs[j].lane {
			return segs[i].lane < segs[j].lane
		}
		return segs[i].seq < segs[j].seq
	})
	return segs, nil
}

// readSegHeader validates a segment file's header and returns its firstTS.
func readSegHeader(path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close() //snb:errok read-only handle, no durability at stake
	var hdr [segHeaderSize]byte
	if _, err := f.Read(hdr[:]); err != nil {
		return 0, fmt.Errorf("%w: segment %s: short header", ErrCorrupt, filepath.Base(path))
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != segMagic {
		return 0, fmt.Errorf("%w: segment %s: bad magic", ErrCorrupt, filepath.Base(path))
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != segVersion {
		return 0, fmt.Errorf("store: segment %s: unsupported version %d", filepath.Base(path), v)
	}
	return int64(binary.LittleEndian.Uint64(hdr[8:16])), nil
}

// writeSegHeader writes a fresh segment header to f (which must be empty
// and positioned at 0).
func writeSegHeader(f *os.File, firstTS int64) error {
	var hdr [segHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], segMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], segVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(firstTS))
	_, err := f.Write(hdr[:])
	return err
}

// walSegments is the file-backed sink of one WAL lane: the lane's active
// segment plus rotation state. All mutating methods are called from the
// lane's single flusher goroutine (or, before the flushers start, from
// Open), so there is no internal locking; rotations is atomic because
// Stats reads it concurrently.
type walSegments struct {
	dir   string
	lane  int
	limit int64 // rotation threshold in bytes (logical, including header)

	f    *os.File
	seq  uint64
	size int64 // logical bytes written to the active segment (ahead of flush)

	rotations atomic.Int64
}

// defaultSegmentBytes is the rotation threshold when PersistOptions leaves
// SegmentBytes zero: small enough that checkpoint truncation keeps the tail
// short, large enough that rotation fsyncs stay rare.
const defaultSegmentBytes = 4 << 20

// openActiveSegment opens one lane's last scanned segment for appending
// after recovery truncated its torn tail to validLen, or creates segment 1
// when the lane is empty. segs must hold only this lane's segments in
// sequence order. nextTS is a commit timestamp above every recovered
// record (the recovered clock + 1), used for fresh headers.
func openActiveSegment(dir string, lane int, limit int64, segs []segmentFile, validLen int64, nextTS int64) (*walSegments, error) {
	if limit <= 0 {
		limit = defaultSegmentBytes
	}
	ws := &walSegments{dir: dir, lane: lane, limit: limit}
	if len(segs) == 0 {
		ws.seq = 1
		return ws, ws.create(nextTS)
	}
	last := segs[len(segs)-1]
	if last.firstTS < 0 {
		// Crash remnant: the file was created but its header never became
		// durable (rotation syncs the previous segment before creating the
		// next, so no durable record can be lost with it). Recreate it.
		ws.seq = last.seq
		if err := os.Remove(last.path); err != nil {
			return nil, err
		}
		return ws, ws.create(nextTS)
	}
	f, err := os.OpenFile(last.path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(validLen); err != nil {
		return nil, errors.Join(err, f.Close())
	}
	if _, err := f.Seek(validLen, 0); err != nil {
		return nil, errors.Join(err, f.Close())
	}
	ws.f = f
	ws.seq = last.seq
	ws.size = validLen
	return ws, nil
}

// create opens a fresh active segment file ws.seq with the given firstTS
// and makes its directory entry durable.
func (ws *walSegments) create(firstTS int64) error {
	path := filepath.Join(ws.dir, segName(ws.lane, ws.seq))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if err := writeSegHeader(f, firstTS); err != nil {
		return errors.Join(err, f.Close())
	}
	ws.f = f
	ws.size = segHeaderSize
	return syncDir(ws.dir)
}

// maybeRotate seals the active segment and opens the next one when
// appending recLen more bytes would cross the rotation threshold. nextTS is
// the commit timestamp of the incoming record — the new segment's firstTS.
// An active segment holding only its header never rotates (a record larger
// than the threshold gets a segment to itself).
func (ws *walSegments) maybeRotate(bw *bufio.Writer, recLen int64, nextTS int64) error {
	if ws.size <= segHeaderSize || ws.size+recLen <= ws.limit {
		return nil
	}
	return ws.rotate(bw, nextTS)
}

// rotate seals the active segment — flush, fsync, close — and opens the
// next one. The fsync-before-create ordering is the recovery invariant: if
// segment N+1 exists on disk, every record of segment N is durable, so the
// coverage rule lastTS(N) = firstTS(N+1)-1 can trust headers alone.
func (ws *walSegments) rotate(bw *bufio.Writer, nextTS int64) error {
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := ws.f.Sync(); err != nil {
		return err
	}
	if err := ws.f.Close(); err != nil {
		return err
	}
	ws.seq++
	ws.rotations.Add(1)
	if err := ws.create(nextTS); err != nil {
		return err
	}
	bw.Reset(ws.f)
	return nil
}

// sync flushes buffered records and fsyncs the active segment: every
// previously appended record is durable when it returns.
func (ws *walSegments) sync(bw *bufio.Writer) error {
	if err := bw.Flush(); err != nil {
		return err
	}
	return ws.f.Sync()
}

// close syncs and closes the active segment.
func (ws *walSegments) close(bw *bufio.Writer) error {
	if err := ws.sync(bw); err != nil {
		return err
	}
	return ws.f.Close()
}

// removeCoveredSegments deletes sealed segments wholly covered by a durable
// checkpoint at timestamp ckptTS: within each lane, segment i is removable
// when segment i+1 of the same lane exists and starts at or before ckptTS+1
// (per-lane monotone timestamps make the header comparison sound). A lane's
// active segment is never removed. Deletion runs in sequence order per
// lane, so a crash mid-way leaves each lane a contiguous suffix — recovery
// never sees a gap. Returns the number removed.
func removeCoveredSegments(dir string, ckptTS int64) (int, error) {
	segs, err := scanSegments(dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, lane := range segmentLanes(segs) {
		for i := 0; i+1 < len(lane); i++ {
			next := lane[i+1]
			if next.firstTS < 0 || next.firstTS > ckptTS+1 {
				break
			}
			if err := os.Remove(lane[i].path); err != nil {
				return removed, err
			}
			removed++
		}
	}
	if removed > 0 {
		if err := syncDir(dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// segmentLanes splits a (lane, seq)-ordered scanSegments listing into
// per-lane runs, preserving order.
func segmentLanes(segs []segmentFile) [][]segmentFile {
	var lanes [][]segmentFile
	for i := 0; i < len(segs); {
		j := i
		for j < len(segs) && segs[j].lane == segs[i].lane {
			j++
		}
		lanes = append(lanes, segs[i:j])
		i = j
	}
	return lanes
}

// syncDir fsyncs a directory so renames and removals within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// The Sync verdict below is the durability report; closing a directory
	// fd afterwards has nothing left to flush.
	defer d.Close() //snb:errok
	return d.Sync()
}
