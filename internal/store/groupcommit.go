package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"math"
	"sync"
	"sync/atomic"
)

// Group commit. The commit protocol splits into a short critical section —
// validate, install, claim the commit timestamp, serialise the redo record
// into a lane's pending buffer (all under commitMu) — and an asynchronous
// durability stage: one flusher goroutine per WAL lane drains its pending
// buffer in batches, writing the whole batch with one buffered write and,
// in fsync-on-commit mode, one fsync. Committers that need the durability
// guarantee park on a global watermark condition instead of performing the
// fsync themselves, so the fsync cost amortises across every writer that
// deposited into the batch.
//
// Lanes. Records are distributed round-robin over lanes by commit
// timestamp: lane(ts) = (ts-1) mod nLanes. Each record carries the global
// commit timestamp (appendCommitRecord), so the merged total order is
// reconstructible at recovery by sorting the union of the per-lane streams
// — see recovery.go. Within a lane timestamps are strictly increasing,
// which is the invariant segment-header coverage checks rely on
// (segment.go).
//
// Durability watermark. Lane i tracks oldestUnsynced — the commit
// timestamp of its oldest deposited-but-not-yet-fsynced record, or
// math.MaxInt64 when it has none. Because deposits happen in global
// timestamp order (under commitMu) and each lane's timestamps are
// monotone, every commit at or below min_i(oldestUnsynced_i) - 1 is
// durable on every lane. waitDurable(ts) blocks until that watermark
// reaches ts.
//
// Lock ordering: commitMu -> walLane.mu -> groupWAL.wmMu.

// WALSyncMode selects the durability barrier applied to each group-commit
// batch.
type WALSyncMode int

const (
	// SyncClose buffers records in the process; they reach the OS on
	// rotation, explicit Flush/Sync barriers, checkpoints and Close. A
	// process crash can lose the buffered tail.
	SyncClose WALSyncMode = iota
	// SyncFlush writes every batch to the OS (no fsync): a process crash
	// cannot lose a committed record, a machine crash can.
	SyncFlush
	// SyncCommit fsyncs every batch and holds Commit until the record is
	// durable: Commit returned => the transaction survives a machine crash.
	SyncCommit
)

func (m WALSyncMode) String() string {
	switch m {
	case SyncFlush:
		return "flush"
	case SyncCommit:
		return "commit"
	default:
		return "none"
	}
}

// errWALClosed is the sticky batcher error after close; a commit that
// deposits past it reports a partial log, mirroring a failed write.
var errWALClosed = errors.New("store: WAL closed")

// laneFor distributes commit timestamps round-robin over lanes.
func laneFor(ts int64, lanes int) int { return int((ts - 1) % int64(lanes)) }

// laneBarrier is a control message enqueued behind a lane's pending
// records: the flusher drains everything deposited before it, applies the
// requested flush/fsync/rotation, and signals done. Barriers implement
// FlushWAL, SyncWAL and rotateWAL on the batched path.
type laneBarrier struct {
	flush  bool
	sync   bool
	rotate bool
	done   chan error
}

// walLane is one WAL lane: a pending record buffer filled by committers
// and drained by the lane's flusher goroutine into its segmented file.
type walLane struct {
	id  int
	seg *walSegments  // flusher-owned after start (Open constructs it)
	bw  *bufio.Writer // flusher-owned

	mu       sync.Mutex
	cond     *sync.Cond    // signalled on deposit, barrier and close
	pending  []byte        // guarded by mu; serialised records awaiting the flusher
	count    int           // guarded by mu; records in pending
	firstTS  int64         // guarded by mu; commit ts of pending's first record
	spare    []byte        // guarded by mu; recycled batch buffer
	barriers []laneBarrier // guarded by mu
	closing  bool          // guarded by mu

	// oldestUnsynced is the commit timestamp of this lane's oldest record
	// not yet fsynced (math.MaxInt64 when every deposited record is
	// durable). It feeds the global durability watermark.
	oldestUnsynced int64 // guarded by wmMu

	lastTS int64 // flusher-owned; newest record ts written to the segment
}

// groupWAL is the group-commit batcher: the set of WAL lanes, their
// flusher goroutines, and the global durability watermark committers park
// on in SyncCommit mode.
type groupWAL struct {
	mode     WALSyncMode
	lanes    []*walLane
	maxBatch int // max records per flush batch; 0 = drain everything pending

	wmMu   sync.Mutex
	wmCond *sync.Cond
	err    error // guarded by wmMu; sticky first write/fsync failure

	// onAppend observes each record's size after the flusher writes it
	// (the checkpoint trigger hook); called off the commit path, so a
	// trigger can be slower than a commit without stalling writers.
	onAppend func(recBytes int)

	fsyncs  atomic.Int64
	batches atomic.Int64
	batched atomic.Int64

	wg sync.WaitGroup
}

// newGroupWAL wires one flusher per lane over the opened active segments.
// lastTS must be above every recovered record (the recovered clock), so an
// explicit rotation before any new deposit stamps a sound firstTS.
func newGroupWAL(mode WALSyncMode, segs []*walSegments, maxBatch int, lastTS int64, onAppend func(int)) *groupWAL {
	gw := &groupWAL{mode: mode, maxBatch: maxBatch, onAppend: onAppend}
	gw.wmCond = sync.NewCond(&gw.wmMu)
	for i, seg := range segs {
		l := &walLane{
			id:             i,
			seg:            seg,
			bw:             bufio.NewWriterSize(seg.f, 1<<16),
			oldestUnsynced: math.MaxInt64,
			lastTS:         lastTS,
		}
		l.cond = sync.NewCond(&l.mu)
		gw.lanes = append(gw.lanes, l)
	}
	for _, l := range gw.lanes {
		gw.wg.Add(1)
		go gw.flusher(l)
	}
	return gw
}

// deposit serialises one committed transaction into its lane's pending
// buffer and wakes the lane's flusher. Called under commitMu, so deposits
// happen in global commit-timestamp order — the property the durability
// watermark relies on. The caller still holds commitMu, so this must not
// block on IO; it only appends and signals.
func (gw *groupWAL) deposit(ts int64, created []*pendingNode, sets []pendingProp, edges []pendingEdge, dels []pendingDel) {
	l := gw.lanes[laneFor(ts, len(gw.lanes))]
	l.mu.Lock()
	if l.closing {
		l.mu.Unlock()
		gw.wmMu.Lock()
		if gw.err == nil {
			gw.err = errWALClosed
		}
		gw.wmCond.Broadcast()
		gw.wmMu.Unlock()
		return
	}
	if l.count == 0 {
		l.firstTS = ts
	}
	l.pending = appendCommitRecord(l.pending, ts, created, sets, edges, dels)
	l.count++
	l.cond.Signal()
	// Holding l.mu across the watermark update makes it atomic with the
	// append: the flusher recomputes oldestUnsynced under both locks, so it
	// can never overwrite this deposit's claim with a stale "drained".
	gw.wmMu.Lock()
	if l.oldestUnsynced == math.MaxInt64 {
		l.oldestUnsynced = ts
	}
	gw.wmMu.Unlock()
	l.mu.Unlock()
}

// watermarkLocked returns the newest commit timestamp durable on every
// lane: min over lanes of oldestUnsynced, minus one.
//
//snb:locked wmMu
func (gw *groupWAL) watermarkLocked() int64 {
	wm := int64(math.MaxInt64)
	for _, l := range gw.lanes {
		if l.oldestUnsynced <= wm {
			wm = l.oldestUnsynced - 1
		}
	}
	return wm
}

// waitDurable blocks until every commit at or below ts is fsynced (or the
// batcher has failed, returning the sticky error). SyncCommit committers
// call this after releasing commitMu.
func (gw *groupWAL) waitDurable(ts int64) error {
	gw.wmMu.Lock()
	defer gw.wmMu.Unlock()
	for gw.err == nil && gw.watermarkLocked() < ts {
		gw.wmCond.Wait()
	}
	return gw.err
}

// barrier enqueues b behind every lane's pending records and waits for all
// lanes to drain and acknowledge it. The returned error is the first lane
// failure, if any.
func (gw *groupWAL) barrier(b laneBarrier) error {
	b.done = make(chan error, len(gw.lanes))
	for _, l := range gw.lanes {
		l.mu.Lock()
		l.barriers = append(l.barriers, b)
		l.cond.Signal()
		l.mu.Unlock()
	}
	var err error
	for range gw.lanes {
		if e := <-b.done; e != nil && err == nil {
			err = e
		}
	}
	return err
}

// flusher is a lane's single writer goroutine: wait for pending records or
// a barrier, swap the pending buffer out (double-buffered, so committers
// never wait on IO), write the batch record-by-record through the lane's
// segment rotation logic, apply the batch's durability barrier, then
// publish the new durability watermark.
func (gw *groupWAL) flusher(l *walLane) {
	defer gw.wg.Done()
	for {
		l.mu.Lock()
		for l.count == 0 && len(l.barriers) == 0 && !l.closing {
			l.cond.Wait()
		}
		if l.closing && l.count == 0 && len(l.barriers) == 0 {
			l.mu.Unlock()
			return
		}
		batch := l.pending
		nrec := l.count
		l.pending = l.spare[:0]
		l.spare = nil
		l.count = 0
		if gw.maxBatch > 0 && nrec > gw.maxBatch {
			// Cap the batch: keep the tail pending. Records are
			// self-describing (len prefix), so the split offset is a scan.
			off := 0
			for i := 0; i < gw.maxBatch; i++ {
				off += 8 + int(binary.LittleEndian.Uint32(batch[off:]))
			}
			l.pending = append(l.pending, batch[off:]...)
			l.count = nrec - gw.maxBatch
			l.firstTS = int64(binary.LittleEndian.Uint64(batch[off+8:]))
			batch = batch[:off]
			nrec = gw.maxBatch
		}
		barriers := l.barriers
		l.barriers = nil
		l.mu.Unlock()

		// Write phase: flusher-owned state only, no locks held.
		var werr error
		synced := false
		for off := 0; off < len(batch); {
			rlen := 8 + int(binary.LittleEndian.Uint32(batch[off:]))
			rec := batch[off : off+rlen]
			ts := int64(binary.LittleEndian.Uint64(rec[8:16]))
			// Rotate before the append so a record never spans two
			// segments; the incoming record's timestamp becomes the new
			// segment's firstTS.
			if werr = l.seg.maybeRotate(l.bw, int64(rlen), ts); werr != nil {
				break
			}
			if _, werr = l.bw.Write(rec); werr != nil {
				break
			}
			l.seg.size += int64(rlen)
			l.lastTS = ts
			if gw.onAppend != nil {
				gw.onAppend(rlen)
			}
			off += rlen
		}
		needFlush := gw.mode == SyncFlush && nrec > 0
		needSync := gw.mode == SyncCommit && nrec > 0
		doRotate := false
		for _, b := range barriers {
			needFlush = needFlush || b.flush
			needSync = needSync || b.sync
			doRotate = doRotate || b.rotate
		}
		if werr == nil && doRotate && l.seg.size > segHeaderSize {
			// Rotation seals the active segment (flush+fsync+close inside)
			// with a firstTS above every record written, preserving the
			// per-lane header invariant.
			if werr = l.seg.rotate(l.bw, l.lastTS+1); werr == nil {
				gw.fsyncs.Add(1)
				synced = true
			}
		} else if werr == nil && needSync {
			if werr = l.seg.sync(l.bw); werr == nil {
				gw.fsyncs.Add(1)
				synced = true
			}
		} else if werr == nil && needFlush {
			werr = l.bw.Flush()
		}
		if nrec > 0 {
			gw.batches.Add(1)
			gw.batched.Add(int64(nrec))
		}

		// Publish: recompute the lane's oldest unsynced record and wake
		// watermark waiters. Both locks, in order, so a concurrent deposit
		// cannot be missed (see deposit).
		l.mu.Lock()
		gw.wmMu.Lock()
		if werr != nil && gw.err == nil {
			gw.err = werr
		}
		if synced && werr == nil {
			if l.count > 0 {
				l.oldestUnsynced = l.firstTS
			} else {
				l.oldestUnsynced = math.MaxInt64
			}
		}
		gw.wmCond.Broadcast()
		gw.wmMu.Unlock()
		if l.spare == nil {
			l.spare = batch[:0]
		}
		l.mu.Unlock()

		for _, b := range barriers {
			b.done <- werr
		}
	}
}

// close drains and fsyncs every lane, stops the flushers and closes the
// segment files. Further deposits fail with errWALClosed.
func (gw *groupWAL) close() error {
	err := gw.barrier(laneBarrier{sync: true})
	for _, l := range gw.lanes {
		l.mu.Lock()
		l.closing = true
		l.cond.Signal()
		l.mu.Unlock()
	}
	gw.wg.Wait()
	// Flushers have exited; segment ownership reverts here. The barrier
	// above already synced, but records may have raced in behind it, so
	// close with the full flush+fsync path.
	for _, l := range gw.lanes {
		if cerr := l.seg.close(l.bw); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// walBytes sums the logical record bytes (headers excluded) across every
// lane's active segment. Flushers own seg.size, so this is only exact at
// quiescence (after a barrier); Stats uses it for reporting.
func (gw *groupWAL) walBytes() int64 {
	var n int64
	for _, l := range gw.lanes {
		n += l.seg.size - segHeaderSize
	}
	return n
}

// rotationCount sums lane rotations (atomic; safe concurrent with
// flushers).
func (gw *groupWAL) rotationCount() int64 {
	var n int64
	for _, l := range gw.lanes {
		n += l.seg.rotations.Load()
	}
	return n
}
