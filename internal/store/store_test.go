package store

import (
	"errors"
	"sync"
	"testing"

	"ldbcsnb/internal/ids"
)

func personID(n uint32) ids.ID { return ids.Compose(ids.KindPerson, int64(n), 0) }
func postID(n uint32) ids.ID   { return ids.Compose(ids.KindPost, int64(n), 0) }

func TestCreateAndRead(t *testing.T) {
	s := New()
	tx := s.Begin()
	id := personID(1)
	if err := tx.CreateNode(id, Props{{PropFirstName, String("Karl")}, {PropCreationDate, Int64(100)}}); err != nil {
		t.Fatal(err)
	}
	// Own writes visible before commit.
	if got := tx.Prop(id, PropFirstName).Str(); got != "Karl" {
		t.Fatalf("own write invisible: %q", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	s.View(func(tx *Txn) {
		if !tx.Exists(id) {
			t.Fatal("node missing after commit")
		}
		if got := tx.Prop(id, PropFirstName).Str(); got != "Karl" {
			t.Fatalf("got %q", got)
		}
		if got := tx.Prop(id, PropCreationDate).Int(); got != 100 {
			t.Fatalf("got %d", got)
		}
		if !tx.Prop(id, PropContent).IsZero() {
			t.Fatal("absent property should be zero")
		}
	})
}

func TestSnapshotIsolationInvisibleUntilCommit(t *testing.T) {
	s := New()
	id := personID(2)
	reader := s.Begin() // snapshot before the write
	w := s.Begin()
	if err := w.CreateNode(id, Props{{PropFirstName, String("Hans")}}); err != nil {
		t.Fatal(err)
	}
	if reader.Exists(id) {
		t.Fatal("uncommitted node visible")
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if reader.Exists(id) {
		t.Fatal("node visible to older snapshot")
	}
	late := s.Begin()
	if !late.Exists(id) {
		t.Fatal("node invisible to newer snapshot")
	}
}

func TestDuplicateCreateConflict(t *testing.T) {
	s := New()
	id := personID(3)
	t1, t2 := s.Begin(), s.Begin()
	if err := t1.CreateNode(id, nil); err != nil {
		t.Fatal(err)
	}
	if err := t2.CreateNode(id, nil); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); !errors.Is(err, ErrExists) {
		t.Fatalf("want ErrExists, got %v", err)
	}
	if s.Aborts() != 1 {
		t.Fatalf("aborts = %d", s.Aborts())
	}
}

func TestWriteWriteConflict(t *testing.T) {
	s := New()
	id := personID(4)
	setup := s.Begin()
	setup.CreateNode(id, Props{{PropFirstName, String("a")}})
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	t1, t2 := s.Begin(), s.Begin()
	t1.SetProp(id, PropFirstName, String("b"))
	t2.SetProp(id, PropFirstName, String("c"))
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("want ErrConflict, got %v", err)
	}
	s.View(func(tx *Txn) {
		if got := tx.Prop(id, PropFirstName).Str(); got != "b" {
			t.Fatalf("first committer should win, got %q", got)
		}
	})
}

func TestSetPropVersioning(t *testing.T) {
	s := New()
	id := personID(5)
	tx := s.Begin()
	tx.CreateNode(id, Props{{PropFirstName, String("v1")}})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	old := s.Begin() // snapshot at version 1
	up := s.Begin()
	up.SetProp(id, PropFirstName, String("v2"))
	if err := up.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := old.Prop(id, PropFirstName).Str(); got != "v1" {
		t.Fatalf("old snapshot sees %q", got)
	}
	s.View(func(tx *Txn) {
		if got := tx.Prop(id, PropFirstName).Str(); got != "v2" {
			t.Fatalf("new snapshot sees %q", got)
		}
	})
}

func TestEdgesDirectedAndReverse(t *testing.T) {
	s := New()
	p, m := personID(6), postID(1)
	tx := s.Begin()
	tx.CreateNode(p, nil)
	tx.CreateNode(m, nil)
	tx.AddEdge(m, EdgeHasCreator, p, 777)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	s.View(func(tx *Txn) {
		out := tx.Out(m, EdgeHasCreator)
		if len(out) != 1 || out[0].To != p || out[0].Stamp != 777 {
			t.Fatalf("out = %v", out)
		}
		in := tx.In(p, EdgeHasCreator)
		if len(in) != 1 || in[0].To != m {
			t.Fatalf("in = %v", in)
		}
		if tx.OutDegree(m, EdgeHasCreator) != 1 {
			t.Fatal("OutDegree")
		}
	})
}

func TestKnowsSymmetric(t *testing.T) {
	s := New()
	a, b := personID(7), personID(8)
	tx := s.Begin()
	tx.CreateNode(a, nil)
	tx.CreateNode(b, nil)
	tx.AddKnows(a, b, 123)
	// Own-write overlay must show both directions pre-commit.
	if len(tx.Out(a, EdgeKnows)) != 1 || len(tx.Out(b, EdgeKnows)) != 1 {
		t.Fatal("own knows edges invisible")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	s.View(func(tx *Txn) {
		oa, ob := tx.Out(a, EdgeKnows), tx.Out(b, EdgeKnows)
		if len(oa) != 1 || oa[0].To != b || oa[0].Stamp != 123 {
			t.Fatalf("a->b = %v", oa)
		}
		if len(ob) != 1 || ob[0].To != a {
			t.Fatalf("b->a = %v", ob)
		}
	})
}

func TestReadOnlyRejectsWrites(t *testing.T) {
	s := New()
	s.View(func(tx *Txn) {
		if err := tx.CreateNode(personID(9), nil); err == nil {
			t.Fatal("read-only create allowed")
		}
		if err := tx.AddEdge(personID(9), EdgeKnows, personID(10), 0); err == nil {
			t.Fatal("read-only edge allowed")
		}
		if err := tx.SetProp(personID(9), PropFirstName, String("x")); err == nil {
			t.Fatal("read-only setprop allowed")
		}
	})
}

func TestNodesOfKindVisibility(t *testing.T) {
	s := New()
	for i := uint32(0); i < 10; i++ {
		tx := s.Begin()
		tx.CreateNode(personID(100+i), nil)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	mid := s.Begin()
	tx := s.Begin()
	tx.CreateNode(personID(200), nil)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := len(mid.NodesOfKind(ids.KindPerson)); got != 10 {
		t.Fatalf("mid snapshot sees %d persons", got)
	}
	s.View(func(tx *Txn) {
		if got := len(tx.NodesOfKind(ids.KindPerson)); got != 11 {
			t.Fatalf("late snapshot sees %d persons", got)
		}
	})
}

func TestOrderedIndex(t *testing.T) {
	s := New()
	s.RegisterOrderedIndex(ids.KindPost, PropCreationDate)
	tx := s.Begin()
	for i := uint32(0); i < 50; i++ {
		tx.CreateNode(postID(i), Props{{PropCreationDate, Int64(int64(1000 - i))}})
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	s.View(func(tx *Txn) {
		var keys []int64
		err := tx.AscendIndex(ids.KindPost, PropCreationDate, 975, func(k int64, id ids.ID) bool {
			keys = append(keys, k)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) != 26 { // 975..1000
			t.Fatalf("got %d keys", len(keys))
		}
		for i := 1; i < len(keys); i++ {
			if keys[i] < keys[i-1] {
				t.Fatal("index scan out of order")
			}
		}
	})
	// Missing index errors.
	s.View(func(tx *Txn) {
		if err := tx.AscendIndex(ids.KindComment, PropCreationDate, 0, nil); err == nil {
			t.Fatal("expected error for unregistered index")
		}
	})
}

func TestHashIndex(t *testing.T) {
	s := New()
	s.RegisterHashIndex(ids.KindPerson, PropFirstName)
	tx := s.Begin()
	tx.CreateNode(personID(11), Props{{PropFirstName, String("Karl")}})
	tx.CreateNode(personID(12), Props{{PropFirstName, String("Karl")}})
	tx.CreateNode(personID(13), Props{{PropFirstName, String("Hans")}})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	s.View(func(tx *Txn) {
		karls, err := tx.LookupHash(ids.KindPerson, PropFirstName, "Karl")
		if err != nil {
			t.Fatal(err)
		}
		if len(karls) != 2 {
			t.Fatalf("got %d Karls", len(karls))
		}
		none, _ := tx.LookupHash(ids.KindPerson, PropFirstName, "Nobody")
		if len(none) != 0 {
			t.Fatal("phantom hash hits")
		}
		if _, err := tx.LookupHash(ids.KindPost, PropContent, "x"); err == nil {
			t.Fatal("expected error for unregistered hash index")
		}
	})
}

func TestConcurrentInsertersAndReaders(t *testing.T) {
	s := New()
	const writers = 4
	const perWriter = 300
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tx := s.Begin()
				id := ids.Compose(ids.KindPost, int64(i), uint32(w))
				tx.CreateNode(id, Props{{PropCreationDate, Int64(int64(i))}})
				if w > 0 {
					tx.AddEdge(id, EdgeHasCreator, personID(uint32(w)), int64(i))
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	var rg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.View(func(tx *Txn) {
					// Snapshot must be internally consistent: every listed
					// node must be visible.
					for _, id := range tx.NodesOfKind(ids.KindPost) {
						if !tx.Exists(id) {
							t.Error("listed node invisible")
							return
						}
					}
				})
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	s.View(func(tx *Txn) {
		if got := len(tx.NodesOfKind(ids.KindPost)); got != writers*perWriter {
			t.Fatalf("got %d posts, want %d", got, writers*perWriter)
		}
	})
	if s.Commits() < writers*perWriter {
		t.Fatalf("commits = %d", s.Commits())
	}
}

func TestAbort(t *testing.T) {
	s := New()
	tx := s.Begin()
	tx.CreateNode(personID(20), nil)
	tx.Abort()
	s.View(func(v *Txn) {
		if v.Exists(personID(20)) {
			t.Fatal("aborted write visible")
		}
	})
	if err := tx.Commit(); err == nil {
		t.Fatal("commit after abort should fail")
	}
}

func TestEmptyCommit(t *testing.T) {
	s := New()
	tx := s.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if s.LastCommit() != 0 {
		t.Fatal("empty commit advanced the clock")
	}
}

func TestCreateTwiceInTxn(t *testing.T) {
	s := New()
	tx := s.Begin()
	if err := tx.CreateNode(personID(21), nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.CreateNode(personID(21), nil); !errors.Is(err, ErrExists) {
		t.Fatalf("want ErrExists, got %v", err)
	}
}

func TestStats(t *testing.T) {
	s := New()
	s.RegisterOrderedIndex(ids.KindPost, PropCreationDate)
	tx := s.Begin()
	p := personID(30)
	tx.CreateNode(p, Props{{PropFirstName, String("Karl")}})
	for i := uint32(0); i < 20; i++ {
		m := postID(300 + i)
		tx.CreateNode(m, Props{{PropContent, String("hello world, this is content")}, {PropCreationDate, Int64(int64(i))}})
		tx.AddEdge(m, EdgeHasCreator, p, int64(i))
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	st := s.ComputeStats()
	if st.Nodes != 21 {
		t.Fatalf("nodes = %d", st.Nodes)
	}
	if st.Edges != 20 {
		t.Fatalf("edges = %d", st.Edges)
	}
	if len(st.Tables) == 0 || len(st.Indexes) != 1 {
		t.Fatalf("tables=%d indexes=%d", len(st.Tables), len(st.Indexes))
	}
	if st.Tables[0].Name != "Post" {
		t.Fatalf("largest table should be Post, got %s", st.Tables[0].Name)
	}
	if st.Indexes[0].Entries != 20 {
		t.Fatalf("index entries = %d", st.Indexes[0].Entries)
	}
}

func TestPropsCopyIsolated(t *testing.T) {
	s := New()
	id := personID(40)
	tx := s.Begin()
	tx.CreateNode(id, Props{{PropFirstName, String("a")}})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	s.View(func(tx *Txn) {
		ps, ok := tx.Props(id)
		if !ok {
			t.Fatal("missing")
		}
		ps[0].Val = String("mutated")
	})
	s.View(func(tx *Txn) {
		if got := tx.Prop(id, PropFirstName).Str(); got != "a" {
			t.Fatalf("caller mutation leaked into store: %q", got)
		}
	})
}
