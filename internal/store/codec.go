package store

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"ldbcsnb/internal/ids"
)

// Varint/delta adjacency codec. A frozen view's bulk is its adjacency; the
// PR 1 layout spent 16 bytes per stored direction-entry ([]Edge slab). The
// compact layout encodes each row into a shared byte slab:
//
//	row   := uvarint(count) entry*
//	entry := uvarint(zigzag(ordinal delta)) uvarint(zigzag(stamp delta))
//
// Neighbours are stored as view ordinals (4-byte dense indexes, resolved
// back to IDs through viewBase.nodes at decode time), and both the ordinal
// and the stamp are delta-coded against the previous entry of the same row.
// Rows keep insertion order — the Reader contract — so deltas are zigzag-
// coded rather than strictly ascending gaps; insertion order follows
// creation time, and time-ordered IDs (internal/ids) make consecutive
// ordinals and stamps near-neighbours, which is exactly the locality the
// delta coding exploits. Typical rows land between 2 and 6 bytes per entry
// against the fixed 16.
//
// Reads are served through the per-row decode cache (decCache below): each
// row is decoded out of the slab once, on first read, and every later read
// returns the same materialised []Edge — so steady-state iteration is a
// plain slice range, the PR 1 zero-alloc contract holds after first touch,
// and the encoded slab stays the resident, authoritative form.

// zigzag maps signed deltas onto unsigned varint-friendly space.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag is the inverse of zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendAdjRow encodes one adjacency row onto dst. ord resolves a neighbour
// ID to its view ordinal; ok=false (with dst unchanged) means some
// neighbour had no ordinal and the caller must keep the row uncompressed —
// defensive only, every edge endpoint of a consistent view is visible and
// ordinal-mapped.
func appendAdjRow(dst []byte, row []Edge, ord map[ids.ID]int32) ([]byte, bool) {
	mark := len(dst)
	dst = binary.AppendUvarint(dst, uint64(len(row)))
	prevOrd, prevStamp := int64(0), int64(0)
	for _, e := range row {
		o, ok := ord[e.To]
		if !ok {
			return dst[:mark], false
		}
		dst = binary.AppendUvarint(dst, zigzag(int64(o)-prevOrd))
		dst = binary.AppendUvarint(dst, zigzag(e.Stamp-prevStamp))
		prevOrd, prevStamp = int64(o), e.Stamp
	}
	return dst, true
}

// csr is one compact compressed-sparse-row adjacency of a viewBase: the
// encoded rows of every ordinal in [lo, lo+rows), back to back in data,
// delimited by the per-row byte-offset index. offsets is trimmed to the
// ordinal range that has any edge of this type/direction — ID-sorted
// ordinals group nodes by kind, so e.g. the knows CSR only carries offsets
// across the Person range instead of 4 bytes for every node in the view.
type csr struct {
	lo      int32    // first ordinal covered by offsets
	offsets []uint32 // byte offsets into data; row i of ordinal lo+i is data[offsets[i]:offsets[i+1]]
	data    []byte   // subslice of the view's shared slab
	entries int      // total encoded direction-entries, for stats
	dec     *decCache
}

// decCache is a csr's lazy per-row decode cache. Rows are decoded once,
// on first read, and every later read serves the decoded slice — hot-loop
// iteration runs at materialised-slice speed while the encoded slab stays
// the resident, authoritative form. The row table itself (8 bytes per row)
// is only allocated once some row of this csr is actually read, so a store
// that is loaded but not queried pays 0 bytes beyond this header, and the
// decoded bytes grow with the touched working set, never past the raw size
// of the relation. ViewMem.AdjCacheBytes reports the current footprint.
//
// Publication is a benign race: two readers may decode the same row
// concurrently, both results are identical, and the losing slice is
// garbage. Serialisation paths (checkpoint, delta refresh) use appendRow,
// which never populates the cache — a full-store walk must not inflate it.
type decCache struct {
	mu   sync.Mutex // guards allocation of rows
	rows atomic.Pointer[[]atomic.Pointer[[]Edge]]
}

// rowAt returns one ordinal's row. nodes is the owning view's ordinal
// table. The hot path — row already published — is a handful of loads and
// one bounds check (checked against the cache table, which has exactly one
// slot per offsets row), chosen small enough for the compiler to inline
// into Out/In; everything else falls through to decodeRowAt.
//
//snb:noalloc
func (c *csr) rowAt(ord int32, nodes []ids.ID) []Edge {
	if d := c.dec; d != nil {
		if tbl := d.rows.Load(); tbl != nil {
			if i := int(ord) - int(c.lo); uint(i) < uint(len(*tbl)) {
				if p := (*tbl)[i].Load(); p != nil {
					return *p
				}
			}
		}
	}
	return c.decodeRowAt(ord, nodes)
}

// decodeRowAt decodes one row off the slab and publishes it to the decode
// cache (when the csr has one — hand-built test csrs may not). Empty rows
// publish too: a nil-slice entry is one pointer that spares every later
// read of that row the slab round trip.
func (c *csr) decodeRowAt(ord int32, nodes []ids.ID) []Edge {
	i := int(ord) - int(c.lo)
	if i < 0 || i+1 >= len(c.offsets) {
		return nil
	}
	var row []Edge
	if b := c.data[c.offsets[i]:c.offsets[i+1]]; len(b) > 0 {
		count, n := binary.Uvarint(b)
		row = decodeRow(make([]Edge, 0, count), b[n:], int(count), nodes)
	}
	if d := c.dec; d != nil {
		tbl := d.rows.Load()
		if tbl == nil {
			d.mu.Lock()
			if tbl = d.rows.Load(); tbl == nil {
				fresh := make([]atomic.Pointer[[]Edge], len(c.offsets)-1)
				d.rows.Store(&fresh)
				tbl = &fresh
			}
			d.mu.Unlock()
		}
		(*tbl)[i].Store(&row)
	}
	return row
}

// decodeEntry decodes one (ordinal delta, stamp delta) entry off the front
// of b, returning the remaining bytes and the advanced accumulators. The
// caller guarantees at least one full entry remains — every entry is at
// least two bytes, so b[1] is in bounds. The common shape, both deltas
// fitting one varint byte, stays branch-local; everything else takes the
// generic Uvarint path.
func decodeEntry(b []byte, ord, stamp int64) ([]byte, int64, int64) {
	if b[0]|b[1] < 0x80 {
		return b[2:], ord + unzigzag(uint64(b[0])), stamp + unzigzag(uint64(b[1]))
	}
	u, i := binary.Uvarint(b)
	u2, m := binary.Uvarint(b[i:])
	return b[i+m:], ord + unzigzag(u), stamp + unzigzag(u2)
}

// decodeRow appends count decoded entries of b onto dst.
func decodeRow(dst []Edge, b []byte, count int, nodes []ids.ID) []Edge {
	var o, st int64
	for j := 0; j < count; j++ {
		b, o, st = decodeEntry(b, o, st)
		dst = append(dst, Edge{To: nodes[o], Stamp: st})
	}
	return dst
}

// appendRow appends one ordinal's decoded row onto dst without touching
// the decode cache: the materialisation path for full-store walks
// (checkpoint serialisation, delta refresh copy-out) that must not
// inflate the cache to the raw size of the store.
func (c *csr) appendRow(dst []Edge, ord int32, nodes []ids.ID) []Edge {
	i := int(ord) - int(c.lo)
	if i < 0 || i+1 >= len(c.offsets) {
		return dst
	}
	b := c.data[c.offsets[i]:c.offsets[i+1]]
	if len(b) == 0 {
		return dst
	}
	count, n := binary.Uvarint(b)
	return decodeRow(dst, b[n:], int(count), nodes)
}

// cacheBytes reports the decode cache's current heap footprint: the row
// table plus every published row. Approximate (slice headers and
// allocator rounding excluded) but monotonic and race-safe.
func (c *csr) cacheBytes() int64 {
	if c.dec == nil {
		return 0
	}
	tbl := c.dec.rows.Load()
	if tbl == nil {
		return 0
	}
	total := int64(len(*tbl)) * 8
	for i := range *tbl {
		if p := (*tbl)[i].Load(); p != nil {
			total += int64(len(*p)) * 16
		}
	}
	return total
}

// degreeAt returns the row's entry count without decoding entries: one
// uvarint read off the row head.
//
//snb:noalloc
func (c *csr) degreeAt(ord int32) int {
	i := int(ord) - int(c.lo)
	if i < 0 || i+1 >= len(c.offsets) {
		return 0
	}
	b := c.data[c.offsets[i]:c.offsets[i+1]]
	if len(b) == 0 {
		return 0
	}
	count, _ := binary.Uvarint(b)
	return int(count)
}

// bytes returns the heap footprint of the CSR (slab share plus offsets).
func (c *csr) bytes() int64 {
	return int64(len(c.data)) + int64(len(c.offsets))*4
}
