package store

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/xrand"
)

// buildLogged creates a store with a WAL and writes a small graph through
// several transactions, returning the log bytes.
func buildLogged(t *testing.T) ([]byte, *Store) {
	t.Helper()
	var log bytes.Buffer
	st := New()
	st.RegisterOrderedIndex(ids.KindPost, PropCreationDate)
	st.AttachWAL(&log)

	p := personID(500)
	tx := st.Begin()
	if err := tx.CreateNode(p, Props{{PropFirstName, String("Karl")}}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 25; i++ {
		tx := st.Begin()
		m := postID(500 + i)
		tx.CreateNode(m, Props{
			{PropCreationDate, Int64(int64(i) * 10)},
			{PropContent, String("hello wal")},
		})
		tx.AddEdge(m, EdgeHasCreator, p, int64(i)*10)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	tx = st.Begin()
	tx.SetProp(p, PropFirstName, String("Karl II"))
	tx.AddKnows(p, personID(501), 77)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// One edge deletion, so recovery replays tombstones too.
	tx = st.Begin()
	if err := tx.DeleteEdge(postID(500), EdgeHasCreator, p); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := st.FlushWAL(); err != nil {
		t.Fatal(err)
	}
	return log.Bytes(), st
}

func TestWALRecoverRoundTrip(t *testing.T) {
	logBytes, orig := buildLogged(t)
	if len(logBytes) == 0 {
		t.Fatal("empty WAL")
	}
	re := New()
	re.RegisterOrderedIndex(ids.KindPost, PropCreationDate)
	n, err := re.Recover(bytes.NewReader(logBytes))
	if err != nil {
		t.Fatal(err)
	}
	if n != 28 {
		t.Fatalf("replayed %d txns, want 28", n)
	}
	// The recovered store answers queries identically.
	p := personID(500)
	re.View(func(tx *Txn) {
		if got := tx.Prop(p, PropFirstName).Str(); got != "Karl II" {
			t.Fatalf("recovered name %q", got)
		}
		// One hasCreator edge was tombstoned by the final logged txn.
		if got := len(tx.In(p, EdgeHasCreator)); got != 24 {
			t.Fatalf("recovered messages %d", got)
		}
		if got := len(tx.Out(postID(500), EdgeHasCreator)); got != 0 {
			t.Fatalf("tombstoned edge visible after recovery: %d", got)
		}
		if got := len(tx.Out(p, EdgeKnows)); got != 1 {
			t.Fatalf("recovered knows %d", got)
		}
		count := 0
		if err := tx.AscendIndex(ids.KindPost, PropCreationDate, 0, func(int64, ids.ID) bool {
			count++
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if count != 25 {
			t.Fatalf("recovered index entries %d", count)
		}
	})
	// Stats parity (same logical content).
	so, sr := orig.ComputeStats(), re.ComputeStats()
	if so.Nodes != sr.Nodes || so.Edges != sr.Edges {
		t.Fatalf("stats diverge: %d/%d vs %d/%d", so.Nodes, so.Edges, sr.Nodes, sr.Edges)
	}
}

func TestWALTornTail(t *testing.T) {
	logBytes, _ := buildLogged(t)
	// Truncate mid-record: recovery must apply the clean prefix and stop
	// without error (crash-consistent redo).
	for _, cut := range []int{1, 7, len(logBytes) / 2, len(logBytes) - 3} {
		re := New()
		re.RegisterOrderedIndex(ids.KindPost, PropCreationDate)
		n, err := re.Recover(bytes.NewReader(logBytes[:cut]))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if n < 0 || n > 27 {
			t.Fatalf("cut %d: applied %d", cut, n)
		}
	}
}

func TestWALCorruptPayload(t *testing.T) {
	logBytes, _ := buildLogged(t)
	bad := append([]byte(nil), logBytes...)
	bad[12] ^= 0xFF // flip a payload byte of the first record
	re := New()
	_, err := re.Recover(bytes.NewReader(bad))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

// TestWALCorruptInsideRotatedSegment extends the torn-write coverage to
// the segmented on-disk log: a CRC failure inside a sealed (rotated,
// non-final) segment is not a recoverable torn tail — recovery must stop
// at the bad record and the error must name the segment and satisfy
// errors.Is(err, ErrCorrupt), so an operator knows which file to restore.
func TestWALCorruptInsideRotatedSegment(t *testing.T) {
	dir := t.TempDir()
	opts := PersistOptions{CheckpointBytes: -1, SegmentBytes: 256}
	p, _, err := Open(dir, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(31)
	var pop []ids.ID
	for step := 1; step <= 6; step++ {
		pop = randomGraphStep(t, p.Store, r, pop, step)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := scanSegments(filepath.Join(dir, "wal"))
	if err != nil || len(segs) < 3 {
		t.Fatalf("want >=3 rotated segments, got %d (%v)", len(segs), err)
	}
	victim := segs[1] // sealed mid-chain segment
	data, err := os.ReadFile(victim.path)
	if err != nil {
		t.Fatal(err)
	}
	data[segHeaderSize+12] ^= 0xFF // flip a payload byte of its first record
	if err := os.WriteFile(victim.path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = Open(dir, PersistOptions{CheckpointBytes: -1}, nil)
	if err == nil {
		t.Fatal("recovery accepted a corrupt sealed segment")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if !strings.Contains(err.Error(), filepath.Base(victim.path)) {
		t.Fatalf("error does not report the corrupt segment: %v", err)
	}
}

func TestWALEmptyLog(t *testing.T) {
	re := New()
	n, err := re.Recover(bytes.NewReader(nil))
	if err != nil || n != 0 {
		t.Fatalf("empty log: n=%d err=%v", n, err)
	}
}

func TestWALOrderPreservesVersions(t *testing.T) {
	// Two SetProps in separate transactions must replay in order.
	var log bytes.Buffer
	st := New()
	st.AttachWAL(&log)
	p := personID(600)
	tx := st.Begin()
	tx.CreateNode(p, Props{{PropFirstName, String("v1")}})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"v2", "v3", "v4"} {
		tx := st.Begin()
		tx.SetProp(p, PropFirstName, String(v))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.FlushWAL(); err != nil {
		t.Fatal(err)
	}
	re := New()
	if _, err := re.Recover(bytes.NewReader(log.Bytes())); err != nil {
		t.Fatal(err)
	}
	re.View(func(tx *Txn) {
		if got := tx.Prop(p, PropFirstName).Str(); got != "v4" {
			t.Fatalf("final version %q", got)
		}
	})
}

// walPendings builds one representative committed-transaction shape (a
// node with properties, a property update, a symmetric edge and an edge
// tombstone) for exercising logCommit directly.
func walPendings() ([]*pendingNode, []pendingProp, []pendingEdge, []pendingDel) {
	created := []*pendingNode{{id: personID(1), props: Props{
		{Key: PropFirstName, Val: String("Ada")},
		{Key: PropCreationDate, Val: Int64(7)},
	}}}
	sets := []pendingProp{{id: personID(1), key: PropLastName, val: String("L")}}
	edges := []pendingEdge{{from: personID(1), to: personID(2), t: EdgeKnows, stamp: 3, sym: true}}
	dels := []pendingDel{{from: personID(1), to: personID(2), t: EdgeKnows}}
	return created, sets, edges, dels
}

// TestLogCommitZeroAlloc pins the write path's pooled-encode contract:
// once the writer's record buffer has warmed to the record size, logging
// a commit allocates nothing — the whole record (header + payload) is
// assembled in the reused buffer and written with a single buffered Write.
func TestLogCommitZeroAlloc(t *testing.T) {
	st := New()
	st.AttachWAL(io.Discard)
	created, sets, edges, dels := walPendings()
	logOne := func() {
		if err := st.logCommit(9, created, sets, edges, dels); err != nil {
			t.Fatal(err)
		}
	}
	logOne() // warm the pooled buffer
	if allocs := testing.AllocsPerRun(100, logOne); allocs != 0 {
		t.Fatalf("logCommit allocates %.1f times per record, want 0", allocs)
	}
}

// BenchmarkWALLogCommit measures the redo-record encode+append cost per
// commit in isolation (run with -benchmem; steady state must report
// 0 allocs/op).
func BenchmarkWALLogCommit(b *testing.B) {
	st := New()
	st.AttachWAL(io.Discard)
	created, sets, edges, dels := walPendings()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := st.logCommit(int64(i), created, sets, edges, dels); err != nil {
			b.Fatal(err)
		}
	}
}
