package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"ldbcsnb/internal/btree"
	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/intern"
)

// Durable checkpoints. A checkpoint is the visible state of the store at
// one commit timestamp C, serialised to a single versioned, CRC-protected
// file: every visible node with its property list and adjacency, the
// per-kind scan lists, the secondary-index contents, and the commit clock.
// Recovery (Open in persist.go) loads the newest valid checkpoint and
// replays only the WAL records with timestamps above C — the "checkpoint +
// tail" path that replaces full log replay.
//
// # Checkpoints serialise a frozen view
//
// The writer walks a SnapshotView, never the live shards: the view is
// immutable after construction (CSR slabs plus copy-on-write overlays), so
// serialisation runs concurrently with commits, GC and view compaction
// without any stop-the-world on the write path. An era bump mid-checkpoint
// is harmless — the held view stays frozen regardless of what the cached
// view does — and GC is harmless for the same reason views are GC-immune
// (see gc.go: a view never reads the store after construction).
//
// # What restoring flattens
//
// Restoring a checkpoint rebuilds the store as if every visible fact had
// committed at timestamp C: MVCC history below C (superseded property
// versions, tombstoned edges) is not in the file and cannot be recovered
// from it. That is exactly the Store.GC contract with horizon C — any read
// at a snapshot >= C is unaffected — and recovery sets the clock to C, so
// no later reader can observe the difference. The WAL tail then re-creates
// history above C record by record.
//
// # On-disk format (version 2)
//
// docs/FORMATS.md is the authoritative byte-level spec. Summary
// (little-endian):
//
//	file    := magic:u32 "SCKP" | version:u16 | reserved:u16 | body | crc:u32
//	body    := clock:u64
//	           dict
//	           nNodes:u32 node*
//	           nKinds:u16 kindList*
//	           nOrdered:u16 orderedIdx*
//	           nHashed:u16 hashedIdx*
//	dict    := count:u32 (len:u32 bytes)*
//	node    := id:u64 | nProps:u16 prop2* | nLists:u8 list2*
//	prop2   := key:u8 | valKind:u8 | (int: u64 | string: dictIdx:u32)
//	list2   := type:u8 | dir:u8 | count:u32 | entry*
//	entry   := uvarint(zigzag(peer delta)) uvarint(zigzag(stamp delta))
//	kindList:= kind:u8 | count:u32 | id:u64*
//	orderedIdx := kind:u8 | prop:u8 | entries:u32 | (key:u64 sub:u64 val:u64)*
//	hashedIdx  := kind:u8 | prop:u8 | keys:u32 |
//	              (len:u32 bytes | count:u32 | id:u64*)*
//
// The dictionary carries every distinct property string once; prop2 string
// values name their string by dense dictionary index, and restore re-interns
// the dictionary in one pass, so checkpoints are independent of any
// process's symbol assignment (interner Syms are first-intern-ordered and
// never durable — see internal/intern). Adjacency entries are delta-coded
// against the previous entry of the same list with zigzag varints, the
// durable cousin of the in-memory compact CSR (codec.go); time-ordered IDs
// make consecutive peers near-neighbours, so entries average a few bytes
// against v1's fixed 16.
//
// crc is CRC32-IEEE over everything before it, so torn or bit-rotted
// checkpoint files fail closed: the loader falls back to the next older
// checkpoint, or to full WAL replay.
//
// Compatibility rules: version is bumped on any incompatible change and
// loaders refuse versions they do not know — but refusal is fallback-
// eligible (errCkptVersion), so a store upgraded across a version bump
// recovers from an older readable checkpoint or, failing that, full WAL
// replay of v1-era segments (the WAL format carries strings inline and is
// unchanged). Unknown section trailers are an error (the format has no
// skippable extensions yet); a checkpoint naming a secondary index that the
// opening store did not register fails recovery — register the same indexes
// before Open that were registered when the checkpoint was written.
const (
	ckptMagic   = 0x504B4353 // "SCKP"
	ckptVersion = 2
)

// errCkptVersion marks a checkpoint written in a format version this build
// does not read. Open treats it as fallback-eligible — like corruption, but
// reported distinctly — so upgraded stores recover from older checkpoints
// or from full WAL replay instead of refusing to start.
var errCkptVersion = errors.New("unsupported checkpoint version")

const (
	ckptPrefix    = "ckpt-"
	ckptSuffix    = ".ckpt"
	ckptTmpSuffix = ".tmp"
)

func ckptName(ts int64) string {
	return fmt.Sprintf("%s%016d%s", ckptPrefix, ts, ckptSuffix)
}

// checkpointFile describes one on-disk checkpoint.
type checkpointFile struct {
	ts   int64
	path string
}

// scanCheckpoints lists checkpoint files newest-first. Temp files and
// foreign names are ignored.
func scanCheckpoints(dir string) ([]checkpointFile, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var cks []checkpointFile
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		ts, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix), 10, 64)
		if err != nil {
			continue
		}
		cks = append(cks, checkpointFile{ts: ts, path: filepath.Join(dir, name)})
	}
	sort.Slice(cks, func(i, j int) bool { return cks[i].ts > cks[j].ts })
	return cks, nil
}

// writeCheckpoint serialises the view (plus the store's secondary-index
// contents filtered to the view's visibility) into dir, atomically: the
// bytes are written to a temp file, fsynced, renamed into place and the
// directory entry fsynced, so a crash leaves either the complete new
// checkpoint or none. hookBeforeRename, when non-nil, runs between the temp
// fsync and the rename (crash-injection tests).
func writeCheckpoint(dir string, v *SnapshotView, s *Store, hookBeforeRename func()) (string, error) {
	tmp := filepath.Join(dir, ckptName(v.Timestamp())+ckptTmpSuffix)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp) // no-op after a successful rename

	bw := bufio.NewWriterSize(f, 1<<16)
	crc := crc32.NewIEEE()
	w := io.MultiWriter(bw, crc)
	// fail closes the temp file on an error path, joining rather than
	// dropping the close error: a failed close can be the kernel's first
	// (and only) report of a writeback failure.
	fail := func(e error) (string, error) { return "", errors.Join(e, f.Close()) }
	if err := encodeCheckpoint(w, v, s); err != nil {
		return fail(err)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := bw.Write(sum[:]); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	if hookBeforeRename != nil {
		hookBeforeRename()
	}
	final := filepath.Join(dir, ckptName(v.Timestamp()))
	if err := os.Rename(tmp, final); err != nil {
		return "", err
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	return final, nil
}

// encodeCheckpoint writes header and body (everything the trailing CRC
// covers) to w.
func encodeCheckpoint(w io.Writer, v *SnapshotView, s *Store) error {
	buf := make([]byte, 0, 1<<16)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		_, err := w.Write(buf)
		buf = buf[:0]
		return err
	}

	buf = appendU32(buf, ckptMagic)
	buf = appendU16(buf, ckptVersion)
	buf = appendU16(buf, 0)
	buf = appendU64(buf, uint64(v.Timestamp()))

	// Nodes, ascending by ID for determinism (base ordinals are ID-sorted;
	// overlay-appended ordinals are not, so re-sort the union).
	nodeIDs := make([]ids.ID, 0, v.NumNodes())
	nodeIDs = append(nodeIDs, v.base.nodes...)
	nodeIDs = append(nodeIDs, v.nodesOver...)
	sort.Slice(nodeIDs, func(i, j int) bool { return nodeIDs[i] < nodeIDs[j] })

	// Dictionary pass: every distinct property string of the view, in
	// first-seen (node-ID) order — a pure map probe per string value, cheap
	// next to the serialisation itself. prop2 records then name strings by
	// dense dictionary index, decoupling the file from the process's
	// interner symbol assignment.
	dict := make(map[intern.Sym]uint32)
	dictStrs := []intern.Sym{}
	for _, id := range nodeIDs {
		ord, _ := v.Ord(id)
		for _, p := range v.propsAt(ord) {
			if y := p.Val.Sym(); p.Val.k == kindString {
				if _, ok := dict[y]; !ok {
					dict[y] = uint32(len(dictStrs))
					dictStrs = append(dictStrs, y)
				}
			}
		}
	}
	buf = appendU32(buf, uint32(len(dictStrs)))
	for _, y := range dictStrs {
		s := intern.Lookup(y)
		buf = appendU32(buf, uint32(len(s)))
		buf = append(buf, s...)
		if len(buf) >= 1<<16 {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}

	buf = appendU32(buf, uint32(len(nodeIDs)))
	var rowBuf []Edge // reused per row; appendEdges keeps the decode cache cold
	for _, id := range nodeIDs {
		ord, _ := v.Ord(id)
		buf = appendU64(buf, uint64(id))
		ps := v.propsAt(ord)
		buf = appendU16(buf, uint16(len(ps)))
		for _, p := range ps {
			buf = append(buf, byte(p.Key))
			switch p.Val.k {
			case kindInt:
				buf = append(buf, 1)
				buf = appendU64(buf, uint64(p.Val.bits))
			case kindString:
				buf = append(buf, 2)
				buf = appendU32(buf, dict[p.Val.Sym()])
			default:
				buf = append(buf, 0)
			}
		}
		// Non-empty adjacency rows only; nLists fits u8 (15 types x 2 dirs).
		nLists := 0
		mark := len(buf)
		buf = append(buf, 0)
		for t := EdgeType(1); t < edgeTypeMax; t++ {
			for dir := 0; dir < 2; dir++ {
				rowBuf = v.appendEdges(rowBuf[:0], ord, t, dir == 1)
				if len(rowBuf) == 0 {
					continue
				}
				nLists++
				buf = append(buf, byte(t), byte(dir))
				buf = appendU32(buf, uint32(len(rowBuf)))
				prevPeer, prevStamp := int64(0), int64(0)
				for _, e := range rowBuf {
					buf = binary.AppendUvarint(buf, zigzag(int64(e.To)-prevPeer))
					buf = binary.AppendUvarint(buf, zigzag(e.Stamp-prevStamp))
					prevPeer, prevStamp = int64(e.To), e.Stamp
				}
			}
		}
		buf[mark] = byte(nLists)
		if len(buf) >= 1<<16 {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}

	// Per-kind scan lists, in live (commit) order — NodesOfKind's contract.
	kinds := make([]ids.Kind, 0, len(v.byKind))
	for k := range v.byKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	buf = appendU16(buf, uint16(len(kinds)))
	for _, k := range kinds {
		list := v.byKind[k]
		buf = append(buf, byte(k))
		buf = appendU32(buf, uint32(len(list)))
		for _, id := range list {
			buf = appendU64(buf, uint64(id))
		}
		if len(buf) >= 1<<16 {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}

	// Secondary indexes, filtered to the view's visibility. Index entries
	// are only ever added at node creation, so the live index is a superset
	// of the state at the view's timestamp and the visibility filter makes
	// the dump exact; dumping (not rebuilding at recovery) preserves the
	// engine's creation-time index values for nodes whose indexed property
	// was later overwritten.
	//
	// Each index lock is held only long enough to snapshot the raw
	// contents — Commit takes these locks per created node, so filtering
	// and encoding (O(index size) work) must happen outside them or every
	// checkpoint would stall the write path it promises not to stop.
	buf = appendU16(buf, uint16(len(s.ordered)))
	for _, oi := range s.ordered {
		oi.mu.RLock()
		entries := make([]btree.Entry, 0, oi.tree.Len())
		oi.tree.Ascend(math.MinInt64, 0, func(e btree.Entry) bool {
			entries = append(entries, e)
			return true
		})
		oi.mu.RUnlock()
		vis := entries[:0]
		for _, e := range entries {
			if v.Exists(ids.ID(e.Val)) {
				vis = append(vis, e)
			}
		}
		buf = append(buf, byte(oi.kind), byte(oi.prop))
		buf = appendU32(buf, uint32(len(vis)))
		for _, e := range vis {
			buf = appendU64(buf, uint64(e.Key))
			buf = appendU64(buf, e.Sub)
			buf = appendU64(buf, e.Val)
			if len(buf) >= 1<<16 {
				if err := flush(); err != nil {
					return err
				}
			}
		}
		if err := flush(); err != nil {
			return err
		}
	}

	buf = appendU16(buf, uint16(len(s.hashed)))
	for _, hi := range s.hashed {
		// Snapshot under the lock: key strings plus slice headers. The ID
		// lists are append-only under the index lock, and an in-place
		// append never mutates the [0:len) prefix a cloned header sees, so
		// the headers stay safe to read after release.
		type hkey struct {
			key string
			ids []ids.ID
		}
		hi.mu.RLock()
		dump := make([]hkey, 0, len(hi.m))
		for k, list := range hi.m {
			dump = append(dump, hkey{k, list})
		}
		hi.mu.RUnlock()
		sort.Slice(dump, func(i, j int) bool { return dump[i].key < dump[j].key })
		out := dump[:0]
		for _, d := range dump {
			var vis []ids.ID
			for _, id := range d.ids {
				if v.Exists(id) {
					vis = append(vis, id)
				}
			}
			if len(vis) > 0 {
				out = append(out, hkey{d.key, vis})
			}
		}
		buf = append(buf, byte(hi.kind), byte(hi.prop))
		buf = appendU32(buf, uint32(len(out)))
		for _, d := range out {
			buf = appendU32(buf, uint32(len(d.key)))
			buf = append(buf, d.key...)
			buf = appendU32(buf, uint32(len(d.ids)))
			for _, id := range d.ids {
				buf = appendU64(buf, uint64(id))
			}
			if len(buf) >= 1<<16 {
				if err := flush(); err != nil {
					return err
				}
			}
		}
		if err := flush(); err != nil {
			return err
		}
	}
	return flush()
}

// loadCheckpoint validates path (magic, version, CRC) and installs its
// contents into s, which must be freshly constructed with the same
// secondary indexes registered as when the checkpoint was written. It
// returns the checkpoint's commit clock. Validation errors (wrapped
// ErrCorrupt) leave the caller free to fall back to an older checkpoint;
// an unregistered index is a configuration error and is returned as-is.
//
// Installation is direct (shard maps, adjacency, kind lists, indexes — no
// transactions): every restored fact carries commit timestamp C, the
// checkpoint clock. Open is single-threaded and the store unpublished, so
// no locks are taken.
//
//snb:locked mu kindMu
func loadCheckpoint(s *Store, path string) (int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	base := filepath.Base(path)
	if len(data) < 8+8+4 {
		return 0, fmt.Errorf("%w: checkpoint %s: truncated", ErrCorrupt, base)
	}
	if binary.LittleEndian.Uint32(data[0:4]) != ckptMagic {
		return 0, fmt.Errorf("%w: checkpoint %s: bad magic", ErrCorrupt, base)
	}
	if ver := binary.LittleEndian.Uint16(data[4:6]); ver != ckptVersion {
		return 0, fmt.Errorf("%w: checkpoint %s: version %d (this build reads %d)", errCkptVersion, base, ver, ckptVersion)
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return 0, fmt.Errorf("%w: checkpoint %s: CRC mismatch", ErrCorrupt, base)
	}

	d := &walDecoder{b: body, pos: 8}
	clock := int64(d.u64())

	// Dictionary: re-intern every string once, then property decode is a
	// dense index into syms. Symbols are assigned by THIS process's
	// interner — the file's dictionary indexes are never stored in memory.
	nDict := int(d.u32())
	syms := make([]intern.Sym, 0, nDict)
	for i := 0; i < nDict && d.err == nil; i++ {
		syms = append(syms, intern.Intern(d.str(int(d.u32()))))
	}
	if d.err != nil {
		return 0, fmt.Errorf("%w: checkpoint %s: bad dictionary", ErrCorrupt, base)
	}

	nNodes := int(d.u32())
	// Restoring allocates one object per node, property and adjacency
	// entry; at scale that is millions of small allocations on the restart
	// critical path, so records, versions, props and edge lists are carved
	// out of chunked arenas instead. Every sub-slice is capacity-clipped:
	// a later append (SetProp version, new edge) reallocates privately and
	// can never clobber a neighbouring list in the chunk.
	for i := range s.shards {
		s.shards[i].nodes = make(map[ids.ID]*nodeRec, nNodes/shardCount+1)
	}
	var (
		recArena  []nodeRec
		verArena  []nodeVersion
		propArena []Prop
		edgeArena []edgeRec
	)
	const arenaChunk = 1 << 14
	allocEdges := func(n int) []edgeRec {
		if n > len(edgeArena) {
			edgeArena = make([]edgeRec, max(n, arenaChunk))
		}
		out := edgeArena[:n:n]
		edgeArena = edgeArena[n:]
		return out
	}
	allocProps := func(n int) Props {
		if n > len(propArena) {
			propArena = make([]Prop, max(n, arenaChunk))
		}
		out := propArena[:n:n]
		propArena = propArena[n:]
		return Props(out)
	}
	for i := 0; i < nNodes && d.err == nil; i++ {
		id := ids.ID(d.u64())
		nProps := int(d.u16())
		var props Props
		if nProps > 0 {
			props = allocProps(nProps)
			for j := range props {
				key := PropKey(d.u8())
				switch d.u8() {
				case 1:
					props[j] = Prop{Key: key, Val: Int64(int64(d.u64()))}
				case 2:
					idx := int(d.u32())
					if d.err == nil && idx >= len(syms) {
						return 0, fmt.Errorf("%w: checkpoint %s: dictionary index out of range", ErrCorrupt, base)
					}
					if d.err == nil {
						props[j] = Prop{Key: key, Val: symValue(syms[idx])}
					}
				default:
					props[j] = Prop{Key: key}
				}
			}
		}
		if len(recArena) == 0 {
			recArena = make([]nodeRec, arenaChunk)
			verArena = make([]nodeVersion, arenaChunk)
		}
		rec := &recArena[0]
		recArena = recArena[1:]
		rec.id = id
		rec.versions = verArena[:1:1]
		verArena = verArena[1:]
		rec.versions[0] = nodeVersion{commit: clock, props: props}
		nLists := int(d.u8())
		for j := 0; j < nLists && d.err == nil; j++ {
			t := EdgeType(d.u8())
			dir := d.u8()
			count := int(d.u32())
			if t == 0 || t >= edgeTypeMax || dir > 1 {
				return 0, fmt.Errorf("%w: checkpoint %s: bad adjacency list header", ErrCorrupt, base)
			}
			if count > len(d.b)-d.pos {
				// Each entry costs at least 2 bytes; cheap sanity bound
				// before the arena allocation (varint decode below bounds-
				// checks exactly).
				return 0, fmt.Errorf("%w: checkpoint %s: adjacency list overruns file", ErrCorrupt, base)
			}
			// Zigzag-varint delta entries, mirroring the encoder (this loop
			// touches every edge in the database).
			list := allocEdges(count)
			prevPeer, prevStamp := int64(0), int64(0)
			for k := range list {
				prevPeer += d.varint()
				prevStamp += d.varint()
				list[k] = edgeRec{peer: ids.ID(prevPeer), stamp: prevStamp, commit: clock}
			}
			if d.err != nil {
				return 0, fmt.Errorf("%w: checkpoint %s: adjacency list overruns file", ErrCorrupt, base)
			}
			if dir == 0 {
				rec.adj.out[t] = list
			} else {
				rec.adj.in[t] = list
			}
		}
		if d.err == nil {
			s.shards[shardIndex(id)].nodes[id] = rec
		}
	}

	nKinds := int(d.u16())
	for i := 0; i < nKinds && d.err == nil; i++ {
		k := ids.Kind(d.u8())
		count := int(d.u32())
		if d.err != nil || d.pos+count*8 > len(d.b) {
			return 0, fmt.Errorf("%w: checkpoint %s: kind list overruns file", ErrCorrupt, base)
		}
		list := make([]ids.ID, count)
		raw := d.b[d.pos : d.pos+count*8]
		for j := range list {
			list[j] = ids.ID(binary.LittleEndian.Uint64(raw[j*8:]))
		}
		d.pos += count * 8
		s.byKind[k] = list
	}

	nOrdered := int(d.u16())
	for i := 0; i < nOrdered && d.err == nil; i++ {
		kind, prop := ids.Kind(d.u8()), PropKey(d.u8())
		var oi *orderedIndex
		for _, idx := range s.ordered {
			if idx.kind == kind && idx.prop == prop {
				oi = idx
				break
			}
		}
		count := int(d.u32())
		if oi == nil {
			return 0, fmt.Errorf("store: checkpoint %s: ordered index on %v.%v not registered (register the writing store's indexes before Open)", base, kind, prop)
		}
		if d.err != nil || d.pos+count*24 > len(d.b) {
			return 0, fmt.Errorf("%w: checkpoint %s: ordered index overruns file", ErrCorrupt, base)
		}
		raw := d.b[d.pos : d.pos+count*24]
		for j := 0; j < count; j++ {
			oi.tree.Insert(
				int64(binary.LittleEndian.Uint64(raw[j*24:])),
				binary.LittleEndian.Uint64(raw[j*24+8:]),
				binary.LittleEndian.Uint64(raw[j*24+16:]))
		}
		d.pos += count * 24
	}

	nHashed := int(d.u16())
	for i := 0; i < nHashed && d.err == nil; i++ {
		kind, prop := ids.Kind(d.u8()), PropKey(d.u8())
		var hi *hashIndex
		for _, idx := range s.hashed {
			if idx.kind == kind && idx.prop == prop {
				hi = idx
				break
			}
		}
		keys := int(d.u32())
		if hi == nil {
			return 0, fmt.Errorf("store: checkpoint %s: hash index on %v.%v not registered (register the writing store's indexes before Open)", base, kind, prop)
		}
		for j := 0; j < keys && d.err == nil; j++ {
			key := d.str(int(d.u32()))
			count := int(d.u32())
			list := make([]ids.ID, 0, count)
			for k := 0; k < count; k++ {
				list = append(list, ids.ID(d.u64()))
			}
			if d.err == nil {
				hi.m[key] = list
			}
		}
	}

	if d.err != nil {
		return 0, fmt.Errorf("%w: checkpoint %s: %v", ErrCorrupt, base, d.err)
	}
	if d.pos != len(body) {
		return 0, fmt.Errorf("%w: checkpoint %s: %d trailing bytes", ErrCorrupt, base, len(body)-d.pos)
	}

	s.clock.Store(clock)
	s.commits.Store(clock) // one logged record per commit; approximate but monotone
	return clock, nil
}

// pruneCheckpoints removes all but the newest retain checkpoints plus any
// stale temp files. Pruning is an optimisation, not a correctness step, so
// errors are returned but recovery never depends on it having run.
func pruneCheckpoints(dir string, retain int) error {
	if retain < 1 {
		retain = 1
	}
	cks, err := scanCheckpoints(dir)
	if err != nil {
		return err
	}
	for i := retain; i < len(cks); i++ {
		if err := os.Remove(cks[i].path); err != nil {
			return err
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ckptPrefix) && strings.HasSuffix(e.Name(), ckptTmpSuffix) {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}
