package store

import (
	"encoding/binary"
	"math"
	"testing"

	"ldbcsnb/internal/ids"
)

// Varint/delta adjacency codec property tests: encode with appendAdjRow,
// decode through the same csr.rowAt path the views use, and require the
// exact input row back — order, peers and stamps. The corpus covers the
// boundary shapes (empty, single entry, maximal ordinal and stamp gaps in
// both directions) and a fuzz target walks randomised rows.

// codecFixture builds an ordinal world of n nodes with the given IDs.
func codecFixture(nodeIDs []ids.ID) (nodes []ids.ID, ord map[ids.ID]int32) {
	ord = make(map[ids.ID]int32, len(nodeIDs))
	for i, id := range nodeIDs {
		ord[id] = int32(i)
	}
	return nodeIDs, ord
}

// encodeDecode round-trips one row through the codec's production read
// path, both cold (first decode, publishing to the cache) and hot (served
// from the cache), and requires the two to agree.
func encodeDecode(t *testing.T, row []Edge, nodes []ids.ID, ord map[ids.ID]int32) []Edge {
	t.Helper()
	buf, ok := appendAdjRow(nil, row, ord)
	if !ok {
		t.Fatalf("appendAdjRow refused a fully-mapped row")
	}
	c := csr{lo: 0, offsets: []uint32{0, uint32(len(buf))}, data: buf, entries: len(row), dec: &decCache{}}
	cold := c.rowAt(0, nodes)
	if got := c.degreeAt(0); got != len(row) {
		t.Fatalf("degreeAt = %d, want %d", got, len(row))
	}
	hot := c.rowAt(0, nodes)
	if !edgesEqual(cold, hot) {
		t.Fatalf("cached read diverged from first decode:\n cold %v\n hot %v", cold, hot)
	}
	return hot
}

func TestAdjRowRoundTrip(t *testing.T) {
	nodes, ord := codecFixture([]ids.ID{
		personID(1), personID(2), personID(3), personID(4),
		ids.Compose(ids.KindPerson, math.MaxInt32, 0),
	})
	cases := map[string][]Edge{
		"empty":  {},
		"single": {{To: nodes[2], Stamp: 42}},
		"ascending": {
			{To: nodes[0], Stamp: 10}, {To: nodes[1], Stamp: 20}, {To: nodes[2], Stamp: 30},
		},
		"descending": {
			{To: nodes[3], Stamp: 30}, {To: nodes[1], Stamp: 20}, {To: nodes[0], Stamp: 10},
		},
		"repeat-peer": {
			{To: nodes[1], Stamp: 5}, {To: nodes[1], Stamp: 6}, {To: nodes[1], Stamp: 5},
		},
		"max-ordinal-gap": {
			{To: nodes[0], Stamp: 0}, {To: nodes[4], Stamp: 0}, {To: nodes[0], Stamp: 0},
		},
		"max-stamp-gap": {
			{To: nodes[0], Stamp: math.MinInt64}, {To: nodes[1], Stamp: math.MaxInt64},
			{To: nodes[2], Stamp: math.MinInt64}, {To: nodes[3], Stamp: 0},
		},
	}
	for name, row := range cases {
		t.Run(name, func(t *testing.T) {
			got := encodeDecode(t, row, nodes, ord)
			if len(row) == 0 {
				if len(got) != 0 {
					t.Fatalf("empty row decoded to %v", got)
				}
				return
			}
			if !edgesEqual(got, row) {
				t.Fatalf("round trip diverged:\n got %v\nwant %v", got, row)
			}
		})
	}
}

// TestAdjRowUnmappedPeerRollsBack pins the spill contract: a row with a
// neighbour outside the ordinal world is refused with dst byte-identical to
// the input, so a partial row never leaks into the shared slab.
func TestAdjRowUnmappedPeerRollsBack(t *testing.T) {
	nodes, ord := codecFixture([]ids.ID{personID(1), personID(2)})
	dst := append([]byte(nil), 0xAA, 0xBB, 0xCC)
	row := []Edge{{To: nodes[1], Stamp: 1}, {To: personID(99), Stamp: 2}}
	out, ok := appendAdjRow(dst, row, ord)
	if ok {
		t.Fatal("row with unmapped peer was encoded")
	}
	if len(out) != 3 || out[0] != 0xAA || out[1] != 0xBB || out[2] != 0xCC {
		t.Fatalf("dst not rolled back: %x", out)
	}
}

// TestAdjRowCompression pins the point of the codec: consecutive ordinals
// with near-identical stamps — the shape time-ordered IDs produce — cost a
// few bytes per entry, not the 16 of the uncompressed Edge.
func TestAdjRowCompression(t *testing.T) {
	nodeIDs := make([]ids.ID, 1000)
	for i := range nodeIDs {
		nodeIDs[i] = personID(uint32(i + 1))
	}
	nodes, ord := codecFixture(nodeIDs)
	row := make([]Edge, 500)
	for i := range row {
		row[i] = Edge{To: nodes[i*2], Stamp: int64(1_000_000 + i*3)}
	}
	buf, ok := appendAdjRow(nil, row, ord)
	if !ok {
		t.Fatal("encode refused")
	}
	if perEntry := float64(len(buf)) / float64(len(row)); perEntry > 4 {
		t.Fatalf("local row costs %.1f bytes/entry, want <= 4 (raw is 16)", perEntry)
	}
	if got := encodeDecode(t, row, nodes, ord); !edgesEqual(got, row) {
		t.Fatal("compressed row round trip diverged")
	}
}

// FuzzAdjRowRoundTrip drives randomised rows (count, ordinal walk and stamp
// walk derived from the fuzz inputs) through encode+decode and requires
// exact reproduction. The interesting space is the delta structure, so the
// generator takes random steps — forward and backward, small and huge —
// rather than independent random values.
func FuzzAdjRowRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint64(1))
	f.Add(uint8(1), uint64(99))
	f.Add(uint8(17), uint64(0xDEADBEEF))
	f.Add(uint8(255), uint64(12345))
	nodeIDs := make([]ids.ID, 4096)
	for i := range nodeIDs {
		nodeIDs[i] = personID(uint32(i + 1))
	}
	nodes, ord := codecFixture(nodeIDs)
	f.Fuzz(func(t *testing.T, n uint8, seed uint64) {
		if seed == 0 {
			seed = 1
		}
		next := func() uint64 { // xorshift64
			seed ^= seed << 13
			seed ^= seed >> 7
			seed ^= seed << 17
			return seed
		}
		row := make([]Edge, int(n))
		o, stamp := int64(0), int64(0)
		for i := range row {
			o = (o + int64(next()%257) - 128 + int64(len(nodes))) % int64(len(nodes))
			switch next() % 4 {
			case 0:
				stamp += int64(next() % 64) // local forward step
			case 1:
				stamp -= int64(next() % 64)
			case 2:
				stamp = int64(next()) // arbitrary jump, any sign
			}
			row[i] = Edge{To: nodes[o], Stamp: stamp}
		}
		got := encodeDecode(t, row, nodes, ord)
		if len(row) == 0 {
			if len(got) != 0 {
				t.Fatalf("empty row decoded to %v", got)
			}
			return
		}
		if !edgesEqual(got, row) {
			t.Fatalf("round trip diverged:\n got %v\nwant %v", got, row)
		}
	})
}

// TestZigzagRoundTrip sweeps the signed<->unsigned mapping over the
// boundary values the deltas can hit.
func TestZigzagRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, math.MaxInt32, math.MinInt32, math.MaxInt64, math.MinInt64} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Fatalf("unzigzag(zigzag(%d)) = %d", v, got)
		}
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(buf[:], zigzag(v))
		u, m := binary.Uvarint(buf[:n])
		if m != n || unzigzag(u) != v {
			t.Fatalf("varint round trip of %d failed", v)
		}
	}
}
