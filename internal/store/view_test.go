package store

import (
	"reflect"
	"testing"

	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/xrand"
)

// viewEdgeTypes are the edge types the randomised tests exercise.
var viewEdgeTypes = []EdgeType{EdgeKnows, EdgeLikes, EdgeHasCreator}

// randomGraphStep applies one random committed transaction: a few node
// creations, property updates and edge insertions over the accumulated ID
// population. Returns the updated population.
func randomGraphStep(t *testing.T, s *Store, r *xrand.Rand, pop []ids.ID, step int) []ids.ID {
	t.Helper()
	tx := s.Begin()
	for i := 0; i < 1+r.Intn(3); i++ {
		id := ids.Compose(ids.KindPerson, int64(step), uint32(i))
		props := Props{
			{PropFirstName, String([]string{"ada", "bob", "eve"}[r.Intn(3)])},
			{PropCreationDate, Int64(int64(step*100 + i))},
		}
		if err := tx.CreateNode(id, props); err != nil {
			t.Fatal(err)
		}
		pop = append(pop, id)
	}
	for i := 0; i < r.Intn(3); i++ {
		id := pop[r.Intn(len(pop))]
		_ = tx.SetProp(id, PropLastName, String([]string{"x", "y", "z"}[r.Intn(3)]))
	}
	for i := 0; i < 2+r.Intn(4); i++ {
		a, b := pop[r.Intn(len(pop))], pop[r.Intn(len(pop))]
		et := viewEdgeTypes[r.Intn(len(viewEdgeTypes))]
		if et == EdgeKnows {
			_ = tx.AddKnows(a, b, int64(step))
		} else {
			_ = tx.AddEdge(a, et, b, int64(step))
		}
	}
	// Occasionally tombstone an existing edge so the equivalence sweeps
	// cover deletions on every path (txn filtering, view compaction, delta
	// refresh).
	if r.Bool(0.4) {
		owner := pop[r.Intn(len(pop))]
		et := viewEdgeTypes[r.Intn(len(viewEdgeTypes))]
		var peer ids.ID
		s.View(func(rt *Txn) {
			if es := rt.Out(owner, et); len(es) > 0 {
				peer = es[r.Intn(len(es))].To
			}
		})
		if peer != 0 {
			_ = tx.DeleteEdge(owner, et, peer)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return pop
}

// assertViewMatchesTxn compares every read primitive of a view against an
// MVCC transaction frozen at the same timestamp.
func assertViewMatchesTxn(t *testing.T, s *Store, v *SnapshotView, tx *Txn, pop []ids.ID) {
	t.Helper()
	if v.Timestamp() != tx.Snapshot() {
		t.Fatalf("timestamps diverge: view %d txn %d", v.Timestamp(), tx.Snapshot())
	}
	probe := append(append([]ids.ID(nil), pop...),
		ids.Compose(ids.KindPerson, 1<<30, 0)) // a never-created ID
	for _, id := range probe {
		if got, want := v.Exists(id), tx.Exists(id); got != want {
			t.Fatalf("Exists(%v): view %v txn %v", id, got, want)
		}
		for _, et := range viewEdgeTypes {
			if got, want := v.Out(id, et), tx.Out(id, et); !edgesEqual(got, want) {
				t.Fatalf("Out(%v, %v): view %v txn %v", id, et, got, want)
			}
			if got, want := v.In(id, et), tx.In(id, et); !edgesEqual(got, want) {
				t.Fatalf("In(%v, %v): view %v txn %v", id, et, got, want)
			}
			if got, want := v.OutDegree(id, et), tx.OutDegree(id, et); got != want {
				t.Fatalf("OutDegree(%v, %v): view %d txn %d", id, et, got, want)
			}
		}
		for _, key := range []PropKey{PropFirstName, PropLastName, PropCreationDate} {
			if got, want := v.Prop(id, key), tx.Prop(id, key); got != want {
				t.Fatalf("Prop(%v, %v): view %#v txn %#v", id, key, got, want)
			}
		}
		gotPs, gotOK := v.Props(id)
		wantPs, wantOK := tx.Props(id)
		if gotOK != wantOK || !propsEqual(gotPs, wantPs) {
			t.Fatalf("Props(%v): view %v/%v txn %v/%v", id, gotPs, gotOK, wantPs, wantOK)
		}
	}
	if got, want := v.NodesOfKind(ids.KindPerson), tx.NodesOfKind(ids.KindPerson); !reflect.DeepEqual(got, want) {
		t.Fatalf("NodesOfKind: view %d txn %d nodes", len(got), len(want))
	}
}

func edgesEqual(a, b []Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func propsEqual(a, b Props) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestViewEquivalenceRandomised is the equivalence property test: for a
// randomly grown graph with interleaved updates, the frozen view and the
// MVCC transaction paths must agree on every read primitive at every
// intermediate snapshot.
func TestViewEquivalenceRandomised(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		r := xrand.New(seed)
		s := New()
		var pop []ids.ID
		for step := 1; step <= 25; step++ {
			pop = randomGraphStep(t, s, r, pop, step)
			v := s.CurrentView()
			tx := s.Begin()
			tx.readonly = true
			assertViewMatchesTxn(t, s, v, tx, pop)
		}
	}
}

// TestViewFrozenUnderLaterCommits pins immutability: a view captured at one
// epoch must keep returning the old state after later commits, while
// CurrentView serves the new epoch.
func TestViewFrozenUnderLaterCommits(t *testing.T) {
	s := New()
	a := ids.Compose(ids.KindPerson, 1, 0)
	b := ids.Compose(ids.KindPerson, 1, 1)
	tx := s.Begin()
	_ = tx.CreateNode(a, Props{{PropFirstName, String("ada")}})
	_ = tx.CreateNode(b, Props{{PropFirstName, String("bob")}})
	_ = tx.AddKnows(a, b, 10)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	old := s.CurrentView()
	if got := len(old.Out(a, EdgeKnows)); got != 1 {
		t.Fatalf("old view degree = %d", got)
	}
	if s.CurrentView() != old {
		t.Fatal("CurrentView must cache between commits")
	}

	tx = s.Begin()
	c := ids.Compose(ids.KindPerson, 1, 2)
	_ = tx.CreateNode(c, nil)
	_ = tx.AddKnows(a, c, 20)
	_ = tx.SetProp(a, PropFirstName, String("ADA"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// The old view is frozen at its epoch.
	if got := len(old.Out(a, EdgeKnows)); got != 1 {
		t.Fatalf("old view mutated: degree = %d", got)
	}
	if got := old.Prop(a, PropFirstName).Str(); got != "ada" {
		t.Fatalf("old view sees new prop %q", got)
	}
	if old.Exists(c) {
		t.Fatal("old view sees later node")
	}

	// The new epoch's view sees the commit.
	cur := s.CurrentView()
	if cur == old {
		t.Fatal("commit must invalidate the cached view")
	}
	if got := len(cur.Out(a, EdgeKnows)); got != 2 {
		t.Fatalf("new view degree = %d", got)
	}
	if got := cur.Prop(a, PropFirstName).Str(); got != "ADA" {
		t.Fatalf("new view prop %q", got)
	}
}

// TestViewAtHistorical pins time travel: ViewAt at an old timestamp
// reconstructs exactly the state a transaction saw then.
func TestViewAtHistorical(t *testing.T) {
	s := New()
	r := xrand.New(7)
	var pop []ids.ID
	var stamps []int64
	for step := 1; step <= 10; step++ {
		pop = randomGraphStep(t, s, r, pop, step)
		stamps = append(stamps, s.LastCommit())
	}
	for _, ts := range stamps {
		v := s.ViewAt(ts)
		tx := &Txn{s: s, snapshot: ts, readonly: true}
		assertViewMatchesTxn(t, s, v, tx, pop)
	}
}

// TestViewOrdinalsDense checks the ordinal contract: dense, sorted by ID,
// and consistent with Ord/IDAt round-trips.
func TestViewOrdinalsDense(t *testing.T) {
	s := New()
	r := xrand.New(9)
	var pop []ids.ID
	for step := 1; step <= 8; step++ {
		pop = randomGraphStep(t, s, r, pop, step)
	}
	v := s.CurrentView()
	if v.NumNodes() == 0 {
		t.Fatal("empty view")
	}
	var prev ids.ID
	for o := int32(0); o < int32(v.NumNodes()); o++ {
		id := v.IDAt(o)
		if o > 0 && id <= prev {
			t.Fatal("ordinals not in ascending ID order")
		}
		prev = id
		back, ok := v.Ord(id)
		if !ok || back != o {
			t.Fatalf("Ord(IDAt(%d)) = %d, %v", o, back, ok)
		}
	}
}
