package store

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/xrand"
)

// Group-commit and multi-lane WAL tests: the recovered-equals-live
// equivalence sweep over a lane-striped log, crash injection at the
// group-commit boundaries (batch written but not fsynced, torn record
// mid-batch, lanes unevenly advanced), fsync-on-commit durability without
// a clean shutdown, and concurrent-writer stress for the race detector.

// commitPersonErr commits one transaction creating person n (commit
// timestamp n when commits are sequential).
func commitPersonErr(s *Store, n int) error {
	tx := s.Begin()
	if err := tx.CreateNode(personID(uint32(n)), Props{
		{PropFirstName, String([]string{"ada", "bob", "eve"}[n%3])},
		{PropCreationDate, Int64(int64(n))},
	}); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

func commitPerson(t *testing.T, s *Store, n int) {
	t.Helper()
	if err := commitPersonErr(s, n); err != nil {
		t.Fatal(err)
	}
}

// laneFile returns the path of lane's newest segment in dir's WAL.
func laneFile(t *testing.T, dir string, lane int) string {
	t.Helper()
	segs, err := scanSegments(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	path := ""
	for _, sf := range segs {
		if sf.lane == lane {
			path = sf.path
		}
	}
	if path == "" {
		t.Fatalf("no segments for lane %d", lane)
	}
	return path
}

type segRec struct {
	off int64 // record's byte offset in the file
	ts  int64
}

// readSegRecords lists one segment file's records (offset, commit ts).
func readSegRecords(t *testing.T, path string) []segRec {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []segRec
	off := int64(segHeaderSize)
	for off+8 <= int64(len(data)) {
		end := off + 8 + int64(binary.LittleEndian.Uint32(data[off:]))
		if end > int64(len(data)) {
			break
		}
		out = append(out, segRec{off: off, ts: int64(binary.LittleEndian.Uint64(data[off+8:]))})
		off = end
	}
	return out
}

func truncAt(t *testing.T, path string, off int64) {
	t.Helper()
	if err := os.Truncate(path, off); err != nil {
		t.Fatal(err)
	}
}

// assertPersonPrefix asserts persons 1..k exist and k+1..n do not.
func assertPersonPrefix(t *testing.T, s *Store, k, n int) {
	t.Helper()
	s.View(func(tx *Txn) {
		for i := 1; i <= n; i++ {
			want := i <= k
			if got := tx.Exists(personID(uint32(i))); got != want {
				t.Fatalf("person %d: exists=%v want %v (clock %d)", i, got, want, s.LastCommit())
			}
		}
	})
}

// TestMultiLaneEquivalenceEveryEpoch is the multi-lane twin of
// TestPersistEquivalenceEveryEpoch: a 3-lane WAL under a randomised update
// stream with frequent rotation and periodic checkpoints, crash-copied and
// recovered at EVERY epoch, asserting the recovered store equals the live
// one on every read primitive. The reopen deliberately omits WALLanes:
// recovery must adopt the on-disk lane count (and a single-lane v1 layout
// stays recoverable the same way).
func TestMultiLaneEquivalenceEveryEpoch(t *testing.T) {
	dir := t.TempDir()
	opts := manualOpts()
	opts.SegmentBytes = 512 // force frequent rotation
	opts.WALLanes = 3
	p, _, err := Open(dir, opts, registerTestIndexes)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	live := New()
	registerTestIndexes(live)
	rl, rd := xrand.New(17), xrand.New(17)
	var pop []ids.ID
	for step := 1; step <= 24; step++ {
		pop = growBoth(t, live, p.Store, rl, rd, pop, step)
		if step%9 == 0 {
			if err := p.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.Sync(); err != nil {
			t.Fatal(err)
		}
		crash := filepath.Join(t.TempDir(), "crash")
		copyDir(t, dir, crash)
		re, info := reopen(t, crash, manualOpts())
		if info.Clock != live.LastCommit() {
			t.Fatalf("step %d: recovered clock %d, live %d (%+v)", step, info.Clock, live.LastCommit(), info)
		}
		assertStoresEqual(t, live, re.Store, pop)
		re.Close()
	}
	if st := p.Stats(); st.WALRotations == 0 || st.Checkpoints == 0 || st.Batches == 0 {
		t.Fatalf("sweep never rotated, checkpointed or batched: %+v", st)
	}
}

// multiLaneFixture commits n sequential single-person transactions over a
// 2-lane WAL and returns a crash image of the closed directory. Odd
// timestamps land in lane 0, even in lane 1.
func multiLaneFixture(t *testing.T, n int) (crash string, opts PersistOptions) {
	t.Helper()
	dir := t.TempDir()
	opts = manualOpts()
	opts.WALLanes = 2
	p, _, err := Open(dir, opts, registerTestIndexes)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		commitPerson(t, p.Store, i)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	crash = filepath.Join(t.TempDir(), "crash")
	copyDir(t, dir, crash)
	return crash, opts
}

// TestCrashLaneBatchWrittenNotSynced: one lane's whole tail batch
// vanishes (the crash landed between the batch write and its fsync, and
// the OS never flushed the pages). Every commit above the resulting gap is
// un-acknowledged, so recovery truncates back to the last gapless prefix.
func TestCrashLaneBatchWrittenNotSynced(t *testing.T) {
	const n = 9
	crash, opts := multiLaneFixture(t, n)
	truncAt(t, laneFile(t, crash, 1), segHeaderSize) // lane 1 loses ts 2,4,6,8
	re, info := reopen(t, crash, opts)
	if info.Clock != 1 || info.Discarded != 4 {
		t.Fatalf("want clock 1 with 4 discards, got %+v", info)
	}
	assertPersonPrefix(t, re.Store, 1, n)

	// The surviving prefix is a fully working store: recommit and recover.
	commitPerson(t, re.Store, 2)
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, info2 := reopen(t, crash, opts)
	if info2.Clock != 2 || info2.Discarded != 0 {
		t.Fatalf("want clean clock-2 recovery after recommit, got %+v", info2)
	}
	assertPersonPrefix(t, re2.Store, 2, n)
	re2.Close()
}

// TestCrashTornRecordMidBatch: a record in the middle of one lane's last
// batch is torn (partial write). The lane's clean prefix ends there; the
// other lane's records merge in as long as the timestamp sequence stays
// gapless.
func TestCrashTornRecordMidBatch(t *testing.T) {
	const n = 9
	crash, opts := multiLaneFixture(t, n)
	lane0 := laneFile(t, crash, 0)
	recs := readSegRecords(t, lane0) // ts 1,3,5,7,9
	last := recs[len(recs)-1]
	truncAt(t, lane0, last.off+5) // tear ts 9 mid-record
	re, info := reopen(t, crash, opts)
	defer re.Close()
	if info.Clock != n-1 || info.TornBytes == 0 || info.Discarded != 0 {
		t.Fatalf("want clock %d with torn tail, got %+v", n-1, info)
	}
	assertPersonPrefix(t, re.Store, n-1, n)
}

// TestCrashLanesUnevenlyAdvanced: lane 1 lost a clean suffix of records
// (ts 6,8) while lane 0 kept later ones (7,9). The merged sequence gaps at
// 6; 7 and 9 were never acknowledged (the watermark cannot pass 5), so
// recovery discards them and truncates both lanes' files — durably, so a
// second recovery sees a clean log.
func TestCrashLanesUnevenlyAdvanced(t *testing.T) {
	const n = 9
	crash, opts := multiLaneFixture(t, n)
	lane1 := laneFile(t, crash, 1)
	recs := readSegRecords(t, lane1) // ts 2,4,6,8
	truncAt(t, lane1, recs[2].off)   // keep 2,4; drop 6,8
	re, info := reopen(t, crash, opts)
	if info.Clock != 5 || info.Discarded != 2 {
		t.Fatalf("want clock 5 with 2 discards (ts 7,9), got %+v", info)
	}
	assertPersonPrefix(t, re.Store, 5, n)
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	// Second recovery of the truncated image is clean, and the store
	// catches back up through the normal commit path.
	re2, info2 := reopen(t, crash, opts)
	if info2.Clock != 5 || info2.Discarded != 0 || info2.Replayed != 5 {
		t.Fatalf("want clean clock-5 recovery, got %+v", info2)
	}
	for i := 6; i <= n; i++ {
		commitPerson(t, re2.Store, i)
	}
	if err := re2.Close(); err != nil {
		t.Fatal(err)
	}
	re3, info3 := reopen(t, crash, opts)
	defer re3.Close()
	if info3.Clock != n {
		t.Fatalf("want clock %d after recommit, got %+v", n, info3)
	}
	assertPersonPrefix(t, re3.Store, n, n)
}

// TestCrashMissingRecordSameLane: a hole in a lane that still holds later
// records cannot be a crash artifact (per-lane timestamps are monotone and
// tears only eat suffixes) — recovery must refuse with ErrCorrupt rather
// than silently truncate acknowledged commits.
func TestCrashMissingRecordSameLane(t *testing.T) {
	const n = 9
	crash, opts := multiLaneFixture(t, n)
	lane1 := laneFile(t, crash, 1)
	recs := readSegRecords(t, lane1) // ts 2,4,6,8
	data, err := os.ReadFile(lane1)
	if err != nil {
		t.Fatal(err)
	}
	// Splice record ts 4 out of the middle of lane 1.
	spliced := append([]byte(nil), data[:recs[1].off]...)
	spliced = append(spliced, data[recs[2].off:]...)
	if err := os.WriteFile(lane1, spliced, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(crash, opts, registerTestIndexes); !errorsIsCorrupt(err) {
		t.Fatalf("want ErrCorrupt for same-lane hole, got %v", err)
	}
}

func errorsIsCorrupt(err error) bool {
	for ; err != nil; err = unwrapOnce(err) {
		if err == ErrCorrupt {
			return true
		}
	}
	return false
}

func unwrapOnce(err error) error {
	type single interface{ Unwrap() error }
	type multi interface{ Unwrap() []error }
	switch e := err.(type) {
	case single:
		return e.Unwrap()
	case multi:
		for _, u := range e.Unwrap() {
			if errorsIsCorrupt(u) {
				return ErrCorrupt
			}
		}
		return nil
	default:
		return nil
	}
}

// TestSyncCommitDurableWithoutClose: in fsync-on-commit mode every
// returned Commit must survive a crash with NO shutdown cooperation — the
// crash image is copied while the store is still open, without Sync or
// Close. Concurrent writers shared batches, so fsyncs stay well below one
// per commit.
func TestSyncCommitDurableWithoutClose(t *testing.T) {
	const writers, commits = 4, 32
	dir := t.TempDir()
	opts := manualOpts()
	opts.WALLanes = 2
	opts.WALSync = SyncCommit
	p, _, err := Open(dir, opts, registerTestIndexes)
	if err != nil {
		t.Fatal(err)
	}
	var ctr atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, commits)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(ctr.Add(1))
				if i > commits {
					return
				}
				if err := commitPersonErr(p.Store, i); err != nil {
					errs <- fmt.Errorf("commit %d: %w", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	crash := filepath.Join(t.TempDir(), "crash")
	copyDir(t, dir, crash)
	re, info := reopen(t, crash, opts)
	if info.Clock != commits {
		t.Fatalf("lost acknowledged commits: recovered clock %d want %d (%+v)", info.Clock, commits, info)
	}
	assertPersonPrefix(t, re.Store, commits, commits)
	re.Close()

	st := p.Stats()
	if st.Fsyncs == 0 || st.Batches == 0 || st.BatchedRecords != commits {
		t.Fatalf("batcher counters off: %+v", st)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitConcurrentStress drives many writers over a 4-lane WAL
// with frequent rotation, racing Stats, Sync and a checkpoint against the
// flushers — primarily race-detector coverage for the batcher's locking.
func TestGroupCommitConcurrentStress(t *testing.T) {
	const writers, commits = 8, 200
	dir := t.TempDir()
	opts := manualOpts()
	opts.SegmentBytes = 512
	opts.WALLanes = 4
	opts.WALSync = SyncFlush
	p, _, err := Open(dir, opts, registerTestIndexes)
	if err != nil {
		t.Fatal(err)
	}
	var ctr atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, commits)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(ctr.Add(1))
				if i > commits {
					return
				}
				if err := commitPersonErr(p.Store, i); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	stop := make(chan struct{})
	var obs sync.WaitGroup
	obs.Add(1)
	go func() {
		defer obs.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = p.Stats()
				_ = p.Sync()
			}
		}
	}()
	wg.Wait()
	close(stop)
	obs.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	re, info := reopen(t, dir, opts)
	defer re.Close()
	if info.Clock != commits {
		t.Fatalf("recovered clock %d want %d (%+v)", info.Clock, commits, info)
	}
	assertPersonPrefix(t, re.Store, commits, commits)
}

// TestParallelRecoveryMatchesSerial: the same multi-segment directory
// recovered with serial and parallel segment decode yields identical
// stores.
func TestParallelRecoveryMatchesSerial(t *testing.T) {
	dir := t.TempDir()
	opts := manualOpts()
	opts.SegmentBytes = 512
	opts.WALLanes = 2
	p, _, err := Open(dir, opts, registerTestIndexes)
	if err != nil {
		t.Fatal(err)
	}
	rl := xrand.New(23)
	var pop []ids.ID
	for step := 1; step <= 24; step++ {
		pop = randomGraphStep(t, p.Store, rl, pop, step)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	serialOpts := opts
	serialOpts.RecoveryWorkers = 1
	parOpts := opts
	parOpts.RecoveryWorkers = 4
	ser, serInfo := reopen(t, dir, serialOpts)
	defer ser.Close()
	par, parInfo := reopen(t, dir, parOpts)
	defer par.Close()
	if serInfo.Clock != parInfo.Clock || serInfo.Replayed != parInfo.Replayed {
		t.Fatalf("serial %+v vs parallel %+v", serInfo, parInfo)
	}
	assertStoresEqual(t, ser.Store, par.Store, pop)
}
