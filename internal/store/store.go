package store

import (
	"sync"
	"sync/atomic"

	"ldbcsnb/internal/btree"
	"ldbcsnb/internal/ids"
)

const shardCount = 64

// shard holds a partition of the node map. The shard lock guards the map
// and every nodeRec it owns (property versions and adjacency lists).
type shard struct {
	mu    sync.RWMutex
	nodes map[ids.ID]*nodeRec // guarded by mu
}

// orderedIndex is a B+tree secondary index over an int64 node property.
type orderedIndex struct {
	kind ids.Kind
	prop PropKey
	mu   sync.RWMutex
	tree btree.Tree
}

// hashIndex is an equality index over a string node property.
type hashIndex struct {
	kind ids.Kind
	prop PropKey
	mu   sync.RWMutex
	m    map[string][]ids.ID
}

// Store is the graph database. Construct with New; a Store must not be
// copied after first use.
type Store struct {
	shards [shardCount]shard

	// commitMu serialises the commit protocol: validation, installation
	// and watermark advance happen atomically with respect to other
	// commits. Readers never take it.
	commitMu sync.Mutex
	// clock is the last fully committed timestamp; snapshots read it.
	clock atomic.Int64

	kindMu sync.RWMutex
	byKind map[ids.Kind][]ids.ID // guarded by kindMu

	ordered []*orderedIndex
	hashed  []*hashIndex

	commits atomic.Int64
	aborts  atomic.Int64

	// view caches the frozen snapshot at the current clock (see
	// CurrentView); viewMu serialises maintenance (delta refreshes and
	// rebuilds), never reads.
	view   atomic.Pointer[SnapshotView]
	viewMu sync.Mutex

	// Incremental view maintenance (delta.go): the ring of pending commit
	// deltas plus the refresh accounting.
	deltaMu      sync.Mutex
	deltas       []*CommitDelta // guarded by deltaMu; pending commit deltas, consecutive ts
	deltaDropped bool           // guarded by deltaMu; ring overflowed since the last rebuild
	deltaCap     int            // guarded by deltaMu
	// Only the maintenance path (refresh/rebuild) touches the next two.
	compactThreshold int // guarded by viewMu
	appliedCost      int // guarded by viewMu; overlay entries accumulated in the cached era

	viewEra       atomic.Uint64
	viewRefreshes atomic.Int64
	viewRebuilds  atomic.Int64
	viewEraBumps  atomic.Int64
	viewOverflows atomic.Int64

	// wal, when attached, receives a redo record per committed
	// transaction, in commit order (appends happen under commitMu). gwal
	// is the durable path's group-commit batcher (groupcommit.go); at most
	// one of the two is set, and gwal wins when both are.
	wal  *walWriter
	gwal *groupWAL

	// closed is raised by MarkClosed (Persistent.Close does it before the
	// WAL lanes drain). Commits and checked view acquisition observe it and
	// return ErrStoreClosed instead of racing the shutdown.
	closed atomic.Bool
}

// New returns an empty store. The store is unpublished until New returns,
// so shard initialisation needs no locks.
//
//snb:locked mu
func New() *Store {
	s := &Store{
		byKind:           make(map[ids.Kind][]ids.ID),
		deltaCap:         defaultViewDeltaCap,
		compactThreshold: defaultViewCompactThreshold,
	}
	for i := range s.shards {
		s.shards[i].nodes = make(map[ids.ID]*nodeRec)
	}
	return s
}

// shardIndex maps a node ID to its owning shard slot; every placement and
// lookup (including buildView's shard grouping) must go through it.
func shardIndex(id ids.ID) int {
	return int(uint64(id) % shardCount)
}

func (s *Store) shardFor(id ids.ID) *shard {
	return &s.shards[shardIndex(id)]
}

// RegisterOrderedIndex adds a B+tree index over an int64 property of one
// node kind (e.g. Post.creationDate). Must be called before data is loaded.
func (s *Store) RegisterOrderedIndex(kind ids.Kind, prop PropKey) {
	s.ordered = append(s.ordered, &orderedIndex{kind: kind, prop: prop})
}

// RegisterHashIndex adds an equality index over a string property of one
// node kind (e.g. Person.firstName). Must be called before data is loaded.
func (s *Store) RegisterHashIndex(kind ids.Kind, prop PropKey) {
	s.hashed = append(s.hashed, &hashIndex{kind: kind, prop: prop, m: make(map[string][]ids.ID)})
}

// Commits returns the number of committed transactions.
func (s *Store) Commits() int64 { return s.commits.Load() }

// Aborts returns the number of aborted transactions (conflicts + explicit).
func (s *Store) Aborts() int64 { return s.aborts.Load() }

// LastCommit returns the current snapshot watermark.
func (s *Store) LastCommit() int64 { return s.clock.Load() }

// MarkClosed transitions the store into the closed state: every later
// Commit and AcquireViewChecked returns ErrStoreClosed. Taking commitMu to
// flip the flag is the shutdown fence — commits already inside their
// critical section finish (and reach the WAL lanes) before MarkClosed
// returns, and commits that arrive after it observe the flag before
// touching a lane. Persistent.Close calls this before draining the lanes;
// servers over an in-memory store call it directly. Idempotent.
func (s *Store) MarkClosed() {
	s.commitMu.Lock()
	s.closed.Store(true)
	s.commitMu.Unlock()
}

// Closed reports whether MarkClosed (or Persistent.Close) has run.
func (s *Store) Closed() bool { return s.closed.Load() }

// Begin starts a read-write transaction at the current snapshot.
func (s *Store) Begin() *Txn {
	return &Txn{s: s, snapshot: s.clock.Load()}
}

// View runs fn in a read-only transaction. Read-only transactions never
// conflict and need no commit.
func (s *Store) View(fn func(*Txn)) {
	tx := s.Begin()
	tx.readonly = true
	fn(tx)
}

// NodesOfKind returns the IDs of all nodes of a kind visible at snapshot
// ts, in insertion order. The returned slice is fresh and owned by the
// caller.
func (s *Store) nodesOfKind(kind ids.Kind, ts int64) []ids.ID {
	s.kindMu.RLock()
	list := s.byKind[kind]
	// The per-kind list is append-only; entries are appended in commit
	// order, so the visible prefix is a prefix of the slice. Copy under
	// the read lock, then filter by visibility.
	snap := make([]ids.ID, len(list))
	copy(snap, list)
	s.kindMu.RUnlock()

	out := snap[:0]
	for _, id := range snap {
		sh := s.shardFor(id)
		sh.mu.RLock()
		rec := sh.nodes[id]
		ok := rec != nil && func() bool { _, v := rec.visibleProps(ts); return v }()
		sh.mu.RUnlock()
		if ok {
			out = append(out, id)
		} else {
			// Lists are commit-ordered: the first invisible entry ends the
			// visible prefix.
			break
		}
	}
	return out
}
