package store

import (
	"maps"

	"ldbcsnb/internal/ids"
)

// Incremental snapshot-view maintenance.
//
// Every committed transaction appends one CommitDelta — a compact record of
// the nodes it created, the property lists it replaced, and the adjacency
// entries it inserted or tombstoned — to a bounded in-memory ring alongside
// the WAL append. When CurrentView finds the cached view behind the commit
// watermark it applies the pending deltas copy-on-write onto the cached
// view (see applyDeltas) instead of recompacting the whole dataset: cost
// proportional to the delta plus the overlay accumulated this era, not to
// the number of visible nodes and edges.
//
// Two conditions force a full rebuild (a new era, ordinals reassigned):
//
//   - the ring overflowed (more than the ring capacity of commits landed
//     since the last view advance), so the delta chain has a gap;
//   - the accumulated overlay size would cross the compaction threshold
//     (SetViewCompactThreshold) — unbounded overlays would slowly tax every
//     read with overlay-map lookups, so the view periodically recompacts
//     back into flat CSR form.
//
// Commit timestamps are consecutive integers (Commit assigns clock+1 under
// commitMu), which makes ring continuity a pure index computation.

// deltaNode is one node made visible by a commit: an explicit CreateNode
// (inKindList true) or a bare record materialised for a dangling edge
// endpoint (inKindList false — such nodes never appear in NodesOfKind,
// matching the transactional read path).
type deltaNode struct {
	id         ids.ID
	props      Props
	inKindList bool
}

// deltaProp is one property-list replacement on a pre-existing node: the
// full resulting Props of the new MVCC version (shared, immutable).
type deltaProp struct {
	id    ids.ID
	props Props
}

// deltaEdge is one installed adjacency entry, exactly mirroring an
// installEdge call: the owning node's list (out or in) gains Edge{peer,
// stamp} at its tail.
type deltaEdge struct {
	owner ids.ID
	peer  ids.ID
	stamp int64
	t     EdgeType
	in    bool
}

// deltaDel is one tombstoned adjacency entry: the newest live (peer, stamp)
// match in the owning node's list became invisible at the delta's commit.
type deltaDel struct {
	owner ids.ID
	peer  ids.ID
	stamp int64
	t     EdgeType
	in    bool
}

// CommitDelta is the view-maintenance record of one committed transaction.
// It is immutable once recorded.
type CommitDelta struct {
	ts    int64
	nodes []deltaNode
	props []deltaProp
	edges []deltaEdge
	dels  []deltaDel
}

// cost is the delta's contribution towards the compaction threshold: the
// number of overlay entries applying it can touch.
func (d *CommitDelta) cost() int {
	return len(d.nodes) + len(d.props) + len(d.edges) + len(d.dels)
}

// Default view-maintenance knobs; see the Set* methods on Store. The ring
// must absorb the commit burst a mixed run lands between two read
// acquisitions, and the threshold caps the overlay a refresh chain drags
// along (every refresh clones the live overlay, and overlay rows cost an
// extra map probe on reads), so both trade refresh reach against per-
// refresh and per-read cost.
const (
	defaultViewDeltaCap         = 4096
	defaultViewCompactThreshold = 4096
)

// SetViewCompactThreshold bounds the overlay a refreshed view chain may
// accumulate before CurrentView recompacts (full rebuild, era bump).
// Higher values favour cheap refreshes under sustained updates at the cost
// of overlay-map lookups on reads of touched rows; n <= 0 disables
// refreshing entirely (every view advance recompacts — mainly for tests and
// ablations).
func (s *Store) SetViewCompactThreshold(n int) {
	s.viewMu.Lock()
	s.compactThreshold = n
	s.viewMu.Unlock()
}

// SetViewDeltaCap bounds the delta ring: if more than n commits accumulate
// between view advances the ring overflows and the next advance rebuilds.
func (s *Store) SetViewDeltaCap(n int) {
	if n < 1 {
		n = 1
	}
	s.deltaMu.Lock()
	s.deltaCap = n
	s.deltaMu.Unlock()
}

// ViewStatsSnapshot reports the store's view-maintenance counters.
type ViewStatsSnapshot struct {
	// Refreshes counts CurrentView advances served by applying deltas.
	Refreshes int64
	// Rebuilds counts full compactions by CurrentView (including the first
	// build; ViewAt calls are not counted).
	Rebuilds int64
	// EraBumps counts rebuilds that replaced an existing cached view, i.e.
	// recompactions that invalidated ordinal-keyed caller state.
	EraBumps int64
	// Overflows counts deltas dropped because the ring was full.
	Overflows int64
}

// ViewStats returns the view-maintenance counters (monotonic since store
// construction).
func (s *Store) ViewStats() ViewStatsSnapshot {
	return ViewStatsSnapshot{
		Refreshes: s.viewRefreshes.Load(),
		Rebuilds:  s.viewRebuilds.Load(),
		EraBumps:  s.viewEraBumps.Load(),
		Overflows: s.viewOverflows.Load(),
	}
}

// recordDelta appends one commit's delta to the ring. Called under commitMu
// before the commit clock advances, so by the time a refresh observes a
// watermark every delta up to it is in the ring.
func (s *Store) recordDelta(d *CommitDelta) {
	s.deltaMu.Lock()
	if len(s.deltas) >= s.deltaCap {
		// Ring full: the chain up to the cached view is broken either way,
		// so drop everything pending and let the next advance rebuild.
		// Dropping must abandon the backing array (not re-slice to [:0]):
		// an in-flight refresh may still be reading a subslice handed out
		// by pendingLocked, and reusing the slots would hand it foreign
		// deltas mid-application.
		s.deltas = nil
		s.deltaDropped = true
		s.viewOverflows.Add(1)
	}
	s.deltas = append(s.deltas, d)
	s.deltaMu.Unlock()
}

// pendingLocked returns the consecutive deltas covering (after, upto], or
// ok=false when the ring cannot cover the range (overflow or trim gap).
// Caller holds deltaMu. The returned subslice stays valid after the lock is
// released: deltas are immutable, appends land beyond the returned range
// (trimming only advances the slice start), and the overflow path abandons
// the backing array instead of reusing its slots.
//
//snb:locked deltaMu
func (s *Store) pendingLocked(after, upto int64) ([]*CommitDelta, bool) {
	if s.deltaDropped || len(s.deltas) == 0 {
		return nil, false
	}
	first := s.deltas[0].ts
	last := s.deltas[len(s.deltas)-1].ts
	if first > after+1 || last < upto {
		return nil, false
	}
	lo := int(after + 1 - first)
	hi := int(upto - first)
	if lo < 0 || hi < lo || hi >= len(s.deltas) {
		return nil, false
	}
	return s.deltas[lo : hi+1], true
}

// trimDeltas drops deltas already folded into the cached view (ts and
// older).
func (s *Store) trimDeltas(ts int64) {
	s.deltaMu.Lock()
	i := 0
	for i < len(s.deltas) && s.deltas[i].ts <= ts {
		i++
	}
	if i == len(s.deltas) {
		s.deltas = nil // release the backing array between bursts
	} else {
		s.deltas = s.deltas[i:]
	}
	s.deltaMu.Unlock()
}

// resetDeltas re-arms the ring after a full rebuild at ts: everything the
// rebuild folded in is dropped and the overflow marker cleared. The
// appliedCost reset belongs to the maintenance path, so the caller (the
// rebuild branch of AcquireView/CurrentView) holds viewMu.
//
//snb:locked viewMu
func (s *Store) resetDeltas(ts int64) {
	s.deltaMu.Lock()
	i := 0
	for i < len(s.deltas) && s.deltas[i].ts <= ts {
		i++
	}
	if i == len(s.deltas) {
		s.deltas = nil
	} else {
		s.deltas = append([]*CommitDelta(nil), s.deltas[i:]...)
	}
	s.deltaDropped = false
	s.appliedCost = 0
	s.deltaMu.Unlock()
}

// refreshView derives a view at ts from the cached view by applying the
// pending deltas, or reports ok=false when the caller must rebuild (ring
// gap, or the accumulated overlay would cross the compaction threshold).
// Called under viewMu.
//
//snb:locked viewMu
func (s *Store) refreshView(old *SnapshotView, ts int64) (*SnapshotView, bool) {
	s.deltaMu.Lock()
	ds, ok := s.pendingLocked(old.ts, ts)
	s.deltaMu.Unlock()
	if !ok {
		return nil, false
	}
	cost := 0
	for _, d := range ds {
		cost += d.cost()
	}
	if s.compactThreshold <= 0 || s.appliedCost+cost > s.compactThreshold {
		return nil, false
	}
	nv := applyDeltas(old, ds, ts)
	s.appliedCost += cost
	s.trimDeltas(ts)
	return nv, true
}

// applyDeltas derives a new view from old by applying consecutive commit
// deltas copy-on-write. The new view shares old's viewBase (same era); the
// overlay maps are cloned (bounded by the compaction threshold) and only
// rows touched by the deltas are copied and rewritten, so old — and every
// earlier view of the chain — stays frozen for concurrent readers.
func applyDeltas(old *SnapshotView, ds []*CommitDelta, ts int64) *SnapshotView {
	nv := &SnapshotView{
		ts:        ts,
		era:       old.era,
		base:      old.base,
		nodesOver: append([]ids.ID(nil), old.nodesOver...),
		ordOver:   maps.Clone(old.ordOver),
		propsOver: maps.Clone(old.propsOver),
		edgeOver:  maps.Clone(old.edgeOver),
		byKind:    maps.Clone(old.byKind), // never nil: buildView always allocates it
	}
	n0 := int32(len(nv.base.nodes))

	// owned marks overlay rows copied by THIS application; only owned rows
	// may be mutated in place (rows inherited from old's overlay are shared
	// with published views).
	var owned map[edgeKey]bool
	ownRow := func(ord int32, t EdgeType, in bool) edgeKey {
		key := makeEdgeKey(ord, t, in)
		if owned[key] {
			return key
		}
		// Materialise the row copy-on-write. Overlay rows copy directly; a
		// base row is decoded out of the varint/delta slab here, on first
		// touch by a refresh, so the compact representation only pays the
		// decode for rows the update stream actually modifies.
		var row []Edge
		if src, had := nv.edgeOver[key]; had {
			row = make([]Edge, len(src), len(src)+2)
			copy(row, src)
		} else if b := nv.base; b.spill != nil && b.spill[key] != nil {
			src := b.spill[key]
			row = append(make([]Edge, 0, len(src)+2), src...)
		} else if in {
			row = b.in[t].appendRow(make([]Edge, 0, b.in[t].degreeAt(ord)+2), ord, b.nodes)
		} else {
			row = b.out[t].appendRow(make([]Edge, 0, b.out[t].degreeAt(ord)+2), ord, b.nodes)
		}
		if nv.edgeOver == nil {
			nv.edgeOver = make(map[edgeKey][]Edge)
		}
		nv.edgeOver[key] = row
		if owned == nil {
			owned = make(map[edgeKey]bool)
		}
		owned[key] = true
		return key
	}

	for _, d := range ds {
		for _, dn := range d.nodes {
			if _, ok := nv.Ord(dn.id); ok {
				continue // already visible (defensive; cannot happen for committed state)
			}
			ord := n0 + int32(len(nv.nodesOver))
			nv.nodesOver = append(nv.nodesOver, dn.id)
			if nv.ordOver == nil {
				nv.ordOver = make(map[ids.ID]int32)
			}
			nv.ordOver[dn.id] = ord
			if nv.propsOver == nil {
				nv.propsOver = make(map[int32]Props)
			}
			// Every appended ordinal gets a props entry (possibly nil for
			// bare endpoint records) — propsAt relies on it.
			nv.propsOver[ord] = dn.props
			if dn.inKindList {
				k := dn.id.Kind()
				nv.byKind[k] = append(nv.byKind[k], dn.id)
			}
		}
		for _, dp := range d.props {
			ord, ok := nv.Ord(dp.id)
			if !ok {
				continue
			}
			if nv.propsOver == nil {
				nv.propsOver = make(map[int32]Props)
			}
			nv.propsOver[ord] = dp.props
		}
		for _, de := range d.edges {
			ord, ok := nv.Ord(de.owner)
			if !ok {
				continue
			}
			key := ownRow(ord, de.t, de.in)
			nv.edgeOver[key] = append(nv.edgeOver[key], Edge{To: de.peer, Stamp: de.stamp})
		}
		for _, dd := range d.dels {
			ord, ok := nv.Ord(dd.owner)
			if !ok {
				continue
			}
			key := ownRow(ord, dd.t, dd.in)
			row := nv.edgeOver[key]
			// Rows are insertion-ordered, so the last (peer, stamp) match is
			// the newest — the entry Commit tombstoned.
			for i := len(row) - 1; i >= 0; i-- {
				if row[i].To == dd.peer && row[i].Stamp == dd.stamp {
					nv.edgeOver[key] = append(row[:i], row[i+1:]...)
					break
				}
			}
		}
	}
	return nv
}
