package store

import "ldbcsnb/internal/ids"

// Reader is the uniform read surface of the store. Every read-only query in
// internal/workload is written exactly once against this contract and runs
// on either of the two read paths:
//
//   - *Txn — MVCC snapshot filtering under shard read locks, overlaying the
//     transaction's own buffered writes;
//   - *SnapshotView — a frozen compact CSR image of one commit epoch,
//     lock-free and steady-state allocation-free (Out/In serve rows out of
//     the view's decode cache over the varint/delta slab).
//
// Queries take a type parameter constrained by Reader
// (func Q9[R Reader](r R, ...)) rather than the interface itself, so the
// concrete read path is fixed at each call site. Per-traversal visited-set
// state lives outside the reader (workload.Scratch); Frozen is the hook it
// uses to pick its representation: dense bitsets keyed by the view's node
// ordinals when a frozen view is available, node-ID hash sets otherwise.
//
// Slices returned by Out, In and NodesOfKind (and Props on the view path)
// alias reader-owned memory and must not be mutated by callers.
type Reader interface {
	// Exists reports whether a node is visible to the reader.
	Exists(id ids.ID) bool
	// Prop returns one property of a node (zero Value if the node or
	// property is absent).
	Prop(id ids.ID, key PropKey) Value
	// Props returns the visible property list of a node.
	Props(id ids.ID) (Props, bool)
	// Out returns the visible outgoing edges of one type, in insertion
	// order.
	Out(id ids.ID, t EdgeType) []Edge
	// In returns the visible incoming edges of one type.
	In(id ids.ID, t EdgeType) []Edge
	// OutDegree returns len(Out(id, t)) without materialising the edges:
	// the Txn path counts in place, the view path reads the row header.
	OutDegree(id ids.ID, t EdgeType) int
	// InDegree returns len(In(id, t)) without materialising the edges.
	InDegree(id ids.ID, t EdgeType) int
	// NodesOfKind returns the visible nodes of a kind in insertion order.
	NodesOfKind(kind ids.Kind) []ids.ID
	// Frozen returns the reader's immutable snapshot view when it has one
	// (the lock-free read path), or nil for MVCC transactions.
	Frozen() *SnapshotView
}

var (
	_ Reader = (*Txn)(nil)
	_ Reader = (*SnapshotView)(nil)
)

// Frozen on a transaction returns nil: Txn reads go through MVCC version
// filtering and may observe the transaction's own uncommitted writes, so no
// frozen ordinal space exists for them.
func (tx *Txn) Frozen() *SnapshotView { return nil }

// Frozen on a view returns the view itself.
func (v *SnapshotView) Frozen() *SnapshotView { return v }
