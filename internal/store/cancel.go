package store

import (
	"context"
	"errors"
)

// Cooperative query cancellation on the frozen-view read path.
//
// Queries are plain Go functions over the Reader contract — they return
// results, not errors, and their hot loops are allocation-free. Deadline
// enforcement therefore cannot thread a ctx parameter through every
// Out/In/Prop call without taxing the fast path and rewriting every
// query. Instead, a serving layer derives a per-request view with
// WithCancel: a shallow copy of the shared SnapshotView carrying a
// cancellation hook that the Reader scan-loop entry points (Out, In,
// Prop) poll every cancelEvery calls. When the request's context is done
// the hook unwinds the query with a private panic sentinel, which
// CatchCanceled converts back into ErrQueryCanceled at the dispatch
// boundary — the registries' RunViewCtx hooks wrap exactly this pattern.
//
// The cost on the shared, uncancellable view is one nil check per read
// call; TestViewAdjacencyZeroAlloc still pins 0 allocs/op.

// ErrQueryCanceled is returned by the context-aware registry run hooks
// when a query was unwound mid-scan because its context was canceled
// (deadline exceeded or caller cancellation).
var ErrQueryCanceled = errors.New("store: query canceled")

// cancelEvery is the polling stride: the hook checks the context's done
// channel once per this many ticked read calls. Point reads are tens of
// nanoseconds, so the worst-case overshoot past a deadline is a few
// microseconds — far below any admission-queue tick.
const cancelEvery = 128

// canceled is the panic sentinel the hook unwinds queries with. It is a
// distinct unexported type so CatchCanceled can never confuse it with a
// genuine query panic.
type canceled struct{}

// cancelHook is the per-request poll state. It is owned by the request's
// goroutine (WithCancel hands out one per derived view) — the budget
// counter is deliberately unsynchronised, so a cancellable view must not
// be shared across goroutines (the morsel-parallel executor takes the
// shared view instead).
type cancelHook struct {
	done   <-chan struct{}
	budget int
}

// tick is called from the //snb:noalloc read entry points: decrement the
// stride budget and, once it runs out, poll the done channel.
//
//go:noinline
func (c *cancelHook) tick() {
	c.budget--
	if c.budget > 0 {
		return
	}
	c.budget = cancelEvery
	select {
	case <-c.done:
		panic(canceled{})
	default:
	}
}

// WithCancel returns a view that cooperatively aborts reads once ctx is
// done: Out, In and Prop poll the context every cancelEvery calls and
// unwind with a panic that CatchCanceled translates to ErrQueryCanceled.
// The derived view shares all data with v (same timestamp, era and
// ordinals) and is intended for one request on one goroutine; v itself is
// untouched and stays shareable. A context that can never be canceled
// returns v unchanged.
func (v *SnapshotView) WithCancel(ctx context.Context) *SnapshotView {
	if ctx == nil {
		return v
	}
	done := ctx.Done()
	if done == nil {
		return v
	}
	nv := *v
	nv.cancel = &cancelHook{done: done, budget: cancelEvery}
	return &nv
}

// CatchCanceled is the deferred counterpart of WithCancel: it converts
// the cooperative-cancellation unwind into *err == ErrQueryCanceled and
// re-panics anything else. Use as
//
//	defer store.CatchCanceled(&err)
//	res = spec.RunView(v.WithCancel(ctx), sc, p)
func CatchCanceled(err *error) {
	if r := recover(); r != nil {
		if _, ok := r.(canceled); ok {
			*err = ErrQueryCanceled
			return
		}
		panic(r)
	}
}
