package store

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ldbcsnb/internal/ids"
)

// Cooperative cancellation (cancel.go) and closed-store sentinel tests:
// WithCancel views must unwind mid-scan once their context is done and be
// transparent otherwise, and commits racing Persistent.Close must either
// be durable or fail with ErrStoreClosed — never silently dropped.

// cancelFixture builds a store with one person holding enough knows edges
// that a scan loop comfortably crosses the cancelEvery polling stride.
func cancelFixture(t *testing.T) (*Store, ids.ID) {
	t.Helper()
	s := New()
	center := personID(1)
	tx := s.Begin()
	if err := tx.CreateNode(center, nil); err != nil {
		t.Fatal(err)
	}
	for i := uint32(2); i < 40; i++ {
		if err := tx.CreateNode(personID(i), nil); err != nil {
			t.Fatal(err)
		}
		if err := tx.AddEdge(center, EdgeKnows, personID(i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return s, center
}

// scanUntilDone drives Out calls through the cancellable view until the
// cooperative check unwinds it (or the call budget runs out), returning
// the error CatchCanceled produced.
func scanUntilDone(v *SnapshotView, id ids.ID, calls int) (err error) {
	defer CatchCanceled(&err)
	for i := 0; i < calls; i++ {
		_ = v.Out(id, EdgeKnows)
	}
	return nil
}

func TestWithCancelUnwindsMidScan(t *testing.T) {
	s, center := cancelFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: the first stride check must fire
	cv := s.CurrentView().WithCancel(ctx)
	err := scanUntilDone(cv, center, 10*cancelEvery)
	if !errors.Is(err, ErrQueryCanceled) {
		t.Fatalf("scan over canceled ctx: got %v, want ErrQueryCanceled", err)
	}
}

func TestWithCancelLiveContextCompletes(t *testing.T) {
	s, center := cancelFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cv := s.CurrentView().WithCancel(ctx)
	if err := scanUntilDone(cv, center, 10*cancelEvery); err != nil {
		t.Fatalf("scan under live ctx failed: %v", err)
	}
	// The derived view must read the same data as the shared one.
	if got, want := len(cv.Out(center, EdgeKnows)), len(s.CurrentView().Out(center, EdgeKnows)); got != want {
		t.Fatalf("derived view degree %d, shared view %d", got, want)
	}
}

func TestWithCancelDeadline(t *testing.T) {
	s, center := cancelFixture(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	cv := s.CurrentView().WithCancel(ctx)
	if err := scanUntilDone(cv, center, 10*cancelEvery); !errors.Is(err, ErrQueryCanceled) {
		t.Fatalf("scan past deadline: got %v, want ErrQueryCanceled", err)
	}
}

func TestWithCancelUncancellableIsIdentity(t *testing.T) {
	s, _ := cancelFixture(t)
	v := s.CurrentView()
	if got := v.WithCancel(context.Background()); got != v {
		t.Fatal("WithCancel(Background) should return the view unchanged")
	}
	if got := v.WithCancel(nil); got != v {
		t.Fatal("WithCancel(nil) should return the view unchanged")
	}
}

func TestCatchCanceledRepanicsForeignValues(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("foreign panic swallowed by CatchCanceled")
		}
	}()
	var err error
	defer CatchCanceled(&err)
	panic("genuine query bug")
}

func TestMarkClosedFailsCommitsAndCheckedViews(t *testing.T) {
	s := New()
	tx := s.Begin()
	if err := tx.CreateNode(personID(1), nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	s.MarkClosed()
	s.MarkClosed() // idempotent

	tx = s.Begin()
	if err := tx.CreateNode(personID(2), nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("commit after MarkClosed: got %v, want ErrStoreClosed", err)
	}
	if _, _, err := s.AcquireViewChecked(); !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("AcquireViewChecked after MarkClosed: got %v, want ErrStoreClosed", err)
	}
	if !s.Closed() {
		t.Fatal("Closed() false after MarkClosed")
	}
	// Already-acquired views stay readable: reads never depend on the WAL.
	if !s.CurrentView().Exists(personID(1)) {
		t.Fatal("pre-close commit invisible in post-close view")
	}
}

// TestCommitVsCloseDurability is the commit-vs-Close regression test: with
// committers racing Persistent.Close, every Commit that returns nil must
// be recovered by the next Open (flush-on-close durability), and every
// commit arriving after the shutdown fence must fail with ErrStoreClosed —
// the pre-fence behaviour let such commits return nil while their redo
// records were silently dropped by the draining lanes.
func TestCommitVsCloseDurability(t *testing.T) {
	dir := t.TempDir()
	p, _, err := Open(dir, PersistOptions{CheckpointBytes: -1, WALLanes: 2}, registerTestIndexes)
	if err != nil {
		t.Fatal(err)
	}

	const writers = 4
	acked := make([][]ids.ID, writers) // per-writer nodes whose Commit returned nil
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := uint32(0); ; i++ {
				id := ids.Compose(ids.KindPerson, int64(w+1), i)
				tx := p.Store.Begin()
				if err := tx.CreateNode(id, Props{{PropCreationDate, Int64(int64(i))}}); err != nil {
					t.Errorf("writer %d: CreateNode: %v", w, err)
					return
				}
				err := tx.Commit()
				if errors.Is(err, ErrStoreClosed) {
					return
				}
				if err != nil {
					t.Errorf("writer %d: Commit: %v", w, err)
					return
				}
				acked[w] = append(acked[w], id)
			}
		}(w)
	}

	// Let the writers build momentum, then close under them.
	time.Sleep(20 * time.Millisecond)
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()

	// A commit after the fence must fail cleanly, not race the dead lanes.
	tx := p.Store.Begin()
	if err := tx.CreateNode(personID(999999), nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("commit after Close: got %v, want ErrStoreClosed", err)
	}

	total := 0
	for _, ids := range acked {
		total += len(ids)
	}
	if total == 0 {
		t.Fatal("no commits were acknowledged before Close; race not exercised")
	}

	rec, _, err := Open(dir, PersistOptions{CheckpointBytes: -1, WALLanes: 2}, registerTestIndexes)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer rec.Close()
	rv := rec.Store.CurrentView()
	for w, list := range acked {
		for _, id := range list {
			if !rv.Exists(id) {
				t.Fatalf("writer %d: acknowledged commit of %v lost across Close/Open", w, id)
			}
		}
	}
	if got, want := rec.Store.LastCommit(), p.Store.LastCommit(); got != want {
		t.Fatalf("recovered clock %d != live clock %d", got, want)
	}
}
