package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"ldbcsnb/internal/ids"
)

// Write-ahead commit log. Virtuoso and Sparksee are durable systems; the
// benchmark's update stream is replayed against committed state, so the
// engine provides an append-only redo log: every committed transaction is
// serialised (length-prefixed, CRC-protected) in commit order, and Recover
// rebuilds a store by replaying the log, stopping cleanly at a torn tail
// (e.g. after a crash mid-append).
//
// Format, little-endian:
//
//	record  := len:u32 crc:u32 payload
//	payload := commitTS:u64 nOps:u32 op*
//	op      := kind:u8 body
//	  kind 1 create-node: id:u64 nProps:u16 prop*
//	  kind 2 set-prop:    id:u64 prop
//	  kind 3 add-edge:    from:u64 type:u8 to:u64 stamp:u64 sym:u8
//	  kind 4 del-edge:    from:u64 type:u8 to:u64
//	prop    := key:u8 valKind:u8 (int:u64 | len:u32 bytes)
type walWriter struct {
	mu  sync.Mutex
	w   *bufio.Writer
	buf []byte
}

// ErrCorrupt reports a CRC mismatch mid-log (not a clean torn tail).
var ErrCorrupt = errors.New("store: corrupt WAL record")

// AttachWAL directs every subsequent commit's redo record to w. Attach
// before loading data; the store serialises log appends in commit order.
func (s *Store) AttachWAL(w io.Writer) {
	s.wal = &walWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

// FlushWAL flushes buffered log records to the underlying writer.
func (s *Store) FlushWAL() error {
	if s.wal == nil {
		return nil
	}
	s.wal.mu.Lock()
	defer s.wal.mu.Unlock()
	return s.wal.w.Flush()
}

func appendU16(b []byte, v uint16) []byte { return append(b, byte(v), byte(v>>8)) }
func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func appendU64(b []byte, v uint64) []byte {
	return appendU32(appendU32(b, uint32(v)), uint32(v>>32))
}

func appendProp(b []byte, p Prop) []byte {
	b = append(b, byte(p.Key))
	switch p.Val.k {
	case kindInt:
		b = append(b, 1)
		b = appendU64(b, uint64(p.Val.i))
	case kindString:
		b = append(b, 2)
		b = appendU32(b, uint32(len(p.Val.str)))
		b = append(b, p.Val.str...)
	default:
		b = append(b, 0)
	}
	return b
}

// logCommit serialises one committed transaction. Called under commitMu,
// so records land in commit order.
//
// The whole record — 8-byte length/CRC header plus payload — is assembled
// in the writer's pooled buffer, with the header patched in once the
// payload is complete. One commit therefore costs a single buffered Write
// and zero allocations once the buffer has warmed to the largest record
// size (wal_test.go pins this; BenchmarkWALLogCommit tracks it with
// -benchmem).
func (s *Store) logCommit(ts int64, created []*pendingNode, sets []pendingProp, edges []pendingEdge, dels []pendingDel) error {
	w := s.wal
	w.mu.Lock()
	defer w.mu.Unlock()
	b := append(w.buf[:0], 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	b = appendU64(b, uint64(ts))
	b = appendU32(b, uint32(len(created)+len(sets)+len(edges)+len(dels)))
	for _, n := range created {
		b = append(b, 1)
		b = appendU64(b, uint64(n.id))
		b = appendU16(b, uint16(len(n.props)))
		for _, p := range n.props {
			b = appendProp(b, p)
		}
	}
	for _, set := range sets {
		b = append(b, 2)
		b = appendU64(b, uint64(set.id))
		b = appendProp(b, Prop{Key: set.key, Val: set.val})
	}
	for _, e := range edges {
		b = append(b, 3)
		b = appendU64(b, uint64(e.from))
		b = append(b, byte(e.t))
		b = appendU64(b, uint64(e.to))
		b = appendU64(b, uint64(e.stamp))
		sym := byte(0)
		if e.sym {
			sym = 1
		}
		b = append(b, sym)
	}
	for _, d := range dels {
		b = append(b, 4)
		b = appendU64(b, uint64(d.from))
		b = append(b, byte(d.t))
		b = appendU64(b, uint64(d.to))
	}
	w.buf = b

	payload := b[8:]
	binary.LittleEndian.PutUint32(b[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:8], crc32.ChecksumIEEE(payload))
	_, err := w.w.Write(b)
	return err
}

// Recover replays a WAL into the store (which must be freshly constructed,
// with indexes registered). It returns the number of transactions applied.
// A truncated final record (torn write) ends recovery without error; a CRC
// mismatch on a complete record returns ErrCorrupt.
func (s *Store) Recover(r io.Reader) (int, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	applied := 0
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return applied, nil
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return applied, nil // torn header
			}
			return applied, err
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if length > 1<<30 {
			return applied, fmt.Errorf("%w: implausible record length %d", ErrCorrupt, length)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				return applied, nil // torn payload
			}
			return applied, err
		}
		if crc32.ChecksumIEEE(payload) != want {
			return applied, ErrCorrupt
		}
		if err := s.applyRecord(payload); err != nil {
			return applied, err
		}
		applied++
	}
}

type walDecoder struct {
	b   []byte
	pos int
	err error
}

func (d *walDecoder) u8() byte {
	if d.err != nil || d.pos+1 > len(d.b) {
		d.err = io.ErrUnexpectedEOF
		return 0
	}
	v := d.b[d.pos]
	d.pos++
	return v
}

func (d *walDecoder) u16() uint16 {
	if d.err != nil || d.pos+2 > len(d.b) {
		d.err = io.ErrUnexpectedEOF
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b[d.pos:])
	d.pos += 2
	return v
}

func (d *walDecoder) u32() uint32 {
	if d.err != nil || d.pos+4 > len(d.b) {
		d.err = io.ErrUnexpectedEOF
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.pos:])
	d.pos += 4
	return v
}

func (d *walDecoder) u64() uint64 {
	if d.err != nil || d.pos+8 > len(d.b) {
		d.err = io.ErrUnexpectedEOF
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.pos:])
	d.pos += 8
	return v
}

func (d *walDecoder) str(n int) string {
	if d.err != nil || d.pos+n > len(d.b) {
		d.err = io.ErrUnexpectedEOF
		return ""
	}
	v := string(d.b[d.pos : d.pos+n])
	d.pos += n
	return v
}

func (d *walDecoder) prop() Prop {
	key := PropKey(d.u8())
	switch d.u8() {
	case 1:
		return Prop{Key: key, Val: Int64(int64(d.u64()))}
	case 2:
		n := int(d.u32())
		return Prop{Key: key, Val: String(d.str(n))}
	default:
		return Prop{Key: key}
	}
}

// applyRecord replays one committed transaction through the normal commit
// path, preserving semantics (indexes, adjacency, versions).
func (s *Store) applyRecord(payload []byte) error {
	d := &walDecoder{b: payload}
	_ = d.u64() // original commit timestamp; replay assigns fresh ones
	n := int(d.u32())
	tx := s.Begin()
	for i := 0; i < n && d.err == nil; i++ {
		switch d.u8() {
		case 1:
			id := ids.ID(d.u64())
			np := int(d.u16())
			props := make(Props, 0, np)
			for j := 0; j < np; j++ {
				props = append(props, d.prop())
			}
			if err := tx.CreateNode(id, props); err != nil {
				tx.Abort()
				return err
			}
		case 2:
			id := ids.ID(d.u64())
			p := d.prop()
			if err := tx.SetProp(id, p.Key, p.Val); err != nil {
				tx.Abort()
				return err
			}
		case 3:
			from := ids.ID(d.u64())
			t := EdgeType(d.u8())
			to := ids.ID(d.u64())
			stamp := int64(d.u64())
			sym := d.u8() == 1
			var err error
			if sym {
				err = tx.AddKnows(from, to, stamp)
			} else {
				err = tx.AddEdge(from, t, to, stamp)
			}
			if err != nil {
				tx.Abort()
				return err
			}
		case 4:
			from := ids.ID(d.u64())
			t := EdgeType(d.u8())
			to := ids.ID(d.u64())
			if err := tx.DeleteEdge(from, t, to); err != nil {
				tx.Abort()
				return err
			}
		default:
			tx.Abort()
			return fmt.Errorf("%w: unknown op kind", ErrCorrupt)
		}
	}
	if d.err != nil {
		tx.Abort()
		return fmt.Errorf("%w: %v", ErrCorrupt, d.err)
	}
	return tx.Commit()
}
