package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"ldbcsnb/internal/ids"
)

// Write-ahead commit log. Virtuoso and Sparksee are durable systems; the
// benchmark's update stream is replayed against committed state, so the
// engine provides an append-only redo log: every committed transaction is
// serialised (length-prefixed, CRC-protected) in commit order, and Recover
// rebuilds a store by replaying the log, stopping cleanly at a torn tail
// (e.g. after a crash mid-append).
//
// Format (docs/FORMATS.md is the authoritative spec), little-endian:
//
//	record  := len:u32 crc:u32 payload
//	payload := commitTS:u64 nOps:u32 op*
//	op      := kind:u8 body
//	  kind 1 create-node: id:u64 nProps:u16 prop*
//	  kind 2 set-prop:    id:u64 prop
//	  kind 3 add-edge:    from:u64 type:u8 to:u64 stamp:u64 sym:u8
//	  kind 4 del-edge:    from:u64 type:u8 to:u64
//	prop    := key:u8 valKind:u8 (int:u64 | len:u32 bytes)
//
// The log has two sinks. AttachWAL streams records to one caller-owned
// io.Writer through this walWriter (tests, ablations, piping to external
// storage); the durable path (Open in persist.go) instead wires the
// group-commit batcher (groupcommit.go), which coalesces records into
// per-lane segmented files (segment.go) with batched fsync barriers and
// checkpoint truncation.
type walWriter struct {
	mu  sync.Mutex
	w   *bufio.Writer
	buf []byte // guarded by mu; pooled record-assembly scratch
}

// ErrCorrupt reports a CRC mismatch mid-log (not a clean torn tail).
var ErrCorrupt = errors.New("store: corrupt WAL record")

// AttachWAL directs every subsequent commit's redo record to w. Attach
// before loading data; the store serialises log appends in commit order.
//
// Durability guarantee: none by itself. Records are buffered; FlushWAL
// pushes them to w, and whether bytes written to w survive a crash is the
// caller's concern (w may be a file the caller fsyncs, a network sink, or
// an in-memory buffer). For on-disk durability with explicit guarantees use
// Open (persist.go), which attaches a segmented file-backed WAL with
// flush-on-close or fsync-on-commit semantics.
func (s *Store) AttachWAL(w io.Writer) {
	s.wal = &walWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

// FlushWAL flushes buffered log records to the underlying writer (the
// attached io.Writer, or every lane's active segment file).
//
// Durability guarantee: flushed records have left the process but are NOT
// fsynced — after FlushWAL a crash of the process cannot lose them, but a
// crash of the machine can. SyncWAL (or PersistOptions.WALSync=SyncCommit)
// adds the fsync barrier.
func (s *Store) FlushWAL() error {
	if s.gwal != nil {
		return s.gwal.barrier(laneBarrier{flush: true})
	}
	if s.wal == nil {
		return nil
	}
	s.wal.mu.Lock()
	defer s.wal.mu.Unlock()
	return s.wal.w.Flush()
}

// SyncWAL flushes buffered log records and, on a segmented file-backed WAL,
// fsyncs every lane's active segment: when it returns nil, every commit
// that completed before the call is durable on disk. On a plain io.Writer
// WAL it is equivalent to FlushWAL (the store cannot fsync a writer it
// does not own).
func (s *Store) SyncWAL() error {
	if s.gwal != nil {
		return s.gwal.barrier(laneBarrier{sync: true})
	}
	if s.wal == nil {
		return nil
	}
	s.wal.mu.Lock()
	defer s.wal.mu.Unlock()
	return s.wal.w.Flush()
}

// rotateWAL seals every lane's active WAL segment and opens the next one,
// so that every previously logged record lives in a sealed (immutable,
// fsynced) segment. Used by the checkpointer: a checkpoint taken after
// rotation covers every sealed segment, making them truncatable. No-op
// when the WAL is not segmented; a lane whose active segment is still
// empty keeps it.
func (s *Store) rotateWAL() error {
	if s.gwal == nil {
		return nil
	}
	return s.gwal.barrier(laneBarrier{rotate: true})
}

func appendU16(b []byte, v uint16) []byte { return append(b, byte(v), byte(v>>8)) }
func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func appendU64(b []byte, v uint64) []byte {
	return appendU32(appendU32(b, uint32(v)), uint32(v>>32))
}

func appendProp(b []byte, p Prop) []byte {
	b = append(b, byte(p.Key))
	switch p.Val.k {
	case kindInt:
		b = append(b, 1)
		b = appendU64(b, uint64(p.Val.bits))
	case kindString:
		// WAL records carry strings inline (not interned symbols), so the
		// format — and v1-era tail replay — is independent of any process's
		// symbol assignment.
		s := p.Val.Str()
		b = append(b, 2)
		b = appendU32(b, uint32(len(s)))
		b = append(b, s...)
	default:
		b = append(b, 0)
	}
	return b
}

// appendCommitRecord serialises one committed transaction onto b — 8-byte
// length/CRC header plus payload, header patched in once the payload is
// complete — and returns the grown slice. It is the single encoder shared
// by the plain walWriter (logCommit) and the group-commit batcher
// (deposit): both sinks emit byte-identical records. Appending into a
// caller-pooled buffer keeps the hot commit path allocation-free once the
// buffer has warmed to the largest record size.
//
//snb:noalloc
func appendCommitRecord(buf []byte, ts int64, created []*pendingNode, sets []pendingProp, edges []pendingEdge, dels []pendingDel) []byte {
	start := len(buf)
	b := append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	b = appendU64(b, uint64(ts))
	b = appendU32(b, uint32(len(created)+len(sets)+len(edges)+len(dels)))
	for _, n := range created {
		b = append(b, 1)
		b = appendU64(b, uint64(n.id))
		b = appendU16(b, uint16(len(n.props)))
		for _, p := range n.props {
			b = appendProp(b, p)
		}
	}
	for _, set := range sets {
		b = append(b, 2)
		b = appendU64(b, uint64(set.id))
		b = appendProp(b, Prop{Key: set.key, Val: set.val})
	}
	for _, e := range edges {
		b = append(b, 3)
		b = appendU64(b, uint64(e.from))
		b = append(b, byte(e.t))
		b = appendU64(b, uint64(e.to))
		b = appendU64(b, uint64(e.stamp))
		sym := byte(0)
		if e.sym {
			sym = 1
		}
		b = append(b, sym)
	}
	for _, d := range dels {
		b = append(b, 4)
		b = appendU64(b, uint64(d.from))
		b = append(b, byte(d.t))
		b = appendU64(b, uint64(d.to))
	}
	payload := b[start+8:]
	binary.LittleEndian.PutUint32(b[start:start+4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[start+4:start+8], crc32.ChecksumIEEE(payload))
	return b
}

// logCommit serialises one committed transaction to the plain attached
// writer. Called under commitMu, so records land in commit order. One
// commit costs a single buffered Write and zero allocations once the
// pooled buffer has warmed (wal_test.go pins this; BenchmarkWALLogCommit
// tracks it with -benchmem).
//
//snb:noalloc
func (s *Store) logCommit(ts int64, created []*pendingNode, sets []pendingProp, edges []pendingEdge, dels []pendingDel) error {
	w := s.wal
	w.mu.Lock()
	defer w.mu.Unlock()
	b := appendCommitRecord(w.buf[:0], ts, created, sets, edges, dels)
	w.buf = b
	_, err := w.w.Write(b)
	return err
}

// Recover replays a WAL into the store (which must be freshly constructed,
// with indexes registered). It returns the number of transactions applied.
// A truncated final record (torn write) ends recovery without error; a CRC
// mismatch on a complete record returns ErrCorrupt.
//
// Recover consumes the single-stream format AttachWAL produces. Segmented
// on-disk logs written by Open recover through Open itself (checkpoint +
// tail replay); both share this record format and scan loop.
func (s *Store) Recover(r io.Reader) (int, error) {
	n, _, err := scanRecords(bufio.NewReaderSize(r, 1<<16), s.applyRecord)
	return n, err
}

// scanRecords reads length-prefixed records from br and calls fn with each
// complete, CRC-valid payload. It returns the number of records delivered
// and the clean length: the byte offset just past the last valid record. A
// torn tail — an incomplete header or payload at EOF — ends the scan
// without error (the torn bytes are excluded from the clean length); a CRC
// mismatch or implausible length on a complete record returns ErrCorrupt.
func scanRecords(br *bufio.Reader, fn func(payload []byte) error) (int, int64, error) {
	applied := 0
	clean := int64(0)
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				return applied, clean, nil // clean end or torn header
			}
			return applied, clean, err
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if length > 1<<30 {
			return applied, clean, fmt.Errorf("%w: implausible record length %d", ErrCorrupt, length)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				return applied, clean, nil // torn payload
			}
			return applied, clean, err
		}
		if crc32.ChecksumIEEE(payload) != want {
			return applied, clean, ErrCorrupt
		}
		if err := fn(payload); err != nil {
			return applied, clean, err
		}
		applied++
		clean += 8 + int64(length)
	}
}

type walDecoder struct {
	b   []byte
	pos int
	err error

	// String-materialisation arena: str converts the input in chunks and
	// hands out substrings, so decoding n property strings costs O(n/chunk)
	// allocations instead of n. Used by checkpoint restore, where string
	// count is proportional to the dataset; zero-valued decoders fall back
	// lazily on first use.
	sarena       string
	sstart, send int
}

// strChunk is the string-arena granularity. All substrings of one chunk
// share its backing, so a chunk is only reclaimable as a whole — fine for
// recovery (everything decoded stays live) and bounded for WAL replay.
const strChunk = 1 << 15

func (d *walDecoder) u8() byte {
	if d.err != nil || d.pos+1 > len(d.b) {
		d.err = io.ErrUnexpectedEOF
		return 0
	}
	v := d.b[d.pos]
	d.pos++
	return v
}

func (d *walDecoder) u16() uint16 {
	if d.err != nil || d.pos+2 > len(d.b) {
		d.err = io.ErrUnexpectedEOF
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b[d.pos:])
	d.pos += 2
	return v
}

func (d *walDecoder) u32() uint32 {
	if d.err != nil || d.pos+4 > len(d.b) {
		d.err = io.ErrUnexpectedEOF
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.pos:])
	d.pos += 4
	return v
}

func (d *walDecoder) u64() uint64 {
	if d.err != nil || d.pos+8 > len(d.b) {
		d.err = io.ErrUnexpectedEOF
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.pos:])
	d.pos += 8
	return v
}

// uvarint reads one unsigned varint (checkpoint v2 adjacency and counts).
func (d *walDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.pos:])
	if n <= 0 {
		d.err = io.ErrUnexpectedEOF
		return 0
	}
	d.pos += n
	return v
}

// varint reads one zigzag-coded signed varint.
func (d *walDecoder) varint() int64 { return unzigzag(d.uvarint()) }

func (d *walDecoder) str(n int) string {
	if d.err != nil || d.pos+n > len(d.b) {
		d.err = io.ErrUnexpectedEOF
		return ""
	}
	if d.pos+n > d.send {
		end := d.pos + strChunk
		if e := d.pos + n; e > end {
			end = e
		}
		if end > len(d.b) {
			end = len(d.b)
		}
		d.sarena = string(d.b[d.pos:end])
		d.sstart, d.send = d.pos, end
	}
	v := d.sarena[d.pos-d.sstart : d.pos-d.sstart+n]
	d.pos += n
	return v
}

func (d *walDecoder) prop() Prop {
	key := PropKey(d.u8())
	switch d.u8() {
	case 1:
		return Prop{Key: key, Val: Int64(int64(d.u64()))}
	case 2:
		n := int(d.u32())
		return Prop{Key: key, Val: String(d.str(n))}
	default:
		return Prop{Key: key}
	}
}

// propsInto decodes len(dst) consecutive props into dst. Semantically
// identical to calling prop() per element, but with one bounds check per
// field group instead of per byte — this loop decodes every property in
// the database during checkpoint restore.
func (d *walDecoder) propsInto(dst Props) {
	b := d.b
	pos := d.pos
	for j := range dst {
		if d.err != nil || pos+2 > len(b) {
			d.err = io.ErrUnexpectedEOF
			return
		}
		key := PropKey(b[pos])
		vk := b[pos+1]
		pos += 2
		switch vk {
		case 1:
			if pos+8 > len(b) {
				d.err = io.ErrUnexpectedEOF
				return
			}
			dst[j] = Prop{Key: key, Val: Int64(int64(binary.LittleEndian.Uint64(b[pos:])))}
			pos += 8
		case 2:
			if pos+4 > len(b) {
				d.err = io.ErrUnexpectedEOF
				return
			}
			n := int(binary.LittleEndian.Uint32(b[pos:]))
			pos += 4
			d.pos = pos
			dst[j] = Prop{Key: key, Val: String(d.str(n))}
			pos = d.pos
			if d.err != nil {
				return
			}
		default:
			dst[j] = Prop{Key: key}
		}
	}
	d.pos = pos
}

// applyRecord replays one committed transaction through the normal commit
// path, preserving semantics (indexes, adjacency, versions).
func (s *Store) applyRecord(payload []byte) error {
	d := &walDecoder{b: payload}
	_ = d.u64() // original commit timestamp; replay assigns fresh ones
	n := int(d.u32())
	tx := s.Begin()
	for i := 0; i < n && d.err == nil; i++ {
		switch d.u8() {
		case 1:
			id := ids.ID(d.u64())
			np := int(d.u16())
			props := make(Props, 0, np)
			for j := 0; j < np; j++ {
				props = append(props, d.prop())
			}
			if err := tx.CreateNode(id, props); err != nil {
				tx.Abort()
				return err
			}
		case 2:
			id := ids.ID(d.u64())
			p := d.prop()
			if err := tx.SetProp(id, p.Key, p.Val); err != nil {
				tx.Abort()
				return err
			}
		case 3:
			from := ids.ID(d.u64())
			t := EdgeType(d.u8())
			to := ids.ID(d.u64())
			stamp := int64(d.u64())
			sym := d.u8() == 1
			var err error
			if sym {
				err = tx.AddKnows(from, to, stamp)
			} else {
				err = tx.AddEdge(from, t, to, stamp)
			}
			if err != nil {
				tx.Abort()
				return err
			}
		case 4:
			from := ids.ID(d.u64())
			t := EdgeType(d.u8())
			to := ids.ID(d.u64())
			if err := tx.DeleteEdge(from, t, to); err != nil {
				tx.Abort()
				return err
			}
		default:
			tx.Abort()
			return fmt.Errorf("%w: unknown op kind", ErrCorrupt)
		}
	}
	if d.err != nil {
		tx.Abort()
		return fmt.Errorf("%w: %v", ErrCorrupt, d.err)
	}
	return tx.Commit()
}
