package store

import (
	"testing"

	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/xrand"
)

// Tests for incremental snapshot-view maintenance: the delta-refreshed
// CurrentView chain must be indistinguishable from full rebuilds at every
// epoch, ordinals must stay stable within an era, and the maintenance
// counters must prove which path ran.

// assertViewMatchesRebuild compares a (possibly delta-refreshed) view
// against a from-scratch compaction at the same timestamp: same node set,
// consistent ordinal<->ID mapping, identical adjacency rows, props and
// kind lists. Ordinal values themselves may differ (refresh appends, a
// rebuild sorts), so the comparison is keyed by node ID.
func assertViewMatchesRebuild(t *testing.T, v, ref *SnapshotView) {
	t.Helper()
	if v.Timestamp() != ref.Timestamp() {
		t.Fatalf("timestamps diverge: %d vs %d", v.Timestamp(), ref.Timestamp())
	}
	if v.NumNodes() != ref.NumNodes() {
		t.Fatalf("node counts diverge: %d vs %d", v.NumNodes(), ref.NumNodes())
	}
	for o := int32(0); o < int32(ref.NumNodes()); o++ {
		id := ref.IDAt(o)
		vo, ok := v.Ord(id)
		if !ok {
			t.Fatalf("node %v missing from refreshed view", id)
		}
		if back := v.IDAt(vo); back != id {
			t.Fatalf("ordinal mapping broken: Ord(%v)=%d but IDAt(%d)=%v", id, vo, vo, back)
		}
		for _, et := range viewEdgeTypes {
			if got, want := v.Out(id, et), ref.Out(id, et); !edgesEqual(got, want) {
				t.Fatalf("Out(%v, %v): refreshed %v rebuild %v", id, et, got, want)
			}
			if got, want := v.In(id, et), ref.In(id, et); !edgesEqual(got, want) {
				t.Fatalf("In(%v, %v): refreshed %v rebuild %v", id, et, got, want)
			}
		}
		gotPs, _ := v.Props(id)
		wantPs, _ := ref.Props(id)
		if !propsEqual(gotPs, wantPs) {
			t.Fatalf("Props(%v): refreshed %v rebuild %v", id, gotPs, wantPs)
		}
	}
	for _, kind := range []ids.Kind{ids.KindPerson, ids.KindPost, ids.KindComment} {
		got, want := v.NodesOfKind(kind), ref.NodesOfKind(kind)
		if len(got) != len(want) {
			t.Fatalf("NodesOfKind(%v): refreshed %d rebuild %d", kind, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("NodesOfKind(%v)[%d]: refreshed %v rebuild %v", kind, i, got[i], want[i])
			}
		}
	}
}

// refreshEquivalenceSweep grows a random graph one committed transaction at
// a time and, after every commit, checks the delta-refreshed CurrentView
// against both a full rebuild (ViewAt) and an MVCC transaction at the same
// snapshot. The store's maintenance knobs are set by the caller so the
// sweep can run refresh-heavy, era-bump-heavy, or overflow-heavy.
func refreshEquivalenceSweep(t *testing.T, seed uint64, steps int, tune func(*Store)) ViewStatsSnapshot {
	t.Helper()
	r := xrand.New(seed)
	s := New()
	if tune != nil {
		tune(s)
	}
	var pop []ids.ID
	for step := 1; step <= steps; step++ {
		pop = randomGraphStep(t, s, r, pop, step)
		v := s.CurrentView()
		assertViewMatchesRebuild(t, v, s.ViewAt(v.Timestamp()))
		tx := s.Begin()
		tx.readonly = true
		assertViewMatchesTxn(t, s, v, tx, pop)
	}
	return s.ViewStats()
}

// TestViewRefreshEquivalenceRandomised is the delta-vs-full equivalence
// property: under an interleaved update stream (creations, property
// updates, edge insertions and deletions), the refreshed view chain must
// be indistinguishable from from-scratch compactions and from the MVCC
// read path at every epoch.
func TestViewRefreshEquivalenceRandomised(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		st := refreshEquivalenceSweep(t, seed, 30, nil)
		if st.Refreshes == 0 {
			t.Fatalf("sweep never exercised the refresh path: %+v", st)
		}
		if st.EraBumps != 0 {
			t.Fatalf("sweep unexpectedly recompacted under the default threshold: %+v", st)
		}
	}
}

// TestViewRefreshEquivalenceAcrossEraBumps forces frequent recompactions
// (a tiny compaction threshold) so the sweep crosses era bumps: refresh
// chains, rebuilds and the transitions between them must all stay
// equivalent.
func TestViewRefreshEquivalenceAcrossEraBumps(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		st := refreshEquivalenceSweep(t, seed, 30, func(s *Store) {
			s.SetViewCompactThreshold(20)
		})
		if st.EraBumps == 0 {
			t.Fatalf("sweep never bumped the era: %+v", st)
		}
		if st.Refreshes == 0 {
			t.Fatalf("sweep never refreshed between bumps: %+v", st)
		}
	}
}

// TestViewRefreshEquivalenceRingOverflow shrinks the delta ring so commit
// bursts overflow it: overflowed epochs must fall back to a correct full
// rebuild.
func TestViewRefreshEquivalenceRingOverflow(t *testing.T) {
	r := xrand.New(5)
	s := New()
	s.SetViewDeltaCap(2)
	var pop []ids.ID
	step := 1
	for round := 0; round < 8; round++ {
		// A burst of commits larger than the ring, then one view advance.
		for i := 0; i < 4; i++ {
			pop = randomGraphStep(t, s, r, pop, step)
			step++
		}
		v := s.CurrentView()
		assertViewMatchesRebuild(t, v, s.ViewAt(v.Timestamp()))
	}
	if st := s.ViewStats(); st.Overflows == 0 {
		t.Fatalf("ring never overflowed: %+v", st)
	}
}

// TestRingOverflowDoesNotAliasPendingDeltas is a regression test for the
// overflow path: dropping the ring must abandon the backing array, because
// a refresh may hold a pendingLocked subslice while commits keep landing —
// reusing the slots would hand that refresh foreign (future) deltas.
func TestRingOverflowDoesNotAliasPendingDeltas(t *testing.T) {
	s := New()
	s.SetViewDeltaCap(2)
	for i := 0; i < 2; i++ {
		tx := s.Begin()
		if err := tx.CreateNode(personID(830+uint32(i)), nil); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	s.deltaMu.Lock()
	ds, ok := s.pendingLocked(0, 2)
	s.deltaMu.Unlock()
	if !ok || len(ds) != 2 {
		t.Fatalf("pending range: ok=%v len=%d", ok, len(ds))
	}
	// This commit overflows the 2-slot ring while ds is still held.
	tx := s.Begin()
	if err := tx.CreateNode(personID(832), nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if ds[0].ts != 1 || ds[1].ts != 2 {
		t.Fatalf("held delta range mutated by overflow: ts %d, %d", ds[0].ts, ds[1].ts)
	}
}

// TestViewRefreshOrdinalStability pins the era contract: a delta refresh
// never reassigns an existing node's ordinal — new nodes get appended
// ordinals — while a recompaction bumps the era and may reassign.
func TestViewRefreshOrdinalStability(t *testing.T) {
	s := New()
	r := xrand.New(11)
	var pop []ids.ID
	pop = randomGraphStep(t, s, r, pop, 1)
	v1 := s.CurrentView()
	n1 := v1.NumNodes()

	pop = randomGraphStep(t, s, r, pop, 2)
	v2 := s.CurrentView()
	if v2.Era() != v1.Era() {
		t.Fatalf("sparse commit bumped the era: %d -> %d", v1.Era(), v2.Era())
	}
	for o := int32(0); o < int32(n1); o++ {
		id := v1.IDAt(o)
		o2, ok := v2.Ord(id)
		if !ok || o2 != o {
			t.Fatalf("refresh moved ordinal of %v: %d -> %d (ok=%v)", id, o, o2, ok)
		}
	}
	for o := int32(n1); o < int32(v2.NumNodes()); o++ {
		id := v2.IDAt(o)
		if v1.Exists(id) {
			t.Fatalf("appended ordinal %d holds pre-existing node %v", o, id)
		}
		if back, ok := v2.Ord(id); !ok || back != o {
			t.Fatalf("appended ordinal round trip: Ord(IDAt(%d)) = %d, %v", o, back, ok)
		}
	}

	// Force a recompaction: the era must bump and ordinals return to
	// ascending ID order.
	s.SetViewCompactThreshold(0)
	pop = randomGraphStep(t, s, r, pop, 3)
	v3 := s.CurrentView()
	if v3.Era() == v2.Era() {
		t.Fatal("forced recompaction kept the era")
	}
	var prev ids.ID
	for o := int32(0); o < int32(v3.NumNodes()); o++ {
		id := v3.IDAt(o)
		if o > 0 && id <= prev {
			t.Fatal("recompacted ordinals not in ascending ID order")
		}
		prev = id
	}
	_ = pop
}

// TestViewRefreshCounters pins the acceptance contract that the refresh
// path — not a rebuild — is what CurrentView takes after a sparse commit,
// observable through the maintenance counters.
func TestViewRefreshCounters(t *testing.T) {
	s := New()
	tx := s.Begin()
	if err := tx.CreateNode(personID(800), Props{{PropFirstName, String("a")}}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, ev := s.AcquireView(); ev != ViewRebuilt {
		t.Fatalf("first acquisition: %v, want rebuild", ev)
	}
	if _, ev := s.AcquireView(); ev != ViewHit {
		t.Fatalf("repeat acquisition: %v, want hit", ev)
	}

	tx = s.Begin()
	tx.CreateNode(personID(801), nil)
	tx.AddKnows(personID(800), personID(801), 1)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, ev := s.AcquireView(); ev != ViewRefreshed {
		t.Fatalf("post-sparse-commit acquisition: %v, want refresh", ev)
	}

	st := s.ViewStats()
	if st.Refreshes != 1 || st.Rebuilds != 1 || st.EraBumps != 0 {
		t.Fatalf("counters after sparse commit: %+v", st)
	}

	// Threshold 0 disables refreshing: the next advance must recompact and
	// bump the era.
	s.SetViewCompactThreshold(0)
	tx = s.Begin()
	tx.SetProp(personID(800), PropFirstName, String("b"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, ev := s.AcquireView(); ev != ViewRebuilt {
		t.Fatalf("acquisition with threshold 0: want rebuild")
	}
	st = s.ViewStats()
	if st.Rebuilds != 2 || st.EraBumps != 1 {
		t.Fatalf("counters after forced recompaction: %+v", st)
	}
}

// TestDeleteEdgeVisibility pins tombstone semantics on both read paths:
// the deleting commit hides the edge from later snapshots while earlier
// snapshots and retained views keep seeing it.
func TestDeleteEdgeVisibility(t *testing.T) {
	s := New()
	a, b := personID(810), personID(811)
	m := ids.Compose(ids.KindPost, 810, 0)
	tx := s.Begin()
	tx.CreateNode(a, nil)
	tx.CreateNode(b, nil)
	tx.CreateNode(m, nil)
	tx.AddKnows(a, b, 5)
	tx.AddEdge(a, EdgeLikes, m, 7)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	oldView := s.CurrentView()
	oldTxn := s.Begin()

	tx = s.Begin()
	tx.DeleteEdge(a, EdgeLikes, m)
	tx.DeleteEdge(a, EdgeKnows, b)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Old snapshots still see both edges.
	if len(oldView.Out(a, EdgeLikes)) != 1 || len(oldView.Out(a, EdgeKnows)) != 1 {
		t.Fatal("retained view lost a tombstoned edge")
	}
	if len(oldTxn.Out(a, EdgeLikes)) != 1 || len(oldTxn.In(m, EdgeLikes)) != 1 {
		t.Fatal("old snapshot lost a tombstoned edge")
	}

	// New snapshots see neither, on either path, in either direction.
	cur := s.CurrentView()
	s.View(func(rt *Txn) {
		for name, got := range map[string]int{
			"txn Out likes":   len(rt.Out(a, EdgeLikes)),
			"txn In likes":    len(rt.In(m, EdgeLikes)),
			"txn Out knows a": len(rt.Out(a, EdgeKnows)),
			"txn Out knows b": len(rt.Out(b, EdgeKnows)),
			"view Out likes":  len(cur.Out(a, EdgeLikes)),
			"view In likes":   len(cur.In(m, EdgeLikes)),
			"view knows a":    len(cur.Out(a, EdgeKnows)),
			"view knows b":    len(cur.Out(b, EdgeKnows)),
		} {
			if got != 0 {
				t.Fatalf("%s = %d after delete", name, got)
			}
		}
	})

	// Deleting a non-existent edge is a committed no-op.
	tx = s.Begin()
	tx.DeleteEdge(a, EdgeLikes, m)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteEdgeNewestOfDuplicates pins which duplicate a delete removes:
// the newest live insertion, on both read paths (the refresh path removes
// the last row occurrence, which must match the txn path's tombstone).
func TestDeleteEdgeNewestOfDuplicates(t *testing.T) {
	s := New()
	a, m := personID(820), ids.Compose(ids.KindPost, 820, 0)
	tx := s.Begin()
	tx.CreateNode(a, nil)
	tx.CreateNode(m, nil)
	tx.AddEdge(a, EdgeLikes, m, 1)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx = s.Begin()
	tx.AddEdge(a, EdgeLikes, m, 2)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	v0 := s.CurrentView() // chain root so the delete arrives via refresh
	if len(v0.Out(a, EdgeLikes)) != 2 {
		t.Fatal("setup: want 2 duplicate edges")
	}

	tx = s.Begin()
	tx.DeleteEdge(a, EdgeLikes, m)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	want := []Edge{{To: m, Stamp: 1}}
	cur := s.CurrentView()
	if got := cur.Out(a, EdgeLikes); !edgesEqual(got, want) {
		t.Fatalf("refreshed view after delete: %v, want %v", got, want)
	}
	s.View(func(rt *Txn) {
		if got := rt.Out(a, EdgeLikes); !edgesEqual(got, want) {
			t.Fatalf("txn after delete: %v, want %v", got, want)
		}
		if got := rt.In(m, EdgeLikes); !edgesEqual(got, []Edge{{To: a, Stamp: 1}}) {
			t.Fatalf("txn reverse after delete: %v", got)
		}
	})
	if ev := func() ViewEvent { _, e := s.AcquireView(); return e }(); ev != ViewHit {
		t.Fatalf("expected cached view, got %v", ev)
	}
	if st := s.ViewStats(); st.Refreshes == 0 {
		t.Fatalf("delete was not served by refresh: %+v", st)
	}
}
