package store

import (
	"testing"
	"testing/quick"

	"ldbcsnb/internal/ids"
)

func TestGCPrunesOldVersions(t *testing.T) {
	s := New()
	id := personID(700)
	tx := s.Begin()
	tx.CreateNode(id, Props{{PropFirstName, String("v0")}})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		tx := s.Begin()
		tx.SetProp(id, PropFirstName, String("v"+string(rune('1'+i))))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.VersionCount(); got != 10 {
		t.Fatalf("versions before GC: %d", got)
	}
	mid := s.Begin() // snapshot at the newest commit
	horizon := mid.Snapshot()
	reclaimed := s.GC(horizon)
	if reclaimed != 9 {
		t.Fatalf("reclaimed %d, want 9", reclaimed)
	}
	if got := s.VersionCount(); got != 1 {
		t.Fatalf("versions after GC: %d", got)
	}
	// The horizon snapshot still reads the correct value.
	if got := mid.Prop(id, PropFirstName).Str(); got != "v9" {
		t.Fatalf("post-GC read %q", got)
	}
}

func TestGCKeepsVersionsAboveHorizon(t *testing.T) {
	s := New()
	id := personID(701)
	tx := s.Begin()
	tx.CreateNode(id, Props{{PropFirstName, String("old")}})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	oldSnap := s.Begin() // must keep seeing "old"
	horizon := oldSnap.Snapshot()
	tx = s.Begin()
	tx.SetProp(id, PropFirstName, String("new"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if reclaimed := s.GC(horizon); reclaimed != 0 {
		t.Fatalf("reclaimed %d versions still visible to the horizon", reclaimed)
	}
	if got := oldSnap.Prop(id, PropFirstName).Str(); got != "old" {
		t.Fatalf("old snapshot reads %q after GC", got)
	}
}

func TestGCReclaimsEdgeTombstones(t *testing.T) {
	s := New()
	a, b := personID(710), personID(711)
	tx := s.Begin()
	tx.CreateNode(a, nil)
	tx.CreateNode(b, nil)
	tx.AddKnows(a, b, 1)
	tx.AddEdge(a, EdgeLikes, b, 2)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx = s.Begin()
	tx.DeleteEdge(a, EdgeKnows, b)
	tx.DeleteEdge(a, EdgeLikes, b)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Each logical edge is stored twice (out + mirror): 4 tombstones.
	if got := s.TombstoneCount(); got != 4 {
		t.Fatalf("tombstones before GC: %d, want 4", got)
	}
	if reclaimed := s.GC(s.LastCommit()); reclaimed != 4 {
		t.Fatalf("reclaimed %d, want 4", reclaimed)
	}
	if got := s.TombstoneCount(); got != 0 {
		t.Fatalf("tombstones after GC: %d", got)
	}
	// Current reads are unchanged: the edges were already invisible.
	s.View(func(rt *Txn) {
		if len(rt.Out(a, EdgeKnows)) != 0 || len(rt.Out(a, EdgeLikes)) != 0 {
			t.Fatal("reclaimed edges visible")
		}
	})
}

func TestGCKeepsTombstonesAboveHorizon(t *testing.T) {
	s := New()
	a, b := personID(712), personID(713)
	tx := s.Begin()
	tx.CreateNode(a, nil)
	tx.CreateNode(b, nil)
	tx.AddKnows(a, b, 1)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	oldSnap := s.Begin() // must keep seeing the edge
	horizon := oldSnap.Snapshot()
	tx = s.Begin()
	tx.DeleteEdge(a, EdgeKnows, b)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if reclaimed := s.GC(horizon); reclaimed != 0 {
		t.Fatalf("reclaimed %d edges still visible at the horizon", reclaimed)
	}
	if got := len(oldSnap.Out(a, EdgeKnows)); got != 1 {
		t.Fatalf("old snapshot lost the edge after GC: %d", got)
	}
	// Advancing the horizon past the delete reclaims both sides.
	if reclaimed := s.GC(s.LastCommit()); reclaimed != 2 {
		t.Fatalf("reclaimed %d at the new horizon, want 2", reclaimed)
	}
}

// TestGCPreservesSurvivingEdgeOrder pins that physically removing
// tombstones keeps the insertion order of surviving entries — the order
// both read paths report.
func TestGCPreservesSurvivingEdgeOrder(t *testing.T) {
	s := New()
	a := personID(714)
	peers := []ids.ID{personID(715), personID(716), personID(717)}
	tx := s.Begin()
	tx.CreateNode(a, nil)
	for i, p := range peers {
		tx.CreateNode(p, nil)
		tx.AddEdge(a, EdgeLikes, p, int64(i))
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx = s.Begin()
	tx.DeleteEdge(a, EdgeLikes, peers[1])
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	s.GC(s.LastCommit())
	want := []Edge{{To: peers[0], Stamp: 0}, {To: peers[2], Stamp: 2}}
	s.View(func(rt *Txn) {
		if got := rt.Out(a, EdgeLikes); !edgesEqual(got, want) {
			t.Fatalf("post-GC order: %v, want %v", got, want)
		}
	})
	if got := s.ViewAt(s.LastCommit()).Out(a, EdgeLikes); !edgesEqual(got, want) {
		t.Fatalf("post-GC view order: %v, want %v", got, want)
	}
}

func TestGCQuickInvariant(t *testing.T) {
	// Property: after GC at the current watermark, every node has exactly
	// one version and reads are unchanged.
	err := quick.Check(func(nUpdates uint8) bool {
		s := New()
		id := personID(702)
		tx := s.Begin()
		tx.CreateNode(id, Props{{PropLength, Int64(0)}})
		if tx.Commit() != nil {
			return false
		}
		n := int(nUpdates % 20)
		for i := 1; i <= n; i++ {
			tx := s.Begin()
			tx.SetProp(id, PropLength, Int64(int64(i)))
			if tx.Commit() != nil {
				return false
			}
		}
		var want int64
		s.View(func(tx *Txn) { want = tx.Prop(id, PropLength).Int() })
		s.GC(s.LastCommit())
		if s.VersionCount() != 1 {
			return false
		}
		var got int64
		s.View(func(tx *Txn) { got = tx.Prop(id, PropLength).Int() })
		return got == want
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}
