package store

import (
	"testing"
	"testing/quick"
)

func TestGCPrunesOldVersions(t *testing.T) {
	s := New()
	id := personID(700)
	tx := s.Begin()
	tx.CreateNode(id, Props{{PropFirstName, String("v0")}})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		tx := s.Begin()
		tx.SetProp(id, PropFirstName, String("v"+string(rune('1'+i))))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.VersionCount(); got != 10 {
		t.Fatalf("versions before GC: %d", got)
	}
	mid := s.Begin() // snapshot at the newest commit
	horizon := mid.Snapshot()
	reclaimed := s.GC(horizon)
	if reclaimed != 9 {
		t.Fatalf("reclaimed %d, want 9", reclaimed)
	}
	if got := s.VersionCount(); got != 1 {
		t.Fatalf("versions after GC: %d", got)
	}
	// The horizon snapshot still reads the correct value.
	if got := mid.Prop(id, PropFirstName).Str(); got != "v9" {
		t.Fatalf("post-GC read %q", got)
	}
}

func TestGCKeepsVersionsAboveHorizon(t *testing.T) {
	s := New()
	id := personID(701)
	tx := s.Begin()
	tx.CreateNode(id, Props{{PropFirstName, String("old")}})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	oldSnap := s.Begin() // must keep seeing "old"
	horizon := oldSnap.Snapshot()
	tx = s.Begin()
	tx.SetProp(id, PropFirstName, String("new"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if reclaimed := s.GC(horizon); reclaimed != 0 {
		t.Fatalf("reclaimed %d versions still visible to the horizon", reclaimed)
	}
	if got := oldSnap.Prop(id, PropFirstName).Str(); got != "old" {
		t.Fatalf("old snapshot reads %q after GC", got)
	}
}

func TestGCQuickInvariant(t *testing.T) {
	// Property: after GC at the current watermark, every node has exactly
	// one version and reads are unchanged.
	err := quick.Check(func(nUpdates uint8) bool {
		s := New()
		id := personID(702)
		tx := s.Begin()
		tx.CreateNode(id, Props{{PropLength, Int64(0)}})
		if tx.Commit() != nil {
			return false
		}
		n := int(nUpdates % 20)
		for i := 1; i <= n; i++ {
			tx := s.Begin()
			tx.SetProp(id, PropLength, Int64(int64(i)))
			if tx.Commit() != nil {
				return false
			}
		}
		var want int64
		s.View(func(tx *Txn) { want = tx.Prop(id, PropLength).Int() })
		s.GC(s.LastCommit())
		if s.VersionCount() != 1 {
			return false
		}
		var got int64
		s.View(func(tx *Txn) { got = tx.Prop(id, PropLength).Int() })
		return got == want
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}
