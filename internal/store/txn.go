package store

import (
	"errors"
	"fmt"
	"sort"

	"ldbcsnb/internal/btree"
	"ldbcsnb/internal/ids"
)

// ErrConflict is returned by Commit when first-committer-wins validation
// fails (another transaction committed a conflicting write after this
// transaction's snapshot).
var ErrConflict = errors.New("store: write-write conflict")

// ErrExists is returned when creating a node whose ID is already taken.
var ErrExists = errors.New("store: node already exists")

// ErrStoreClosed is returned by Commit and AcquireViewChecked once the
// store has been closed (Persistent.Close, or MarkClosed on an in-memory
// store). It replaces the pre-close race where a commit could deposit into
// a draining WAL lane and be silently dropped in non-SyncCommit modes: the
// closed flag is raised under commitMu before the lanes shut down, so
// every commit either fully precedes Close (its record reaches the lanes
// before they drain) or observes the flag and fails with this sentinel.
var ErrStoreClosed = errors.New("store: closed")

// pendingNode is a buffered node creation.
type pendingNode struct {
	id    ids.ID
	props Props
}

// pendingProp is a buffered property update on an existing node.
type pendingProp struct {
	id  ids.ID
	key PropKey
	val Value
}

// pendingEdge is a buffered edge insertion.
type pendingEdge struct {
	from, to ids.ID
	t        EdgeType
	stamp    int64
	sym      bool // also insert the mirrored edge (knows)
}

// pendingDel is a buffered edge deletion: at commit, the newest live
// matching edge (and its reverse/mirror entry) is tombstoned.
type pendingDel struct {
	from, to ids.ID
	t        EdgeType
}

// Txn is a transaction. Reads observe the snapshot taken at Begin plus the
// transaction's own writes. Txn is not safe for concurrent use by multiple
// goroutines.
type Txn struct {
	s        *Store
	snapshot int64
	readonly bool
	done     bool

	newNodes  map[ids.ID]*pendingNode
	propSets  []pendingProp
	newEdges  []pendingEdge
	edgeDels  []pendingDel
	edgeIndex map[ids.ID][]int // from-node -> indices into newEdges, for own-write reads
}

// Snapshot returns the transaction's snapshot timestamp.
func (tx *Txn) Snapshot() int64 { return tx.snapshot }

// CreateNode buffers creation of a node with the given properties. The
// node's creationDate property, if present, should match the workload's
// simulation time; the store itself only assigns the commit timestamp.
func (tx *Txn) CreateNode(id ids.ID, props Props) error {
	if tx.readonly {
		return errors.New("store: write in read-only transaction")
	}
	if tx.newNodes == nil {
		tx.newNodes = make(map[ids.ID]*pendingNode)
	}
	if _, ok := tx.newNodes[id]; ok {
		return fmt.Errorf("%w: %v created twice in transaction", ErrExists, id)
	}
	tx.newNodes[id] = &pendingNode{id: id, props: props}
	return nil
}

// SetProp buffers a property update on an existing node (creates a new
// MVCC version at commit).
func (tx *Txn) SetProp(id ids.ID, key PropKey, val Value) error {
	if tx.readonly {
		return errors.New("store: write in read-only transaction")
	}
	if n, ok := tx.newNodes[id]; ok {
		n.props = n.props.with(key, val)
		return nil
	}
	tx.propSets = append(tx.propSets, pendingProp{id, key, val})
	return nil
}

// AddEdge buffers insertion of a directed edge with a stamp attribute.
func (tx *Txn) AddEdge(from ids.ID, t EdgeType, to ids.ID, stamp int64) error {
	return tx.addEdge(from, t, to, stamp, false)
}

// AddKnows buffers a symmetric knows edge between two persons.
func (tx *Txn) AddKnows(a, b ids.ID, stamp int64) error {
	return tx.addEdge(a, EdgeKnows, b, stamp, true)
}

func (tx *Txn) addEdge(from ids.ID, t EdgeType, to ids.ID, stamp int64, sym bool) error {
	if tx.readonly {
		return errors.New("store: write in read-only transaction")
	}
	if tx.edgeIndex == nil {
		tx.edgeIndex = make(map[ids.ID][]int)
	}
	idx := len(tx.newEdges)
	tx.newEdges = append(tx.newEdges, pendingEdge{from: from, to: to, t: t, stamp: stamp, sym: sym})
	tx.edgeIndex[from] = append(tx.edgeIndex[from], idx)
	if sym {
		tx.edgeIndex[to] = append(tx.edgeIndex[to], idx)
	}
	return nil
}

// DeleteEdge buffers deletion of a directed edge. At commit, the newest
// live edge from -> to of the given type is tombstoned together with its
// reverse-adjacency entry (or its mirrored entry for symmetric knows
// edges); older snapshots and views keep seeing the edge, and Store.GC
// reclaims the tombstone once no retained snapshot can. Deleting an edge
// that does not exist at commit time is a no-op. Unlike insertions,
// buffered deletions are not overlaid on the transaction's own reads; they
// take effect at commit (mirroring how NodesOfKind excludes buffered
// creations).
//
// Buffered deletions resolve after ALL of the same transaction's edge
// insertions, not in program order: deleting and re-adding the same
// (from, type, to) edge within one transaction is unsupported — the
// delete would tombstone the just-inserted edge. Split such a swap across
// two transactions.
func (tx *Txn) DeleteEdge(from ids.ID, t EdgeType, to ids.ID) error {
	if tx.readonly {
		return errors.New("store: write in read-only transaction")
	}
	tx.edgeDels = append(tx.edgeDels, pendingDel{from: from, to: to, t: t})
	return nil
}

// Exists reports whether a node is visible.
func (tx *Txn) Exists(id ids.ID) bool {
	if _, ok := tx.newNodes[id]; ok {
		return true
	}
	sh := tx.s.shardFor(id)
	sh.mu.RLock()
	rec := sh.nodes[id]
	ok := rec != nil && func() bool { _, v := rec.visibleProps(tx.snapshot); return v }()
	sh.mu.RUnlock()
	return ok
}

// Prop returns one property of a node (zero Value if the node or property
// is absent).
func (tx *Txn) Prop(id ids.ID, key PropKey) Value {
	if n, ok := tx.newNodes[id]; ok {
		return n.props.Get(key)
	}
	sh := tx.s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	rec := sh.nodes[id]
	if rec == nil {
		return Value{}
	}
	ps, ok := rec.visibleProps(tx.snapshot)
	if !ok {
		return Value{}
	}
	// Own buffered SetProps overlay the snapshot.
	for i := len(tx.propSets) - 1; i >= 0; i-- {
		if tx.propSets[i].id == id && tx.propSets[i].key == key {
			return tx.propSets[i].val
		}
	}
	return ps.Get(key)
}

// Props returns a copy of all visible properties of a node.
func (tx *Txn) Props(id ids.ID) (Props, bool) {
	if n, ok := tx.newNodes[id]; ok {
		return append(Props(nil), n.props...), true
	}
	sh := tx.s.shardFor(id)
	sh.mu.RLock()
	rec := sh.nodes[id]
	var ps Props
	ok := false
	if rec != nil {
		if vis, v := rec.visibleProps(tx.snapshot); v {
			ps, ok = append(Props(nil), vis...), true
		}
	}
	sh.mu.RUnlock()
	if !ok {
		return nil, false
	}
	for _, set := range tx.propSets {
		if set.id == id {
			ps = ps.with(set.key, set.val)
		}
	}
	return ps, true
}

// Out returns the visible outgoing edges of a node for one edge type, in
// insertion order, including the transaction's own buffered edges. The
// slice is materialised at this call; it does not observe later writes.
func (tx *Txn) Out(id ids.ID, t EdgeType) []Edge {
	return tx.neighbours(id, t, false)
}

// In returns the visible incoming edges of a node for one edge type.
func (tx *Txn) In(id ids.ID, t EdgeType) []Edge {
	return tx.neighbours(id, t, true)
}

// OutDegree returns the number of visible outgoing edges without
// materialising them.
func (tx *Txn) OutDegree(id ids.ID, t EdgeType) int {
	return tx.degree(id, t, false)
}

// InDegree returns the number of visible incoming edges without
// materialising them.
func (tx *Txn) InDegree(id ids.ID, t EdgeType) int {
	return tx.degree(id, t, true)
}

func (tx *Txn) degree(id ids.ID, t EdgeType, in bool) int {
	n := 0
	sh := tx.s.shardFor(id)
	sh.mu.RLock()
	if rec := sh.nodes[id]; rec != nil {
		list := rec.adj.out[t]
		if in {
			list = rec.adj.in[t]
		}
		for i := range list {
			if list[i].visibleAt(tx.snapshot) {
				n++
			}
		}
	}
	sh.mu.RUnlock()
	for _, ei := range tx.edgeIndex[id] {
		pe := tx.newEdges[ei]
		if pe.t != t {
			continue
		}
		if in {
			if pe.to == id || (pe.sym && pe.from == id) {
				n++
			}
		} else if pe.from == id || (pe.sym && pe.to == id) {
			n++
		}
	}
	return n
}

func (tx *Txn) neighbours(id ids.ID, t EdgeType, in bool) []Edge {
	var out []Edge
	sh := tx.s.shardFor(id)
	sh.mu.RLock()
	if rec := sh.nodes[id]; rec != nil {
		var list []edgeRec
		if in {
			list = rec.adj.in[t]
		} else {
			list = rec.adj.out[t]
		}
		out = make([]Edge, 0, len(list))
		for i := range list {
			if e := &list[i]; e.visibleAt(tx.snapshot) {
				out = append(out, Edge{To: e.peer, Stamp: e.stamp})
			}
		}
	}
	sh.mu.RUnlock()
	// Overlay own buffered edges.
	for _, ei := range tx.edgeIndex[id] {
		pe := tx.newEdges[ei]
		if pe.t != t {
			continue
		}
		switch {
		case !in && pe.from == id:
			out = append(out, Edge{To: pe.to, Stamp: pe.stamp})
		case !in && pe.sym && pe.to == id:
			out = append(out, Edge{To: pe.from, Stamp: pe.stamp})
		case in && pe.to == id:
			out = append(out, Edge{To: pe.from, Stamp: pe.stamp})
		case in && pe.sym && pe.from == id:
			out = append(out, Edge{To: pe.to, Stamp: pe.stamp})
		}
	}
	return out
}

// NodesOfKind returns the IDs of all nodes of a kind visible to the
// transaction (committed only; buffered creations of this transaction are
// excluded, matching scan semantics of a snapshot).
func (tx *Txn) NodesOfKind(kind ids.Kind) []ids.ID {
	return tx.s.nodesOfKind(kind, tx.snapshot)
}

// AscendIndex iterates an ordered secondary index from fromKey upward,
// calling fn with (property value, node ID) for visible nodes until fn
// returns false. Registering the index is the caller's responsibility.
func (tx *Txn) AscendIndex(kind ids.Kind, prop PropKey, fromKey int64, fn func(key int64, id ids.ID) bool) error {
	var oi *orderedIndex
	for _, idx := range tx.s.ordered {
		if idx.kind == kind && idx.prop == prop {
			oi = idx
			break
		}
	}
	if oi == nil {
		return fmt.Errorf("store: no ordered index on %v.%v", kind, prop)
	}
	// Stream under the index read lock; visibility checks take shard read
	// locks, which are always acquired after index locks (writers never
	// hold both), so the order is deadlock-free. fn must not write.
	oi.mu.RLock()
	defer oi.mu.RUnlock()
	oi.tree.Ascend(fromKey, 0, func(e btree.Entry) bool {
		id := ids.ID(e.Val)
		if !tx.Exists(id) {
			return true
		}
		return fn(e.Key, id)
	})
	return nil
}

// LookupHash returns the visible node IDs with the given string property
// value, using a registered hash index.
func (tx *Txn) LookupHash(kind ids.Kind, prop PropKey, val string) ([]ids.ID, error) {
	for _, hi := range tx.s.hashed {
		if hi.kind == kind && hi.prop == prop {
			hi.mu.RLock()
			list := append([]ids.ID(nil), hi.m[val]...)
			hi.mu.RUnlock()
			out := list[:0]
			for _, id := range list {
				if tx.Exists(id) {
					out = append(out, id)
				}
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("store: no hash index on %v.%v", kind, prop)
}

// Abort discards the transaction.
func (tx *Txn) Abort() {
	if !tx.done {
		tx.done = true
		tx.s.aborts.Add(1)
	}
}

// Commit validates and installs the transaction's writes atomically,
// returning ErrConflict under first-committer-wins validation failure and
// ErrExists if a created node ID was concurrently taken.
//
// The critical section under commitMu is short: validate, install, claim
// the commit timestamp and serialise the redo record into its WAL lane's
// pending buffer. The durability wait — in fsync-on-commit mode — happens
// after commitMu is released, parked on the group-commit batcher's
// watermark, so concurrent committers share fsyncs instead of serialising
// behind them (groupcommit.go).
func (tx *Txn) Commit() error {
	if tx.done {
		return errors.New("store: transaction finished")
	}
	tx.done = true
	if tx.readonly || (len(tx.newNodes) == 0 && len(tx.propSets) == 0 && len(tx.newEdges) == 0 && len(tx.edgeDels) == 0) {
		tx.s.commits.Add(1)
		return nil
	}
	s := tx.s
	s.commitMu.Lock()
	ts, err := tx.commitLocked()
	s.commitMu.Unlock()
	if err != nil {
		return err
	}
	if s.gwal != nil && s.gwal.mode == SyncCommit {
		// fsync-on-commit: the record is durable before Commit returns.
		// Readers may observe the transaction before the fsync lands (the
		// clock advanced inside the critical section), matching the
		// pre-batching visibility order of concurrent commits.
		if werr := s.gwal.waitDurable(ts); werr != nil {
			return fmt.Errorf("store: commit logged partially: %w", werr)
		}
	}
	return nil
}

// commitLocked runs Commit's critical section under commitMu: validation,
// installation, timestamp claim and WAL deposit. It returns the claimed
// commit timestamp (0 when validation failed).
func (tx *Txn) commitLocked() (int64, error) {
	s := tx.s

	// Closed stores fail before validation: a deposit past this point would
	// race the draining WAL lanes (MarkClosed flips the flag under commitMu,
	// so the read here is ordered against the shutdown fence).
	if s.closed.Load() {
		s.aborts.Add(1)
		return 0, ErrStoreClosed
	}

	// Validation.
	for id := range tx.newNodes {
		sh := s.shardFor(id)
		sh.mu.RLock()
		_, exists := sh.nodes[id]
		sh.mu.RUnlock()
		if exists {
			s.aborts.Add(1)
			return 0, fmt.Errorf("%w: %v", ErrExists, id)
		}
	}
	for _, set := range tx.propSets {
		sh := s.shardFor(set.id)
		sh.mu.RLock()
		rec := sh.nodes[set.id]
		var conflict bool
		if rec == nil {
			conflict = true // node vanished / never existed
		} else if rec.versions[len(rec.versions)-1].commit > tx.snapshot {
			conflict = true // someone updated it after our snapshot
		}
		sh.mu.RUnlock()
		if conflict {
			s.aborts.Add(1)
			return 0, fmt.Errorf("%w: node %v", ErrConflict, set.id)
		}
	}

	ts := s.clock.Load() + 1
	// The commit's view-maintenance delta, recorded alongside the WAL
	// append so CurrentView can advance the cached view incrementally.
	delta := &CommitDelta{ts: ts}

	// Install node creations in deterministic ID order so the per-kind
	// scan lists are reproducible.
	created := make([]*pendingNode, 0, len(tx.newNodes))
	for _, n := range tx.newNodes {
		created = append(created, n)
	}
	sort.Slice(created, func(i, j int) bool { return created[i].id < created[j].id })
	for _, n := range created {
		sh := s.shardFor(n.id)
		sh.mu.Lock()
		sh.nodes[n.id] = &nodeRec{id: n.id, versions: []nodeVersion{{commit: ts, props: n.props}}}
		sh.mu.Unlock()
		delta.nodes = append(delta.nodes, deltaNode{id: n.id, props: n.props, inKindList: true})
	}
	if len(created) > 0 {
		s.kindMu.Lock()
		for _, n := range created {
			s.byKind[n.id.Kind()] = append(s.byKind[n.id.Kind()], n.id)
		}
		s.kindMu.Unlock()
	}

	// Property updates: append new versions.
	for _, set := range tx.propSets {
		sh := s.shardFor(set.id)
		sh.mu.Lock()
		rec := sh.nodes[set.id]
		last := rec.versions[len(rec.versions)-1]
		next := last.props.with(set.key, set.val)
		rec.versions = append(rec.versions, nodeVersion{commit: ts, props: next})
		sh.mu.Unlock()
		delta.props = append(delta.props, deltaProp{id: set.id, props: next})
	}

	// Edge insertions. Auto-create is not supported: dangling endpoints
	// are a programming error surfaced at load time by the workload layer,
	// but here we tolerate missing peers by creating bare records so the
	// adjacency stays navigable (mirrors how column stores keep FK rows).
	for _, pe := range tx.newEdges {
		s.installEdge(delta, pe.from, pe.t, pe.to, pe.stamp, ts, false)
		if pe.sym {
			s.installEdge(delta, pe.to, pe.t, pe.from, pe.stamp, ts, false)
		} else {
			s.installEdge(delta, pe.to, pe.t, pe.from, pe.stamp, ts, true)
		}
	}

	// Edge deletions: tombstone the newest live match and its mirror.
	for _, pd := range tx.edgeDels {
		s.applyDelete(delta, pd, ts)
	}

	// Secondary index maintenance for created nodes.
	s.indexNewNodes(created)

	// Record the view-maintenance delta before the clock advances so a
	// refresh observing the new watermark always finds its deltas.
	s.recordDelta(delta)

	// Hand the redo record to its WAL lane before publishing the commit
	// (still under commitMu, so deposits preserve commit order — the
	// invariant behind the durability watermark). The plain io.Writer WAL
	// keeps the direct synchronous append.
	if s.gwal != nil {
		s.gwal.deposit(ts, created, tx.propSets, tx.newEdges, tx.edgeDels)
	} else if s.wal != nil {
		if err := s.logCommit(ts, created, tx.propSets, tx.newEdges, tx.edgeDels); err != nil {
			// The in-memory install already happened; surface the log
			// failure but keep the store consistent.
			s.clock.Store(ts)
			s.commits.Add(1)
			return ts, fmt.Errorf("store: commit logged partially: %w", err)
		}
	}

	// Advance the watermark: the transaction becomes visible atomically.
	s.clock.Store(ts)
	s.commits.Add(1)
	return ts, nil
}

// indexNewNodes inserts created nodes into the registered secondary
// indexes. Shared by Commit and recovery's lean replay (recovery.go).
func (s *Store) indexNewNodes(created []*pendingNode) {
	for _, n := range created {
		for _, oi := range s.ordered {
			if oi.kind != n.id.Kind() {
				continue
			}
			if v := n.props.Get(oi.prop); !v.IsZero() {
				oi.mu.Lock()
				oi.tree.Insert(v.Int(), uint64(n.id), uint64(n.id))
				oi.mu.Unlock()
			}
		}
		for _, hi := range s.hashed {
			if hi.kind != n.id.Kind() {
				continue
			}
			if v := n.props.Get(hi.prop); !v.IsZero() {
				hi.mu.Lock()
				hi.m[v.Str()] = append(hi.m[v.Str()], n.id)
				hi.mu.Unlock()
			}
		}
	}
}

// installEdge appends one adjacency entry; reverse=true stores it in the
// peer's in-list instead of the out-list. The install is mirrored into the
// commit delta, including any bare node record materialised for a missing
// endpoint; recovery's lean replay passes delta == nil (no cached view
// exists to maintain).
func (s *Store) installEdge(delta *CommitDelta, from ids.ID, t EdgeType, to ids.ID, stamp, ts int64, reverse bool) {
	sh := s.shardFor(from)
	sh.mu.Lock()
	rec := sh.nodes[from]
	if rec == nil {
		rec = &nodeRec{id: from, versions: []nodeVersion{{commit: ts, props: nil}}}
		sh.nodes[from] = rec
		if delta != nil {
			delta.nodes = append(delta.nodes, deltaNode{id: from})
		}
	}
	if reverse {
		rec.adj.in[t] = append(rec.adj.in[t], edgeRec{peer: to, stamp: stamp, commit: ts})
	} else {
		rec.adj.out[t] = append(rec.adj.out[t], edgeRec{peer: to, stamp: stamp, commit: ts})
	}
	sh.mu.Unlock()
	if delta != nil {
		delta.edges = append(delta.edges, deltaEdge{owner: from, peer: to, stamp: stamp, t: t, in: reverse})
	}
}

// applyDelete tombstones the newest live from->to edge of one type plus its
// counterpart on the peer: the reverse-adjacency entry for directed edges,
// or the mirrored out-entry for symmetric (knows) edges — identified by
// sharing the original insertion's commit timestamp. A miss is a no-op.
// delta may be nil (recovery's lean replay).
func (s *Store) applyDelete(delta *CommitDelta, pd pendingDel, ts int64) {
	var matchCommit, matchStamp int64
	found := false
	sh := s.shardFor(pd.from)
	sh.mu.Lock()
	if rec := sh.nodes[pd.from]; rec != nil {
		list := rec.adj.out[pd.t]
		for i := len(list) - 1; i >= 0; i-- {
			if e := &list[i]; e.peer == pd.to && e.del == 0 {
				e.del = ts
				matchCommit, matchStamp = e.commit, e.stamp
				found = true
				break
			}
		}
	}
	sh.mu.Unlock()
	if !found {
		return
	}
	if delta != nil {
		delta.dels = append(delta.dels, deltaDel{owner: pd.from, peer: pd.to, stamp: matchStamp, t: pd.t, in: false})
	}

	sh = s.shardFor(pd.to)
	sh.mu.Lock()
	if rec := sh.nodes[pd.to]; rec != nil {
		if e, in := mirrorEdge(rec, pd.t, pd.from, matchCommit); e != nil {
			e.del = ts
			if delta != nil {
				delta.dels = append(delta.dels, deltaDel{owner: pd.to, peer: pd.from, stamp: e.stamp, t: pd.t, in: in})
			}
		}
	}
	sh.mu.Unlock()
}

// mirrorEdge finds the live counterpart of a tombstoned edge on the peer
// node: the in-list entry (directed edges) or, failing that, the out-list
// entry with the same insertion commit (symmetric knows edges).
func mirrorEdge(rec *nodeRec, t EdgeType, peer ids.ID, commit int64) (*edgeRec, bool) {
	list := rec.adj.in[t]
	for i := len(list) - 1; i >= 0; i-- {
		if e := &list[i]; e.peer == peer && e.commit == commit && e.del == 0 {
			return e, true
		}
	}
	list = rec.adj.out[t]
	for i := len(list) - 1; i >= 0; i-- {
		if e := &list[i]; e.peer == peer && e.commit == commit && e.del == 0 {
			return e, false
		}
	}
	return nil, false
}
