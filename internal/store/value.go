// Package store implements the transactional property-graph engine used as
// the System Under Test for the SNB Interactive workload.
//
// The engine provides what §4 of the paper requires of a SUT: transactional
// updates running concurrently with queries under at-least-read-committed
// semantics. It implements snapshot isolation with first-committer-wins
// write-write conflict detection; the paper notes that "given the nature of
// the update workload, systems providing snapshot isolation behave
// identically to serializable".
//
// Design, in the spirit of the two vendor systems of §5:
//   - property graph data model (nodes with typed properties, typed directed
//     edges carrying one timestamp-like attribute), like Sparksee;
//   - hash primary indexes plus ordered (B+tree) secondary indexes on
//     date-like attributes, like Virtuoso's l_creationdate index (Table 8);
//   - adjacency lists per (node, edge type, direction) — the materialised
//     neighbourhoods §5 mentions for Sparksee.
//
// # Read paths
//
// The store exposes two read paths with identical visibility semantics:
//
//   - MVCC transactions (Begin/View + Txn): reads take shard read locks,
//     filter version chains and adjacency lists by commit timestamp per
//     call, and overlay the transaction's own uncommitted writes. This is
//     the only path that can see its own writes and the path every update
//     uses.
//   - Frozen snapshot views (CurrentView + SnapshotView): an immutable
//     CSR compaction of everything visible at one commit timestamp.
//     Reads are lock-free and allocation-free — adjacency calls return
//     subslices of a contiguous edge slab — which makes views the fast
//     path for the Interactive workload's read mix (multi-hop knows
//     expansions, profile and message lookups).
//
// The commit clock doubles as the view epoch: every committed write
// advances it, which invalidates the cached view, while older views stay
// valid for readers still holding them. Choose a Txn when the reader also
// writes (or must observe its own writes); choose a view for read-only
// query execution where latency matters. Both paths agree
// result-for-result at equal timestamps (asserted by the equivalence
// tests in view_test.go and delta_test.go).
//
// # Incremental view maintenance
//
// The view epoch advances in time proportional to the delta, not the
// dataset: every commit records a compact CommitDelta (created nodes,
// replaced property lists, inserted and tombstoned adjacency entries) in
// a bounded in-memory ring, and the first CurrentView call after a commit
// applies the pending deltas copy-on-write onto the cached view — only
// the touched CSR rows, property entries and kind lists are copied
// (delta.go). New nodes receive appended ordinals, so existing ordinals
// stay stable within an era (SnapshotView.Era) and ordinal-keyed caller
// state survives refreshes. A full recompaction — sorted IDs, dense
// reassigned ordinals, a fresh era — runs only when the accumulated
// overlay crosses the compaction threshold (SetViewCompactThreshold) or
// the delta ring overflows (SetViewDeltaCap); ViewStats counts refreshes,
// rebuilds, era bumps and overflows.
package store

import (
	"fmt"

	"ldbcsnb/internal/intern"
)

// PropKey identifies a node property. Properties are stored as small
// (key, value) slices — SNB entities have at most ~12 properties.
type PropKey uint8

// Node property keys for the SNB schema.
const (
	PropFirstName PropKey = iota + 1
	PropLastName
	PropGender
	PropBirthday
	PropCreationDate
	PropLocationIP
	PropBrowserUsed
	PropContent
	PropLength
	PropLanguage
	PropImageFile
	PropTitle
	PropName
	PropSpeaks
	PropEmail
	PropCountry // denormalised country ID for persons and messages
	PropTopic   // denormalised main topic tag of a message
)

var propNames = map[PropKey]string{
	PropFirstName:    "firstName",
	PropLastName:     "lastName",
	PropGender:       "gender",
	PropBirthday:     "birthday",
	PropCreationDate: "creationDate",
	PropLocationIP:   "locationIP",
	PropBrowserUsed:  "browserUsed",
	PropContent:      "content",
	PropLength:       "length",
	PropLanguage:     "language",
	PropImageFile:    "imageFile",
	PropTitle:        "title",
	PropName:         "name",
	PropSpeaks:       "speaks",
	PropEmail:        "email",
	PropCountry:      "country",
	PropTopic:        "topic",
}

// String returns the schema name of the property.
func (k PropKey) String() string {
	if s, ok := propNames[k]; ok {
		return s
	}
	return fmt.Sprintf("prop(%d)", uint8(k))
}

type valueKind uint8

const (
	kindNone valueKind = iota
	kindInt
	kindString
)

// Value is a compact tagged union of the property value types the SNB
// schema needs (64-bit integers — including all timestamps — and strings).
// The zero Value is "absent".
//
// Values are fixed-width: strings are held as interned symbols
// (internal/intern), so every Value is one machine word plus a tag and two
// Values holding equal strings are structurally equal. The string bytes
// themselves live once in the process-wide intern arena; Str resolves the
// symbol with one wait-free lookup.
type Value struct {
	bits int64
	k    valueKind
}

// Int64 wraps an integer value.
func Int64(v int64) Value { return Value{bits: v, k: kindInt} }

// String wraps a string value, interning it. Repeated values (names,
// browsers, languages, tag strings) cost one arena entry no matter how many
// nodes carry them.
func String(v string) Value {
	return Value{bits: int64(intern.Intern(v)), k: kindString}
}

// symValue wraps an already-interned symbol (checkpoint restore, which
// re-interns its dictionary section in bulk).
func symValue(y intern.Sym) Value { return Value{bits: int64(y), k: kindString} }

// IsZero reports whether the value is absent.
func (v Value) IsZero() bool { return v.k == kindNone }

// IsInt reports whether the value holds an integer.
func (v Value) IsInt() bool { return v.k == kindInt }

// IsStr reports whether the value holds a string.
func (v Value) IsStr() bool { return v.k == kindString }

// Int returns the integer content (0 for non-integer values).
func (v Value) Int() int64 {
	if v.k != kindInt {
		return 0
	}
	return v.bits
}

// Str returns the string content ("" for non-string values).
func (v Value) Str() string {
	if v.k != kindString {
		return ""
	}
	return intern.Lookup(intern.Sym(v.bits))
}

// Sym returns the interned symbol of a string value (the zero Sym for
// non-string values, which is the empty string).
func (v Value) Sym() intern.Sym {
	if v.k != kindString {
		return 0
	}
	return intern.Sym(v.bits)
}

// GoString formats the value for diagnostics.
func (v Value) GoString() string {
	switch v.k {
	case kindInt:
		return fmt.Sprintf("Int64(%d)", v.bits)
	case kindString:
		return fmt.Sprintf("String(%q)", v.Str())
	default:
		return "Value{}"
	}
}

// bytes approximates the heap footprint of the value, for Stats (Table 8).
// String payloads live in the shared intern arena and are accounted once,
// under Stats.InternBytes — not per occurrence here.
func (v Value) bytes() int {
	return 16 // fixed-width tagged union
}

// Prop is one (key, value) property pair.
type Prop struct {
	Key PropKey
	Val Value
}

// Props is the property list of one node version.
type Props []Prop

// Get returns the value for a key (zero Value if absent).
func (ps Props) Get(k PropKey) Value {
	for _, p := range ps {
		if p.Key == k {
			return p.Val
		}
	}
	return Value{}
}

// with returns a copy of ps with key set to v (replacing or appending).
func (ps Props) with(k PropKey, v Value) Props {
	out := make(Props, len(ps), len(ps)+1)
	copy(out, ps)
	for i := range out {
		if out[i].Key == k {
			out[i].Val = v
			return out
		}
	}
	return append(out, Prop{k, v})
}

func (ps Props) bytes() int {
	n := 0
	for _, p := range ps {
		n += 1 + p.Val.bytes()
	}
	return n
}
