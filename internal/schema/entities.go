// Package schema defines the SNB dataset schema — 11 entities connected by
// 20 relations (§2 of the paper) — together with its CSV bulk format, the
// update-stream event encoding, and the bulk loader into the store.
package schema

import "ldbcsnb/internal/ids"

// Person is a member of the social network.
type Person struct {
	ID           ids.ID
	FirstName    string
	LastName     string
	Gender       int   // dict.GenderMale / dict.GenderFemale
	Birthday     int64 // sim millis
	CreationDate int64 // sim millis (joined the network)
	Country      int   // dict.Countries index
	City         int   // dict.Cities index
	LocationIP   string
	Browser      string
	Languages    []string
	Emails       []string
	Interests    []int // dict.Tags indices
	University   int   // dict.Universities index, -1 if none
	ClassYear    int   // graduation year, 0 if none
	Company      int   // dict.Companies index, -1 if none
	WorkFrom     int   // year started, 0 if none
}

// Knows is a friendship edge; symmetric, stored once with A.ID < B.ID.
type Knows struct {
	A, B         ids.ID
	CreationDate int64
}

// Forum is a discussion container owned (moderated) by a person.
type Forum struct {
	ID           ids.ID
	Title        string
	Moderator    ids.ID
	CreationDate int64
	Tags         []int
}

// Membership is a person joining a forum.
type Membership struct {
	Forum    ids.ID
	Person   ids.ID
	JoinDate int64
}

// Post is a top-level message in a forum. Photos are posts with an
// ImageFile and empty content.
type Post struct {
	ID           ids.ID
	Creator      ids.ID
	Forum        ids.ID
	CreationDate int64
	Content      string
	ImageFile    string
	Length       int
	Language     string
	Tags         []int
	Topic        int // main topic tag (drives content; denormalised)
	Country      int
	LocationIP   string
	Browser      string
}

// Comment is a reply to a post or to another comment.
type Comment struct {
	ID           ids.ID
	Creator      ids.ID
	ReplyOf      ids.ID // parent message (post or comment)
	Root         ids.ID // root post of the thread
	Forum        ids.ID
	CreationDate int64
	Content      string
	Length       int
	Tags         []int
	Topic        int
	Country      int
	LocationIP   string
	Browser      string
}

// Like is a person liking a message.
type Like struct {
	Person       ids.ID
	Message      ids.ID // post or comment
	Forum        ids.ID // forum containing the message (for stream routing)
	CreationDate int64
	IsPost       bool
}

// Dataset is a fully generated social network: the bulk-load part plus
// (separately produced) update streams.
type Dataset struct {
	Persons     []Person
	Knows       []Knows
	Forums      []Forum
	Memberships []Membership
	Posts       []Post
	Comments    []Comment
	Likes       []Like
}

// Counts summarises entity cardinalities (the Table 3 statistics).
type Counts struct {
	Persons, Friendships, Forums, Posts, Comments, Likes, Memberships int
}

// Counts returns the dataset's entity cardinalities.
func (d *Dataset) Counts() Counts {
	return Counts{
		Persons:     len(d.Persons),
		Friendships: len(d.Knows),
		Forums:      len(d.Forums),
		Posts:       len(d.Posts),
		Comments:    len(d.Comments),
		Likes:       len(d.Likes),
		Memberships: len(d.Memberships),
	}
}

// Messages returns the total message count (posts + comments).
func (c Counts) Messages() int { return c.Posts + c.Comments }

// Nodes approximates the total node count of the graph representation
// (persons, forums, messages; dimension tables excluded as they do not
// scale, §2).
func (c Counts) Nodes() int { return c.Persons + c.Forums + c.Messages() }

// EdgesApprox approximates the total edge count (friendships counted once,
// plus authorship, containment, likes and memberships).
func (c Counts) EdgesApprox() int {
	return c.Friendships + c.Messages() + c.Posts + c.Comments + c.Likes + c.Memberships
}
