package schema

import (
	"fmt"
	"strings"
	"sync/atomic"

	"ldbcsnb/internal/dict"
	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/store"
)

// RegisterIndexes installs the secondary indexes the Interactive workload
// expects on a store: ordered creationDate indexes on messages (the
// l_creationdate-style indexes of Table 8) and a hash index on person
// first names (Query 1).
func RegisterIndexes(st *store.Store) {
	st.RegisterOrderedIndex(ids.KindPost, store.PropCreationDate)
	st.RegisterOrderedIndex(ids.KindComment, store.PropCreationDate)
	st.RegisterHashIndex(ids.KindPerson, store.PropFirstName)
}

// LoadDimensions bulk-loads the dimension tables (tags, tag classes,
// places, organisations) shared by every dataset.
func LoadDimensions(st *store.Store) error {
	tx := st.Begin()
	for _, tc := range dict.TagClasses {
		id := ids.DimensionID(ids.KindTagClass, uint32(tc.ID))
		if err := tx.CreateNode(id, store.Props{{Key: store.PropName, Val: store.String(tc.Name)}}); err != nil {
			return err
		}
		if tc.Parent >= 0 {
			parent := ids.DimensionID(ids.KindTagClass, uint32(tc.Parent))
			if err := tx.AddEdge(id, store.EdgeIsSubclassOf, parent, 0); err != nil {
				return err
			}
		}
	}
	for _, tg := range dict.Tags {
		id := ids.DimensionID(ids.KindTag, uint32(tg.ID))
		if err := tx.CreateNode(id, store.Props{{Key: store.PropName, Val: store.String(tg.Name)}}); err != nil {
			return err
		}
		if err := tx.AddEdge(id, store.EdgeHasType, ids.DimensionID(ids.KindTagClass, uint32(tg.Class)), 0); err != nil {
			return err
		}
	}
	for _, c := range dict.Countries {
		id := ids.DimensionID(ids.KindPlace, uint32(c.ID))
		if err := tx.CreateNode(id, store.Props{{Key: store.PropName, Val: store.String(c.Name)}}); err != nil {
			return err
		}
	}
	for _, u := range dict.Universities {
		id := ids.DimensionID(ids.KindOrganisation, uint32(u.ID))
		if err := tx.CreateNode(id, store.Props{{Key: store.PropName, Val: store.String(u.Name)}}); err != nil {
			return err
		}
		if err := tx.AddEdge(id, store.EdgeIsLocatedIn, ids.DimensionID(ids.KindPlace, uint32(u.Country)), 0); err != nil {
			return err
		}
	}
	for _, c := range dict.Companies {
		// Companies share the Organisation kind; offset their sequence
		// past the university range.
		id := CompanyNodeID(c.ID)
		if err := tx.CreateNode(id, store.Props{{Key: store.PropName, Val: store.String(c.Name)}}); err != nil {
			return err
		}
		if err := tx.AddEdge(id, store.EdgeIsLocatedIn, ids.DimensionID(ids.KindPlace, uint32(c.Country)), 0); err != nil {
			return err
		}
	}
	return tx.Commit()
}

// CompanyNodeID maps a dict company index to its store node ID (companies
// and universities share the Organisation kind).
func CompanyNodeID(companyIdx int) ids.ID {
	return ids.DimensionID(ids.KindOrganisation, uint32(len(dict.Universities)+companyIdx))
}

// TagNodeID maps a dict tag index to its store node ID.
func TagNodeID(tagIdx int) ids.ID { return ids.DimensionID(ids.KindTag, uint32(tagIdx)) }

// PlaceNodeID maps a dict country index to its store node ID.
func PlaceNodeID(countryIdx int) ids.ID { return ids.DimensionID(ids.KindPlace, uint32(countryIdx)) }

// loadBatch is the number of entities per bulk-load transaction: large
// enough to amortise commit cost, small enough to bound txn buffers.
const loadBatch = 2000

// Load bulk-loads a dataset into the store. Call RegisterIndexes and
// LoadDimensions first.
func Load(st *store.Store, d *Dataset) error {
	return LoadParallel(st, d, 1)
}

// LoadParallel is Load with parallel transaction building: up to workers
// goroutines build the batch transactions of each entity class concurrently
// (property construction and string interning dominate build cost), while
// commits are issued strictly in batch order. Ordered commits make the
// loaded store byte-identical to a sequential Load — same commit
// timestamps, same kind-list order, same adjacency insertion order — for
// any worker count, so equivalence suites and recovery tests see one
// canonical store. Entity classes still load in referential order (persons
// before knows, messages before likes).
func LoadParallel(st *store.Store, d *Dataset, workers int) error {
	if err := loadOrdered(st, d.Persons, workers, AddPerson); err != nil {
		return fmt.Errorf("load persons: %w", err)
	}
	err := loadOrdered(st, d.Knows, workers, func(tx *store.Txn, k *Knows) error {
		return tx.AddKnows(k.A, k.B, k.CreationDate)
	})
	if err != nil {
		return fmt.Errorf("load knows: %w", err)
	}
	if err := loadOrdered(st, d.Forums, workers, AddForum); err != nil {
		return fmt.Errorf("load forums: %w", err)
	}
	err = loadOrdered(st, d.Memberships, workers, func(tx *store.Txn, m *Membership) error {
		return tx.AddEdge(m.Forum, store.EdgeHasMember, m.Person, m.JoinDate)
	})
	if err != nil {
		return fmt.Errorf("load memberships: %w", err)
	}
	if err := loadOrdered(st, d.Posts, workers, AddPost); err != nil {
		return fmt.Errorf("load posts: %w", err)
	}
	if err := loadOrdered(st, d.Comments, workers, AddComment); err != nil {
		return fmt.Errorf("load comments: %w", err)
	}
	err = loadOrdered(st, d.Likes, workers, func(tx *store.Txn, l *Like) error {
		return tx.AddEdge(l.Person, store.EdgeLikes, l.Message, l.CreationDate)
	})
	if err != nil {
		return fmt.Errorf("load likes: %w", err)
	}
	return nil
}

// loadOrdered loads one entity class in loadBatch-sized transactions.
// Workers claim batches by index and build them concurrently — buffering
// writes into a Txn touches no shared store state — and a committer drains
// the batches in index order, so the commit sequence is independent of the
// worker count. With workers <= 1 it degenerates to the plain sequential
// loop.
func loadOrdered[T any](st *store.Store, items []T, workers int, add func(tx *store.Txn, item *T) error) error {
	nb := (len(items) + loadBatch - 1) / loadBatch
	build := func(b int) (*store.Txn, error) {
		lo, hi := b*loadBatch, min((b+1)*loadBatch, len(items))
		tx := st.Begin()
		for i := lo; i < hi; i++ {
			if err := add(tx, &items[i]); err != nil {
				tx.Abort()
				return nil, err
			}
		}
		return tx, nil
	}
	if workers > nb {
		workers = nb
	}
	if workers <= 1 {
		for b := 0; b < nb; b++ {
			tx, err := build(b)
			if err != nil {
				return err
			}
			if err := tx.Commit(); err != nil {
				return err
			}
		}
		return nil
	}

	type built struct {
		tx  *store.Txn
		err error
	}
	ready := make([]chan built, nb)
	for i := range ready {
		ready[i] = make(chan built, 1)
	}
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		go func() {
			for {
				b := int(next.Add(1)) - 1
				if b >= nb {
					return
				}
				tx, err := build(b)
				ready[b] <- built{tx, err}
			}
		}()
	}
	var firstErr error
	for b := 0; b < nb; b++ {
		r := <-ready[b]
		if firstErr != nil {
			// Drain remaining batches so the workers finish; their
			// uncommitted transactions are dropped.
			if r.tx != nil {
				r.tx.Abort()
			}
			continue
		}
		if r.err != nil {
			firstErr = r.err
			continue
		}
		if err := r.tx.Commit(); err != nil {
			firstErr = err
		}
	}
	return firstErr
}

// PersonProps builds the store property list for a person.
func PersonProps(p *Person) store.Props {
	return store.Props{
		{Key: store.PropFirstName, Val: store.String(p.FirstName)},
		{Key: store.PropLastName, Val: store.String(p.LastName)},
		{Key: store.PropGender, Val: store.Int64(int64(p.Gender))},
		{Key: store.PropBirthday, Val: store.Int64(p.Birthday)},
		{Key: store.PropCreationDate, Val: store.Int64(p.CreationDate)},
		{Key: store.PropLocationIP, Val: store.String(p.LocationIP)},
		{Key: store.PropBrowserUsed, Val: store.String(p.Browser)},
		{Key: store.PropSpeaks, Val: store.String(strings.Join(p.Languages, ";"))},
		{Key: store.PropEmail, Val: store.String(strings.Join(p.Emails, ";"))},
		{Key: store.PropCountry, Val: store.Int64(int64(p.Country))},
	}
}

// AddPerson writes a person (node plus its dimension edges) into an open
// transaction; shared between the bulk loader and update U1.
func AddPerson(tx *store.Txn, p *Person) error {
	if err := tx.CreateNode(p.ID, PersonProps(p)); err != nil {
		return err
	}
	if err := tx.AddEdge(p.ID, store.EdgeIsLocatedIn, PlaceNodeID(p.Country), 0); err != nil {
		return err
	}
	for _, tag := range p.Interests {
		if err := tx.AddEdge(p.ID, store.EdgeHasInterest, TagNodeID(tag), 0); err != nil {
			return err
		}
	}
	if p.University >= 0 {
		uni := ids.DimensionID(ids.KindOrganisation, uint32(p.University))
		if err := tx.AddEdge(p.ID, store.EdgeStudyAt, uni, int64(p.ClassYear)); err != nil {
			return err
		}
	}
	if p.Company >= 0 {
		if err := tx.AddEdge(p.ID, store.EdgeWorkAt, CompanyNodeID(p.Company), int64(p.WorkFrom)); err != nil {
			return err
		}
	}
	return nil
}

// AddForum writes a forum into an open transaction (bulk load and U4).
func AddForum(tx *store.Txn, f *Forum) error {
	err := tx.CreateNode(f.ID, store.Props{
		{Key: store.PropTitle, Val: store.String(f.Title)},
		{Key: store.PropCreationDate, Val: store.Int64(f.CreationDate)},
	})
	if err != nil {
		return err
	}
	if err := tx.AddEdge(f.ID, store.EdgeHasModerator, f.Moderator, 0); err != nil {
		return err
	}
	for _, tag := range f.Tags {
		if err := tx.AddEdge(f.ID, store.EdgeHasTag, TagNodeID(tag), 0); err != nil {
			return err
		}
	}
	return nil
}

// PostProps builds the store property list for a post.
func PostProps(p *Post) store.Props {
	props := store.Props{
		{Key: store.PropCreationDate, Val: store.Int64(p.CreationDate)},
		{Key: store.PropLength, Val: store.Int64(int64(p.Length))},
		{Key: store.PropBrowserUsed, Val: store.String(p.Browser)},
		{Key: store.PropLocationIP, Val: store.String(p.LocationIP)},
		{Key: store.PropCountry, Val: store.Int64(int64(p.Country))},
		{Key: store.PropTopic, Val: store.Int64(int64(p.Topic))},
	}
	if p.ImageFile != "" {
		props = append(props, store.Prop{Key: store.PropImageFile, Val: store.String(p.ImageFile)})
	} else {
		props = append(props,
			store.Prop{Key: store.PropContent, Val: store.String(p.Content)},
			store.Prop{Key: store.PropLanguage, Val: store.String(p.Language)},
		)
	}
	return props
}

// AddPost writes a post into an open transaction (bulk load and U6).
func AddPost(tx *store.Txn, p *Post) error {
	if err := tx.CreateNode(p.ID, PostProps(p)); err != nil {
		return err
	}
	// hasCreator carries the message creationDate as its stamp: this is the
	// materialised "messages of a person ordered by time" neighbourhood
	// that queries like Q2/Q9 navigate.
	if err := tx.AddEdge(p.ID, store.EdgeHasCreator, p.Creator, p.CreationDate); err != nil {
		return err
	}
	if err := tx.AddEdge(p.Forum, store.EdgeContainerOf, p.ID, p.CreationDate); err != nil {
		return err
	}
	if err := tx.AddEdge(p.ID, store.EdgeIsLocatedIn, PlaceNodeID(p.Country), 0); err != nil {
		return err
	}
	for _, tag := range p.Tags {
		if err := tx.AddEdge(p.ID, store.EdgeHasTag, TagNodeID(tag), 0); err != nil {
			return err
		}
	}
	return nil
}

// CommentProps builds the store property list for a comment.
func CommentProps(c *Comment) store.Props {
	return store.Props{
		{Key: store.PropCreationDate, Val: store.Int64(c.CreationDate)},
		{Key: store.PropContent, Val: store.String(c.Content)},
		{Key: store.PropLength, Val: store.Int64(int64(c.Length))},
		{Key: store.PropBrowserUsed, Val: store.String(c.Browser)},
		{Key: store.PropLocationIP, Val: store.String(c.LocationIP)},
		{Key: store.PropCountry, Val: store.Int64(int64(c.Country))},
		{Key: store.PropTopic, Val: store.Int64(int64(c.Topic))},
	}
}

// AddComment writes a comment into an open transaction (bulk load and U7).
func AddComment(tx *store.Txn, c *Comment) error {
	if err := tx.CreateNode(c.ID, CommentProps(c)); err != nil {
		return err
	}
	if err := tx.AddEdge(c.ID, store.EdgeHasCreator, c.Creator, c.CreationDate); err != nil {
		return err
	}
	if err := tx.AddEdge(c.ID, store.EdgeReplyOf, c.ReplyOf, c.CreationDate); err != nil {
		return err
	}
	if err := tx.AddEdge(c.ID, store.EdgeIsLocatedIn, PlaceNodeID(c.Country), 0); err != nil {
		return err
	}
	for _, tag := range c.Tags {
		if err := tx.AddEdge(c.ID, store.EdgeHasTag, TagNodeID(tag), 0); err != nil {
			return err
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
