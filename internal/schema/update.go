package schema

import "ldbcsnb/internal/ids"

// UpdateType enumerates the 8 transactional update queries of the
// Interactive workload (§4, Table 9): add person, add like to post, add
// like to comment, add forum, add forum membership, add post, add comment,
// add friendship.
type UpdateType uint8

// Update kinds, numbered as in Table 9.
const (
	UpdateAddPerson      UpdateType = iota + 1 // U1
	UpdateAddLikePost                          // U2
	UpdateAddLikeComment                       // U3
	UpdateAddForum                             // U4
	UpdateAddMembership                        // U5
	UpdateAddPost                              // U6
	UpdateAddComment                           // U7
	UpdateAddFriendship                        // U8

	NumUpdateTypes = 8
)

var updateNames = map[UpdateType]string{
	UpdateAddPerson:      "addPerson",
	UpdateAddLikePost:    "addLikePost",
	UpdateAddLikeComment: "addLikeComment",
	UpdateAddForum:       "addForum",
	UpdateAddMembership:  "addMembership",
	UpdateAddPost:        "addPost",
	UpdateAddComment:     "addComment",
	UpdateAddFriendship:  "addFriendship",
}

// String returns the update name.
func (t UpdateType) String() string {
	if s, ok := updateNames[t]; ok {
		return s
	}
	return "unknownUpdate"
}

// Update is one event of the transactional update stream. DueTime is the
// simulation time at which the driver schedules it (T_DUE of §4.2);
// DepTime is the creation time of the latest operation it depends on
// (T_DEP), 0 if none. Exactly one payload pointer is non-nil, matching
// Type.
type Update struct {
	Type    UpdateType
	DueTime int64
	DepTime int64

	Person     *Person
	Like       *Like
	Forum      *Forum
	Membership *Membership
	Post       *Post
	Comment    *Comment
	Friendship *Knows
}

// ForumOf returns the forum whose discussion tree the update belongs to,
// or 0 when the update is not forum-partitionable (person/friendship
// updates touch the non-partitionable friendship graph, §4.2).
func (u *Update) ForumOf() ids.ID {
	switch u.Type {
	case UpdateAddForum:
		return u.Forum.ID
	case UpdateAddMembership:
		return u.Membership.Forum
	case UpdateAddPost:
		return u.Post.Forum
	case UpdateAddComment:
		return u.Comment.Forum
	case UpdateAddLikePost, UpdateAddLikeComment:
		return u.Like.Forum
	default:
		return 0
	}
}

// IsDependency reports whether other operations may depend on this one
// (it creates an entity others reference): the Dependencies set of §4.2.
func (u *Update) IsDependency() bool {
	switch u.Type {
	case UpdateAddPerson, UpdateAddForum, UpdateAddPost, UpdateAddComment:
		return true
	}
	return false
}

// IsDependent reports whether this operation depends on an earlier one
// (the Dependents set of §4.2).
func (u *Update) IsDependent() bool { return u.DepTime > 0 }
