package schema

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"ldbcsnb/internal/ids"
)

// CSV bulk format (§2.4: the scale factor is defined as GB of uncompressed
// CSV). One file per entity, pipe-separated integer/string fields, header
// row first — matching the layout of the reference DATAGEN output closely
// enough for size accounting and reload.

func itoa(v int64) string    { return strconv.FormatInt(v, 10) }
func idstr(id ids.ID) string { return strconv.FormatUint(uint64(id), 10) }

func parseID(s string) (ids.ID, error) {
	v, err := strconv.ParseUint(s, 10, 64)
	return ids.ID(v), err
}

func tagsStr(tags []int) string {
	parts := make([]string, len(tags))
	for i, t := range tags {
		parts[i] = strconv.Itoa(t)
	}
	return strings.Join(parts, ";")
}

func parseTags(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ";")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func newWriter(w io.Writer) *csv.Writer {
	cw := csv.NewWriter(w)
	cw.Comma = '|'
	return cw
}

// WriteCSVDir writes the dataset as CSV files under dir, creating it if
// needed, and returns the total bytes written (the "scale factor" size).
func WriteCSVDir(d *Dataset, dir string) (int64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	var total int64
	write := func(name string, fn func(*csv.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		cw := newWriter(f)
		if err := fn(cw); err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", name, err)
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			f.Close()
			return err
		}
		st, err := f.Stat()
		if err == nil {
			total += st.Size()
		}
		return f.Close()
	}

	if err := write("person.csv", func(w *csv.Writer) error {
		if err := w.Write([]string{"id", "firstName", "lastName", "gender", "birthday", "creationDate", "country", "city", "locationIP", "browserUsed", "languages", "emails", "interests", "university", "classYear", "company", "workFrom"}); err != nil {
			return err
		}
		for i := range d.Persons {
			p := &d.Persons[i]
			if err := w.Write([]string{
				idstr(p.ID), p.FirstName, p.LastName, strconv.Itoa(p.Gender),
				itoa(p.Birthday), itoa(p.CreationDate), strconv.Itoa(p.Country),
				strconv.Itoa(p.City), p.LocationIP, p.Browser,
				strings.Join(p.Languages, ";"), strings.Join(p.Emails, ";"),
				tagsStr(p.Interests), strconv.Itoa(p.University),
				strconv.Itoa(p.ClassYear), strconv.Itoa(p.Company), strconv.Itoa(p.WorkFrom),
			}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return 0, err
	}

	if err := write("knows.csv", func(w *csv.Writer) error {
		if err := w.Write([]string{"a", "b", "creationDate"}); err != nil {
			return err
		}
		for i := range d.Knows {
			k := &d.Knows[i]
			if err := w.Write([]string{idstr(k.A), idstr(k.B), itoa(k.CreationDate)}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return 0, err
	}

	if err := write("forum.csv", func(w *csv.Writer) error {
		if err := w.Write([]string{"id", "title", "moderator", "creationDate", "tags"}); err != nil {
			return err
		}
		for i := range d.Forums {
			f := &d.Forums[i]
			if err := w.Write([]string{idstr(f.ID), f.Title, idstr(f.Moderator), itoa(f.CreationDate), tagsStr(f.Tags)}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return 0, err
	}

	if err := write("membership.csv", func(w *csv.Writer) error {
		if err := w.Write([]string{"forum", "person", "joinDate"}); err != nil {
			return err
		}
		for i := range d.Memberships {
			m := &d.Memberships[i]
			if err := w.Write([]string{idstr(m.Forum), idstr(m.Person), itoa(m.JoinDate)}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return 0, err
	}

	if err := write("post.csv", func(w *csv.Writer) error {
		if err := w.Write([]string{"id", "creator", "forum", "creationDate", "content", "imageFile", "length", "language", "tags", "topic", "country", "locationIP", "browserUsed"}); err != nil {
			return err
		}
		for i := range d.Posts {
			p := &d.Posts[i]
			if err := w.Write([]string{
				idstr(p.ID), idstr(p.Creator), idstr(p.Forum), itoa(p.CreationDate),
				p.Content, p.ImageFile, strconv.Itoa(p.Length), p.Language,
				tagsStr(p.Tags), strconv.Itoa(p.Topic), strconv.Itoa(p.Country),
				p.LocationIP, p.Browser,
			}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return 0, err
	}

	if err := write("comment.csv", func(w *csv.Writer) error {
		if err := w.Write([]string{"id", "creator", "replyOf", "root", "forum", "creationDate", "content", "length", "tags", "topic", "country", "locationIP", "browserUsed"}); err != nil {
			return err
		}
		for i := range d.Comments {
			c := &d.Comments[i]
			if err := w.Write([]string{
				idstr(c.ID), idstr(c.Creator), idstr(c.ReplyOf), idstr(c.Root),
				idstr(c.Forum), itoa(c.CreationDate), c.Content,
				strconv.Itoa(c.Length), tagsStr(c.Tags), strconv.Itoa(c.Topic),
				strconv.Itoa(c.Country), c.LocationIP, c.Browser,
			}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return 0, err
	}

	if err := write("like.csv", func(w *csv.Writer) error {
		if err := w.Write([]string{"person", "message", "forum", "creationDate", "isPost"}); err != nil {
			return err
		}
		for i := range d.Likes {
			l := &d.Likes[i]
			isPost := "0"
			if l.IsPost {
				isPost = "1"
			}
			if err := w.Write([]string{idstr(l.Person), idstr(l.Message), idstr(l.Forum), itoa(l.CreationDate), isPost}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return 0, err
	}

	return total, nil
}

// ReadCSVDir reads a dataset previously written by WriteCSVDir.
func ReadCSVDir(dir string) (*Dataset, error) {
	d := &Dataset{}
	read := func(name string, fn func([]string) error) error {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		r := csv.NewReader(f)
		r.Comma = '|'
		r.FieldsPerRecord = -1
		rows, err := r.ReadAll()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		for i, row := range rows {
			if i == 0 {
				continue // header
			}
			if err := fn(row); err != nil {
				return fmt.Errorf("%s row %d: %w", name, i, err)
			}
		}
		return nil
	}

	if err := read("person.csv", func(row []string) error {
		var p Person
		var err error
		if p.ID, err = parseID(row[0]); err != nil {
			return err
		}
		p.FirstName, p.LastName = row[1], row[2]
		p.Gender, _ = strconv.Atoi(row[3])
		p.Birthday, _ = strconv.ParseInt(row[4], 10, 64)
		p.CreationDate, _ = strconv.ParseInt(row[5], 10, 64)
		p.Country, _ = strconv.Atoi(row[6])
		p.City, _ = strconv.Atoi(row[7])
		p.LocationIP, p.Browser = row[8], row[9]
		if row[10] != "" {
			p.Languages = strings.Split(row[10], ";")
		}
		if row[11] != "" {
			p.Emails = strings.Split(row[11], ";")
		}
		if p.Interests, err = parseTags(row[12]); err != nil {
			return err
		}
		p.University, _ = strconv.Atoi(row[13])
		p.ClassYear, _ = strconv.Atoi(row[14])
		p.Company, _ = strconv.Atoi(row[15])
		p.WorkFrom, _ = strconv.Atoi(row[16])
		d.Persons = append(d.Persons, p)
		return nil
	}); err != nil {
		return nil, err
	}

	if err := read("knows.csv", func(row []string) error {
		var k Knows
		var err error
		if k.A, err = parseID(row[0]); err != nil {
			return err
		}
		if k.B, err = parseID(row[1]); err != nil {
			return err
		}
		k.CreationDate, _ = strconv.ParseInt(row[2], 10, 64)
		d.Knows = append(d.Knows, k)
		return nil
	}); err != nil {
		return nil, err
	}

	if err := read("forum.csv", func(row []string) error {
		var f Forum
		var err error
		if f.ID, err = parseID(row[0]); err != nil {
			return err
		}
		f.Title = row[1]
		if f.Moderator, err = parseID(row[2]); err != nil {
			return err
		}
		f.CreationDate, _ = strconv.ParseInt(row[3], 10, 64)
		if f.Tags, err = parseTags(row[4]); err != nil {
			return err
		}
		d.Forums = append(d.Forums, f)
		return nil
	}); err != nil {
		return nil, err
	}

	if err := read("membership.csv", func(row []string) error {
		var m Membership
		var err error
		if m.Forum, err = parseID(row[0]); err != nil {
			return err
		}
		if m.Person, err = parseID(row[1]); err != nil {
			return err
		}
		m.JoinDate, _ = strconv.ParseInt(row[2], 10, 64)
		d.Memberships = append(d.Memberships, m)
		return nil
	}); err != nil {
		return nil, err
	}

	if err := read("post.csv", func(row []string) error {
		var p Post
		var err error
		if p.ID, err = parseID(row[0]); err != nil {
			return err
		}
		if p.Creator, err = parseID(row[1]); err != nil {
			return err
		}
		if p.Forum, err = parseID(row[2]); err != nil {
			return err
		}
		p.CreationDate, _ = strconv.ParseInt(row[3], 10, 64)
		p.Content, p.ImageFile = row[4], row[5]
		p.Length, _ = strconv.Atoi(row[6])
		p.Language = row[7]
		if p.Tags, err = parseTags(row[8]); err != nil {
			return err
		}
		p.Topic, _ = strconv.Atoi(row[9])
		p.Country, _ = strconv.Atoi(row[10])
		p.LocationIP, p.Browser = row[11], row[12]
		d.Posts = append(d.Posts, p)
		return nil
	}); err != nil {
		return nil, err
	}

	if err := read("comment.csv", func(row []string) error {
		var c Comment
		var err error
		if c.ID, err = parseID(row[0]); err != nil {
			return err
		}
		if c.Creator, err = parseID(row[1]); err != nil {
			return err
		}
		if c.ReplyOf, err = parseID(row[2]); err != nil {
			return err
		}
		if c.Root, err = parseID(row[3]); err != nil {
			return err
		}
		if c.Forum, err = parseID(row[4]); err != nil {
			return err
		}
		c.CreationDate, _ = strconv.ParseInt(row[5], 10, 64)
		c.Content = row[6]
		c.Length, _ = strconv.Atoi(row[7])
		if c.Tags, err = parseTags(row[8]); err != nil {
			return err
		}
		c.Topic, _ = strconv.Atoi(row[9])
		c.Country, _ = strconv.Atoi(row[10])
		c.LocationIP, c.Browser = row[11], row[12]
		d.Comments = append(d.Comments, c)
		return nil
	}); err != nil {
		return nil, err
	}

	if err := read("like.csv", func(row []string) error {
		var l Like
		var err error
		if l.Person, err = parseID(row[0]); err != nil {
			return err
		}
		if l.Message, err = parseID(row[1]); err != nil {
			return err
		}
		if l.Forum, err = parseID(row[2]); err != nil {
			return err
		}
		l.CreationDate, _ = strconv.ParseInt(row[3], 10, 64)
		l.IsPost = row[4] == "1"
		d.Likes = append(d.Likes, l)
		return nil
	}); err != nil {
		return nil, err
	}

	return d, nil
}
