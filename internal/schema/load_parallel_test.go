package schema_test

import (
	"reflect"
	"testing"

	"ldbcsnb/internal/datagen"
	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/schema"
	"ldbcsnb/internal/store"
)

// LoadParallel promises a store byte-identical to a sequential Load for any
// worker count: commits are issued strictly in batch order, so the commit
// clock, kind-list order and adjacency insertion order cannot depend on
// scheduling. This test loads one generated dataset sequentially and with
// several worker counts and requires identical observable state — commit
// clock, per-kind node lists (order included), every node's property list
// and every adjacency list with stamps.

var loadEdgeTypes = []store.EdgeType{
	store.EdgeKnows, store.EdgeHasCreator, store.EdgeContainerOf,
	store.EdgeReplyOf, store.EdgeLikes, store.EdgeHasMember,
	store.EdgeHasModerator, store.EdgeHasTag, store.EdgeHasInterest,
	store.EdgeIsLocatedIn, store.EdgeStudyAt, store.EdgeWorkAt,
}

func loadWithWorkers(t *testing.T, d *schema.Dataset, workers int) *store.Store {
	t.Helper()
	st := store.New()
	schema.RegisterIndexes(st)
	if err := schema.LoadDimensions(st); err != nil {
		t.Fatal(err)
	}
	if err := schema.LoadParallel(st, d, workers); err != nil {
		t.Fatal(err)
	}
	return st
}

func assertSameLoadedStore(t *testing.T, want, got *store.Store, workers int) {
	t.Helper()
	if wc, gc := want.LastCommit(), got.LastCommit(); wc != gc {
		t.Fatalf("workers=%d: commit clock %d, sequential %d", workers, gc, wc)
	}
	wv, gv := want.CurrentView(), got.CurrentView()
	if wn, gn := wv.NumNodes(), gv.NumNodes(); wn != gn {
		t.Fatalf("workers=%d: %d nodes, sequential %d", workers, gn, wn)
	}
	var all []ids.ID
	for _, k := range []ids.Kind{ids.KindPerson, ids.KindForum, ids.KindPost, ids.KindComment} {
		wk, gk := wv.NodesOfKind(k), gv.NodesOfKind(k)
		if !reflect.DeepEqual(wk, gk) {
			t.Fatalf("workers=%d: kind %v node list diverges (order matters)", workers, k)
		}
		all = append(all, wk...)
	}
	var wbuf, gbuf []store.Edge
	for _, id := range all {
		wp, _ := wv.Props(id)
		gp, _ := gv.Props(id)
		if !reflect.DeepEqual(wp, gp) {
			t.Fatalf("workers=%d: node %v props diverge", workers, id)
		}
		for _, et := range loadEdgeTypes {
			wbuf = append(wbuf[:0], wv.Out(id, et)...)
			gbuf = append(gbuf[:0], gv.Out(id, et)...)
			if !reflect.DeepEqual(wbuf, gbuf) {
				t.Fatalf("workers=%d: node %v out-%v adjacency diverges", workers, id, et)
			}
			wbuf = append(wbuf[:0], wv.In(id, et)...)
			gbuf = append(gbuf[:0], gv.In(id, et)...)
			if !reflect.DeepEqual(wbuf, gbuf) {
				t.Fatalf("workers=%d: node %v in-%v adjacency diverges", workers, id, et)
			}
		}
	}
}

func TestLoadParallelDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("generates and loads a dataset four times")
	}
	out := datagen.Generate(datagen.Config{Seed: 5, Persons: 200, Events: true})
	seq := loadWithWorkers(t, out.Data, 1)
	for _, workers := range []int{2, 4, 8} {
		par := loadWithWorkers(t, out.Data, workers)
		assertSameLoadedStore(t, seq, par, workers)
	}
}
