package schema

import (
	"reflect"
	"testing"

	"ldbcsnb/internal/dict"
	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/store"
)

// tinyDataset builds a hand-written two-person network exercising every
// entity type.
func tinyDataset() *Dataset {
	p1 := ids.Compose(ids.KindPerson, 10, 0)
	p2 := ids.Compose(ids.KindPerson, 20, 0)
	f1 := ids.Compose(ids.KindForum, 30, 0)
	m1 := ids.Compose(ids.KindPost, 40, 0)
	c1 := ids.Compose(ids.KindComment, 50, 0)
	return &Dataset{
		Persons: []Person{
			{
				ID: p1, FirstName: "Karl", LastName: "Mueller", Gender: dict.GenderMale,
				Birthday: 1000, CreationDate: 600000, Country: 6, City: 1,
				LocationIP: "76.0.0.1", Browser: "Chrome",
				Languages: []string{"de"}, Emails: []string{"karl@x.example.org"},
				Interests: []int{1, 2}, University: 0, ClassYear: 2001, Company: 0, WorkFrom: 2005,
			},
			{
				ID: p2, FirstName: "Yang", LastName: "Wang", Gender: dict.GenderFemale,
				Birthday: 2000, CreationDate: 1200000, Country: 0, City: 0,
				LocationIP: "20.0.0.1", Browser: "Firefox",
				Languages: []string{"zh"}, Interests: []int{2, 3},
				University: -1, Company: -1,
			},
		},
		Knows: []Knows{{A: p1, B: p2, CreationDate: 1800000}},
		Forums: []Forum{{
			ID: f1, Title: "Wall of Karl", Moderator: p1, CreationDate: 700000, Tags: []int{1},
		}},
		Memberships: []Membership{{Forum: f1, Person: p2, JoinDate: 1900000}},
		Posts: []Post{{
			ID: m1, Creator: p1, Forum: f1, CreationDate: 2000000,
			Content: "Beatles about the famous band.", Length: 30, Language: "de",
			Tags: []int{1}, Topic: 1, Country: 6, LocationIP: "76.0.0.1", Browser: "Chrome",
		}},
		Comments: []Comment{{
			ID: c1, Creator: p2, ReplyOf: m1, Root: m1, Forum: f1, CreationDate: 2100000,
			Content: "Beatles reply.", Length: 14, Tags: []int{1}, Topic: 1,
			Country: 0, LocationIP: "20.0.0.1", Browser: "Firefox",
		}},
		Likes: []Like{{Person: p2, Message: m1, Forum: f1, CreationDate: 2200000, IsPost: true}},
	}
}

func freshStore(t *testing.T, d *Dataset) *store.Store {
	t.Helper()
	st := store.New()
	RegisterIndexes(st)
	if err := LoadDimensions(st); err != nil {
		t.Fatal(err)
	}
	if err := Load(st, d); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestLoadTinyDataset(t *testing.T) {
	d := tinyDataset()
	st := freshStore(t, d)
	p1, p2 := d.Persons[0].ID, d.Persons[1].ID
	st.View(func(tx *store.Txn) {
		// Persons and properties.
		if got := tx.Prop(p1, store.PropFirstName).Str(); got != "Karl" {
			t.Fatalf("p1 name %q", got)
		}
		// Symmetric knows.
		if n := tx.Out(p1, store.EdgeKnows); len(n) != 1 || n[0].To != p2 || n[0].Stamp != 1800000 {
			t.Fatalf("knows p1 = %v", n)
		}
		if n := tx.Out(p2, store.EdgeKnows); len(n) != 1 || n[0].To != p1 {
			t.Fatalf("knows p2 = %v", n)
		}
		// Forum structure.
		f := d.Forums[0].ID
		if mod := tx.Out(f, store.EdgeHasModerator); len(mod) != 1 || mod[0].To != p1 {
			t.Fatalf("moderator = %v", mod)
		}
		if mem := tx.Out(f, store.EdgeHasMember); len(mem) != 1 || mem[0].To != p2 || mem[0].Stamp != 1900000 {
			t.Fatalf("members = %v", mem)
		}
		if posts := tx.Out(f, store.EdgeContainerOf); len(posts) != 1 || posts[0].To != d.Posts[0].ID {
			t.Fatalf("containerOf = %v", posts)
		}
		// Message graph: creator stamps carry message creationDate.
		msgs := tx.In(p1, store.EdgeHasCreator)
		if len(msgs) != 1 || msgs[0].Stamp != 2000000 {
			t.Fatalf("p1 messages = %v", msgs)
		}
		// Reply chain.
		replies := tx.In(d.Posts[0].ID, store.EdgeReplyOf)
		if len(replies) != 1 || replies[0].To != d.Comments[0].ID {
			t.Fatalf("replies = %v", replies)
		}
		// Likes.
		likes := tx.In(d.Posts[0].ID, store.EdgeLikes)
		if len(likes) != 1 || likes[0].To != p2 || likes[0].Stamp != 2200000 {
			t.Fatalf("likes = %v", likes)
		}
		// Interests point at tag dimension nodes.
		ints := tx.Out(p1, store.EdgeHasInterest)
		if len(ints) != 2 {
			t.Fatalf("interests = %v", ints)
		}
		// Study/work with stamps.
		study := tx.Out(p1, store.EdgeStudyAt)
		if len(study) != 1 || study[0].Stamp != 2001 {
			t.Fatalf("study = %v", study)
		}
		work := tx.Out(p1, store.EdgeWorkAt)
		if len(work) != 1 || work[0].Stamp != 2005 {
			t.Fatalf("work = %v", work)
		}
		// p2 has no study/work edges.
		if len(tx.Out(p2, store.EdgeStudyAt)) != 0 || len(tx.Out(p2, store.EdgeWorkAt)) != 0 {
			t.Fatal("p2 should have no org edges")
		}
	})
}

func TestLoadDimensions(t *testing.T) {
	st := store.New()
	if err := LoadDimensions(st); err != nil {
		t.Fatal(err)
	}
	st.View(func(tx *store.Txn) {
		tags := tx.NodesOfKind(ids.KindTag)
		if len(tags) != dict.NumTags {
			t.Fatalf("tags loaded: %d", len(tags))
		}
		orgs := tx.NodesOfKind(ids.KindOrganisation)
		if len(orgs) != len(dict.Universities)+len(dict.Companies) {
			t.Fatalf("orgs loaded: %d", len(orgs))
		}
		// Tag -> class -> superclass chain navigable.
		tag0 := TagNodeID(0)
		cls := tx.Out(tag0, store.EdgeHasType)
		if len(cls) != 1 {
			t.Fatalf("tag class edges: %v", cls)
		}
		if got := tx.Prop(cls[0].To, store.PropName).Str(); got != dict.TagClasses[dict.Tags[0].Class].Name {
			t.Fatalf("class name %q", got)
		}
	})
}

func TestCountsHelpers(t *testing.T) {
	d := tinyDataset()
	c := d.Counts()
	if c.Persons != 2 || c.Friendships != 1 || c.Posts != 1 || c.Comments != 1 {
		t.Fatalf("counts = %+v", c)
	}
	if c.Messages() != 2 {
		t.Fatal("messages")
	}
	if c.Nodes() != 2+1+2 {
		t.Fatalf("nodes = %d", c.Nodes())
	}
	if c.EdgesApprox() <= 0 {
		t.Fatal("edges")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := tinyDataset()
	dir := t.TempDir()
	n, err := WriteCSVDir(d, dir)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatal("no bytes written")
	}
	got, err := ReadCSVDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", d, got)
	}
}

func TestReadCSVDirMissing(t *testing.T) {
	if _, err := ReadCSVDir(t.TempDir()); err == nil {
		t.Fatal("expected error for empty dir")
	}
}

func TestUpdateClassification(t *testing.T) {
	d := tinyDataset()
	cases := []struct {
		u       Update
		forum   ids.ID
		dep     bool
		depends bool
	}{
		{Update{Type: UpdateAddPerson, Person: &d.Persons[0]}, 0, true, false},
		{Update{Type: UpdateAddFriendship, DepTime: 5, Friendship: &d.Knows[0]}, 0, false, true},
		{Update{Type: UpdateAddForum, Forum: &d.Forums[0], DepTime: 1}, d.Forums[0].ID, true, true},
		{Update{Type: UpdateAddMembership, Membership: &d.Memberships[0], DepTime: 1}, d.Forums[0].ID, false, true},
		{Update{Type: UpdateAddPost, Post: &d.Posts[0], DepTime: 1}, d.Forums[0].ID, true, true},
		{Update{Type: UpdateAddComment, Comment: &d.Comments[0], DepTime: 1}, d.Forums[0].ID, true, true},
		{Update{Type: UpdateAddLikePost, Like: &d.Likes[0], DepTime: 1}, d.Forums[0].ID, false, true},
	}
	for _, c := range cases {
		if got := c.u.ForumOf(); got != c.forum {
			t.Errorf("%v ForumOf = %v, want %v", c.u.Type, got, c.forum)
		}
		if got := c.u.IsDependency(); got != c.dep {
			t.Errorf("%v IsDependency = %v", c.u.Type, got)
		}
		if got := c.u.IsDependent(); got != c.depends {
			t.Errorf("%v IsDependent = %v", c.u.Type, got)
		}
	}
}

func TestUpdateTypeString(t *testing.T) {
	if UpdateAddPerson.String() != "addPerson" || UpdateType(99).String() != "unknownUpdate" {
		t.Fatal("update names")
	}
}
