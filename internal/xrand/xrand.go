// Package xrand provides deterministic pseudo-random number streams for the
// SNB data generator.
//
// The paper (§2.4) stresses that DATAGEN is deterministic: the generated
// dataset is identical regardless of the Hadoop configuration (number of
// nodes, mappers, reducers). We obtain the same guarantee by deriving every
// random decision from a pure function of (seed, entity, purpose) rather than
// from a shared sequential stream. Each entity gets its own splitmix64-seeded
// generator, so the output is independent of how entities are partitioned
// across workers.
package xrand

import "math"

// splitmix64 is the seeding/mixing function from Steele et al. It is used
// both as a stream deriver and as the core of the Rand generator below
// (xoshiro-style state initialisation).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Mix deterministically combines a seed with any number of discriminator
// values (entity IDs, purpose tags...) into a new 64-bit seed.
func Mix(seed uint64, vs ...uint64) uint64 {
	h := splitmix64(seed)
	for _, v := range vs {
		h = splitmix64(h ^ v)
	}
	return h
}

// Purpose tags name independent random streams derived from one entity.
// Using distinct constants (rather than magic numbers at call sites) keeps
// the generator's determinism auditable.
const (
	PurposePerson uint64 = iota + 1
	PurposeFirstName
	PurposeLastName
	PurposeGender
	PurposeBirthday
	PurposeLocation
	PurposeUniversity
	PurposeCompany
	PurposeLanguages
	PurposeInterests
	PurposeCreationDate
	PurposeDegree
	PurposeFriendPick
	PurposeForum
	PurposePost
	PurposeComment
	PurposeLike
	PurposeMembership
	PurposeEvent
	PurposeText
	PurposeEmail
	PurposeBrowser
	PurposeIP
	PurposePhoto
	PurposeTagClass
	PurposeWorkFrom
	PurposeClassYear
	PurposeShortRead
)

// Rand is a small, fast, deterministic PRNG (splitmix64 sequence). The zero
// value is a valid generator seeded with 0; prefer New.
type Rand struct {
	state uint64
}

// New returns a generator for the stream identified by (seed, discriminators).
func New(seed uint64, vs ...uint64) *Rand {
	return &Rand{state: Mix(seed, vs...)}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	x := r.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Int63 returns a non-negative random int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int64n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int64n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int64n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
// SNB uses exponential distributions for most skewed value choices (§1).
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// Geometric returns a geometrically distributed integer >= 0 with success
// probability p. This is the in-window friend-pick distribution of §2.3:
// the probability of connecting drops geometrically with window distance.
func (r *Rand) Geometric(p float64) int {
	if p <= 0 || p >= 1 {
		panic("xrand: Geometric needs 0 < p < 1")
	}
	u := r.Float64()
	if u == 0 {
		return 0
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// Gaussian returns a normally distributed value (Box-Muller, one value per
// call; the spare is discarded to keep the stream position predictable).
func (r *Rand) Gaussian(mean, stddev float64) float64 {
	u1 := r.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// SkewedIndex returns an index in [0, n) under a truncated exponential
// distribution with the given mean fraction (mean*n is the expected index).
// Index 0 is the most likely value. This is the shared "shape" used by all
// correlated dictionaries (§2.1): the distribution shape is equal across
// correlation parameters, only the dictionary order changes.
func (r *Rand) SkewedIndex(n int, meanFrac float64) int {
	if n <= 0 {
		panic("xrand: SkewedIndex with non-positive n")
	}
	for {
		v := int(r.Exp(meanFrac * float64(n)))
		if v < n {
			return v
		}
	}
}

// Zipf returns an integer in [0, n) under a Zipf distribution with exponent
// s > 1, via rejection sampling. Used for tag popularity.
func (r *Rand) Zipf(n int, s float64) int {
	if n <= 0 {
		panic("xrand: Zipf with non-positive n")
	}
	if n == 1 {
		return 0
	}
	// Inverse-CDF on the continuous bounding curve (a truncated Pareto on
	// [1, n]); exact enough for workload purposes and cheap enough to call
	// per message tag. x falls in [1, n), so rank 1 maps to index 0.
	oneMinusS := 1 - s
	u := r.Float64()
	x := math.Pow(u*(math.Pow(float64(n), oneMinusS)-1)+1, 1/oneMinusS)
	i := int(x) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// UniformTime returns a uniform timestamp in [lo, hi). lo==hi returns lo.
func (r *Rand) UniformTime(lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	return lo + r.Int64n(hi-lo)
}
