package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMixDeterministic(t *testing.T) {
	a := Mix(42, 1, 2, 3)
	b := Mix(42, 1, 2, 3)
	if a != b {
		t.Fatalf("Mix not deterministic: %d != %d", a, b)
	}
}

func TestMixDiscriminates(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		v := Mix(7, i)
		if seen[v] {
			t.Fatalf("collision in Mix at discriminator %d", i)
		}
		seen[v] = true
	}
	if Mix(7, 1, 2) == Mix(7, 2, 1) {
		t.Fatal("Mix should be order-sensitive")
	}
}

func TestRandSameSeedSameStream(t *testing.T) {
	a, b := New(9, PurposePerson, 5), New(9, PurposePerson, 5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(2)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(3)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(5.0)
	}
	mean := sum / n
	if math.Abs(mean-5.0) > 0.1 {
		t.Fatalf("Exp mean off: got %v want ~5.0", mean)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(4)
	const p = 0.25
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / n
	want := (1 - p) / p // mean of geometric starting at 0
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("Geometric mean off: got %v want ~%v", mean, want)
	}
}

func TestGaussianMoments(t *testing.T) {
	r := New(5)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Gaussian(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("Gaussian mean off: %v", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("Gaussian stddev off: %v", math.Sqrt(variance))
	}
}

func TestSkewedIndexSkew(t *testing.T) {
	r := New(6)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[r.SkewedIndex(100, 0.15)]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("SkewedIndex not skewed toward 0: c0=%d c50=%d", counts[0], counts[50])
	}
	// Monotone-ish decay over coarse buckets.
	head := counts[0] + counts[1] + counts[2] + counts[3] + counts[4]
	tail := counts[95] + counts[96] + counts[97] + counts[98] + counts[99]
	if head < tail*5 {
		t.Fatalf("insufficient skew: head=%d tail=%d", head, tail)
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := New(7)
	counts := make([]int, 50)
	for i := 0; i < 100000; i++ {
		v := r.Zipf(50, 1.5)
		if v < 0 || v >= 50 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[25] {
		t.Fatalf("Zipf not skewed: c0=%d c25=%d", counts[0], counts[25])
	}
}

func TestPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%64 + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUniformTimeBounds(t *testing.T) {
	err := quick.Check(func(seed uint64, lo int32, span uint16) bool {
		r := New(seed)
		l := int64(lo)
		h := l + int64(span)
		v := r.UniformTime(l, h)
		if h == l {
			return v == l
		}
		return v >= l && v < h
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUniformTimeDegenerate(t *testing.T) {
	r := New(8)
	if got := r.UniformTime(100, 100); got != 100 {
		t.Fatalf("degenerate UniformTime = %d, want 100", got)
	}
	if got := r.UniformTime(100, 50); got != 100 {
		t.Fatalf("inverted UniformTime = %d, want 100", got)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
