package core

import (
	"testing"

	"ldbcsnb/internal/workload"
)

func TestPrepareDefaults(t *testing.T) {
	b, err := Prepare(Options{Persons: 150, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if b.Store == nil || b.Full == nil || len(b.Updates) == 0 {
		t.Fatal("incomplete benchmark state")
	}
	c := b.Bulk.Counts()
	if c.Persons == 0 || c.Messages() == 0 {
		t.Fatal("bulk not loaded")
	}
	if b.Opts.Streams != 4 || b.Opts.ReadClients != 2 {
		t.Fatalf("defaults not applied: %+v", b.Opts)
	}
}

func TestRunProducesValidReport(t *testing.T) {
	b, err := Prepare(Options{Persons: 150, Seed: 5, ComplexPerType: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep := b.Run()
	if !rep.Valid {
		t.Fatalf("run invalid: %s", rep.Reason)
	}
	if rep.AccelerationAchieved <= 0 {
		t.Fatal("no acceleration measured")
	}
	for q := 0; q < workload.NumComplexQueries; q++ {
		if rep.Mixed.Complex[q].Count == 0 {
			t.Fatalf("Q%d not executed", q+1)
		}
	}
	if rep.Counts.Persons != 150 {
		t.Fatalf("counts: %+v", rep.Counts)
	}
	if rep.UpdateSpan <= 0 {
		t.Fatal("no update span")
	}
}

func TestRunFailsUnreachableAcceleration(t *testing.T) {
	b, err := Prepare(Options{Persons: 120, Seed: 6, ComplexPerType: 1})
	if err != nil {
		t.Fatal(err)
	}
	// An absurd target (1e12 x real time) cannot be sustained.
	b.Opts.Acceleration = 1e12
	rep := b.Run()
	if rep.Valid {
		t.Fatal("run should be invalid at unreachable acceleration")
	}
	if rep.Reason == "" {
		t.Fatal("missing reason")
	}
}

func TestScaleFactorOption(t *testing.T) {
	o := Options{ScaleFactor: 0.02}.withDefaults()
	if o.Persons != 120 {
		t.Fatalf("persons = %d", o.Persons)
	}
	o2 := Options{Persons: 99, ScaleFactor: 5}.withDefaults()
	if o2.Persons != 99 {
		t.Fatal("explicit persons must win")
	}
}
