// Package core is the top-level façade of the benchmark: it wires the
// generator, store, workload, parameter curation and driver into the run
// protocol of §4 "Rules and Metrics" — pick a scale and an acceleration
// factor, bulk-load 32 months, replay the rest as transactional updates
// concurrent with the read mix, check the run kept up with the chosen
// acceleration and that complex-read p99 latencies stayed stable, and
// report the benchmark metric.
package core

import (
	"fmt"
	"time"

	"ldbcsnb/internal/datagen"
	"ldbcsnb/internal/driver"
	"ldbcsnb/internal/schema"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/workload"
)

// Options parameterises a benchmark run. The zero value is usable: SF
// defaults to a smoke-test scale.
type Options struct {
	// ScaleFactor sets the dataset size (1.0 ≈ 6000 persons). Ignored if
	// Persons > 0.
	ScaleFactor float64
	// Persons overrides the scale factor with an explicit person count.
	Persons int
	// Seed makes the whole benchmark reproducible.
	Seed uint64
	// Acceleration is the target simulation-time / real-time ratio for the
	// update stream (0 = replay unpaced, as fast as dependencies allow).
	Acceleration float64
	// Streams is the update partition count.
	Streams int
	// ReadClients is the number of concurrent read executors.
	ReadClients int
	// ComplexPerType caps complex-query executions per template.
	ComplexPerType int
	// UniformParams disables parameter curation for Q5 (ablation).
	UniformParams bool
}

func (o Options) withDefaults() Options {
	if o.Persons == 0 {
		if o.ScaleFactor == 0 {
			o.ScaleFactor = 0.05
		}
		o.Persons = datagen.PersonsForSF(o.ScaleFactor)
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Streams <= 0 {
		o.Streams = 4
	}
	if o.ReadClients <= 0 {
		o.ReadClients = 2
	}
	if o.ComplexPerType <= 0 {
		o.ComplexPerType = 3
	}
	return o
}

// Report is the §4 benchmark outcome.
type Report struct {
	// Valid reports whether the run satisfied the §4 validity rules
	// (sustained acceleration, stable p99); Reason explains a failure.
	Valid  bool
	Reason string
	// AccelerationAchieved is simulation-time replayed / real time — the
	// headline metric ("this acceleration-factor ... correlates with
	// throughput of the system").
	AccelerationAchieved float64
	// Mixed carries the per-query latency tables (Tables 6/7/9).
	Mixed *driver.MixedReport
	// Counts summarises the loaded dataset.
	Counts schema.Counts
	// LoadWall is the bulk-load duration.
	LoadWall time.Duration
	// UpdateSpan is the simulation time covered by the update stream.
	UpdateSpan time.Duration
}

// Benchmark is a prepared benchmark instance: generated dataset, loaded
// store, pending update stream.
type Benchmark struct {
	Opts    Options
	Store   *store.Store
	Full    *schema.Dataset
	Bulk    *schema.Dataset
	Updates []schema.Update
	Events  []datagen.Event
	load    time.Duration
}

// Prepare generates the dataset and bulk-loads the store (the benchmark
// start state: 32 months loaded, 4 months pending as updates).
func Prepare(opts Options) (*Benchmark, error) {
	opts = opts.withDefaults()
	out := datagen.Generate(datagen.Config{
		Seed: opts.Seed, Persons: opts.Persons, Workers: opts.Streams, Events: true,
	})
	bulk, updates := datagen.Split(out.Data, datagen.UpdateCut)
	st := store.New()
	schema.RegisterIndexes(st)
	t0 := time.Now()
	if err := schema.LoadDimensions(st); err != nil {
		return nil, fmt.Errorf("load dimensions: %w", err)
	}
	if err := schema.Load(st, bulk); err != nil {
		return nil, fmt.Errorf("bulk load: %w", err)
	}
	return &Benchmark{
		Opts: opts, Store: st, Full: out.Data, Bulk: bulk,
		Updates: updates, Events: out.Events, load: time.Since(t0),
	}, nil
}

// Run executes the Interactive workload and validates the run.
func (b *Benchmark) Run() *Report {
	rep := &Report{Counts: b.Full.Counts(), LoadWall: b.load}
	var span int64
	if n := len(b.Updates); n > 0 {
		span = b.Updates[n-1].DueTime - b.Updates[0].DueTime
	}
	rep.UpdateSpan = time.Duration(span) * time.Millisecond

	mixed := driver.RunMixed(driver.MixedConfig{
		Store:          b.Store,
		Dataset:        b.Full,
		Updates:        b.Updates,
		Streams:        b.Opts.Streams,
		ReadClients:    b.Opts.ReadClients,
		ComplexPerType: b.Opts.ComplexPerType,
		Seed:           b.Opts.Seed,
		UniformParams:  b.Opts.UniformParams,
	})
	rep.Mixed = mixed
	if mixed.Wall > 0 {
		rep.AccelerationAchieved = float64(span) / float64(mixed.Wall.Milliseconds())
	}

	rep.Valid, rep.Reason = b.validate(mixed, rep.AccelerationAchieved)
	return rep
}

// validate applies the §4 run rules: no execution errors; if an
// acceleration target was set, the run must sustain it; complex-read
// latencies must be stable, measured as p99 within a sane multiple of the
// mean per query ("it is required that latencies of the complex read-only
// queries are stable as measured by a maximum latency on the 99th
// percentile").
func (b *Benchmark) validate(m *driver.MixedReport, achieved float64) (bool, string) {
	if m.Errors > 0 {
		return false, fmt.Sprintf("%d execution errors", m.Errors)
	}
	if b.Opts.Acceleration > 0 && achieved < b.Opts.Acceleration {
		return false, fmt.Sprintf("sustained acceleration %.2f below target %.2f",
			achieved, b.Opts.Acceleration)
	}
	for q := 0; q < workload.NumComplexQueries; q++ {
		s := &m.Complex[q]
		if s.Count < 2 {
			continue
		}
		mean := s.Mean()
		if mean == 0 {
			continue
		}
		if p99 := s.Percentile(99); p99 > 100*mean {
			return false, fmt.Sprintf("Q%d p99 %v unstable vs mean %v", q+1, p99, mean)
		}
	}
	return true, ""
}
