package distr

import (
	"math"
	"testing"
	"testing/quick"

	"ldbcsnb/internal/xrand"
)

func TestPercentileTableShape(t *testing.T) {
	// Figure 2(b): monotone non-decreasing, ~10 at p=0, capped at 5000.
	prev := 0
	for p := 0; p <= 100; p++ {
		d := MaxDegreeAtPercentile(p)
		if d < prev {
			t.Fatalf("percentile table not monotone at %d: %d < %d", p, d, prev)
		}
		prev = d
	}
	if MaxDegreeAtPercentile(0) < 5 || MaxDegreeAtPercentile(0) > 20 {
		t.Fatalf("p0 degree %d outside ~10", MaxDegreeAtPercentile(0))
	}
	if MaxDegreeAtPercentile(100) != 5000 {
		t.Fatalf("p100 degree %d, want 5000 cap", MaxDegreeAtPercentile(100))
	}
	if MaxDegreeAtPercentile(-5) != MaxDegreeAtPercentile(0) || MaxDegreeAtPercentile(200) != MaxDegreeAtPercentile(100) {
		t.Fatal("clamping broken")
	}
}

func TestAvgDegreeFormula(t *testing.T) {
	// §2.3: at Facebook size (700M persons) the average degree is ~200.
	got := AvgDegree(700_000_000)
	if got < 150 || got > 260 {
		t.Fatalf("AvgDegree(700M) = %v, want ~200", got)
	}
	// Smaller networks have (somewhat) lower average degree.
	if !(AvgDegree(1000) < AvgDegree(100000) && AvgDegree(100000) < AvgDegree(10000000)) {
		t.Fatal("AvgDegree not increasing in n")
	}
	if AvgDegree(1) != 0 {
		t.Fatal("degenerate network should have degree 0")
	}
}

func TestFacebookAvgDegreePlausible(t *testing.T) {
	if FacebookAvgDegree < 100 || FacebookAvgDegree > 400 {
		t.Fatalf("implied Facebook mean degree %v implausible", FacebookAvgDegree)
	}
}

func TestTargetDegreeBounds(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		m := NewDegreeModel(500)
		r := xrand.New(seed, xrand.PurposeDegree)
		for i := 0; i < 50; i++ {
			d := m.TargetDegree(r)
			if d < 1 || d > 499 {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestTargetDegreeMeanTracksFormula(t *testing.T) {
	const n = 20000
	m := NewDegreeModel(n)
	r := xrand.New(13, xrand.PurposeDegree)
	sum := 0.0
	const samples = 50000
	for i := 0; i < samples; i++ {
		sum += float64(m.TargetDegree(r))
	}
	mean := sum / samples
	want := AvgDegree(n)
	if math.Abs(mean-want)/want > 0.25 {
		t.Fatalf("mean target degree %v, want ~%v", mean, want)
	}
}

func TestTargetDegreeHeavyTail(t *testing.T) {
	// A power-law-ish distribution: max sampled degree far exceeds the mean.
	m := NewDegreeModel(100000)
	r := xrand.New(17, xrand.PurposeDegree)
	maxD, sum := 0, 0
	const samples = 20000
	for i := 0; i < samples; i++ {
		d := m.TargetDegree(r)
		sum += d
		if d > maxD {
			maxD = d
		}
	}
	mean := float64(sum) / samples
	if float64(maxD) < 5*mean {
		t.Fatalf("tail too light: max %d vs mean %v", maxD, mean)
	}
}

func TestSplitDegreeSums(t *testing.T) {
	err := quick.Check(func(raw uint16) bool {
		target := int(raw) % 2000
		s, i, r := SplitDegree(target)
		return s >= 0 && i >= 0 && r >= 0 && s+i+r == target
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitDegreeShares(t *testing.T) {
	s, i, r := SplitDegree(1000)
	if s != 450 || i != 450 || r != 100 {
		t.Fatalf("SplitDegree(1000) = %d,%d,%d; want 450,450,100", s, i, r)
	}
	// Tiny degrees must still sum exactly.
	for target := 0; target <= 5; target++ {
		a, b, c := SplitDegree(target)
		if a+b+c != target {
			t.Fatalf("SplitDegree(%d) parts sum to %d", target, a+b+c)
		}
	}
}

func TestZeroPersonModel(t *testing.T) {
	m := NewDegreeModel(1)
	r := xrand.New(1, xrand.PurposeDegree)
	if m.TargetDegree(r) != 0 {
		t.Fatal("one-person network cannot have friends")
	}
}
