// Package distr implements the friendship-degree model of SNB DATAGEN
// (§2.3 of the paper):
//
//  1. DATAGEN discretises the Facebook degree distribution [Ugander et al.]
//     into percentiles; Figure 2(b) plots the maximum degree per percentile.
//  2. A target average degree is chosen as
//     avgDegree = n^(0.512 − 0.028·log10(n))
//     so the mean degree shrinks logarithmically for smaller networks
//     (at Facebook scale, n = 700M, this gives ≈ 200).
//  3. Each person is assigned a percentile p of the Facebook distribution,
//     then a target degree uniform between the min and max degree at p,
//     then scaled by avgDegree / facebookAvgDegree.
//  4. The target degree is split 45% / 45% / 10% over the three
//     correlation dimensions (study location, interests, random).
package distr

import (
	"math"

	"ldbcsnb/internal/xrand"
)

// facebookMaxDegree holds the digitised maximum degree at each percentile
// of the Facebook friendship-degree distribution, reconstructed from the
// log-scale curve of Figure 2(b): ~10 at the low percentiles rising through
// ~100 around the 40th percentile to ~1000 near the 99th, then the 5000 cap.
// This is the documented substitution for the original table [14]; only the
// shape (heavy tail over ~3 decades) matters to the benchmark.
var facebookMaxDegree [101]int

// FacebookAvgDegree is the average friendship degree of the reference
// Facebook graph implied by the percentile table; §2.3 quotes ≈190-200.
var FacebookAvgDegree float64

func init() {
	// Smooth log-linear ramp with a heavier top: the curve in Fig 2(b) is
	// roughly a straight line on the log axis from 10^1 to 10^3 with an
	// upturn in the last percentiles.
	for p := 0; p <= 100; p++ {
		exp := 1.0 + 2.0*float64(p)/100.0 // 10^1 .. 10^3
		if p > 95 {
			exp += 0.14 * float64(p-95) // tail upturn toward the 5000 cap
		}
		d := math.Pow(10, exp)
		if d > 5000 {
			d = 5000
		}
		facebookMaxDegree[p] = int(d)
	}
	// The implied mean: percentile p spans (minDeg(p)+maxDeg(p))/2 mass.
	sum := 0.0
	for p := 1; p <= 100; p++ {
		sum += float64(facebookMaxDegree[p-1]+facebookMaxDegree[p]) / 2
	}
	FacebookAvgDegree = sum / 100
}

// MaxDegreeAtPercentile returns the digitised Facebook max degree at
// percentile p in [0,100] — the data series of Figure 2(b).
func MaxDegreeAtPercentile(p int) int {
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	return facebookMaxDegree[p]
}

// AvgDegree returns the target mean friendship degree for a network of n
// persons, per the paper's formula n^(0.512 − 0.028·log10(n)).
func AvgDegree(n int) float64 {
	if n < 2 {
		return 0
	}
	fn := float64(n)
	return math.Pow(fn, 0.512-0.028*math.Log10(fn))
}

// DegreeModel assigns target friendship degrees for a network of a given
// size. The zero value is unusable; construct with NewDegreeModel.
type DegreeModel struct {
	n     int
	scale float64
}

// NewDegreeModel returns the degree model for an n-person network.
func NewDegreeModel(n int) *DegreeModel {
	m := &DegreeModel{n: n}
	if n >= 2 {
		m.scale = AvgDegree(n) / FacebookAvgDegree
	}
	return m
}

// TargetDegree draws the total target degree for one person: a percentile
// assignment, a uniform draw within the percentile band, and the network
// scaling, exactly the three steps of §2.3. The result is at least 1 so the
// friendship graph stays connected-ish, and at most n-1.
func (m *DegreeModel) TargetDegree(r *xrand.Rand) int {
	if m.n < 2 {
		return 0
	}
	p := r.Intn(100) + 1 // percentile band (p-1, p]
	lo := facebookMaxDegree[p-1]
	hi := facebookMaxDegree[p]
	d := lo
	if hi > lo {
		d += r.Intn(hi - lo + 1)
	}
	scaled := int(math.Round(float64(d) * m.scale))
	if scaled < 1 {
		scaled = 1
	}
	if scaled > m.n-1 {
		scaled = m.n - 1
	}
	return scaled
}

// Dimension share of the target degree (§2.3): 45% study location,
// 45% interests, 10% random.
const (
	ShareStudy    = 0.45
	ShareInterest = 0.45
	ShareRandom   = 0.10
)

// SplitDegree splits a target degree over the three correlation dimensions,
// rounding so the parts always sum to the target.
func SplitDegree(target int) (study, interest, random int) {
	study = int(math.Round(float64(target) * ShareStudy))
	interest = int(math.Round(float64(target) * ShareInterest))
	random = target - study - interest
	if random < 0 {
		// Rounding both 45% shares up can overshoot by one at tiny degrees.
		interest += random
		random = 0
		if interest < 0 {
			study += interest
			interest = 0
		}
	}
	return study, interest, random
}
