package bench

import (
	"fmt"
	"runtime"
	"testing"

	"ldbcsnb/internal/store"
)

// BenchmarkMemory measures the resident footprint of the compact frozen
// representation at increasing scale: bytes per node and per adjacency
// entry of the snapshot view (delta+varint CSR, dense property columns,
// interned strings), the uncompressed baseline the codec is measured
// against, and process heap. One iteration is the full streamed
// generate+split+load pipeline plus a view build, so ns/op doubles as the
// end-to-end load latency at that scale. Emitted to BENCH_memory.json by
// `make bench-mem`.
func BenchmarkMemory(b *testing.B) {
	for _, persons := range []int{250, 1000, 2500} {
		b.Run(fmt.Sprintf("sf=%dp", persons), func(b *testing.B) {
			var st store.Stats
			var heap uint64
			for i := 0; i < b.N; i++ {
				env, err := NewEnvStreamed(persons, 42)
				if err != nil {
					b.Fatal(err)
				}
				env.Store.CurrentView() // materialise the frozen view
				st = env.Store.ComputeStats()
				runtime.GC()
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				heap = ms.HeapAlloc
			}
			v := st.View
			if v.Edges == 0 {
				b.Fatal("view has no edges; stats are not era-aware")
			}
			b.ReportMetric(v.BytesPerNode(), "viewbytes/node")
			b.ReportMetric(v.BytesPerEdge(), "adjbytes/edge")
			b.ReportMetric(float64(v.UncompressedAdjBytes)/float64(v.Edges), "rawadjbytes/edge")
			b.ReportMetric(float64(v.UncompressedAdjBytes)/float64(v.AdjBytes), "adjcompression")
			b.ReportMetric(float64(st.InternBytes), "internbytes")
			b.ReportMetric(float64(v.Nodes), "nodes")
			b.ReportMetric(float64(v.Edges)/2, "edges")
			b.ReportMetric(float64(heap)/(1<<20), "heapMB")
		})
	}
}
