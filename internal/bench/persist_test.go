package bench

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ldbcsnb/internal/bi"
	"ldbcsnb/internal/driver"
	"ldbcsnb/internal/exec"
	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/schema"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/workload"
	"ldbcsnb/internal/xrand"
)

// Workload-level recovery equivalence: a store recovered from disk
// (checkpoint + WAL tail) must answer the full Interactive and BI query
// surface identically to the live store it mirrors — frozen views,
// morsel-parallel BI execution and MVCC transactions included. The
// store-level property (every read primitive, every epoch) lives in
// internal/store/persist_test.go; this test closes the loop at the layer
// users see: whole queries over an SNB dataset with its update stream.

// persistPools builds a small parameter pool over the generated dataset,
// mirroring what the driver's curation pipeline feeds the registries.
func persistPools(env *Env) *workload.ParamPools {
	var end int64
	for i := range env.Full.Posts {
		if d := env.Full.Posts[i].CreationDate; d > end {
			end = d
		}
	}
	pp := &workload.ParamPools{
		CountryX:     0,
		CountryY:     1,
		NumCountries: 25,
		MaxDate:      end,
		WindowMillis: 120 * 24 * 3600 * 1000,
		BeforeYear:   2013,
	}
	pp.StartDate = pp.MaxDate - pp.WindowMillis
	for i := range env.Full.Persons {
		pp.Persons = append(pp.Persons, env.Full.Persons[i].ID)
		if len(pp.Persons) >= 24 {
			break
		}
	}
	pp.PersonsQ5 = pp.Persons
	seen := map[string]bool{}
	for i := range env.Full.Persons {
		if n := env.Full.Persons[i].FirstName; !seen[n] {
			seen[n] = true
			pp.FirstNames = append(pp.FirstNames, n)
		}
	}
	for i := 0; i < 16; i++ {
		pp.Tags = append(pp.Tags, schema.TagNodeID(i*7))
		pp.TagClasses = append(pp.TagClasses, ids.DimensionID(ids.KindTagClass, uint32(i)))
	}
	return pp
}

// assertWorkloadEquiv runs every complex query (frozen-view path) and
// every BI query (serial view, morsel-parallel view, MVCC txn) with
// identical parameter draws against both stores and requires identical
// results.
func assertWorkloadEquiv(t *testing.T, live, rec *store.Store, pp *workload.ParamPools) {
	t.Helper()
	if lc, rc := live.LastCommit(), rec.LastCommit(); lc != rc {
		t.Fatalf("clocks diverge: live %d recovered %d", lc, rc)
	}
	lv, rv := live.CurrentView(), rec.CurrentView()
	lsc, rsc := workload.NewScratch(), workload.NewScratch()
	lr, rr := xrand.New(99), xrand.New(99)
	for q := range workload.Complex {
		spec := &workload.Complex[q]
		lp, rp := spec.Bind(pp, lr), spec.Bind(pp, rr)
		if lp != rp {
			t.Fatalf("%s: parameter draws diverged", spec.Name)
		}
		lres := spec.RunView(lv, lsc, lp)
		rres := spec.RunView(rv, rsc, rp)
		if !reflect.DeepEqual(lres, rres) {
			t.Fatalf("%s: live %+v recovered %+v", spec.Name, lres, rres)
		}
	}
	for q := range bi.Registry {
		spec := &bi.Registry[q]
		lp, rp := spec.Bind(pp, lr), spec.Bind(pp, rr)
		lres := spec.RunView(lv, lsc, lp)
		if rres := spec.RunView(rv, rsc, rp); rres != lres {
			t.Fatalf("%s serial view: live %+v recovered %+v", spec.Name, lres, rres)
		}
		if rres := spec.RunPar(rv, exec.Config{Workers: 2, MorselSize: 64}, rp); rres != lres {
			t.Fatalf("%s parallel view: live %+v recovered %+v", spec.Name, lres, rres)
		}
		rec.View(func(tx *store.Txn) {
			if rres := spec.RunTxn(tx, rsc, rp); rres != lres {
				t.Fatalf("%s txn: live view %+v recovered txn %+v", spec.Name, lres, rres)
			}
		})
	}
}

// TestRecoveredStoreServesWorkload sweeps the recovery-equivalence check
// across scales: the default quick scale always runs, the 1000-person
// scale (the memory benchmarks' first big step) is exercised by
// `make bench-smoke` so the compact checkpoint format is proven at a
// scale where dictionary and varint sections actually matter.
func TestRecoveredStoreServesWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("full dataset load + double update replay")
	}
	t.Run("100p", func(t *testing.T) { testRecoveredStoreServesWorkload(t, 100) })
	t.Run("1000p", func(t *testing.T) {
		if os.Getenv("SNB_SMOKE_FULL") == "" {
			t.Skip("1000-person sweep: set SNB_SMOKE_FULL=1 (make bench-smoke)")
		}
		testRecoveredStoreServesWorkload(t, 1000)
	})
}

func testRecoveredStoreServesWorkload(t *testing.T, persons int) {
	const seed = 42

	liveEnv, err := NewEnv(persons, seed)
	if err != nil {
		t.Fatal(err)
	}
	pp := persistPools(liveEnv)

	dir := filepath.Join(t.TempDir(), "data")
	p, info, err := store.Open(dir, store.PersistOptions{CheckpointBytes: -1, SegmentBytes: 1 << 20}, schema.RegisterIndexes)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if !info.Fresh {
		t.Fatalf("fresh dir not fresh: %+v", info)
	}
	durEnv := NewEnvData(persons, seed)
	if err := durEnv.LoadInto(p.Store); err != nil {
		t.Fatal(err)
	}

	// Replay the update stream sequentially and identically on both
	// stores, checkpointing the durable one mid-stream so recovery
	// exercises checkpoint + tail (not full replay).
	liveConn := &driver.StoreConnector{Store: liveEnv.Store}
	durConn := &driver.StoreConnector{Store: p.Store}
	half := len(durEnv.Updates) / 2
	for i := range durEnv.Updates {
		if err := liveConn.Execute(&liveEnv.Updates[i]); err != nil {
			t.Fatal(err)
		}
		if err := durConn.Execute(&durEnv.Updates[i]); err != nil {
			t.Fatal(err)
		}
		if i == half {
			if err := p.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}

	// Crash image: recover a copy while the original keeps running.
	crash := filepath.Join(t.TempDir(), "crash")
	copyTree(t, dir, crash)
	re, rinfo, err := store.Open(crash, store.PersistOptions{CheckpointBytes: -1}, schema.RegisterIndexes)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if rinfo.CheckpointTS == 0 || rinfo.Replayed == 0 {
		t.Fatalf("recovery should have used checkpoint + tail: %+v", rinfo)
	}
	assertWorkloadEquiv(t, liveEnv.Store, re.Store, pp)

	// Clean shutdown + reopen of the original directory.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	re2, _, err := store.Open(dir, store.PersistOptions{CheckpointBytes: -1}, schema.RegisterIndexes)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	assertWorkloadEquiv(t, liveEnv.Store, re2.Store, pp)
}

// copyTree is a recursive file copy (the crash image helper).
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		s, d := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			copyTree(t, s, d)
			continue
		}
		data, err := os.ReadFile(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(d, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
