// Package bench regenerates every table and figure of the paper's
// evaluation (§5 plus the figures of §2 and §4.1), using the scaled-down
// datasets DESIGN.md documents. Each experiment returns a Result that
// renders as an ASCII table; bench_test.go exposes one testing.B benchmark
// per experiment and cmd/snb-report prints them all.
package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	"ldbcsnb/internal/datagen"
	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/schema"
	"ldbcsnb/internal/store"
)

// Result is one regenerated table or figure.
type Result struct {
	ID     string // e.g. "Table 6", "Figure 5b"
	Title  string
	Header []string
	Rows   [][]string
	Notes  string // expected shape vs the paper, caveats
}

// Render formats the result as an ASCII table.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		line(row)
	}
	if r.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", r.Notes)
	}
	return b.String()
}

// Env is a generated-and-loaded benchmark environment shared by the
// experiments that need a populated store.
type Env struct {
	Cfg     datagen.Config
	Out     *datagen.Output
	Full    *schema.Dataset
	Bulk    *schema.Dataset
	Updates []schema.Update
	Store   *store.Store
}

// DefaultPersons is the default environment scale: large enough for every
// query to touch meaningful data, small enough for laptop benchmarking.
const DefaultPersons = 400

// NewEnv generates a dataset (with events enabled), splits it at the
// 32-month cut and bulk-loads a fresh in-memory store.
func NewEnv(persons int, seed uint64) (*Env, error) {
	e := NewEnvData(persons, seed)
	st := store.New()
	schema.RegisterIndexes(st)
	if err := e.LoadInto(st); err != nil {
		return nil, err
	}
	return e, nil
}

// NewEnvData generates the dataset and the bulk/update split without
// loading any store — for callers that load into a store they own, such as
// a durable store.Open store (snb-run -data-dir) or the recovery
// benchmarks. Generation is deterministic in (persons, seed).
func NewEnvData(persons int, seed uint64) *Env {
	if persons <= 0 {
		persons = DefaultPersons
	}
	cfg := datagen.Config{Seed: seed, Persons: persons, Workers: loadWorkers(), Events: true}
	out := datagen.Generate(cfg)
	bulk, updates := datagen.Split(out.Data, datagen.UpdateCut)
	return &Env{Cfg: cfg, Out: out, Full: out.Data, Bulk: bulk, Updates: updates}
}

// loadWorkers picks the generation/load parallelism for an environment:
// GOMAXPROCS clamped to [2, 8]. Store content is identical for any value
// (datagen's §2.4 guarantee; LoadParallel's ordered commits), so this only
// moves setup wall-clock time.
func loadWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w < 2 {
		w = 2
	}
	if w > 8 {
		w = 8
	}
	return w
}

// NewEnvStreamed builds an environment through the streaming pipeline:
// datagen.Stream chunks are split and bulk-loaded as they arrive, so
// loading overlaps generation and the full dataset is never resident at
// once. For the same (persons, seed) the update stream is identical to
// NewEnv's and the store holds the identical logical graph — same nodes,
// properties, adjacency, order included — though commit-clock values
// differ because transaction batches follow chunk boundaries. Out/Full
// are unavailable (nil): use NewEnv when an experiment needs the raw
// dataset for parameter curation. This is the path the thousand-person
// memory benchmarks use.
func NewEnvStreamed(persons int, seed uint64) (*Env, error) {
	if persons <= 0 {
		persons = DefaultPersons
	}
	cfg := datagen.Config{Seed: seed, Persons: persons, Workers: loadWorkers(), Events: true}
	st := store.New()
	schema.RegisterIndexes(st)
	if err := schema.LoadDimensions(st); err != nil {
		return nil, err
	}
	e := &Env{Cfg: cfg, Store: st}

	ch, wait := datagen.Stream(cfg)
	var personCreated map[ids.ID]int64
	for c := range ch {
		if personCreated == nil {
			personCreated = make(map[ids.ID]int64, len(c.Persons))
			for i := range c.Persons {
				personCreated[c.Persons[i].ID] = c.Persons[i].CreationDate
			}
		}
		bulk, updates := datagen.SplitWith(c, datagen.UpdateCut, personCreated)
		if err := schema.LoadParallel(st, bulk, cfg.Workers); err != nil {
			return nil, err
		}
		e.Updates = append(e.Updates, updates...)
	}
	wait()
	// Chunks arrive class-major and pre-sorted; the stable global sort
	// reproduces Split-of-the-whole's update order exactly
	// (TestStreamSplitMatchesSplit pins this).
	sort.SliceStable(e.Updates, func(i, j int) bool {
		return e.Updates[i].DueTime < e.Updates[j].DueTime
	})
	return e, nil
}

// LoadInto bulk-loads the environment's dimension tables and bulk split
// into st — which must already have its indexes registered
// (schema.RegisterIndexes) and, for durable stores, its WAL attached so
// the load is logged — and adopts st as the environment's store.
func (e *Env) LoadInto(st *store.Store) error {
	if err := schema.LoadDimensions(st); err != nil {
		return err
	}
	if err := schema.LoadParallel(st, e.Bulk, e.Cfg.Workers); err != nil {
		return err
	}
	e.Store = st
	return nil
}

func ms(d float64) string { return fmt.Sprintf("%.3f", d) }
