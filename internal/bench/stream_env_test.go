package bench

import (
	"reflect"
	"testing"

	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/store"
)

// TestStreamedEnvMatchesNewEnv pins the NewEnvStreamed contract: for the
// same (persons, seed) the streamed pipeline produces the same update
// stream and the same logical store content as the materialise-everything
// path — same per-kind node lists (order included), same properties, same
// adjacency with stamps. Only the commit clock may differ (transaction
// batches follow chunk boundaries), so it is deliberately not compared.
func TestStreamedEnvMatchesNewEnv(t *testing.T) {
	if testing.Short() {
		t.Skip("generates and loads the dataset twice")
	}
	const persons, seed = 150, 9
	ref, err := NewEnv(persons, seed)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewEnvStreamed(persons, seed)
	if err != nil {
		t.Fatal(err)
	}

	if len(got.Updates) != len(ref.Updates) {
		t.Fatalf("update counts diverge: streamed %d, reference %d", len(got.Updates), len(ref.Updates))
	}
	for i := range got.Updates {
		if !reflect.DeepEqual(got.Updates[i], ref.Updates[i]) {
			t.Fatalf("update %d diverges:\nstreamed  %+v\nreference %+v", i, got.Updates[i], ref.Updates[i])
		}
	}

	rv, gv := ref.Store.CurrentView(), got.Store.CurrentView()
	if rn, gn := rv.NumNodes(), gv.NumNodes(); rn != gn {
		t.Fatalf("node counts diverge: streamed %d, reference %d", gn, rn)
	}
	edgeTypes := []store.EdgeType{
		store.EdgeKnows, store.EdgeHasCreator, store.EdgeContainerOf,
		store.EdgeReplyOf, store.EdgeLikes, store.EdgeHasMember,
		store.EdgeHasModerator, store.EdgeHasTag, store.EdgeHasInterest,
		store.EdgeIsLocatedIn, store.EdgeStudyAt, store.EdgeWorkAt,
	}
	var rbuf, gbuf []store.Edge
	for _, k := range []ids.Kind{ids.KindPerson, ids.KindForum, ids.KindPost, ids.KindComment} {
		rk, gk := rv.NodesOfKind(k), gv.NodesOfKind(k)
		if !reflect.DeepEqual(rk, gk) {
			t.Fatalf("kind %v node lists diverge (order matters)", k)
		}
		for _, id := range rk {
			rp, _ := rv.Props(id)
			gp, _ := gv.Props(id)
			if !reflect.DeepEqual(rp, gp) {
				t.Fatalf("node %v props diverge", id)
			}
			for _, et := range edgeTypes {
				rbuf = append(rbuf[:0], rv.Out(id, et)...)
				gbuf = append(gbuf[:0], gv.Out(id, et)...)
				if !reflect.DeepEqual(rbuf, gbuf) {
					t.Fatalf("node %v out-%v adjacency diverges", id, et)
				}
			}
		}
	}
}
