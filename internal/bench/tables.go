package bench

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"ldbcsnb/internal/bi"
	"ldbcsnb/internal/datagen"
	"ldbcsnb/internal/dict"
	"ldbcsnb/internal/driver"
	"ldbcsnb/internal/schema"
	"ldbcsnb/internal/workload"
	"ldbcsnb/internal/xrand"
)

// Table2 — top-10 person.firstNames for persons located in Germany vs
// China. The paper's Table 2 (SF10, ~60k persons) lists Karl..Wilhelm and
// Yang..Peng. Small environments hold only a handful of Germans, so the
// experiment draws names through the generator's exact name path
// (dict.FirstName over the same purpose streams generatePerson uses) for a
// fixed per-country cohort, giving the SF10-scale sample the paper had.
func Table2(env *Env) *Result {
	const cohort = 20000
	de, cn := dict.CountryByName("Germany"), dict.CountryByName("China")
	top := func(country int) []string {
		counts := map[string]int{}
		for i := 0; i < cohort; i++ {
			r := xrand.New(env.Cfg.Seed, xrand.PurposeFirstName, uint64(country)<<32|uint64(i))
			counts[dict.FirstName(r, country, dict.GenderMale)]++
		}
		type nc struct {
			n string
			c int
		}
		var all []nc
		for n, c := range counts {
			all = append(all, nc{n, c})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].c != all[j].c {
				return all[i].c > all[j].c
			}
			return all[i].n < all[j].n
		})
		var out []string
		for i := 0; i < 10 && i < len(all); i++ {
			out = append(out, fmt.Sprintf("%s (%d)", all[i].n, all[i].c))
		}
		return out
	}
	german, chinese := top(de), top(cn)
	res := &Result{
		ID:     "Table 2",
		Title:  "Top-10 male first names by person.location",
		Header: []string{"rank", "Germany", "China"},
		Notes:  "paper heads: Karl,Hans,Wolfgang,... / Yang,Chen,Wei,...; same typical names must dominate (20k-draw cohort per country)",
	}
	for i := 0; i < 10; i++ {
		g, c := "-", "-"
		if i < len(german) {
			g = german[i]
		}
		if i < len(chinese) {
			c = chinese[i]
		}
		res.Rows = append(res.Rows, []string{strconv.Itoa(i + 1), g, c})
	}
	return res
}

// Table3 — dataset statistics across scale factors. The paper reports
// SF30..SF1000; we generate scaled-down SFs and additionally print the
// per-person ratios, which are the scale-free quantities that must match.
func Table3(scales []int, seed uint64) *Result {
	res := &Result{
		ID:     "Table 3",
		Title:  "SNB dataset statistics at different scale factors (scaled down)",
		Header: []string{"persons", "nodes", "edges", "friendships", "messages", "forums", "msg/person", "frnd/person"},
		Notes:  "paper SF30: 79 friendship rows & 541 messages & 10 forums per person; ratios should be same order of magnitude and grow with scale",
	}
	for _, n := range scales {
		out := datagen.Generate(datagen.Config{Seed: seed, Persons: n, Workers: 2})
		c := out.Data.Counts()
		res.Rows = append(res.Rows, []string{
			strconv.Itoa(c.Persons),
			strconv.Itoa(c.Nodes()),
			strconv.Itoa(c.EdgesApprox()),
			strconv.Itoa(c.Friendships),
			strconv.Itoa(c.Messages()),
			strconv.Itoa(c.Forums),
			fmt.Sprintf("%.1f", float64(c.Messages())/float64(c.Persons)),
			fmt.Sprintf("%.1f", 2*float64(c.Friendships)/float64(c.Persons)),
		})
	}
	return res
}

// Table4 — the complex-query mix frequencies, as specified by the paper
// and as scaled to this environment's size (§4 "Scaling the workload").
func Table4(env *Env) *Result {
	res := &Result{
		ID:     "Table 4",
		Title:  "Frequency of complex read-only queries (updates per execution)",
		Header: []string{"query", "paper (SF10)", "scaled (this run)"},
		Notes:  "scaled frequency grows logarithmically with dataset size",
	}
	n := len(env.Full.Persons)
	for q := 1; q <= workload.NumComplexQueries; q++ {
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("Q%d", q),
			strconv.Itoa(workload.Table4Frequencies[q-1]),
			strconv.Itoa(workload.ScaledFrequency(q, n)),
		})
	}
	return res
}

// Table5 — driver throughput (ops/second) versus partition count with a
// sleeping dummy connector, for 1ms and 100µs transaction latencies.
func Table5(env *Env, partitions []int) *Result {
	res := &Result{
		ID:     "Table 5",
		Title:  "Driver op/second vs #partitions (sleep connector)",
		Header: append([]string{"sleep"}, intsToStrings(partitions)...),
		Notes:  "paper: near-linear scaling 1->12 partitions (997->11298 ops/s at 1ms, 9745->110837 at 100µs); on hosts whose sleep granularity is ~1ms the 100µs row degenerates to the 1ms row",
	}
	updates := env.Updates
	if len(updates) > 4000 {
		updates = updates[:4000]
	}
	for _, sleep := range []time.Duration{time.Millisecond, 100 * time.Microsecond} {
		row := []string{sleep.String()}
		for _, n := range partitions {
			conn := &driver.SleepConnector{Sleep: sleep}
			rep := driver.Run(driver.Config{Connector: conn, Streams: n, Mode: driver.ModeUnpaced},
				driver.Partition(updates, n))
			row = append(row, fmt.Sprintf("%.0f", rep.OpsPerSec))
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

func intsToStrings(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = strconv.Itoa(x)
	}
	return out
}

// RunInteractive executes the full mixed workload once and returns the
// report; Tables 6, 7 and 9 are different projections of it.
func RunInteractive(env *Env, perType int) *driver.MixedReport {
	updates := env.Updates
	if len(updates) > 20000 {
		updates = updates[:20000]
	}
	return driver.RunMixed(driver.MixedConfig{
		Store:          env.Store,
		Dataset:        env.Full,
		Updates:        updates,
		Streams:        2,
		ReadClients:    2,
		ComplexPerType: perType,
		Seed:           env.Cfg.Seed,
	})
}

// Table6 — mean runtime of the complex read-only queries.
func Table6(rep *driver.MixedReport) *Result {
	res := &Result{
		ID:     "Table 6",
		Title:  "Mean runtime of complex read-only queries (ms)",
		Header: []string{"query", "mean ms", "p99 ms", "count"},
		Notes:  "paper shape: Q9 and Q14/Q6 among the heaviest (2-3 hop scans), Q8/Q7 cheapest (own-message lookups)",
	}
	for q := 0; q < workload.NumComplexQueries; q++ {
		s := &rep.Complex[q]
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("Q%d", q+1),
			ms(float64(s.Mean()) / 1e6),
			ms(float64(s.Percentile(99)) / 1e6),
			strconv.Itoa(s.Count),
		})
	}
	return res
}

// Table7 — mean runtime of the simple read-only queries.
func Table7(rep *driver.MixedReport) *Result {
	res := &Result{
		ID:     "Table 7",
		Title:  "Mean runtime of simple read-only queries (ms)",
		Header: []string{"query", "mean ms", "count"},
		Notes:  "paper: all short reads are point lookups, orders of magnitude below complex reads",
	}
	for i := range rep.Short {
		s := &rep.Short[i]
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("S%d", i+1),
			ms(float64(s.Mean()) / 1e6),
			strconv.Itoa(s.Count),
		})
	}
	return res
}

// TableBI — mean runtime of the BI analyst lane's queries (the working-
// draft BI workload, run through bi.Registry on whichever path and worker
// fan-out the mixed config selected).
func TableBI(rep *driver.MixedReport) *Result {
	res := &Result{
		ID:     "Table BI",
		Title:  "Mean runtime of Business Intelligence queries (ms)",
		Header: []string{"query", "mean ms", "p99 ms", "count"},
		Notes:  "graph-wide scans, orders of magnitude above the Interactive reads; BI1-BI5 and BI8 are full fact-table scans, BI7 adds traversal",
	}
	for q := 0; q < bi.NumQueries; q++ {
		s := &rep.BI[q]
		res.Rows = append(res.Rows, []string{
			bi.Registry[q].Name,
			ms(float64(s.Mean()) / 1e6),
			ms(float64(s.Percentile(99)) / 1e6),
			strconv.Itoa(s.Count),
		})
	}
	return res
}

// Table8 — sizes of the largest tables and indexes after bulk load.
func Table8(env *Env) *Result {
	st := env.Store.ComputeStats()
	res := &Result{
		ID:     "Table 8",
		Title:  "Largest tables and indexes (approximate bytes)",
		Header: []string{"kind", "name", "rows", "bytes"},
		Notes:  "paper (Virtuoso SF300): post is the largest table, its creationDate-family index the largest index; the same ordering must hold",
	}
	for i, t := range st.Tables {
		if i >= 5 {
			break
		}
		res.Rows = append(res.Rows, []string{"table", t.Name, strconv.Itoa(t.Rows), strconv.FormatInt(t.Bytes, 10)})
	}
	for i, ix := range st.Indexes {
		if i >= 3 {
			break
		}
		res.Rows = append(res.Rows, []string{"index", ix.Name, strconv.Itoa(ix.Entries), strconv.FormatInt(ix.Bytes, 10)})
	}
	return res
}

// Table9 — mean runtime of the transactional updates.
func Table9(rep *driver.MixedReport) *Result {
	res := &Result{
		ID:     "Table 9",
		Title:  "Mean runtime of transactional updates (ms)",
		Header: []string{"update", "mean ms", "count"},
		Notes:  "paper: all updates are point insertions of O(log n); addPerson is the widest transaction",
	}
	for i := 0; i < schema.NumUpdateTypes; i++ {
		s := &rep.Update[i]
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("U%d (%s)", i+1, schema.UpdateType(i+1)),
			ms(float64(s.Mean()) / 1e6),
			strconv.Itoa(s.Count),
		})
	}
	return res
}
