package bench

import (
	"sync"
	"testing"

	"ldbcsnb/internal/datagen"
	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/workload"
)

// BenchmarkViewVsTxn* compare the two read paths of the store on every
// Interactive query: the MVCC transaction path (shard RLock + per-call MVCC
// filtering + fresh []Edge per hop) against the frozen snapshot-view path
// (lock-free CSR subslices + dense bitset visited sets). Since the Reader
// redesign both paths execute the *same* generic query implementation —
// these benchmarks measure exactly the read-path cost difference, not
// implementation drift. Run with -benchmem: the view path's adjacency
// iteration (Out2Hop) must report 0 allocs/op once the scratch is warm.
//
// `make bench` converts the output into BENCH_interactive.json via
// cmd/benchjson so the per-query ns/op and allocs/op trajectory is tracked
// across PRs.

// benchPerson picks a well-connected start person.
func benchPerson(tb testing.TB, env *Env) ids.ID {
	tb.Helper()
	var best ids.ID
	bestDeg := -1
	env.Store.View(func(tx *store.Txn) {
		for _, p := range tx.NodesOfKind(ids.KindPerson) {
			if d := tx.OutDegree(p, store.EdgeKnows); d > bestDeg {
				best, bestDeg = p, d
			}
		}
	})
	if bestDeg < 1 {
		tb.Skip("no connected person at this scale")
	}
	return best
}

// benchPartner picks a second connected person distinct from p (for the
// path queries Q13/Q14).
func benchPartner(b *testing.B, env *Env, p ids.ID) ids.ID {
	b.Helper()
	var partner ids.ID
	env.Store.View(func(tx *store.Txn) {
		for _, q := range tx.NodesOfKind(ids.KindPerson) {
			if q != p && tx.OutDegree(q, store.EdgeKnows) > 0 {
				partner = q
				break
			}
		}
	})
	if partner == 0 {
		b.Skip("no partner person at this scale")
	}
	return partner
}

// benchCommonName returns the most common first name in the environment.
func benchCommonName(env *Env) string {
	counts := map[string]int{}
	for i := range env.Full.Persons {
		counts[env.Full.Persons[i].FirstName]++
	}
	name, best := "", 0
	for n, c := range counts {
		if c > best {
			name, best = n, c
		}
	}
	return name
}

// benchTag returns a tag carried by some post (Q6's parameter).
func benchTag(b *testing.B, env *Env) ids.ID {
	b.Helper()
	var tag ids.ID
	env.Store.View(func(tx *store.Txn) {
		for _, m := range tx.NodesOfKind(ids.KindPost) {
			if tes := tx.Out(m, store.EdgeHasTag); len(tes) > 0 {
				tag = tes[0].To
				return
			}
		}
	})
	if tag == 0 {
		b.Skip("no tagged posts at this scale")
	}
	return tag
}

// benchPaths runs one query body on both read paths as "txn" and "view"
// sub-benchmarks. The bodies receive the concrete reader type, so the view
// side measures the view instantiation of the generic query, not an
// interface-dispatched call.
func benchPaths(b *testing.B, env *Env,
	txn func(tx *store.Txn, sc *workload.Scratch),
	view func(v *store.SnapshotView, sc *workload.Scratch)) {
	b.Helper()
	b.Run("txn", func(b *testing.B) {
		tx := env.Store.Begin()
		sc := workload.NewScratch()
		txn(tx, sc) // warm the scratch buffers
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			txn(tx, sc)
		}
	})
	b.Run("view", func(b *testing.B) {
		v := env.Store.CurrentView()
		sc := workload.NewScratch()
		view(v, sc)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			view(v, sc)
		}
	})
}

// BenchmarkViewVsTxnOut2Hop measures the raw Out-heavy 2-hop knows
// expansion — the navigation kernel under Q1/Q9/Q13/Q14. This is the
// benchmark whose view side must stay at 0 allocs/op.
func BenchmarkViewVsTxnOut2Hop(b *testing.B) {
	env := testEnv(b)
	p := benchPerson(b, env)
	benchPaths(b, env,
		func(tx *store.Txn, sc *workload.Scratch) { workload.TwoHopEnv(tx, sc, p) },
		func(v *store.SnapshotView, sc *workload.Scratch) { workload.TwoHopEnv(v, sc, p) })
}

func BenchmarkViewVsTxnQ1(b *testing.B) {
	env := testEnv(b)
	p := benchPerson(b, env)
	name := benchCommonName(env)
	benchPaths(b, env,
		func(tx *store.Txn, sc *workload.Scratch) { workload.Q1(tx, sc, p, name) },
		func(v *store.SnapshotView, sc *workload.Scratch) { workload.Q1(v, sc, p, name) })
}

// BenchmarkViewVsTxnQ2 measures Q2 (friends' newest 20 messages): 1-hop
// expansion plus a bounded top-20 cut.
func BenchmarkViewVsTxnQ2(b *testing.B) {
	env := testEnv(b)
	p := benchPerson(b, env)
	maxDate := int64(1) << 62
	benchPaths(b, env,
		func(tx *store.Txn, sc *workload.Scratch) { workload.Q2(tx, sc, p, maxDate) },
		func(v *store.SnapshotView, sc *workload.Scratch) { workload.Q2(v, sc, p, maxDate) })
}

func BenchmarkViewVsTxnQ3(b *testing.B) {
	env := testEnv(b)
	p := benchPerson(b, env)
	span := datagen.SimEnd - datagen.SimStart
	benchPaths(b, env,
		func(tx *store.Txn, sc *workload.Scratch) { workload.Q3(tx, sc, p, 0, 1, datagen.SimStart, span) },
		func(v *store.SnapshotView, sc *workload.Scratch) { workload.Q3(v, sc, p, 0, 1, datagen.SimStart, span) })
}

func BenchmarkViewVsTxnQ4(b *testing.B) {
	env := testEnv(b)
	p := benchPerson(b, env)
	mid := datagen.SimStart + (datagen.SimEnd-datagen.SimStart)/2
	const window = int64(90 * 24 * 3600 * 1000)
	benchPaths(b, env,
		func(tx *store.Txn, sc *workload.Scratch) { workload.Q4(tx, sc, p, mid, window) },
		func(v *store.SnapshotView, sc *workload.Scratch) { workload.Q4(v, sc, p, mid, window) })
}

func BenchmarkViewVsTxnQ5(b *testing.B) {
	env := testEnv(b)
	p := benchPerson(b, env)
	benchPaths(b, env,
		func(tx *store.Txn, sc *workload.Scratch) { workload.Q5(tx, sc, p, datagen.SimStart) },
		func(v *store.SnapshotView, sc *workload.Scratch) { workload.Q5(v, sc, p, datagen.SimStart) })
}

func BenchmarkViewVsTxnQ6(b *testing.B) {
	env := testEnv(b)
	p := benchPerson(b, env)
	tag := benchTag(b, env)
	benchPaths(b, env,
		func(tx *store.Txn, sc *workload.Scratch) { workload.Q6(tx, sc, p, tag) },
		func(v *store.SnapshotView, sc *workload.Scratch) { workload.Q6(v, sc, p, tag) })
}

func BenchmarkViewVsTxnQ7(b *testing.B) {
	env := testEnv(b)
	p := benchPerson(b, env)
	benchPaths(b, env,
		func(tx *store.Txn, sc *workload.Scratch) { workload.Q7(tx, sc, p) },
		func(v *store.SnapshotView, sc *workload.Scratch) { workload.Q7(v, sc, p) })
}

func BenchmarkViewVsTxnQ8(b *testing.B) {
	env := testEnv(b)
	p := benchPerson(b, env)
	benchPaths(b, env,
		func(tx *store.Txn, sc *workload.Scratch) { workload.Q8(tx, sc, p) },
		func(v *store.SnapshotView, sc *workload.Scratch) { workload.Q8(v, sc, p) })
}

// BenchmarkViewVsTxnQ9 measures the paper's choke-point query (2-hop
// environment, newest 20 messages).
func BenchmarkViewVsTxnQ9(b *testing.B) {
	env := testEnv(b)
	p := benchPerson(b, env)
	maxDate := int64(1) << 62
	benchPaths(b, env,
		func(tx *store.Txn, sc *workload.Scratch) { workload.Q9(tx, sc, p, maxDate) },
		func(v *store.SnapshotView, sc *workload.Scratch) { workload.Q9(v, sc, p, maxDate) })
}

func BenchmarkViewVsTxnQ10(b *testing.B) {
	env := testEnv(b)
	p := benchPerson(b, env)
	benchPaths(b, env,
		func(tx *store.Txn, sc *workload.Scratch) { workload.Q10(tx, sc, p, 3) },
		func(v *store.SnapshotView, sc *workload.Scratch) { workload.Q10(v, sc, p, 3) })
}

func BenchmarkViewVsTxnQ11(b *testing.B) {
	env := testEnv(b)
	p := benchPerson(b, env)
	benchPaths(b, env,
		func(tx *store.Txn, sc *workload.Scratch) { workload.Q11(tx, sc, p, 0, 2013) },
		func(v *store.SnapshotView, sc *workload.Scratch) { workload.Q11(v, sc, p, 0, 2013) })
}

func BenchmarkViewVsTxnQ12(b *testing.B) {
	env := testEnv(b)
	p := benchPerson(b, env)
	root := ids.DimensionID(ids.KindTagClass, 0)
	benchPaths(b, env,
		func(tx *store.Txn, sc *workload.Scratch) { workload.Q12(tx, sc, p, root) },
		func(v *store.SnapshotView, sc *workload.Scratch) { workload.Q12(v, sc, p, root) })
}

func BenchmarkViewVsTxnQ13(b *testing.B) {
	env := testEnv(b)
	p := benchPerson(b, env)
	other := benchPartner(b, env, p)
	benchPaths(b, env,
		func(tx *store.Txn, sc *workload.Scratch) { workload.Q13(tx, sc, p, other) },
		func(v *store.SnapshotView, sc *workload.Scratch) { workload.Q13(v, sc, p, other) })
}

func BenchmarkViewVsTxnQ14(b *testing.B) {
	env := testEnv(b)
	p := benchPerson(b, env)
	other := benchPartner(b, env, p)
	benchPaths(b, env,
		func(tx *store.Txn, sc *workload.Scratch) { workload.Q14(tx, sc, p, other) },
		func(v *store.SnapshotView, sc *workload.Scratch) { workload.Q14(v, sc, p, other) })
}

// BenchmarkViewVsTxnShortWalk measures the short-read family S1-S3 on one
// profile — the "bulk of the user queries" point lookups.
func BenchmarkViewVsTxnShortWalk(b *testing.B) {
	env := testEnv(b)
	p := benchPerson(b, env)
	benchPaths(b, env,
		func(tx *store.Txn, sc *workload.Scratch) {
			workload.S1(tx, p)
			workload.S2(tx, p)
			workload.S3(tx, p)
		},
		func(v *store.SnapshotView, sc *workload.Scratch) {
			workload.S1(v, p)
			workload.S2(v, p)
			workload.S3(v, p)
		})
}

// BenchmarkViewRebuild measures the cost the view path pays for a full
// recompaction: one from-scratch CSR compaction of the bench environment.
// With delta maintenance this is no longer the per-commit tax — it is the
// era-bump cost BenchmarkViewRefresh amortises away.
func BenchmarkViewRebuild(b *testing.B) {
	env := testEnv(b)
	ts := env.Store.LastCommit()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env.Store.ViewAt(ts)
	}
}

// refreshEnv is a private environment for the view-maintenance benchmarks:
// they commit during measurement, which must not perturb the shared env
// the query benchmarks read.
var (
	refreshEnvOnce sync.Once
	refreshEnvVal  *Env
	refreshEnvErr  error
	refreshSeq     int64
)

func refreshBenchEnv(tb testing.TB) *Env {
	tb.Helper()
	refreshEnvOnce.Do(func() {
		refreshEnvVal, refreshEnvErr = NewEnv(250, 7)
	})
	if refreshEnvErr != nil {
		tb.Fatal(refreshEnvErr)
	}
	return refreshEnvVal
}

// refreshCommit lands one sparse update transaction: a new person plus a
// knows edge onto an existing person — the delta shape of the Interactive
// mix's U1/U8 updates.
func refreshCommit(tb testing.TB, env *Env, anchor ids.ID) {
	tb.Helper()
	refreshSeq++
	tx := env.Store.Begin()
	p := ids.Compose(ids.KindPerson, 1<<39+refreshSeq, 0)
	if err := tx.CreateNode(p, store.Props{{Key: store.PropFirstName, Val: store.String("x")}}); err != nil {
		tb.Fatal(err)
	}
	if err := tx.AddKnows(p, anchor, refreshSeq); err != nil {
		tb.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		tb.Fatal(err)
	}
}

// BenchmarkViewRefresh measures advancing the cached view after commits —
// the cost the first reader after an update pays on the incremental
// maintenance path, where BenchmarkViewRebuild is what it paid before.
//
//   - 1commit / 16commits: CurrentView applies the pending delta(s)
//     copy-on-write. The mean includes the periodic compactions the
//     threshold forces (the amortised steady state), so it is an upper
//     bound on the pure refresh cost.
//   - overflow: the delta ring is too small for the burst, so CurrentView
//     must recompact — the degenerate case, equal to a full rebuild (of
//     the refresh env as grown by the earlier sub-benchmarks' commits, so
//     compare against BenchmarkViewRebuild only by order of magnitude).
func BenchmarkViewRefresh(b *testing.B) {
	run := func(commits int) func(b *testing.B) {
		return func(b *testing.B) {
			env := refreshBenchEnv(b)
			anchor := benchPerson(b, env)
			env.Store.CurrentView() // establish the chain root
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for c := 0; c < commits; c++ {
					refreshCommit(b, env, anchor)
				}
				b.StartTimer()
				env.Store.CurrentView()
			}
		}
	}
	b.Run("1commit", run(1))
	b.Run("16commits", run(16))
	b.Run("overflow", func(b *testing.B) {
		env := refreshBenchEnv(b)
		anchor := benchPerson(b, env)
		env.Store.SetViewDeltaCap(1)
		defer env.Store.SetViewDeltaCap(1024)
		env.Store.CurrentView()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			refreshCommit(b, env, anchor)
			refreshCommit(b, env, anchor) // second commit overflows the 1-slot ring
			b.StartTimer()
			env.Store.CurrentView()
		}
	})
}

// TestViewAdjacencyZeroAlloc pins the acceptance bar that `make bench`
// reports informally: the generic 2-hop adjacency iteration, instantiated
// with the frozen view, must not allocate once the scratch is warm — on a
// freshly compacted view AND on a delta-refreshed view whose hot rows live
// in the copy-on-write overlay.
func TestViewAdjacencyZeroAlloc(t *testing.T) {
	env := testEnv(t)
	var p ids.ID
	bestDeg := -1
	env.Store.View(func(tx *store.Txn) {
		for _, q := range tx.NodesOfKind(ids.KindPerson) {
			if d := tx.OutDegree(q, store.EdgeKnows); d > bestDeg {
				p, bestDeg = q, d
			}
		}
	})
	if bestDeg < 1 {
		t.Skip("no connected person at this scale")
	}
	v := env.Store.CurrentView()
	sc := workload.NewScratch()
	workload.TwoHopEnv(v, sc, p) // warm
	allocs := testing.AllocsPerRun(50, func() {
		workload.TwoHopEnv(v, sc, p)
	})
	if allocs != 0 {
		t.Fatalf("view 2-hop expansion allocates %.1f times per run, want 0", allocs)
	}

	// The refreshed-view half mutates its store, so it runs on the private
	// refresh env — the shared env above must stay pristine for the other
	// tests and query benchmarks.
	renv := refreshBenchEnv(t)
	rp := benchPerson(t, renv)
	rsc := workload.NewScratch()
	rv0 := renv.Store.CurrentView()
	// Commit a sparse update touching rp's own adjacency row, so the
	// refreshed view serves rp's knows list from the overlay.
	refreshCommit(t, renv, rp)
	rv, ev := renv.Store.AcquireView()
	if ev != store.ViewRefreshed {
		t.Fatalf("post-commit acquisition: %v, want refresh", ev)
	}
	if rv.Era() != rv0.Era() {
		t.Fatal("refresh bumped the era")
	}
	workload.TwoHopEnv(rv, rsc, rp) // warm
	allocs = testing.AllocsPerRun(50, func() {
		workload.TwoHopEnv(rv, rsc, rp)
	})
	if allocs != 0 {
		t.Fatalf("refreshed-view 2-hop expansion allocates %.1f times per run, want 0", allocs)
	}
}
