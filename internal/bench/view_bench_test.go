package bench

import (
	"testing"

	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/workload"
)

// BenchmarkViewVsTxn* compare the two read paths of the store on the
// Interactive hot operations: the MVCC transaction path (shard RLock +
// per-call MVCC filtering + fresh []Edge per hop) against the frozen
// snapshot-view path (lock-free CSR subslices + dense bitset visited sets).
// Run with -benchmem: the view path's adjacency iteration must report
// 0 allocs/op once the scratch buffers are warm.

// benchPerson picks a well-connected start person.
func benchPerson(b *testing.B, env *Env) ids.ID {
	b.Helper()
	var best ids.ID
	bestDeg := -1
	env.Store.View(func(tx *store.Txn) {
		for _, p := range tx.NodesOfKind(ids.KindPerson) {
			if d := tx.OutDegree(p, store.EdgeKnows); d > bestDeg {
				best, bestDeg = p, d
			}
		}
	})
	if bestDeg < 1 {
		b.Skip("no connected person at this scale")
	}
	return best
}

// BenchmarkViewVsTxnOut2Hop measures the raw Out-heavy 2-hop knows
// expansion — the navigation kernel under Q1/Q9/Q13/Q14.
func BenchmarkViewVsTxnOut2Hop(b *testing.B) {
	env := testEnv(b)
	p := benchPerson(b, env)

	b.Run("txn", func(b *testing.B) {
		tx := env.Store.Begin()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			seen := map[ids.ID]bool{p: true}
			n := 0
			for _, e := range tx.Out(p, store.EdgeKnows) {
				if !seen[e.To] {
					seen[e.To] = true
					for _, e2 := range tx.Out(e.To, store.EdgeKnows) {
						if !seen[e2.To] {
							seen[e2.To] = true
							n++
						}
					}
				}
			}
		}
	})
	b.Run("view", func(b *testing.B) {
		v := env.Store.CurrentView()
		sc := workload.NewScratch()
		// Warm the scratch buffers to the working-set size, then measure.
		workload.TwoHopEnvView(v, sc, p)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			workload.TwoHopEnvView(v, sc, p)
		}
	})
}

// BenchmarkViewVsTxnQ2 measures Q2 (friends' newest 20 messages): 1-hop
// expansion plus a LIMIT-20 cut — sort-truncate on the txn path, bounded
// top-k heap on the view path.
func BenchmarkViewVsTxnQ2(b *testing.B) {
	env := testEnv(b)
	p := benchPerson(b, env)
	maxDate := int64(1) << 62

	b.Run("txn", func(b *testing.B) {
		tx := env.Store.Begin()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			workload.Q2(tx, p, maxDate)
		}
	})
	b.Run("view", func(b *testing.B) {
		v := env.Store.CurrentView()
		sc := workload.NewScratch()
		workload.Q2View(v, sc, p, maxDate)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			workload.Q2View(v, sc, p, maxDate)
		}
	})
}

// BenchmarkViewVsTxnQ9 measures the paper's choke-point query (2-hop
// environment, newest 20 messages).
func BenchmarkViewVsTxnQ9(b *testing.B) {
	env := testEnv(b)
	p := benchPerson(b, env)
	maxDate := int64(1) << 62

	b.Run("txn", func(b *testing.B) {
		tx := env.Store.Begin()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			workload.Q9(tx, p, maxDate)
		}
	})
	b.Run("view", func(b *testing.B) {
		v := env.Store.CurrentView()
		sc := workload.NewScratch()
		workload.Q9View(v, sc, p, maxDate)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			workload.Q9View(v, sc, p, maxDate)
		}
	})
}

// BenchmarkViewVsTxnShortWalk measures the short-read family S1-S3 on one
// profile — the "bulk of the user queries" point lookups.
func BenchmarkViewVsTxnShortWalk(b *testing.B) {
	env := testEnv(b)
	p := benchPerson(b, env)

	b.Run("txn", func(b *testing.B) {
		tx := env.Store.Begin()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			workload.S1(tx, p)
			workload.S2(tx, p)
			workload.S3(tx, p)
		}
	})
	b.Run("view", func(b *testing.B) {
		v := env.Store.CurrentView()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			workload.S1View(v, p)
			workload.S2View(v, p)
			workload.S3View(v, p)
		}
	})
}

// BenchmarkViewRebuild measures the cost a commit imposes on the next
// reader: one full CSR compaction of the bench environment.
func BenchmarkViewRebuild(b *testing.B) {
	env := testEnv(b)
	ts := env.Store.LastCommit()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env.Store.ViewAt(ts)
	}
}
