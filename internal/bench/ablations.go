package bench

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"ldbcsnb/internal/datagen"
	"ldbcsnb/internal/driver"
	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/params"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/workload"
	"ldbcsnb/internal/xrand"
)

// Ablation experiments for the design choices DESIGN.md §4 calls out
// (beyond the Figure 4 join ablation).

// AblationWindowed — sequential/windowed vs per-dependent synchronisation:
// replay the same update stream in parallel mode (every dependent waits on
// its exact T_DEP) and in windowed mode (one wait target per T_SAFE
// window), comparing wall time and throughput. §4.2: windowing reduces
// "communication overhead" between driver threads.
func AblationWindowed(env *Env, partitions int) *Result {
	updates := env.Updates
	if len(updates) > 6000 {
		updates = updates[:6000]
	}
	res := &Result{
		ID:     "Ablation W",
		Title:  "Parallel vs windowed execution (same stream, sleep connector)",
		Header: []string{"mode", "ops/s", "wall ms"},
		Notes:  "windowed mode must not be slower; with coarse sleep connectors the difference is small, it grows with synchronisation cost",
	}
	for _, mode := range []struct {
		name string
		m    driver.Mode
	}{{"parallel", driver.ModeUnpaced}, {"windowed", driver.ModeWindowed}} {
		conn := &driver.SleepConnector{Sleep: 200 * time.Microsecond}
		rep := driver.Run(driver.Config{Connector: conn, Streams: partitions, Mode: mode.m},
			driver.Partition(updates, partitions))
		res.Rows = append(res.Rows, []string{
			mode.name,
			fmt.Sprintf("%.0f", rep.OpsPerSec),
			strconv.FormatInt(rep.Wall.Milliseconds(), 10),
		})
	}
	return res
}

// AblationTimeOrderedIDs — the §2.4/§3 claim that time-ordered message
// identifiers give date-filtered scans locality and remove sorts: compare
// "newest 20 messages of a person before a date" using the stamp-ordered
// adjacency walk (what time-ordered IDs enable) against re-sorting after
// property lookups (what unordered IDs force).
func AblationTimeOrderedIDs(env *Env, reps int) *Result {
	if reps <= 0 {
		reps = 20
	}
	persons := env.Bulk.Persons
	n := len(persons)
	if n > 50 {
		n = 50
	}
	maxDate := datagen.UpdateCut

	res := &Result{
		ID:     "Ablation T",
		Title:  "Time-ordered IDs: stamp-sorted adjacency vs property re-sort (mean µs)",
		Header: []string{"strategy", "mean µs", "vs ordered"},
		Notes:  "IDs and hasCreator stamps encode creation order, so the ordered strategy avoids per-message property lookups and the final sort",
	}

	// Ordered strategy: edges carry creation stamps; sort edge slice only.
	var ordered, resorted time.Duration
	env.Store.View(func(tx *store.Txn) {
		t0 := time.Now()
		for r := 0; r < reps; r++ {
			for i := 0; i < n; i++ {
				msgs := tx.In(persons[i].ID, store.EdgeHasCreator)
				rows := make([]store.Edge, 0, len(msgs))
				for _, m := range msgs {
					if m.Stamp <= maxDate {
						rows = append(rows, m)
					}
				}
				sort.Slice(rows, func(a, b int) bool { return rows[a].Stamp > rows[b].Stamp })
				if len(rows) > 20 {
					rows = rows[:20]
				}
			}
		}
		ordered = time.Since(t0)

		// Unordered strategy: ignore stamps, fetch each message's
		// creationDate property (a second index round-trip per message),
		// then sort.
		t0 = time.Now()
		for r := 0; r < reps; r++ {
			for i := 0; i < n; i++ {
				msgs := tx.In(persons[i].ID, store.EdgeHasCreator)
				type row struct {
					id ids.ID
					d  int64
				}
				rows := make([]row, 0, len(msgs))
				for _, m := range msgs {
					d := tx.Prop(m.To, store.PropCreationDate).Int()
					if d <= maxDate {
						rows = append(rows, row{m.To, d})
					}
				}
				sort.Slice(rows, func(a, b int) bool { return rows[a].d > rows[b].d })
				if len(rows) > 20 {
					rows = rows[:20]
				}
			}
		}
		resorted = time.Since(t0)
	})
	per := float64(reps * n)
	o := float64(ordered.Microseconds()) / per
	s := float64(resorted.Microseconds()) / per
	res.Rows = append(res.Rows, []string{"stamp-ordered adjacency", fmt.Sprintf("%.1f", o), "1.00x"})
	res.Rows = append(res.Rows, []string{"property re-sort", fmt.Sprintf("%.1f", s), fmt.Sprintf("%.2fx", s/o)})
	return res
}

// AblationCuratedMix — end-to-end effect of parameter curation on the
// benchmark score stability: run the Q5 slice of the mix twice with
// different random streams, under uniform vs curated parameters, and
// report the run-to-run mean drift (§4.1: uniform sampling gives
// "non-repeatable benchmark results").
func AblationCuratedMix(env *Env, k int) *Result {
	if k <= 0 {
		k = 15
	}
	res := &Result{
		ID:     "Ablation C",
		Title:  "Run-to-run Q5 mean drift: uniform vs curated parameters",
		Header: []string{"selection", "run1 mean ms", "run2 mean ms", "drift"},
		Notes:  "uniform parameter samples give different scores per run; curated samples repeat",
	}
	runMean := func(sel []uint64) float64 {
		var total time.Duration
		sc := workload.NewScratch()
		env.Store.View(func(tx *store.Txn) {
			for _, p := range sel {
				// Best-of-three per binding to suppress scheduler noise on
				// shared hosts (see Figure5b).
				best := time.Duration(1 << 62)
				for rep := 0; rep < 3; rep++ {
					t0 := time.Now()
					workload.Q5(tx, sc, ids.ID(p), datagen.SimStart)
					if d := time.Since(t0); d < best {
						best = d
					}
				}
				total += best
			}
		})
		return float64(total.Microseconds()) / 1000 / float64(len(sel))
	}
	tab := params.BuildQ5Table(env.Full)
	r1 := xrand.New(1001)
	r2 := xrand.New(2002)
	u1 := runMean(tab.UniformSample(k, r1.Uint64))
	u2 := runMean(tab.UniformSample(k, r2.Uint64))
	c1 := runMean(tab.Curate(k))
	c2 := runMean(tab.Curate(k))
	drift := func(a, b float64) string {
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo == 0 {
			return "inf"
		}
		return fmt.Sprintf("%.2fx", hi/lo)
	}
	res.Rows = append(res.Rows, []string{"uniform", ms(u1), ms(u2), drift(u1, u2)})
	res.Rows = append(res.Rows, []string{"curated", ms(c1), ms(c2), drift(c1, c2)})
	return res
}
