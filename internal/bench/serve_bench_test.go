package bench

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"ldbcsnb/internal/driver"
	"ldbcsnb/internal/schema"
	"ldbcsnb/internal/server"
	"ldbcsnb/internal/server/client"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/workload"
)

// BenchmarkServe measures the serving layer end to end: an in-process
// server on a loopback port, an open-loop Poisson client issuing the
// default class mix, b.N total arrivals. The steady variant runs well
// inside capacity with the default gates; the overload variant doubles
// the arrival rate against deliberately small interactive gates, so the
// admission queue and shedder are on the serve path. Reported metrics
// are client-observed complex-read percentiles (µs) plus the outcome
// counts across all classes; on a single-core host CPU-bound handlers
// serialize in the scheduler, so overload sheds are understated there
// (the deterministic shed contract is pinned by internal/server's wire
// tests, not here). `make bench-serve` converts the output into
// BENCH_serve.json.

// The serve benchmarks share one generated dataset but load a fresh
// store per run: Shutdown marks the served store closed.
var (
	serveOnce  sync.Once
	serveEnv   *Env
	servePools *workload.ParamPools
)

func serveFixture(b *testing.B) (*Env, *workload.ParamPools) {
	b.Helper()
	serveOnce.Do(func() {
		serveEnv = NewEnvData(200, 11)
		servePools = driver.PreparePools(serveEnv.Full, 11, false)
	})
	return serveEnv, servePools
}

func benchServe(b *testing.B, rate float64, deadlineMs uint32, retries int, faults client.FaultConfig, mut func(*server.Config)) {
	env, pools := serveFixture(b)
	st := store.New()
	schema.RegisterIndexes(st)
	if err := schema.LoadDimensions(st); err != nil {
		b.Fatal(err)
	}
	if err := schema.LoadParallel(st, env.Bulk, 4); err != nil {
		b.Fatal(err)
	}
	cfg := server.Config{Store: st, Pools: pools, Seed: 11}
	if mut != nil {
		mut(&cfg)
	}
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			b.Fatal(err)
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}()

	// b.N counts arrivals: the issuing window is sized so the Poisson
	// schedule emits ~N requests at the target rate.
	duration := time.Duration(float64(b.N) / rate * float64(time.Second))
	b.ResetTimer()
	rep, err := client.RunOpenLoop(client.LoadConfig{
		Client:     client.Options{Addr: ln.Addr().String(), RetryMax: retries, Seed: 11, Faults: faults},
		Rate:       rate,
		Duration:   duration,
		DeadlineMs: deadlineMs,
		Seed:       11,
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}

	var ok, shed, timeouts, failed int64
	for i := range rep.Classes {
		cs := &rep.Classes[i]
		ok += cs.OK
		shed += cs.Shed
		timeouts += cs.Timeout
		failed += cs.Failed + cs.Errors
	}
	if ok == 0 {
		b.Fatal("no request completed OK")
	}
	if failed > 0 {
		b.Fatalf("%d requests failed on a fault-free loopback", failed)
	}
	cx := &rep.Classes[0] // complex reads: the interactive latency contract
	b.ReportMetric(float64(cx.Latency.Percentile(50).Microseconds()), "p50-us")
	b.ReportMetric(float64(cx.Latency.Percentile(99).Microseconds()), "p99-us")
	b.ReportMetric(float64(cx.Latency.Percentile(99.9).Microseconds()), "p999-us")
	b.ReportMetric(rep.Rate, "req/s")
	b.ReportMetric(float64(ok), "ok")
	b.ReportMetric(float64(shed), "shed")
	b.ReportMetric(float64(timeouts), "timeouts")
	b.ReportMetric(float64(rep.Dropped), "dropped")
	b.ReportMetric(float64(rep.Client.Retries), "retries")
}

func BenchmarkServe(b *testing.B) {
	b.Run("load=steady", func(b *testing.B) {
		benchServe(b, 300, 1000, 3, client.FaultConfig{}, nil)
	})
	b.Run("load=overload", func(b *testing.B) {
		benchServe(b, 1200, 100, 1, client.FaultConfig{}, func(cfg *server.Config) {
			cfg.Interactive = server.GateConfig{Slots: 2, Queue: 4, QueueTick: 20 * time.Millisecond}
			cfg.BI = server.GateConfig{Slots: 1, Queue: 1, QueueTick: 20 * time.Millisecond}
			cfg.Write = server.GateConfig{Slots: 1, Queue: 2, QueueTick: 20 * time.Millisecond}
		})
	})
	// Fault tolerance at speed: every 31st frame is dropped mid-write and
	// every 47th replaced with garbage; retries must absorb both without a
	// single failed request.
	b.Run("load=faulty", func(b *testing.B) {
		benchServe(b, 300, 1000, 4, client.FaultConfig{DropEvery: 31, GarbageEvery: 47}, nil)
	})
}
