package bench

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"

	"ldbcsnb/internal/driver"
	"ldbcsnb/internal/schema"
	"ldbcsnb/internal/store"
)

// BenchmarkRecovery measures what the checkpoint subsystem buys at restart
// time: recovering the 250-person environment (bulk load plus ~95% of the
// update stream folded into a checkpoint, the last ~5% left as the WAL
// tail) via checkpoint + tail replay, against full WAL replay of the same
// history from the first commit. `make bench-recovery` converts the output
// into BENCH_recovery.json; the acceptance bar is checkpoint + tail >= 3x
// faster than full replay at this scale (the decode-then-apply recovery
// rewrite sped up full replay itself ~2x, narrowing the ratio while
// making both paths faster).
//
// The two directories are built once per process: a single durable run
// with KeepSegments (truncation disabled, so the full log survives the
// checkpoint), then a copy with the checkpoint files stripped — recovery
// on the copy has nothing to load and must replay every record.

const recoveryPersons = 250

var recoveryDirs struct {
	once             sync.Once
	ckptDir, fullDir string
	tailFrac         float64
	err              error
}

func setupRecoveryDirs(b *testing.B) (ckptDir, fullDir string) {
	b.Helper()
	recoveryDirs.once.Do(func() {
		base, err := os.MkdirTemp("", "ldbcsnb-recovery-")
		if err != nil {
			recoveryDirs.err = err
			return
		}
		ckptDir = filepath.Join(base, "ckpt")
		opts := store.PersistOptions{CheckpointBytes: -1, KeepSegments: true}
		p, _, err := store.Open(ckptDir, opts, schema.RegisterIndexes)
		if err != nil {
			recoveryDirs.err = err
			return
		}
		env := NewEnvData(recoveryPersons, 42)
		if err := env.LoadInto(p.Store); err != nil {
			recoveryDirs.err = err
			return
		}
		conn := &driver.StoreConnector{Store: p.Store}
		// The crash lands 2% of the history after the last checkpoint —
		// the steady state of a checkpointer triggered every few hundred
		// commits (or few MiB of WAL), which is what bounded recovery is
		// for. The ratio degrades linearly as the tail grows; at a 100%
		// tail the two paths coincide by construction.
		cut := len(env.Updates) * 98 / 100
		for i := 0; i < cut; i++ {
			if err := conn.Execute(&env.Updates[i]); err != nil {
				recoveryDirs.err = err
				return
			}
		}
		if err := p.Checkpoint(); err != nil {
			recoveryDirs.err = err
			return
		}
		for i := cut; i < len(env.Updates); i++ {
			if err := conn.Execute(&env.Updates[i]); err != nil {
				recoveryDirs.err = err
				return
			}
		}
		clock := p.LastCommit()
		if err := p.Close(); err != nil {
			recoveryDirs.err = err
			return
		}
		recoveryDirs.tailFrac = float64(clock-p.CheckpointTS()) / float64(clock)

		// The full-replay twin: same WAL, no checkpoints.
		fullDir = filepath.Join(base, "full")
		if err := copyTreeSkip(ckptDir, fullDir, func(name string) bool {
			return strings.HasSuffix(name, ".ckpt")
		}); err != nil {
			recoveryDirs.err = err
			return
		}
		recoveryDirs.ckptDir, recoveryDirs.fullDir = ckptDir, fullDir
	})
	if recoveryDirs.err != nil {
		b.Fatal(recoveryDirs.err)
	}
	return recoveryDirs.ckptDir, recoveryDirs.fullDir
}

func copyTreeSkip(src, dst string, skip func(string) bool) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if skip(e.Name()) {
			continue
		}
		s, d := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			if err := copyTreeSkip(s, d, skip); err != nil {
				return err
			}
			continue
		}
		data, err := os.ReadFile(s)
		if err != nil {
			return err
		}
		if err := os.WriteFile(d, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func benchRecover(b *testing.B, dir string, wantCheckpoint bool, workers int) {
	b.Helper()
	var clock int64
	for i := 0; i < b.N; i++ {
		// A real recovery starts in a fresh process; collect the previous
		// iteration's store outside the timed region so one iteration's
		// garbage doesn't bill the next one's GC cycles.
		b.StopTimer()
		runtime.GC()
		b.StartTimer()
		p, info, err := store.Open(dir,
			store.PersistOptions{CheckpointBytes: -1, RecoveryWorkers: workers}, schema.RegisterIndexes)
		if err != nil {
			b.Fatal(err)
		}
		if wantCheckpoint && info.CheckpointTS == 0 {
			b.Fatalf("checkpoint not used: %+v", info)
		}
		if !wantCheckpoint && info.CheckpointTS != 0 {
			b.Fatalf("full replay benchmark loaded a checkpoint: %+v", info)
		}
		if clock == 0 {
			clock = info.Clock
		} else if info.Clock != clock {
			b.Fatalf("recovery not deterministic: clock %d then %d", clock, info.Clock)
		}
		if err := p.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(clock), "commits")
}

func BenchmarkRecovery(b *testing.B) {
	ckptDir, fullDir := setupRecoveryDirs(b)
	// Serial decode (RecoveryWorkers 1) keeps the sub-bench comparable with
	// the numbers recorded before parallel recovery existed; the -par twin
	// runs the same directory with GOMAXPROCS decode workers.
	b.Run("checkpoint+tail", func(b *testing.B) {
		benchRecover(b, ckptDir, true, 1)
	})
	b.Run("checkpoint+tail-par", func(b *testing.B) {
		benchRecover(b, ckptDir, true, 0)
	})
	b.Run("fullreplay", func(b *testing.B) {
		benchRecover(b, fullDir, false, 1)
	})
}
