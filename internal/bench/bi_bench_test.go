package bench

import (
	"fmt"
	"testing"

	"ldbcsnb/internal/bi"
	"ldbcsnb/internal/datagen"
	"ldbcsnb/internal/exec"
	"ldbcsnb/internal/workload"
)

// BenchmarkBISerialVsParallel measures every BI query on its three
// execution paths: the MVCC transaction scan ("txn"), the serial frozen-
// view scan ("view") and the morsel-parallel view path at 2 and 4 workers
// ("par2", "par4"). All paths run the same kernels through bi.Registry, so
// the sub-benchmark ratios isolate (a) the read-path cost difference —
// view must beat txn on every query, there are no locks and no MVCC
// filtering on the frozen CSR — and (b) the morsel-scheduling speedup,
// which tracks the host's core count (parXs on fewer than X cores measure
// scheduling overhead, not speedup).
//
// `make bench-bi` converts the output into BENCH_bi.json via cmd/benchjson
// so the BI perf trajectory is tracked across PRs.
func BenchmarkBISerialVsParallel(b *testing.B) {
	env := testEnv(b)
	win := int64(120 * 24 * 3600 * 1000)
	// The same bindings bi.Registry draws for the mixed run, pinned to
	// this environment's simulation range.
	params := [bi.NumQueries]bi.Params{
		1: {WindowStart: datagen.SimEnd - 2*win, WindowMillis: win, Limit: 10}, // BI2
		3: {Limit: 20},                                                         // BI4
		5: {CreatedBefore: datagen.SimEnd, MaxMessages: 3},                     // BI6
		6: {Limit: 10},                                                         // BI7
	}
	for q := range bi.Registry {
		spec := &bi.Registry[q]
		p := params[q]
		b.Run(spec.Name, func(b *testing.B) {
			b.Run("txn", func(b *testing.B) {
				tx := env.Store.Begin()
				sc := workload.NewScratch()
				spec.RunTxn(tx, sc, p) // warm the scratch
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					spec.RunTxn(tx, sc, p)
				}
			})
			b.Run("view", func(b *testing.B) {
				v := env.Store.CurrentView()
				sc := workload.NewScratch()
				spec.RunView(v, sc, p)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					spec.RunView(v, sc, p)
				}
			})
			for _, workers := range []int{2, 4} {
				b.Run(fmt.Sprintf("par%d", workers), func(b *testing.B) {
					v := env.Store.CurrentView()
					par := exec.Config{Workers: workers}
					spec.RunPar(v, par, p) // warm the scratch pool
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						spec.RunPar(v, par, p)
					}
				})
			}
		})
	}
}
