package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/schema"
	"ldbcsnb/internal/store"
)

// BenchmarkWrite measures durable commit throughput under the group-commit
// pipeline: N concurrent writers issue minimal single-node insert
// transactions against a fresh durable store, across the three WAL
// durability modes and writer counts 1/2/4/8. In fsync-on-commit mode the
// interesting metrics are fsyncs/commit (how well the batcher amortises
// the fsync across concurrent committers; the acceptance bar at 8 writers
// is < 0.3) and recs/batch (mean batch size). `make bench-write` converts
// the output into BENCH_write.json.
//
// The lanes=N variants stripe the WAL over independent flusher lanes at
// the highest contention point (sync=commit, 8 writers); on a single-core
// host they mostly measure goroutine scheduling, not parallel IO.

// writeBucket keeps benchmark entity IDs far above generated datasets'
// minute buckets (the directory is fresh per sub-benchmark, so collisions
// are impossible anyway; the floor just keeps IDs well-formed at any N).
const writeBucket = 1 << 32

func benchWriters(b *testing.B, mode store.WALSyncMode, writers, lanes int) {
	dir := b.TempDir()
	opts := store.PersistOptions{CheckpointBytes: -1, WALSync: mode, WALLanes: lanes}
	p, _, err := store.Open(dir, opts, schema.RegisterIndexes)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()

	b.ResetTimer()
	var ctr atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := ctr.Add(1)
				if i > int64(b.N) {
					return
				}
				id := ids.Compose(ids.KindPerson, writeBucket+(i>>16), uint32(i&0xffff))
				tx := p.Store.Begin()
				err := tx.CreateNode(id, store.Props{
					{Key: store.PropFirstName, Val: store.String("writer")},
					{Key: store.PropCreationDate, Val: store.Int64(i)},
				})
				if err == nil {
					err = tx.Commit()
				} else {
					tx.Abort()
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	close(errs)
	for err := range errs {
		b.Fatal(err)
	}

	st := p.Stats()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "commits/s")
	b.ReportMetric(float64(st.Fsyncs)/float64(b.N), "fsyncs/commit")
	if st.Batches > 0 {
		b.ReportMetric(float64(st.BatchedRecords)/float64(st.Batches), "recs/batch")
	}
}

func BenchmarkWrite(b *testing.B) {
	for _, mode := range []store.WALSyncMode{store.SyncClose, store.SyncFlush, store.SyncCommit} {
		for _, writers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("sync=%s/writers=%d", mode, writers), func(b *testing.B) {
				benchWriters(b, mode, writers, 1)
			})
		}
	}
	// Lane striping at the highest-contention cell.
	for _, lanes := range []int{2, 4} {
		b.Run(fmt.Sprintf("sync=commit/writers=8/lanes=%d", lanes), func(b *testing.B) {
			benchWriters(b, store.SyncCommit, 8, lanes)
		})
	}
}
