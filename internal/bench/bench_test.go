package bench

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ldbcsnb/internal/datagen"
	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/params"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/workload"
	"ldbcsnb/internal/xrand"
)

var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

func testEnv(t testing.TB) *Env {
	t.Helper()
	envOnce.Do(func() {
		envVal, envErr = NewEnv(250, 7)
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envVal
}

func TestRenderTable(t *testing.T) {
	r := &Result{
		ID: "Table X", Title: "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  "shape",
	}
	s := r.Render()
	for _, want := range []string{"Table X", "demo", "a", "bb", "333", "note: shape"} {
		if !strings.Contains(s, want) {
			t.Fatalf("render missing %q:\n%s", want, s)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	env := testEnv(t)
	res := Table2(env)
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// German typical names must lead the Germany column.
	joined := ""
	for _, row := range res.Rows[:3] {
		joined += row[1] + " "
	}
	found := 0
	for _, n := range []string{"Karl", "Hans", "Wolfgang", "Fritz", "Rudolf", "Walter", "Franz", "Paul", "Otto", "Wilhelm"} {
		if strings.Contains(joined, n) {
			found++
		}
	}
	if found == 0 {
		t.Fatalf("no German typical names in top-3: %q", joined)
	}
}

func TestTable3Scaling(t *testing.T) {
	res := Table3([]int{100, 200}, 3)
	if len(res.Rows) != 2 {
		t.Fatal("rows")
	}
	// Messages scale superlinearly-ish in persons (degree grows too).
	m0, _ := strconv.Atoi(res.Rows[0][4])
	m1, _ := strconv.Atoi(res.Rows[1][4])
	if m1 <= m0 {
		t.Fatalf("messages must grow with scale: %d -> %d", m0, m1)
	}
	// Friends/person grows with scale (the avg-degree formula).
	f0, _ := strconv.ParseFloat(res.Rows[0][7], 64)
	f1, _ := strconv.ParseFloat(res.Rows[1][7], 64)
	if f1 <= f0*0.8 {
		t.Fatalf("degree should not shrink with scale: %v -> %v", f0, f1)
	}
}

func TestTable4(t *testing.T) {
	env := testEnv(t)
	res := Table4(env)
	if len(res.Rows) != 14 {
		t.Fatal("need 14 queries")
	}
	if res.Rows[0][1] != "132" || res.Rows[7][1] != "13" {
		t.Fatalf("paper frequencies wrong: %v", res.Rows[0])
	}
}

func TestTable5Scaling(t *testing.T) {
	env := testEnv(t)
	res := Table5(env, []int{1, 4})
	if len(res.Rows) != 2 {
		t.Fatal("rows")
	}
	for _, row := range res.Rows {
		t1, _ := strconv.ParseFloat(row[1], 64)
		t4, _ := strconv.ParseFloat(row[2], 64)
		if t4 < 2*t1 {
			t.Fatalf("sleep connector scaling too weak: %s -> 1p %.0f, 4p %.0f", row[0], t1, t4)
		}
	}
}

func TestInteractiveTables(t *testing.T) {
	env := testEnv(t)
	rep := RunInteractive(env, 1)
	t6, t7, t9 := Table6(rep), Table7(rep), Table9(rep)
	if len(t6.Rows) != 14 || len(t7.Rows) != 7 || len(t9.Rows) != 8 {
		t.Fatalf("table sizes: %d %d %d", len(t6.Rows), len(t7.Rows), len(t9.Rows))
	}
	if rep.Errors != 0 {
		t.Fatalf("interactive errors: %d", rep.Errors)
	}
	// Table 9 counts must cover the replayed updates.
	total := 0
	for _, row := range t9.Rows {
		n, _ := strconv.Atoi(row[2])
		total += n
	}
	if total == 0 {
		t.Fatal("no updates measured")
	}
}

func TestTable8Shape(t *testing.T) {
	env := testEnv(t)
	res := Table8(env)
	if len(res.Rows) == 0 {
		t.Fatal("no storage rows")
	}
	// Largest table should be a message table (posts or comments), like
	// the paper's `post`.
	first := res.Rows[0][1]
	if first != "Post" && first != "Comment" && first != "hasCreator" && first != "hasTag" && first != "likes" {
		t.Fatalf("unexpected largest table %q", first)
	}
}

func TestFigure2aStructure(t *testing.T) {
	// The spike property itself (event-topic clustering) is asserted in
	// datagen's TestEventDrivenSpikes; here we validate the figure's
	// structure: full month coverage and populated series.
	res := Figure2a(200, 5)
	if len(res.Rows) < 30 {
		t.Fatalf("months = %d", len(res.Rows))
	}
	sumU, sumE := 0, 0
	for _, row := range res.Rows {
		u, err := strconv.Atoi(row[1])
		if err != nil {
			t.Fatal(err)
		}
		e, err := strconv.Atoi(row[2])
		if err != nil {
			t.Fatal(err)
		}
		sumU += u
		sumE += e
	}
	if sumU == 0 || sumE == 0 {
		t.Fatalf("empty series: uniform %d event %d", sumU, sumE)
	}
	// Both runs share the config except events, so volumes are comparable.
	if sumE < sumU/3 || sumE > sumU*3 {
		t.Fatalf("series volumes diverge: uniform %d event %d", sumU, sumE)
	}
}

func TestFigure2bMonotone(t *testing.T) {
	res := Figure2b()
	prev := -1
	for _, row := range res.Rows {
		v, _ := strconv.Atoi(row[1])
		if v < prev {
			t.Fatal("degree curve not monotone")
		}
		prev = v
	}
	last, _ := strconv.Atoi(res.Rows[len(res.Rows)-1][1])
	if last != 5000 {
		t.Fatalf("cap = %d", last)
	}
}

func TestFigure3aHeavyTail(t *testing.T) {
	env := testEnv(t)
	res := Figure3a(env)
	if len(res.Rows) < 3 {
		t.Fatalf("buckets = %d", len(res.Rows))
	}
	// More mass in mid buckets than the last bucket (tail is thin but long).
	first, _ := strconv.Atoi(res.Rows[1][1])
	last, _ := strconv.Atoi(res.Rows[len(res.Rows)-1][1])
	if last > first {
		t.Fatalf("tail bucket (%d) heavier than head (%d)", last, first)
	}
}

func TestFigure3bRuns(t *testing.T) {
	res := Figure3b([]int{60, 120}, []int{1, 2}, 4)
	if len(res.Rows) != 2 || len(res.Rows[0]) != 3 {
		t.Fatal("shape")
	}
}

func TestFigure4JoinAblation(t *testing.T) {
	env := testEnv(t)
	res := Figure4(env, 2)
	if len(res.Rows) != 4 {
		t.Fatal("plans")
	}
	// The figure's sequential per-plan timings are too noisy to assert on
	// a shared host (background load during one plan's window inverts the
	// ordering). Check the ablation property itself with interleaved
	// timing instead: alternating the plans query-by-query exposes both
	// to the same contention, so only a genuine cost difference can
	// invert the comparison.
	q9 := params.BuildQ9Table(env.Full)
	var people []ids.ID
	for _, p := range q9.Curate(10) {
		people = append(people, ids.ID(p))
	}
	intendedPlan := workload.Q9Plan{FriendExpand: workload.JoinINL, MessageJoin: workload.JoinINL}
	wrongPlan := workload.Q9Plan{FriendExpand: workload.JoinHash, MessageJoin: workload.JoinINL}
	// The true margin is thin at test scale (hash-expand costs ~1.1-1.4x
	// the intended plan), so also retry: fail only when every attempt
	// inverts, which would indicate a real operator-cost defect.
	sc := workload.NewScratch()
	bestOf3 := func(tx *store.Txn, p ids.ID, plan workload.Q9Plan) time.Duration {
		best := time.Duration(math.MaxInt64)
		for rep := 0; rep < 3; rep++ {
			t0 := time.Now()
			workload.Q9Join(tx, sc, p, datagen.UpdateCut, plan)
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	var last string
	for attempt := 0; attempt < 3; attempt++ {
		var intended, wrong time.Duration
		env.Store.View(func(tx *store.Txn) {
			for _, p := range people {
				intended += bestOf3(tx, p, intendedPlan)
				wrong += bestOf3(tx, p, wrongPlan)
			}
		})
		if wrong > intended {
			return
		}
		last = fmt.Sprintf("hash-expand (%v) should cost more than intended plan (%v)", wrong, intended)
	}
	t.Fatalf("inverted in 3 consecutive attempts: %s", last)
}

func TestFigure5aSpread(t *testing.T) {
	env := testEnv(t)
	res := Figure5a(env)
	p10, _ := strconv.Atoi(res.Rows[1][1])
	p90, _ := strconv.Atoi(res.Rows[5][1])
	if p90 < p10*2 {
		t.Fatalf("2-hop spread too narrow: p10=%d p90=%d", p10, p90)
	}
}

func TestFigure5bCurationCollapsesVariance(t *testing.T) {
	env := testEnv(t)
	res := Figure5b(env, 15)
	if len(res.Rows) != 2 {
		t.Fatal("rows")
	}
	// The figure measures the two selections in sequential blocks, which
	// a shared host can invert with one load burst. Assert the property
	// on interleaved best-of-3 samples instead (each uniform binding
	// timed back-to-back with a curated one, so contention hits both
	// equally), retrying a few times and failing only on consistent
	// inversion — which would indicate a real curation defect.
	tab := params.BuildQ5Table(env.Full)
	r := xrand.New(env.Cfg.Seed, xrand.PurposeShortRead, 999)
	uniform := tab.UniformSample(15, r.Uint64)
	curated := tab.Curate(15)
	sc := workload.NewScratch()
	bestOf3 := func(tx *store.Txn, p uint64) float64 {
		best := math.Inf(1)
		for rep := 0; rep < 3; rep++ {
			t0 := time.Now()
			workload.Q5(tx, sc, ids.ID(p), datagen.SimStart)
			if v := float64(time.Since(t0).Microseconds()) / 1000; v < best {
				best = v
			}
		}
		return best
	}
	// Interquartile range: an outlier-robust spread measure, so a single
	// scheduler spike in one sample cannot invert the comparison the way
	// it can with stddev.
	iqr := func(samples []float64) float64 {
		s := append([]float64(nil), samples...)
		sort.Float64s(s)
		return s[(3*len(s))/4] - s[len(s)/4]
	}
	var last string
	for attempt := 0; attempt < 3; attempt++ {
		var us, cs []float64
		env.Store.View(func(tx *store.Txn) {
			for i := range uniform {
				us = append(us, bestOf3(tx, uniform[i]))
				cs = append(cs, bestOf3(tx, curated[i%len(curated)]))
			}
		})
		uSpread, cSpread := iqr(us), iqr(cs)
		// At test scale (250 persons) the curated and uniform runtime
		// distributions are close — the paper's >100x uniform spread needs
		// SF1+ — so allow a noise margin: the test guards against gross
		// inversion (curated clearly more variable than uniform), which is
		// what a real curation defect would produce.
		if cSpread <= uSpread*1.3 {
			return
		}
		last = fmt.Sprintf("uniform IQR %.3fms, curated IQR %.3fms", uSpread, cSpread)
	}
	t.Fatalf("curated spread far above uniform in 3 consecutive attempts: %s", last)
}

func TestAblationWindowed(t *testing.T) {
	env := testEnv(t)
	res := AblationWindowed(env, 4)
	if len(res.Rows) != 2 {
		t.Fatal("rows")
	}
	par, _ := strconv.ParseFloat(res.Rows[0][1], 64)
	win, _ := strconv.ParseFloat(res.Rows[1][1], 64)
	if par <= 0 || win <= 0 {
		t.Fatal("throughput missing")
	}
	// Windowed coalesces synchronisation; it must stay within 40% of
	// parallel (usually it is at least as fast).
	if win < 0.6*par {
		t.Fatalf("windowed %.0f much slower than parallel %.0f", win, par)
	}
}

func TestAblationTimeOrderedIDs(t *testing.T) {
	env := testEnv(t)
	res := AblationTimeOrderedIDs(env, 10)
	o, _ := strconv.ParseFloat(res.Rows[0][1], 64)
	s, _ := strconv.ParseFloat(res.Rows[1][1], 64)
	if o <= 0 || s <= 0 {
		t.Fatal("timings missing")
	}
	if s < o {
		t.Fatalf("property re-sort (%.1fµs) should not beat stamp order (%.1fµs)", s, o)
	}
}

func TestAblationCuratedMix(t *testing.T) {
	env := testEnv(t)
	res := AblationCuratedMix(env, 10)
	if len(res.Rows) != 2 {
		t.Fatal("rows")
	}
	// Curated rows use the same deterministic selection twice: drift must
	// be small (timing noise only).
	if res.Rows[1][1] == "0.000" {
		t.Fatal("curated run measured nothing")
	}
}
