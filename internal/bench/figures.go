package bench

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"ldbcsnb/internal/datagen"
	"ldbcsnb/internal/distr"
	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/params"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/workload"
	"ldbcsnb/internal/xrand"
)

// Figure2a — post density over time, uniform vs event-driven generation.
// Rendered as monthly bucket counts plus an ASCII sparkline per series.
func Figure2a(persons int, seed uint64) *Result {
	base := datagen.Config{Seed: seed, Persons: persons, Workers: 2}
	uniform := datagen.Generate(base)
	withEv := base
	withEv.Events = true
	spiky := datagen.Generate(withEv)

	const month = 30 * 24 * 3600 * 1000
	buckets := func(d []int64) []int {
		n := int((datagen.SimEnd-datagen.SimStart)/month) + 1
		out := make([]int, n)
		for _, t := range d {
			i := int((t - datagen.SimStart) / month)
			if i >= 0 && i < n {
				out[i]++
			}
		}
		return out
	}
	var uts, sts []int64
	for i := range uniform.Data.Posts {
		uts = append(uts, uniform.Data.Posts[i].CreationDate)
	}
	for i := range spiky.Data.Posts {
		sts = append(sts, spiky.Data.Posts[i].CreationDate)
	}
	ub, sb := buckets(uts), buckets(sts)

	res := &Result{
		ID:     "Figure 2a",
		Title:  "Post density over time: uniform vs event-driven (monthly buckets)",
		Header: []string{"month", "uniform", "event-driven", "spark"},
		Notes:  "event-driven series must show spikes (high max/median ratio) where uniform is smooth",
	}
	maxS := 1
	for _, v := range sb {
		if v > maxS {
			maxS = v
		}
	}
	for i := range ub {
		bar := sparkBar(sb[i], maxS, 24)
		res.Rows = append(res.Rows, []string{
			strconv.Itoa(i + 1), strconv.Itoa(ub[i]), strconv.Itoa(sb[i]), bar,
		})
	}
	return res
}

func sparkBar(v, max, width int) string {
	n := v * width / max
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

// Figure2b — maximum degree of each percentile of the (digitised)
// Facebook degree curve used by the generator.
func Figure2b() *Result {
	res := &Result{
		ID:     "Figure 2b",
		Title:  "Maximum degree per percentile (Facebook curve driving DATAGEN)",
		Header: []string{"percentile", "max degree"},
		Notes:  "log-scale straight line from ~10 to 1000 with a tail upturn to the 5000 cap",
	}
	for p := 0; p <= 100; p += 5 {
		res.Rows = append(res.Rows, []string{strconv.Itoa(p), strconv.Itoa(distr.MaxDegreeAtPercentile(p))})
	}
	return res
}

// Figure3a — friendship degree distribution of the generated graph,
// log-spaced histogram.
func Figure3a(env *Env) *Result {
	deg := map[ids.ID]int{}
	for _, k := range env.Full.Knows {
		deg[k.A]++
		deg[k.B]++
	}
	// Log-spaced buckets 1,2,4,8,...
	counts := map[int]int{}
	maxB := 0
	for _, d := range deg {
		b := 0
		for v := d; v > 1; v /= 2 {
			b++
		}
		counts[b]++
		if b > maxB {
			maxB = b
		}
	}
	res := &Result{
		ID:     "Figure 3a",
		Title:  "Friendship degree distribution (log-spaced buckets)",
		Header: []string{"degree range", "persons"},
		Notes:  "heavy tail: bucket counts decay roughly geometrically, max degree >> mean",
	}
	for b := 0; b <= maxB; b++ {
		lo := 1 << b
		hi := 1<<(b+1) - 1
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d-%d", lo, hi), strconv.Itoa(counts[b]),
		})
	}
	return res
}

// Figure3b — DATAGEN scale-up: generation wall time at several scales and
// worker counts (the paper's single-node vs cluster plot, scaled down).
func Figure3b(scales []int, workers []int, seed uint64) *Result {
	res := &Result{
		ID:     "Figure 3b",
		Title:  "DATAGEN generation time (ms) by scale and workers",
		Header: append([]string{"persons"}, intsToStrings(workers)...),
		Notes:  "generation time grows ~linearly with scale; workers reduce wall time on multi-core hardware (single-core here, so expect flat)",
	}
	for _, n := range scales {
		row := []string{strconv.Itoa(n)}
		for _, w := range workers {
			t0 := time.Now()
			datagen.Generate(datagen.Config{Seed: seed, Persons: n, Workers: w})
			row = append(row, strconv.FormatInt(time.Since(t0).Milliseconds(), 10))
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Figure4 — the §3 join-type choke point: Query 9 under the four physical
// plans. The intended plan (INL expand + INL message fetch) must beat
// plans that hash-build the wrong side.
func Figure4(env *Env, reps int) *Result {
	if reps <= 0 {
		reps = 5
	}
	q9 := params.BuildQ9Table(env.Full)
	var people []ids.ID
	for _, p := range q9.Curate(10) {
		people = append(people, ids.ID(p))
	}
	maxDate := datagen.UpdateCut
	plans := []struct {
		name string
		plan workload.Q9Plan
	}{
		{"INL+INL (intended)", workload.Q9Plan{FriendExpand: workload.JoinINL, MessageJoin: workload.JoinINL}},
		{"Hash+INL (wrong join1)", workload.Q9Plan{FriendExpand: workload.JoinHash, MessageJoin: workload.JoinINL}},
		{"INL+Hash (scan join3)", workload.Q9Plan{FriendExpand: workload.JoinINL, MessageJoin: workload.JoinHash}},
		{"Hash+Hash", workload.Q9Plan{FriendExpand: workload.JoinHash, MessageJoin: workload.JoinHash}},
	}
	res := &Result{
		ID:     "Figure 4",
		Title:  "Query 9 join-type ablation (mean ms over curated persons)",
		Header: []string{"plan", "mean ms", "vs intended"},
		Notes:  "paper: wrong join type in join1 costs ~50% in HyPer; here hash-building the full knows/message relations must be clearly slower",
	}
	var baseline float64
	sc := workload.NewScratch()
	for _, pl := range plans {
		start := time.Now()
		env.Store.View(func(tx *store.Txn) {
			for r := 0; r < reps; r++ {
				for _, p := range people {
					workload.Q9Join(tx, sc, p, maxDate, pl.plan)
				}
			}
		})
		mean := float64(time.Since(start).Microseconds()) / 1000 / float64(reps*len(people))
		if baseline == 0 {
			baseline = mean
		}
		res.Rows = append(res.Rows, []string{
			pl.name, ms(mean), fmt.Sprintf("%.2fx", mean/baseline),
		})
	}
	return res
}

// Figure5a — distribution of the 2-hop friend environment size.
func Figure5a(env *Env) *Result {
	sizes := params.TwoHopSizes(env.Full)
	res := &Result{
		ID:     "Figure 5a",
		Title:  "Distribution of 2-hop friend environment size",
		Header: []string{"percentile", "2-hop size"},
		Notes:  "wide multimodal spread: p10 and p90 differ by a large factor (the reason uniform parameters fail)",
	}
	for _, p := range []int{0, 10, 25, 50, 75, 90, 99, 100} {
		i := p * (len(sizes) - 1) / 100
		res.Rows = append(res.Rows, []string{strconv.Itoa(p), strconv.Itoa(sizes[i])})
	}
	return res
}

// Figure5b — Query 5 runtime distribution under uniform vs curated
// parameter selection: the defining experiment of Parameter Curation.
func Figure5b(env *Env, k int) *Result {
	if k <= 0 {
		k = 20
	}
	tab := params.BuildQ5Table(env.Full)
	r := xrand.New(env.Cfg.Seed, xrand.PurposeShortRead, 999)
	uniform := tab.UniformSample(k, r.Uint64)
	curated := tab.Curate(k)

	run := func(sel []uint64) (meanMs, stddevMs, minMs, maxMs float64) {
		var samples []float64
		sc := workload.NewScratch()
		env.Store.View(func(tx *store.Txn) {
			for _, p := range sel {
				// Best of three repetitions per binding: scheduler noise on
				// shared/single-core hosts would otherwise dominate the
				// microsecond-scale curated runtimes.
				best := math.Inf(1)
				for rep := 0; rep < 3; rep++ {
					t0 := time.Now()
					workload.Q5(tx, sc, ids.ID(p), datagen.SimStart)
					if v := float64(time.Since(t0).Microseconds()) / 1000; v < best {
						best = v
					}
				}
				samples = append(samples, best)
			}
		})
		sort.Float64s(samples)
		sum := 0.0
		for _, s := range samples {
			sum += s
		}
		mean := sum / float64(len(samples))
		v := 0.0
		for _, s := range samples {
			v += (s - mean) * (s - mean)
		}
		v /= float64(len(samples))
		return mean, math.Sqrt(v), samples[0], samples[len(samples)-1]
	}
	um, us, umin, umax := run(uniform)
	cm, cs, cmin, cmax := run(curated)

	res := &Result{
		ID:     "Figure 5b",
		Title:  "Q5 runtime distribution: uniform vs curated parameters (ms)",
		Header: []string{"selection", "mean", "stddev", "min", "max", "max/min"},
		Notes:  "paper: uniform parameters give >100x spread between fastest and slowest run; curation collapses the variance",
	}
	res.Rows = append(res.Rows, []string{"uniform", ms(um), ms(us), ms(umin), ms(umax), ratioStr(umax, umin)})
	res.Rows = append(res.Rows, []string{"curated", ms(cm), ms(cs), ms(cmin), ms(cmax), ratioStr(cmax, cmin)})
	return res
}

func ratioStr(a, b float64) string {
	if b <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", a/b)
}
