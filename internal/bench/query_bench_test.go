package bench

import (
	"testing"

	"ldbcsnb/internal/query"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/workload"
)

// BenchmarkQueryDeclVsHand compares the declarative pattern-query layer
// against the hand-written query implementations it mirrors (Q1/Q2/Q8),
// both on the frozen snapshot-view path with warm scratches. The
// declarative side pays for generic plan interpretation (term loads,
// epoch-stamped dedup, the order-by sink) where the hand-written side is
// specialised Go; the acceptance bar is decl <= 2x hand per query.
//
// `make bench-query` converts the output into BENCH_query.json via
// cmd/benchjson so the ratio is tracked across PRs.
func BenchmarkQueryDeclVsHand(b *testing.B) {
	env := testEnv(b)
	p := benchPerson(b, env)
	name := benchCommonName(env)
	maxDate := int64(1) << 62
	v := env.Store.CurrentView()
	person := store.Int64(int64(uint64(p)))

	cases := []struct {
		name   string
		params query.Params
		hand   func(sc *workload.Scratch)
	}{
		{"Q1", query.Params{"person": person, "name": store.String(name)},
			func(sc *workload.Scratch) { workload.Q1(v, sc, p, name) }},
		{"Q2", query.Params{"person": person, "maxDate": store.Int64(maxDate)},
			func(sc *workload.Scratch) { workload.Q2(v, sc, p, maxDate) }},
		{"Q8", query.Params{"person": person},
			func(sc *workload.Scratch) { workload.Q8(v, sc, p) }},
	}
	for _, tc := range cases {
		spec := query.Lookup(tc.name)
		if spec == nil {
			b.Fatalf("no registry spec %s", tc.name)
		}
		b.Run(tc.name+"/decl", func(b *testing.B) {
			sc := query.NewScratch()
			if _, err := spec.RunView(v, sc, tc.params); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := spec.RunView(v, sc, tc.params); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(tc.name+"/hand", func(b *testing.B) {
			sc := workload.NewScratch()
			tc.hand(sc)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tc.hand(sc)
			}
		})
	}
}
