package dict

import (
	"sort"
	"strings"
	"testing"

	"ldbcsnb/internal/xrand"
)

func TestDimensionTablesConsistent(t *testing.T) {
	if len(Countries) == 0 || len(Cities) == 0 || len(Universities) == 0 || len(Companies) == 0 {
		t.Fatal("dimension tables empty")
	}
	for _, c := range Countries {
		if c.CityCount <= 0 || c.UniCount <= 0 || c.CompCount <= 0 {
			t.Fatalf("country %s missing sub-entities", c.Name)
		}
		for i := c.CityStart; i < c.CityStart+c.CityCount; i++ {
			if Cities[i].Country != c.ID {
				t.Fatalf("city %d misowned", i)
			}
		}
		for i := c.UniStart; i < c.UniStart+c.UniCount; i++ {
			if Universities[i].Country != c.ID {
				t.Fatalf("university %d misowned", i)
			}
			city := Universities[i].City
			if city < c.CityStart || city >= c.CityStart+c.CityCount {
				t.Fatalf("university %d in foreign city", i)
			}
		}
		if len(c.Languages) == 0 {
			t.Fatalf("country %s has no languages", c.Name)
		}
	}
}

func TestCountryByName(t *testing.T) {
	if CountryByName("Germany") < 0 {
		t.Fatal("Germany missing")
	}
	if CountryByName("Atlantis") != -1 {
		t.Fatal("unexpected country")
	}
}

// TestTable2FirstNames reproduces the mechanism behind the paper's Table 2:
// the top-10 first names for persons located in Germany must be the German
// typical names, and for China the Chinese ones, under the shared skewed
// draw.
func TestTable2FirstNames(t *testing.T) {
	for _, tc := range []struct {
		country string
		want    []string
	}{
		{"Germany", []string{"Karl", "Hans", "Wolfgang", "Fritz", "Rudolf", "Walter", "Franz", "Paul", "Otto", "Wilhelm"}},
		{"China", []string{"Yang", "Chen", "Wei", "Lei", "Jun", "Jie", "Li", "Hao", "Lin", "Peng"}},
	} {
		ci := CountryByName(tc.country)
		counts := map[string]int{}
		r := xrand.New(42, xrand.PurposeFirstName, uint64(ci))
		for i := 0; i < 20000; i++ {
			counts[FirstName(r, ci, GenderMale)]++
		}
		type nc struct {
			n string
			c int
		}
		var all []nc
		for n, c := range counts {
			all = append(all, nc{n, c})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].c > all[j].c })
		top := map[string]bool{}
		for i := 0; i < 10 && i < len(all); i++ {
			top[all[i].n] = true
		}
		missing := 0
		for _, w := range tc.want {
			if !top[w] {
				missing++
			}
		}
		// The skewed draw makes the head dominate; allow one swap at the tail.
		if missing > 1 {
			t.Fatalf("%s: %d typical names missing from top-10 (%v)", tc.country, missing, all[:10])
		}
	}
}

func TestFirstNameCrossCountryLeakage(t *testing.T) {
	// Germans with Chinese names exist but are infrequent (§2.1).
	de := CountryByName("Germany")
	r := xrand.New(7, xrand.PurposeFirstName)
	chinese := map[string]bool{}
	for _, n := range typicalFirst["China"][GenderMale] {
		chinese[n] = true
	}
	hits := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if chinese[FirstName(r, de, GenderMale)] {
			hits++
		}
	}
	if hits == 0 {
		t.Skip("no leakage observed; generic pools disjoint from typical heads")
	}
	if hits > n/10 {
		t.Fatalf("cross-country names too frequent: %d/%d", hits, n)
	}
}

func TestLastNameCorrelation(t *testing.T) {
	cn := CountryByName("China")
	r := xrand.New(11, xrand.PurposeLastName)
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		counts[LastName(r, cn)]++
	}
	if counts["Wang"] == 0 || counts["Li"] == 0 {
		t.Fatal("typical Chinese last names absent")
	}
	if counts["Wang"] < counts["Mueller"] {
		t.Fatalf("Wang (%d) should outnumber Mueller (%d) in China", counts["Wang"], counts["Mueller"])
	}
}

func TestTagOntology(t *testing.T) {
	if len(TagClasses) != len(tagClassNames) {
		t.Fatal("tag class table size")
	}
	for _, tc := range TagClasses {
		if tc.Parent >= tc.ID {
			t.Fatalf("class %d parent %d not earlier in table", tc.ID, tc.Parent)
		}
	}
	if len(Tags) != NumTags {
		t.Fatalf("want %d tags, got %d", NumTags, len(Tags))
	}
	names := map[string]bool{}
	for _, tg := range Tags {
		if names[tg.Name] {
			t.Fatalf("duplicate tag name %q", tg.Name)
		}
		names[tg.Name] = true
	}
}

func TestTagsOfClassSubtree(t *testing.T) {
	// MusicalArtist (3) is under Artist (2) under Person (1) under Thing (0).
	musical := TagsOfClass(3)
	artist := TagsOfClass(2)
	person := TagsOfClass(1)
	thing := TagsOfClass(0)
	if len(musical) == 0 {
		t.Fatal("no musical tags")
	}
	if !(len(musical) <= len(artist) && len(artist) <= len(person) && len(person) <= len(thing)) {
		t.Fatalf("subtree sizes not monotone: %d %d %d %d", len(musical), len(artist), len(person), len(thing))
	}
	if len(thing) != NumTags {
		t.Fatalf("Thing subtree should cover all tags, got %d", len(thing))
	}
}

func TestInterestsDistinct(t *testing.T) {
	r := xrand.New(3, xrand.PurposeInterests)
	in := Interests(r, 0, 12)
	if len(in) != 12 {
		t.Fatalf("want 12 interests, got %d", len(in))
	}
	seen := map[int]bool{}
	for _, tg := range in {
		if seen[tg] {
			t.Fatal("duplicate interest")
		}
		seen[tg] = true
	}
}

func TestInterestCountryCorrelation(t *testing.T) {
	// Different countries should have visibly different top interests.
	top := func(country int) int {
		r := xrand.New(5, xrand.PurposeInterests, uint64(country))
		counts := map[int]int{}
		for i := 0; i < 5000; i++ {
			counts[InterestTag(r, country)]++
		}
		best, bestC := -1, -1
		for tg, c := range counts {
			if c > bestC {
				best, bestC = tg, c
			}
		}
		return best
	}
	if top(0) == top(6) {
		t.Fatal("two distant countries share the same top interest; rotation broken")
	}
}

func TestTagViewIsPermutation(t *testing.T) {
	v := TagView(5)
	seen := make([]bool, NumTags)
	for _, id := range v {
		if id < 0 || id >= NumTags || seen[id] {
			t.Fatal("TagView not a permutation")
		}
		seen[id] = true
	}
}

func TestArticleSentenceDeterministic(t *testing.T) {
	a := ArticleSentence(7, 3)
	b := ArticleSentence(7, 3)
	if a != b {
		t.Fatal("article text not deterministic")
	}
	if !strings.HasPrefix(a, Tags[7].Name) {
		t.Fatalf("sentence should mention topic: %q", a)
	}
	if ArticleSentence(7, 4) == a {
		t.Fatal("distinct sentences expected")
	}
}

func TestMessageTextLength(t *testing.T) {
	r := xrand.New(9, xrand.PurposeText)
	for _, want := range []int{1, 20, 150, 1000} {
		s := MessageText(r, 3, want)
		if len(s) != want {
			t.Fatalf("MessageText length %d, want %d", len(s), want)
		}
	}
}

func TestIPCountryPrefix(t *testing.T) {
	r := xrand.New(1, xrand.PurposeIP)
	a := IP(r, 2)
	b := IP(r, 2)
	pa := strings.SplitN(a, ".", 2)[0]
	pb := strings.SplitN(b, ".", 2)[0]
	if pa != pb {
		t.Fatalf("country IP prefix unstable: %s vs %s", a, b)
	}
	if len(strings.Split(a, ".")) != 4 {
		t.Fatalf("not an IPv4 literal: %s", a)
	}
}

func TestEmail(t *testing.T) {
	got := Email("Karl", "Mueller", "Germany_Corp_A")
	if got != "karl.mueller@germany_corp_a.example.org" {
		t.Fatalf("got %q", got)
	}
}

func TestBrowserSkewed(t *testing.T) {
	r := xrand.New(2, xrand.PurposeBrowser)
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		counts[Browser(r)]++
	}
	if counts["Chrome"] <= counts["Opera"] {
		t.Fatalf("browser skew missing: %v", counts)
	}
}
