package dict

import (
	"strings"

	"ldbcsnb/internal/xrand"
)

// Message text synthesis. The paper uses "text taken from DBpedia pages
// closely related to a topic" for post and comment content (Table 1:
// post.topic → post.text, post.comment.text). The substitution here keeps
// the property the workload needs: text is a deterministic function of the
// topic tag, so messages about the same topic share vocabulary, and text
// length is skewed (short comments, longer posts).

var textWords = []string{
	"about", "after", "against", "album", "ancient", "army", "author",
	"band", "battle", "became", "between", "born", "career", "century",
	"champion", "city", "classic", "concert", "country", "culture", "debut",
	"during", "early", "empire", "famous", "festival", "final", "first",
	"following", "formed", "founded", "great", "history", "influence",
	"known", "later", "league", "legend", "match", "modern", "movement",
	"music", "national", "novel", "opera", "original", "period", "player",
	"popular", "record", "region", "released", "revolution", "river",
	"season", "second", "series", "song", "stage", "story", "style",
	"success", "team", "theory", "title", "tour", "tradition", "victory",
	"winner", "world", "years",
}

// ArticleSentence returns the i-th sentence of the synthetic "article" for
// a tag: a deterministic pseudo-sentence mentioning the tag name.
func ArticleSentence(tag, i int) string {
	r := xrand.New(uint64(tag)*1000003+uint64(i), xrand.PurposeText)
	n := 6 + r.Intn(8)
	var b strings.Builder
	b.WriteString(Tags[tag].Name)
	for j := 0; j < n; j++ {
		b.WriteByte(' ')
		b.WriteString(textWords[r.Intn(len(textWords))])
	}
	b.WriteByte('.')
	return b.String()
}

// MessageText builds message content about a topic tag with roughly the
// requested length in characters, by concatenating article sentences
// starting at a random offset.
func MessageText(r *xrand.Rand, tag, length int) string {
	if length <= 0 {
		length = 1
	}
	start := r.Intn(64)
	var b strings.Builder
	for i := 0; b.Len() < length; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(ArticleSentence(tag, start+i))
	}
	s := b.String()
	if len(s) > length {
		s = s[:length]
	}
	return s
}

// Browsers and IP classes, used by message metadata.
var Browsers = []string{"Chrome", "Firefox", "Safari", "Internet Explorer", "Opera"}

// Browser draws a browser name with a skewed distribution.
func Browser(r *xrand.Rand) string {
	return Browsers[r.SkewedIndex(len(Browsers), 0.4)]
}

// IP synthesises an IPv4 literal whose first octet is country-correlated
// (locationIP in the SNB schema correlates with person.location).
func IP(r *xrand.Rand, country int) string {
	var b strings.Builder
	writeOctet := func(v int) {
		b.WriteString(itoa(v))
	}
	writeOctet(20 + country*8%200)
	b.WriteByte('.')
	writeOctet(r.Intn(256))
	b.WriteByte('.')
	writeOctet(r.Intn(256))
	b.WriteByte('.')
	writeOctet(1 + r.Intn(254))
	return b.String()
}

// itoa is a tiny non-allocating-ish int formatter for small values.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [4]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Email builds a person e-mail at their employer or university domain
// (Table 1: person.employer → person.email).
func Email(first, last, org string) string {
	return strings.ToLower(first) + "." + strings.ToLower(last) + "@" + strings.ToLower(org) + ".example.org"
}
