// Package dict provides the correlated value dictionaries used by DATAGEN.
//
// The paper (§2.1) takes attribute values from DBpedia and realises
// correlation by keeping the *shape* of the (skewed) value distribution
// fixed while changing the *order* of dictionary values with the
// correlation parameter (e.g. person.location). This package reproduces
// that mechanism with embedded synthetic vocabularies: every correlated
// dictionary exposes an ordered view per correlation parameter, and the
// generator samples an index from the shared skewed distribution.
//
// This is the documented substitution for the DBpedia source data (see
// DESIGN.md §1): the correlation machinery is identical; only the raw
// strings are synthetic. The German and Chinese first-name heads match the
// paper's Table 2 so the experiment reproduces verbatim.
package dict

// Country is a dimension entity: persons are assigned a country (their
// "location"), which drives name, university, company, language and
// interest correlations (Table 1).
type Country struct {
	ID         int
	Name       string
	Weight     float64 // population weight for skewed assignment
	GridX      uint8   // 16x16 world-grid coordinate for Z-ordering
	GridY      uint8
	Languages  []string
	CityStart  int // index of first city in Cities
	CityCount  int
	UniStart   int // index of first university in Universities
	UniCount   int
	CompStart  int // index of first company in Companies
	CompCount  int
	NameRotate int // rotation applied to the generic name pool
}

// City is a dimension entity within a country.
type City struct {
	ID      int
	Name    string
	Country int
	GridX   uint8
	GridY   uint8
}

// University is a dimension entity located in a city.
type University struct {
	ID      int
	Name    string
	City    int
	Country int
}

// Company is a dimension entity located in a country.
type Company struct {
	ID      int
	Name    string
	Country int
}

// countrySpec seeds the country table. Weights roughly follow a Zipf over
// population rank, matching the skewed person-location assignment.
var countrySpecs = []struct {
	name   string
	weight float64
	gx, gy uint8
	langs  []string
}{
	{"China", 19.0, 12, 6, []string{"zh"}},
	{"India", 17.5, 10, 7, []string{"hi", "en"}},
	{"United_States", 4.5, 3, 5, []string{"en"}},
	{"Indonesia", 3.5, 13, 8, []string{"id"}},
	{"Brazil", 2.8, 5, 9, []string{"pt"}},
	{"Pakistan", 2.6, 10, 6, []string{"ur", "en"}},
	{"Germany", 1.1, 8, 4, []string{"de"}},
	{"Nigeria", 2.5, 8, 8, []string{"en"}},
	{"Russia", 1.9, 11, 3, []string{"ru"}},
	{"Japan", 1.7, 14, 5, []string{"ja"}},
	{"Mexico", 1.6, 2, 6, []string{"es"}},
	{"Philippines", 1.4, 14, 7, []string{"tl", "en"}},
	{"Vietnam", 1.3, 13, 7, []string{"vi"}},
	{"France", 0.9, 7, 4, []string{"fr"}},
	{"United_Kingdom", 0.9, 7, 3, []string{"en"}},
	{"Italy", 0.8, 8, 5, []string{"it"}},
	{"Spain", 0.6, 7, 5, []string{"es"}},
	{"Netherlands", 0.23, 7, 4, []string{"nl", "en"}},
	{"Poland", 0.5, 9, 4, []string{"pl"}},
	{"Canada", 0.5, 3, 3, []string{"en", "fr"}},
	{"Australia", 0.33, 14, 10, []string{"en"}},
	{"Sweden", 0.13, 8, 2, []string{"sv", "en"}},
	{"Switzerland", 0.11, 8, 4, []string{"de", "fr", "it"}},
	{"Argentina", 0.6, 4, 10, []string{"es"}},
	{"Egypt", 1.3, 9, 6, []string{"ar"}},
}

// cityStems name cities per country as Stem_k; three to five per country,
// deterministic from the country index.
var cityStems = []string{"Port", "New", "Old", "East", "West", "North", "South", "Lake", "Mount", "Fort"}

var (
	// Countries is the country dimension table, ordered by descending weight
	// (index = popularity rank, so SkewedIndex(0..) picks populous countries).
	Countries []Country
	// Cities is the city dimension table.
	Cities []City
	// Universities is the university dimension table.
	Universities []University
	// Companies is the company dimension table.
	Companies []Company
)

func init() {
	for i, s := range countrySpecs {
		c := Country{
			ID: i, Name: s.name, Weight: s.weight,
			GridX: s.gx, GridY: s.gy, Languages: s.langs,
			NameRotate: (i*7 + 3) % 97,
		}
		// Cities: 3-5 per country.
		nCities := 3 + i%3
		c.CityStart = len(Cities)
		c.CityCount = nCities
		for j := 0; j < nCities; j++ {
			Cities = append(Cities, City{
				ID:      len(Cities),
				Name:    cityStems[(i+j)%len(cityStems)] + "_" + s.name,
				Country: i,
				GridX:   s.gx,
				GridY:   s.gy,
			})
		}
		// Universities: 2-4 per country, each in one of its cities.
		nUnis := 2 + (i*3)%3
		c.UniStart = len(Universities)
		c.UniCount = nUnis
		for j := 0; j < nUnis; j++ {
			Universities = append(Universities, University{
				ID:      len(Universities),
				Name:    "University_of_" + Cities[c.CityStart+j%nCities].Name,
				City:    c.CityStart + j%nCities,
				Country: i,
			})
		}
		// Companies: 3-6 per country.
		nComp := 3 + (i*5)%4
		c.CompStart = len(Companies)
		c.CompCount = nComp
		for j := 0; j < nComp; j++ {
			Companies = append(Companies, Company{
				ID:      len(Companies),
				Name:    s.name + "_Corp_" + string(rune('A'+j)),
				Country: i,
			})
		}
		Countries = append(Countries, c)
	}
}

// CountryByName returns the index of the named country, or -1.
func CountryByName(name string) int {
	for i := range Countries {
		if Countries[i].Name == name {
			return i
		}
	}
	return -1
}
