package dict

import (
	"strconv"

	"ldbcsnb/internal/xrand"
)

// Tag and TagClass dictionaries. Tags are the "interests" of persons and
// the topics of posts (Table 1: person.location → person.interests,
// person.interests → post.topic). Interests are correlated with location:
// each country prefers a rotated ordering of the global tag list, with
// popular artists at the head ("popular artist" in Table 1).

// TagClass is a category of tags (substitute for the DBpedia ontology).
type TagClass struct {
	ID     int
	Name   string
	Parent int // -1 for roots
}

// Tag is a topic entity.
type Tag struct {
	ID    int
	Name  string
	Class int
}

var tagClassNames = []string{
	"Thing", "Person", "Artist", "MusicalArtist", "Writer", "Politician",
	"Athlete", "Place", "Country", "City", "Work", "Album", "Film", "Book",
	"Organisation", "Company", "Event", "Sport", "Science", "Technology",
}

// tagClassParents encodes a small ontology tree over tagClassNames.
var tagClassParents = []int{
	-1, 0, 1, 2, 1, 1,
	1, 0, 7, 7, 0, 10, 10, 10,
	0, 14, 0, 16, 0, 18,
}

var tagStems = []string{
	"Beatles", "Elvis", "Mozart", "Beethoven", "Dylan", "Queen", "Abba",
	"Madonna", "Prince", "Bowie", "Tolstoy", "Goethe", "Cervantes",
	"Shakespeare", "Kafka", "Napoleon", "Lincoln", "Gandhi", "Mandela",
	"Caesar", "Pele", "Jordan", "Federer", "Bolt", "Ali", "Amazon",
	"Danube", "Everest", "Sahara", "Pacific", "Jazz", "Opera", "Chess",
	"Cricket", "Sumo", "Algebra", "Quantum", "Genome", "Fusion", "Robotics",
}

var (
	// TagClasses is the tag-class dimension table.
	TagClasses []TagClass
	// Tags is the tag dimension table. Index order is global popularity
	// rank before per-country rotation.
	Tags []Tag
)

// NumTags is the size of the tag dictionary.
const NumTags = 400

func init() {
	for i, n := range tagClassNames {
		TagClasses = append(TagClasses, TagClass{ID: i, Name: n, Parent: tagClassParents[i]})
	}
	for i := 0; i < NumTags; i++ {
		stem := tagStems[i%len(tagStems)]
		name := stem
		if gen := i / len(tagStems); gen > 0 {
			name = stem + "_" + strconv.Itoa(gen)
		}
		// Spread tags over classes deterministically, biased toward
		// MusicalArtist for the head (popular artists, per Table 1).
		class := 3
		if i >= 24 {
			class = i % len(TagClasses)
		}
		Tags = append(Tags, Tag{ID: i, Name: name, Class: class})
	}
}

// tagMeanFrac is the skew of the shared interest distribution.
const tagMeanFrac = 0.12

// TagView returns the country-ordered tag dictionary: a rotation of the
// global popularity order so different countries prefer different (but
// overlapping, still skewed) tag heads.
func TagView(country int) []int {
	rot := (country * 17) % NumTags
	out := make([]int, NumTags)
	for i := range out {
		out[i] = (i + rot) % NumTags
	}
	return out
}

// InterestTag draws one interest tag ID for a person in the given country.
func InterestTag(r *xrand.Rand, country int) int {
	rot := (country * 17) % NumTags
	return (r.SkewedIndex(NumTags, tagMeanFrac) + rot) % NumTags
}

// Interests draws a set of k distinct interest tags for a country.
func Interests(r *xrand.Rand, country, k int) []int {
	if k > NumTags {
		k = NumTags
	}
	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for len(out) < k {
		t := InterestTag(r, country)
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// TagsOfClass returns all tag IDs whose class is c or a descendant of c.
func TagsOfClass(c int) []int {
	inSub := make(map[int]bool)
	inSub[c] = true
	// The ontology is small; fixed-point over parent links.
	for changed := true; changed; {
		changed = false
		for _, tc := range TagClasses {
			if !inSub[tc.ID] && tc.Parent >= 0 && inSub[tc.Parent] {
				inSub[tc.ID] = true
				changed = true
			}
		}
	}
	var out []int
	for _, t := range Tags {
		if inSub[t.Class] {
			out = append(out, t.ID)
		}
	}
	return out
}
