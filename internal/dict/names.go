package dict

import "ldbcsnb/internal/xrand"

// First- and last-name dictionaries. Per Table 1, (person.location,
// person.gender) determines the first-name distribution and
// person.location the last-name distribution. Per §2.1 the distribution
// shape is the same everywhere — skewed — and only the value order changes:
// "there are Germans with Chinese names, but these are infrequent".
//
// Realisation: for a given country the ordered dictionary view is
//
//	[country-typical names..., generic pool rotated by country...]
//
// and the generator draws an index from the shared exponential shape, so
// typical names dominate but any name remains possible.

// typicalFirst maps a country name to its gender-split typical first names.
// Germany and China match the paper's Table 2 exactly.
var typicalFirst = map[string][2][]string{
	"Germany": {
		{"Karl", "Hans", "Wolfgang", "Fritz", "Rudolf", "Walter", "Franz", "Paul", "Otto", "Wilhelm"},
		{"Anna", "Ursula", "Monika", "Petra", "Sabine", "Renate", "Helga", "Karin", "Brigitte", "Ingrid"},
	},
	"China": {
		{"Yang", "Chen", "Wei", "Lei", "Jun", "Jie", "Li", "Hao", "Lin", "Peng"},
		{"Yan", "Fang", "Na", "Xiu", "Min", "Jing", "Ying", "Hua", "Juan", "Mei"},
	},
	"India": {
		{"Rahul", "Amit", "Raj", "Sanjay", "Vijay", "Arjun", "Ravi", "Anil", "Deepak", "Suresh"},
		{"Priya", "Anjali", "Pooja", "Neha", "Sunita", "Kavita", "Asha", "Rekha", "Geeta", "Lata"},
	},
	"United_States": {
		{"James", "John", "Robert", "Michael", "William", "David", "Richard", "Joseph", "Thomas", "Charles"},
		{"Mary", "Patricia", "Jennifer", "Linda", "Elizabeth", "Barbara", "Susan", "Jessica", "Sarah", "Karen"},
	},
	"France": {
		{"Jean", "Pierre", "Michel", "Andre", "Philippe", "Rene", "Louis", "Alain", "Jacques", "Bernard"},
		{"Marie", "Jeanne", "Francoise", "Monique", "Catherine", "Nathalie", "Isabelle", "Jacqueline", "Anne", "Sylvie"},
	},
	"Russia": {
		{"Aleksandr", "Sergei", "Vladimir", "Andrei", "Dmitri", "Ivan", "Mikhail", "Nikolai", "Alexei", "Pavel"},
		{"Elena", "Olga", "Natalia", "Tatiana", "Irina", "Svetlana", "Anna", "Maria", "Ekaterina", "Galina"},
	},
	"Japan": {
		{"Hiroshi", "Takashi", "Kenji", "Akira", "Satoshi", "Yuki", "Daiki", "Kaito", "Ren", "Sota"},
		{"Yuko", "Keiko", "Akiko", "Sakura", "Yui", "Hina", "Aoi", "Rin", "Mio", "Saki"},
	},
	"Brazil": {
		{"Jose", "Joao", "Antonio", "Francisco", "Carlos", "Paulo", "Pedro", "Lucas", "Luiz", "Marcos"},
		{"Maria", "Ana", "Francisca", "Antonia", "Adriana", "Juliana", "Marcia", "Fernanda", "Patricia", "Aline"},
	},
}

// genericFirst is the shared tail pool; index order rotates per country.
var genericFirst = [2][]string{
	{
		"Adam", "Alex", "Ben", "Carlos", "Daniel", "Eric", "Felipe", "George",
		"Henry", "Igor", "Jack", "Kevin", "Leo", "Martin", "Nathan", "Oscar",
		"Peter", "Quentin", "Ryan", "Samuel", "Tomas", "Umar", "Victor",
		"Walid", "Xavier", "Yusuf", "Zane", "Ali", "Bruno", "Cem", "Dario",
		"Emil", "Farid", "Gustav", "Hasan", "Ilya", "Jonas", "Khalid",
	},
	{
		"Alice", "Bella", "Clara", "Diana", "Emma", "Fiona", "Grace", "Hannah",
		"Iris", "Julia", "Kira", "Lena", "Mia", "Nora", "Olivia", "Paula",
		"Queenie", "Rosa", "Sofia", "Tara", "Uma", "Vera", "Wendy", "Xenia",
		"Yara", "Zoe", "Aisha", "Beatriz", "Carmen", "Dilara", "Elif",
		"Fatima", "Gina", "Hiba", "Ines", "Jana", "Katya", "Leila",
	},
}

var typicalLast = map[string][]string{
	"Germany":        {"Mueller", "Schmidt", "Schneider", "Fischer", "Weber", "Meyer", "Wagner", "Becker", "Schulz", "Hoffmann"},
	"China":          {"Wang", "Li", "Zhang", "Liu", "Chen", "Yang", "Huang", "Zhao", "Wu", "Zhou"},
	"India":          {"Sharma", "Singh", "Kumar", "Patel", "Gupta", "Reddy", "Mehta", "Joshi", "Nair", "Rao"},
	"United_States":  {"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis", "Rodriguez", "Martinez"},
	"France":         {"Martin", "Bernard", "Dubois", "Thomas", "Robert", "Richard", "Petit", "Durand", "Leroy", "Moreau"},
	"Russia":         {"Ivanov", "Smirnov", "Kuznetsov", "Popov", "Vasiliev", "Petrov", "Sokolov", "Mikhailov", "Novikov", "Fedorov"},
	"Japan":          {"Sato", "Suzuki", "Takahashi", "Tanaka", "Watanabe", "Ito", "Yamamoto", "Nakamura", "Kobayashi", "Kato"},
	"Brazil":         {"Silva", "Santos", "Oliveira", "Souza", "Lima", "Pereira", "Ferreira", "Costa", "Rodrigues", "Almeida"},
	"United_Kingdom": {"Taylor", "Wilson", "Evans", "Thompson", "Walker", "White", "Roberts", "Green", "Hall", "Wood"},
}

var genericLast = []string{
	"Abbas", "Berg", "Castro", "Dietrich", "Eriksen", "Farkas", "Gomez",
	"Haddad", "Ibarra", "Jansen", "Koch", "Lund", "Mason", "Novak", "Okafor",
	"Pavlov", "Quinn", "Rossi", "Stein", "Tran", "Ueda", "Vargas", "Weiss",
	"Xu", "Yilmaz", "Zimmer", "Andersen", "Bauer", "Calvo", "Dorn",
}

// Gender values.
const (
	GenderMale   = 0
	GenderFemale = 1
)

// firstNameMeanFrac controls the skew of the shared name distribution: the
// expected draw sits well inside the typical head.
const firstNameMeanFrac = 0.18

// FirstNameView returns the ordered first-name dictionary for a country and
// gender: the country-typical head followed by the rotated generic pool.
func FirstNameView(country, gender int) []string {
	g := gender & 1
	pool := genericFirst[g]
	head := typicalFirst[Countries[country].Name][g]
	rot := Countries[country].NameRotate % len(pool)
	out := make([]string, 0, len(head)+len(pool))
	out = append(out, head...)
	out = append(out, pool[rot:]...)
	out = append(out, pool[:rot]...)
	return out
}

// FirstName draws a first name for (country, gender) from the shared skewed
// shape over the country-ordered view.
func FirstName(r *xrand.Rand, country, gender int) string {
	v := FirstNameView(country, gender)
	return v[r.SkewedIndex(len(v), firstNameMeanFrac)]
}

// LastNameView returns the ordered last-name dictionary for a country.
func LastNameView(country int) []string {
	head := typicalLast[Countries[country].Name]
	rot := Countries[country].NameRotate % len(genericLast)
	out := make([]string, 0, len(head)+len(genericLast))
	out = append(out, head...)
	out = append(out, genericLast[rot:]...)
	out = append(out, genericLast[:rot]...)
	return out
}

// LastName draws a last name for a country.
func LastName(r *xrand.Rand, country int) string {
	v := LastNameView(country)
	return v[r.SkewedIndex(len(v), firstNameMeanFrac)]
}
