// Package driver implements the SNB workload driver (§4.2 of the paper):
// dependency-tracked parallel execution of the update stream, per-forum
// sequential execution, windowed execution, due-time pacing with an
// acceleration factor, and the latency/throughput metrics the benchmark
// reports.
package driver

import (
	"container/heap"
	"math"
	"sync"
)

// Dependency tracking (Figure 7). Every operation has a Due Time (T_DUE,
// simulation time). Operations in the Dependencies set are registered in
// the Initiated Times multiset (IT) before execution and moved to
// Completed Times (CT) after; Local/Global Dependency Services expose:
//
//	T_LI — lowest timestamp in IT (or last known when IT is empty);
//	       monotonically increasing;
//	T_LC — point behind which every op of this stream has completed;
//	T_GI — min of T_LI over streams;
//	T_GC — point behind which every op of every stream has completed.
//
// One refinement the paper describes in prose ("T_LI communicates that no
// lower value will be submitted in the future"): because each stream
// consumes its operations in due-time order, a stream whose IT is empty can
// advance its T_LI (and T_LC) to its current stream position. Without this,
// a stream containing no Dependencies operations would pin T_GI at zero and
// deadlock every dependent.

// int64Heap is a min-heap of timestamps.
type int64Heap []int64

func (h int64Heap) Len() int            { return len(h) }
func (h int64Heap) Less(i, j int) bool  { return h[i] < h[j] }
func (h int64Heap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *int64Heap) Push(x interface{}) { *h = append(*h, x.(int64)) }
func (h *int64Heap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// LDS is the Local Dependency Service of one update stream. Methods are
// safe for the owning stream plus concurrent TLI/TLC readers.
//
// Because the driver pre-partitions the update stream, each LDS may be
// given the *schedule* of its future Dependencies operations
// (SetSchedule). T_LI then reflects the earliest dependency this stream
// will ever initiate — not merely the earliest already initiated — which
// lets T_GC advance past the positions of streams that are between
// dependency operations. This realises the paper's statement that T_LI
// "communicates that no lower value will be submitted in the future"
// using the driver's full knowledge of its own streams.
type LDS struct {
	mu sync.Mutex
	// it holds initiated-but-not-completed due times; lazy deletion via
	// the removed multiset keeps removal O(log n) amortised.
	it      int64Heap
	removed map[int64]int
	itLen   int
	// ct holds completed times not yet folded into tlc, as a min-heap so
	// the consecutive prefix below TLI can be drained in order.
	ct  int64Heap
	tli int64
	tlc int64
	// schedule holds the due times of future Dependencies operations of
	// this stream, sorted ascending; schedIdx is the next unreached one.
	// hasSchedule distinguishes "announced empty schedule" (the stream
	// will never initiate dependencies — release it entirely) from "no
	// schedule given" (fall back to Figure 7 last-known semantics).
	schedule    []int64
	schedIdx    int
	hasSchedule bool
}

// NewLDS returns a service with both watermarks at zero.
func NewLDS() *LDS {
	return &LDS{removed: make(map[int64]int)}
}

// SetSchedule announces the due times of every Dependencies operation the
// stream will initiate, sorted ascending. Call before the stream starts.
func (l *LDS) SetSchedule(dues []int64) {
	l.mu.Lock()
	l.schedule = dues
	l.schedIdx = 0
	l.hasSchedule = true
	l.refreshLocked()
	l.mu.Unlock()
}

// Initiate registers a Dependencies operation about to execute. Due times
// must be non-decreasing per stream (streams consume ops in due order).
func (l *LDS) Initiate(due int64) {
	l.mu.Lock()
	heap.Push(&l.it, due)
	l.itLen++
	l.refreshLocked()
	l.mu.Unlock()
}

// Complete registers a Dependencies operation that finished executing.
func (l *LDS) Complete(due int64) {
	l.mu.Lock()
	l.removed[due]++
	l.itLen--
	heap.Push(&l.ct, due)
	// Advance past this dependency in the announced schedule.
	for l.schedIdx < len(l.schedule) && l.schedule[l.schedIdx] <= due {
		l.schedIdx++
	}
	l.refreshLocked()
	l.mu.Unlock()
}

// Progress tells the service the stream has consumed all operations with
// due time <= due (call it after executing a non-dependency operation, or
// when the stream ends). With an empty IT this advances both watermarks.
func (l *LDS) Progress(due int64) {
	l.mu.Lock()
	if l.itLen == 0 {
		if due > l.tli {
			l.tli = due
		}
		if due > l.tlc {
			l.tlc = due
		}
	}
	l.refreshLocked()
	l.mu.Unlock()
}

// Finish marks the stream as drained: no further operations will ever be
// submitted, releasing its hold on global progress.
func (l *LDS) Finish() {
	l.Progress(math.MaxInt64)
}

// refreshLocked recomputes TLI and TLC per Figure 7.
func (l *LDS) refreshLocked() {
	// Drop lazily removed heap heads.
	for len(l.it) > 0 {
		if c := l.removed[l.it[0]]; c > 0 {
			if c == 1 {
				delete(l.removed, l.it[0])
			} else {
				l.removed[l.it[0]] = c - 1
			}
			heap.Pop(&l.it)
			continue
		}
		break
	}
	// TLI = earliest dependency this stream still owes: the lowest
	// initiated-but-incomplete time, or — with a schedule — the next
	// dependency it will ever initiate. Monotonic.
	cand := int64(math.MaxInt64)
	if len(l.it) > 0 {
		cand = l.it[0]
	}
	if l.hasSchedule {
		if l.schedIdx < len(l.schedule) {
			if s := l.schedule[l.schedIdx]; s < cand {
				cand = s
			}
		}
	} else if len(l.it) == 0 {
		cand = l.tli // no lookahead: keep last known lowest
	}
	if cand != math.MaxInt64 && cand > l.tli {
		l.tli = cand
	}
	if l.hasSchedule && l.schedIdx >= len(l.schedule) && len(l.it) == 0 {
		// No dependencies remain: release the stream's hold entirely.
		l.tli = math.MaxInt64
	}
	// TLC: largest completed time c < TLI such that everything below c is
	// also complete. Because the stream consumes ops in due order, the
	// completed heap's consecutive prefix below TLI is exactly that.
	for len(l.ct) > 0 && l.ct[0] < l.tli {
		if l.ct[0] > l.tlc {
			l.tlc = l.ct[0]
		}
		heap.Pop(&l.ct)
	}
}

// TLI returns the Local Initiation Time.
func (l *LDS) TLI() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tli
}

// TLC returns the Local Completion Time.
func (l *LDS) TLC() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tlc
}

// Service is a dependency-watermark source the GDS can aggregate: an LDS,
// or another GDS — "the rationale for exposing T_GI is to make GDS
// composable ... enabling dependency tracking in a hierarchical/
// distributed setting" (§4.2). A Service promises that every dependency it
// will ever initiate has a due time >= TLI().
type Service interface {
	TLI() int64
}

// GDS is the Global Dependency Service: it aggregates Services exactly as
// an LDS aggregates operations.
type GDS struct {
	mu       sync.Mutex
	cond     *sync.Cond
	children []Service
	lds      []*LDS // non-nil entries when built with NewGDS
	tgc      int64
	tgi      int64
}

// NewGDS builds the global service over n fresh LDS instances.
func NewGDS(n int) *GDS {
	g := &GDS{}
	g.cond = sync.NewCond(&g.mu)
	for i := 0; i < n; i++ {
		l := NewLDS()
		g.lds = append(g.lds, l)
		g.children = append(g.children, l)
	}
	return g
}

// NewGDSOver builds a hierarchical service over existing children (LDS or
// GDS instances).
func NewGDSOver(children ...Service) *GDS {
	g := &GDS{children: children}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Stream returns the LDS of stream i (only for services built by NewGDS).
func (g *GDS) Stream(i int) *LDS { return g.lds[i] }

// TLI exposes the Global Initiation Time under the Service interface, so
// a GDS can be a child of another GDS.
func (g *GDS) TLI() int64 { return g.TGI() }

// SetFloor raises every watermark to at least t: dependencies older than t
// (e.g. bulk-loaded entities) count as completed.
func (g *GDS) SetFloor(t int64) {
	for _, l := range g.lds {
		l.Progress(t)
	}
	g.mu.Lock()
	if t > g.tgi {
		g.tgi = t
	}
	if t > g.tgc {
		g.tgc = t
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// Refresh recomputes TGI/TGC from the streams and wakes waiting
// dependents when TGC advanced. Streams call it after every LDS change.
//
// TGC is computed as TGI-1, which is sharper than Figure 7's
// max(TLC < TGI) and sound under the same assumptions the paper states:
// IT additions are monotonically increasing per stream (and, with
// SetSchedule, TLI already reflects every future dependency), so any
// dependency operation that is incomplete — pending or not yet submitted —
// has a due time >= its stream's TLI >= TGI. Everything strictly below TGI
// has therefore completed. The sharper bound matters for windowed
// execution, whose wait targets fall *between* dependency due times and
// would never be reached by a completed-times maximum.
func (g *GDS) Refresh() {
	g.mu.Lock()
	tgi := int64(math.MaxInt64)
	for _, c := range g.children {
		if v := c.TLI(); v < tgi {
			tgi = v
		}
	}
	if tgi > g.tgi {
		g.tgi = tgi
	}
	if g.tgi-1 > g.tgc {
		g.tgc = g.tgi - 1
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// TGI returns the Global Initiation Time.
func (g *GDS) TGI() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.tgi
}

// TGC returns the Global Completion Time.
func (g *GDS) TGC() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.tgc
}

// WaitUntil blocks until TGC >= dep (the Figure 8 dependent wait).
func (g *GDS) WaitUntil(dep int64) {
	g.mu.Lock()
	for g.tgc < dep {
		g.cond.Wait()
	}
	g.mu.Unlock()
}
