package driver

import (
	"context"
	"sync"
	"time"

	"ldbcsnb/internal/bi"
	"ldbcsnb/internal/exec"
	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/params"
	"ldbcsnb/internal/schema"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/workload"
	"ldbcsnb/internal/xrand"
)

// Mixed-workload execution: the full Interactive benchmark of §4 — update
// streams with dependency tracking, complex read-only queries at the
// Table 4 relative frequencies with curated parameters, and the short-read
// random walk seeded by complex-query results.
//
// Read execution is registry-driven: the driver walks the schedule and
// executes workload.Complex[q-1] (bind parameters, run, extract walk
// seeds) against whichever read path the configuration selects. There is
// no per-query dispatch in this package.

// Read-path selection for MixedConfig.ReadPath.
const (
	// ReadPathView runs all read-only queries on frozen snapshot views —
	// the Interactive hot path (lock-free, invalidated by commits).
	ReadPathView = "view"
	// ReadPathTxn runs all read-only queries in MVCC read transactions —
	// the baseline the view path is benchmarked against.
	ReadPathTxn = "txn"
)

// MixedConfig parameterises a full Interactive run.
type MixedConfig struct {
	Store   *store.Store
	Dataset *schema.Dataset // full dataset; used for parameter curation
	Updates []schema.Update
	Streams int
	// ReadClients is the number of concurrent read-query executors.
	ReadClients int
	// ComplexPerType caps how many executions of each complex query
	// template the run performs (0 = derive from Table 4 frequencies and
	// the update count).
	ComplexPerType int
	// Seed drives parameter selection and the short-read walk.
	Seed uint64
	// Mix is the short-read random walk configuration.
	Mix workload.ShortReadMix
	// UniformParams switches Q5 parameter selection from curated to
	// uniform (the Figure 5(b) ablation).
	UniformParams bool
	// ReadPath selects the read path for every query and short read:
	// ReadPathView (default) or ReadPathTxn. Both paths execute the same
	// generic query implementations.
	ReadPath string
	// BIClients is the number of concurrent BI analyst clients cycling
	// the eight BI queries (bi.Registry) alongside the Interactive mix;
	// 0 disables the BI lane. BI clients follow ReadPath: MVCC
	// transactions on the txn path, frozen snapshot views otherwise.
	BIClients int
	// BIWorkers is the morsel fan-out of each BI execution on the view
	// path: 1 runs the serial view instantiation, anything else the
	// morsel-parallel path (0 = GOMAXPROCS workers). Ignored on the txn
	// path, which always runs serially.
	BIWorkers int
	// BIRounds is how many passes over the eight BI templates each BI
	// client makes (0 = 1).
	BIRounds int
	// Persist, when non-nil, is the durable handle of Store (snb-run
	// -data-dir): after the workload drains, the driver issues a WAL sync
	// barrier so every commit of the run is on disk, and snapshots the
	// durability counters into MixedReport.Persist. The store field of the
	// handle must be the same Store the run executes against.
	Persist *store.Persistent
	// WriteClients is the number of dedicated write-lane clients running
	// alongside the update streams: each issues WriteOps small insert
	// transactions back to back, timing Commit end to end (including the
	// group-commit durability wait when the store fsyncs on commit).
	// 0 disables the lane.
	WriteClients int
	// WriteOps is the number of commits each write client performs
	// (0 = 100).
	WriteOps int
	// Ctx, when non-nil, cancels the run: every lane (update streams, read
	// clients, BI clients, write clients) stops at its next operation
	// boundary once Ctx is done, and the report's Interrupted flag is set.
	// Cancellation never weakens durability — an update stream abandons
	// its remaining schedule but finishes the operation in flight, so
	// "Commit returned ⇒ durable" holds for everything the report counts
	// (snb-run's SIGINT/SIGTERM handler relies on this to shut down
	// cleanly mid-run).
	Ctx context.Context
}

// MixedReport is the outcome of a mixed run: the per-query latency tables
// of the paper's §5 evaluation.
type MixedReport struct {
	Complex [workload.NumComplexQueries]LatencyStats // Table 6
	Short   [workload.NumShortQueries]LatencyStats   // Table 7
	Update  [schema.NumUpdateTypes]LatencyStats      // Table 9
	// BI is the analyst lane's per-query latency bucket (BI1-BI8),
	// populated when MixedConfig.BIClients > 0. BI latencies are kept
	// apart from Complex: a BI execution is a graph-wide scan orders of
	// magnitude above the Interactive point queries, and folding the two
	// together would drown the Table 6 numbers.
	BI [bi.NumQueries]LatencyStats
	// Commit is the write lane's end-to-end commit latency bucket
	// (WriteClients > 0): the short critical section plus, in
	// fsync-on-commit mode, the wait for the group-commit batch holding the
	// transaction to reach disk. Update-stream latencies stay in Update;
	// this bucket isolates pure commit cost from dependency-wait time.
	Commit LatencyStats
	Wall   time.Duration
	// ViewAcquire aggregates the cost of every frozen-view acquisition the
	// read clients performed (view path only; twice per iteration — before
	// the complex query and again before the short-read walk, so the walk
	// serves the freshest epoch). ViewRefresh and ViewRebuild split the
	// same samples by the maintenance work the acquisition performed:
	// cache hits and incremental delta refreshes land in ViewRefresh, full
	// recompactions (era bumps) in ViewRebuild — the residual rebuild tax
	// of the read path.
	ViewAcquire LatencyStats
	ViewRefresh LatencyStats
	ViewRebuild LatencyStats
	// Throughput is total executed operations per second (the §5 metric
	// alongside the acceleration factor).
	Throughput float64
	Errors     int
	// Persist carries the durability counters of the run (WAL bytes and
	// rotations, checkpoints, truncated segments) and FinalSync the cost
	// of the end-of-run fsync barrier; both only populated when
	// MixedConfig.Persist is set. A barrier failure counts into Errors
	// and is carried in FinalSyncErr so callers can report WHY the run
	// failed, not just that it did.
	Persist      *store.PersistStats
	FinalSync    time.Duration
	FinalSyncErr error
	// Interrupted reports that MixedConfig.Ctx was canceled before the
	// workload drained: the latency tables cover only the operations that
	// ran, and every counted commit is still durable.
	Interrupted bool
}

// numQ11Countries bounds the Q11 country parameter draw (the dict's
// country table size used by the generator).
const numQ11Countries = 25

// writeLaneBucket is the minute-bucket floor for write-lane entity IDs —
// far above any creation date the generator emits (~2^25 minutes since
// epoch), so lane inserts never collide with dataset or update-stream
// entities.
const writeLaneBucket = 1 << 32

// prepareParams runs the parameter-curation pipeline (§4.1) over the
// dataset: PC tables per query template, greedy window selection, plus
// value pools for the non-person parameters.
func prepareParams(cfg *MixedConfig) *workload.ParamPools {
	r := xrand.New(cfg.Seed, xrand.PurposeShortRead, 1)
	pp := &workload.ParamPools{
		CountryX:     0,
		CountryY:     1,
		NumCountries: numQ11Countries,
		MaxDate:      simEndOf(cfg.Dataset),
		WindowMillis: 120 * 24 * 3600 * 1000,
		BeforeYear:   2013,
	}
	pp.StartDate = pp.MaxDate - pp.WindowMillis

	q9 := params.BuildQ9Table(cfg.Dataset)
	for _, p := range q9.Curate(40) {
		pp.Persons = append(pp.Persons, ids.ID(p))
	}
	q5 := params.BuildQ5Table(cfg.Dataset)
	var sel []uint64
	if cfg.UniformParams {
		sel = q5.UniformSample(40, r.Uint64)
	} else {
		sel = q5.Curate(40)
	}
	for _, p := range sel {
		pp.PersonsQ5 = append(pp.PersonsQ5, ids.ID(p))
	}

	seen := map[string]bool{}
	for i := range cfg.Dataset.Persons {
		n := cfg.Dataset.Persons[i].FirstName
		if !seen[n] {
			seen[n] = true
			pp.FirstNames = append(pp.FirstNames, n)
		}
	}
	for i := 0; i < 40; i++ {
		pp.Tags = append(pp.Tags, schema.TagNodeID(r.Intn(400)))
		pp.TagClasses = append(pp.TagClasses, ids.DimensionID(ids.KindTagClass, uint32(r.Intn(20))))
	}
	return pp
}

// PreparePools runs the parameter-curation pipeline (§4.1) over a dataset
// and returns the pools, for callers outside the mixed run — the serving
// layer binds per-request parameters from the same curated pools the
// in-process driver uses, so served and in-process executions draw from
// one distribution.
func PreparePools(ds *schema.Dataset, seed uint64, uniform bool) *workload.ParamPools {
	cfg := MixedConfig{Dataset: ds, Seed: seed, UniformParams: uniform}
	return prepareParams(&cfg)
}

func simEndOf(d *schema.Dataset) int64 {
	var end int64
	for i := range d.Posts {
		if d.Posts[i].CreationDate > end {
			end = d.Posts[i].CreationDate
		}
	}
	return end
}

// RunMixed executes the full Interactive workload and reports per-query
// latencies and throughput.
func RunMixed(cfg MixedConfig) *MixedReport {
	if cfg.Streams <= 0 {
		cfg.Streams = 1
	}
	if cfg.ReadClients <= 0 {
		cfg.ReadClients = 1
	}
	if cfg.Mix.P == 0 {
		cfg.Mix = workload.DefaultShortReadMix
	}
	switch cfg.ReadPath {
	case "":
		cfg.ReadPath = ReadPathView
	case ReadPathView, ReadPathTxn:
	default:
		panic("driver: unknown MixedConfig.ReadPath " + cfg.ReadPath)
	}
	qp := prepareParams(&cfg)
	rep := &MixedReport{}
	var mu sync.Mutex // guards rep during concurrent execution

	// Cancellation plumbing: every lane polls canceled() at its operation
	// boundaries. A nil Ctx yields a nil done channel, which never selects
	// — the poll is then one nil comparison.
	var done <-chan struct{}
	if cfg.Ctx != nil {
		done = cfg.Ctx.Done()
	}
	canceled := func() bool {
		select {
		case <-done:
			mu.Lock()
			rep.Interrupted = true
			mu.Unlock()
			return true
		default:
			return false
		}
	}

	start := time.Now()

	// Update streams run exactly as in Run, while read clients interleave.
	var wg sync.WaitGroup
	if len(cfg.Updates) > 0 {
		streams := Partition(cfg.Updates, cfg.Streams)
		conn := &StoreConnector{Store: cfg.Store}
		gds := NewGDS(len(streams))
		simStart := cfg.Updates[0].DueTime
		gds.SetFloor(simStart - 1)
		for i, s := range streams {
			gds.Stream(i).SetSchedule(dependencySchedule(s))
		}
		gds.Refresh()
		for i := range streams {
			wg.Add(1)
			go func(idx int) {
				defer wg.Done()
				lds := gds.Stream(idx)
				for j := range streams[idx] {
					// A canceled stream abandons its remaining schedule but
					// never an operation in flight; the lds.Finish below
					// releases its dependency hold so sibling streams parked
					// in WaitUntil drain instead of deadlocking.
					if canceled() {
						break
					}
					op := &streams[idx][j]
					isDep := op.Type == schema.UpdateAddPerson
					if isDep {
						lds.Initiate(op.DueTime)
						gds.Refresh()
					}
					if op.DepTime > 0 {
						gds.WaitUntil(op.DepTime)
					}
					t0 := time.Now()
					err := conn.Execute(op)
					lat := time.Since(t0)
					mu.Lock()
					if err != nil {
						rep.Errors++
					} else {
						rep.Update[op.Type-1].Add(lat)
					}
					mu.Unlock()
					if isDep {
						lds.Complete(op.DueTime)
						gds.Refresh()
					}
				}
				lds.Finish()
				gds.Refresh()
			}(i)
		}
	}

	// Read clients: cycle the complex queries at Table 4 proportions.
	// Within one pass each query type runs once per its proportion slot;
	// cheaper (more frequent) queries therefore execute more often, like
	// the real mix.
	//
	// Every query and the short-read walk run through the single generic
	// Reader implementation; cfg.ReadPath picks the instantiation. On the
	// view path each iteration acquires the store's frozen snapshot view
	// twice — once for the complex query and once more before the
	// short-read walk, so the walk observes commits that landed while the
	// complex query ran instead of serving a stale epoch for the whole
	// iteration. Each acquisition runs inside its own timed region
	// recorded in rep.ViewAcquire and split into rep.ViewRefresh /
	// rep.ViewRebuild by the maintenance event it performed — per-query
	// latencies stay comparable while the refresh-vs-rebuild tax stays
	// visible in the report. On the txn path the iteration runs inside one
	// MVCC read-only transaction instead.
	perType := cfg.ComplexPerType
	if perType == 0 {
		perType = 5
	}
	n := len(cfg.Dataset.Persons)
	schedule := buildSchedule(perType, n)
	readTxn := cfg.ReadPath == ReadPathTxn
	for c := 0; c < cfg.ReadClients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			r := xrand.New(cfg.Seed, xrand.PurposeShortRead, uint64(client)+100)
			sc := workload.NewScratch()
			timer := func(kind int, d time.Duration) {
				mu.Lock()
				rep.Short[kind].Add(d)
				mu.Unlock()
			}
			for si := client; si < len(schedule); si += cfg.ReadClients {
				if canceled() {
					break
				}
				q := schedule[si]
				spec := &workload.Complex[q-1]
				p := spec.Bind(qp, r)
				if readTxn {
					cfg.Store.View(func(tx *store.Txn) {
						t0 := time.Now()
						res := spec.RunTxn(tx, sc, p)
						lat := time.Since(t0)
						mu.Lock()
						rep.Complex[q-1].Add(lat)
						mu.Unlock()
						workload.RunShortReadChain(tx, cfg.Mix, r, seedPersons(res, p), res.Messages, timer)
					})
					continue
				}
				tAcq := time.Now()
				v, ev := cfg.Store.AcquireView()
				acq := time.Since(tAcq)
				t0 := time.Now()
				res := spec.RunView(v, sc, p)
				lat := time.Since(t0)
				mu.Lock()
				addAcquire(rep, ev, acq)
				rep.Complex[q-1].Add(lat)
				mu.Unlock()
				// Short-read random walk seeded by the results (§4). The walk
				// re-acquires the view so it serves the freshest epoch —
				// with delta maintenance the re-acquisition is a pointer
				// load or a per-delta refresh, not a rebuild.
				tAcq = time.Now()
				v, ev = cfg.Store.AcquireView()
				acq = time.Since(tAcq)
				mu.Lock()
				addAcquire(rep, ev, acq)
				mu.Unlock()
				workload.RunShortReadChain(v, cfg.Mix, r, seedPersons(res, p), res.Messages, timer)
			}
		}(c)
	}
	// BI analyst lane: each client cycles the eight BI templates through
	// bi.Registry — bind parameters from the same curated pools, execute
	// on the configured read path, record into the lane's own latency
	// bucket. On the view path each execution acquires the current frozen
	// view (timed into ViewAcquire like the Interactive clients' reads)
	// and runs either the serial view instantiation (BIWorkers == 1) or
	// the morsel-parallel executor.
	par := exec.Config{Workers: cfg.BIWorkers}
	biRounds := cfg.BIRounds
	if biRounds <= 0 {
		biRounds = 1
	}
	// Dedicated write lane: WriteClients goroutines issue small insert
	// transactions back to back, each a single-person create with an ID far
	// above the generated dataset's minute buckets (no collisions with
	// update-stream entities). The timed region is Begin..Commit, so in
	// fsync-on-commit mode the bucket captures the full group-commit wait —
	// the metric the commit-pipeline split exists to improve.
	writeOps := cfg.WriteOps
	if writeOps <= 0 {
		writeOps = 100
	}
	for c := 0; c < cfg.WriteClients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			for op := 0; op < writeOps; op++ {
				if canceled() {
					break
				}
				idx := client*writeOps + op
				id := ids.Compose(ids.KindPerson, writeLaneBucket+int64(idx>>16), uint32(idx&0xffff))
				t0 := time.Now()
				tx := cfg.Store.Begin()
				err := tx.CreateNode(id, store.Props{
					{Key: store.PropFirstName, Val: store.String("writer")},
					{Key: store.PropCreationDate, Val: store.Int64(int64(idx))},
				})
				if err == nil {
					err = tx.Commit()
				} else {
					tx.Abort()
				}
				lat := time.Since(t0)
				mu.Lock()
				if err != nil {
					rep.Errors++
				} else {
					rep.Commit.Add(lat)
				}
				mu.Unlock()
			}
		}(c)
	}
	for c := 0; c < cfg.BIClients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			r := xrand.New(cfg.Seed, xrand.PurposeShortRead, uint64(client)+500)
			sc := workload.NewScratch()
			for round := 0; round < biRounds; round++ {
				for q := range bi.Registry {
					if canceled() {
						return
					}
					spec := &bi.Registry[q]
					p := spec.Bind(qp, r)
					if readTxn {
						cfg.Store.View(func(tx *store.Txn) {
							t0 := time.Now()
							spec.RunTxn(tx, sc, p)
							lat := time.Since(t0)
							mu.Lock()
							rep.BI[q].Add(lat)
							mu.Unlock()
						})
						continue
					}
					tAcq := time.Now()
					v, ev := cfg.Store.AcquireView()
					acq := time.Since(tAcq)
					t0 := time.Now()
					if cfg.BIWorkers == 1 {
						spec.RunView(v, sc, p)
					} else {
						spec.RunPar(v, par, p)
					}
					lat := time.Since(t0)
					mu.Lock()
					addAcquire(rep, ev, acq)
					rep.BI[q].Add(lat)
					mu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()

	// Durability barrier: a mixed run on a durable store ends with every
	// commit on disk, and the run's wall time owns that cost (fsync is
	// part of serving updates durably, not an accounting afterthought).
	if cfg.Persist != nil {
		t0 := time.Now()
		if err := cfg.Persist.Sync(); err != nil {
			rep.Errors++
			rep.FinalSyncErr = err
		}
		rep.FinalSync = time.Since(t0)
		st := cfg.Persist.Stats()
		rep.Persist = &st
	}

	rep.Wall = time.Since(start)
	total := len(cfg.Updates) + rep.Commit.Count
	for i := range rep.Complex {
		total += rep.Complex[i].Count
	}
	for i := range rep.Short {
		total += rep.Short[i].Count
	}
	for i := range rep.BI {
		total += rep.BI[i].Count
	}
	if rep.Wall > 0 {
		rep.Throughput = float64(total) / rep.Wall.Seconds()
	}
	return rep
}

// addAcquire records one view acquisition under the report lock: the
// aggregate stat plus the refresh-vs-rebuild split by maintenance event.
func addAcquire(rep *MixedReport, ev store.ViewEvent, d time.Duration) {
	rep.ViewAcquire.Add(d)
	if ev == store.ViewRebuilt {
		rep.ViewRebuild.Add(d)
	} else {
		rep.ViewRefresh.Add(d)
	}
}

// seedPersons returns the walk's person seed pool: the query's result
// entities, falling back to the bound start person for queries that return
// none (Q4-Q6, Q13, Q14) or empty results.
func seedPersons(res workload.ComplexResult, p workload.ComplexParams) []ids.ID {
	if len(res.Persons) == 0 {
		return []ids.ID{p.Person}
	}
	return res.Persons
}

// buildSchedule expands the Table 4 mix into a concrete query sequence:
// query q appears inversely proportional to its scaled frequency (a query
// that runs once per 132 updates appears ~4x more often than one that runs
// once per 550).
func buildSchedule(perType, persons int) []int {
	minFreq := workload.ScaledFrequency(1, persons)
	for q := 2; q <= workload.NumComplexQueries; q++ {
		if f := workload.ScaledFrequency(q, persons); f < minFreq {
			minFreq = f
		}
	}
	var schedule []int
	for rep := 0; rep < perType; rep++ {
		for q := 1; q <= workload.NumComplexQueries; q++ {
			// Weight ∝ minFreq/freq, at least one slot per pass.
			weight := 1
			if f := workload.ScaledFrequency(q, persons); f > 0 {
				weight = 1 + (8*minFreq)/f
			}
			for w := 0; w < weight; w++ {
				schedule = append(schedule, q)
			}
		}
	}
	return schedule
}
