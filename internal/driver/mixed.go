package driver

import (
	"sync"
	"time"

	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/params"
	"ldbcsnb/internal/schema"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/workload"
	"ldbcsnb/internal/xrand"
)

// Mixed-workload execution: the full Interactive benchmark of §4 — update
// streams with dependency tracking, complex read-only queries at the
// Table 4 relative frequencies with curated parameters, and the short-read
// random walk seeded by complex-query results.

// MixedConfig parameterises a full Interactive run.
type MixedConfig struct {
	Store   *store.Store
	Dataset *schema.Dataset // full dataset; used for parameter curation
	Updates []schema.Update
	Streams int
	// ReadClients is the number of concurrent read-query executors.
	ReadClients int
	// ComplexPerType caps how many executions of each complex query
	// template the run performs (0 = derive from Table 4 frequencies and
	// the update count).
	ComplexPerType int
	// Seed drives parameter selection and the short-read walk.
	Seed uint64
	// Mix is the short-read random walk configuration.
	Mix workload.ShortReadMix
	// UniformParams switches Q5 parameter selection from curated to
	// uniform (the Figure 5(b) ablation).
	UniformParams bool
}

// MixedReport is the outcome of a mixed run: the per-query latency tables
// of the paper's §5 evaluation.
type MixedReport struct {
	Complex [workload.NumComplexQueries]LatencyStats // Table 6
	Short   [7]LatencyStats                          // Table 7
	Update  [schema.NumUpdateTypes]LatencyStats      // Table 9
	Wall    time.Duration
	// ViewAcquire records the cost of acquiring the frozen snapshot view
	// once per read iteration. It is usually a pointer load; after an
	// interleaved update commit it includes a full view rebuild, so this
	// stat is where the read path's rebuild tax shows up.
	ViewAcquire LatencyStats
	// Throughput is total executed operations per second (the §5 metric
	// alongside the acceleration factor).
	Throughput float64
	Errors     int
}

// queryParams holds curated parameter pools for the complex queries.
type queryParams struct {
	persons     []ids.ID // curated person IDs (by Q9 cost profile)
	personsQ5   []ids.ID // curated by the Q5 profile (or uniform)
	firstNames  []string
	tags        []ids.ID
	tagClasses  []ids.ID
	countryA    int
	countryB    int
	maxDate     int64
	midDate     int64
	windowMilli int64
}

// prepareParams runs the parameter-curation pipeline (§4.1) over the
// dataset: PC tables per query template, greedy window selection, plus
// value pools for the non-person parameters.
func prepareParams(cfg *MixedConfig) *queryParams {
	r := xrand.New(cfg.Seed, xrand.PurposeShortRead, 1)
	qp := &queryParams{
		countryA:    0,
		countryB:    1,
		maxDate:     simEndOf(cfg.Dataset),
		windowMilli: 120 * 24 * 3600 * 1000,
	}
	qp.midDate = qp.maxDate - qp.windowMilli

	q9 := params.BuildQ9Table(cfg.Dataset)
	for _, p := range q9.Curate(40) {
		qp.persons = append(qp.persons, ids.ID(p))
	}
	q5 := params.BuildQ5Table(cfg.Dataset)
	var sel []uint64
	if cfg.UniformParams {
		sel = q5.UniformSample(40, r.Uint64)
	} else {
		sel = q5.Curate(40)
	}
	for _, p := range sel {
		qp.personsQ5 = append(qp.personsQ5, ids.ID(p))
	}

	seen := map[string]bool{}
	for i := range cfg.Dataset.Persons {
		n := cfg.Dataset.Persons[i].FirstName
		if !seen[n] {
			seen[n] = true
			qp.firstNames = append(qp.firstNames, n)
		}
	}
	for i := 0; i < 40; i++ {
		qp.tags = append(qp.tags, schema.TagNodeID(r.Intn(400)))
		qp.tagClasses = append(qp.tagClasses, ids.DimensionID(ids.KindTagClass, uint32(r.Intn(20))))
	}
	return qp
}

func simEndOf(d *schema.Dataset) int64 {
	var end int64
	for i := range d.Posts {
		if d.Posts[i].CreationDate > end {
			end = d.Posts[i].CreationDate
		}
	}
	return end
}

// RunMixed executes the full Interactive workload and reports per-query
// latencies and throughput.
func RunMixed(cfg MixedConfig) *MixedReport {
	if cfg.Streams <= 0 {
		cfg.Streams = 1
	}
	if cfg.ReadClients <= 0 {
		cfg.ReadClients = 1
	}
	if cfg.Mix.P == 0 {
		cfg.Mix = workload.DefaultShortReadMix
	}
	qp := prepareParams(&cfg)
	rep := &MixedReport{}
	var mu sync.Mutex // guards rep during concurrent execution

	start := time.Now()

	// Update streams run exactly as in Run, while read clients interleave.
	var wg sync.WaitGroup
	if len(cfg.Updates) > 0 {
		streams := Partition(cfg.Updates, cfg.Streams)
		conn := &StoreConnector{Store: cfg.Store}
		gds := NewGDS(len(streams))
		simStart := cfg.Updates[0].DueTime
		gds.SetFloor(simStart - 1)
		for i, s := range streams {
			gds.Stream(i).SetSchedule(dependencySchedule(s))
		}
		gds.Refresh()
		for i := range streams {
			wg.Add(1)
			go func(idx int) {
				defer wg.Done()
				lds := gds.Stream(idx)
				for j := range streams[idx] {
					op := &streams[idx][j]
					isDep := op.Type == schema.UpdateAddPerson
					if isDep {
						lds.Initiate(op.DueTime)
						gds.Refresh()
					}
					if op.DepTime > 0 {
						gds.WaitUntil(op.DepTime)
					}
					t0 := time.Now()
					err := conn.Execute(op)
					lat := time.Since(t0)
					mu.Lock()
					if err != nil {
						rep.Errors++
					} else {
						rep.Update[op.Type-1].Add(lat)
					}
					mu.Unlock()
					if isDep {
						lds.Complete(op.DueTime)
						gds.Refresh()
					}
				}
				lds.Finish()
				gds.Refresh()
			}(i)
		}
	}

	// Read clients: cycle the complex queries at Table 4 proportions.
	// Within one pass each query type runs once per its proportion slot;
	// cheaper (more frequent) queries therefore execute more often, like
	// the real mix.
	//
	// Read execution runs on the store's frozen snapshot views wherever a
	// view formulation exists (the hot 2-3-hop expansions and the whole
	// short-read walk): once built, a view is lock-free to read. Commits
	// from the update streams invalidate it, so under a dense update
	// stream readers periodically pay a full rebuild (serialised, and
	// taking shard read locks while it runs). Each iteration acquires
	// the view exactly once, inside its own timed region recorded in
	// rep.ViewAcquire, and reuses it for the complex query and the
	// short-read walk — per-query latencies stay comparable while the
	// rebuild tax remains visible in the report. Queries without a view
	// formulation fall back to an MVCC read transaction (the walk still
	// runs on the view).
	perType := cfg.ComplexPerType
	if perType == 0 {
		perType = 5
	}
	n := len(cfg.Dataset.Persons)
	schedule := buildSchedule(perType, n)
	for c := 0; c < cfg.ReadClients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			r := xrand.New(cfg.Seed, xrand.PurposeShortRead, uint64(client)+100)
			sc := workload.NewScratch()
			for si := client; si < len(schedule); si += cfg.ReadClients {
				q := schedule[si]
				tAcq := time.Now()
				v := cfg.Store.CurrentView()
				acq := time.Since(tAcq)
				var lat time.Duration
				var seedPersons, seedMessages []ids.ID
				if hasViewImpl(q) {
					t0 := time.Now()
					seedPersons, seedMessages = runComplexView(v, sc, q, qp, r)
					lat = time.Since(t0)
				} else {
					cfg.Store.View(func(tx *store.Txn) {
						t0 := time.Now()
						seedPersons, seedMessages = runComplex(tx, q, qp, r)
						lat = time.Since(t0)
					})
				}
				mu.Lock()
				rep.ViewAcquire.Add(acq)
				rep.Complex[q-1].Add(lat)
				mu.Unlock()
				// Short-read random walk seeded by the results (§4), on the
				// same view the iteration acquired.
				runShortWalk(v, cfg.Mix, r, seedPersons, seedMessages, rep, &mu)
			}
		}(c)
	}
	wg.Wait()

	rep.Wall = time.Since(start)
	total := len(cfg.Updates)
	for i := range rep.Complex {
		total += rep.Complex[i].Count
	}
	for i := range rep.Short {
		total += rep.Short[i].Count
	}
	if rep.Wall > 0 {
		rep.Throughput = float64(total) / rep.Wall.Seconds()
	}
	return rep
}

// buildSchedule expands the Table 4 mix into a concrete query sequence:
// query q appears inversely proportional to its scaled frequency (a query
// that runs once per 132 updates appears ~4x more often than one that runs
// once per 550).
func buildSchedule(perType, persons int) []int {
	minFreq := workload.ScaledFrequency(1, persons)
	for q := 2; q <= workload.NumComplexQueries; q++ {
		if f := workload.ScaledFrequency(q, persons); f < minFreq {
			minFreq = f
		}
	}
	var schedule []int
	for rep := 0; rep < perType; rep++ {
		for q := 1; q <= workload.NumComplexQueries; q++ {
			// Weight ∝ minFreq/freq, at least one slot per pass.
			weight := 1
			if f := workload.ScaledFrequency(q, persons); f > 0 {
				weight = 1 + (8*minFreq)/f
			}
			for w := 0; w < weight; w++ {
				schedule = append(schedule, q)
			}
		}
	}
	return schedule
}

// hasViewImpl reports whether complex query q has a frozen-view
// formulation (the Interactive hot path; see workload.Q1View etc.).
func hasViewImpl(q int) bool {
	switch q {
	case 1, 2, 8, 9:
		return true
	}
	return false
}

// runComplexView executes one view-backed complex query template with
// curated parameters, returning result entities to seed the short-read
// walk. Callers must route only hasViewImpl queries here.
func runComplexView(v *store.SnapshotView, sc *workload.Scratch, q int, qp *queryParams, r *xrand.Rand) (persons, messages []ids.ID) {
	person := qp.persons[r.Intn(len(qp.persons))]
	switch q {
	case 1:
		for _, row := range workload.Q1View(v, sc, person, qp.firstNames[r.Intn(len(qp.firstNames))]) {
			persons = append(persons, row.Person)
		}
	case 2:
		for _, row := range workload.Q2View(v, sc, person, qp.maxDate) {
			persons = append(persons, row.Creator)
			messages = append(messages, row.Message)
		}
	case 8:
		for _, row := range workload.Q8View(v, person) {
			persons = append(persons, row.Replier)
			messages = append(messages, row.Comment)
		}
	case 9:
		for _, row := range workload.Q9View(v, sc, person, qp.maxDate) {
			persons = append(persons, row.Creator)
			messages = append(messages, row.Message)
		}
	}
	if len(persons) == 0 {
		persons = append(persons, person)
	}
	return persons, messages
}

// runComplex executes one complex query template with curated parameters,
// returning result entities to seed the short-read walk.
func runComplex(tx *store.Txn, q int, qp *queryParams, r *xrand.Rand) (persons, messages []ids.ID) {
	person := qp.persons[r.Intn(len(qp.persons))]
	switch q {
	case 1:
		for _, row := range workload.Q1(tx, person, qp.firstNames[r.Intn(len(qp.firstNames))]) {
			persons = append(persons, row.Person)
		}
	case 2:
		for _, row := range workload.Q2(tx, person, qp.maxDate) {
			persons = append(persons, row.Creator)
			messages = append(messages, row.Message)
		}
	case 3:
		for _, row := range workload.Q3(tx, person, qp.countryA, qp.countryB, qp.midDate, qp.windowMilli) {
			persons = append(persons, row.Person)
		}
	case 4:
		workload.Q4(tx, person, qp.midDate, qp.windowMilli)
	case 5:
		p5 := qp.personsQ5[r.Intn(len(qp.personsQ5))]
		workload.Q5(tx, p5, qp.midDate)
	case 6:
		workload.Q6(tx, person, qp.tags[r.Intn(len(qp.tags))])
	case 7:
		for _, row := range workload.Q7(tx, person) {
			persons = append(persons, row.Liker)
			messages = append(messages, row.Message)
		}
	case 8:
		for _, row := range workload.Q8(tx, person) {
			persons = append(persons, row.Replier)
			messages = append(messages, row.Comment)
		}
	case 9:
		for _, row := range workload.Q9(tx, person, qp.maxDate) {
			persons = append(persons, row.Creator)
			messages = append(messages, row.Message)
		}
	case 10:
		for _, row := range workload.Q10(tx, person, r.Intn(12)) {
			persons = append(persons, row.Person)
		}
	case 11:
		for _, row := range workload.Q11(tx, person, r.Intn(25), 2013) {
			persons = append(persons, row.Person)
		}
	case 12:
		for _, row := range workload.Q12(tx, person, qp.tagClasses[r.Intn(len(qp.tagClasses))]) {
			persons = append(persons, row.Person)
		}
	case 13:
		other := qp.persons[r.Intn(len(qp.persons))]
		workload.Q13(tx, person, other)
	case 14:
		other := qp.persons[r.Intn(len(qp.persons))]
		workload.Q14(tx, person, other)
	}
	if len(persons) == 0 {
		persons = append(persons, person)
	}
	return persons, messages
}

// runShortWalk executes the short-read chain on the frozen snapshot view,
// attributing per-type latencies to the report. It re-implements the walk
// of workload.ShortReadMix with timing instrumentation; every step is a
// lock-free point lookup.
func runShortWalk(v *store.SnapshotView, mix workload.ShortReadMix, r *xrand.Rand, persons, messages []ids.ID, rep *MixedReport, mu *sync.Mutex) {
	p := mix.P
	for step := 0; ; step++ {
		if len(persons) == 0 && len(messages) == 0 {
			return
		}
		if !r.Bool(p) {
			return
		}
		p -= mix.Delta
		if p < 0 {
			p = 0
		}
		var kind int
		t0 := time.Now()
		if len(persons) > 0 && (step%2 == 0 || len(messages) == 0) {
			person := persons[r.Intn(len(persons))]
			switch r.Intn(3) {
			case 0:
				workload.S1View(v, person)
				kind = 0
			case 1:
				for _, row := range workload.S2View(v, person) {
					messages = append(messages, row.Message)
				}
				kind = 1
			default:
				for _, row := range workload.S3View(v, person) {
					persons = append(persons, row.Friend)
				}
				kind = 2
			}
		} else {
			msg := messages[r.Intn(len(messages))]
			switch r.Intn(4) {
			case 0:
				workload.S4View(v, msg)
				kind = 3
			case 1:
				if res, ok := workload.S5View(v, msg); ok {
					persons = append(persons, res.Creator)
				}
				kind = 4
			case 2:
				if res, ok := workload.S6View(v, msg); ok && res.Moderator != 0 {
					persons = append(persons, res.Moderator)
				}
				kind = 5
			default:
				for _, row := range workload.S7View(v, msg) {
					messages = append(messages, row.Comment)
				}
				kind = 6
			}
		}
		lat := time.Since(t0)
		mu.Lock()
		rep.Short[kind].Add(lat)
		mu.Unlock()
		if len(persons) > 256 {
			persons = persons[len(persons)-256:]
		}
		if len(messages) > 256 {
			messages = messages[len(messages)-256:]
		}
	}
}
