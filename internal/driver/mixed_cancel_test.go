package driver

import (
	"context"
	"testing"
	"time"

	"ldbcsnb/internal/schema"
	"ldbcsnb/internal/store"
)

// TestRunMixedWriteLaneCancelDurability pins the durability watermark
// invariant across an aborted run: a mixed run with a busy write lane in
// fsync-on-commit mode is canceled mid-flight, and every commit the run
// acknowledged must survive recovery — "Commit returned ⇒ durable" does
// not weaken when the run ends by signal instead of completion.
func TestRunMixedWriteLaneCancelDurability(t *testing.T) {
	full, bulk, updates := genUpdates(t, 150)
	dir := t.TempDir()
	opts := store.PersistOptions{CheckpointBytes: -1, WALSync: store.SyncCommit}
	p, _, err := store.Open(dir, opts, schema.RegisterIndexes)
	if err != nil {
		t.Fatal(err)
	}
	if err := schema.LoadDimensions(p.Store); err != nil {
		t.Fatal(err)
	}
	if err := schema.Load(p.Store, bulk); err != nil {
		t.Fatal(err)
	}

	// The write lane alone would run for minutes; the cancel arrives while
	// it is mid-stream, so the run ends at operation boundaries.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(250 * time.Millisecond)
		cancel()
	}()
	rep := RunMixed(MixedConfig{
		Store: p.Store, Persist: p, Dataset: full, Updates: updates,
		Streams: 2, ReadClients: 1, ComplexPerType: 1, Seed: 11,
		WriteClients: 2, WriteOps: 1 << 20,
		Ctx: ctx,
	})
	if !rep.Interrupted {
		t.Fatal("run completed before the cancel; raise WriteOps")
	}
	if rep.Errors != 0 {
		t.Fatalf("errors during interrupted run: %d", rep.Errors)
	}
	if rep.Commit.Count == 0 {
		t.Fatal("write lane never committed")
	}

	liveClock := p.Store.LastCommit()
	liveStats := p.Store.ComputeStats()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, _, err := store.Open(dir, opts, schema.RegisterIndexes)
	if err != nil {
		t.Fatalf("recovery after aborted run: %v", err)
	}
	defer p2.Close() //snb:errok read-only reopen; the assertions above are the contract
	if got := p2.Store.LastCommit(); got != liveClock {
		t.Fatalf("recovered clock %d, live clock at abort %d", got, liveClock)
	}
	recStats := p2.Store.ComputeStats()
	if recStats.Nodes != liveStats.Nodes || recStats.Edges != liveStats.Edges {
		t.Fatalf("recovered state diverged: nodes %d/%d, edges %d/%d",
			recStats.Nodes, liveStats.Nodes, recStats.Edges, liveStats.Edges)
	}
}
