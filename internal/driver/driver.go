package driver

import (
	"sync"
	"time"

	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/schema"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/workload"
)

// Connector executes one update operation against the System Under Test.
type Connector interface {
	Execute(op *schema.Update) error
}

// StoreConnector runs updates against the embedded graph store.
type StoreConnector struct {
	Store *store.Store
}

// Execute applies the update as one ACID transaction.
func (c *StoreConnector) Execute(op *schema.Update) error {
	return workload.ApplyUpdate(c.Store, op)
}

// SleepConnector is the dummy connector of the §4.2 scalability experiment
// ("rather than executing transactions against a database, simply sleeps
// for a configured duration"). It simulates a SUT whose mean transaction
// latency is Sleep.
type SleepConnector struct {
	Sleep time.Duration
	count int64
	mu    sync.Mutex
}

// Execute sleeps for the configured duration.
func (c *SleepConnector) Execute(op *schema.Update) error {
	time.Sleep(c.Sleep)
	c.mu.Lock()
	c.count++
	c.mu.Unlock()
	return nil
}

// Count returns the number of executed operations.
func (c *SleepConnector) Count() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

// Partition splits the update stream into n parallel streams (§4.2):
// forum-partitionable operations go to the stream owning their forum
// (posts and likes form a tree rooted at the forum, so intra-forum
// dependencies stay within one sequentially executed stream); person and
// friendship operations, which touch the non-partitionable friendship
// graph, are spread by person ID and synchronised through the GDS.
// Every stream remains sorted by due time.
func Partition(updates []schema.Update, n int) [][]schema.Update {
	if n < 1 {
		n = 1
	}
	streams := make([][]schema.Update, n)
	for i := range updates {
		u := &updates[i]
		var key uint64
		if f := u.ForumOf(); f != 0 {
			key = uint64(f)
		} else {
			switch u.Type {
			case schema.UpdateAddPerson:
				key = uint64(u.Person.ID)
			case schema.UpdateAddFriendship:
				key = uint64(u.Friendship.A)
			}
		}
		// Entity IDs are time-ordered composites whose low bits are mostly
		// zero (ids.Compose); mix before reducing so streams balance.
		s := int(mix64(key) % uint64(n))
		streams[s] = append(streams[s], *u)
	}
	return streams
}

// Mode selects how streams schedule operations.
type Mode int

// Execution modes (§4.2).
const (
	// ModeUnpaced executes operations as fast as dependencies allow — the
	// configuration of the Table 5 scalability experiment.
	ModeUnpaced Mode = iota
	// ModePaced replays the stream at the configured acceleration factor
	// (simulation time / real time), the benchmark's normal operation.
	ModePaced
	// ModeWindowed groups dependent operations into T_SAFE-sized windows
	// and synchronises the GDS once per window instead of per operation,
	// reducing coordination (§4.2 "Windowed Execution").
	ModeWindowed
)

// Config parameterises a driver run.
type Config struct {
	Connector Connector
	Streams   int
	Mode      Mode
	// Acceleration is simulation-time / real-time for ModePaced (e.g. 10
	// means one simulated hour plays in six real minutes).
	Acceleration float64
	// SafeTime is the windowed-mode window size in simulation millis
	// (defaults to datagen.SafeTime if zero).
	SafeTime int64
}

// Report summarises a driver run.
type Report struct {
	Operations int
	Wall       time.Duration
	// OpsPerSec is the executed operation throughput (the Table 5 metric).
	OpsPerSec float64
	// MaxTGCLag is the largest observed gap between a dependent's wait
	// point and TGC at wait time, in simulation millis (diagnostic).
	Errors int
}

// Run executes a pre-partitioned update stream to completion.
func Run(cfg Config, streams [][]schema.Update) Report {
	gds := NewGDS(len(streams))
	start := time.Now()
	var wg sync.WaitGroup
	var errMu sync.Mutex
	errs := 0
	total := 0
	for _, s := range streams {
		total += len(s)
	}

	safe := cfg.SafeTime
	if safe <= 0 {
		safe = 10 * 60 * 1000
	}

	// Pacing: map simulation due time to wall-clock time.
	var simStart int64 = 1<<63 - 1
	for _, s := range streams {
		if len(s) > 0 && s[0].DueTime < simStart {
			simStart = s[0].DueTime
		}
	}
	wallStart := time.Now()
	waitDue := func(due int64) {
		if cfg.Mode != ModePaced || cfg.Acceleration <= 0 {
			return
		}
		realOffset := time.Duration(float64(due-simStart) / cfg.Acceleration * float64(time.Millisecond))
		if d := time.Until(wallStart.Add(realOffset)); d > 0 {
			time.Sleep(d)
		}
	}

	// Dependencies created before the replayed stream (bulk-loaded data)
	// are satisfied by definition.
	gds.SetFloor(simStart - 1)
	// Announce each stream's dependency schedule so T_GC can run ahead of
	// stream positions (see LDS.SetSchedule).
	for i, s := range streams {
		gds.Stream(i).SetSchedule(dependencySchedule(s))
	}
	gds.Refresh()

	for i := range streams {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			lds := gds.Stream(idx)
			ops := streams[idx]
			for j := range ops {
				op := &ops[j]
				isDep := op.Type == schema.UpdateAddPerson

				if isDep {
					lds.Initiate(op.DueTime)
					gds.Refresh()
				}
				if op.DepTime > 0 {
					// Figure 8: dependents wait for the GDS watermark. In
					// windowed mode the wait target is the start of the
					// dependent's own T_SAFE window: the generator
					// guarantees dep <= due - T_SAFE, so every dependency
					// lies strictly before that window — consecutive
					// dependents in one window share one wait target and
					// synchronise at most once.
					dep := op.DepTime
					if cfg.Mode == ModeWindowed {
						if target := op.DueTime/safe*safe - 1; target > dep {
							dep = target
						}
					}
					gds.WaitUntil(dep)
				}
				waitDue(op.DueTime)

				if err := cfg.Connector.Execute(op); err != nil {
					errMu.Lock()
					errs++
					errMu.Unlock()
				}

				if isDep {
					lds.Complete(op.DueTime)
					gds.Refresh()
				}
			}
			lds.Finish()
			gds.Refresh()
		}(i)
	}
	wg.Wait()

	wall := time.Since(start)
	r := Report{Operations: total, Wall: wall, Errors: errs}
	if wall > 0 {
		r.OpsPerSec = float64(total) / wall.Seconds()
	}
	return r
}

// mix64 is the splitmix64 finaliser, used to spread structured entity IDs
// uniformly over streams.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// dependencySchedule extracts the due times of a stream's Dependencies
// operations (person creations), in stream order (non-decreasing).
func dependencySchedule(ops []schema.Update) []int64 {
	var dues []int64
	for i := range ops {
		if ops[i].Type == schema.UpdateAddPerson {
			dues = append(dues, ops[i].DueTime)
		}
	}
	return dues
}

// ValidateStreams checks the invariants Partition promises: per-stream due
// times are non-decreasing and forum-partitionable operations of one forum
// share a stream. It returns the number of violations (0 = valid).
func ValidateStreams(streams [][]schema.Update) int {
	violations := 0
	forumStream := map[ids.ID]int{}
	for si, s := range streams {
		var prev int64 = -1 << 62
		for i := range s {
			if s[i].DueTime < prev {
				violations++
			}
			prev = s[i].DueTime
			if f := s[i].ForumOf(); f != 0 {
				if prevSi, ok := forumStream[f]; ok && prevSi != si {
					violations++
				}
				forumStream[f] = si
			}
		}
	}
	return violations
}
