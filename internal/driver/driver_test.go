package driver

import (
	"sync"
	"testing"
	"time"

	"ldbcsnb/internal/datagen"
	"ldbcsnb/internal/schema"
	"ldbcsnb/internal/store"
)

func TestLDSBasics(t *testing.T) {
	l := NewLDS()
	if l.TLI() != 0 || l.TLC() != 0 {
		t.Fatal("fresh LDS watermarks")
	}
	l.Initiate(100)
	if l.TLI() != 100 {
		t.Fatalf("TLI = %d", l.TLI())
	}
	if l.TLC() != 0 {
		t.Fatal("TLC advanced before completion")
	}
	l.Complete(100)
	// TLC cannot pass TLI until the stream proves it moved on.
	l.Progress(150)
	if l.TLC() < 100 {
		t.Fatalf("TLC = %d after progress", l.TLC())
	}
	if l.TLI() < 150 {
		t.Fatalf("TLI = %d after progress", l.TLI())
	}
}

func TestLDSMonotonic(t *testing.T) {
	l := NewLDS()
	l.Initiate(10)
	l.Initiate(20)
	l.Complete(10)
	tli1 := l.TLI()
	if tli1 != 20 {
		t.Fatalf("TLI should move to pending 20, got %d", tli1)
	}
	if l.TLC() != 10 {
		t.Fatalf("TLC should fold 10, got %d", l.TLC())
	}
	l.Complete(20)
	l.Progress(30)
	if l.TLC() != 20 && l.TLC() != 30 {
		t.Fatalf("TLC = %d", l.TLC())
	}
	// Watermarks never regress.
	l.Progress(5)
	if l.TLI() < 20 || l.TLC() < 20 {
		t.Fatal("watermarks regressed")
	}
}

func TestGDSAggregation(t *testing.T) {
	g := NewGDS(2)
	g.Stream(0).Initiate(100)
	g.Stream(1).Progress(500)
	g.Refresh()
	if g.TGI() != 100 {
		t.Fatalf("TGI = %d", g.TGI())
	}
	if g.TGC() >= 100 {
		t.Fatalf("TGC = %d with op 100 pending", g.TGC())
	}
	g.Stream(0).Complete(100)
	g.Stream(0).Progress(200)
	g.Refresh()
	if g.TGC() < 100 {
		t.Fatalf("TGC = %d after completion", g.TGC())
	}
}

func TestGDSWaitUnblocks(t *testing.T) {
	g := NewGDS(1)
	done := make(chan struct{})
	go func() {
		g.WaitUntil(50)
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("wait returned early")
	default:
	}
	g.Stream(0).Initiate(50)
	g.Stream(0).Complete(50)
	g.Stream(0).Progress(60)
	g.Refresh()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("wait never unblocked")
	}
}

func TestGDSSetFloor(t *testing.T) {
	g := NewGDS(3)
	g.SetFloor(1000)
	if g.TGC() < 1000 {
		t.Fatalf("TGC = %d after floor", g.TGC())
	}
	done := make(chan struct{})
	go func() {
		g.WaitUntil(999)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("floor did not satisfy old dependency")
	}
}

// genUpdates produces a real update stream from the generator.
func genUpdates(t *testing.T, persons int) (*schema.Dataset, *schema.Dataset, []schema.Update) {
	t.Helper()
	out := datagen.Generate(datagen.Config{Seed: 21, Persons: persons, Workers: 2})
	bulk, updates := datagen.Split(out.Data, datagen.UpdateCut)
	if len(updates) == 0 {
		t.Fatal("no updates generated")
	}
	return out.Data, bulk, updates
}

func TestPartitionInvariants(t *testing.T) {
	_, _, updates := genUpdates(t, 200)
	for _, n := range []int{1, 2, 4, 8} {
		streams := Partition(updates, n)
		if len(streams) != n {
			t.Fatalf("stream count %d", len(streams))
		}
		total := 0
		for _, s := range streams {
			total += len(s)
		}
		if total != len(updates) {
			t.Fatalf("partition lost ops: %d of %d", total, len(updates))
		}
		if v := ValidateStreams(streams); v != 0 {
			t.Fatalf("%d stream invariant violations with %d partitions", v, n)
		}
	}
}

// countingConnector verifies dependency ordering: every dependent must
// execute after the person op it depends on.
type countingConnector struct {
	mu        sync.Mutex
	executed  map[int64]bool // due times of executed person ops
	violation int
	ops       int
	firstDue  int64
}

func (c *countingConnector) Execute(op *schema.Update) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ops++
	if op.Type == schema.UpdateAddPerson {
		c.executed[op.DueTime] = true
	} else if op.DepTime > 0 && op.DepTime >= c.firstDue {
		// The dependency is itself part of the update stream: it must have
		// executed already.
		if !c.executed[op.DepTime] {
			c.violation++
		}
	}
	return nil
}

func (c *countingConnector) setFirstDue(d int64) { c.firstDue = d }

func TestRunRespectsDependencies(t *testing.T) {
	_, _, updates := genUpdates(t, 300)
	for _, mode := range []Mode{ModeUnpaced, ModeWindowed} {
		for _, n := range []int{1, 4} {
			conn := &countingConnector{executed: map[int64]bool{}}
			conn.setFirstDue(updates[0].DueTime)
			streams := Partition(updates, n)
			rep := Run(Config{Connector: conn, Streams: n, Mode: mode}, streams)
			if rep.Operations != len(updates) {
				t.Fatalf("mode %v n %d: executed %d of %d", mode, n, rep.Operations, len(updates))
			}
			if conn.ops != len(updates) {
				t.Fatalf("connector saw %d ops", conn.ops)
			}
			if conn.violation != 0 {
				t.Fatalf("mode %v n %d: %d dependency violations", mode, n, conn.violation)
			}
			if rep.Errors != 0 {
				t.Fatalf("errors: %d", rep.Errors)
			}
		}
	}
}

func TestRunAgainstStore(t *testing.T) {
	full, bulk, updates := genUpdates(t, 200)
	st := store.New()
	schema.RegisterIndexes(st)
	if err := schema.LoadDimensions(st); err != nil {
		t.Fatal(err)
	}
	if err := schema.Load(st, bulk); err != nil {
		t.Fatal(err)
	}
	conn := &StoreConnector{Store: st}
	streams := Partition(updates, 4)
	rep := Run(Config{Connector: conn, Streams: 4, Mode: ModeUnpaced}, streams)
	if rep.Errors != 0 {
		t.Fatalf("store errors: %d", rep.Errors)
	}
	st.View(func(tx *store.Txn) {
		if got := len(tx.NodesOfKind(1)); got != len(full.Persons) { // ids.KindPerson
			t.Fatalf("persons after driver replay: %d want %d", got, len(full.Persons))
		}
	})
}

func TestPacedModeSlowsDown(t *testing.T) {
	_, _, updates := genUpdates(t, 200)
	// Take a small slice spanning some simulation time.
	slice := updates
	if len(slice) > 50 {
		slice = slice[:50]
	}
	span := slice[len(slice)-1].DueTime - slice[0].DueTime
	if span <= 0 {
		t.Skip("degenerate slice")
	}
	// Acceleration so the replay takes ~50ms.
	accel := float64(span) / 50.0
	conn := &SleepConnector{Sleep: 0}
	start := time.Now()
	Run(Config{Connector: conn, Streams: 2, Mode: ModePaced, Acceleration: accel},
		Partition(slice, 2))
	elapsed := time.Since(start)
	if elapsed < 30*time.Millisecond {
		t.Fatalf("paced run finished too fast: %v", elapsed)
	}
}

func TestSleepConnectorScalability(t *testing.T) {
	// Miniature Table 5: with a 1ms sleeping connector, throughput must
	// grow near-linearly from 1 to 4 partitions.
	_, _, updates := genUpdates(t, 300)
	if len(updates) > 600 {
		updates = updates[:600]
	}
	run := func(n int) float64 {
		conn := &SleepConnector{Sleep: time.Millisecond}
		rep := Run(Config{Connector: conn, Streams: n, Mode: ModeUnpaced}, Partition(updates, n))
		return rep.OpsPerSec
	}
	t1 := run(1)
	t4 := run(4)
	if t4 < 2.2*t1 {
		t.Fatalf("poor driver scaling: 1p=%.0f ops/s, 4p=%.0f ops/s", t1, t4)
	}
	// 1 partition with 1ms sleep ≈ 1000 ops/s ceiling.
	if t1 > 1100 {
		t.Fatalf("single partition exceeded sleep ceiling: %.0f", t1)
	}
}

func TestLatencyStats(t *testing.T) {
	var s LatencyStats
	if s.Mean() != 0 || s.Percentile(99) != 0 || s.Stddev() != 0 {
		t.Fatal("empty stats")
	}
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i) * time.Millisecond)
	}
	if s.Count != 100 {
		t.Fatal("count")
	}
	if m := s.Mean(); m < 50*time.Millisecond || m > 51*time.Millisecond {
		t.Fatalf("mean %v", m)
	}
	if p := s.Percentile(99); p != 99*time.Millisecond {
		t.Fatalf("p99 %v", p)
	}
	if s.Max != 100*time.Millisecond {
		t.Fatalf("max %v", s.Max)
	}
	if s.Stddev() == 0 {
		t.Fatal("stddev")
	}
}

func TestRunMixedProducesAllTables(t *testing.T) {
	full, bulk, updates := genUpdates(t, 200)
	st := store.New()
	schema.RegisterIndexes(st)
	if err := schema.LoadDimensions(st); err != nil {
		t.Fatal(err)
	}
	if err := schema.Load(st, bulk); err != nil {
		t.Fatal(err)
	}
	if len(updates) > 2000 {
		updates = updates[:2000]
	}
	rep := RunMixed(MixedConfig{
		Store: st, Dataset: full, Updates: updates,
		Streams: 2, ReadClients: 2, ComplexPerType: 2, Seed: 11,
	})
	if rep.Errors != 0 {
		t.Fatalf("errors: %d", rep.Errors)
	}
	for q := 0; q < 14; q++ {
		if rep.Complex[q].Count == 0 {
			t.Fatalf("Q%d never executed", q+1)
		}
	}
	shortTotal := 0
	for i := range rep.Short {
		shortTotal += rep.Short[i].Count
	}
	if shortTotal == 0 {
		t.Fatal("no short reads executed")
	}
	updTotal := 0
	for i := range rep.Update {
		updTotal += rep.Update[i].Count
	}
	if updTotal != len(updates) {
		t.Fatalf("update latencies: %d of %d", updTotal, len(updates))
	}
	if rep.Throughput <= 0 {
		t.Fatal("throughput")
	}
	// View-acquisition accounting: two acquisitions per read iteration
	// (complex query + short-read walk), each classified as refresh-or-hit
	// vs full rebuild; the first acquisition of the run pays the build.
	complexTotal := 0
	for q := range rep.Complex {
		complexTotal += rep.Complex[q].Count
	}
	if rep.ViewAcquire.Count != 2*complexTotal {
		t.Fatalf("view acquisitions: %d, want %d (2 per iteration)", rep.ViewAcquire.Count, 2*complexTotal)
	}
	if rep.ViewRefresh.Count+rep.ViewRebuild.Count != rep.ViewAcquire.Count {
		t.Fatalf("acquire split %d+%d does not cover %d",
			rep.ViewRefresh.Count, rep.ViewRebuild.Count, rep.ViewAcquire.Count)
	}
	if rep.ViewRebuild.Count < 1 {
		t.Fatal("no acquisition paid the initial view build")
	}
	// The complexity ordering the paper's Table 6/7 shapes rely on: the
	// cheapest short read is much cheaper than the heaviest complex query.
	var maxComplex, minShort time.Duration
	for i := range rep.Complex {
		if m := rep.Complex[i].Mean(); m > maxComplex {
			maxComplex = m
		}
	}
	minShort = time.Hour
	for i := range rep.Short {
		if rep.Short[i].Count > 0 {
			if m := rep.Short[i].Mean(); m < minShort {
				minShort = m
			}
		}
	}
	if maxComplex < minShort {
		t.Fatalf("complex reads (%v) should dominate short reads (%v)", maxComplex, minShort)
	}
}

func TestGDSHierarchy(t *testing.T) {
	// Two leaf services, each over two streams, composed under a parent:
	// the parent's TGC must advance only when every grandchild releases.
	left := NewGDS(2)
	right := NewGDS(2)
	parent := NewGDSOver(left, right)

	left.Stream(0).SetSchedule([]int64{100})
	left.Stream(1).SetSchedule(nil)
	right.Stream(0).SetSchedule([]int64{200})
	right.Stream(1).SetSchedule(nil)
	left.Refresh()
	right.Refresh()
	parent.Refresh()

	if got := parent.TGC(); got != 99 {
		t.Fatalf("parent TGC = %d, want 99 (gated by left's person at 100)", got)
	}

	left.Stream(0).Initiate(100)
	left.Stream(0).Complete(100)
	left.Refresh()
	parent.Refresh()
	if got := parent.TGC(); got != 199 {
		t.Fatalf("parent TGC = %d, want 199 (now gated by right)", got)
	}

	right.Stream(0).Initiate(200)
	right.Stream(0).Complete(200)
	right.Refresh()
	parent.Refresh()
	done := make(chan struct{})
	go func() {
		parent.WaitUntil(200)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("parent never released after both children drained")
	}
}

func TestWindowedWaitBetweenDependencies(t *testing.T) {
	// Regression for the windowed-mode hang: a wait target that falls
	// between two dependency due times must resolve once all earlier
	// dependencies completed, even though no dependency exists at the
	// target itself.
	g := NewGDS(1)
	g.Stream(0).SetSchedule([]int64{100, 900})
	g.Refresh()
	g.Stream(0).Initiate(100)
	g.Stream(0).Complete(100)
	g.Refresh()
	done := make(chan struct{})
	go func() {
		g.WaitUntil(500) // between the two dependencies
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("wait between dependencies never resolved")
	}
}

func TestRunMixedTxnReadPath(t *testing.T) {
	// The same registry-driven read mix must execute every query type on
	// the MVCC transaction path, without ever acquiring a snapshot view.
	full, bulk, updates := genUpdates(t, 200)
	st := store.New()
	schema.RegisterIndexes(st)
	if err := schema.LoadDimensions(st); err != nil {
		t.Fatal(err)
	}
	if err := schema.Load(st, bulk); err != nil {
		t.Fatal(err)
	}
	if len(updates) > 500 {
		updates = updates[:500]
	}
	rep := RunMixed(MixedConfig{
		Store: st, Dataset: full, Updates: updates,
		Streams: 2, ReadClients: 2, ComplexPerType: 1, Seed: 5,
		ReadPath: ReadPathTxn,
	})
	if rep.Errors != 0 {
		t.Fatalf("errors: %d", rep.Errors)
	}
	for q := 0; q < 14; q++ {
		if rep.Complex[q].Count == 0 {
			t.Fatalf("Q%d never executed on the txn path", q+1)
		}
	}
	shortTotal := 0
	for i := range rep.Short {
		shortTotal += rep.Short[i].Count
	}
	if shortTotal == 0 {
		t.Fatal("no short reads executed on the txn path")
	}
	if rep.ViewAcquire.Count != 0 {
		t.Fatalf("txn read path acquired %d views", rep.ViewAcquire.Count)
	}
}

// TestRunMixedBILane runs the BI analyst lane concurrently with updates
// and Interactive readers on both read paths: every BI template must
// execute and record into the lane's own latency bucket, morsel-parallel
// on the view path and serially (with zero view acquisitions) on the txn
// path. Under `make race` this is the fan-out-vs-commit race surface.
func TestRunMixedBILane(t *testing.T) {
	full, bulk, updates := genUpdates(t, 200)
	if len(updates) > 500 {
		updates = updates[:500]
	}
	for _, readPath := range []string{ReadPathView, ReadPathTxn} {
		st := store.New()
		schema.RegisterIndexes(st)
		if err := schema.LoadDimensions(st); err != nil {
			t.Fatal(err)
		}
		if err := schema.Load(st, bulk); err != nil {
			t.Fatal(err)
		}
		rep := RunMixed(MixedConfig{
			Store: st, Dataset: full, Updates: updates,
			Streams: 2, ReadClients: 1, ComplexPerType: 1, Seed: 5,
			ReadPath:  readPath,
			BIClients: 2, BIWorkers: 2, BIRounds: 2,
		})
		if rep.Errors != 0 {
			t.Fatalf("%s: errors: %d", readPath, rep.Errors)
		}
		for q := range rep.BI {
			if got, want := rep.BI[q].Count, 2*2; got != want {
				t.Fatalf("%s: BI%d executed %d times, want %d", readPath, q+1, got, want)
			}
		}
		if readPath == ReadPathTxn && rep.ViewAcquire.Count != 0 {
			t.Fatalf("txn BI lane acquired %d views", rep.ViewAcquire.Count)
		}
	}
}
