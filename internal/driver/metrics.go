package driver

import (
	"math"
	"sort"
	"time"
)

// LatencyStats accumulates latency samples for one query type. The
// benchmark reports mean latencies (Tables 6, 7, 9) and requires stable
// 99th-percentile latencies for a valid run (§4 "Rules and Metrics").
type LatencyStats struct {
	Count   int
	Sum     time.Duration
	Max     time.Duration
	samples []time.Duration
}

// maxSamples bounds per-type sample retention; enough for exact p99 at the
// scales this repo runs.
const maxSamples = 1 << 18

// Add records one sample.
func (s *LatencyStats) Add(d time.Duration) {
	s.Count++
	s.Sum += d
	if d > s.Max {
		s.Max = d
	}
	if len(s.samples) < maxSamples {
		s.samples = append(s.samples, d)
	}
}

// Mean returns the mean latency.
func (s *LatencyStats) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Percentile returns the p-th percentile (0 < p <= 100) of retained
// samples.
func (s *LatencyStats) Percentile(p float64) time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), s.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Stddev returns the standard deviation of retained samples — Figure 5(b)
// visualises this spread for Query 5 under uniform vs curated parameters.
func (s *LatencyStats) Stddev() time.Duration {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	mean := 0.0
	for _, d := range s.samples {
		mean += float64(d)
	}
	mean /= float64(n)
	v := 0.0
	for _, d := range s.samples {
		diff := float64(d) - mean
		v += diff * diff
	}
	v /= float64(n)
	return time.Duration(math.Sqrt(v))
}

// Samples returns the retained raw samples (read-only).
func (s *LatencyStats) Samples() []time.Duration { return s.samples }
