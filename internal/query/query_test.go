package query

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/store"
)

// roundTripQueries is a sample of well-formed queries across the whole
// grammar; the canonical-print fixpoint and planner determinism tests both
// range over it (the fuzz corpus seeds overlap deliberately).
var roundTripQueries = []string{
	`match ?p : Person return ?p`,
	`match ?p : Person return count(*)`,
	`match ?p : Person where ?p.firstName = "Ada" return ?p, ?p.lastName order by ?p.lastName asc, ?p asc`,
	`match $person -knows-> ?f return ?f`,
	`match $person -knows-> ?f @ ?d return ?f, ?d order by ?d desc limit 5`,
	`match $person -knows*1..3-> ?f @ ?dist where ?f.firstName = $name return ?f, ?dist, ?f.lastName order by ?dist asc, ?f.lastName asc, ?f asc limit 20`,
	`match $person -knows-> ?f, ?m -hasCreator-> ?f @ ?d where ?d <= $maxDate return ?m, ?f, ?d order by ?d desc, ?m asc limit 20`,
	`match ?m -hasCreator-> $person, ?c -replyOf-> ?m @ ?d, ?c -hasCreator-> ?r return ?c, ?r, ?d order by ?d desc, ?c asc limit 20`,
	`match ?f : Forum, ?f -hasMember-> $person @ ?j return ?f, ?j`,
	`match ?m -hasCreator-> $person return sum(?m.length)`,
	`match ?t : Tag, ?m -hasTag-> ?t return ?t, count(?m) order by count(?m) desc, ?t asc limit 5`,
	`match ?a -knows-> ?b @ ?d where ?d >= 0, ?a != ?b return count(*)`,
	`match ?c -replyOf*1..4-> ?m, ?m -hasCreator-> $person return ?c, ?m limit 100`,
	`match 42 -knows-> ?f return ?f`,
	`match ?p : Person where ?p.birthday < -5 return count(*)`,
	`match ?p : Person where ?p.lastName > "L\"2\\x" return ?p limit 1`,
}

func TestParseCanonicalRoundTrip(t *testing.T) {
	for _, src := range roundTripQueries {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		s1 := q.String()
		q2, err := Parse(s1)
		if err != nil {
			t.Fatalf("reparse of canonical %q: %v", s1, err)
		}
		if s2 := q2.String(); s1 != s2 {
			t.Fatalf("canonical form is not a fixpoint:\n  first:  %s\n  second: %s", s1, s2)
		}
	}
	// The registry texts must round-trip too.
	for i := range Registry {
		q, err := Parse(Registry[i].Text)
		if err != nil {
			t.Fatalf("registry %s does not parse: %v", Registry[i].Name, err)
		}
		if _, err := Parse(q.String()); err != nil {
			t.Fatalf("registry %s canonical form does not reparse: %v", Registry[i].Name, err)
		}
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		``,
		`match`,
		`match ?p : Person`,              // missing return
		`match ?p : Nope return ?p`,      // unknown kind
		`match ?p -flies-> ?q return ?p`, // unknown edge type
		`match ?p -knows-> ?q return ?r`, // unbound return variable
		`match ?p -knows-> ?q where ?z = 1 return ?p`,               // unbound filter variable
		`match ?p -knows*3..1-> ?q return ?p`,                       // inverted hop range
		`match ?p -knows*0..2-> ?q return ?p`,                       // zero min hops
		`match ?p -knows*1..99-> ?q return ?p`,                      // hops over MaxHops
		`match ?p -knows-> ?q return ?p limit 0`,                    // zero limit
		`match ?p -knows-> ?q return ?p limit 9999999`,              // limit over MaxLimit
		`match ?p -knows-> ?q return ?p order by ?q`,                // order key not returned
		`match ?p -knows-> ?p2 @ ?d, ?p -likes-> ?m @ ?d return ?m`, // scalar reuse
		`match ?d -knows-> ?x @ ?d return ?x`,                       // node var reused as scalar
		`match ?p -knows-> ?q where ?d.firstName = 1 return ?p`,     // prop on undeclared var
		`match ?p -knows-> ?q return sum(*)`,                        // sum(*) is not a thing
		`match ?p -knows-> ?q return ?p order by count(*) asc`,      // order key not a return item
		`match ?p : Person return ?p garbage`,                       // trailing tokens
		`match ?p : Person return ?p limit`,                         // missing limit value
		`match ?p : Person where ?p.firstName = "unterminated return ?p`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", src)
		}
	}
	// Oversized input is rejected before lexing.
	big := make([]byte, MaxQueryLen+1)
	for i := range big {
		big[i] = 'a'
	}
	if _, err := Parse(string(big)); err == nil {
		t.Error("oversized query unexpectedly parsed")
	}
}

// TestRegistryPlanShapes pins the exact plans of the declarative Q1/Q2/Q8:
// constant-rooted expansions, no scans, filters attached as soon as their
// variables bind. A change here is a planner behaviour change.
func TestRegistryPlanShapes(t *testing.T) {
	want := map[string]string{
		"Q1": "1. bfs-out $person -knows*1..3-> ?f @ ?dist\n" +
			"2. filter ?f.firstName = $name\n" +
			"3. sink return ?f, ?dist, ?f.lastName order by ?dist asc, ?f.lastName asc, ?f asc limit 20\n",
		"Q2": "1. expand-out $person -knows-> ?f\n" +
			"2. expand-in ?m -hasCreator-> ?f @ ?d\n" +
			"3. filter ?d <= $maxDate\n" +
			"4. sink return ?m, ?f, ?d order by ?d desc, ?m asc limit 20\n",
		"Q8": "1. expand-in ?m -hasCreator-> $person\n" +
			"2. expand-in ?c -replyOf-> ?m @ ?d\n" +
			"3. expand-out ?c -hasCreator-> ?r\n" +
			"4. sink return ?c, ?r, ?d order by ?d desc, ?c asc limit 20\n",
	}
	for name, exp := range want {
		spec := Lookup(name)
		if spec == nil {
			t.Fatalf("registry is missing %s", name)
		}
		if got := spec.Plan().String(); got != exp {
			t.Errorf("%s plan:\n%swant:\n%s", name, got, exp)
		}
	}
}

// tinyGraph builds a small hand-checkable store:
//
//	p1 -knows- p2 -knows- p3 -knows- p4   (symmetric, stamps 10/20/30)
//	m1 (post, creator p2, len 5), m2 (post, creator p3, len 7)
//	c1 (comment, replyOf m1 @150, creator p3, len 2)
func tinyGraph(t *testing.T) (*store.Store, map[string]ids.ID) {
	t.Helper()
	st := store.New()
	n := map[string]ids.ID{
		"p1": ids.Compose(ids.KindPerson, 0, 1),
		"p2": ids.Compose(ids.KindPerson, 0, 2),
		"p3": ids.Compose(ids.KindPerson, 0, 3),
		"p4": ids.Compose(ids.KindPerson, 0, 4),
		"m1": ids.Compose(ids.KindPost, 1, 1),
		"m2": ids.Compose(ids.KindPost, 1, 2),
		"c1": ids.Compose(ids.KindComment, 2, 1),
	}
	tx := st.Begin()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(tx.CreateNode(n["p1"], store.Props{{Key: store.PropFirstName, Val: store.String("ada")}, {Key: store.PropLastName, Val: store.String("lovelace")}}))
	must(tx.CreateNode(n["p2"], store.Props{{Key: store.PropFirstName, Val: store.String("bob")}, {Key: store.PropLastName, Val: store.String("babbage")}}))
	must(tx.CreateNode(n["p3"], store.Props{{Key: store.PropFirstName, Val: store.String("ada")}, {Key: store.PropLastName, Val: store.String("noether")}}))
	must(tx.CreateNode(n["p4"], store.Props{{Key: store.PropFirstName, Val: store.String("eve")}, {Key: store.PropLastName, Val: store.String("curie")}}))
	must(tx.CreateNode(n["m1"], store.Props{{Key: store.PropLength, Val: store.Int64(5)}}))
	must(tx.CreateNode(n["m2"], store.Props{{Key: store.PropLength, Val: store.Int64(7)}}))
	must(tx.CreateNode(n["c1"], store.Props{{Key: store.PropLength, Val: store.Int64(2)}}))
	must(tx.AddKnows(n["p1"], n["p2"], 10))
	must(tx.AddKnows(n["p2"], n["p3"], 20))
	must(tx.AddKnows(n["p3"], n["p4"], 30))
	must(tx.AddEdge(n["m1"], store.EdgeHasCreator, n["p2"], 100))
	must(tx.AddEdge(n["m2"], store.EdgeHasCreator, n["p3"], 200))
	must(tx.AddEdge(n["c1"], store.EdgeReplyOf, n["m1"], 150))
	must(tx.AddEdge(n["c1"], store.EdgeHasCreator, n["p3"], 150))
	must(tx.Commit())
	return st, n
}

func iv(id ids.ID) store.Value            { return store.Int64(int64(uint64(id))) }
func nv(i int64) store.Value              { return store.Int64(i) }
func sv(s string) store.Value             { return store.String(s) }
func row(vs ...store.Value) []store.Value { return vs }

// runBoth compiles text and executes it on the txn and view paths,
// asserting both agree, and returns the rows.
func runBoth(t *testing.T, st *store.Store, text string, params Params) [][]store.Value {
	t.Helper()
	q, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse(%q): %v", text, err)
	}
	p, err := Compile(q)
	if err != nil {
		t.Fatalf("Compile(%q): %v", text, err)
	}
	v := st.CurrentView()
	vres, err := runView(v, NewScratch(), p, params)
	if err != nil {
		t.Fatalf("view run of %q: %v", text, err)
	}
	var tres *Result
	st.View(func(tx *store.Txn) {
		tres, err = runTxn(tx, NewScratch(), p, params)
	})
	if err != nil {
		t.Fatalf("txn run of %q: %v", text, err)
	}
	if !reflect.DeepEqual(vres.Rows, tres.Rows) {
		t.Fatalf("txn/view disagree on %q:\nview:\n%stxn:\n%s", text, vres, tres)
	}
	return vres.Rows
}

func TestExecTinyGraph(t *testing.T) {
	st, n := tinyGraph(t)
	cases := []struct {
		text   string
		params Params
		want   [][]store.Value
	}{
		{
			`match $p -knows-> ?f return ?f`,
			Params{"p": iv(n["p1"])},
			[][]store.Value{row(iv(n["p2"]))},
		},
		{
			// Minimal hop distances from p1 along the chain.
			`match $p -knows*1..3-> ?f @ ?d return ?f, ?d order by ?d asc, ?f asc`,
			Params{"p": iv(n["p1"])},
			[][]store.Value{row(iv(n["p2"]), nv(1)), row(iv(n["p3"]), nv(2)), row(iv(n["p4"]), nv(3))},
		},
		{
			// min hops excludes the 1-hop neighbour.
			`match $p -knows*2..3-> ?f return ?f`,
			Params{"p": iv(n["p1"])},
			[][]store.Value{row(iv(n["p3"])), row(iv(n["p4"]))},
		},
		{
			// Kind scan + string filter.
			`match ?p : Person where ?p.firstName = "ada" return ?p, ?p.lastName order by ?p asc`,
			nil,
			[][]store.Value{row(iv(n["p1"]), sv("lovelace")), row(iv(n["p3"]), sv("noether"))},
		},
		{
			// Grouped aggregation: messages (posts + comment) per creator.
			`match ?m -hasCreator-> ?p return ?p, count(?m), sum(?m.length) order by ?p asc`,
			nil,
			[][]store.Value{row(iv(n["p2"]), nv(1), nv(5)), row(iv(n["p3"]), nv(2), nv(9))},
		},
		{
			// Scalar binding + desc order + limit over the symmetric knows
			// edges (each friendship appears in both directions).
			`match ?a -knows-> ?b @ ?d return ?d, ?a, ?b order by ?d desc, ?a asc limit 3`,
			nil,
			[][]store.Value{
				row(nv(30), iv(n["p3"]), iv(n["p4"])),
				row(nv(30), iv(n["p4"]), iv(n["p3"])),
				row(nv(20), iv(n["p2"]), iv(n["p3"])),
			},
		},
		{
			// Bound-bound edge check (both endpoints are parameters).
			`match $a -knows-> $b @ ?d return ?d`,
			Params{"a": iv(n["p2"]), "b": iv(n["p3"])},
			[][]store.Value{row(nv(20))},
		},
		{
			// Cross-component: a scan rooted alongside an expansion.
			`match ?m -replyOf-> ?parent, ?p : Person where ?p.firstName = "eve" return ?m, ?parent, ?p`,
			nil,
			[][]store.Value{row(iv(n["c1"]), iv(n["m1"]), iv(n["p4"]))},
		},
		{
			// Aggregate over an empty match produces no rows.
			`match $p -knows-> ?f where ?f = 12345 return count(*)`,
			Params{"p": iv(n["p1"])},
			[][]store.Value{},
		},
		{
			// count(*) without grouping keys: one row for a non-empty match.
			`match ?p : Person return count(*)`,
			nil,
			[][]store.Value{row(nv(4))},
		},
	}
	for _, c := range cases {
		got := runBoth(t, st, c.text, c.params)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s:\n got %#v\nwant %#v", c.text, got, c.want)
		}
	}
}

func TestMissingAndMistypedParams(t *testing.T) {
	st, n := tinyGraph(t)
	q, err := Parse(`match $p -knows-> ?f return ?f`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	v := st.CurrentView()
	if _, err := runView(v, NewScratch(), p, nil); err == nil {
		t.Error("missing parameter not rejected")
	}
	if _, err := runView(v, NewScratch(), p, Params{"p": sv("ada")}); err == nil {
		t.Error("string parameter as node endpoint not rejected")
	}
	if _, err := runView(v, NewScratch(), p, Params{"p": iv(n["p1"])}); err != nil {
		t.Errorf("valid parameters rejected: %v", err)
	}
}

// TestScratchReuse runs different plans, paths and eras through one
// scratch: the epoch-stamped dedup state must never leak matches across
// runs, and an era bump (fresh ordinals) must not confuse the view-path
// arrays.
func TestScratchReuse(t *testing.T) {
	st, n := tinyGraph(t)
	sc := NewScratch()
	texts := []string{
		`match $p -knows*1..3-> ?f @ ?d return ?f, ?d order by ?d asc, ?f asc`,
		`match ?m -hasCreator-> ?p return ?p, count(?m) order by ?p asc`,
		`match $p -knows-> ?f return ?f`,
	}
	params := Params{"p": iv(n["p1"])}
	baseline := make([][][]store.Value, len(texts))
	plans := make([]*Plan, len(texts))
	for i, text := range texts {
		q, err := Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		plans[i], err = Compile(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := runView(st.CurrentView(), sc, plans[i], params)
		if err != nil {
			t.Fatal(err)
		}
		baseline[i] = res.Rows
	}
	// Force a full recompaction (era bump, reassigned ordinals) and grow
	// the graph a little.
	era0 := st.CurrentView().Era()
	st.SetViewCompactThreshold(0)
	tx := st.Begin()
	p5 := ids.Compose(ids.KindPerson, 0, 5)
	if err := tx.CreateNode(p5, nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if st.CurrentView().Era() == era0 {
		t.Fatal("expected a forced era bump")
	}
	for round := 0; round < 3; round++ {
		for i := range texts {
			res, err := runView(st.CurrentView(), sc, plans[i], params)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.Rows, baseline[i]) {
				t.Fatalf("round %d query %d drifted after era bump:\n got %#v\nwant %#v", round, i, res.Rows, baseline[i])
			}
			// Interleave the MVCC path through the same scratch.
			st.View(func(tx *store.Txn) {
				res, err = runTxn(tx, sc, plans[i], params)
			})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.Rows, baseline[i]) {
				t.Fatalf("round %d query %d txn path drifted:\n got %#v\nwant %#v", round, i, res.Rows, baseline[i])
			}
		}
	}
}

// TestRunViewCtxCancel pins cooperative cancellation: a canceled context
// unwinds the executor's scan loops as store.ErrQueryCanceled.
func TestRunViewCtxCancel(t *testing.T) {
	st := store.New()
	tx := st.Begin()
	var prev ids.ID
	for i := 1; i <= 400; i++ {
		id := ids.Compose(ids.KindPerson, int64(i/100), uint32(i%100))
		if err := tx.CreateNode(id, nil); err != nil {
			t.Fatal(err)
		}
		if prev != 0 {
			if err := tx.AddKnows(prev, id, int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	q, err := Parse(`match ?a -knows*1..8-> ?b return count(*)`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunViewCtx(ctx, st.CurrentView(), NewScratch(), p, nil); !errors.Is(err, store.ErrQueryCanceled) {
		t.Fatalf("canceled run returned %v, want ErrQueryCanceled", err)
	}
	// The same scratch must still work for a live context afterwards.
	res, err := RunViewCtx(context.Background(), st.CurrentView(), NewScratch(), p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() == 0 {
		t.Fatalf("post-cancel run returned %v", res)
	}
}

// TestConcurrentViewExecution shares one frozen view between goroutines,
// each with its own scratch — the supported concurrency pattern. Run under
// -race this pins that executor state never aliases across goroutines.
func TestConcurrentViewExecution(t *testing.T) {
	st, n := tinyGraph(t)
	v := st.CurrentView()
	params := Params{"p": iv(n["p1"])}
	spec := Lookup("Q1")
	q1params := Params{"person": iv(n["p1"]), "name": sv("ada")}
	q, err := Parse(`match $p -knows*1..3-> ?f @ ?d return ?f, ?d order by ?d asc, ?f asc`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := runView(v, NewScratch(), p, params)
	if err != nil {
		t.Fatal(err)
	}
	wantQ1, err := spec.RunView(v, NewScratch(), q1params)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := NewScratch()
			for i := 0; i < 200; i++ {
				res, err := runView(v, sc, p, params)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(res.Rows, want.Rows) {
					errs <- errors.New("concurrent run diverged")
					return
				}
				res, err = spec.RunView(v, sc, q1params)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(res.Rows, wantQ1.Rows) {
					errs <- errors.New("concurrent Q1 run diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
