package query

import "testing"

// FuzzParse pins the parser's safety and the canonical-print fixpoint: for
// any input, Parse never panics; when it accepts, the canonical form
// reparses to the same canonical form, the planner accepts the result, and
// both parses compile to the identical plan. The seed corpus lives in
// testdata/fuzz/FuzzParse and is replayed by every plain `go test` run
// (and therefore by make check in CI); open-ended fuzzing is opt-in via
// `go test -fuzz=FuzzParse ./internal/query/`.
func FuzzParse(f *testing.F) {
	for _, src := range roundTripQueries {
		f.Add(src)
	}
	for _, src := range diffCorpus {
		f.Add(src)
	}
	f.Add(`match`)
	f.Add(`match ?p : Person return ?p limit 99999999999999999999`)
	f.Add(`match ?p -knows*1..-> ?q return ?p`)
	f.Add("match ?p : Person where ?p.firstName = \"a\\\"b\" return ?p")
	f.Add("not a query at all \x00\xff")
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		s1 := q.String()
		q2, err := Parse(s1)
		if err != nil {
			t.Fatalf("canonical form %q of accepted input %q does not reparse: %v", s1, src, err)
		}
		if s2 := q2.String(); s1 != s2 {
			t.Fatalf("canonical print is not a fixpoint:\n input: %q\n first: %q\n second: %q", src, s1, s2)
		}
		p1, err := Compile(q)
		if err != nil {
			t.Fatalf("accepted query %q does not plan: %v", s1, err)
		}
		p2, err := Compile(q2)
		if err != nil {
			t.Fatalf("reparsed query %q does not plan: %v", s1, err)
		}
		if p1.String() != p2.String() {
			t.Fatalf("plans diverge across reparse of %q:\n%svs\n%s", s1, p1, p2)
		}
	})
}
