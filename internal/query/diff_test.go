package query

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"ldbcsnb/internal/datagen"
	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/schema"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/workload"
	"ldbcsnb/internal/xrand"
)

// ---------------------------------------------------------------------------
// Reference evaluator
//
// refEval is a deliberately naive second implementation of the language
// semantics: enumerate variable assignments in declaration order by nested
// loops, check every pattern and filter the moment its variables are all
// assigned, then project / aggregate / sort / limit the surviving
// assignments with its own code. It shares nothing with the planner or the
// executor beyond the AST and the Reader — disagreement between the two is
// a bug in one of them.
// ---------------------------------------------------------------------------

type refEvaluator struct {
	r      store.Reader
	q      *Query
	params Params
	all    []ids.ID // every node in the graph, all kinds
	assign []int64
	rows   [][]store.Value
}

func refEval(t *testing.T, r store.Reader, q *Query, params Params) [][]store.Value {
	t.Helper()
	ev := &refEvaluator{r: r, q: q, params: params}
	for k := ids.KindPerson; k <= ids.KindPhoto; k++ {
		ev.all = append(ev.all, r.NodesOfKind(k)...)
	}
	ev.assign = make([]int64, len(q.Vars))
	// Constraints with no variables hold or fail for the whole query.
	if !ev.checkAtLevel(-1) {
		return nil
	}
	ev.enumerate(0)
	return ev.sortProject(t)
}

func (ev *refEvaluator) paramVal(i int) store.Value { return ev.params[ev.q.Params[i]] }

func (ev *refEvaluator) termValue(tm Term) int64 {
	switch tm.Kind {
	case TermVar:
		return ev.assign[tm.Var]
	case TermParam:
		return ev.paramVal(tm.Param).Int()
	default:
		return tm.Int
	}
}

// maxVar returns the highest variable index a term/atom/filter references,
// or -1 for constant-only constraints.
func termMaxVar(tm Term) int {
	if tm.Kind == TermVar {
		return tm.Var
	}
	return -1
}

func atomMaxVar(a *Atom) int {
	if a.Kind == AtomKindConstraint {
		return a.Var
	}
	m := termMaxVar(a.Src)
	if v := termMaxVar(a.Dst); v > m {
		m = v
	}
	if a.Stamp > m {
		m = a.Stamp
	}
	return m
}

func exprMaxVar(e Expr) int {
	if e.Kind == ExprVar || e.Kind == ExprProp {
		return e.Var
	}
	return -1
}

func filterMaxVar(f *Filter) int {
	m := exprMaxVar(f.Lhs)
	if v := exprMaxVar(f.Rhs); v > m {
		m = v
	}
	return m
}

// enumerate assigns variable v and recurses; a full assignment that passed
// every incremental check is materialized as a projected row.
func (ev *refEvaluator) enumerate(v int) {
	if v == len(ev.q.Vars) {
		ev.rows = append(ev.rows, ev.project())
		return
	}
	if ev.q.Vars[v].Kind == VarScalar {
		for _, val := range ev.scalarCandidates(v) {
			ev.assign[v] = val
			if ev.checkAtLevel(v) {
				ev.enumerate(v + 1)
			}
		}
		return
	}
	for _, id := range ev.nodeCandidates(v) {
		ev.assign[v] = int64(uint64(id))
		if ev.checkAtLevel(v) {
			ev.enumerate(v + 1)
		}
	}
}

// nodeCandidates enumerates the values worth trying for node variable v:
// neighbours via the first pattern that connects v to an already-assigned
// endpoint, or every node when no such pattern exists. This is a pruning of
// the all-nodes loop, not a join order: every atom is still checked at its
// own level.
func (ev *refEvaluator) nodeCandidates(v int) []ids.ID {
	for i := range ev.q.Atoms {
		a := &ev.q.Atoms[i]
		if a.Kind != AtomEdge {
			continue
		}
		srcIsV := a.Src.Kind == TermVar && a.Src.Var == v
		dstIsV := a.Dst.Kind == TermVar && a.Dst.Var == v
		var other Term
		var out bool // expanding over Out edges from the assigned endpoint
		switch {
		case dstIsV && termAssigned(a.Src, v):
			other, out = a.Src, true
		case srcIsV && termAssigned(a.Dst, v):
			other, out = a.Dst, false
		default:
			continue
		}
		from := ids.ID(uint64(ev.termValue(other)))
		if !a.VarLen() {
			return distinctPeers(ev.edges(from, a.Edge, out))
		}
		// Variable-length: every node whose minimal distance is in range.
		dist := ev.minDistMap(from, a.Edge, out, a.MaxHops)
		var cand []ids.ID
		for id, d := range dist {
			if d >= a.MinHops && d <= a.MaxHops {
				cand = append(cand, id)
			}
		}
		sort.Slice(cand, func(i, j int) bool { return cand[i] < cand[j] })
		return cand
	}
	return ev.all
}

// scalarCandidates enumerates the stamps (plain atom) or the minimal
// distance (variable-length atom) of the scalar variable's pattern; the
// parser guarantees both endpoints precede the scalar in declaration order.
func (ev *refEvaluator) scalarCandidates(v int) []int64 {
	for i := range ev.q.Atoms {
		a := &ev.q.Atoms[i]
		if a.Kind != AtomEdge || a.Stamp != v {
			continue
		}
		src := ids.ID(uint64(ev.termValue(a.Src)))
		dst := ev.termValue(a.Dst)
		if !a.VarLen() {
			var stamps []int64
			for _, e := range ev.r.Out(src, a.Edge) {
				if int64(uint64(e.To)) != dst {
					continue
				}
				dup := false
				for _, s := range stamps {
					if s == e.Stamp {
						dup = true
						break
					}
				}
				if !dup {
					stamps = append(stamps, e.Stamp)
				}
			}
			return stamps
		}
		d := ev.minDist(src, ids.ID(uint64(dst)), a.Edge, a.MaxHops)
		if d >= a.MinHops && d <= a.MaxHops {
			return []int64{int64(d)}
		}
		return nil
	}
	return nil
}

func termAssigned(tm Term, level int) bool {
	return tm.Kind != TermVar || tm.Var < level
}

func (ev *refEvaluator) edges(from ids.ID, et store.EdgeType, out bool) []store.Edge {
	if out {
		return ev.r.Out(from, et)
	}
	return ev.r.In(from, et)
}

func distinctPeers(es []store.Edge) []ids.ID {
	var peers []ids.ID
	seen := map[ids.ID]bool{}
	for _, e := range es {
		if !seen[e.To] {
			seen[e.To] = true
			peers = append(peers, e.To)
		}
	}
	return peers
}

// minDistMap is a plain map-based BFS: minimal hop distance to every node
// reachable within maxHops.
func (ev *refEvaluator) minDistMap(from ids.ID, et store.EdgeType, out bool, maxHops int) map[ids.ID]int {
	dist := map[ids.ID]int{from: 0}
	frontier := []ids.ID{from}
	for d := 1; d <= maxHops && len(frontier) > 0; d++ {
		var next []ids.ID
		for _, n := range frontier {
			for _, e := range ev.edges(n, et, out) {
				if _, ok := dist[e.To]; !ok {
					dist[e.To] = d
					next = append(next, e.To)
				}
			}
		}
		frontier = next
	}
	return dist
}

func (ev *refEvaluator) minDist(src, dst ids.ID, et store.EdgeType, maxHops int) int {
	if d, ok := ev.minDistMap(src, et, true, maxHops)[dst]; ok {
		return d
	}
	return -1
}

// checkAtLevel verifies every atom and filter that becomes fully assigned
// exactly at level v (-1 = constant-only constraints).
func (ev *refEvaluator) checkAtLevel(v int) bool {
	for i := range ev.q.Atoms {
		a := &ev.q.Atoms[i]
		if atomMaxVar(a) != v {
			continue
		}
		if !ev.checkAtom(a) {
			return false
		}
	}
	for i := range ev.q.Filters {
		f := &ev.q.Filters[i]
		if filterMaxVar(f) != v {
			continue
		}
		if !refCmp(f.Op, ev.evalExpr(f.Lhs), ev.evalExpr(f.Rhs)) {
			return false
		}
	}
	return true
}

func (ev *refEvaluator) checkAtom(a *Atom) bool {
	if a.Kind == AtomKindConstraint {
		return ids.ID(uint64(ev.assign[a.Var])).Kind() == a.NodeKind
	}
	src := ids.ID(uint64(ev.termValue(a.Src)))
	dst := ev.termValue(a.Dst)
	if !a.VarLen() {
		for _, e := range ev.r.Out(src, a.Edge) {
			if int64(uint64(e.To)) != dst {
				continue
			}
			if a.Stamp < 0 || e.Stamp == ev.assign[a.Stamp] {
				return true
			}
		}
		return false
	}
	d := ev.minDist(src, ids.ID(uint64(dst)), a.Edge, a.MaxHops)
	if d < a.MinHops || d > a.MaxHops {
		return false
	}
	return a.Stamp < 0 || int64(d) == ev.assign[a.Stamp]
}

func (ev *refEvaluator) evalExpr(e Expr) store.Value {
	switch e.Kind {
	case ExprVar:
		return store.Int64(ev.assign[e.Var])
	case ExprProp:
		return ev.r.Prop(ids.ID(uint64(ev.assign[e.Var])), e.Prop)
	case ExprParam:
		return ev.paramVal(e.Param)
	case ExprInt:
		return store.Int64(e.Int)
	default:
		return store.String(e.Str)
	}
}

// refCmp mirrors the documented filter semantics with its own code.
func refCmp(op CmpOp, a, b store.Value) bool {
	if op == CmpEq {
		return a == b
	}
	if op == CmpNe {
		return a != b
	}
	// Ordering: both present, same kind.
	if a.IsInt() && b.IsInt() {
		return intCmpHolds(op, a.Int(), b.Int())
	}
	if a.IsStr() && b.IsStr() {
		c := strings.Compare(a.Str(), b.Str())
		return intCmpHolds(op, int64(c), 0)
	}
	return false
}

func intCmpHolds(op CmpOp, a, b int64) bool {
	switch op {
	case CmpLt:
		return a < b
	case CmpLe:
		return a <= b
	case CmpGt:
		return a > b
	default:
		return a >= b
	}
}

func (ev *refEvaluator) project() []store.Value {
	out := make([]store.Value, len(ev.q.Returns))
	for i := range ev.q.Returns {
		it := &ev.q.Returns[i]
		if it.Agg != AggNone && it.Star {
			continue // zero Value marks count(*)
		}
		out[i] = ev.evalExpr(it.Expr)
	}
	return out
}

// sortProject aggregates (if needed), sorts canonically and truncates —
// all with reference-side code.
func (ev *refEvaluator) sortProject(t *testing.T) [][]store.Value {
	q := ev.q
	rows := ev.rows
	if q.HasAggregates() {
		type group struct {
			keys []store.Value
			accs []int64
		}
		groups := map[string]*group{}
		var order []string
		for _, r := range rows {
			key := ""
			for i := range q.Returns {
				if q.Returns[i].Agg == AggNone {
					key += fmt.Sprintf("|%#v", r[i])
				}
			}
			g, ok := groups[key]
			if !ok {
				g = &group{keys: r, accs: make([]int64, len(q.Returns))}
				groups[key] = g
				order = append(order, key)
			}
			for i := range q.Returns {
				switch q.Returns[i].Agg {
				case AggCount:
					if q.Returns[i].Star || !r[i].IsZero() {
						g.accs[i]++
					}
				case AggSum:
					g.accs[i] += r[i].Int()
				}
			}
		}
		rows = nil
		for _, key := range order {
			g := groups[key]
			r := make([]store.Value, len(q.Returns))
			for i := range q.Returns {
				if q.Returns[i].Agg == AggNone {
					r[i] = g.keys[i]
				} else {
					r[i] = store.Int64(g.accs[i])
				}
			}
			rows = append(rows, r)
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return refRowLess(q, rows[i], rows[j]) })
	if q.Limit > 0 && len(rows) > q.Limit {
		rows = rows[:q.Limit]
	}
	return rows
}

func refRowLess(q *Query, a, b []store.Value) bool {
	for _, k := range q.Orders {
		if c := refValCmp(a[k.Col], b[k.Col]); c != 0 {
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
	}
	for i := range a {
		if c := refValCmp(a[i], b[i]); c != 0 {
			return c < 0
		}
	}
	return false
}

func refValCmp(a, b store.Value) int {
	rank := func(v store.Value) int {
		switch {
		case v.IsInt():
			return 1
		case v.IsStr():
			return 2
		}
		return 0
	}
	if ra, rb := rank(a), rank(b); ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch {
	case a.IsInt():
		switch {
		case a.Int() < b.Int():
			return -1
		case a.Int() > b.Int():
			return 1
		}
		return 0
	case a.IsStr():
		return strings.Compare(a.Str(), b.Str())
	}
	return 0
}

// ---------------------------------------------------------------------------
// Corpus
// ---------------------------------------------------------------------------

// diffCorpus is the ad-hoc pattern corpus the differential suites run on
// both the SNB dataset and the randomized graphs. Parameters are limited to
// the $person/$name/$maxDate namespace so one binding serves every query.
var diffCorpus = []string{
	// Neighbourhood expansions.
	`match $person -knows-> ?f return ?f`,
	`match $person -knows-> ?f @ ?d return ?f, ?d order by ?d desc, ?f asc limit 5`,
	`match $person -knows-> ?f, ?f -knows-> ?g where ?g != $person return ?g, ?f`,
	`match $person -knows*1..2-> ?f @ ?dist return ?f, ?dist`,
	`match $person -knows*2..3-> ?f return ?f`,
	// Message streams.
	`match ?m -hasCreator-> $person @ ?d where ?d <= $maxDate return ?m, ?d order by ?d desc, ?m asc limit 10`,
	`match ?m -hasCreator-> $person return count(*)`,
	`match ?m -hasCreator-> $person return sum(?m.length)`,
	`match $person -knows-> ?f, ?m -hasCreator-> ?f return ?f, count(?m) order by count(?m) desc, ?f asc limit 10`,
	`match ?c -replyOf-> ?m, ?m -hasCreator-> $person, ?c -hasCreator-> ?r return ?r, count(*) order by count(*) desc, ?r asc limit 10`,
	`match ?c -replyOf*1..4-> ?m, ?m -hasCreator-> $person return ?c, ?m limit 100`,
	`match ?p -likes-> ?m @ ?d, ?m -hasCreator-> $person return ?p, ?m, ?d order by ?d desc, ?p asc limit 10`,
	// Forums and membership.
	`match ?f : Forum, ?f -hasMember-> $person @ ?j return ?f, ?j`,
	`match ?f -containerOf-> ?m, ?f -hasModerator-> ?p, ?m -hasCreator-> ?p return ?f, ?m, ?p limit 50`,
	`match ?f : Forum, ?f -hasMember-> ?p @ ?j, ?p -isLocatedIn-> ?place return ?f, ?p, ?place, ?j limit 40`,
	// Kind scans, filters, dimensions.
	`match ?p : Person where ?p.firstName = $name return count(*)`,
	`match ?p : Person return count(*)`,
	`match ?p : Person where ?p.lastName > "L" return ?p, ?p.lastName order by ?p.lastName asc, ?p asc limit 15`,
	`match $person -knows-> ?f where ?f.birthday >= 0 return ?f`,
	`match $person -studyAt-> ?u @ ?year, ?u -isLocatedIn-> ?city return ?u, ?city, ?year`,
	`match ?k : TagClass, ?k -isSubclassOf-> ?root return ?k, ?root`,
	`match ?t : Tag, ?m -hasTag-> ?t return ?t, count(?m) order by count(?m) desc, ?t asc limit 5`,
	`match ?a -knows-> ?b @ ?d where ?d >= 0, ?a != ?b return count(*)`,
	`match ?t -hasType-> ?k, ?m -hasTag-> ?t, ?m -hasCreator-> ?p return ?p, count(?m), count(*) order by count(*) desc, ?p asc limit 10`,
}

// checkAgainstRef compiles text (with and without cardinality hints — both
// plans must produce identical results), runs it on the MVCC and view paths
// and compares both against the reference evaluator.
func checkAgainstRef(t *testing.T, st *store.Store, scT, scV *Scratch, text string, params Params) {
	t.Helper()
	q, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse(%q): %v", text, err)
	}
	plain, err := Compile(q)
	if err != nil {
		t.Fatalf("Compile(%q): %v", text, err)
	}
	v := st.CurrentView()
	hinted, err := CompileOpts(q, Opts{Card: func(k ids.Kind) int { return v.NumOfKind(k) }})
	if err != nil {
		t.Fatalf("CompileOpts(%q): %v", text, err)
	}

	var want [][]store.Value
	var txnRows, txnHinted [][]store.Value
	st.View(func(tx *store.Txn) {
		want = refEval(t, tx, q, params)
		res, err := runTxn(tx, scT, plain, params)
		if err != nil {
			t.Fatalf("txn run of %q: %v", text, err)
		}
		txnRows = res.Rows
		res, err = runTxn(tx, scT, hinted, params)
		if err != nil {
			t.Fatalf("txn hinted run of %q: %v", text, err)
		}
		txnHinted = res.Rows
	})
	if !rowsEqual(want, txnRows) {
		t.Fatalf("txn path disagrees with reference on %q:\n ref %s\n got %s", text, fmtRows(want), fmtRows(txnRows))
	}
	if !rowsEqual(want, txnHinted) {
		t.Fatalf("txn hinted plan disagrees with reference on %q:\n ref %s\n got %s", text, fmtRows(want), fmtRows(txnHinted))
	}
	res, err := runView(v, scV, plain, params)
	if err != nil {
		t.Fatalf("view run of %q: %v", text, err)
	}
	if !rowsEqual(want, res.Rows) {
		t.Fatalf("view path disagrees with reference on %q:\n ref %s\n got %s", text, fmtRows(want), fmtRows(res.Rows))
	}
	res, err = runView(v, scV, hinted, params)
	if err != nil {
		t.Fatalf("view hinted run of %q: %v", text, err)
	}
	if !rowsEqual(want, res.Rows) {
		t.Fatalf("view hinted plan disagrees with reference on %q:\n ref %s\n got %s", text, fmtRows(want), fmtRows(res.Rows))
	}
}

func rowsEqual(a, b [][]store.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func fmtRows(rows [][]store.Value) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "(%d rows)", len(rows))
	for i, r := range rows {
		if i == 8 {
			sb.WriteString(" ...")
			break
		}
		fmt.Fprintf(&sb, " %#v", r)
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// SNB dataset suite
// ---------------------------------------------------------------------------

var snbOnce sync.Once
var snbStore *store.Store
var snbData *schema.Dataset

// snbEnv loads one small SNB dataset into a store, shared by the
// differential and handwritten-comparison suites (read-only from here on).
func snbEnv(t *testing.T) (*store.Store, *schema.Dataset) {
	t.Helper()
	snbOnce.Do(func() {
		out := datagen.Generate(datagen.Config{Seed: 7, Persons: 100, Workers: 2})
		st := store.New()
		schema.RegisterIndexes(st)
		if err := schema.LoadDimensions(st); err != nil {
			return
		}
		if err := schema.Load(st, out.Data); err != nil {
			return
		}
		snbStore, snbData = st, out.Data
	})
	if snbStore == nil {
		t.Fatal("SNB environment failed to load")
	}
	return snbStore, snbData
}

// snbParams builds one $person/$name/$maxDate binding for a sample person.
func snbParams(ds *schema.Dataset, person ids.ID) Params {
	name := ds.Persons[0].FirstName
	return Params{
		"person":  store.Int64(int64(uint64(person))),
		"name":    store.String(name),
		"maxDate": store.Int64(1 << 60),
	}
}

func samplePersons(ds *schema.Dataset, n int) []schema.Person {
	if n > len(ds.Persons) {
		n = len(ds.Persons)
	}
	step := len(ds.Persons) / n
	if step == 0 {
		step = 1
	}
	var out []schema.Person
	for i := 0; i < len(ds.Persons) && len(out) < n; i += step {
		out = append(out, ds.Persons[i])
	}
	return out
}

// TestDifferentialSNB runs the whole corpus against the reference evaluator
// on the SNB dataset, on both read paths, with shared scratches.
func TestDifferentialSNB(t *testing.T) {
	if testing.Short() {
		t.Skip("differential SNB suite is not short")
	}
	st, ds := snbEnv(t)
	scT, scV := NewScratch(), NewScratch()
	persons := samplePersons(ds, 3)
	for _, text := range diffCorpus {
		rooted := strings.Contains(text, "$person")
		if rooted {
			for _, p := range persons {
				checkAgainstRef(t, st, scT, scV, text, snbParams(ds, p.ID))
			}
		} else {
			checkAgainstRef(t, st, scT, scV, text, snbParams(ds, persons[0].ID))
		}
	}
}

// TestDeclarativeMatchesHandwritten pins the ISSUE-10 equivalence: the
// declarative Q1/Q2/Q8 return exactly the hand-written implementations'
// rows (projected onto the declarative columns), on both read paths, for a
// spread of start persons.
func TestDeclarativeMatchesHandwritten(t *testing.T) {
	st, ds := snbEnv(t)
	v := st.CurrentView()
	wsc := workload.NewScratch()
	qsc := NewScratch()
	name := ds.Persons[0].FirstName

	check := func(t *testing.T, specName string, params Params, want [][]store.Value) {
		t.Helper()
		spec := Lookup(specName)
		res, err := spec.RunView(v, qsc, params)
		if err != nil {
			t.Fatalf("%s view: %v", specName, err)
		}
		if !rowsEqual(want, res.Rows) {
			t.Fatalf("%s view != handwritten:\n hand %s\n decl %s", specName, fmtRows(want), fmtRows(res.Rows))
		}
		st.View(func(tx *store.Txn) {
			res, err = spec.RunTxn(tx, qsc, params)
		})
		if err != nil {
			t.Fatalf("%s txn: %v", specName, err)
		}
		if !rowsEqual(want, res.Rows) {
			t.Fatalf("%s txn != handwritten:\n hand %s\n decl %s", specName, fmtRows(want), fmtRows(res.Rows))
		}
	}

	total := 0
	for _, p := range samplePersons(ds, 12) {
		person := store.Int64(int64(uint64(p.ID)))

		// Q1: return ?f, ?dist, ?f.lastName.
		hand1 := workload.Q1(v, wsc, p.ID, name)
		total += len(hand1)
		want := make([][]store.Value, len(hand1))
		for i, r := range hand1 {
			want[i] = []store.Value{
				store.Int64(int64(uint64(r.Person))),
				store.Int64(int64(r.Distance)),
				store.String(r.LastName),
			}
		}
		check(t, "Q1", Params{"person": person, "name": store.String(name)}, want)

		// Q2: return ?m, ?f, ?d.
		maxDate := int64(1 << 60)
		hand2 := workload.Q2(v, wsc, p.ID, maxDate)
		total += len(hand2)
		want = make([][]store.Value, len(hand2))
		for i, r := range hand2 {
			want[i] = []store.Value{
				store.Int64(int64(uint64(r.Message))),
				store.Int64(int64(uint64(r.Creator))),
				store.Int64(r.CreationDate),
			}
		}
		check(t, "Q2", Params{"person": person, "maxDate": store.Int64(maxDate)}, want)

		// Q8: return ?c, ?r, ?d.
		hand8 := workload.Q8(v, wsc, p.ID)
		total += len(hand8)
		want = make([][]store.Value, len(hand8))
		for i, r := range hand8 {
			want[i] = []store.Value{
				store.Int64(int64(uint64(r.Comment))),
				store.Int64(int64(uint64(r.Replier))),
				store.Int64(r.CreationDate),
			}
		}
		check(t, "Q8", Params{"person": person}, want)
	}
	if total == 0 {
		t.Fatal("handwritten queries returned no rows for any sample person — the comparison is vacuous")
	}
}

// ---------------------------------------------------------------------------
// Randomized schema-shaped graphs with interleaved updates and deletes
// ---------------------------------------------------------------------------

type randGraph struct {
	persons, messages, forums []ids.ID
	tags, places              []ids.ID
	tagClasses                []ids.ID
}

var randNames = []string{"Ada", "Bob", "Eve"}

// seedRandDims creates the dimension layer: places, a tag-class tree and
// tags, mirroring the shape schema.LoadDimensions produces.
func seedRandDims(t *testing.T, st *store.Store, g *randGraph) {
	t.Helper()
	tx := st.Begin()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		id := ids.DimensionID(ids.KindPlace, uint32(i+1))
		must(tx.CreateNode(id, store.Props{{Key: store.PropName, Val: store.String(fmt.Sprintf("place%d", i))}}))
		g.places = append(g.places, id)
	}
	root := ids.DimensionID(ids.KindTagClass, 1)
	must(tx.CreateNode(root, store.Props{{Key: store.PropName, Val: store.String("Thing")}}))
	g.tagClasses = append(g.tagClasses, root)
	for i := 0; i < 3; i++ {
		id := ids.DimensionID(ids.KindTagClass, uint32(i+2))
		must(tx.CreateNode(id, nil))
		must(tx.AddEdge(id, store.EdgeIsSubclassOf, root, 0))
		g.tagClasses = append(g.tagClasses, id)
	}
	for i := 0; i < 6; i++ {
		id := ids.DimensionID(ids.KindTag, uint32(i+1))
		must(tx.CreateNode(id, nil))
		must(tx.AddEdge(id, store.EdgeHasType, g.tagClasses[1+i%3], 0))
		g.tags = append(g.tags, id)
	}
	must(tx.Commit())
}

// randStep applies one schema-shaped update transaction: new persons with
// properties and relationships, a forum every other step, posts, comments,
// likes — plus occasional edge deletions so tombstones flow through both
// read paths mid-suite.
func randStep(t *testing.T, st *store.Store, rnd *xrand.Rand, g *randGraph, step int) {
	t.Helper()
	tx := st.Begin()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	now := int64(step * 1000)
	for i := 0; i < 1+rnd.Intn(2); i++ {
		id := ids.Compose(ids.KindPerson, int64(step), uint32(i))
		must(tx.CreateNode(id, store.Props{
			{Key: store.PropFirstName, Val: store.String(randNames[rnd.Intn(len(randNames))])},
			{Key: store.PropLastName, Val: store.String(fmt.Sprintf("L%d", rnd.Intn(4)))},
			{Key: store.PropBirthday, Val: store.Int64(int64(rnd.Intn(1000)))},
			{Key: store.PropCreationDate, Val: store.Int64(now + int64(i))},
		}))
		must(tx.AddEdge(id, store.EdgeIsLocatedIn, g.places[rnd.Intn(len(g.places))], 0))
		must(tx.AddEdge(id, store.EdgeStudyAt, g.places[rnd.Intn(len(g.places))], int64(2000+rnd.Intn(10))))
		g.persons = append(g.persons, id)
	}
	for i := 0; i < 3; i++ {
		a := g.persons[rnd.Intn(len(g.persons))]
		b := g.persons[rnd.Intn(len(g.persons))]
		if a != b {
			must(tx.AddKnows(a, b, now+int64(i)))
		}
	}
	if step%2 == 1 {
		f := ids.Compose(ids.KindForum, int64(step), 0)
		must(tx.CreateNode(f, store.Props{{Key: store.PropTitle, Val: store.String(fmt.Sprintf("forum%d", step))}}))
		must(tx.AddEdge(f, store.EdgeHasModerator, g.persons[rnd.Intn(len(g.persons))], now))
		for i := 0; i < 2; i++ {
			must(tx.AddEdge(f, store.EdgeHasMember, g.persons[rnd.Intn(len(g.persons))], now+int64(i)))
		}
		g.forums = append(g.forums, f)
	}
	for i := 0; i < 2; i++ {
		m := ids.Compose(ids.KindPost, int64(step), uint32(i))
		must(tx.CreateNode(m, store.Props{
			{Key: store.PropCreationDate, Val: store.Int64(now + int64(10+i))},
			{Key: store.PropLength, Val: store.Int64(int64(rnd.Intn(100)))},
		}))
		must(tx.AddEdge(m, store.EdgeHasCreator, g.persons[rnd.Intn(len(g.persons))], now+int64(10+i)))
		must(tx.AddEdge(m, store.EdgeHasTag, g.tags[rnd.Intn(len(g.tags))], 0))
		if len(g.forums) > 0 {
			must(tx.AddEdge(g.forums[rnd.Intn(len(g.forums))], store.EdgeContainerOf, m, now))
		}
		g.messages = append(g.messages, m)
	}
	for i := 0; i < 1+rnd.Intn(2); i++ {
		c := ids.Compose(ids.KindComment, int64(step), uint32(i))
		must(tx.CreateNode(c, store.Props{
			{Key: store.PropCreationDate, Val: store.Int64(now + int64(20+i))},
			{Key: store.PropLength, Val: store.Int64(int64(rnd.Intn(50)))},
		}))
		must(tx.AddEdge(c, store.EdgeReplyOf, g.messages[rnd.Intn(len(g.messages))], now+int64(20+i)))
		must(tx.AddEdge(c, store.EdgeHasCreator, g.persons[rnd.Intn(len(g.persons))], now+int64(20+i)))
		g.messages = append(g.messages, c)
	}
	for i := 0; i < 2; i++ {
		must(tx.AddEdge(g.persons[rnd.Intn(len(g.persons))], store.EdgeLikes,
			g.messages[rnd.Intn(len(g.messages))], now+int64(30+i)))
	}
	// Tombstone an existing edge now and then (knows on both directions
	// half the time, so asymmetric deletions are covered too).
	if rnd.Bool(0.5) && len(g.persons) > 1 {
		owner := g.persons[rnd.Intn(len(g.persons))]
		var peer ids.ID
		st.View(func(rt *store.Txn) {
			if es := rt.Out(owner, store.EdgeKnows); len(es) > 0 {
				peer = es[rnd.Intn(len(es))].To
			}
		})
		if peer != 0 {
			must(tx.DeleteEdge(owner, store.EdgeKnows, peer))
			if rnd.Bool(0.5) {
				must(tx.DeleteEdge(peer, store.EdgeKnows, owner))
			}
		}
	}
	if rnd.Bool(0.3) && len(g.messages) > 0 {
		m := g.messages[rnd.Intn(len(g.messages))]
		var creator ids.ID
		st.View(func(rt *store.Txn) {
			if es := rt.Out(m, store.EdgeHasCreator); len(es) > 0 {
				creator = es[0].To
			}
		})
		if creator != 0 {
			must(tx.DeleteEdge(m, store.EdgeHasCreator, creator))
		}
	}
	must(tx.Commit())
}

// TestDifferentialRandomGraphs evolves small schema-shaped graphs through
// interleaved inserts and deletes, forcing full view recompactions (era
// bumps) mid-run, and checks the whole corpus against the reference
// evaluator after every step — with scratches reused across all of it.
func TestDifferentialRandomGraphs(t *testing.T) {
	const steps = 8
	for seed := uint64(1); seed <= 2; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			st := store.New()
			rnd := xrand.New(seed)
			g := &randGraph{}
			seedRandDims(t, st, g)
			scT, scV := NewScratch(), NewScratch()
			era0 := st.CurrentView().Era()
			bumped := false
			for step := 0; step < steps; step++ {
				// Every third step forces a full recompaction so the suite
				// crosses era bumps; otherwise leave incremental refresh on.
				if step%3 == 2 {
					st.SetViewCompactThreshold(0)
				} else {
					st.SetViewCompactThreshold(1 << 30)
				}
				randStep(t, st, rnd, g, step)
				if st.CurrentView().Era() != era0 {
					bumped = true
				}
				params := Params{
					"person":  store.Int64(int64(uint64(g.persons[rnd.Intn(len(g.persons))]))),
					"name":    store.String(randNames[rnd.Intn(len(randNames))]),
					"maxDate": store.Int64(1 << 60),
				}
				for _, text := range diffCorpus {
					checkAgainstRef(t, st, scT, scV, text, params)
				}
				// The registry queries ride the same differential harness.
				for i := range Registry {
					checkAgainstRef(t, st, scT, scV, Registry[i].Text, params)
				}
			}
			if !bumped {
				t.Fatal("suite never crossed an era bump")
			}
		})
	}
}
