package query

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError reports a syntax or validation error with its byte offset in
// the query text.
type ParseError struct {
	Off int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("query: parse error at offset %d: %s", e.Off, e.Msg)
}

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tVar   // ?name
	tParam // $name
	tInt
	tStr
	tComma
	tColon
	tDot
	tDotDot
	tAt
	tLParen
	tRParen
	tStar
	tDash
	tArrow // ->
	tCmp   // payload in token.cmp
)

type token struct {
	kind tokKind
	off  int
	text string // ident/var/param name, string literal value
	num  int64
	cmp  CmpOp
}

// lex tokenizes the whole source up front. It never panics on arbitrary
// input; every reject path is a *ParseError.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == ',':
			toks = append(toks, token{kind: tComma, off: i})
			i++
		case c == ':':
			toks = append(toks, token{kind: tColon, off: i})
			i++
		case c == '@':
			toks = append(toks, token{kind: tAt, off: i})
			i++
		case c == '(':
			toks = append(toks, token{kind: tLParen, off: i})
			i++
		case c == ')':
			toks = append(toks, token{kind: tRParen, off: i})
			i++
		case c == '*':
			toks = append(toks, token{kind: tStar, off: i})
			i++
		case c == '.':
			if i+1 < len(src) && src[i+1] == '.' {
				toks = append(toks, token{kind: tDotDot, off: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tDot, off: i})
				i++
			}
		case c == '-':
			if i+1 < len(src) && src[i+1] == '>' {
				toks = append(toks, token{kind: tArrow, off: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tDash, off: i})
				i++
			}
		case c == '=':
			toks = append(toks, token{kind: tCmp, off: i, cmp: CmpEq})
			i++
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{kind: tCmp, off: i, cmp: CmpNe})
				i += 2
			} else {
				return nil, &ParseError{Off: i, Msg: "expected != after !"}
			}
		case c == '<':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{kind: tCmp, off: i, cmp: CmpLe})
				i += 2
			} else {
				toks = append(toks, token{kind: tCmp, off: i, cmp: CmpLt})
				i++
			}
		case c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{kind: tCmp, off: i, cmp: CmpGe})
				i += 2
			} else {
				toks = append(toks, token{kind: tCmp, off: i, cmp: CmpGt})
				i++
			}
		case c == '?' || c == '$':
			start := i
			i++
			j := i
			for j < len(src) && isIdentChar(src[j], j > i) {
				j++
			}
			if j == i {
				return nil, &ParseError{Off: start, Msg: fmt.Sprintf("expected name after %c", c)}
			}
			k := tVar
			if c == '$' {
				k = tParam
			}
			toks = append(toks, token{kind: k, off: start, text: src[i:j]})
			i = j
		case c >= '0' && c <= '9':
			start := i
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			n, err := strconv.ParseInt(src[start:j], 10, 64)
			if err != nil {
				return nil, &ParseError{Off: start, Msg: "integer out of range"}
			}
			toks = append(toks, token{kind: tInt, off: start, num: n})
			i = j
		case c == '"':
			start := i
			i++
			var sb strings.Builder
			for {
				if i >= len(src) {
					return nil, &ParseError{Off: start, Msg: "unterminated string"}
				}
				b := src[i]
				if b == '"' {
					i++
					break
				}
				if b == '\n' || b == '\r' {
					return nil, &ParseError{Off: start, Msg: "newline in string"}
				}
				if b == '\\' {
					if i+1 >= len(src) || (src[i+1] != '"' && src[i+1] != '\\') {
						return nil, &ParseError{Off: i, Msg: `unknown escape (only \" and \\)`}
					}
					sb.WriteByte(src[i+1])
					i += 2
					continue
				}
				sb.WriteByte(b)
				i++
			}
			toks = append(toks, token{kind: tStr, off: start, text: sb.String()})
		case isIdentChar(c, false):
			start := i
			j := i
			for j < len(src) && isIdentChar(src[j], true) {
				j++
			}
			toks = append(toks, token{kind: tIdent, off: start, text: src[start:j]})
			i = j
		default:
			return nil, &ParseError{Off: i, Msg: fmt.Sprintf("unexpected byte %q", c)}
		}
	}
	toks = append(toks, token{kind: tEOF, off: len(src)})
	return toks, nil
}

func isIdentChar(c byte, notFirst bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' {
		return true
	}
	return notFirst && c >= '0' && c <= '9'
}

type parser struct {
	toks   []token
	pos    int
	q      *Query
	varIdx map[string]int
	parIdx map[string]int
}

// Parse parses one pattern query. The returned AST is fully validated:
// names resolve against the schema, every variable is bound by a pattern,
// order-by keys resolve to return items, and all size limits hold.
func Parse(src string) (*Query, error) {
	if len(src) > MaxQueryLen {
		return nil, &ParseError{Off: MaxQueryLen, Msg: fmt.Sprintf("query longer than %d bytes", MaxQueryLen)}
	}
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, q: &Query{}, varIdx: map[string]int{}, parIdx: map[string]int{}}
	if err := p.parseQuery(); err != nil {
		return nil, err
	}
	return p.q, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.advance(); return t }

func (p *parser) advance() {
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
}

// keyword reports whether the current token is the given keyword
// (case-insensitive, as all keywords are).
func (p *parser) keyword(kw string) bool {
	t := p.cur()
	return t.kind == tIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return p.errf("expected %q", kw)
	}
	p.advance()
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Off: p.cur().off, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) parseQuery() error {
	if err := p.expectKeyword("match"); err != nil {
		return err
	}
	for {
		if len(p.q.Atoms) >= MaxAtoms {
			return p.errf("more than %d patterns", MaxAtoms)
		}
		if err := p.parseAtom(); err != nil {
			return err
		}
		if p.cur().kind != tComma {
			break
		}
		p.advance()
	}
	if p.keyword("where") {
		p.advance()
		for {
			if len(p.q.Filters) >= MaxFilters {
				return p.errf("more than %d filters", MaxFilters)
			}
			if err := p.parseFilter(); err != nil {
				return err
			}
			if p.cur().kind != tComma {
				break
			}
			p.advance()
		}
	}
	if err := p.expectKeyword("return"); err != nil {
		return err
	}
	for {
		if len(p.q.Returns) >= MaxReturnItems {
			return p.errf("more than %d return items", MaxReturnItems)
		}
		it, err := p.parseReturnItem()
		if err != nil {
			return err
		}
		p.q.Returns = append(p.q.Returns, it)
		if p.cur().kind != tComma {
			break
		}
		p.advance()
	}
	if p.keyword("order") {
		p.advance()
		if err := p.expectKeyword("by"); err != nil {
			return err
		}
		for {
			if len(p.q.Orders) >= MaxReturnItems {
				return p.errf("more than %d order keys", MaxReturnItems)
			}
			if err := p.parseOrderKey(); err != nil {
				return err
			}
			if p.cur().kind != tComma {
				break
			}
			p.advance()
		}
	}
	if p.keyword("limit") {
		p.advance()
		t := p.cur()
		if t.kind != tInt {
			return p.errf("expected integer after limit")
		}
		if t.num < 1 || t.num > MaxLimit {
			return p.errf("limit must be in [1, %d]", MaxLimit)
		}
		p.q.Limit = int(t.num)
		p.advance()
	}
	if p.cur().kind != tEOF {
		return p.errf("unexpected trailing input")
	}
	return nil
}

// nodeVar resolves (or declares) a node variable.
func (p *parser) nodeVar(name string) (int, error) {
	if v, ok := p.varIdx[name]; ok {
		if p.q.Vars[v].Kind != VarNode {
			return 0, p.errf("variable ?%s is a stamp/distance variable, not a node", name)
		}
		return v, nil
	}
	if len(p.q.Vars) >= MaxVars {
		return 0, p.errf("more than %d variables", MaxVars)
	}
	v := len(p.q.Vars)
	p.q.Vars = append(p.q.Vars, Var{Name: name, Kind: VarNode})
	p.varIdx[name] = v
	return v, nil
}

// scalarVar declares a fresh stamp/distance variable; reuse is an error
// (stamp equality joins are out of the language).
func (p *parser) scalarVar(name string) (int, error) {
	if _, ok := p.varIdx[name]; ok {
		return 0, p.errf("stamp variable ?%s already bound", name)
	}
	if len(p.q.Vars) >= MaxVars {
		return 0, p.errf("more than %d variables", MaxVars)
	}
	v := len(p.q.Vars)
	p.q.Vars = append(p.q.Vars, Var{Name: name, Kind: VarScalar})
	p.varIdx[name] = v
	return v, nil
}

func (p *parser) param(name string) int {
	if i, ok := p.parIdx[name]; ok {
		return i
	}
	i := len(p.q.Params)
	p.q.Params = append(p.q.Params, name)
	p.parIdx[name] = i
	return i
}

func (p *parser) parseTerm() (Term, error) {
	t := p.next()
	switch t.kind {
	case tVar:
		v, err := p.nodeVar(t.text)
		if err != nil {
			return Term{}, err
		}
		return Term{Kind: TermVar, Var: v}, nil
	case tParam:
		return Term{Kind: TermParam, Param: p.param(t.text)}, nil
	case tInt:
		return Term{Kind: TermInt, Int: t.num}, nil
	default:
		return Term{}, &ParseError{Off: t.off, Msg: "expected ?var, $param or integer"}
	}
}

func (p *parser) parseAtom() error {
	// `?x : Kind` constraint.
	if p.cur().kind == tVar && p.toks[p.pos+1].kind == tColon {
		v, err := p.nodeVar(p.cur().text)
		if err != nil {
			return err
		}
		p.advance()
		p.advance()
		t := p.next()
		if t.kind != tIdent {
			return &ParseError{Off: t.off, Msg: "expected kind name after :"}
		}
		k, ok := kindByName[t.text]
		if !ok {
			return &ParseError{Off: t.off, Msg: fmt.Sprintf("unknown kind %q", t.text)}
		}
		p.q.Atoms = append(p.q.Atoms, Atom{Kind: AtomKindConstraint, Var: v, NodeKind: k})
		return nil
	}
	src, err := p.parseTerm()
	if err != nil {
		return err
	}
	if p.cur().kind != tDash {
		return p.errf("expected -edge-> after pattern source")
	}
	p.advance()
	et := p.next()
	if et.kind != tIdent {
		return &ParseError{Off: et.off, Msg: "expected edge type name"}
	}
	edge, ok := edgeByName[et.text]
	if !ok {
		return &ParseError{Off: et.off, Msg: fmt.Sprintf("unknown edge type %q", et.text)}
	}
	minHops, maxHops := 1, 1
	if p.cur().kind == tStar {
		p.advance()
		lo := p.next()
		if lo.kind != tInt {
			return &ParseError{Off: lo.off, Msg: "expected hop lower bound after *"}
		}
		if p.cur().kind != tDotDot {
			return p.errf("expected .. in hop range")
		}
		p.advance()
		hi := p.next()
		if hi.kind != tInt {
			return &ParseError{Off: hi.off, Msg: "expected hop upper bound after .."}
		}
		minHops, maxHops = int(lo.num), int(hi.num)
		if minHops < 1 || maxHops > MaxHops || minHops > maxHops {
			return &ParseError{Off: lo.off, Msg: fmt.Sprintf("hop range must satisfy 1 <= lo <= hi <= %d", MaxHops)}
		}
	}
	if p.cur().kind != tArrow {
		return p.errf("expected ->")
	}
	p.advance()
	dst, err := p.parseTerm()
	if err != nil {
		return err
	}
	stamp := -1
	if p.cur().kind == tAt {
		p.advance()
		t := p.next()
		if t.kind != tVar {
			return &ParseError{Off: t.off, Msg: "expected ?var after @"}
		}
		stamp, err = p.scalarVar(t.text)
		if err != nil {
			return err
		}
	}
	p.q.Atoms = append(p.q.Atoms, Atom{
		Kind: AtomEdge, Src: src, Dst: dst, Edge: edge,
		Stamp: stamp, MinHops: minHops, MaxHops: maxHops,
	})
	return nil
}

// parseExpr parses a filter/return scalar expression. Variables must
// already be declared by a pattern (filters and projections never bind).
func (p *parser) parseExpr() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tVar:
		v, ok := p.varIdx[t.text]
		if !ok {
			return Expr{}, &ParseError{Off: t.off, Msg: fmt.Sprintf("variable ?%s is not bound by any pattern", t.text)}
		}
		if p.cur().kind == tDot {
			p.advance()
			pt := p.next()
			if pt.kind != tIdent {
				return Expr{}, &ParseError{Off: pt.off, Msg: "expected property name after ."}
			}
			key, ok := propByName[pt.text]
			if !ok {
				return Expr{}, &ParseError{Off: pt.off, Msg: fmt.Sprintf("unknown property %q", pt.text)}
			}
			if p.q.Vars[v].Kind != VarNode {
				return Expr{}, &ParseError{Off: t.off, Msg: fmt.Sprintf("?%s is not a node variable", t.text)}
			}
			return Expr{Kind: ExprProp, Var: v, Prop: key}, nil
		}
		return Expr{Kind: ExprVar, Var: v}, nil
	case tParam:
		return Expr{Kind: ExprParam, Param: p.param(t.text)}, nil
	case tInt:
		return Expr{Kind: ExprInt, Int: t.num}, nil
	case tDash:
		n := p.next()
		if n.kind != tInt {
			return Expr{}, &ParseError{Off: n.off, Msg: "expected integer after -"}
		}
		return Expr{Kind: ExprInt, Int: -n.num}, nil
	case tStr:
		return Expr{Kind: ExprStr, Str: t.text}, nil
	default:
		return Expr{}, &ParseError{Off: t.off, Msg: "expected expression"}
	}
}

func (p *parser) parseFilter() error {
	lhs, err := p.parseExpr()
	if err != nil {
		return err
	}
	t := p.next()
	if t.kind != tCmp {
		return &ParseError{Off: t.off, Msg: "expected comparison operator"}
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return err
	}
	p.q.Filters = append(p.q.Filters, Filter{Lhs: lhs, Op: t.cmp, Rhs: rhs})
	return nil
}

func (p *parser) parseReturnItem() (ReturnItem, error) {
	if p.keyword("count") || p.keyword("sum") {
		agg := AggCount
		if p.keyword("sum") {
			agg = AggSum
		}
		p.advance()
		if p.cur().kind != tLParen {
			return ReturnItem{}, p.errf("expected ( after aggregate")
		}
		p.advance()
		if agg == AggCount && p.cur().kind == tStar {
			p.advance()
			if p.cur().kind != tRParen {
				return ReturnItem{}, p.errf("expected ) after count(*")
			}
			p.advance()
			return ReturnItem{Agg: AggCount, Star: true}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return ReturnItem{}, err
		}
		if p.cur().kind != tRParen {
			return ReturnItem{}, p.errf("expected ) after aggregate expression")
		}
		p.advance()
		return ReturnItem{Agg: agg, Expr: e}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return ReturnItem{}, err
	}
	return ReturnItem{Expr: e}, nil
}

func (p *parser) parseOrderKey() error {
	it, err := p.parseReturnItem()
	if err != nil {
		return err
	}
	desc := false
	if p.keyword("asc") {
		p.advance()
	} else if p.keyword("desc") {
		desc = true
		p.advance()
	}
	col := -1
	for i := range p.q.Returns {
		if p.q.Returns[i] == it {
			col = i
			break
		}
	}
	if col < 0 {
		return p.errf("order key %s does not match any return item", printItem(p.q, it))
	}
	p.q.Orders = append(p.q.Orders, OrderKey{Item: it, Desc: desc, Col: col})
	return nil
}
