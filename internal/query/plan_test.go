package query

import (
	"testing"

	"ldbcsnb/internal/ids"
)

// planCorpus gathers every query text the test files know about, so the
// planner properties range over the widest available sample.
func planCorpus() []string {
	texts := append([]string(nil), roundTripQueries...)
	texts = append(texts, diffCorpus...)
	for i := range Registry {
		texts = append(texts, Registry[i].Text)
	}
	return texts
}

// TestPlannerDeterminism pins the //snb:deterministic contract of
// CompileOpts: repeated compilations of the same text — from fresh parses,
// with and without cardinality hints — yield byte-identical plan strings.
func TestPlannerDeterminism(t *testing.T) {
	card := func(k ids.Kind) int { return 1000 - int(k)*7 } // arbitrary but fixed
	for _, text := range planCorpus() {
		var plain, hinted string
		for i := 0; i < 20; i++ {
			q, err := Parse(text)
			if err != nil {
				t.Fatalf("Parse(%q): %v", text, err)
			}
			p, err := Compile(q)
			if err != nil {
				t.Fatalf("Compile(%q): %v", text, err)
			}
			h, err := CompileOpts(q, Opts{Card: card})
			if err != nil {
				t.Fatalf("CompileOpts(%q): %v", text, err)
			}
			if i == 0 {
				plain, hinted = p.String(), h.String()
				continue
			}
			if got := p.String(); got != plain {
				t.Fatalf("plan for %q drifted on run %d:\n%svs\n%s", text, i, got, plain)
			}
			if got := h.String(); got != hinted {
				t.Fatalf("hinted plan for %q drifted on run %d:\n%svs\n%s", text, i, got, hinted)
			}
		}
	}
}

// TestPlanBindsBeforeUse walks every compiled plan op-by-op, tracking the
// set of bound variables, and asserts the structural soundness invariants:
// every op reads only bound variables, every filter runs only once its
// variables are bound, every variable is bound exactly once, and every
// atom and filter is consumed exactly once.
func TestPlanBindsBeforeUse(t *testing.T) {
	for _, text := range planCorpus() {
		q, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		p, err := Compile(q)
		if err != nil {
			t.Fatalf("Compile(%q): %v", text, err)
		}
		bound := make([]bool, len(q.Vars))
		usedAtom := make([]bool, len(q.Atoms))
		usedFilter := make([]bool, len(q.Filters))
		termOK := func(tm Term) bool { return tm.Kind != TermVar || bound[tm.Var] }
		bindVar := func(v int) {
			if bound[v] {
				t.Fatalf("%q: variable ?%s bound twice", text, q.Vars[v].Name)
			}
			bound[v] = true
		}
		consumeAtom := func(i int) {
			if usedAtom[i] {
				t.Fatalf("%q: atom %d consumed twice", text, i)
			}
			usedAtom[i] = true
		}
		for _, op := range p.ops {
			switch op.kind {
			case opScan:
				bindVar(op.scanVar)
			case opExpand, opBFS:
				a := &q.Atoms[op.atom]
				consumeAtom(op.atom)
				if op.kind == opBFS && op.check {
					if !termOK(a.Src) || !termOK(a.Dst) {
						t.Fatalf("%q: bfs-check with unbound endpoint", text)
					}
				} else if op.out {
					if !termOK(a.Src) {
						t.Fatalf("%q: expand-out from unbound source", text)
					}
					bindVar(a.Dst.Var)
				} else {
					if !termOK(a.Dst) {
						t.Fatalf("%q: expand-in from unbound destination", text)
					}
					bindVar(a.Src.Var)
				}
				if a.Stamp >= 0 {
					bindVar(a.Stamp)
				}
			case opCheckEdge:
				a := &q.Atoms[op.atom]
				consumeAtom(op.atom)
				if !termOK(a.Src) || !termOK(a.Dst) {
					t.Fatalf("%q: edge check with unbound endpoint", text)
				}
				if a.Stamp >= 0 {
					bindVar(a.Stamp)
				}
			case opCheckKind:
				a := &q.Atoms[op.atom]
				consumeAtom(op.atom)
				if !bound[a.Var] {
					t.Fatalf("%q: kind check on unbound variable", text)
				}
			case opFilter:
				if usedFilter[op.filter] {
					t.Fatalf("%q: filter %d placed twice", text, op.filter)
				}
				usedFilter[op.filter] = true
				f := &q.Filters[op.filter]
				for _, v := range exprVars(f.Lhs, exprVars(f.Rhs, nil)) {
					if !bound[v] {
						t.Fatalf("%q: filter uses unbound variable ?%s", text, q.Vars[v].Name)
					}
				}
			}
		}
		for v := range bound {
			if !bound[v] {
				t.Fatalf("%q: variable ?%s never bound by the plan", text, q.Vars[v].Name)
			}
		}
		for i := range usedAtom {
			if !usedAtom[i] && q.Atoms[i].Kind == AtomEdge {
				t.Fatalf("%q: edge atom %d never consumed", text, i)
			}
			// Kind atoms may be consumed by a kind-rooted scan instead of an
			// explicit check op; those do not appear in p.ops, so only edge
			// atoms are asserted here. The differential suite covers kind
			// semantics end to end.
		}
		for i := range usedFilter {
			if !usedFilter[i] {
				t.Fatalf("%q: filter %d never placed", text, i)
			}
		}
	}
}
