package query

import (
	"fmt"
	"strings"

	"ldbcsnb/internal/ids"
)

type opKind uint8

const (
	// opScan binds a node variable by enumerating NodesOfKind (all kinds
	// when ScanKind is zero). A scan after the first op is a cross product:
	// it runs once per input row.
	opScan opKind = iota
	// opExpand binds one endpoint of a plain edge atom from the other via
	// Out (out=true) or In, also binding the stamp variable if declared.
	opExpand
	// opCheckEdge verifies a plain edge atom whose endpoints are both
	// bound, binding its stamp variable if declared (one row per distinct
	// stamp between the endpoints).
	opCheckEdge
	// opBFS evaluates a variable-length atom by breadth-first search from
	// the bound endpoint, binding the other endpoint (check=false) or
	// verifying it (check=true); the distance variable, if declared, binds
	// the minimal hop count.
	opBFS
	// opCheckKind verifies a kind constraint on a bound variable.
	opCheckKind
	// opFilter evaluates one where-clause comparison; all its variables
	// are bound (the planner guarantees it, the property test pins it).
	opFilter
)

// planOp is one step of a streaming plan. Edge/kind ops reference their
// source atom; the executor derives operands from the atom plus the
// direction flag.
type planOp struct {
	kind     opKind
	atom     int      // index into Q.Atoms (opExpand/opCheckEdge/opBFS/opCheckKind)
	out      bool     // opExpand/opBFS: true = from Src over Out, false = from Dst over In
	check    bool     // opBFS: both endpoints already bound
	scanVar  int      // opScan: variable slot being bound
	scanKind ids.Kind // opScan: 0 = all kinds
	filter   int      // opFilter: index into Q.Filters
}

// Plan is a compiled query: a deterministic op sequence feeding the sink
// (projection, aggregation, canonical ordering, limit) described by Q's
// return/order/limit clauses.
type Plan struct {
	Q   *Query
	ops []planOp

	cols []string // result column names, shared by every execution

	// Fast-path metadata, a pure function of the AST (so plans stay
	// deterministic and cacheable). intSink is set for top-k queries whose
	// return items are all plain variables: result rows then live as int64
	// columns and heap comparisons skip value boxing entirely. fuseAt is
	// the op index of the final binding expand when everything after it is
	// an integer-shape filter and the sink is an int sink: the executor
	// runs expand + filters + top-k push as one loop (-1 = no fusion).
	intSink     bool
	icols       []int // var slot per return column (intSink only)
	fuseAt      int
	fuseFilters []int // filter indices folded into the fused loop

	// keys is Q.Orders compacted to (column, direction) pairs so the hot
	// comparison loops don't copy the full OrderKey (with its embedded
	// return item) per iteration.
	keys []sortKey
}

// sortKey is one order-by key reduced to its resolved column index and
// direction.
type sortKey struct {
	col  int
	desc bool
}

// analyze fills the fast-path metadata after the op sequence is final.
func (p *Plan) analyze() {
	q := p.Q
	p.fuseAt = -1
	p.cols = make([]string, len(q.Returns))
	for i := range q.Returns {
		p.cols[i] = printItem(q, q.Returns[i])
	}
	p.keys = make([]sortKey, len(q.Orders))
	for i := range q.Orders {
		p.keys[i] = sortKey{col: q.Orders[i].Col, desc: q.Orders[i].Desc}
	}
	if q.HasAggregates() || q.Limit <= 0 {
		return
	}
	for i := range q.Returns {
		if q.Returns[i].Expr.Kind != ExprVar {
			return
		}
	}
	p.intSink = true
	p.icols = make([]int, len(q.Returns))
	for i := range q.Returns {
		p.icols[i] = q.Returns[i].Expr.Var
	}
	last := -1
	for i := range p.ops {
		if p.ops[i].kind != opFilter {
			last = i
		}
	}
	if last < 0 || p.ops[last].kind != opExpand {
		return
	}
	var fused []int
	for i := last + 1; i < len(p.ops); i++ {
		f := &q.Filters[p.ops[i].filter]
		if !intFilterShape(f.Lhs) || !intFilterShape(f.Rhs) {
			return
		}
		fused = append(fused, p.ops[i].filter)
	}
	p.fuseAt, p.fuseFilters = last, fused
}

// intFilterShape reports whether one comparison side can be evaluated as a
// bare int64 (variables always hold ints; parameters are checked — and
// string parameters constant-folded — when the execution binds them).
func intFilterShape(e Expr) bool {
	return e.Kind == ExprVar || e.Kind == ExprParam || e.Kind == ExprInt
}

// Opts tunes planning.
type Opts struct {
	// Card returns an (approximate) node count for a kind, used to pick
	// the cheapest NodesOfKind-rooted scan (e.g. SnapshotView.NumOfKind
	// via Stats.View). Nil is fine: the planner is statistics-free and
	// falls back to structural tie-breaks only.
	Card func(k ids.Kind) int
}

// Compile plans a parsed query with no cardinality hints.
func Compile(q *Query) (*Plan, error) { return CompileOpts(q, Opts{}) }

// CompileOpts is the greedy statistics-free planner. It binds the most
// constrained pattern first: constant-rooted expansions before scans,
// kind-constrained scans (cheapest cardinality when Card is given) before
// all-kind scans, bound-bound checks before single-hop expansions before
// BFS expansions, and it attaches each kind check and filter at the
// earliest point where its variables are bound. Ties break on atom /
// variable index, so planning is a pure function of the AST (and the Card
// values) — the same pattern always yields the identical plan string.
//
//snb:deterministic
func CompileOpts(q *Query, opts Opts) (*Plan, error) {
	p := &Plan{Q: q}
	bound := make([]bool, len(q.Vars))
	done := make([]bool, len(q.Atoms))
	filterDone := make([]bool, len(q.Filters))

	termBound := func(t Term) bool { return t.Kind != TermVar || bound[t.Var] }
	bindTerm := func(t Term) {
		if t.Kind == TermVar {
			bound[t.Var] = true
		}
	}
	bindStamp := func(a *Atom) {
		if a.Stamp >= 0 {
			bound[a.Stamp] = true
		}
	}

	// Variables referenced by each filter, in expression order.
	fvars := make([][]int, len(q.Filters))
	for i := range q.Filters {
		fvars[i] = exprVars(q.Filters[i].Lhs, exprVars(q.Filters[i].Rhs, nil))
	}

	// settle attaches every kind check and filter whose variables just
	// became bound. Neither binds anything, so one pass per call suffices.
	settle := func() {
		for i := range q.Atoms {
			a := &q.Atoms[i]
			if a.Kind == AtomKindConstraint && !done[i] && bound[a.Var] {
				p.ops = append(p.ops, planOp{kind: opCheckKind, atom: i})
				done[i] = true
			}
		}
		for i := range q.Filters {
			if !filterDone[i] && allBound(bound, fvars[i]) {
				p.ops = append(p.ops, planOp{kind: opFilter, filter: i})
				filterDone[i] = true
			}
		}
	}
	settle() // constant-only filters run before any row is produced

	for {
		remaining := false
		for i := range done {
			if !done[i] {
				remaining = true
				break
			}
		}
		if !remaining {
			break
		}

		// Tier 1: edge atoms with both endpoints bound — pure checks.
		if i, ok := pickAtom(q, done, func(a *Atom) bool {
			return termBound(a.Src) && termBound(a.Dst)
		}); ok {
			a := &q.Atoms[i]
			if a.VarLen() {
				p.ops = append(p.ops, planOp{kind: opBFS, atom: i, out: true, check: true})
			} else {
				p.ops = append(p.ops, planOp{kind: opCheckEdge, atom: i, out: true})
			}
			done[i] = true
			bindStamp(a)
			settle()
			continue
		}

		// Tier 2: plain edge atoms with one endpoint bound — expansions.
		if i, ok := pickAtom(q, done, func(a *Atom) bool {
			return !a.VarLen() && (termBound(a.Src) || termBound(a.Dst))
		}); ok {
			a := &q.Atoms[i]
			out := termBound(a.Src)
			p.ops = append(p.ops, planOp{kind: opExpand, atom: i, out: out})
			if out {
				bindTerm(a.Dst)
			} else {
				bindTerm(a.Src)
			}
			done[i] = true
			bindStamp(a)
			settle()
			continue
		}

		// Tier 3: variable-length atoms with one endpoint bound.
		if i, ok := pickAtom(q, done, func(a *Atom) bool {
			return termBound(a.Src) || termBound(a.Dst)
		}); ok {
			a := &q.Atoms[i]
			out := termBound(a.Src)
			p.ops = append(p.ops, planOp{kind: opBFS, atom: i, out: out})
			if out {
				bindTerm(a.Dst)
			} else {
				bindTerm(a.Src)
			}
			done[i] = true
			bindStamp(a)
			settle()
			continue
		}

		// Tier 4: no resolvable endpoint — root a scan (start of a new
		// connected component, or a kind-only query).
		v, kindAtom := pickScan(q, bound, done, opts)
		if v < 0 {
			return nil, fmt.Errorf("query: planner stuck (no bindable pattern)")
		}
		op := planOp{kind: opScan, scanVar: v}
		if kindAtom >= 0 {
			op.scanKind = q.Atoms[kindAtom].NodeKind
			done[kindAtom] = true
		}
		p.ops = append(p.ops, op)
		bound[v] = true
		settle()
	}

	for v := range bound {
		if !bound[v] {
			return nil, fmt.Errorf("query: variable ?%s is never bound", q.Vars[v].Name)
		}
	}
	for i := range filterDone {
		if !filterDone[i] {
			return nil, fmt.Errorf("query: filter %d never placed", i)
		}
	}
	p.analyze()
	return p, nil
}

// pickAtom returns the lowest-index pending edge atom satisfying ok.
func pickAtom(q *Query, done []bool, ok func(a *Atom) bool) (int, bool) {
	for i := range q.Atoms {
		if done[i] || q.Atoms[i].Kind != AtomEdge {
			continue
		}
		if ok(&q.Atoms[i]) {
			return i, true
		}
	}
	return 0, false
}

// pickScan chooses the root variable for a scan: kind-constrained
// variables first (cheapest Card when hints are present), then the
// variable touching the most pending edge atoms, then the lowest variable
// index. Returns the variable and the consumed kind atom (-1 if none).
func pickScan(q *Query, bound, done []bool, opts Opts) (int, int) {
	best, bestKindAtom := -1, -1
	bestHasKind, bestCard, bestInc := false, 0, 0
	for v := range q.Vars {
		if bound[v] || q.Vars[v].Kind != VarNode {
			continue
		}
		kindAtom := -1
		for i := range q.Atoms {
			if !done[i] && q.Atoms[i].Kind == AtomKindConstraint && q.Atoms[i].Var == v {
				kindAtom = i
				break
			}
		}
		hasKind := kindAtom >= 0
		card := 0
		if hasKind && opts.Card != nil {
			card = opts.Card(q.Atoms[kindAtom].NodeKind)
		}
		inc := 0
		for i := range q.Atoms {
			a := &q.Atoms[i]
			if done[i] || a.Kind != AtomEdge {
				continue
			}
			if (a.Src.Kind == TermVar && a.Src.Var == v) || (a.Dst.Kind == TermVar && a.Dst.Var == v) {
				inc++
			}
		}
		better := false
		switch {
		case best < 0:
			better = true
		case hasKind != bestHasKind:
			better = hasKind
		case hasKind && opts.Card != nil && card != bestCard:
			better = card < bestCard
		case inc != bestInc:
			better = inc > bestInc
		}
		if better {
			best, bestKindAtom, bestHasKind, bestCard, bestInc = v, kindAtom, hasKind, card, inc
		}
	}
	return best, bestKindAtom
}

func exprVars(e Expr, dst []int) []int {
	if e.Kind == ExprVar || e.Kind == ExprProp {
		dst = append(dst, e.Var)
	}
	return dst
}

func allBound(bound []bool, vars []int) bool {
	for _, v := range vars {
		if !bound[v] {
			return false
		}
	}
	return true
}

// String renders the plan, one numbered op per line plus the sink. The
// string is a pure function of the AST and planning inputs; the
// determinism property test pins it.
func (p *Plan) String() string {
	var sb strings.Builder
	q := p.Q
	for i, op := range p.ops {
		fmt.Fprintf(&sb, "%d. ", i+1)
		switch op.kind {
		case opScan:
			sb.WriteString("scan ?")
			sb.WriteString(q.Vars[op.scanVar].Name)
			if op.scanKind != 0 {
				sb.WriteString(" : ")
				sb.WriteString(op.scanKind.String())
			}
		case opExpand:
			if op.out {
				sb.WriteString("expand-out ")
			} else {
				sb.WriteString("expand-in ")
			}
			printAtom(&sb, q, &q.Atoms[op.atom])
		case opCheckEdge:
			sb.WriteString("check ")
			printAtom(&sb, q, &q.Atoms[op.atom])
		case opBFS:
			switch {
			case op.check:
				sb.WriteString("bfs-check ")
			case op.out:
				sb.WriteString("bfs-out ")
			default:
				sb.WriteString("bfs-in ")
			}
			printAtom(&sb, q, &q.Atoms[op.atom])
		case opCheckKind:
			sb.WriteString("kind ")
			printAtom(&sb, q, &q.Atoms[op.atom])
		case opFilter:
			f := &q.Filters[op.filter]
			sb.WriteString("filter ")
			printExpr(&sb, q, f.Lhs)
			sb.WriteByte(' ')
			sb.WriteString(f.Op.String())
			sb.WriteByte(' ')
			printExpr(&sb, q, f.Rhs)
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%d. sink return ", len(p.ops)+1)
	for i := range q.Returns {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(printItem(q, q.Returns[i]))
	}
	if len(q.Orders) > 0 {
		sb.WriteString(" order by ")
		for i := range q.Orders {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(printItem(q, q.Orders[i].Item))
			if q.Orders[i].Desc {
				sb.WriteString(" desc")
			} else {
				sb.WriteString(" asc")
			}
		}
	}
	if q.Limit > 0 {
		fmt.Fprintf(&sb, " limit %d", q.Limit)
	}
	sb.WriteByte('\n')
	return sb.String()
}
