package query

import (
	"fmt"

	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/workload"
	"ldbcsnb/internal/xrand"
)

// Spec describes one named declarative query, mirroring the
// workload.ComplexSpec conventions: a display name, a Bind drawing
// concrete parameters from the curated pools, and the two monomorphized
// run entry points so both read paths execute the same compiled plan.
type Spec struct {
	Name string
	// Text is the canonical query text; the compiled plan is built from it
	// once at package init.
	Text string
	// Bind draws one parameter binding from the curated pools.
	Bind func(pools *workload.ParamPools, rnd *xrand.Rand) Params

	plan *Plan
}

// Plan returns the compiled plan.
func (s *Spec) Plan() *Plan { return s.plan }

// The two concrete instantiations of the generic executor, shared by every
// spec (the plan, not the code, differs per query).
var (
	runTxn  = Run[*store.Txn]
	runView = Run[*store.SnapshotView]
)

// RunTxn executes the query on the MVCC path.
func (s *Spec) RunTxn(tx *store.Txn, sc *Scratch, p Params) (*Result, error) {
	return runTxn(tx, sc, s.plan, p)
}

// RunView executes the query on the lock-free view path.
func (s *Spec) RunView(v *store.SnapshotView, sc *Scratch, p Params) (*Result, error) {
	return runView(v, sc, s.plan, p)
}

// mustPlan parses and compiles a registry query; the registry texts are
// pinned by tests, so a failure here is a programming error.
func mustPlan(text string) *Plan {
	q, err := Parse(text)
	if err != nil {
		panic(fmt.Sprintf("query: bad registry query: %v", err))
	}
	p, err := Compile(q)
	if err != nil {
		panic(fmt.Sprintf("query: bad registry plan: %v", err))
	}
	return p
}

func pickID(pool []ids.ID, rnd *xrand.Rand) ids.ID {
	if len(pool) == 0 {
		return 0
	}
	return pool[rnd.Intn(len(pool))]
}

// Registry holds the declaratively expressed Interactive queries. Q1, Q2
// and Q8 are the ISSUE-10 set: their result rows are pinned against the
// hand-written implementations by the differential suite (projected onto
// the declarative columns — Q1's university/company enrichment is
// presentation-layer and stays in the hand-written row type).
var Registry = []Spec{
	{
		Name: "Q1",
		Text: "match $person -knows*1..3-> ?f @ ?dist where ?f.firstName = $name " +
			"return ?f, ?dist, ?f.lastName order by ?dist asc, ?f.lastName asc, ?f asc limit 20",
		Bind: func(pools *workload.ParamPools, rnd *xrand.Rand) Params {
			name := ""
			if len(pools.FirstNames) > 0 {
				name = pools.FirstNames[rnd.Intn(len(pools.FirstNames))]
			}
			return Params{
				"person": store.Int64(int64(uint64(pickID(pools.Persons, rnd)))),
				"name":   store.String(name),
			}
		},
	},
	{
		Name: "Q2",
		Text: "match $person -knows-> ?f, ?m -hasCreator-> ?f @ ?d where ?d <= $maxDate " +
			"return ?m, ?f, ?d order by ?d desc, ?m asc limit 20",
		Bind: func(pools *workload.ParamPools, rnd *xrand.Rand) Params {
			return Params{
				"person":  store.Int64(int64(uint64(pickID(pools.Persons, rnd)))),
				"maxDate": store.Int64(pools.MaxDate),
			}
		},
	},
	{
		Name: "Q8",
		Text: "match ?m -hasCreator-> $person, ?c -replyOf-> ?m @ ?d, ?c -hasCreator-> ?r " +
			"return ?c, ?r, ?d order by ?d desc, ?c asc limit 20",
		Bind: func(pools *workload.ParamPools, rnd *xrand.Rand) Params {
			return Params{
				"person": store.Int64(int64(uint64(pickID(pools.Persons, rnd)))),
			}
		},
	},
}

func init() {
	for i := range Registry {
		Registry[i].plan = mustPlan(Registry[i].Text)
	}
}

// Lookup returns the registry spec with the given name, or nil.
func Lookup(name string) *Spec {
	for i := range Registry {
		if Registry[i].Name == name {
			return &Registry[i]
		}
	}
	return nil
}

// StandardParams binds the standard ad-hoc parameter namespace from the
// curated pools: $person (a curated start person), $name (a first name),
// $maxDate / $startDate / $windowMillis (the curated query window),
// $tag and $tagClass. Ad-hoc queries served over the wire or via
// snb-run -query draw their parameters from here, seeded per request.
func StandardParams(pools *workload.ParamPools, rnd *xrand.Rand) Params {
	name := ""
	if len(pools.FirstNames) > 0 {
		name = pools.FirstNames[rnd.Intn(len(pools.FirstNames))]
	}
	return Params{
		"person":       store.Int64(int64(uint64(pickID(pools.Persons, rnd)))),
		"name":         store.String(name),
		"maxDate":      store.Int64(pools.MaxDate),
		"startDate":    store.Int64(pools.StartDate),
		"windowMillis": store.Int64(pools.WindowMillis),
		"tag":          store.Int64(int64(uint64(pickID(pools.Tags, rnd)))),
		"tagClass":     store.Int64(int64(uint64(pickID(pools.TagClasses, rnd)))),
	}
}
