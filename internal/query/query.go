// Package query is the declarative pattern-query layer compiled onto the
// store.Reader API: a small conjunctive pattern language (edge patterns
// with variables, kind constraints, comparison filters, ordering, limits
// and count/sum aggregates) parsed from a string form, planned by a greedy
// statistics-free planner into a streaming iterator plan over
// Out/In/Prop/Exists/NodesOfKind, and executed on either Reader
// instantiation (*store.Txn or *store.SnapshotView).
//
// # Language
//
// A query is one string of up to five clauses (grammar in docs/QUERY.md):
//
//	match $person -knows-> ?f, ?m -hasCreator-> ?f @ ?d
//	where ?d <= $maxDate
//	return ?m, ?f, ?d
//	order by ?d desc, ?m asc
//	limit 20
//
// Variables are ?name, parameters $name (bound at execution time), edge
// patterns `a -type-> b [@ ?stamp]` with the schema's edge-type names,
// bounded variable-length patterns `a -knows*1..3-> b [@ ?dist]` (?dist
// binds the minimal hop count), kind constraints `?x : Person`, and
// property access `?x.firstName` in filters and return items.
//
// # Semantics
//
// The MATCH..WHERE part denotes the set of distinct assignments of all
// declared variables satisfying every pattern and filter (set semantics —
// duplicate adjacency entries never duplicate rows). RETURN projects each
// assignment to one row; aggregates (count, sum) group by the
// non-aggregate return items. Results are always in a canonical total
// order: the ORDER BY keys first, then every projected column ascending —
// so results are deterministic regardless of read path or plan shape,
// which is what the differential test harness pins.
//
// # Pipeline
//
// Parse (parse.go) -> canonical print (print.go, round-trip pinned by the
// fuzz corpus) -> Plan (plan.go, greedy statistics-free join ordering,
// deterministic) -> Run (exec.go, streaming nested-loop execution with
// per-prefix deduplication and a bounded top-k sink). The named-query
// registry (registry.go) expresses Q1, Q2 and Q8 declaratively and follows
// workload.Complex's conventions (Name, Bind, RunTxn/RunView/RunViewCtx).
package query

import (
	"strings"

	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/store"
)

// Hard limits of the language. They bound parser and planner work so that
// arbitrary (fuzzed or remote) query strings cannot build unbounded state;
// the wire protocol's frame cap independently bounds the text length.
const (
	MaxQueryLen    = 4000 // bytes of query text
	MaxVars        = 16   // distinct variables
	MaxAtoms       = 16   // patterns in the match clause
	MaxFilters     = 16   // comparisons in the where clause
	MaxReturnItems = 16   // items in the return clause
	MaxHops        = 8    // upper bound of a variable-length pattern
	MaxLimit       = 1 << 20
)

// VarKind distinguishes node variables (bound to entity IDs by pattern
// endpoints) from scalar variables (bound to edge stamps or BFS distances).
type VarKind uint8

const (
	// VarNode is an entity-ID variable.
	VarNode VarKind = iota
	// VarScalar is a stamp or distance variable.
	VarScalar
)

// Var is one declared variable.
type Var struct {
	Name string
	Kind VarKind
}

// TermKind discriminates pattern endpoints.
type TermKind uint8

const (
	// TermVar is a ?variable endpoint.
	TermVar TermKind = iota
	// TermParam is a $parameter endpoint (a node ID at bind time).
	TermParam
	// TermInt is an integer-literal endpoint (a raw node ID).
	TermInt
)

// Term is one pattern endpoint: a variable, a parameter or an ID literal.
type Term struct {
	Kind  TermKind
	Var   int // variable index for TermVar
	Param int // parameter index for TermParam
	Int   int64
}

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Kind == TermVar }

// AtomKind discriminates match-clause patterns.
type AtomKind uint8

const (
	// AtomEdge is an edge pattern (plain or variable-length).
	AtomEdge AtomKind = iota
	// AtomKindConstraint is a `?x : Kind` constraint.
	AtomKindConstraint
)

// Atom is one match-clause pattern.
type Atom struct {
	Kind AtomKind

	// Edge pattern fields.
	Src, Dst Term
	Edge     store.EdgeType
	Stamp    int // scalar variable bound to the edge stamp / BFS distance; -1 if none
	MinHops  int // 1 for a plain edge pattern
	MaxHops  int // 1 for a plain edge pattern

	// Kind constraint fields.
	Var      int
	NodeKind ids.Kind
}

// VarLen reports whether the atom is a variable-length edge pattern.
func (a *Atom) VarLen() bool { return a.Kind == AtomEdge && (a.MinHops != 1 || a.MaxHops != 1) }

// ExprKind discriminates scalar expressions.
type ExprKind uint8

const (
	// ExprVar evaluates to a variable's binding (IDs as integers).
	ExprVar ExprKind = iota
	// ExprProp evaluates to a node variable's property value.
	ExprProp
	// ExprParam evaluates to a parameter's bound value.
	ExprParam
	// ExprInt is an integer literal.
	ExprInt
	// ExprStr is a string literal.
	ExprStr
)

// Expr is one scalar expression in a filter, return item or order key.
type Expr struct {
	Kind  ExprKind
	Var   int
	Prop  store.PropKey
	Param int
	Int   int64
	Str   string
}

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators, in grammar order.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

var cmpNames = [...]string{CmpEq: "=", CmpNe: "!=", CmpLt: "<", CmpLe: "<=", CmpGt: ">", CmpGe: ">="}

// String returns the operator's source form.
func (op CmpOp) String() string {
	if int(op) < len(cmpNames) {
		return cmpNames[op]
	}
	return "?"
}

// Filter is one where-clause comparison.
type Filter struct {
	Lhs Expr
	Op  CmpOp
	Rhs Expr
}

// AggKind discriminates return-item aggregates.
type AggKind uint8

const (
	// AggNone marks a plain (group-by) return item.
	AggNone AggKind = iota
	// AggCount counts rows; with Star set it is count(*).
	AggCount
	// AggSum sums the integer values of its expression.
	AggSum
)

// ReturnItem is one projected column: a plain expression (a group-by key
// when aggregates are present) or an aggregate.
type ReturnItem struct {
	Agg  AggKind
	Star bool // count(*)
	Expr Expr // unused when Star
}

// OrderKey is one order-by key; it must structurally match a return item.
type OrderKey struct {
	Item ReturnItem
	Desc bool
	Col  int // resolved return-item index
}

// Query is the parsed AST of one pattern query.
type Query struct {
	Vars    []Var    // declared variables, in first-occurrence order
	Params  []string // referenced parameters, in first-occurrence order
	Atoms   []Atom
	Filters []Filter
	Returns []ReturnItem
	Orders  []OrderKey
	Limit   int // 0 = no limit
}

// HasAggregates reports whether any return item aggregates.
func (q *Query) HasAggregates() bool {
	for i := range q.Returns {
		if q.Returns[i].Agg != AggNone {
			return true
		}
	}
	return false
}

// Schema-name lookup tables, built once from the store's String() names so
// the language and the schema can never drift. The loops probe the small
// fixed numeric ranges of the enum types; unknown values print with a
// "edge("/"prop("-style prefix (or "Unknown" for kinds) and are skipped.
var (
	edgeByName map[string]store.EdgeType
	propByName map[string]store.PropKey
	kindByName map[string]ids.Kind
)

func init() {
	edgeByName = make(map[string]store.EdgeType)
	propByName = make(map[string]store.PropKey)
	kindByName = make(map[string]ids.Kind)
	for t := 1; t < 64; t++ {
		name := store.EdgeType(t).String()
		if !strings.HasPrefix(name, "edge(") {
			edgeByName[name] = store.EdgeType(t)
		}
	}
	for k := 1; k < 64; k++ {
		name := store.PropKey(k).String()
		if !strings.HasPrefix(name, "prop(") {
			propByName[name] = store.PropKey(k)
		}
	}
	for k := 1; k < 32; k++ {
		name := ids.Kind(k).String()
		if name != "Unknown" {
			kindByName[name] = ids.Kind(k)
		}
	}
}
