package query

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/store"
	"ldbcsnb/internal/workload"
)

// MaxResultRows bounds materialized results (rows of an unlimited query,
// groups of an aggregation) so an ad-hoc cross product cannot exhaust the
// process. Top-k queries are bounded by their limit instead.
const MaxResultRows = 1 << 20

// Params carries the $parameter bindings of one execution.
type Params map[string]store.Value

// Result is one executed query's materialized result. Rows never alias
// store or scratch memory; they are safe to retain. Rows are always in the
// canonical order (order-by keys, then every column ascending).
type Result struct {
	Cols []string
	Rows [][]store.Value
}

// String renders the result as a compact table (header + one row per line,
// tab-separated), mainly for snb-run -query output.
func (res *Result) String() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(res.Cols, "\t"))
	sb.WriteByte('\n')
	for _, row := range res.Rows {
		for i, v := range row {
			if i > 0 {
				sb.WriteByte('\t')
			}
			switch {
			case v.IsInt():
				fmt.Fprintf(&sb, "%d", v.Int())
			case v.IsStr():
				fmt.Fprintf(&sb, "%q", v.Str())
			default:
				sb.WriteString("-")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Scratch is the reusable per-goroutine execution state of the query
// layer, composed over workload.Scratch (same ownership and aliasing
// rules: one goroutine, sequential reuse across views is the intended
// pattern). Per-operator deduplication state is epoch-stamped, so resets
// between prefixes and runs are O(1) and the hot structures stay warm
// across queries; buffers only grow.
type Scratch struct {
	W *workload.Scratch

	epoch  uint64 // monotonic prefix-epoch counter; never resets
	states []opState
	spare  []store.Value // projection buffer, cloned only when a row is kept
	keyBuf []byte        // group-key encoding buffer

	row   []int64       // variable bindings, one slot per variable
	pv    []store.Value // parameter values by parameter index
	pint  []int64       // integer content of parameters used as endpoints
	ff    []fusedFilter // runtime filters of the fused tail loop
	iback []int64       // int-sink row arena
	iheap []int32       // int-sink heap of arena slots
}

// NewScratch returns an empty query scratch with its own workload scratch.
func NewScratch() *Scratch { return WrapScratch(workload.NewScratch()) }

// WrapScratch composes a query scratch over an existing workload scratch
// (e.g. a server connection's), sharing its era discipline.
func WrapScratch(w *workload.Scratch) *Scratch { return &Scratch{W: w} }

// opState is the pooled state of one plan position: dedup set, BFS queue
// and the check-edge stamp buffer. Ops form a linear pipeline, so a
// position can never re-enter itself recursively and one state per
// position is safe.
type opState struct {
	dedup  dedupSet
	queue  []ids.ID
	stamps []int64
}

// dedupSet deduplicates the values an operator emits per input prefix: an
// open-addressed hash table keyed by node ID with epoch-stamped slots.
// beginPrefix bumps the scratch-global epoch and stale slots simply never
// match, so there is no per-prefix clearing cost and no state survives
// across eras, views or runs. Keying on IDs (not view ordinals) makes the
// set identical on both read paths and era-agnostic, and a multiply-shift
// probe is several times cheaper than a map access on the hot expand path.
type dedupSet struct {
	slots []dedupSlot
	shift uint
	n     int // slots claimed in the current epoch (growth trigger)
	epoch uint64

	over      []overEntry // extra stamps for parallel edges to one node
	overEpoch uint64
}

type dedupSlot struct {
	key   uint64
	epoch uint64
	stamp int64
}

type overEntry struct {
	id    ids.ID
	stamp int64
}

const (
	dedupMinSlots = 256
	dedupHashMul  = 0x9e3779b97f4a7c15
)

func (d *dedupSet) beginPrefix(sc *Scratch) {
	sc.epoch++
	d.epoch = sc.epoch
	d.n = 0
	if d.slots == nil {
		d.slots = make([]dedupSlot, dedupMinSlots)
		d.shift = 64 - 8
	}
}

// find probes for key: the slot holding it in the current epoch (claimed
// true), or the first stale slot of its chain (claimed false).
func (d *dedupSet) find(key uint64) (int, bool) {
	i := int((key * dedupHashMul) >> d.shift)
	mask := len(d.slots) - 1
	for {
		s := &d.slots[i]
		if s.epoch != d.epoch {
			return i, false
		}
		if s.key == key {
			return i, true
		}
		i = (i + 1) & mask
	}
}

func (d *dedupSet) claim(i int, key uint64, stamp int64) {
	d.slots[i] = dedupSlot{key: key, epoch: d.epoch, stamp: stamp}
	d.n++
	if d.n*2 >= len(d.slots) {
		d.grow()
	}
}

// grow doubles the table and re-seats the current epoch's entries; stale
// slots are dropped (they were already unreachable).
func (d *dedupSet) grow() {
	old := d.slots
	d.slots = make([]dedupSlot, 2*len(old))
	d.shift--
	for i := range old {
		if old[i].epoch != d.epoch {
			continue
		}
		j, _ := d.find(old[i].key)
		d.slots[j] = old[i]
	}
}

// tryMark reports whether id is new in the current prefix.
func (d *dedupSet) tryMark(id ids.ID) bool {
	i, found := d.find(uint64(id))
	if found {
		return false
	}
	d.claim(i, uint64(id), 0)
	return true
}

// tryMarkStamp reports whether (id, stamp) is new in the current prefix.
// The first stamp per id is stored inline; parallel edges spill into a
// small per-prefix overflow list.
func (d *dedupSet) tryMarkStamp(id ids.ID, stamp int64) bool {
	i, found := d.find(uint64(id))
	if !found {
		d.claim(i, uint64(id), stamp)
		return true
	}
	if d.slots[i].stamp == stamp {
		return false
	}
	if d.overEpoch != d.epoch {
		d.over = d.over[:0]
		d.overEpoch = d.epoch
	}
	for _, e := range d.over {
		if e.id == id && e.stamp == stamp {
			return false
		}
	}
	d.over = append(d.over, overEntry{id: id, stamp: stamp})
	return true
}

// execCtx is the per-run state of one execution, generic over the reader.
type execCtx[R store.Reader] struct {
	r    R
	p    *Plan
	q    *Query
	sc   *Scratch
	row  []int64       // one slot per variable (scratch-backed)
	pv   []store.Value // parameter values by parameter index
	pint []int64       // integer content of parameters used as endpoints
	ff   []fusedFilter // runtime form of p.fuseFilters (params folded in)
	snk  sink
}

// fusedFilter is one trailing filter of the fused tail loop with its
// parameters bound: a bare int64 comparison against either another row
// slot or a constant. Non-integer parameters constant-fold (an integer
// never equals a string) into pass/drop.
type fusedFilter struct {
	mode byte // ffCmp, ffPass or ffDrop
	op   CmpOp
	lv   int   // row slot of the left side
	rv   int   // row slot of the right side, -1 = constant
	rc   int64 // constant right side (rv < 0)
}

const (
	ffCmp byte = iota
	ffPass
	ffDrop
)

// intCmp evaluates one comparison over bare int64s.
func intCmp(op CmpOp, a, b int64) bool {
	switch op {
	case CmpEq:
		return a == b
	case CmpNe:
		return a != b
	case CmpLt:
		return a < b
	case CmpLe:
		return a <= b
	case CmpGt:
		return a > b
	default: // CmpGe
		return a >= b
	}
}

// mirrorCmp flips a comparison for operand exchange (a < b == b > a).
func mirrorCmp(op CmpOp) CmpOp {
	switch op {
	case CmpLt:
		return CmpGt
	case CmpLe:
		return CmpGe
	case CmpGt:
		return CmpLt
	case CmpGe:
		return CmpLe
	default: // Eq, Ne are symmetric
		return op
	}
}

// bindFusedFilter lowers one fused filter to its runtime form. At least
// one side is a variable (constant-only filters are settled before any op
// runs); variables always hold int64s, so a non-integer parameter on the
// other side makes equality constantly false and ordering vacuous.
func bindFusedFilter(q *Query, pv []store.Value, fi int) fusedFilter {
	f := &q.Filters[fi]
	lhs, rhs, op := f.Lhs, f.Rhs, f.Op
	if lhs.Kind != ExprVar {
		lhs, rhs, op = rhs, lhs, mirrorCmp(op)
	}
	ff := fusedFilter{op: op, lv: lhs.Var, rv: -1}
	switch rhs.Kind {
	case ExprVar:
		ff.rv = rhs.Var
	case ExprInt:
		ff.rc = rhs.Int
	default: // ExprParam
		v := pv[rhs.Param]
		if !v.IsInt() {
			if op == CmpNe {
				ff.mode = ffPass
			} else {
				ff.mode = ffDrop
			}
			return ff
		}
		ff.rc = v.Int()
	}
	return ff
}

// Run executes a compiled plan against either reader instantiation.
// Results are identical between *store.Txn and *store.SnapshotView at the
// same snapshot timestamp (the differential suite pins this). On a view
// derived via WithCancel, cancellation propagates through the reader's
// poll hook; use RunViewCtx to get it mapped onto an error.
func Run[R store.Reader](r R, sc *Scratch, p *Plan, params Params) (*Result, error) {
	sc.W.Begin(r)
	q := p.Q
	var ec execCtx[R]
	ec.r, ec.p, ec.q, ec.sc = r, p, q, sc

	if cap(sc.pv) < len(q.Params) {
		sc.pv = make([]store.Value, len(q.Params))
		sc.pint = make([]int64, len(q.Params))
	}
	ec.pv = sc.pv[:len(q.Params)]
	ec.pint = sc.pint[:len(q.Params)]
	for i, name := range q.Params {
		v, ok := params[name]
		if !ok {
			return nil, fmt.Errorf("query: missing parameter $%s", name)
		}
		ec.pv[i] = v
	}
	for i := range q.Atoms {
		a := &q.Atoms[i]
		if a.Kind != AtomEdge {
			continue
		}
		for _, t := range [2]Term{a.Src, a.Dst} {
			if t.Kind == TermParam {
				if !ec.pv[t.Param].IsInt() {
					return nil, fmt.Errorf("query: parameter $%s is used as a node and must be an integer ID", q.Params[t.Param])
				}
				ec.pint[t.Param] = ec.pv[t.Param].Int()
			}
		}
	}

	if cap(sc.row) < len(q.Vars) {
		sc.row = make([]int64, len(q.Vars))
	}
	ec.row = sc.row[:len(q.Vars)]
	if len(sc.states) < len(p.ops) {
		sc.states = append(sc.states, make([]opState, len(p.ops)-len(sc.states))...)
	}
	if cap(sc.spare) < len(q.Returns) {
		sc.spare = make([]store.Value, len(q.Returns))
	}
	if p.fuseAt >= 0 {
		sc.ff = sc.ff[:0]
		for _, fi := range p.fuseFilters {
			sc.ff = append(sc.ff, bindFusedFilter(q, ec.pv, fi))
		}
		ec.ff = sc.ff
	}
	ec.snk.init(p, sc)

	if err := ec.exec(0); err != nil {
		return nil, err
	}
	res := ec.snk.finalize()
	sc.iback = ec.snk.iback[:0]
	sc.iheap = ec.snk.iheap[:0]
	return res, nil
}

// RunViewCtx executes on the lock-free view path with cooperative
// cancellation: the reader polls ctx through the store's WithCancel hook
// and an expired deadline surfaces as store.ErrQueryCanceled.
func RunViewCtx(ctx context.Context, v *store.SnapshotView, sc *Scratch, p *Plan, params Params) (res *Result, err error) {
	defer store.CatchCanceled(&err)
	res, err = Run(v.WithCancel(ctx), sc, p, params)
	return res, err
}

func (ec *execCtx[R]) termVal(t Term) int64 {
	switch t.Kind {
	case TermVar:
		return ec.row[t.Var]
	case TermParam:
		return ec.pint[t.Param]
	default:
		return t.Int
	}
}

func (ec *execCtx[R]) evalExpr(e Expr) store.Value {
	switch e.Kind {
	case ExprVar:
		return store.Int64(ec.row[e.Var])
	case ExprProp:
		return ec.r.Prop(ids.ID(uint64(ec.row[e.Var])), e.Prop)
	case ExprParam:
		return ec.pv[e.Param]
	case ExprInt:
		return store.Int64(e.Int)
	default:
		return store.String(e.Str)
	}
}

// exec runs the pipeline from op i for the current row prefix.
func (ec *execCtx[R]) exec(i int) error {
	if i == len(ec.p.ops) {
		if ec.snk.intMode {
			ec.snk.addInt(ec.row)
			return nil
		}
		return ec.emit()
	}
	op := ec.p.ops[i]
	switch op.kind {
	case opScan:
		return ec.execScan(i, op)
	case opExpand:
		if i == ec.p.fuseAt {
			return ec.execFused(i, op)
		}
		return ec.execExpand(i, op)
	case opCheckEdge:
		return ec.execCheckEdge(i, op)
	case opBFS:
		return ec.execBFS(i, op)
	case opCheckKind:
		a := &ec.q.Atoms[op.atom]
		if ids.ID(uint64(ec.row[a.Var])).Kind() == a.NodeKind {
			return ec.exec(i + 1)
		}
		return nil
	default: // opFilter
		f := &ec.q.Filters[op.filter]
		if filterHolds(f.Op, ec.evalExpr(f.Lhs), ec.evalExpr(f.Rhs)) {
			return ec.exec(i + 1)
		}
		return nil
	}
}

func (ec *execCtx[R]) execScan(i int, op planOp) error {
	lo, hi := op.scanKind, op.scanKind
	if op.scanKind == 0 {
		lo, hi = ids.KindPerson, ids.KindPhoto
	}
	for k := lo; k <= hi; k++ {
		for _, id := range ec.r.NodesOfKind(k) {
			ec.row[op.scanVar] = int64(uint64(id))
			if err := ec.exec(i + 1); err != nil {
				return err
			}
		}
	}
	return nil
}

func (ec *execCtx[R]) execExpand(i int, op planOp) error {
	a := &ec.q.Atoms[op.atom]
	st := &ec.sc.states[i]
	st.dedup.beginPrefix(ec.sc)
	var from int64
	var toVar int
	if op.out {
		from, toVar = ec.termVal(a.Src), a.Dst.Var
	} else {
		from, toVar = ec.termVal(a.Dst), a.Src.Var
	}
	var edges []store.Edge
	if op.out {
		edges = ec.r.Out(ids.ID(uint64(from)), a.Edge)
	} else {
		edges = ec.r.In(ids.ID(uint64(from)), a.Edge)
	}
	for _, e := range edges {
		if a.Stamp >= 0 {
			if !st.dedup.tryMarkStamp(e.To, e.Stamp) {
				continue
			}
			ec.row[a.Stamp] = e.Stamp
		} else if !st.dedup.tryMark(e.To) {
			continue
		}
		ec.row[toVar] = int64(uint64(e.To))
		if err := ec.exec(i + 1); err != nil {
			return err
		}
	}
	return nil
}

// execFused is the fused tail loop: the plan's final binding expand, its
// trailing integer filters and the int-sink top-k push in one pass, with
// no per-candidate recursion or value boxing. The heap rejection runs
// BEFORE deduplication: the acceptance threshold only tightens over a
// run, so a duplicate of a rejected candidate is rejected by the same
// compare and needs no dedup entry — on a saturated heap most candidates
// touch nothing but the filter slots and the heap root.
func (ec *execCtx[R]) execFused(i int, op planOp) error {
	a := &ec.q.Atoms[op.atom]
	st := &ec.sc.states[i]
	st.dedup.beginPrefix(ec.sc)
	var from int64
	var toVar int
	if op.out {
		from, toVar = ec.termVal(a.Src), a.Dst.Var
	} else {
		from, toVar = ec.termVal(a.Dst), a.Src.Var
	}
	var edges []store.Edge
	if op.out {
		edges = ec.r.Out(ids.ID(uint64(from)), a.Edge)
	} else {
		edges = ec.r.In(ids.ID(uint64(from)), a.Edge)
	}
	row := ec.row
outer:
	for _, e := range edges {
		row[toVar] = int64(uint64(e.To))
		if a.Stamp >= 0 {
			row[a.Stamp] = e.Stamp
		}
		for _, f := range ec.ff {
			switch f.mode {
			case ffPass:
				continue
			case ffDrop:
				continue outer
			}
			rhs := f.rc
			if f.rv >= 0 {
				rhs = row[f.rv]
			}
			if !intCmp(f.op, row[f.lv], rhs) {
				continue outer
			}
		}
		if ec.snk.wouldRejectInt(row) {
			continue
		}
		if a.Stamp >= 0 {
			if !st.dedup.tryMarkStamp(e.To, e.Stamp) {
				continue
			}
		} else if !st.dedup.tryMark(e.To) {
			continue
		}
		ec.snk.addInt(row)
	}
	return nil
}

func (ec *execCtx[R]) execCheckEdge(i int, op planOp) error {
	a := &ec.q.Atoms[op.atom]
	src := ids.ID(uint64(ec.termVal(a.Src)))
	dst := ec.termVal(a.Dst)
	edges := ec.r.Out(src, a.Edge)
	if a.Stamp < 0 {
		for _, e := range edges {
			if int64(uint64(e.To)) == dst {
				return ec.exec(i + 1)
			}
		}
		return nil
	}
	st := &ec.sc.states[i]
	st.stamps = st.stamps[:0]
	for _, e := range edges {
		if int64(uint64(e.To)) != dst {
			continue
		}
		dup := false
		for _, s := range st.stamps {
			if s == e.Stamp {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		st.stamps = append(st.stamps, e.Stamp)
		ec.row[a.Stamp] = e.Stamp
		if err := ec.exec(i + 1); err != nil {
			return err
		}
	}
	return nil
}

// execBFS evaluates a variable-length atom: layered BFS from the bound
// endpoint; a node's discovery depth is its minimal hop distance. In bind
// mode every node at depth in [min, max] binds the free endpoint; in check
// mode the search stops when the (bound) target is discovered, which is
// satisfied only if that minimal depth lies in the range.
func (ec *execCtx[R]) execBFS(i int, op planOp) error {
	a := &ec.q.Atoms[op.atom]
	st := &ec.sc.states[i]
	st.dedup.beginPrefix(ec.sc)

	var from, target int64
	var toVar int
	if op.out {
		from = ec.termVal(a.Src)
		if op.check {
			target = ec.termVal(a.Dst)
		} else {
			toVar = a.Dst.Var
		}
	} else {
		from = ec.termVal(a.Dst)
		if op.check {
			target = ec.termVal(a.Src)
		} else {
			toVar = a.Src.Var
		}
	}

	queue := st.queue[:0]
	start := ids.ID(uint64(from))
	if st.dedup.tryMark(start) {
		queue = append(queue, start)
	}
	lo, depth := 0, 0
	var err error
loop:
	for depth < a.MaxHops && lo < len(queue) {
		hi := len(queue)
		depth++
		for ; lo < hi; lo++ {
			n := queue[lo]
			var edges []store.Edge
			if op.out {
				edges = ec.r.Out(n, a.Edge)
			} else {
				edges = ec.r.In(n, a.Edge)
			}
			for _, e := range edges {
				if !st.dedup.tryMark(e.To) {
					continue
				}
				queue = append(queue, e.To)
				if op.check {
					if int64(uint64(e.To)) == target {
						if depth >= a.MinHops {
							if a.Stamp >= 0 {
								ec.row[a.Stamp] = int64(depth)
							}
							err = ec.exec(i + 1)
						}
						break loop
					}
					continue
				}
				if depth < a.MinHops {
					continue
				}
				ec.row[toVar] = int64(uint64(e.To))
				if a.Stamp >= 0 {
					ec.row[a.Stamp] = int64(depth)
				}
				if err = ec.exec(i + 1); err != nil {
					break loop
				}
			}
		}
	}
	st.queue = queue
	return err
}

// emit projects the current full assignment into the sink.
func (ec *execCtx[R]) emit() error {
	q := ec.q
	spare := ec.sc.spare[:len(q.Returns)]
	for i := range q.Returns {
		it := &q.Returns[i]
		if it.Agg != AggNone {
			if it.Star {
				spare[i] = store.Value{}
			} else {
				spare[i] = ec.evalExpr(it.Expr)
			}
			continue
		}
		spare[i] = ec.evalExpr(it.Expr)
	}
	return ec.snk.add(q, spare)
}

// filterHolds evaluates one comparison. Equality is structural (interned
// strings make equal content equal bits); ordering requires both sides to
// be present and of the same kind, and orders strings by content, not
// symbol.
func filterHolds(op CmpOp, a, b store.Value) bool {
	switch op {
	case CmpEq:
		return a == b
	case CmpNe:
		return a != b
	}
	var c int
	switch {
	case a.IsInt() && b.IsInt():
		switch {
		case a.Int() < b.Int():
			c = -1
		case a.Int() > b.Int():
			c = 1
		}
	case a.IsStr() && b.IsStr():
		c = strings.Compare(a.Str(), b.Str())
	default:
		return false
	}
	switch op {
	case CmpLt:
		return c < 0
	case CmpLe:
		return c <= 0
	case CmpGt:
		return c > 0
	default: // CmpGe
		return c >= 0
	}
}

// compareVal is the canonical total order over values: absent < integers <
// strings; integers numerically, strings by content (symbols are interning
// order, not content order).
func compareVal(a, b store.Value) int {
	ra, rb := valRank(a), valRank(b)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch ra {
	case 1:
		switch {
		case a.Int() < b.Int():
			return -1
		case a.Int() > b.Int():
			return 1
		}
		return 0
	case 2:
		if a.Sym() == b.Sym() {
			return 0
		}
		return strings.Compare(a.Str(), b.Str())
	default:
		return 0
	}
}

func valRank(v store.Value) int {
	switch {
	case v.IsInt():
		return 1
	case v.IsStr():
		return 2
	default:
		return 0
	}
}

// compareRows is the canonical row order: order-by keys first, then every
// column ascending, so any two distinct rows compare unequal and results
// are deterministic regardless of enumeration order.
func compareRows(keys []sortKey, a, b []store.Value) int {
	for _, k := range keys {
		if c := compareVal(a[k.col], b[k.col]); c != 0 {
			if k.desc {
				return -c
			}
			return c
		}
	}
	for i := range a {
		if c := compareVal(a[i], b[i]); c != 0 {
			return c
		}
	}
	return 0
}

// sink accumulates projected rows: a bounded worst-at-root heap for
// order+limit queries (over int64 columns in a scratch-backed arena when
// the plan's int fast path applies), plain materialization otherwise, or
// grouped accumulators when aggregating.
type sink struct {
	q      *Query
	agg    bool
	limit  int
	cols   []string // result column names (shared with the plan)
	rows   [][]store.Value
	groups map[string]*aggGroup
	kb     []byte // group-key encoding buffer

	// Int fast path (Plan.intSink): result rows are nc int64 columns in
	// iback; iheap orders arena slots, worst at the root.
	intMode bool
	icols   []int
	nc      int
	iback   []int64
	iheap   []int32

	// keys is the plan's compact (column, direction) order-by form; the
	// comparison loops use it instead of Q.Orders to avoid copying the
	// full OrderKey per iteration.
	keys []sortKey
}

type aggGroup struct {
	keys []store.Value
	accs []int64
}

func (s *sink) init(p *Plan, sc *Scratch) {
	q := p.Q
	s.q = q
	s.agg = q.HasAggregates()
	s.limit = q.Limit
	s.rows = nil
	s.groups = nil
	s.intMode = false
	s.cols = p.cols
	s.keys = p.keys
	if s.agg {
		s.groups = make(map[string]*aggGroup)
		return
	}
	if p.intSink {
		s.intMode = true
		s.icols = p.icols
		s.nc = len(q.Returns)
		s.iback = sc.iback[:0]
		s.iheap = sc.iheap[:0]
	}
}

// cmpSlots is the canonical row order between two arena slots.
func (s *sink) cmpSlots(x, y int32) int {
	ox, oy := int(x)*s.nc, int(y)*s.nc
	for _, k := range s.keys {
		a, b := s.iback[ox+k.col], s.iback[oy+k.col]
		if a != b {
			if (a < b) != k.desc {
				return -1
			}
			return 1
		}
	}
	for j := 0; j < s.nc; j++ {
		a, b := s.iback[ox+j], s.iback[oy+j]
		if a != b {
			if a < b {
				return -1
			}
			return 1
		}
	}
	return 0
}

// cmpSlotRow compares a stored arena slot against an unprojected candidate
// (variable bindings indirected through icols).
func (s *sink) cmpSlotRow(slot int32, row []int64) int {
	off := int(slot) * s.nc
	for _, k := range s.keys {
		a, b := s.iback[off+k.col], row[s.icols[k.col]]
		if a != b {
			if (a < b) != k.desc {
				return -1
			}
			return 1
		}
	}
	for j := 0; j < s.nc; j++ {
		a, b := s.iback[off+j], row[s.icols[j]]
		if a != b {
			if a < b {
				return -1
			}
			return 1
		}
	}
	return 0
}

// wouldRejectInt reports a saturated heap whose worst row is no worse than
// the candidate — the candidate cannot enter the result.
func (s *sink) wouldRejectInt(row []int64) bool {
	return len(s.iheap) >= s.limit && s.cmpSlotRow(s.iheap[0], row) <= 0
}

// addInt pushes one candidate into the int top-k heap.
func (s *sink) addInt(row []int64) {
	if len(s.iheap) < s.limit {
		slot := int32(len(s.iheap))
		for _, c := range s.icols {
			s.iback = append(s.iback, row[c])
		}
		s.iheap = append(s.iheap, slot)
		i := len(s.iheap) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if s.cmpSlots(s.iheap[i], s.iheap[parent]) <= 0 {
				break
			}
			s.iheap[i], s.iheap[parent] = s.iheap[parent], s.iheap[i]
			i = parent
		}
		return
	}
	if s.cmpSlotRow(s.iheap[0], row) <= 0 {
		return
	}
	off := int(s.iheap[0]) * s.nc
	for j, c := range s.icols {
		s.iback[off+j] = row[c]
	}
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(s.iheap) && s.cmpSlots(s.iheap[l], s.iheap[largest]) > 0 {
			largest = l
		}
		if r < len(s.iheap) && s.cmpSlots(s.iheap[r], s.iheap[largest]) > 0 {
			largest = r
		}
		if largest == i {
			return
		}
		s.iheap[i], s.iheap[largest] = s.iheap[largest], s.iheap[i]
		i = largest
	}
}

func (s *sink) add(q *Query, row []store.Value) error {
	if s.agg {
		return s.addGroup(q, row)
	}
	if s.limit > 0 {
		s.pushTopK(q, row)
		return nil
	}
	if len(s.rows) >= MaxResultRows {
		return fmt.Errorf("query: result exceeds %d rows (add a limit)", MaxResultRows)
	}
	s.rows = append(s.rows, append([]store.Value(nil), row...))
	return nil
}

// pushTopK keeps the limit best rows under the canonical order in a
// max-heap (worst row at the root). Once the heap is full, a replacement
// copies into the evicted row's backing array, so a saturated heap
// allocates nothing per candidate.
func (s *sink) pushTopK(q *Query, row []store.Value) {
	if len(s.rows) < s.limit {
		s.rows = append(s.rows, append([]store.Value(nil), row...))
		// Sift up.
		i := len(s.rows) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if compareRows(s.keys, s.rows[i], s.rows[parent]) <= 0 {
				break
			}
			s.rows[i], s.rows[parent] = s.rows[parent], s.rows[i]
			i = parent
		}
		return
	}
	if compareRows(s.keys, row, s.rows[0]) >= 0 {
		return
	}
	s.rows[0] = append(s.rows[0][:0], row...)
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(s.rows) && compareRows(s.keys, s.rows[l], s.rows[largest]) > 0 {
			largest = l
		}
		if r < len(s.rows) && compareRows(s.keys, s.rows[r], s.rows[largest]) > 0 {
			largest = r
		}
		if largest == i {
			return
		}
		s.rows[i], s.rows[largest] = s.rows[largest], s.rows[i]
		i = largest
	}
}

func (s *sink) addGroup(q *Query, row []store.Value) error {
	// Encode the group key: the plain (non-aggregate) return columns.
	// Symbols are stable within a process, so equal strings encode equal.
	buf := s.keyEnc(q, row)
	g, ok := s.groups[string(buf)]
	if !ok {
		if len(s.groups) >= MaxResultRows {
			return fmt.Errorf("query: aggregation exceeds %d groups", MaxResultRows)
		}
		g = &aggGroup{
			keys: append([]store.Value(nil), row...),
			accs: make([]int64, len(q.Returns)),
		}
		s.groups[string(buf)] = g
	}
	for i := range q.Returns {
		it := &q.Returns[i]
		switch it.Agg {
		case AggCount:
			if it.Star || !row[i].IsZero() {
				g.accs[i]++
			}
		case AggSum:
			g.accs[i] += row[i].Int()
		}
	}
	return nil
}

func (s *sink) keyEnc(q *Query, row []store.Value) []byte {
	buf := s.kb[:0]
	for i := range q.Returns {
		if q.Returns[i].Agg != AggNone {
			continue
		}
		v := row[i]
		switch {
		case v.IsInt():
			buf = append(buf, 'i')
			u := uint64(v.Int())
			for b := 0; b < 8; b++ {
				buf = append(buf, byte(u>>(8*b)))
			}
		case v.IsStr():
			buf = append(buf, 's')
			u := uint64(v.Sym())
			for b := 0; b < 8; b++ {
				buf = append(buf, byte(u>>(8*b)))
			}
		default:
			buf = append(buf, 'n')
		}
	}
	s.kb = buf
	return buf
}

func (s *sink) finalize() *Result {
	q := s.q
	res := &Result{Cols: s.cols}
	if s.intMode {
		sort.Slice(s.iheap, func(i, j int) bool { return s.cmpSlots(s.iheap[i], s.iheap[j]) < 0 })
		back := make([]store.Value, len(s.iheap)*s.nc)
		res.Rows = make([][]store.Value, len(s.iheap))
		for i, slot := range s.iheap {
			off := int(slot) * s.nc
			r := back[i*s.nc : (i+1)*s.nc : (i+1)*s.nc]
			for j := 0; j < s.nc; j++ {
				r[j] = store.Int64(s.iback[off+j])
			}
			res.Rows[i] = r
		}
		return res
	}
	if s.agg {
		rows := make([][]store.Value, 0, len(s.groups))
		for _, g := range s.groups {
			row := make([]store.Value, len(q.Returns))
			for i := range q.Returns {
				if q.Returns[i].Agg == AggNone {
					row[i] = g.keys[i]
				} else {
					row[i] = store.Int64(g.accs[i])
				}
			}
			rows = append(rows, row)
		}
		s.rows = rows
	}
	sort.Slice(s.rows, func(i, j int) bool { return compareRows(s.keys, s.rows[i], s.rows[j]) < 0 })
	if q.Limit > 0 && len(s.rows) > q.Limit {
		s.rows = s.rows[:q.Limit]
	}
	res.Rows = s.rows
	return res
}
