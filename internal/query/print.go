package query

import (
	"fmt"
	"strings"
)

// String renders the query in canonical form: one line, lowercase
// keywords, single spaces, explicit asc/desc on every order key. Parsing
// the canonical form yields an AST that prints identically (the fuzz
// target pins parse -> print -> parse as a fixpoint).
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("match ")
	for i := range q.Atoms {
		if i > 0 {
			sb.WriteString(", ")
		}
		printAtom(&sb, q, &q.Atoms[i])
	}
	if len(q.Filters) > 0 {
		sb.WriteString(" where ")
		for i := range q.Filters {
			if i > 0 {
				sb.WriteString(", ")
			}
			f := &q.Filters[i]
			printExpr(&sb, q, f.Lhs)
			sb.WriteByte(' ')
			sb.WriteString(f.Op.String())
			sb.WriteByte(' ')
			printExpr(&sb, q, f.Rhs)
		}
	}
	sb.WriteString(" return ")
	for i := range q.Returns {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(printItem(q, q.Returns[i]))
	}
	if len(q.Orders) > 0 {
		sb.WriteString(" order by ")
		for i := range q.Orders {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(printItem(q, q.Orders[i].Item))
			if q.Orders[i].Desc {
				sb.WriteString(" desc")
			} else {
				sb.WriteString(" asc")
			}
		}
	}
	if q.Limit > 0 {
		fmt.Fprintf(&sb, " limit %d", q.Limit)
	}
	return sb.String()
}

func printAtom(sb *strings.Builder, q *Query, a *Atom) {
	if a.Kind == AtomKindConstraint {
		sb.WriteByte('?')
		sb.WriteString(q.Vars[a.Var].Name)
		sb.WriteString(" : ")
		sb.WriteString(a.NodeKind.String())
		return
	}
	printTerm(sb, q, a.Src)
	sb.WriteString(" -")
	sb.WriteString(a.Edge.String())
	if a.VarLen() {
		fmt.Fprintf(sb, "*%d..%d", a.MinHops, a.MaxHops)
	}
	sb.WriteString("-> ")
	printTerm(sb, q, a.Dst)
	if a.Stamp >= 0 {
		sb.WriteString(" @ ?")
		sb.WriteString(q.Vars[a.Stamp].Name)
	}
}

func printTerm(sb *strings.Builder, q *Query, t Term) {
	switch t.Kind {
	case TermVar:
		sb.WriteByte('?')
		sb.WriteString(q.Vars[t.Var].Name)
	case TermParam:
		sb.WriteByte('$')
		sb.WriteString(q.Params[t.Param])
	default:
		fmt.Fprintf(sb, "%d", t.Int)
	}
}

func printExpr(sb *strings.Builder, q *Query, e Expr) {
	switch e.Kind {
	case ExprVar:
		sb.WriteByte('?')
		sb.WriteString(q.Vars[e.Var].Name)
	case ExprProp:
		sb.WriteByte('?')
		sb.WriteString(q.Vars[e.Var].Name)
		sb.WriteByte('.')
		sb.WriteString(e.Prop.String())
	case ExprParam:
		sb.WriteByte('$')
		sb.WriteString(q.Params[e.Param])
	case ExprInt:
		fmt.Fprintf(sb, "%d", e.Int)
	default:
		sb.WriteByte('"')
		for i := 0; i < len(e.Str); i++ {
			b := e.Str[i]
			if b == '"' || b == '\\' {
				sb.WriteByte('\\')
			}
			sb.WriteByte(b)
		}
		sb.WriteByte('"')
	}
}

func printItem(q *Query, it ReturnItem) string {
	var sb strings.Builder
	switch {
	case it.Agg == AggCount && it.Star:
		sb.WriteString("count(*)")
	case it.Agg == AggCount:
		sb.WriteString("count(")
		printExpr(&sb, q, it.Expr)
		sb.WriteByte(')')
	case it.Agg == AggSum:
		sb.WriteString("sum(")
		printExpr(&sb, q, it.Expr)
		sb.WriteByte(')')
	default:
		printExpr(&sb, q, it.Expr)
	}
	return sb.String()
}
