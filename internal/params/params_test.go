package params

import (
	"testing"
	"testing/quick"

	"ldbcsnb/internal/datagen"
	"ldbcsnb/internal/xrand"
)

func syntheticTable(n int) *Table {
	// Rows with cost clusters: param i has counts (i/10, i%10) so there
	// are clear minimum-variance windows.
	t := &Table{Cols: []string{"c1", "c2"}}
	for i := 0; i < n; i++ {
		t.Rows = append(t.Rows, Row{Param: uint64(i), Counts: []int{i / 10, i % 10}})
	}
	return t
}

func TestCurateReturnsK(t *testing.T) {
	tab := syntheticTable(200)
	for _, k := range []int{1, 5, 10, 50} {
		got := tab.Curate(k)
		if len(got) != k {
			t.Fatalf("Curate(%d) returned %d", k, len(got))
		}
		seen := map[uint64]bool{}
		for _, p := range got {
			if seen[p] {
				t.Fatal("duplicate parameter")
			}
			seen[p] = true
		}
	}
}

func TestCurateSmallTable(t *testing.T) {
	tab := syntheticTable(3)
	if got := tab.Curate(10); len(got) != 3 {
		t.Fatalf("undersized table should return all rows, got %d", len(got))
	}
	if got := tab.Curate(0); got != nil {
		t.Fatal("k=0 should return nil")
	}
	empty := &Table{Cols: []string{"c"}}
	if got := empty.Curate(5); got != nil {
		t.Fatal("empty table should return nil")
	}
}

func TestCurateBeatsUniformVariance(t *testing.T) {
	// The defining property (P1): curated parameters have (much) lower
	// cost dispersion than a uniform sample.
	tab := syntheticTable(500)
	curated := tab.Curate(20)
	r := xrand.New(1)
	uniform := tab.UniformSample(20, r.Uint64)
	cur := tab.CostSpread(curated)
	uni := tab.CostSpread(uniform)
	if cur.Stddev >= uni.Stddev {
		t.Fatalf("curated stddev %v not below uniform stddev %v", cur.Stddev, uni.Stddev)
	}
	if cur.Max-cur.Min >= uni.Max-uni.Min {
		t.Fatalf("curated range [%d,%d] not tighter than uniform [%d,%d]",
			cur.Min, cur.Max, uni.Min, uni.Max)
	}
}

func TestCurateDeterministic(t *testing.T) {
	tab := syntheticTable(300)
	a := tab.Curate(15)
	b := tab.Curate(15)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Curate not deterministic")
		}
	}
}

func TestUniformSample(t *testing.T) {
	tab := syntheticTable(100)
	r := xrand.New(2)
	s := tab.UniformSample(30, r.Uint64)
	if len(s) != 30 {
		t.Fatalf("sample size %d", len(s))
	}
	seen := map[uint64]bool{}
	for _, p := range s {
		if seen[p] {
			t.Fatal("duplicate in uniform sample")
		}
		seen[p] = true
	}
	if got := tab.UniformSample(200, r.Uint64); len(got) != 100 {
		t.Fatal("oversized uniform sample should return all")
	}
}

func TestCostSpreadEmpty(t *testing.T) {
	tab := syntheticTable(10)
	s := tab.CostSpread(nil)
	if s.Min != 0 || s.Max != 0 || s.Stddev != 0 {
		t.Fatal("empty selection spread")
	}
}

func TestBucketTimestamps(t *testing.T) {
	stamps := []int64{5, 15, 18, 25, 95}
	tab := BucketTimestamps(stamps, 10)
	if len(tab.Rows) != 4 {
		t.Fatalf("buckets = %d", len(tab.Rows))
	}
	if tab.Rows[0].Param != 0 || tab.Rows[0].Counts[0] != 1 {
		t.Fatalf("bucket 0 = %+v", tab.Rows[0])
	}
	if tab.Rows[1].Param != 10 || tab.Rows[1].Counts[0] != 2 {
		t.Fatalf("bucket 10 = %+v", tab.Rows[1])
	}
	if got := BucketTimestamps(nil, 10); len(got.Rows) != 0 {
		t.Fatal("empty input")
	}
	if got := BucketTimestamps(stamps, 0); len(got.Rows) != 0 {
		t.Fatal("zero width")
	}
}

func TestVarianceProperty(t *testing.T) {
	// Property: a window of identical values has zero variance; adding a
	// different value makes it positive.
	err := quick.Check(func(v uint8, n uint8) bool {
		rows := make([]Row, int(n)%20+2)
		for i := range rows {
			rows[i] = Row{Param: uint64(i), Counts: []int{int(v)}}
		}
		if variance(rows, 0, 0, len(rows)) != 0 {
			return false
		}
		rows[0].Counts[0] = int(v) + 7
		return variance(rows, 0, 0, len(rows)) > 0
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// TestSNBTables builds the real PC tables from a generated dataset and
// verifies the Figure 5(b) property end to end at the cost level.
func TestSNBTables(t *testing.T) {
	out := datagen.Generate(datagen.Config{Seed: 3, Persons: 250, Workers: 2})
	d := out.Data

	for name, tab := range map[string]*Table{
		"Q2": BuildQ2Table(d),
		"Q5": BuildQ5Table(d),
		"Q9": BuildQ9Table(d),
	} {
		if len(tab.Rows) != len(d.Persons) {
			t.Fatalf("%s: %d rows for %d persons", name, len(tab.Rows), len(d.Persons))
		}
		curated := tab.Curate(20)
		if len(curated) != 20 {
			t.Fatalf("%s: curated %d", name, len(curated))
		}
		r := xrand.New(9)
		uniform := tab.UniformSample(20, r.Uint64)
		cur := tab.CostSpread(curated)
		uni := tab.CostSpread(uniform)
		if cur.Stddev >= uni.Stddev {
			t.Fatalf("%s: curated stddev %v >= uniform stddev %v", name, cur.Stddev, uni.Stddev)
		}
	}
}

func TestTwoHopSizesSortedAndVaried(t *testing.T) {
	out := datagen.Generate(datagen.Config{Seed: 4, Persons: 200, Workers: 2})
	sizes := TwoHopSizes(out.Data)
	if len(sizes) != 200 {
		t.Fatalf("sizes = %d", len(sizes))
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] < sizes[i-1] {
			t.Fatal("not sorted")
		}
	}
	if sizes[0] == sizes[len(sizes)-1] {
		t.Fatal("2-hop sizes should vary (Fig 5a)")
	}
}

func TestCuratePairs(t *testing.T) {
	prim := syntheticTable(200)
	stamps := make([]int64, 0, 600)
	for i := 0; i < 600; i++ {
		stamps = append(stamps, int64(i%40)*100) // 40 buckets, equal mass
	}
	sec := BucketTimestamps(stamps, 100)
	pairs := CuratePairs(prim, sec, 20)
	if len(pairs) != 20 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	seen := map[Pair]bool{}
	for _, p := range pairs {
		if seen[p] {
			t.Fatal("duplicate pair")
		}
		seen[p] = true
	}
	// Deterministic.
	again := CuratePairs(prim, sec, 20)
	for i := range pairs {
		if pairs[i] != again[i] {
			t.Fatal("CuratePairs not deterministic")
		}
	}
	// Joint spread must beat a uniform cross sample.
	r := xrand.New(3)
	var uniform []Pair
	for i := 0; i < 20; i++ {
		uniform = append(uniform, Pair{
			Primary:   prim.Rows[r.Intn(len(prim.Rows))].Param,
			Secondary: sec.Rows[r.Intn(len(sec.Rows))].Param,
		})
	}
	cur := PairSpread(prim, sec, pairs)
	uni := PairSpread(prim, sec, uniform)
	if cur.Stddev >= uni.Stddev {
		t.Fatalf("curated pair stddev %v >= uniform %v", cur.Stddev, uni.Stddev)
	}
}

func TestCuratePairsEdgeCases(t *testing.T) {
	prim := syntheticTable(10)
	empty := &Table{Cols: []string{"c"}}
	if got := CuratePairs(prim, empty, 5); len(got) != 5 {
		t.Fatalf("empty secondary should still yield primaries: %d", len(got))
	}
	if got := CuratePairs(empty, prim, 5); got != nil {
		t.Fatal("empty primary must yield nil")
	}
	if got := CuratePairs(prim, prim, 0); got != nil {
		t.Fatal("k=0")
	}
}

func TestPairSpreadEmpty(t *testing.T) {
	prim := syntheticTable(5)
	if s := PairSpread(prim, prim, nil); s.Stddev != 0 || s.Max != 0 {
		t.Fatal("empty pair spread")
	}
}
