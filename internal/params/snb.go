package params

import (
	"sort"

	"ldbcsnb/internal/ids"
	"ldbcsnb/internal/schema"
)

// PC-table builders for the SNB query templates. SNB-Interactive obtains
// the counts "as a by-product of data generation" (§4.1, strategy (ii));
// these builders compute the same frequency statistics from the generated
// dataset.

// BuildQ2Table materialises the Figure 6(b) table for Query 2: per person,
// |⋈1| = number of friends and |⋈2| = number of messages those friends
// created.
func BuildQ2Table(d *schema.Dataset) *Table {
	friends := adjacency(d)
	msgs := messageCounts(d)
	t := &Table{Cols: []string{"|join1| friends", "|join2| friend messages"}}
	for i := range d.Persons {
		p := d.Persons[i].ID
		fs := friends[p]
		total := 0
		for _, f := range fs {
			total += msgs[f]
		}
		t.Rows = append(t.Rows, Row{Param: uint64(p), Counts: []int{len(fs), total}})
	}
	return t
}

// BuildQ5Table materialises the PC table for Query 5 (the §4.1 motivating
// example): per person, |⋈1| = friends, |⋈2| = 2-hop environment size,
// |⋈3| = forum memberships of the environment, and |⋈4| = posts contained
// in the joined forums — the de-facto intermediate result of Q5's final
// counting join (the paper uses actual cardinalities, "which are otherwise
// only known after the query is executed").
func BuildQ5Table(d *schema.Dataset) *Table {
	friends := adjacency(d)
	memberOf := map[ids.ID][]ids.ID{}
	for i := range d.Memberships {
		m := &d.Memberships[i]
		memberOf[m.Person] = append(memberOf[m.Person], m.Forum)
	}
	forumPosts := map[ids.ID]int{}
	for i := range d.Posts {
		forumPosts[d.Posts[i].Forum]++
	}
	t := &Table{Cols: []string{"|join1| friends", "|join2| 2-hop", "|join3| memberships", "|join4| forum posts"}}
	for i := range d.Persons {
		p := d.Persons[i].ID
		env := twoHop(friends, p)
		mem := 0
		joined := map[ids.ID]bool{}
		for _, q := range env {
			mem += len(memberOf[q])
			for _, f := range memberOf[q] {
				joined[f] = true
			}
		}
		posts := 0
		for f := range joined {
			posts += forumPosts[f]
		}
		t.Rows = append(t.Rows, Row{Param: uint64(p), Counts: []int{len(friends[p]), len(env), mem, posts}})
	}
	return t
}

// BuildQ9Table materialises the PC table for Query 9: |⋈1| = friends,
// |⋈2| = 2-hop environment, |⋈3| = messages of the environment.
func BuildQ9Table(d *schema.Dataset) *Table {
	friends := adjacency(d)
	msgs := messageCounts(d)
	t := &Table{Cols: []string{"|join1| friends", "|join2| 2-hop", "|join3| messages"}}
	for i := range d.Persons {
		p := d.Persons[i].ID
		env := twoHop(friends, p)
		total := 0
		for _, q := range env {
			total += msgs[q]
		}
		t.Rows = append(t.Rows, Row{Param: uint64(p), Counts: []int{len(friends[p]), len(env), total}})
	}
	return t
}

// TwoHopSizes returns the 2-hop environment size of every person — the
// distribution Figure 5(a) plots.
func TwoHopSizes(d *schema.Dataset) []int {
	friends := adjacency(d)
	out := make([]int, 0, len(d.Persons))
	for i := range d.Persons {
		out = append(out, len(twoHop(friends, d.Persons[i].ID)))
	}
	sort.Ints(out)
	return out
}

func adjacency(d *schema.Dataset) map[ids.ID][]ids.ID {
	adj := make(map[ids.ID][]ids.ID, len(d.Persons))
	for i := range d.Knows {
		k := &d.Knows[i]
		adj[k.A] = append(adj[k.A], k.B)
		adj[k.B] = append(adj[k.B], k.A)
	}
	return adj
}

func messageCounts(d *schema.Dataset) map[ids.ID]int {
	m := make(map[ids.ID]int, len(d.Persons))
	for i := range d.Posts {
		m[d.Posts[i].Creator]++
	}
	for i := range d.Comments {
		m[d.Comments[i].Creator]++
	}
	return m
}

func twoHop(adj map[ids.ID][]ids.ID, p ids.ID) []ids.ID {
	seen := map[ids.ID]bool{p: true}
	var out []ids.ID
	for _, f := range adj[p] {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	direct := len(out)
	for i := 0; i < direct; i++ {
		for _, ff := range adj[out[i]] {
			if !seen[ff] {
				seen[ff] = true
				out = append(out, ff)
			}
		}
	}
	return out
}
