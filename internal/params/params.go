// Package params implements Parameter Curation (§4.1 of the paper, and
// [Gubichev & Boncz, TPCTC'14]): selecting query-parameter bindings whose
// queries have (P1) bounded runtime variance, (P2) stable runtime
// distributions across samples and (P3) one optimal logical plan.
//
// The two-step heuristic of the paper:
//
//	Step 1 — Preprocessing: materialise a Parameter-Count (PC) table whose
//	rows are parameter values and whose columns are the de-facto
//	intermediate-result cardinalities of each join of the intended plan.
//	SNB obtains these counts as a by-product of data generation; we compute
//	them from the generated dataset the same way.
//
//	Step 2 — Greedy selection: find windows of rows with the smallest
//	variance in the first column, refine each window on the next column,
//	and so on; emit the parameter values of the refined windows.
package params

import (
	"math"
	"sort"
)

// Row is one PC-table row: a parameter value (e.g. a PersonID) and the
// intermediate result counts for each subplan of the intended query plan.
type Row struct {
	Param  uint64
	Counts []int
}

// Table is a Parameter-Count table: all rows share the same column layout.
type Table struct {
	Cols []string // column names, e.g. ["|⋈1|", "|⋈2|"]
	Rows []Row
}

// Cost returns a row's total intermediate-result count (the C_out proxy
// the paper uses: runtime correlates with the amount of intermediate
// results produced).
func (r Row) Cost() int {
	total := 0
	for _, c := range r.Counts {
		total += c
	}
	return total
}

// variance computes the variance of one column over rows[lo:hi].
func variance(rows []Row, col, lo, hi int) float64 {
	n := float64(hi - lo)
	if n <= 0 {
		return 0
	}
	sum := 0.0
	for i := lo; i < hi; i++ {
		sum += float64(rows[i].Counts[col])
	}
	mean := sum / n
	v := 0.0
	for i := lo; i < hi; i++ {
		d := float64(rows[i].Counts[col]) - mean
		v += d * d
	}
	return v / n
}

// Curate selects k parameter bindings with minimal total variance of
// intermediate results across all columns, using the greedy window
// refinement of §4.1. It returns fewer than k values only when the table
// itself is smaller than k.
func (t *Table) Curate(k int) []uint64 {
	if k <= 0 || len(t.Rows) == 0 {
		return nil
	}
	rows := make([]Row, len(t.Rows))
	copy(rows, t.Rows)
	if len(rows) <= k {
		out := make([]uint64, len(rows))
		for i, r := range rows {
			out[i] = r.Param
		}
		return out
	}
	// Sort rows by the first column (ties by subsequent columns, then by
	// parameter for determinism).
	sort.Slice(rows, func(i, j int) bool {
		for c := range rows[i].Counts {
			if rows[i].Counts[c] != rows[j].Counts[c] {
				return rows[i].Counts[c] < rows[j].Counts[c]
			}
		}
		return rows[i].Param < rows[j].Param
	})

	// Find the k-row window minimising variance column by column: first
	// locate the best window of size w >= k on column 0, then refine
	// within it on column 1, etc.
	lo, hi := 0, len(rows)
	nCols := len(t.Cols)
	for col := 0; col < nCols; col++ {
		// Window size shrinks toward k as we refine.
		remaining := nCols - col - 1
		w := k
		for i := 0; i < remaining; i++ {
			w *= 2 // leave room for later refinements
		}
		if w > hi-lo {
			w = hi - lo
		}
		if w < k {
			w = k
		}
		// Rows inside [lo,hi) are sorted by earlier columns; re-sort the
		// segment by this column to make contiguous windows meaningful.
		seg := rows[lo:hi]
		sort.SliceStable(seg, func(i, j int) bool {
			return seg[i].Counts[col] < seg[j].Counts[col]
		})
		// Among windows whose variance is (near-)minimal, prefer the one
		// whose values sit closest to the segment median: P1 asks that
		// "the average runtime should correspond to the behavior of the
		// majority of the queries", so representative-cost windows beat
		// equally-tight windows at the extremes of the distribution.
		median := float64(rows[lo+(hi-lo)/2].Counts[col])
		type cand struct {
			lo   int
			v    float64
			dist float64
		}
		best := cand{lo, math.Inf(1), math.Inf(1)}
		for s := lo; s+w <= hi; s++ {
			v := variance(rows, col, s, s+w)
			mid := float64(rows[s+w/2].Counts[col])
			dist := math.Abs(mid - median)
			better := v < best.v*0.95 ||
				(v <= best.v*1.05 && dist < best.dist)
			if better {
				best = cand{s, v, dist}
			}
		}
		lo, hi = best.lo, best.lo+w
	}
	// Emit the k rows of the final window with the smallest last-column
	// variance: the window is already minimal, take its first k rows.
	out := make([]uint64, 0, k)
	for i := lo; i < hi && len(out) < k; i++ {
		out = append(out, rows[i].Param)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// UniformSample returns k parameter values sampled uniformly (without
// replacement when possible) — the conventional TPC-H/BSBM approach that
// Figure 5(b) contrasts with curation. next is a random source returning
// uniform uint64s.
func (t *Table) UniformSample(k int, next func() uint64) []uint64 {
	if k <= 0 || len(t.Rows) == 0 {
		return nil
	}
	if len(t.Rows) <= k {
		out := make([]uint64, len(t.Rows))
		for i, r := range t.Rows {
			out[i] = r.Param
		}
		return out
	}
	seen := make(map[int]bool, k)
	out := make([]uint64, 0, k)
	for len(out) < k {
		i := int(next() % uint64(len(t.Rows)))
		if seen[i] {
			continue
		}
		seen[i] = true
		out = append(out, t.Rows[i].Param)
	}
	return out
}

// Spread is the dispersion of total cost over a parameter selection — the
// quantity Parameter Curation minimises (P1) and Figure 5(b) visualises.
type Spread struct {
	Min, Max int
	Mean     float64
	Stddev   float64
}

// CostSpread reports the cost dispersion of a set of parameter values.
func (t *Table) CostSpread(sel []uint64) Spread {
	byParam := make(map[uint64]int, len(t.Rows))
	for _, r := range t.Rows {
		byParam[r.Param] = r.Cost()
	}
	if len(sel) == 0 {
		return Spread{}
	}
	s := Spread{Min: math.MaxInt}
	sum := 0.0
	for _, p := range sel {
		c := byParam[p]
		if c < s.Min {
			s.Min = c
		}
		if c > s.Max {
			s.Max = c
		}
		sum += float64(c)
	}
	s.Mean = sum / float64(len(sel))
	v := 0.0
	for _, p := range sel {
		d := float64(byParam[p]) - s.Mean
		v += d * d
	}
	s.Stddev = math.Sqrt(v / float64(len(sel)))
	return s
}

// BucketTimestamps groups a continuous timestamp domain into buckets of
// the given width (the paper buckets Timestamp parameters by month),
// returning representative bucket-start values with their frequencies as a
// PC table keyed by bucket start.
func BucketTimestamps(stamps []int64, width int64) *Table {
	if width <= 0 || len(stamps) == 0 {
		return &Table{Cols: []string{"count"}}
	}
	counts := map[int64]int{}
	for _, s := range stamps {
		counts[s/width*width]++
	}
	t := &Table{Cols: []string{"count"}}
	for b, c := range counts {
		t.Rows = append(t.Rows, Row{Param: uint64(b), Counts: []int{c}})
	}
	sort.Slice(t.Rows, func(i, j int) bool { return t.Rows[i].Param < t.Rows[j].Param })
	return t
}
