package params

import (
	"math"
	"sort"
)

// Multi-parameter curation (§4.1 "Parameter Curation for multiple
// parameters"): the paper generalises the greedy procedure to pick jointly
// well-behaved combinations, e.g. (Person, Timestamp) for Query 2 — a
// discrete parameter whose PC row carries intermediate counts, crossed
// with a bucketed continuous parameter whose bucket frequency acts as the
// count column.

// Pair is one curated (primary, secondary) parameter binding.
type Pair struct {
	Primary   uint64
	Secondary uint64
}

// CuratePairs selects k (primary, secondary) bindings such that the total
// variance of intermediate results is small across both dimensions: the
// primary values come from the primary table's minimum-variance window,
// and each is paired with a secondary value whose bucket count sits in the
// secondary table's own minimum-variance window. Cross-products are
// enumerated deterministically.
func CuratePairs(primary *Table, secondary *Table, k int) []Pair {
	if k <= 0 {
		return nil
	}
	// Primary window: curate sqrt-ish share so the cross product fills k.
	pk := k
	sk := 1
	if len(secondary.Rows) > 1 {
		pk = (k + 1) / 2
		sk = (k + pk - 1) / pk
	}
	prim := primary.Curate(pk)
	sec := secondary.Curate(sk)
	if len(prim) == 0 {
		return nil
	}
	if len(sec) == 0 {
		sec = []uint64{0}
	}
	out := make([]Pair, 0, k)
	for _, s := range sec {
		for _, p := range prim {
			out = append(out, Pair{Primary: p, Secondary: s})
			if len(out) == k {
				sortPairs(out)
				return out
			}
		}
	}
	sortPairs(out)
	return out
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Primary != ps[j].Primary {
			return ps[i].Primary < ps[j].Primary
		}
		return ps[i].Secondary < ps[j].Secondary
	})
}

// PairSpread reports the combined cost dispersion of pair selections: the
// primary cost plus the secondary bucket count, per pair.
func PairSpread(primary, secondary *Table, sel []Pair) Spread {
	pc := make(map[uint64]int, len(primary.Rows))
	for _, r := range primary.Rows {
		pc[r.Param] = r.Cost()
	}
	sc := make(map[uint64]int, len(secondary.Rows))
	for _, r := range secondary.Rows {
		sc[r.Param] = r.Cost()
	}
	if len(sel) == 0 {
		return Spread{}
	}
	costs := make([]float64, 0, len(sel))
	s := Spread{Min: 1<<62 - 1}
	sum := 0.0
	for _, p := range sel {
		c := pc[p.Primary] + sc[p.Secondary]
		costs = append(costs, float64(c))
		if c < s.Min {
			s.Min = c
		}
		if c > s.Max {
			s.Max = c
		}
		sum += float64(c)
	}
	s.Mean = sum / float64(len(costs))
	v := 0.0
	for _, c := range costs {
		v += (c - s.Mean) * (c - s.Mean)
	}
	s.Stddev = math.Sqrt(v / float64(len(costs)))
	return s
}
