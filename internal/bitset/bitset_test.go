package bitset

import "testing"

func TestSetHasClear(t *testing.T) {
	s := New(200)
	if s.Len() != 200 {
		t.Fatalf("Len = %d", s.Len())
	}
	for _, i := range []int32{0, 1, 63, 64, 127, 199} {
		if s.Has(i) {
			t.Fatalf("bit %d set in fresh set", i)
		}
		s.Set(i)
		if !s.Has(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if s.Count() != 6 {
		t.Fatalf("Count = %d", s.Count())
	}
	s.Clear(64)
	if s.Has(64) || s.Count() != 5 {
		t.Fatal("Clear failed")
	}
}

func TestTrySet(t *testing.T) {
	s := New(100)
	if !s.TrySet(42) {
		t.Fatal("first TrySet must report new")
	}
	if s.TrySet(42) {
		t.Fatal("second TrySet must report already set")
	}
	if !s.Has(42) {
		t.Fatal("bit lost")
	}
}

func TestGrowPreservesAndResetClears(t *testing.T) {
	s := New(10)
	s.Set(3)
	s.Grow(1000)
	if !s.Has(3) {
		t.Fatal("Grow dropped a bit")
	}
	s.Set(999)
	s.Grow(50) // never shrinks
	if s.Len() != 1000 || !s.Has(999) {
		t.Fatal("Grow shrank the set")
	}
	s.Reset()
	if s.Count() != 0 || s.Len() != 1000 {
		t.Fatal("Reset must clear bits but keep capacity")
	}
}

func TestZeroValueGrow(t *testing.T) {
	var s Set
	s.Grow(70)
	s.Set(69)
	if !s.Has(69) || s.Count() != 1 {
		t.Fatal("zero-value Set unusable after Grow")
	}
}
