// Package bitset provides a dense, reusable bitset keyed by small
// non-negative integers.
//
// It is the visited-set representation for graph traversals over compact
// node ordinals (see store.SnapshotView): a BFS over a frozen snapshot marks
// ordinals in a Set instead of inserting IDs into a map, which removes both
// the per-visit allocation and the hashing from the hot loop. A Set is meant
// to be held in a scratch structure and recycled across queries with
// Grow + Reset.
package bitset

import "math/bits"

// Set is a dense bitset. The zero value is an empty set of capacity 0;
// grow it with Grow before setting bits. A Set is not safe for concurrent
// use.
type Set struct {
	words []uint64
	n     int // capacity in bits
}

// New returns a set able to hold bits [0, n).
func New(n int) *Set {
	s := &Set{}
	s.Grow(n)
	return s
}

// Len returns the capacity in bits.
func (s *Set) Len() int { return s.n }

// Grow ensures the set can hold bits [0, n), preserving existing bits.
// It never shrinks.
func (s *Set) Grow(n int) {
	if n <= s.n {
		return
	}
	need := (n + 63) / 64
	if need > len(s.words) {
		words := make([]uint64, need)
		copy(words, s.words)
		s.words = words
	}
	s.n = n
}

// Reset clears every bit, keeping the allocated capacity.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Set marks bit i. Like a slice index, i must be in range: indices at or
// beyond the allocated words panic; note the allocation rounds the
// capacity up to the next multiple of 64 bits, so indices in [Len(),
// 64*ceil(Len()/64)) are accepted. Callers must treat Len() as the bound.
func (s *Set) Set(i int32) {
	s.words[i>>6] |= 1 << (uint(i) & 63)
}

// Has reports whether bit i is marked.
func (s *Set) Has(i int32) bool {
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Clear unmarks bit i.
func (s *Set) Clear(i int32) {
	s.words[i>>6] &^= 1 << (uint(i) & 63)
}

// TrySet marks bit i and reports whether it was previously unmarked —
// the one-call BFS visited-set idiom:
//
//	if seen.TrySet(ord) { frontier = append(frontier, ord) }
func (s *Set) TrySet(i int32) bool {
	w, m := i>>6, uint64(1)<<(uint(i)&63)
	if s.words[w]&m != 0 {
		return false
	}
	s.words[w] |= m
	return true
}

// Count returns the number of marked bits.
func (s *Set) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}
