// Package ids implements SNB entity identifier schemes.
//
// Two identifier properties from the paper matter for the workload:
//
//  1. Time-ordered IDs (§2.4, footnote 3): URIs/IDs for an entity kind follow
//     the time dimension, realised by encoding the creation timestamp in the
//     identifier in an order-preserving way. §3 notes this gives the final
//     date-selection of Query 9 high locality and removes a sort.
//  2. The studied-location correlation dimension (§2.3) packs three values in
//     one 32-bit key: Z-order of the university's city (bits 31-24), the
//     university ID (bits 23-12) and the studied year (bits 11-0).
package ids

// Kind enumerates SNB entity kinds that receive IDs.
type Kind uint8

// Entity kinds. The numeric values participate in the composite ID, so they
// are stable API.
const (
	KindPerson Kind = iota + 1
	KindForum
	KindPost
	KindComment
	KindTag
	KindTagClass
	KindPlace
	KindOrganisation
	KindPhoto
)

var kindNames = map[Kind]string{
	KindPerson:       "Person",
	KindForum:        "Forum",
	KindPost:         "Post",
	KindComment:      "Comment",
	KindTag:          "Tag",
	KindTagClass:     "TagClass",
	KindPlace:        "Place",
	KindOrganisation: "Organisation",
	KindPhoto:        "Photo",
}

// String returns the entity kind name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "Unknown"
}

// ID is a 64-bit SNB entity identifier:
//
//	bits 63-56: Kind
//	bits 55-16: creation timestamp bucket (order-preserving, 40 bits,
//	            minutes since the simulation epoch)
//	bits 15-0 + overflow via sequence widening: per-bucket sequence
//
// For dimension-like entities (tags, places, organisations) the timestamp
// bucket is 0 and the ID is just kind+sequence.
type ID uint64

// TimeBits is the width of the order-preserving time bucket inside an ID.
const TimeBits = 40

// SeqBits is the width of the per-bucket sequence number.
const SeqBits = 16

// Compose builds an ID from kind, minutes-since-epoch bucket and sequence.
// Sequence values that overflow SeqBits spill upward into the time field;
// the generator allocates sequences densely enough that this never happens
// at supported scale factors, and Compose guards it with a panic because a
// silent spill would break time-ordering.
func Compose(k Kind, minuteBucket int64, seq uint32) ID {
	if minuteBucket < 0 {
		minuteBucket = 0
	}
	if minuteBucket >= 1<<TimeBits {
		panic("ids: minute bucket overflows time field")
	}
	if uint64(seq) >= 1<<SeqBits {
		panic("ids: sequence overflows")
	}
	return ID(uint64(k)<<56 | uint64(minuteBucket)<<SeqBits | uint64(seq))
}

// Kind extracts the entity kind.
func (id ID) Kind() Kind { return Kind(id >> 56) }

// MinuteBucket extracts the order-preserving time bucket.
func (id ID) MinuteBucket() int64 { return int64(id>>SeqBits) & (1<<TimeBits - 1) }

// Seq extracts the per-bucket sequence.
func (id ID) Seq() uint32 { return uint32(id & (1<<SeqBits - 1)) }

// Less orders IDs of equal kind by creation time then sequence — the
// property that Query 9's date filter exploits.
func (id ID) Less(other ID) bool { return id < other }

// Allocator hands out IDs for one Kind, preserving time order as long as
// callers allocate in non-decreasing timestamp order per bucket. It is not
// safe for concurrent use; the generator shards allocators per worker with
// disjoint sequence ranges instead (see WorkerAllocator).
type Allocator struct {
	kind       Kind
	lastBucket int64
	seq        uint32
}

// NewAllocator returns an allocator for the given kind.
func NewAllocator(k Kind) *Allocator { return &Allocator{kind: k} }

// Alloc returns the next ID for an entity created at the given simulation
// time in milliseconds since the simulation epoch.
func (a *Allocator) Alloc(simMillis int64) ID {
	bucket := simMillis / 60000
	if bucket != a.lastBucket {
		a.lastBucket = bucket
		a.seq = 0
	}
	id := Compose(a.kind, bucket, a.seq)
	a.seq++
	return id
}

// WorkerAllocator allocates IDs deterministically for a sharded generator:
// worker w of n workers uses sequence numbers w, w+n, w+2n, ... within each
// minute bucket, so the union over workers is dense and collision-free no
// matter how entities are partitioned — the determinism guarantee of §2.4.
type WorkerAllocator struct {
	kind    Kind
	worker  uint32
	workers uint32
	buckets map[int64]uint32
}

// NewWorkerAllocator returns an allocator for worker w of n.
func NewWorkerAllocator(k Kind, worker, workers int) *WorkerAllocator {
	if workers <= 0 || worker < 0 || worker >= workers {
		panic("ids: invalid worker sharding")
	}
	return &WorkerAllocator{
		kind:    k,
		worker:  uint32(worker),
		workers: uint32(workers),
		buckets: make(map[int64]uint32),
	}
}

// Alloc returns the next ID for this worker at the given simulation time.
func (a *WorkerAllocator) Alloc(simMillis int64) ID {
	bucket := simMillis / 60000
	n := a.buckets[bucket]
	a.buckets[bucket] = n + 1
	return Compose(a.kind, bucket, a.worker+n*a.workers)
}

// DimensionID builds an ID for a dimension-like entity (tag, place,
// organisation). Dimension tables do not scale with persons or time (§2),
// so a 16-bit sequence is ample; Compose panics on overflow.
func DimensionID(k Kind, seq uint32) ID {
	return Compose(k, 0, seq)
}
