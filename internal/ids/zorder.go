package ids

// Z-order (Morton) encoding and the studied-location composite sort key of
// §2.3. The composite packs, in one uint32:
//
//	bits 31-24  Z-order of the university's city location (8 bits)
//	bits 23-12  university ID (12 bits)
//	bits 11-0   studied year (12 bits)
//
// Sorting persons by this key clusters them by (city, university, year),
// which is what the first friendship-generation stage slides its window
// over (Figure 1 of the paper).

// interleave4 spreads the low 4 bits of v so they occupy even positions.
func interleave4(v uint32) uint32 {
	v &= 0xF
	v = (v | v<<2) & 0x33
	v = (v | v<<1) & 0x55
	return v
}

// ZOrder8 interleaves two 4-bit coordinates into an 8-bit Morton code.
// City coordinates are quantised to a 16x16 grid; locality in the grid
// becomes locality in the code, so geographically close cities sort near
// each other.
func ZOrder8(x, y uint8) uint8 {
	return uint8(interleave4(uint32(x)) | interleave4(uint32(y))<<1)
}

// ZOrder16 interleaves two 8-bit coordinates into a 16-bit Morton code.
func ZOrder16(x, y uint8) uint16 {
	v := uint32(0)
	for i := 0; i < 8; i++ {
		v |= (uint32(x) >> i & 1) << (2 * i)
		v |= (uint32(y) >> i & 1) << (2*i + 1)
	}
	return uint16(v)
}

// StudyKey is the first-stage friendship correlation dimension.
type StudyKey uint32

// MakeStudyKey packs the city Z-order, university and class year into the
// composite key. Arguments are masked to their field widths.
func MakeStudyKey(cityZ uint8, universityID uint16, classYear uint16) StudyKey {
	return StudyKey(uint32(cityZ)<<24 | uint32(universityID&0xFFF)<<12 | uint32(classYear&0xFFF))
}

// CityZ returns the 8-bit city Z-order component.
func (k StudyKey) CityZ() uint8 { return uint8(k >> 24) }

// University returns the 12-bit university ID component.
func (k StudyKey) University() uint16 { return uint16(k>>12) & 0xFFF }

// ClassYear returns the 12-bit studied-year component.
func (k StudyKey) ClassYear() uint16 { return uint16(k) & 0xFFF }
