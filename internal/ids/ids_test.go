package ids

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestComposeRoundTrip(t *testing.T) {
	err := quick.Check(func(bucketRaw uint32, seqRaw uint16) bool {
		bucket := int64(bucketRaw) // < 2^32 < 2^40
		id := Compose(KindPost, bucket, uint32(seqRaw))
		return id.Kind() == KindPost &&
			id.MinuteBucket() == bucket &&
			id.Seq() == uint32(seqRaw)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestComposePanicsOnOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on seq overflow")
		}
	}()
	Compose(KindPost, 1, 1<<SeqBits)
}

func TestIDTimeOrdering(t *testing.T) {
	// IDs of the same kind must sort by creation time: the property Query 9
	// relies on (date filters become ID-range filters).
	a := NewAllocator(KindComment)
	var prev ID
	for minute := int64(0); minute < 1000; minute += 7 {
		id := a.Alloc(minute * 60000)
		if id <= prev {
			t.Fatalf("IDs not increasing: %d after %d", id, prev)
		}
		prev = id
	}
}

func TestAllocatorSequenceWithinBucket(t *testing.T) {
	a := NewAllocator(KindPost)
	id1 := a.Alloc(60000)
	id2 := a.Alloc(60000)
	id3 := a.Alloc(120000)
	if id1.Seq() != 0 || id2.Seq() != 1 {
		t.Fatalf("bad sequences: %d %d", id1.Seq(), id2.Seq())
	}
	if id3.Seq() != 0 {
		t.Fatalf("sequence should reset at new bucket, got %d", id3.Seq())
	}
	if !(id1 < id2 && id2 < id3) {
		t.Fatal("ordering violated")
	}
}

func TestWorkerAllocatorDisjoint(t *testing.T) {
	// Two workers allocating in the same minute bucket must never collide,
	// and the union of their sequences must be dense.
	const workers = 4
	seen := map[ID]bool{}
	for w := 0; w < workers; w++ {
		a := NewWorkerAllocator(KindPost, w, workers)
		for i := 0; i < 100; i++ {
			id := a.Alloc(60000)
			if seen[id] {
				t.Fatalf("worker collision at id %d", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != workers*100 {
		t.Fatalf("expected %d distinct ids, got %d", workers*100, len(seen))
	}
	// Density: collected sequence numbers are exactly 0..399.
	seqs := make([]int, 0, len(seen))
	for id := range seen {
		seqs = append(seqs, int(id.Seq()))
	}
	sort.Ints(seqs)
	for i, s := range seqs {
		if s != i {
			t.Fatalf("sequence numbers not dense at %d: %d", i, s)
		}
	}
}

func TestWorkerAllocatorValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 0}, {-1, 4}, {4, 4}, {5, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for worker=%d workers=%d", bad[0], bad[1])
				}
			}()
			NewWorkerAllocator(KindPost, bad[0], bad[1])
		}()
	}
}

func TestKindString(t *testing.T) {
	if KindPerson.String() != "Person" {
		t.Fatalf("got %q", KindPerson.String())
	}
	if Kind(200).String() != "Unknown" {
		t.Fatalf("got %q", Kind(200).String())
	}
}

func TestDimensionID(t *testing.T) {
	id := DimensionID(KindTag, 1234)
	if id.Kind() != KindTag || id.Seq() != 1234 || id.MinuteBucket() != 0 {
		t.Fatalf("bad dimension id: %v %d %d", id.Kind(), id.Seq(), id.MinuteBucket())
	}
}

func TestStudyKeyRoundTrip(t *testing.T) {
	err := quick.Check(func(z uint8, uni, year uint16) bool {
		k := MakeStudyKey(z, uni, year)
		return k.CityZ() == z && k.University() == uni&0xFFF && k.ClassYear() == year&0xFFF
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestStudyKeyOrderingPriority(t *testing.T) {
	// City dominates university dominates year, matching the bit layout.
	low := MakeStudyKey(1, 4095, 4095)
	high := MakeStudyKey(2, 0, 0)
	if !(low < high) {
		t.Fatal("city component must dominate ordering")
	}
	lowU := MakeStudyKey(1, 5, 4095)
	highU := MakeStudyKey(1, 6, 0)
	if !(lowU < highU) {
		t.Fatal("university component must dominate year")
	}
}

func TestZOrderLocality(t *testing.T) {
	// Adjacent grid cells should have nearby Z codes more often than distant
	// cells; sanity-check the interleave on exact small values.
	if got := ZOrder8(0, 0); got != 0 {
		t.Fatalf("ZOrder8(0,0)=%d", got)
	}
	if got := ZOrder8(1, 0); got != 1 {
		t.Fatalf("ZOrder8(1,0)=%d", got)
	}
	if got := ZOrder8(0, 1); got != 2 {
		t.Fatalf("ZOrder8(0,1)=%d", got)
	}
	if got := ZOrder8(3, 3); got != 15 {
		t.Fatalf("ZOrder8(3,3)=%d", got)
	}
}

func TestZOrder16RoundTripBits(t *testing.T) {
	err := quick.Check(func(x, y uint8) bool {
		v := ZOrder16(x, y)
		var gx, gy uint8
		for i := 0; i < 8; i++ {
			gx |= uint8(v>>(2*i)&1) << i
			gy |= uint8(v>>(2*i+1)&1) << i
		}
		return gx == x && gy == y
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
