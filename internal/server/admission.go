package server

import (
	"context"
	"sync/atomic"
	"time"
)

// Per-class admission control: a bounded semaphore (execution slots) plus
// a bounded wait queue with a hard residency cap — one queue tick. The cap
// is the mechanism behind the latency contract: a request either starts
// executing within QueueTick of arrival or is shed with a RETRY_AFTER
// hint, so queue wait never exceeds one tick and a timed-out request is
// answered at most one tick past its deadline. Under overload the queue
// stays short by construction (excess arrivals are rejected in
// microseconds, costing the server almost nothing), which is what keeps
// admitted-request latency flat instead of collapsing under a growing
// backlog.

// GateConfig sizes one class's admission gate.
type GateConfig struct {
	// Slots is the maximum number of concurrently executing requests.
	Slots int
	// Queue is the maximum number of requests waiting for a slot; arrivals
	// beyond it are shed immediately.
	Queue int
	// QueueTick caps how long one request may wait in the queue before it
	// is shed. It also scales the RETRY_AFTER hint.
	QueueTick time.Duration
}

// withDefaults fills zero fields with serving defaults.
func (c GateConfig) withDefaults(slots, queue int, tick time.Duration) GateConfig {
	if c.Slots <= 0 {
		c.Slots = slots
	}
	if c.Queue <= 0 {
		c.Queue = queue
	}
	if c.QueueTick <= 0 {
		c.QueueTick = tick
	}
	return c
}

// admitOutcome is the result of one admission attempt.
type admitOutcome uint8

const (
	// admitOK: a slot was acquired; the caller must release it.
	admitOK admitOutcome = iota
	// admitShed: the queue was full or the queue tick elapsed; the caller
	// answers RETRY_AFTER without executing.
	admitShed
	// admitTimeout: the request's context expired while queued.
	admitTimeout
)

// gate is one class's admission state. Slots are tokens in a buffered
// channel; the queue is tracked by an atomic occupancy counter (waiters
// block on the slot channel, not on each other).
type gate struct {
	slots    chan struct{}
	queued   atomic.Int64
	maxQueue int64
	tick     time.Duration

	// Outcome counters, reported via Server.Stats.
	admitted atomic.Int64
	shed     atomic.Int64
	timedOut atomic.Int64
}

func newGate(cfg GateConfig) *gate {
	g := &gate{
		slots:    make(chan struct{}, cfg.Slots),
		maxQueue: int64(cfg.Queue),
		tick:     cfg.QueueTick,
	}
	for i := 0; i < cfg.Slots; i++ {
		g.slots <- struct{}{}
	}
	return g
}

// acquire admits one request: immediately when a slot is free, after a
// bounded queue wait otherwise. It returns admitShed without blocking when
// the queue is at capacity, and sheds queued requests once QueueTick
// elapses — queue residency is bounded by one tick, always.
func (g *gate) acquire(ctx context.Context) admitOutcome {
	select {
	case <-g.slots:
		g.admitted.Add(1)
		return admitOK
	default:
	}
	if g.queued.Add(1) > g.maxQueue {
		g.queued.Add(-1)
		g.shed.Add(1)
		return admitShed
	}
	defer g.queued.Add(-1)
	t := time.NewTimer(g.tick)
	defer t.Stop()
	select {
	case <-g.slots:
		g.admitted.Add(1)
		return admitOK
	case <-ctx.Done():
		g.timedOut.Add(1)
		return admitTimeout
	case <-t.C:
		g.shed.Add(1)
		return admitShed
	}
}

// release returns an execution slot.
func (g *gate) release() {
	g.slots <- struct{}{}
}

// pressured reports whether the gate has waiters: its slot pool is
// saturated and arrivals are queueing. The interactive gate's pressure is
// the overload signal that sheds the BI lane first.
func (g *gate) pressured() bool {
	return g.queued.Load() > 0
}

// retryHintMs is the backoff hint attached to a shed response: one queue
// tick, scaled up by current queue occupancy so hints stretch as pressure
// builds and retries decongest instead of re-stampeding.
func (g *gate) retryHintMs() uint32 {
	depth := g.queued.Load()
	hint := time.Duration(1+depth) * g.tick
	ms := hint.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return uint32(ms)
}
