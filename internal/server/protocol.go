// Package server puts the store behind a fault-tolerant TCP serving layer:
// a length-prefixed binary protocol dispatching by query number through the
// workload.Complex and bi.Registry registries onto the lock-free snapshot
// view path, wrapped in per-class admission control, per-request deadlines
// with cooperative mid-query cancellation, explicit overload shedding
// (RETRY_AFTER with a backoff hint, BI lane shed first) and connection
// hygiene (whole-frame read deadlines, max-frame guard, connection cap,
// drain-on-shutdown). docs/FORMATS.md documents the wire format;
// docs/ARCHITECTURE.md the admission/shedding data flow.
package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// ProtocolVersion is the wire format version carried in every frame's
// first payload byte; a server rejects frames with any other value.
const ProtocolVersion = 1

// Request classes. Each class is admitted through its own gate (admission
// control); Ping bypasses admission entirely — it is the liveness and
// drain probe.
const (
	ClassPing byte = iota
	// ClassComplex runs complex query Op (1..14) via workload.Complex.
	ClassComplex
	// ClassShort runs one short-read random walk (S1..S7 chain) seeded
	// from the curated person pool; Op is unused.
	ClassShort
	// ClassBI runs BI query Op (1..8) via bi.Registry.
	ClassBI
	// ClassWrite commits one small insert transaction; Op is unused.
	ClassWrite
	// ClassQuery runs one declarative pattern query (internal/query). The
	// request frame carries the UTF-8 query text after the fixed header;
	// parameters are bound server-side from the curated pools using the
	// request seed, exactly like the named-query classes. Op is unused.
	// QUERY rides the BI admission gate: ad-hoc scans are analytical work
	// and must never crowd out the interactive lane.
	ClassQuery
	numClasses
)

// Response statuses.
const (
	// StatusOK: the request ran to completion; Rows carries its output
	// cardinality.
	StatusOK byte = iota
	// StatusRetryAfter: the request was shed before execution (admission
	// queue full, queue tick elapsed, BI under interactive pressure, or
	// the server is draining). RetryAfterMs carries the backoff hint; no
	// work was performed.
	StatusRetryAfter
	// StatusTimeout: the request's deadline expired — while queued or
	// mid-query (the scan unwound cooperatively). Partial work was
	// discarded; retrying is the client's policy decision, the protocol
	// treats the deadline as final.
	StatusTimeout
	// StatusError: malformed request or execution failure; Message holds
	// the reason.
	StatusError
)

// Frame layout: a 4-byte little-endian payload length followed by the
// payload. Request payloads are exactly requestLen bytes; response
// payloads are responseLen bytes plus an optional trailing message.
const (
	frameHeaderLen = 4
	requestLen     = 24
	responseLen    = 32

	// DefaultMaxFrame bounds a peer's frame length claim. Requests are
	// tiny and responses carry at most a short message, so anything
	// larger is garbage or an attack.
	DefaultMaxFrame = 4096
)

// Request is one decoded request frame.
//
// Wire layout (little-endian):
//
//	off 0  u8  version
//	off 1  u8  class
//	off 2  u8  op (1-based query number; 0 for ping/short/write)
//	off 3  u8  flags (reserved, 0)
//	off 4  u64 reqID (echoed verbatim in the response)
//	off 12 u32 deadlineMs (0 = server default)
//	off 16 u64 seed (parameter-binding seed; the server binds parameters
//	              itself from the curated pools, keeping clients thin)
//	off 24     query text (ClassQuery only: the remaining payload bytes are
//	              the UTF-8 pattern-query source; every other class requires
//	              an exactly 24-byte payload)
type Request struct {
	Class      byte
	Op         byte
	Flags      byte
	ReqID      uint64
	DeadlineMs uint32
	Seed       uint64
	// Query is the declarative query text (ClassQuery frames only). Its
	// length is bounded by the frame cap on the wire and by the language's
	// own MaxQueryLen at parse time.
	Query string
}

// Response is one decoded response frame.
//
// Wire layout (little-endian):
//
//	off 0  u8  version
//	off 1  u8  status
//	off 2  u8  class (echoed)
//	off 3  u8  op (echoed)
//	off 4  u64 reqID (echoed)
//	off 12 u32 retryAfterMs (StatusRetryAfter backoff hint)
//	off 16 u32 rows (StatusOK output cardinality)
//	off 20 u64 serverMicros (admission wait + execution, µs)
//	off 28 u32 message length, followed by that many message bytes
type Response struct {
	Status       byte
	Class        byte
	Op           byte
	ReqID        uint64
	RetryAfterMs uint32
	Rows         uint32
	ServerMicros uint64
	Message      string
}

// AppendRequest appends r's frame (header + payload) onto dst. ClassQuery
// frames carry r.Query after the fixed header; Query is ignored for every
// other class.
func AppendRequest(dst []byte, r *Request) []byte {
	n := requestLen
	if r.Class == ClassQuery {
		n += len(r.Query)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	dst = append(dst, ProtocolVersion, r.Class, r.Op, r.Flags)
	dst = binary.LittleEndian.AppendUint64(dst, r.ReqID)
	dst = binary.LittleEndian.AppendUint32(dst, r.DeadlineMs)
	dst = binary.LittleEndian.AppendUint64(dst, r.Seed)
	if r.Class == ClassQuery {
		dst = append(dst, r.Query...)
	}
	return dst
}

// ParseRequest decodes one request payload. Only ClassQuery may carry
// trailing bytes (the query text); any other class with a payload that is
// not exactly the fixed header is malformed.
func ParseRequest(p []byte) (Request, error) {
	if len(p) < requestLen {
		return Request{}, fmt.Errorf("server: request payload %d bytes, want >= %d", len(p), requestLen)
	}
	if p[0] != ProtocolVersion {
		return Request{}, fmt.Errorf("server: protocol version %d, want %d", p[0], ProtocolVersion)
	}
	r := Request{
		Class:      p[1],
		Op:         p[2],
		Flags:      p[3],
		ReqID:      binary.LittleEndian.Uint64(p[4:]),
		DeadlineMs: binary.LittleEndian.Uint32(p[12:]),
		Seed:       binary.LittleEndian.Uint64(p[16:]),
	}
	if r.Class >= numClasses {
		return Request{}, fmt.Errorf("server: unknown request class %d", r.Class)
	}
	if r.Class == ClassQuery {
		r.Query = string(p[requestLen:])
	} else if len(p) != requestLen {
		return Request{}, fmt.Errorf("server: request payload %d bytes, want %d for class %d", len(p), requestLen, r.Class)
	}
	return r, nil
}

// AppendResponse appends r's frame (header + payload) onto dst.
func AppendResponse(dst []byte, r *Response) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(responseLen+len(r.Message)))
	dst = append(dst, ProtocolVersion, r.Status, r.Class, r.Op)
	dst = binary.LittleEndian.AppendUint64(dst, r.ReqID)
	dst = binary.LittleEndian.AppendUint32(dst, r.RetryAfterMs)
	dst = binary.LittleEndian.AppendUint32(dst, r.Rows)
	dst = binary.LittleEndian.AppendUint64(dst, r.ServerMicros)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Message)))
	return append(dst, r.Message...)
}

// ParseResponse decodes one response payload.
func ParseResponse(p []byte) (Response, error) {
	if len(p) < responseLen {
		return Response{}, fmt.Errorf("server: response payload %d bytes, want >= %d", len(p), responseLen)
	}
	if p[0] != ProtocolVersion {
		return Response{}, fmt.Errorf("server: protocol version %d, want %d", p[0], ProtocolVersion)
	}
	r := Response{
		Status:       p[1],
		Class:        p[2],
		Op:           p[3],
		ReqID:        binary.LittleEndian.Uint64(p[4:]),
		RetryAfterMs: binary.LittleEndian.Uint32(p[12:]),
		Rows:         binary.LittleEndian.Uint32(p[16:]),
		ServerMicros: binary.LittleEndian.Uint64(p[20:]),
	}
	msgLen := binary.LittleEndian.Uint32(p[28:])
	if int(msgLen) != len(p)-responseLen {
		return Response{}, fmt.Errorf("server: message length %d, have %d trailing bytes", msgLen, len(p)-responseLen)
	}
	r.Message = string(p[responseLen:])
	return r, nil
}

// ReadFrame reads one length-prefixed payload, reusing buf when it is
// large enough. A length claim above maxFrame is a protocol violation
// (garbage or attack) and fails without consuming the payload. Shared by
// the server's request loop and the client's response reads.
func ReadFrame(br *bufio.Reader, buf []byte, maxFrame int) ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if int(n) > maxFrame {
		return nil, fmt.Errorf("server: frame length %d exceeds max %d", n, maxFrame)
	}
	if int(n) > cap(buf) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
