package client

import (
	"encoding/binary"
	"errors"
	"net"
	"time"
)

// Connection-layer fault injection: the client deliberately misbehaves on
// a deterministic schedule so the server's degradation paths — torn
// frames, oversized claims, stalled and trickled reads — are exercised by
// tests and the smoke harness rather than waiting for a misbehaving
// client in production. Faults are injected below the protocol layer
// (inside the frame write), exactly where a real network or a buggy peer
// would corrupt the stream.

// FaultConfig schedules deliberate connection-layer faults. Each *Every
// field injects its fault on every Nth send (0 disables it); schedules
// are checked in the field order below, first match wins, so distinct
// primes give interleaved fault mixes.
type FaultConfig struct {
	// DropEvery closes the connection after writing half the request
	// frame — the server sees a torn frame and must drop the conn without
	// leaking its handler.
	DropEvery int
	// StallEvery pauses StallDuration mid-frame — the server's whole-frame
	// read deadline decides whether the request survives.
	StallEvery int
	// GarbageEvery sends a frame header claiming an absurd length — the
	// server's max-frame guard must reject it and close the conn.
	GarbageEvery int
	// SlowLorisEvery trickles the frame one byte per LorisDelay — the
	// classic hold-a-conn-open-forever attack; the server's read deadline
	// must cut it.
	SlowLorisEvery int
	// StallDuration is the StallEvery pause (default 50ms); LorisDelay the
	// per-byte trickle delay (default 10ms).
	StallDuration time.Duration
	LorisDelay    time.Duration
}

// Enabled reports whether any fault schedule is active.
func (f *FaultConfig) Enabled() bool {
	return f.DropEvery > 0 || f.StallEvery > 0 || f.GarbageEvery > 0 || f.SlowLorisEvery > 0
}

type faultKind uint8

const (
	faultNone faultKind = iota
	faultDrop
	faultStall
	faultGarbage
	faultLoris
)

// next returns the fault scheduled for send number seq (1-based).
func (f *FaultConfig) next(seq uint64) faultKind {
	switch {
	case f.DropEvery > 0 && seq%uint64(f.DropEvery) == 0:
		return faultDrop
	case f.StallEvery > 0 && seq%uint64(f.StallEvery) == 0:
		return faultStall
	case f.GarbageEvery > 0 && seq%uint64(f.GarbageEvery) == 0:
		return faultGarbage
	case f.SlowLorisEvery > 0 && seq%uint64(f.SlowLorisEvery) == 0:
		return faultLoris
	}
	return faultNone
}

// send writes one framed request, applying the scheduled fault.
func (f *FaultConfig) send(nc net.Conn, frame []byte, fault faultKind) error {
	switch fault {
	case faultDrop:
		if _, err := nc.Write(frame[:len(frame)/2]); err != nil {
			return err
		}
		nc.Close() //snb:errok the drop fault is the close; nothing to report
		return errInjected

	case faultStall:
		d := f.StallDuration
		if d <= 0 {
			d = 50 * time.Millisecond
		}
		if _, err := nc.Write(frame[:len(frame)/2]); err != nil {
			return err
		}
		time.Sleep(d)
		_, err := nc.Write(frame[len(frame)/2:])
		return err

	case faultGarbage:
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], 0xfffffff0)
		if _, err := nc.Write(hdr[:]); err != nil {
			return err
		}
		// The server rejects the length claim and closes; fail the attempt
		// locally so the retry path reconnects.
		return errInjected

	case faultLoris:
		d := f.LorisDelay
		if d <= 0 {
			d = 10 * time.Millisecond
		}
		for i := range frame {
			if _, err := nc.Write(frame[i : i+1]); err != nil {
				return err
			}
			time.Sleep(d)
		}
		return nil
	}
	_, err := nc.Write(frame)
	return err
}

// errInjected marks an attempt the injector sabotaged on purpose; the
// retry path treats it like any transport failure.
var errInjected = errors.New("client: fault injected")
